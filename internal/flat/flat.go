// Package flat provides compact open-addressed hash containers keyed by
// 64-bit node identifiers, the ID-table layer of the repository's memory
// plane. At the paper's scales (2^14-2^20 nodes) the per-node bookkeeping
// maps — failure-detector miss counts, tombstones, oracle membership — are
// where Go's built-in map hurts: every map burns ~48 bytes of header plus
// per-bucket overhead (~10 bytes/slot of metadata at best), and map
// iteration order is deliberately randomized, which forces every consumer
// that feeds an RNG or a golden trace to sort or otherwise re-order.
//
// Table is a linear-probing open-addressed table over power-of-two backing
// arrays. Deletion is tombstone-free: the probe chain is repaired by
// backward-shifting (Knuth vol. 3, 6.4 algorithm R), so lookup cost never
// degrades with churn and the table never needs a cleanup pass. Keys are
// scrambled with the splitmix64 finalizer, which is bijective and passes
// avalanche tests, so adversarial or highly regular ID populations (the
// simulator allocates IDs uniformly, but tests use tiny dense ones) still
// probe in O(1) expected.
//
// Determinism: iteration visits slots in backing-array order. For one
// sequence of operations the slot layout is a pure function of that
// sequence — there is no per-process hash seed — so iteration order is
// reproducible across runs, which is what lets the deterministic simulator
// iterate these tables directly where a built-in map would need a sort.
// Iteration order is NOT insertion order and changes when the table grows,
// shrinks, or backshifts; callers that need a canonical order still sort.
//
// Containers are not safe for concurrent use; callers shard or serialise
// exactly as they do for built-in maps.
package flat

import "repro/internal/id"

const (
	// minCap is the smallest backing-array size; tables shrink no further.
	minCap = 8
	// Tables grow at 3/4 load and shrink at 1/8 load. The hysteresis gap
	// between the two thresholds means a delete immediately followed by an
	// insert near a boundary cannot oscillate between sizes.
	growNum, growDen = 3, 4
	shrinkDen        = 8
)

// hash scrambles a key with the splitmix64 finalizer.
func hash(k id.ID) uint64 {
	x := uint64(k)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Table is an open-addressed map from id.ID to V. The zero value is an
// empty table ready for use.
type Table[V any] struct {
	keys []id.ID
	vals []V
	used []bool
	size int
}

// NewTable returns a table pre-sized to hold hint entries without growing.
func NewTable[V any](hint int) *Table[V] {
	t := &Table[V]{}
	if hint > 0 {
		t.rehash(capFor(hint))
	}
	return t
}

// capFor returns the smallest power-of-two capacity that holds n entries
// under the grow threshold.
func capFor(n int) int {
	c := minCap
	for c*growNum < n*growDen {
		c <<= 1
	}
	return c
}

// Len returns the number of entries.
func (t *Table[V]) Len() int { return t.size }

// Reserve grows the backing arrays so that n entries fit without further
// rehashing. It never shrinks.
func (t *Table[V]) Reserve(n int) {
	if c := capFor(max(n, t.size)); c > len(t.keys) {
		t.rehash(c)
	}
}

// Cap returns the current backing-array size (test and sizing hook).
func (t *Table[V]) Cap() int { return len(t.keys) }

// find probes for k: it returns the slot holding k (found=true), or the
// empty slot where k would be inserted (found=false, table non-empty).
func (t *Table[V]) find(k id.ID) (uint64, bool) {
	mask := uint64(len(t.keys) - 1)
	i := hash(k) & mask
	for t.used[i] {
		if t.keys[i] == k {
			return i, true
		}
		i = (i + 1) & mask
	}
	return i, false
}

// Get returns the value stored under k.
func (t *Table[V]) Get(k id.ID) (V, bool) {
	if t.size == 0 {
		var zero V
		return zero, false
	}
	i, ok := t.find(k)
	if !ok {
		var zero V
		return zero, false
	}
	return t.vals[i], true
}

// Contains reports whether k is present.
func (t *Table[V]) Contains(k id.ID) bool {
	if t.size == 0 {
		return false
	}
	_, ok := t.find(k)
	return ok
}

// Put stores v under k, replacing any existing value.
func (t *Table[V]) Put(k id.ID, v V) {
	if len(t.keys) == 0 || (t.size+1)*growDen > len(t.keys)*growNum {
		t.rehash(capFor(t.size + 1))
	}
	i, ok := t.find(k)
	if !ok {
		t.keys[i] = k
		t.used[i] = true
		t.size++
	}
	t.vals[i] = v
}

// Delete removes k, repairing the probe chain by backward shift so no
// tombstone is left behind. It reports whether k was present.
func (t *Table[V]) Delete(k id.ID) bool {
	if t.size == 0 {
		return false
	}
	i, ok := t.find(k)
	if !ok {
		return false
	}
	mask := uint64(len(t.keys) - 1)
	// Backward-shift deletion: walk the cluster after slot i; any entry
	// whose home slot lies cyclically at or before the hole can (and must)
	// move back into it, re-opening the hole further down. The first empty
	// slot ends the cluster and the scan.
	j := i
	for {
		j = (j + 1) & mask
		if !t.used[j] {
			break
		}
		h := hash(t.keys[j]) & mask
		// The entry at j may fill the hole at i iff i lies within the
		// cyclic probe span [h, j): dist(h→j) ≥ dist(i→j).
		if (j-h)&mask >= (j-i)&mask {
			t.keys[i] = t.keys[j]
			t.vals[i] = t.vals[j]
			i = j
		}
	}
	var zero V
	t.keys[i] = 0
	t.vals[i] = zero
	t.used[i] = false
	t.size--
	if len(t.keys) > minCap && t.size*shrinkDen < len(t.keys) {
		t.rehash(capFor(t.size))
	}
	return true
}

// Iter calls fn for each entry in backing-array slot order, stopping early
// if fn returns false. The order is deterministic for a fixed operation
// history but is not insertion order. fn must not mutate the table:
// deletion backshifts entries across the cursor and insertion may rehash.
// Collect keys first, mutate after.
func (t *Table[V]) Iter(fn func(k id.ID, v V) bool) {
	for i := range t.keys {
		if t.used[i] && !fn(t.keys[i], t.vals[i]) {
			return
		}
	}
}

// Clear removes every entry, keeping the current capacity.
func (t *Table[V]) Clear() {
	clear(t.keys)
	clear(t.vals)
	clear(t.used)
	t.size = 0
}

// rehash resizes the backing arrays to newCap (a power of two ≥ minCap)
// and reinserts every entry in old slot order.
func (t *Table[V]) rehash(newCap int) {
	if newCap == len(t.keys) {
		return
	}
	oldKeys, oldVals, oldUsed := t.keys, t.vals, t.used
	t.keys = make([]id.ID, newCap)
	t.vals = make([]V, newCap)
	t.used = make([]bool, newCap)
	mask := uint64(newCap - 1)
	for i := range oldKeys {
		if !oldUsed[i] {
			continue
		}
		j := hash(oldKeys[i]) & mask
		for t.used[j] {
			j = (j + 1) & mask
		}
		t.keys[j] = oldKeys[i]
		t.vals[j] = oldVals[i]
		t.used[j] = true
	}
}

// Set is an open-addressed set of IDs. The zero value is an empty set
// ready for use.
type Set struct {
	t Table[struct{}]
}

// NewSet returns a set pre-sized to hold hint members without growing.
func NewSet(hint int) *Set {
	s := &Set{}
	if hint > 0 {
		s.t.rehash(capFor(hint))
	}
	return s
}

// Len returns the number of members.
func (s *Set) Len() int { return s.t.size }

// Reserve grows the backing arrays so that n members fit without further
// rehashing. It never shrinks.
func (s *Set) Reserve(n int) { s.t.Reserve(n) }

// Contains reports whether k is a member.
func (s *Set) Contains(k id.ID) bool { return s.t.Contains(k) }

// Add inserts k, reporting whether it was newly added.
func (s *Set) Add(k id.ID) bool {
	before := s.t.size
	s.t.Put(k, struct{}{})
	return s.t.size > before
}

// Remove deletes k, reporting whether it was present.
func (s *Set) Remove(k id.ID) bool { return s.t.Delete(k) }

// Iter calls fn for each member in slot order, stopping early if fn
// returns false. The same mutation rules as Table.Iter apply.
func (s *Set) Iter(fn func(k id.ID) bool) {
	s.t.Iter(func(k id.ID, _ struct{}) bool { return fn(k) })
}

// Clear removes every member, keeping the current capacity.
func (s *Set) Clear() { s.t.Clear() }
