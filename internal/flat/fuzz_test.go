package flat

import (
	"encoding/binary"
	"testing"

	"repro/internal/id"
)

// FuzzTableVsMap drives a Table and a built-in map through the same
// operation stream decoded from the fuzz input and checks they agree after
// every step: lookups, sizes, and the full iterated contents. A small key
// universe maximises collision clusters, and the op mix deliberately
// crosses the grow (3/4) and shrink (1/8) boundaries many times per run.
func FuzzTableVsMap(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte{0xff, 0x00, 0xaa, 0x55, 0x01, 0x80})
	// A run of inserts followed by deletes of the same keys: forces one
	// full grow/shrink cycle even before the fuzzer mutates anything.
	seed := make([]byte, 0, 4*64)
	for i := 0; i < 64; i++ {
		seed = append(seed, 0, byte(i), 1, byte(i))
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		tbl := NewTable[uint16](0)
		ref := map[id.ID]uint16{}
		for pos := 0; pos+1 < len(data); pos += 2 {
			op, kb := data[pos], data[pos+1]
			// Map the key byte onto a sparse 64-bit universe so clusters
			// come from genuine hash collisions, not key adjacency.
			k := id.ID(uint64(kb) * 0x9e3779b97f4a7c15)
			switch op % 3 {
			case 0: // insert/overwrite
				v := uint16(op)<<8 | uint16(kb)
				tbl.Put(k, v)
				ref[k] = v
			case 1: // delete
				got := tbl.Delete(k)
				_, want := ref[k]
				if got != want {
					t.Fatalf("op %d: Delete(%v) = %v, map says %v", pos/2, k, got, want)
				}
				delete(ref, k)
			case 2: // lookup
				gv, gok := tbl.Get(k)
				wv, wok := ref[k]
				if gok != wok || gv != wv {
					t.Fatalf("op %d: Get(%v) = %d,%v, map says %d,%v", pos/2, k, gv, gok, wv, wok)
				}
			}
			if tbl.Len() != len(ref) {
				t.Fatalf("op %d: Len %d, map has %d", pos/2, tbl.Len(), len(ref))
			}
			// Cap 0 is legal until the first insert allocates.
			if c := tbl.Cap(); c != 0 && (c < minCap || c&(c-1) != 0) {
				t.Fatalf("op %d: cap %d not a power of two ≥ %d", pos/2, c, minCap)
			}
			if tbl.Len()*growDen > tbl.Cap()*growNum {
				t.Fatalf("op %d: load %d/%d above grow threshold", pos/2, tbl.Len(), tbl.Cap())
			}
		}
		// Full-content check: iteration yields exactly the reference map,
		// each key once, values matching, home-slot reachability intact.
		seen := map[id.ID]bool{}
		tbl.Iter(func(k id.ID, v uint16) bool {
			if seen[k] {
				t.Fatalf("Iter yielded %v twice", k)
			}
			seen[k] = true
			if wv, ok := ref[k]; !ok || wv != v {
				t.Fatalf("Iter yielded %v=%d, map says %d,%v", k, v, wv, ok)
			}
			return true
		})
		if len(seen) != len(ref) {
			t.Fatalf("Iter yielded %d keys, map has %d", len(seen), len(ref))
		}
		for k, wv := range ref {
			if gv, ok := tbl.Get(k); !ok || gv != wv {
				t.Fatalf("final Get(%v) = %d,%v, map says %d", k, gv, ok, wv)
			}
		}
	})
}

// FuzzSetWideKeys drives Set with full-width random keys decoded from the
// input, checking against a map reference. Complements FuzzTableVsMap's
// dense universe with arbitrary 64-bit members (including 0).
func FuzzSetWideKeys(f *testing.F) {
	buf := make([]byte, 9*8)
	for i := range buf {
		buf[i] = byte(i * 37)
	}
	f.Add(buf)
	f.Fuzz(func(t *testing.T, data []byte) {
		s := NewSet(0)
		ref := map[id.ID]bool{}
		for pos := 0; pos+9 <= len(data); pos += 9 {
			k := id.ID(binary.LittleEndian.Uint64(data[pos+1:]))
			if data[pos]%2 == 0 {
				if got, want := s.Add(k), !ref[k]; got != want {
					t.Fatalf("Add(%v) = %v, want %v", k, got, want)
				}
				ref[k] = true
			} else {
				if got, want := s.Remove(k), ref[k]; got != want {
					t.Fatalf("Remove(%v) = %v, want %v", k, got, want)
				}
				delete(ref, k)
			}
		}
		if s.Len() != len(ref) {
			t.Fatalf("Len %d, map has %d", s.Len(), len(ref))
		}
		n := 0
		s.Iter(func(k id.ID) bool {
			if !ref[k] {
				t.Fatalf("Iter yielded non-member %v", k)
			}
			n++
			return true
		})
		if n != len(ref) {
			t.Fatalf("Iter yielded %d members, want %d", n, len(ref))
		}
	})
}
