package flat

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/id"
)

// keysAtHome builds n distinct keys whose hashes all land in the same home
// slot for the given capacity, forcing a maximal probe cluster — the setup
// every backshift edge case needs.
func keysAtHome(t *testing.T, capacity int, home uint64, n int) []id.ID {
	t.Helper()
	mask := uint64(capacity - 1)
	var out []id.ID
	for raw := uint64(0); len(out) < n; raw++ {
		k := id.ID(raw)
		if hash(k)&mask == home {
			out = append(out, k)
		}
	}
	return out
}

// TestBackshiftDeletion drives the documented deletion cases on a table
// held at fixed capacity (few enough entries that no resize triggers) and
// checks every surviving key remains reachable — the property backshift
// exists to preserve.
func TestBackshiftDeletion(t *testing.T) {
	const capacity = minCap // 8 slots; ≤5 entries keeps load under 3/4
	cluster := keysAtHome(t, capacity, 2, 5)
	home3 := keysAtHome(t, capacity, 3, 2)
	cases := []struct {
		name   string
		insert []id.ID
		remove []id.ID
	}{
		{
			name:   "head of cluster",
			insert: cluster[:4],
			remove: cluster[:1],
		},
		{
			name:   "middle of cluster",
			insert: cluster[:4],
			remove: cluster[1:2],
		},
		{
			name:   "tail of cluster",
			insert: cluster[:4],
			remove: cluster[3:4],
		},
		{
			name:   "entire cluster front to back",
			insert: cluster[:5],
			remove: cluster[:5],
		},
		{
			name:   "entire cluster back to front",
			insert: cluster[:5],
			remove: []id.ID{cluster[4], cluster[3], cluster[2], cluster[1], cluster[0]},
		},
		{
			// An entry displaced from home 3 into the tail of home 2's
			// cluster must NOT be shifted past its own home slot when the
			// cluster head is deleted.
			name:   "displaced entry from later home",
			insert: []id.ID{cluster[0], cluster[1], home3[0], home3[1]},
			remove: []id.ID{cluster[0]},
		},
		{
			// Deleting around the array boundary exercises the cyclic
			// distance arithmetic: home 7 cluster wraps into slot 0.
			name:   "cluster wrapping the array end",
			insert: keysAtHome(t, capacity, 7, 3),
			remove: keysAtHome(t, capacity, 7, 1),
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tbl := NewTable[int](0)
			want := map[id.ID]int{}
			for i, k := range tc.insert {
				tbl.Put(k, i)
				want[k] = i
			}
			if tbl.Cap() != capacity {
				t.Fatalf("test setup: cap %d, want %d (case sized to avoid resize)", tbl.Cap(), capacity)
			}
			for _, k := range tc.remove {
				if !tbl.Delete(k) {
					t.Fatalf("Delete(%v) = false, key was present", k)
				}
				delete(want, k)
				if tbl.Delete(k) {
					t.Fatalf("second Delete(%v) = true", k)
				}
				for wk, wv := range want {
					got, ok := tbl.Get(wk)
					if !ok || got != wv {
						t.Fatalf("after Delete(%v): Get(%v) = %d,%v want %d,true", k, wk, got, ok, wv)
					}
				}
				if tbl.Len() != len(want) {
					t.Fatalf("after Delete(%v): Len %d want %d", k, tbl.Len(), len(want))
				}
			}
		})
	}
}

// TestGrowShrinkBoundaries pins the resize thresholds: grow at 3/4 load,
// shrink at 1/8, floor at minCap.
func TestGrowShrinkBoundaries(t *testing.T) {
	tbl := NewTable[int](0)
	for i := 0; i < 6; i++ {
		tbl.Put(id.ID(i*1000+1), i)
	}
	if tbl.Cap() != 8 {
		t.Fatalf("cap after 6 inserts = %d, want 8 (6/8 load is at threshold)", tbl.Cap())
	}
	tbl.Put(id.ID(7000+1), 7)
	if tbl.Cap() != 16 {
		t.Fatalf("cap after 7th insert = %d, want 16 (7/8 > 3/4 load)", tbl.Cap())
	}
	for i := 0; i < 100; i++ {
		tbl.Put(id.ID(i*31+5), i)
	}
	grown := tbl.Cap()
	if grown < 128 {
		t.Fatalf("cap after 100+ inserts = %d, want ≥128", grown)
	}
	keys := []id.ID{}
	tbl.Iter(func(k id.ID, _ int) bool { keys = append(keys, k); return true })
	for _, k := range keys {
		tbl.Delete(k)
	}
	if tbl.Len() != 0 {
		t.Fatalf("Len after deleting all = %d", tbl.Len())
	}
	if tbl.Cap() != minCap {
		t.Fatalf("cap after deleting all = %d, want shrink back to %d", tbl.Cap(), minCap)
	}
}

// TestIterDeterministicOrder verifies the package's determinism contract:
// two tables built by the same operation sequence iterate identically.
func TestIterDeterministicOrder(t *testing.T) {
	build := func() []id.ID {
		tbl := NewTable[int](0)
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < 500; i++ {
			tbl.Put(id.ID(rng.Uint64()%300), i)
			if i%3 == 0 {
				tbl.Delete(id.ID(rng.Uint64() % 300))
			}
		}
		var order []id.ID
		tbl.Iter(func(k id.ID, _ int) bool { order = append(order, k); return true })
		return order
	}
	a, b := build(), build()
	if len(a) != len(b) {
		t.Fatalf("iteration lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("iteration order diverges at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestZeroValueTable(t *testing.T) {
	var tbl Table[int]
	if tbl.Contains(1) || tbl.Delete(1) || tbl.Len() != 0 {
		t.Fatal("zero table should be empty and inert")
	}
	if _, ok := tbl.Get(1); ok {
		t.Fatal("Get on zero table returned ok")
	}
	tbl.Iter(func(id.ID, int) bool { t.Fatal("Iter on zero table called fn"); return false })
	tbl.Put(1, 10)
	if v, ok := tbl.Get(1); !ok || v != 10 {
		t.Fatalf("Get(1) = %d,%v after Put", v, ok)
	}
}

func TestSetBasics(t *testing.T) {
	s := NewSet(4)
	if !s.Add(1) || s.Add(1) {
		t.Fatal("Add should report first insert true, duplicate false")
	}
	s.Add(2)
	s.Add(0) // the zero ID must be a legal member (no sentinel keys)
	if !s.Contains(0) || !s.Contains(1) || !s.Contains(2) || s.Contains(3) {
		t.Fatal("membership wrong")
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if !s.Remove(1) || s.Remove(1) {
		t.Fatal("Remove should report first delete true, second false")
	}
	var got []id.ID
	s.Iter(func(k id.ID) bool { got = append(got, k); return true })
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("members = %v, want [0 2]", got)
	}
	s.Clear()
	if s.Len() != 0 || s.Contains(0) {
		t.Fatal("Clear left members behind")
	}
}
