package simnet

import (
	"math"
	"testing"

	"repro/internal/peer"
	"repro/internal/proto"
)

// echoProto replies to every ping with a pong and counts what it sees.
type echoProto struct {
	inited int
	ticks  int
	got    []string
	pingOn peer.Addr // if set, ping this address every tick
}

type testMsg struct {
	kind string
	size int
}

func (m testMsg) WireSize() int { return m.size }

func (p *echoProto) Init(ctx proto.Context) { p.inited++ }

func (p *echoProto) Tick(ctx proto.Context) {
	p.ticks++
	if p.pingOn != peer.NoAddr {
		ctx.Send(p.pingOn, testMsg{kind: "ping", size: 1})
	}
}

func (p *echoProto) Handle(ctx proto.Context, from peer.Addr, msg Message) {
	m := msg.(testMsg)
	p.got = append(p.got, m.kind)
	if m.kind == "ping" {
		ctx.Send(from, testMsg{kind: "pong", size: 1})
	}
}

func TestTickScheduling(t *testing.T) {
	n := New(Config{Seed: 1})
	a := n.AddNode()
	p := &echoProto{pingOn: peer.NoAddr}
	if err := n.Attach(a, 1, p, 10, 0); err != nil {
		t.Fatal(err)
	}
	n.Run(100)
	if p.inited != 1 {
		t.Errorf("inited = %d, want 1", p.inited)
	}
	// Init at 0, ticks at 10,20,...,100 -> 10 ticks.
	if p.ticks != 10 {
		t.Errorf("ticks = %d, want 10", p.ticks)
	}
}

func TestStartOffsetStaggersTicks(t *testing.T) {
	n := New(Config{Seed: 1})
	a := n.AddNode()
	p := &echoProto{pingOn: peer.NoAddr}
	if err := n.Attach(a, 1, p, 10, 7); err != nil {
		t.Fatal(err)
	}
	n.Run(100)
	// Init at 7, ticks at 17,27,...,97 -> 9 ticks.
	if p.ticks != 9 {
		t.Errorf("ticks = %d, want 9", p.ticks)
	}
}

func TestMessageRoundTrip(t *testing.T) {
	n := New(Config{Seed: 1})
	a, b := n.AddNode(), n.AddNode()
	pa := &echoProto{pingOn: b}
	pb := &echoProto{pingOn: peer.NoAddr}
	if err := n.Attach(a, 1, pa, 10, 0); err != nil {
		t.Fatal(err)
	}
	if err := n.Attach(b, 1, pb, 0, 0); err != nil {
		t.Fatal(err)
	}
	n.Run(50)
	n.Run(55) // drain messages still in flight at the horizon
	if len(pb.got) == 0 || pb.got[0] != "ping" {
		t.Fatalf("b saw %v, want pings", pb.got)
	}
	if len(pa.got) == 0 || pa.got[0] != "pong" {
		t.Fatalf("a saw %v, want pongs", pa.got)
	}
	st := n.Stats()
	if st.Sent != st.Delivered || st.Dropped != 0 {
		t.Errorf("lossless run should deliver all: %+v", st)
	}
	if st.WireUnits != st.Sent {
		t.Errorf("wire units = %d, want %d (1 per message)", st.WireUnits, st.Sent)
	}
}

func TestDropRateStatistics(t *testing.T) {
	n := New(Config{Seed: 42, Drop: 0.2})
	a, b := n.AddNode(), n.AddNode()
	pa := &echoProto{pingOn: b}
	pb := &echoProto{pingOn: peer.NoAddr}
	if err := n.Attach(a, 1, pa, 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := n.Attach(b, 1, pb, 0, 0); err != nil {
		t.Fatal(err)
	}
	n.Run(20000)
	st := n.Stats()
	rate := float64(st.Dropped) / float64(st.Sent)
	if math.Abs(rate-0.2) > 0.02 {
		t.Errorf("drop rate %.3f, want ~0.2 (sent=%d dropped=%d)", rate, st.Sent, st.Dropped)
	}
}

// TestPairLossMatchesAnalysis validates the paper's Section 5 claim: with a
// 20% uniform drop probability and request/answer message pairs, the
// expected overall loss of messages is 28%, because a dropped request
// suppresses the answer entirely.
func TestPairLossMatchesAnalysis(t *testing.T) {
	n := New(Config{Seed: 7, Drop: 0.2})
	a, b := n.AddNode(), n.AddNode()
	pa := &echoProto{pingOn: b}
	pb := &echoProto{pingOn: peer.NoAddr}
	if err := n.Attach(a, 1, pa, 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := n.Attach(b, 1, pb, 0, 0); err != nil {
		t.Fatal(err)
	}
	n.Run(50000)
	requests := float64(pa.ticks)
	// Of the information flow (2 messages per exchange attempted), the
	// fraction that fails is 1 - (delivered pings + delivered pongs) /
	// (2 * requests). Delivered pings = len(pb.got); pongs = len(pa.got).
	loss := 1 - float64(len(pb.got)+len(pa.got))/(2*requests)
	if math.Abs(loss-0.28) > 0.02 {
		t.Errorf("pair loss %.3f, want ~0.28", loss)
	}
}

func TestKillSilencesNode(t *testing.T) {
	n := New(Config{Seed: 1})
	a, b := n.AddNode(), n.AddNode()
	pa := &echoProto{pingOn: b}
	pb := &echoProto{pingOn: peer.NoAddr}
	if err := n.Attach(a, 1, pa, 10, 0); err != nil {
		t.Fatal(err)
	}
	if err := n.Attach(b, 1, pb, 0, 0); err != nil {
		t.Fatal(err)
	}
	n.Run(35)
	seen := len(pb.got)
	if seen == 0 {
		t.Fatal("no traffic before kill")
	}
	n.Kill(b)
	if n.Alive(b) {
		t.Error("b should be dead")
	}
	n.Run(100)
	if len(pb.got) != seen {
		t.Errorf("dead node handled %d more messages", len(pb.got)-seen)
	}
	if n.Stats().DeadDest == 0 {
		t.Error("expected dead-destination accounting")
	}
}

func TestKillStopsTicks(t *testing.T) {
	n := New(Config{Seed: 1})
	a := n.AddNode()
	p := &echoProto{pingOn: peer.NoAddr}
	if err := n.Attach(a, 1, p, 10, 0); err != nil {
		t.Fatal(err)
	}
	n.Run(25)
	ticks := p.ticks
	n.Kill(a)
	n.Run(200)
	if p.ticks != ticks {
		t.Errorf("dead node ticked %d more times", p.ticks-ticks)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() ([]string, Stats) {
		n := New(Config{Seed: 99, Drop: 0.3, MinLatency: 1, MaxLatency: 9})
		a, b := n.AddNode(), n.AddNode()
		pa := &echoProto{pingOn: b}
		pb := &echoProto{pingOn: a}
		_ = n.Attach(a, 1, pa, 3, 0)
		_ = n.Attach(b, 1, pb, 5, 2)
		n.Run(1000)
		return append(pa.got, pb.got...), n.Stats()
	}
	g1, s1 := run()
	g2, s2 := run()
	if s1 != s2 {
		t.Fatalf("stats diverged: %+v vs %+v", s1, s2)
	}
	if len(g1) != len(g2) {
		t.Fatalf("trace length diverged: %d vs %d", len(g1), len(g2))
	}
	for i := range g1 {
		if g1[i] != g2[i] {
			t.Fatalf("trace diverged at %d: %s vs %s", i, g1[i], g2[i])
		}
	}
}

func TestLatencyBounds(t *testing.T) {
	n := New(Config{Seed: 5, MinLatency: 3, MaxLatency: 8})
	a, b := n.AddNode(), n.AddNode()
	var deliveredAt []int64
	pb := &recorderProto{onMsg: func(now int64) { deliveredAt = append(deliveredAt, now) }}
	if err := n.Attach(b, 1, pb, 0, 0); err != nil {
		t.Fatal(err)
	}
	pa := &echoProto{pingOn: b}
	if err := n.Attach(a, 1, pa, 10, 0); err != nil {
		t.Fatal(err)
	}
	n.Run(500)
	if len(deliveredAt) == 0 {
		t.Fatal("nothing delivered")
	}
	for _, at := range deliveredAt {
		lat := at % 10 // pings are sent exactly at multiples of 10
		if lat < 3 || lat > 8 {
			t.Fatalf("latency %d outside [3, 8]", lat)
		}
	}
}

type recorderProto struct {
	onMsg func(now int64)
}

func (p *recorderProto) Init(proto.Context) {}
func (p *recorderProto) Tick(proto.Context) {}
func (p *recorderProto) Handle(ctx proto.Context, _ peer.Addr, _ Message) {
	p.onMsg(ctx.Now())
}

func TestAtSchedulesFunctions(t *testing.T) {
	n := New(Config{Seed: 1})
	var times []int64
	n.At(30, func() { times = append(times, n.Now()) })
	n.At(10, func() { times = append(times, n.Now()) })
	n.Run(100)
	if len(times) != 2 || times[0] != 10 || times[1] != 30 {
		t.Errorf("got %v, want [10 30]", times)
	}
}

func TestAttachErrors(t *testing.T) {
	n := New(Config{Seed: 1})
	a := n.AddNode()
	p := &echoProto{pingOn: peer.NoAddr}
	if err := n.Attach(peer.Addr(42), 1, p, 10, 0); err == nil {
		t.Error("attach to unknown address should fail")
	}
	if err := n.Attach(a, 1, p, 10, 0); err != nil {
		t.Fatal(err)
	}
	if err := n.Attach(a, 1, p, 10, 0); err == nil {
		t.Error("duplicate protocol binding should fail")
	}
}

func TestRunUntil(t *testing.T) {
	n := New(Config{Seed: 1})
	a := n.AddNode()
	p := &echoProto{pingOn: peer.NoAddr}
	if err := n.Attach(a, 1, p, 10, 0); err != nil {
		t.Fatal(err)
	}
	ok := n.RunUntil(func() bool { return p.ticks >= 5 }, 10, 1000)
	if !ok {
		t.Fatal("condition never satisfied")
	}
	if p.ticks < 5 || p.ticks > 6 {
		t.Errorf("ticks = %d, want about 5", p.ticks)
	}
	ok = n.RunUntil(func() bool { return false }, 10, 200)
	if ok {
		t.Error("impossible condition reported satisfied")
	}
}

func TestLinkFaultAndPartition(t *testing.T) {
	n := New(Config{Seed: 9})
	a, b, c := n.AddNode(), n.AddNode(), n.AddNode()
	pa := &echoProto{pingOn: b}
	pb := &echoProto{pingOn: c}
	pc := &echoProto{pingOn: peer.NoAddr}
	for _, bind := range []struct {
		addr peer.Addr
		p    *echoProto
	}{{a, pa}, {b, pb}, {c, pc}} {
		if err := n.Attach(bind.addr, 1, bind.p, 10, 0); err != nil {
			t.Fatal(err)
		}
	}
	// Partition {a} | {b, c}: a<->b cut, b<->c open. b still receives
	// pongs from c (intra-partition), but never a ping from a.
	n.Partition([]peer.Addr{a}, []peer.Addr{b, c})
	n.Run(100)
	for _, kind := range pb.got {
		if kind == "ping" {
			t.Error("b received a ping across the partition")
		}
	}
	if len(pc.got) == 0 {
		t.Error("intra-partition traffic should flow")
	}
	if n.Stats().Dropped == 0 {
		t.Error("partition drops should be accounted")
	}
	// Heal: pings from a reach b again.
	n.SetLinkFault(nil)
	n.Run(200)
	pings := 0
	for _, kind := range pb.got {
		if kind == "ping" {
			pings++
		}
	}
	if pings == 0 {
		t.Error("healed link still silent")
	}
}
