package simnet

import (
	"fmt"
	"testing"

	"repro/internal/peer"
	"repro/internal/proto"
)

// shardProbe is a self-contained test protocol for the sharded engine: all
// state is per node, and every callback folds its full observable context —
// kind, virtual time, sender, payload — into a running hash. Two runs whose
// per-node hashes all agree dispatched byte-for-byte identical callback
// sequences at identical times, which is exactly the invariance the sharded
// engine promises.
//
// Traffic shape: every tick (up to maxTicks) sends fanout pings to
// rng-chosen peers across the whole address space, so most messages cross
// shard boundaries; a ping with hops left is answered back at the sender,
// so traffic flows both directions through every barrier.
type shardProbe struct {
	peers    int
	fanout   int
	maxTicks int

	ticks int
	hash  uint64
}

func (p *shardProbe) mix(vals ...int64) {
	for _, v := range vals {
		p.hash = splitmix64(p.hash ^ uint64(v))
	}
}

type probeMsg struct {
	hop int32
	tag int64
}

func (probeMsg) WireSize() int { return 3 }

func (p *shardProbe) Init(ctx proto.Context) {
	p.mix(1, ctx.Now(), int64(ctx.Self()))
}

func (p *shardProbe) Tick(ctx proto.Context) {
	p.ticks++
	p.mix(2, ctx.Now())
	if p.ticks > p.maxTicks {
		return
	}
	for i := 0; i < p.fanout; i++ {
		to := peer.Addr(ctx.Rand().Intn(p.peers))
		ctx.Send(to, probeMsg{hop: 2, tag: int64(ctx.Rand().Int31())})
	}
}

func (p *shardProbe) Handle(ctx proto.Context, from peer.Addr, msg proto.Message) {
	m := msg.(probeMsg)
	p.mix(3, ctx.Now(), int64(from), int64(m.hop), m.tag)
	if m.hop > 0 {
		ctx.Send(from, probeMsg{hop: m.hop - 1, tag: int64(p.hash)})
	}
}

// probeResult is everything observable about a scenario run: the per-node
// callback hashes and tick counts in creation order, the final traffic
// counters, the processed-event count, and the final clock.
type probeResult struct {
	hashes []uint64
	ticks  []int
	stats  Stats
	events int
	now    int64
	nodes  int
}

// runProbeScenario runs a fixed workload — n nodes ticking and pinging,
// plus (optionally) churn from both At closures and harness calls between
// Run windows — and returns the full observable result. The workload is a
// pure function of cfg, so results are comparable across shard counts.
// fixed freezes the adaptive window multiplier at 1 (the pre-adaptive
// fixed-window engine), giving the golden the adaptive runs are pinned to.
func runProbeScenario(t *testing.T, cfg Config, n int, churn, fixed bool) probeResult {
	t.Helper()
	net := New(cfg)
	net.adaptOff = fixed
	var protos []*shardProbe
	addProbe := func() {
		a := net.AddNode()
		pr := &shardProbe{peers: n, fanout: 2, maxTicks: 30}
		if err := net.Attach(a, 1, pr, 3, int64(a%3)); err != nil {
			t.Fatal(err)
		}
		protos = append(protos, pr)
	}
	for i := 0; i < n; i++ {
		addProbe()
	}
	if churn {
		// Mid-run churn through At closures: exercised inside serial
		// windows, interleaved with parallel ones.
		net.At(25, func() {
			net.Kill(peer.Addr(1 % n))
			net.Kill(peer.Addr(7 % n))
		})
		net.At(40, func() { addProbe(); addProbe() })
		net.At(61, func() { net.Kill(peer.Addr(net.NumNodes() - 1)) })
	}
	events := net.Run(30)
	if churn {
		// Harness churn between Run calls (engine idle).
		net.Kill(peer.Addr(5 % n))
		addProbe()
	}
	events += net.Run(75)
	events += net.Run(220)
	res := probeResult{
		stats:  net.Stats(),
		events: events,
		now:    net.Now(),
		nodes:  net.NumNodes(),
	}
	for _, pr := range protos {
		res.hashes = append(res.hashes, pr.hash)
		res.ticks = append(res.ticks, pr.ticks)
	}
	return res
}

// sameProbeResult fails the test on the first observable difference.
func sameProbeResult(t *testing.T, label string, want, got probeResult) {
	t.Helper()
	if got.nodes != want.nodes {
		t.Fatalf("%s: nodes = %d, want %d", label, got.nodes, want.nodes)
	}
	if got.stats != want.stats {
		t.Errorf("%s: stats = %+v, want %+v", label, got.stats, want.stats)
	}
	if got.events != want.events {
		t.Errorf("%s: processed %d events, want %d", label, got.events, want.events)
	}
	if got.now != want.now {
		t.Errorf("%s: now = %d, want %d", label, got.now, want.now)
	}
	for i := range want.hashes {
		if got.hashes[i] != want.hashes[i] || got.ticks[i] != want.ticks[i] {
			t.Fatalf("%s: node %d trace hash/ticks = (%x, %d), want (%x, %d)",
				label, i, got.hashes[i], got.ticks[i], want.hashes[i], want.ticks[i])
		}
	}
}

// TestShardedMatchesSequential pins the strongest claim: with no mid-window
// engine randomness (Drop == 0, fixed latency — including the default
// instant-delivery config), a sharded run is byte-identical to the
// sequential engine for every shard count, through churn from both At
// closures and idle harness calls. Shards ∈ {0, 1} must both take the
// sequential path.
func TestShardedMatchesSequential(t *testing.T) {
	configs := []struct {
		name string
		cfg  Config
	}{
		{"instant", Config{Seed: 42}},
		{"fixedlat3", Config{Seed: 42, MinLatency: 3, MaxLatency: 3}},
	}
	for _, tc := range configs {
		for _, n := range []int{5, 64} {
			for _, churn := range []bool{false, true} {
				ref := runProbeScenario(t, tc.cfg, n, churn, false)
				if ref.stats.Sent == 0 || ref.stats.Delivered == 0 {
					t.Fatalf("%s: degenerate reference run: %+v", tc.name, ref.stats)
				}
				for _, shards := range []int{1, 2, 4, 7} {
					cfg := tc.cfg
					cfg.Shards = shards
					got := runProbeScenario(t, cfg, n, churn, false)
					sameProbeResult(t,
						fmt.Sprintf("%s/n=%d/churn=%v/shards=%d", tc.name, n, churn, shards),
						ref, got)
				}
			}
		}
	}
}

// TestShardedInvarianceStochastic pins the weaker claim that holds with
// engine randomness in play (Drop > 0, a latency window): every shard
// count > 1 produces the identical run, because drop and latency draw from
// per-node wire streams that are pure functions of (seed, addr). The
// sequential engine draws those from its one global stream and legitimately
// diverges, so it is not in the comparison set.
func TestShardedInvarianceStochastic(t *testing.T) {
	cfg := Config{Seed: 99, Drop: 0.25, MinLatency: 1, MaxLatency: 6}
	cfg.Shards = 2
	ref := runProbeScenario(t, cfg, 64, true, false)
	if ref.stats.Dropped == 0 {
		t.Fatal("stochastic scenario dropped nothing; drop path untested")
	}
	if ref.stats.DeadDest == 0 {
		t.Fatal("churn scenario hit no dead destinations; kill path untested")
	}
	for _, shards := range []int{3, 4, 8} {
		cfg.Shards = shards
		got := runProbeScenario(t, cfg, 64, true, false)
		sameProbeResult(t, fmt.Sprintf("shards=%d", shards), ref, got)
	}
	// Determinism: the same configuration twice is the same run.
	cfg.Shards = 4
	a := runProbeScenario(t, cfg, 64, true, false)
	b := runProbeScenario(t, cfg, 64, true, false)
	sameProbeResult(t, "repeat", a, b)
}

// TestShardedConservation checks the traffic ledger balances once all
// messages have resolved: everything sent was delivered, dropped, or hit a
// dead destination, with per-shard counters summing to the global truth.
func TestShardedConservation(t *testing.T) {
	for _, shards := range []int{0, 4} {
		res := runProbeScenario(t, Config{Seed: 5, Drop: 0.2, MinLatency: 1, MaxLatency: 4, Shards: shards}, 48, true, false)
		s := res.stats
		if s.Sent != s.Delivered+s.Dropped+s.DeadDest {
			t.Errorf("shards=%d: ledger imbalance: %+v", shards, s)
		}
		if s.WireUnits != 3*s.Sent {
			t.Errorf("shards=%d: WireUnits = %d, want %d (3 per message)", shards, s.WireUnits, 3*s.Sent)
		}
	}
}

// TestShardedSerialWindowAt pins the evFunc path: At closures run in serial
// windows at their exact times, in order, observe a consistent global
// clock, may send (drawing from the same wire streams as parallel windows),
// and may schedule further closures due inside the current window.
func TestShardedSerialWindowAt(t *testing.T) {
	for _, shards := range []int{2, 5} {
		net := New(Config{Seed: 7, Shards: shards})
		n := 16
		protos := make([]*shardProbe, n)
		for i := 0; i < n; i++ {
			a := net.AddNode()
			protos[i] = &shardProbe{peers: n, fanout: 1, maxTicks: 100}
			if err := net.Attach(a, 1, protos[i], 4, 0); err != nil {
				t.Fatal(err)
			}
		}
		var fired []int64
		net.At(10, func() {
			fired = append(fired, net.Now())
			// A closure scheduling at its own instant must still run,
			// inside this same serial window.
			net.At(10, func() { fired = append(fired, net.Now()) })
			// And a closure may inject traffic directly.
			net.Send(0, 1, 1, probeMsg{hop: 0, tag: 1234})
		})
		net.At(23, func() { fired = append(fired, net.Now()) })
		net.Run(50)
		want := []int64{10, 10, 23}
		if len(fired) != len(want) {
			t.Fatalf("shards=%d: fired %v, want %v", shards, fired, want)
		}
		for i := range want {
			if fired[i] != want[i] {
				t.Fatalf("shards=%d: fired %v, want %v", shards, fired, want)
			}
		}
	}
}

// TestShardedOnBarrier pins the barrier hook contract: it runs with every
// shard quiescent and all generated events merged, at a strictly increasing
// clock, and protocol state read there is stable (monotone tick counts that
// end at the true total).
func TestShardedOnBarrier(t *testing.T) {
	net := New(Config{Seed: 11, Shards: 4})
	n := 32
	protos := make([]*shardProbe, n)
	for i := 0; i < n; i++ {
		a := net.AddNode()
		protos[i] = &shardProbe{peers: n, fanout: 2, maxTicks: 50}
		if err := net.Attach(a, 1, protos[i], 3, int64(i%3)); err != nil {
			t.Fatal(err)
		}
	}
	calls := 0
	lastNow := int64(-1)
	lastTicks := -1
	net.OnBarrier(func(now int64) {
		calls++
		if now <= lastNow {
			t.Fatalf("barrier now %d not increasing past %d", now, lastNow)
		}
		lastNow = now
		total := 0
		for _, p := range protos {
			total += p.ticks
		}
		if total < lastTicks {
			t.Fatalf("tick total regressed at barrier: %d -> %d", lastTicks, total)
		}
		lastTicks = total
	})
	net.Run(90)
	if calls == 0 {
		t.Fatal("barrier hook never ran")
	}
	total := 0
	for _, p := range protos {
		total += p.ticks
	}
	if lastTicks != total {
		t.Errorf("last barrier saw %d ticks, final total %d", lastTicks, total)
	}
	net.OnBarrier(nil)
	net.Run(120)
	if calls == 0 {
		t.Fatal("unreachable")
	}
}

// TestShardedChurnHammer is the race hammer: many short Run windows with
// kills, node additions, and At closures between and during them, at a drop
// rate and latency window that keep cross-shard traffic and dead-letter
// paths hot. Run under -race it checks the barrier discipline; its result
// must also be bit-for-bit repeatable.
func TestShardedChurnHammer(t *testing.T) {
	run := func() probeResult {
		net := New(Config{Seed: 1234, Drop: 0.15, MinLatency: 1, MaxLatency: 5, Shards: 4})
		var protos []*shardProbe
		add := func() {
			a := net.AddNode()
			pr := &shardProbe{peers: 96, fanout: 3, maxTicks: 1 << 30}
			if err := net.Attach(a, 1, pr, 2, int64(a%2)); err != nil {
				t.Fatal(err)
			}
			protos = append(protos, pr)
		}
		for i := 0; i < 96; i++ {
			add()
		}
		now := int64(0)
		for step := 0; step < 40; step++ {
			now += 5
			net.Run(now)
			switch step % 4 {
			case 0:
				net.Kill(peer.Addr((step * 13) % 96))
			case 1:
				add()
			case 2:
				st := step
				net.At(now+2, func() { net.Kill(peer.Addr((st * 7) % 96)) })
			case 3:
				net.At(now+1, func() { add() })
			}
		}
		net.Run(now + 40)
		res := probeResult{stats: net.Stats(), now: net.Now(), nodes: net.NumNodes()}
		for _, pr := range protos {
			res.hashes = append(res.hashes, pr.hash)
			res.ticks = append(res.ticks, pr.ticks)
		}
		return res
	}
	a := run()
	if a.stats.Delivered == 0 || a.stats.Dropped == 0 || a.stats.DeadDest == 0 {
		t.Fatalf("hammer did not exercise all traffic paths: %+v", a.stats)
	}
	b := run()
	sameProbeResult(t, "hammer repeat", a, b)
}

// localProbe is a shard-local workload: every tick sends a message to the
// node itself, so no event ever crosses a shard boundary. This is the
// regime the adaptive window exists for — without widening, the engine
// pays a full barrier every lookahead for exchange that never happens.
type localProbe struct {
	ticks int
	hash  uint64
}

func (p *localProbe) mix(vals ...int64) {
	for _, v := range vals {
		p.hash = splitmix64(p.hash ^ uint64(v))
	}
}

func (p *localProbe) Init(ctx proto.Context) { p.mix(1, ctx.Now(), int64(ctx.Self())) }

func (p *localProbe) Tick(ctx proto.Context) {
	p.ticks++
	p.mix(2, ctx.Now())
	ctx.Send(ctx.Self(), probeMsg{hop: 0, tag: int64(ctx.Rand().Int31())})
}

func (p *localProbe) Handle(ctx proto.Context, from peer.Addr, msg proto.Message) {
	m := msg.(probeMsg)
	p.mix(3, ctx.Now(), int64(from), m.tag)
}

// runLocalScenario runs the shard-local workload and returns the full
// observable result plus the widened-window and barrier counts.
func runLocalScenario(t *testing.T, shards int, fixed bool) (probeResult, int64, int) {
	t.Helper()
	net := New(Config{Seed: 17, Shards: shards, MinLatency: 2, MaxLatency: 2})
	net.adaptOff = fixed
	const n = 24
	var protos []*localProbe
	for i := 0; i < n; i++ {
		a := net.AddNode()
		pr := &localProbe{}
		if err := net.Attach(a, 1, pr, 5, int64(a%5)); err != nil {
			t.Fatal(err)
		}
		protos = append(protos, pr)
	}
	barriers := 0
	net.OnBarrier(func(int64) { barriers++ })
	events := net.Run(300)
	events += net.Run(600)
	res := probeResult{stats: net.Stats(), events: events, now: net.Now(), nodes: net.NumNodes()}
	for _, pr := range protos {
		res.hashes = append(res.hashes, pr.hash)
		res.ticks = append(res.ticks, pr.ticks)
	}
	return res, net.WideWindows(), barriers
}

// TestAdaptiveWideningLocalTraffic pins the adaptive window's contract on
// the workload it targets: with purely shard-local traffic the adaptive
// run must (a) widen — and keep widening — so barriers collapse by orders
// of magnitude, and (b) stay byte-identical to both the fixed-window
// sharded engine and the sequential engine.
func TestAdaptiveWideningLocalTraffic(t *testing.T) {
	seq, seqWide, _ := runLocalScenario(t, 0, false)
	fixed, fixWide, fixBarriers := runLocalScenario(t, 4, true)
	ada, adaWide, adaBarriers := runLocalScenario(t, 4, false)
	sameProbeResult(t, "fixed-vs-sequential", seq, fixed)
	sameProbeResult(t, "adaptive-vs-fixed", fixed, ada)
	if seqWide != 0 || fixWide != 0 {
		t.Errorf("widening engaged where disabled: seq=%d fixed=%d", seqWide, fixWide)
	}
	if adaWide == 0 {
		t.Error("adaptive widening never engaged on a shard-local workload")
	}
	if adaBarriers*4 > fixBarriers {
		t.Errorf("widening did not collapse barriers: adaptive=%d fixed=%d", adaBarriers, fixBarriers)
	}
}

// TestAdaptiveWideningCrossTraffic pins the other half of the contract on
// the cross-heavy probe scenario (fanout pings across the whole address
// space, plus churn): cross-shard traffic must keep resetting the
// multiplier so most windows still run parallel at the conservative
// width, and the trace must stay byte-identical to the fixed-window
// golden — adaptation moves barriers, never events.
func TestAdaptiveWideningCrossTraffic(t *testing.T) {
	cfg := Config{Seed: 42, MinLatency: 3, MaxLatency: 3, Shards: 4}
	fixed := runProbeScenario(t, cfg, 64, true, true)
	ada := runProbeScenario(t, cfg, 64, true, false)
	sameProbeResult(t, "adaptive-vs-fixed-golden", fixed, ada)

	// Stochastic config too: drops and a latency window change which
	// messages exist, not the invariance argument.
	scfg := Config{Seed: 99, Drop: 0.25, MinLatency: 1, MaxLatency: 6, Shards: 4}
	sfixed := runProbeScenario(t, scfg, 64, true, true)
	sada := runProbeScenario(t, scfg, 64, true, false)
	sameProbeResult(t, "adaptive-vs-fixed-stochastic", sfixed, sada)
}
