package simnet

import "repro/internal/sched"

// eventQueue orders simulator events by (virtual time, insertion sequence).
// It is a thin adapter over the shared calendar-queue subsystem
// (internal/sched): a 256-bucket wheel of width 1 — one bucket per virtual
// instant, sized to the engines' bounded horizon (tick period 10, latency
// ≤ ~10) — with the overflow level absorbing anything scheduled further out
// (long At offsets, churn schedules). Enqueue and dequeue are O(1)
// amortised, against the O(log n) sifts of the pooled indexed min-heap this
// replaced, and steady state allocates nothing: buckets recycle their
// backing arrays in place.
//
// Ordering is the heap's exact contract — strict (time, seq) with seq the
// insertion sequence — so pop order, and therefore every golden trace, is
// byte-identical to both previous implementations (see
// TestGoldenQueueOrderMatchesLegacyHeap).
//
// The wheel stamps its own insertion sequence; event.seq is not consulted
// for ordering here. Network.push still stamps it because the legacy-heap
// golden fixture orders by it — the two sequences advance in lockstep (one
// stamp per push), which is exactly what the golden test asserts pop by pop.
type eventQueue struct {
	q sched.Queue[event]
}

func (q *eventQueue) len() int { return q.q.Len() }

// peekTime returns the virtual time of the earliest event. It must not be
// called on an empty queue.
func (q *eventQueue) peekTime() int64 {
	t, _ := q.q.PeekTime()
	return t
}

// push inserts e, ordered at e.time with ties broken by insertion order.
func (q *eventQueue) push(e event) { q.q.Push(e.time, e) }

// pop removes and returns the earliest event. It must not be called on an
// empty queue.
func (q *eventQueue) pop() event {
	e, _ := q.q.Pop()
	return e
}
