package simnet

import "repro/internal/sched"

// eventQueue orders simulator events by (virtual time, insertion sequence).
// It is a thin adapter over the shared calendar-queue subsystem
// (internal/sched): a wheel of width-1 buckets — one bucket per virtual
// instant — whose ring size New derives from the network's latency bound
// (queueBuckets), with the overflow level absorbing anything scheduled
// further out (long At offsets, churn schedules). Enqueue and dequeue are
// O(1) amortised, against the O(log n) sifts of the pooled indexed
// min-heap this replaced, and steady state allocates nothing: buckets
// recycle their backing arrays in place.
//
// Ordering is the heap's exact contract — strict (time, seq) with seq the
// insertion sequence — so pop order, and therefore every golden trace, is
// byte-identical to both previous implementations and independent of the
// bucket geometry (see TestGoldenQueueOrderMatchesLegacyHeap and the
// determinism contract in internal/sched).
//
// The wheel stamps its own insertion sequence; event.seq is not consulted
// for ordering here. Network.push still stamps it because the legacy-heap
// golden fixture orders by it — the two sequences advance in lockstep (one
// stamp per push), which is exactly what the golden test asserts pop by pop.
type eventQueue struct {
	q *sched.Queue[event]
}

// init sizes the wheel: `buckets` width-1 buckets (rounded up to a power
// of two by sched.New).
func (q *eventQueue) init(buckets int) { q.q = sched.New[event](0, buckets) }

// lazyInit keeps the zero eventQueue usable (tests build one directly);
// Network.New always calls init with the derived geometry first.
func (q *eventQueue) lazyInit() *sched.Queue[event] {
	if q.q == nil {
		q.init(256)
	}
	return q.q
}

func (q *eventQueue) len() int {
	if q.q == nil {
		return 0
	}
	return q.q.Len()
}

// peekTime returns the virtual time of the earliest event. It must not be
// called on an empty queue.
func (q *eventQueue) peekTime() int64 {
	t, _ := q.q.PeekTime()
	return t
}

// push inserts e, ordered at e.time with ties broken by insertion order.
func (q *eventQueue) push(e event) { q.lazyInit().Push(e.time, e) }

// pop removes and returns the earliest event. It must not be called on an
// empty queue.
func (q *eventQueue) pop() event {
	e, _ := q.q.Pop()
	return e
}

// peek returns the earliest event without removing it. The sharded engine's
// serial windows use it to merge several wheels by the events' embedded
// (time, seq) keys.
func (q *eventQueue) peek() (event, bool) {
	if q.q == nil || q.q.Len() == 0 {
		return event{}, false
	}
	return q.q.Peek()
}
