package simnet

// eventQueue is a pooled indexed min-heap: events live as values in a pool
// slice recycled through a free list, and the heap orders 4-byte indices
// into that pool. Compared to the previous container/heap over []*event
// this removes the per-event heap allocation — the dominant allocation in
// Network.Send and tick rescheduling — and sifts small indices instead of
// large event values. Ordering is identical: (time, seq) ascending, and seq
// is a strictly increasing insertion sequence, so pop order (and therefore
// every run) is byte-identical to the old implementation.
type eventQueue struct {
	pool []event  // event storage; slots on the free list are zeroed
	heap []uint32 // binary min-heap of pool indices
	free []uint32 // recycled pool slots
}

func (q *eventQueue) len() int { return len(q.heap) }

// peekTime returns the virtual time of the earliest event. It must not be
// called on an empty queue.
func (q *eventQueue) peekTime() int64 { return q.pool[q.heap[0]].time }

func (q *eventQueue) less(a, b uint32) bool {
	ea, eb := &q.pool[a], &q.pool[b]
	if ea.time != eb.time {
		return ea.time < eb.time
	}
	return ea.seq < eb.seq
}

// push inserts e, reusing a pooled slot when one is free.
func (q *eventQueue) push(e event) {
	var idx uint32
	if n := len(q.free); n > 0 {
		idx = q.free[n-1]
		q.free = q.free[:n-1]
		q.pool[idx] = e
	} else {
		idx = uint32(len(q.pool))
		q.pool = append(q.pool, e)
	}
	q.heap = append(q.heap, idx)
	q.siftUp(len(q.heap) - 1)
}

// pop removes and returns the earliest event, releasing its pool slot. It
// must not be called on an empty queue.
func (q *eventQueue) pop() event {
	idx := q.heap[0]
	last := len(q.heap) - 1
	q.heap[0] = q.heap[last]
	q.heap = q.heap[:last]
	if last > 0 {
		q.siftDown(0)
	}
	e := q.pool[idx]
	q.pool[idx] = event{} // drop msg/fn references so they can be collected
	q.free = append(q.free, idx)
	return e
}

func (q *eventQueue) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(q.heap[i], q.heap[parent]) {
			return
		}
		q.heap[i], q.heap[parent] = q.heap[parent], q.heap[i]
		i = parent
	}
}

func (q *eventQueue) siftDown(i int) {
	n := len(q.heap)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		least := left
		if right := left + 1; right < n && q.less(q.heap[right], q.heap[left]) {
			least = right
		}
		if !q.less(q.heap[least], q.heap[i]) {
			return
		}
		q.heap[i], q.heap[least] = q.heap[least], q.heap[i]
		i = least
	}
}
