// Sharded execution: conservative parallel discrete-event simulation.
//
// With Config.Shards > 1 the nodes are partitioned across P execution
// shards, each owning a calendar wheel (internal/sched) holding exactly the
// events addressed to its nodes. The engine advances in windows: it finds
// the earliest pending event time `base` and lets every shard dispatch its
// own events through [base, base+W-1] concurrently, where the lookahead W
// is the minimum distance any dispatched event can project a new event into
// the future — the smaller of the message-latency floor and the smallest
// attached tick period. Every event generated inside a window therefore
// lands strictly beyond it, so shards never need to see each other's
// mid-window output: generated events buffer per shard and cross the shard
// boundary at the window barrier.
//
// Determinism is the sequential engine's own contract, replicated. The
// sequential engine dispatches in strict (time, insertion-seq) order and
// stamps children with consecutive sequence numbers in push order. Inside a
// parallel window each shard dispatches its slice of the global (time, seq)
// order in that order, and appends generated events in push order, so each
// shard's buffer is already sorted by (parent time, parent seq, push
// index). The barrier merges the P buffers on exactly that key — which
// reconstructs the global sequential push order — and assigns the dense
// global sequence numbers in merge order. The wheels' pop order is (time,
// insertion-seq), so the next window again dispatches the sequential order:
// by induction the whole run is event-for-event identical to the sequential
// engine, for any shard count, provided dispatching itself never consults
// global mutable state. The engine guarantees that for its own state
// (per-shard stats, per-node RNGs, per-node wire streams); workloads whose
// protocols share mutable state across nodes forfeit cross-count
// byte-identity but stay deterministic per shard count only if that state
// is itself deterministic — the experiment harness swaps its one such
// object (the oracle's shared sample stream) for per-node streams when
// sharding.
//
// evFunc events (At closures) may touch arbitrary network state, so any
// window containing one runs serially on the driving goroutine in global
// (time, seq) order — the sequential semantics exactly.
package simnet

import (
	"math"
	"sync"

	"repro/internal/peer"
)

// shardState is one execution shard: a wheel of the events owned by the
// shard's nodes, private traffic counters, a shard-local clock, and the
// buffer of events generated during the current window. Only the shard's
// worker touches it inside a window; the driving goroutine merges the
// buffers at the barrier.
type shardState struct {
	queue  eventQueue
	stats  Stats
	now    int64  // time of the event being dispatched
	curSeq uint64 // seq of the event being dispatched
	wend   int64  // current window end (lookahead-violation guard)
	gen    []genEvent
	count  int // events dispatched in the current window
	// Shards sit adjacently in one slice and are written by different
	// workers; keep them off each other's cache lines.
	_ [64]byte
}

// genEvent is an event generated inside a parallel window, tagged with the
// (time, seq) of the event whose dispatch generated it. The tag is the
// barrier's merge key; ev.seq is assigned there.
type genEvent struct {
	ptime int64
	pseq  uint64
	ev    event
}

// emit buffers an event generated during a parallel window. The lookahead
// invariant — generated events land strictly beyond the window — is what
// licenses running the window's shards concurrently, so violating it is an
// engine bug worth dying for.
func (sh *shardState) emit(e event) {
	if e.time <= sh.wend {
		panic("simnet: generated event lands inside its own lookahead window")
	}
	sh.gen = append(sh.gen, genEvent{ptime: sh.now, pseq: sh.curSeq, ev: e})
}

// Sharded reports whether the network runs the sharded engine.
func (n *Network) Sharded() bool { return len(n.shards) > 0 }

// WideWindows reports how many windows ran with an adaptively widened
// lookahead (see lookahead) — an observability counter for tuning, not a
// semantic knob.
func (n *Network) WideWindows() int64 { return n.wideWindows }

// OnBarrier registers fn to run on the driving goroutine after every
// window barrier, with every shard quiescent and all generated events
// merged — the point of a sharded run where a measurement plane (e.g. the
// truth oracle) can safely read protocol state mid-Run. Pass nil to clear.
func (n *Network) OnBarrier(fn func(now int64)) { n.barrier = fn }

// maxAdaptMult caps the adaptive window multiplier: beyond ~1024 base
// lookaheads a window is already amortising its barrier to nothing, and
// the cap keeps base·mult far from int64 overflow for any plausible
// latency floor.
const maxAdaptMult = 1 << 10

// lookahead returns the conservative window width W: the minimum distance
// a dispatched event can schedule into the future. Message latency is
// floored at 1 (wireLatency clamps the MinLatency == 0 draw), and ticks
// reschedule one period ahead, so W = min(latency floor, smallest attached
// period). Recomputed per window: an Attach during a serial window may
// lower the period bound.
//
// W is what licenses running a window's shards concurrently, but it is
// often far too pessimistic: a workload whose traffic stays shard-local
// (self-sends, timers, clustered topologies) pays a full barrier every W
// ticks for cross-shard exchange that never happens. runSharded therefore
// adapts: every window that closes with zero cross-shard events doubles
// adaptMult (capped at maxAdaptMult), and any cross-shard event resets it
// to 1. Widened windows run through runSerialWindow — exact sequential
// semantics at any width — so adaptation affects barrier placement only,
// never the event trace: the trace-invariance tests pin byte-identical
// traces against fixed-window runs.
func (n *Network) lookahead() int64 {
	w := int64(1)
	if n.cfg.MaxLatency > 0 && n.cfg.MinLatency > 1 {
		w = n.cfg.MinLatency
	}
	if n.minPeriod > 0 && n.minPeriod < w {
		w = n.minPeriod
	}
	return w
}

// runSharded is Run for the sharded engine: window-at-a-time until no
// event at or before until remains.
func (n *Network) runSharded(until int64) int {
	processed := 0
	for {
		base := int64(math.MaxInt64)
		for i := range n.shards {
			sh := &n.shards[i]
			if sh.queue.len() > 0 {
				if t := sh.queue.peekTime(); t < base {
					base = t
				}
			}
		}
		if n.coord.len() > 0 {
			if t := n.coord.peekTime(); t < base {
				base = t
			}
		}
		if base == math.MaxInt64 || base > until {
			break
		}
		w := n.lookahead()
		if n.adaptMult < 1 {
			n.adaptMult = 1
		}
		wide := n.adaptMult > 1
		width := w
		if wide {
			width = w * n.adaptMult // adaptMult capped, so this cannot overflow
		}
		wend := base + width - 1
		if wend > until {
			wend = until
		}
		n.crossShard = 0
		if wide || (n.coord.len() > 0 && n.coord.peekTime() <= wend) {
			// Widened windows run serially: runSerialWindow has exact
			// sequential semantics for any window end, whereas the
			// parallel path's lookahead invariant licenses only the base
			// width. The trade is fewer barriers against lost parallelism
			// — a win exactly when traffic is shard-local, which is the
			// condition that widened the window in the first place.
			if wide {
				n.wideWindows++
			}
			processed += n.runSerialWindow(wend)
		} else {
			processed += n.runParallelWindow(wend)
		}
		if n.crossShard == 0 && !n.adaptOff {
			if n.adaptMult < maxAdaptMult {
				n.adaptMult <<= 1
			}
		} else {
			n.adaptMult = 1
		}
		// Every event left anywhere is beyond wend, so the global clock
		// advances monotonically window by window.
		n.now = wend
		if n.barrier != nil {
			n.barrier(n.now)
		}
	}
	if n.now < until {
		n.now = until
	}
	return processed
}

// runParallelWindow dispatches every event in (base, wend] concurrently,
// one worker per shard with due events, then merges the generated events
// at the barrier.
func (n *Network) runParallelWindow(wend int64) int {
	n.mode = modeParallel
	var wg sync.WaitGroup
	for i := range n.shards {
		sh := &n.shards[i]
		sh.count = 0
		if sh.queue.len() == 0 || sh.queue.peekTime() > wend {
			continue
		}
		sh.wend = wend
		wg.Add(1)
		go func(sh *shardState) {
			defer wg.Done()
			cnt := 0
			for sh.queue.len() > 0 && sh.queue.peekTime() <= wend {
				e := sh.queue.pop()
				sh.now = e.time
				sh.curSeq = e.seq
				n.dispatchShard(e, sh)
				cnt++
			}
			sh.count = cnt
		}(sh)
	}
	wg.Wait()
	n.mode = modeIdle
	n.mergeGenerated()
	total := 0
	for i := range n.shards {
		total += n.shards[i].count
	}
	return total
}

// dispatchShard is dispatch for parallel windows: identical semantics, but
// traffic accounts to the shard's counters and generated events buffer for
// the barrier instead of entering a wheel. Only evInit, evTick and
// evMessage reach shard wheels (push routes evFunc to the coordinator),
// and each touches only the destination node's state, which this shard
// owns.
func (n *Network) dispatchShard(e event, sh *shardState) {
	switch e.kind {
	case evInit:
		st := &n.nodes[e.to]
		if !st.alive {
			return
		}
		b := st.find(e.pid)
		if b == nil {
			return
		}
		b.proto.Init(&b.ctx)
		if b.period > 0 {
			sh.emit(event{time: e.time + b.period, kind: evTick, to: e.to, pid: e.pid})
		}
	case evTick:
		st := &n.nodes[e.to]
		if !st.alive {
			return
		}
		b := st.find(e.pid)
		if b == nil {
			return
		}
		b.proto.Tick(&b.ctx)
		sh.emit(event{time: e.time + b.period, kind: evTick, to: e.to, pid: e.pid})
	case evMessage:
		if !n.valid(e.to) || !n.nodes[e.to].alive {
			sh.stats.DeadDest++
			recycle(e.msg)
			return
		}
		b := n.nodes[e.to].find(e.pid)
		if b == nil {
			sh.stats.DeadDest++
			recycle(e.msg)
			return
		}
		sh.stats.Delivered++
		b.proto.Handle(&b.ctx, e.from, e.msg)
		recycle(e.msg)
	}
}

// sendSharded is the in-window half of Send: drop and latency draw from
// the sender's wire stream, traffic accounts to the sender's shard, and in
// a parallel window the message buffers until the barrier. Serial windows
// push immediately (a closure may schedule work due inside the window),
// account globally, but draw from the same wire streams as parallel
// windows so a node's stream consumption is independent of which windows
// happened to run serially.
func (n *Network) sendSharded(from, to peer.Addr, pid ProtoID, msg Message) {
	st := &n.nodes[from]
	sh := &n.shards[st.shard]
	stats, now := &sh.stats, sh.now
	if n.mode == modeSerial {
		stats, now = &n.stats, n.now
	}
	stats.Sent++
	if s, ok := msg.(Sizer); ok {
		stats.WireUnits += int64(s.WireSize())
	}
	if n.linkFault != nil && n.linkFault(from, to) {
		stats.Dropped++
		recycle(msg)
		return
	}
	if n.cfg.Drop > 0 && st.wire.float64() < n.cfg.Drop {
		stats.Dropped++
		recycle(msg)
		return
	}
	e := event{
		time: now + n.wireLatency(&st.wire),
		kind: evMessage,
		to:   to, pid: pid, from: from, msg: msg,
	}
	if n.mode == modeSerial {
		if n.valid(to) && n.nodes[to].shard != st.shard {
			n.crossShard++
		}
		n.push(e)
		return
	}
	sh.emit(e)
}

// wireLatency draws a message latency from the node's wire stream, clamped
// to at least 1 so a generated message always lands strictly beyond the
// window that generated it. (The sequential engine permits a 0 draw when
// MinLatency == 0 < MaxLatency; the sharded engine cannot, and documents
// the clamp on Config.Shards.)
func (n *Network) wireLatency(w *wireRNG) int64 {
	if n.cfg.MaxLatency <= 0 {
		return 1
	}
	if n.cfg.MaxLatency == n.cfg.MinLatency {
		return n.cfg.MinLatency
	}
	l := n.cfg.MinLatency + w.int63n(n.cfg.MaxLatency-n.cfg.MinLatency+1)
	if l < 1 {
		l = 1
	}
	return l
}

// mergeGenerated is the window barrier: a P-way merge of the shards'
// generated-event buffers by (parent time, parent seq) — reconstructing
// the order the sequential engine would have pushed them — assigning the
// dense global sequence numbers in merge order and routing every event to
// its owner shard's wheel. Ties are impossible across shards (parent seqs
// are globally unique) and same-parent runs stay in generation order
// because the merge only ever advances list heads.
func (n *Network) mergeGenerated() {
	heads := n.mergeHeads[:0]
	total := 0
	for i := range n.shards {
		heads = append(heads, 0)
		total += len(n.shards[i].gen)
	}
	n.mergeHeads = heads
	for done := 0; done < total; done++ {
		best := -1
		for i := range n.shards {
			if heads[i] >= len(n.shards[i].gen) {
				continue
			}
			if best < 0 {
				best = i
				continue
			}
			g := &n.shards[i].gen[heads[i]]
			bg := &n.shards[best].gen[heads[best]]
			if g.ptime < bg.ptime || (g.ptime == bg.ptime && g.pseq < bg.pseq) {
				best = i
			}
		}
		g := &n.shards[best].gen[heads[best]]
		heads[best]++
		// Tally cross-shard traffic for the adaptive window: a message
		// whose destination lives on a different shard than the sender is
		// the exchange the barrier exists for. Ticks and inits always stay
		// on their own node's shard.
		if g.ev.kind == evMessage && n.valid(g.ev.to) &&
			n.nodes[g.ev.to].shard != n.nodes[g.ev.from].shard {
			n.crossShard++
		}
		n.push(g.ev)
	}
	for i := range n.shards {
		sh := &n.shards[i]
		clear(sh.gen) // drop message references
		sh.gen = sh.gen[:0]
	}
}

// runSerialWindow dispatches every event due in the window on the driving
// goroutine in global (time, seq) order — the sequential engine's exact
// semantics, including immediate sequencing of generated events. It runs
// whenever an evFunc is due in the window: closures may kill nodes, attach
// protocols, or schedule work at the current instant, none of which can
// overlap a parallel window.
func (n *Network) runSerialWindow(wend int64) int {
	n.mode = modeSerial
	cnt := 0
	for {
		const coordIdx = -1
		best := -2
		var bt int64
		var bs uint64
		if e, ok := n.coord.peek(); ok && e.time <= wend {
			best, bt, bs = coordIdx, e.time, e.seq
		}
		for i := range n.shards {
			e, ok := n.shards[i].queue.peek()
			if !ok || e.time > wend {
				continue
			}
			if best == -2 || e.time < bt || (e.time == bt && e.seq < bs) {
				best, bt, bs = i, e.time, e.seq
			}
		}
		if best == -2 {
			break
		}
		var e event
		if best == coordIdx {
			e = n.coord.pop()
		} else {
			e = n.shards[best].queue.pop()
		}
		n.now = e.time
		n.dispatch(e)
		cnt++
	}
	n.mode = modeIdle
	return cnt
}

// wireRNG is a tiny per-node deterministic stream (SplitMix64) for the
// sharded engine's in-window drop and latency draws: 8 bytes of state per
// node — against math/rand's ~5 KB — and a pure function of (config seed,
// address), so the stream each node consumes is independent of the shard
// count.
type wireRNG struct{ state uint64 }

func newWireRNG(seed, addr uint64) wireRNG {
	return wireRNG{state: splitmix64(seed ^ (addr+1)*0xbf58476d1ce4e5b9)}
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (w *wireRNG) next() uint64 {
	w.state += 0x9e3779b97f4a7c15
	x := w.state
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// float64 returns a uniform draw in [0, 1).
func (w *wireRNG) float64() float64 { return float64(w.next()>>11) / (1 << 53) }

// int63n returns a near-uniform draw in [0, n) for positive n. The modulo
// bias is ~n/2^63 — irrelevant for latency windows — and determinism, not
// exact uniformity, is the contract here.
func (w *wireRNG) int63n(n int64) int64 { return int64(w.next()>>1) % n }
