// Package simnet provides a deterministic discrete-event network simulator,
// the substrate this repository uses in place of the paper's PeerSim. It
// models virtual time, per-message latency, uniform message drop (the
// paper's unreliable-UDP failure model), and node churn, and it drives
// protocol state machines attached to simulated nodes.
//
// Determinism: all randomness flows from the Config seed, and the event
// queue breaks time ties by insertion sequence, so a run is a pure function
// of its configuration.
package simnet

import (
	"fmt"
	"math/rand"

	"repro/internal/peer"
	"repro/internal/proto"
)

// Message, Sizer, ProtoID and Protocol are the engine-neutral contract
// defined in package proto; the aliases keep engine call sites readable.
type (
	// Message is a protocol payload delivered between nodes.
	Message = proto.Message
	// Sizer reports a message's wire size for traffic accounting.
	Sizer = proto.Sizer
	// ProtoID distinguishes the protocol stacks running on one node.
	ProtoID = proto.ProtoID
	// Protocol is a passive state machine driven by the engine.
	Protocol = proto.Protocol
)

// Config parameterises a simulated network.
type Config struct {
	// Seed drives all randomness in the network. Two networks with equal
	// configs and equal workloads produce identical runs.
	Seed int64
	// Drop is the probability that any single message is lost in
	// transit. The paper's Figure 4 uses 0.2.
	Drop float64
	// MinLatency and MaxLatency bound the uniform message latency in
	// virtual time units. Zero values mean instant delivery (latency 1,
	// so a message never arrives at its send instant).
	MinLatency, MaxLatency int64
}

type eventKind uint8

const (
	evTick eventKind = iota + 1
	evMessage
	evFunc
)

type event struct {
	time int64
	seq  uint64
	kind eventKind

	to   peer.Addr
	pid  ProtoID
	from peer.Addr
	msg  Message

	fn func()
}

// binding is one protocol instance bound to a node, its tick period, and
// its pre-built callback context. Bindings are stored by value in a small
// per-node slice sorted by ProtoID (two entries in a typical deployment:
// sampling under bootstrap), replacing the per-node map whose header and
// bucket overhead dominated engine memory at 2^18 nodes.
type binding struct {
	pid    ProtoID
	proto  Protocol
	period int64
	ctx    Context
}

// nodeState is stored by value in the network's node table, so a node
// costs its bindings and RNG — no per-node box, no map header.
type nodeState struct {
	alive    bool
	rng      *rand.Rand
	bindings []binding
}

// find returns the binding for pid, or nil. The slice is sorted by pid but
// holds so few entries that a linear scan beats a binary search.
func (st *nodeState) find(pid ProtoID) *binding {
	for i := range st.bindings {
		if st.bindings[i].pid == pid {
			return &st.bindings[i]
		}
	}
	return nil
}

// Stats aggregates network traffic counters.
type Stats struct {
	Sent      int64 // messages handed to the network
	Dropped   int64 // messages lost by the drop model
	Delivered int64 // messages that reached a live destination
	DeadDest  int64 // messages addressed to dead or unknown nodes
	WireUnits int64 // cumulative size of sent messages (descriptor units)
}

// Network is a deterministic discrete-event simulated network.
type Network struct {
	cfg       Config
	rng       *rand.Rand
	now       int64
	seq       uint64
	queue     eventQueue
	nodes     []nodeState
	stats     Stats
	linkFault func(from, to peer.Addr) bool
}

// New returns an empty network with the given configuration.
func New(cfg Config) *Network {
	if cfg.MaxLatency < cfg.MinLatency {
		cfg.MaxLatency = cfg.MinLatency
	}
	n := &Network{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
	}
	n.queue.init(queueBuckets(cfg))
	return n
}

// queueBuckets derives the calendar queue's level-0 window from the
// config's latency bound instead of assuming the default 256-instant
// geometry. Buckets stay one instant wide — intra-bucket order is then
// insertion order by construction — and the ring is widened until the
// scheduling horizon (messages up to MaxLatency ahead, ticks a few periods
// ahead) fits comfortably inside level 0, so a long-latency configuration
// does not cycle every message through the overflow level. Pop order is
// independent of the geometry (see internal/sched), so this cannot perturb
// a golden trace.
func queueBuckets(cfg Config) int {
	const (
		defaultBuckets = 256
		maxBuckets     = 1 << 16
	)
	buckets := defaultBuckets
	for int64(buckets) < 4*cfg.MaxLatency && buckets < maxBuckets {
		buckets <<= 1
	}
	return buckets
}

// Now returns the current virtual time.
func (n *Network) Now() int64 { return n.now }

// Stats returns a snapshot of the traffic counters.
func (n *Network) Stats() Stats { return n.stats }

// AddNode allocates a new live node and returns its address.
func (n *Network) AddNode() peer.Addr {
	addr := peer.Addr(len(n.nodes))
	n.nodes = append(n.nodes, nodeState{
		alive: true,
		rng:   rand.New(rand.NewSource(n.rng.Int63())),
	})
	return addr
}

// NumNodes returns the number of addresses ever allocated (live or dead).
func (n *Network) NumNodes() int { return len(n.nodes) }

// Alive reports whether the node at addr is live.
func (n *Network) Alive(addr peer.Addr) bool {
	return n.valid(addr) && n.nodes[addr].alive
}

// Kill marks the node dead: pending and future events addressed to it are
// discarded. Messages it already sent remain in flight.
func (n *Network) Kill(addr peer.Addr) {
	if n.valid(addr) {
		n.nodes[addr].alive = false
	}
}

// Attach binds a protocol instance to a node. The protocol's Init runs at
// startOffset, and Tick fires every period after that. Attaching with period
// zero installs a purely reactive protocol (Handle only, after Init).
//
// The binding lands in the node's pid-sorted binding slice. The slice may
// move when a later Attach appends to it, so the scheduled Init closure
// re-resolves the binding by (addr, pid) at fire time instead of capturing
// a pointer into it.
func (n *Network) Attach(addr peer.Addr, pid ProtoID, p Protocol, period, startOffset int64) error {
	if !n.valid(addr) {
		return fmt.Errorf("attach: unknown address %d", addr)
	}
	st := &n.nodes[addr]
	if st.find(pid) != nil {
		return fmt.Errorf("attach: protocol %d already bound at address %d", pid, addr)
	}
	st.bindings = append(st.bindings, binding{
		pid:    pid,
		proto:  p,
		period: period,
		ctx:    Context{net: n, self: addr, pid: pid},
	})
	for i := len(st.bindings) - 1; i > 0 && st.bindings[i].pid < st.bindings[i-1].pid; i-- {
		st.bindings[i], st.bindings[i-1] = st.bindings[i-1], st.bindings[i]
	}
	start := n.now + startOffset
	n.push(event{time: start, kind: evFunc, fn: func() {
		st := &n.nodes[addr]
		if !st.alive {
			return
		}
		b := st.find(pid)
		if b == nil {
			return
		}
		b.proto.Init(&b.ctx)
		if b.period > 0 {
			n.push(event{time: start + b.period, kind: evTick, to: addr, pid: pid})
		}
	}})
	return nil
}

// At schedules fn to run at the given absolute virtual time. Times in the
// past run at the current instant, after already-queued events.
func (n *Network) At(t int64, fn func()) {
	if t < n.now {
		t = n.now
	}
	n.push(event{time: t, kind: evFunc, fn: fn})
}

// SetLinkFault installs a per-link fault predicate: messages for which fn
// returns true are dropped (and counted as drops). Pass nil to clear. Used
// to model network partitions and asymmetric link failures.
func (n *Network) SetLinkFault(fn func(from, to peer.Addr) bool) {
	n.linkFault = fn
}

// Partition installs a link fault that cuts traffic between nodes in
// different groups. Nodes absent from every group stay connected to
// everyone.
func (n *Network) Partition(groups ...[]peer.Addr) {
	assignment := make(map[peer.Addr]int)
	for g, members := range groups {
		for _, a := range members {
			assignment[a] = g
		}
	}
	n.SetLinkFault(func(from, to peer.Addr) bool {
		gf, okf := assignment[from]
		gt, okt := assignment[to]
		return okf && okt && gf != gt
	})
}

// Send transmits msg from one node to another, applying the latency and
// drop models. It is normally called through a Context.
func (n *Network) Send(from, to peer.Addr, pid ProtoID, msg Message) {
	n.stats.Sent++
	if s, ok := msg.(Sizer); ok {
		n.stats.WireUnits += int64(s.WireSize())
	}
	if n.linkFault != nil && n.linkFault(from, to) {
		n.stats.Dropped++
		recycle(msg)
		return
	}
	if n.cfg.Drop > 0 && n.rng.Float64() < n.cfg.Drop {
		n.stats.Dropped++
		recycle(msg)
		return
	}
	n.push(event{
		time: n.now + n.latency(),
		kind: evMessage,
		to:   to, pid: pid, from: from, msg: msg,
	})
}

// Run processes events until virtual time reaches until (inclusive) or the
// queue drains. It returns the number of events processed.
func (n *Network) Run(until int64) int {
	processed := 0
	for n.queue.len() > 0 && n.queue.peekTime() <= until {
		e := n.queue.pop()
		n.now = e.time
		n.dispatch(e)
		processed++
	}
	if n.now < until {
		n.now = until
	}
	return processed
}

// RunUntil advances the network in steps of checkEvery until cond returns
// true or virtual time exceeds max. It reports whether cond was satisfied.
func (n *Network) RunUntil(cond func() bool, checkEvery, max int64) bool {
	for n.now < max {
		next := n.now + checkEvery
		if next > max {
			next = max
		}
		n.Run(next)
		if cond() {
			return true
		}
	}
	return cond()
}

func (n *Network) dispatch(e event) {
	switch e.kind {
	case evFunc:
		e.fn()
	case evTick:
		st := &n.nodes[e.to]
		if !st.alive {
			return
		}
		b := st.find(e.pid)
		if b == nil {
			return
		}
		b.proto.Tick(&b.ctx)
		n.push(event{time: e.time + b.period, kind: evTick, to: e.to, pid: e.pid})
	case evMessage:
		if !n.valid(e.to) || !n.nodes[e.to].alive {
			n.stats.DeadDest++
			recycle(e.msg)
			return
		}
		b := n.nodes[e.to].find(e.pid)
		if b == nil {
			n.stats.DeadDest++
			recycle(e.msg)
			return
		}
		n.stats.Delivered++
		b.proto.Handle(&b.ctx, e.from, e.msg)
		recycle(e.msg)
	}
}

// recycle retires a message: pooled messages return their backing storage
// to the sender's pool (see proto.Recyclable). Called exactly once per
// message, after delivery or on any drop path; events abandoned in the
// queue at the end of a run are simply collected by the GC instead.
func recycle(m Message) {
	if r, ok := m.(proto.Recyclable); ok {
		r.Recycle()
	}
}

func (n *Network) latency() int64 {
	if n.cfg.MaxLatency <= 0 {
		return 1
	}
	if n.cfg.MaxLatency == n.cfg.MinLatency {
		return n.cfg.MinLatency
	}
	return n.cfg.MinLatency + n.rng.Int63n(n.cfg.MaxLatency-n.cfg.MinLatency+1)
}

func (n *Network) push(e event) {
	e.seq = n.seq
	n.seq++
	n.queue.push(e)
}

func (n *Network) valid(addr peer.Addr) bool {
	return addr >= 0 && int(addr) < len(n.nodes)
}

// Context is the simulator's implementation of proto.Context: the node's
// own address, the virtual clock, a per-node deterministic RNG, and the
// ability to send messages. Contexts live inside binding values; callbacks
// receive a pointer valid for the duration of the call.
type Context struct {
	net  *Network
	self peer.Addr
	pid  ProtoID
}

var _ proto.Context = (*Context)(nil)

// Self returns the node's own address.
func (c *Context) Self() peer.Addr { return c.self }

// Now returns the current virtual time.
func (c *Context) Now() int64 { return c.net.now }

// Rand returns the node's private deterministic random source.
func (c *Context) Rand() *rand.Rand { return c.net.nodes[c.self].rng }

// Send transmits msg to the same protocol binding on the destination node.
func (c *Context) Send(to peer.Addr, msg Message) {
	c.net.Send(c.self, to, c.pid, msg)
}
