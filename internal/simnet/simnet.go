// Package simnet provides a deterministic discrete-event network simulator,
// the substrate this repository uses in place of the paper's PeerSim. It
// models virtual time, per-message latency, uniform message drop (the
// paper's unreliable-UDP failure model), and node churn, and it drives
// protocol state machines attached to simulated nodes.
//
// Determinism: all randomness flows from the Config seed, and the event
// queue breaks time ties by insertion sequence, so a run is a pure function
// of its configuration.
package simnet

import (
	"fmt"
	"math/rand"

	"repro/internal/peer"
	"repro/internal/proto"
)

// Message, Sizer, ProtoID and Protocol are the engine-neutral contract
// defined in package proto; the aliases keep engine call sites readable.
type (
	// Message is a protocol payload delivered between nodes.
	Message = proto.Message
	// Sizer reports a message's wire size for traffic accounting.
	Sizer = proto.Sizer
	// ProtoID distinguishes the protocol stacks running on one node.
	ProtoID = proto.ProtoID
	// Protocol is a passive state machine driven by the engine.
	Protocol = proto.Protocol
)

// Config parameterises a simulated network.
type Config struct {
	// Seed drives all randomness in the network. Two networks with equal
	// configs and equal workloads produce identical runs.
	Seed int64
	// Drop is the probability that any single message is lost in
	// transit. The paper's Figure 4 uses 0.2.
	Drop float64
	// MinLatency and MaxLatency bound the uniform message latency in
	// virtual time units. Zero values mean instant delivery (latency 1,
	// so a message never arrives at its send instant).
	MinLatency, MaxLatency int64
	// Shards, when greater than 1, partitions the nodes across that many
	// parallel execution shards: each shard runs its own calendar wheel
	// inside conservative lookahead windows and the shards exchange
	// generated events at window barriers (see shard.go). 0 or 1 selects
	// the sequential engine, the golden reference.
	//
	// Determinism: a sharded run is a pure function of the configuration,
	// and for workloads whose engine-level randomness is never consulted
	// mid-window — Drop == 0 and a fixed latency, which includes the
	// default instant-delivery config — the trace is byte-identical to
	// the sequential engine for every shard count. With Drop > 0 or a
	// latency window, in-flight draws come from per-node wire RNGs
	// instead of the global stream, so runs remain deterministic and
	// shard-count invariant for every Shards > 1, but diverge from the
	// sequential (Shards <= 1) trace.
	Shards int
}

type eventKind uint8

const (
	evTick eventKind = iota + 1
	evMessage
	evFunc
	// evInit fires a binding's Init and schedules its first tick. A
	// dedicated kind (not an evFunc closure) so the sharded engine can
	// dispatch node starts in parallel windows: the event names its owner
	// node, and dispatching it touches only that node's state.
	evInit
)

type event struct {
	time int64
	seq  uint64
	kind eventKind

	to   peer.Addr
	pid  ProtoID
	from peer.Addr
	msg  Message

	fn func()
}

// binding is one protocol instance bound to a node, its tick period, and
// its pre-built callback context. Bindings are stored by value in a small
// per-node slice sorted by ProtoID (two entries in a typical deployment:
// sampling under bootstrap), replacing the per-node map whose header and
// bucket overhead dominated engine memory at 2^18 nodes.
type binding struct {
	pid    ProtoID
	proto  Protocol
	period int64
	ctx    Context
}

// nodeState is stored by value in the network's node table, so a node
// costs its bindings and RNG — no per-node box, no map header.
type nodeState struct {
	alive    bool
	rng      *rand.Rand
	bindings []binding
	// shard is the node's home execution shard (sharded mode only): the
	// shard that dispatches its events and owns its mutable state.
	shard int32
	// wire draws the node's in-window drop and latency decisions in
	// sharded mode. Per node — not per shard, not global — so the stream
	// each node consumes is independent of the shard count.
	wire wireRNG
}

// find returns the binding for pid, or nil. The slice is sorted by pid but
// holds so few entries that a linear scan beats a binary search.
func (st *nodeState) find(pid ProtoID) *binding {
	for i := range st.bindings {
		if st.bindings[i].pid == pid {
			return &st.bindings[i]
		}
	}
	return nil
}

// Stats aggregates network traffic counters.
type Stats struct {
	Sent      int64 // messages handed to the network
	Dropped   int64 // messages lost by the drop model
	Delivered int64 // messages that reached a live destination
	DeadDest  int64 // messages addressed to dead or unknown nodes
	WireUnits int64 // cumulative size of sent messages (descriptor units)
}

// runMode tracks what the engine is doing, so Send and Context.Now can
// route state reads and writes to the right owner. It only ever changes on
// the driving goroutine while no shard worker runs, so workers observing it
// mid-window always see a stable value.
type runMode uint8

const (
	// modeIdle: between Run windows; harness calls mutate global state.
	modeIdle runMode = iota
	// modeParallel: shard workers dispatch concurrently; generated events
	// buffer in per-shard lists until the window barrier.
	modeParallel
	// modeSerial: a window containing evFunc events runs single-threaded
	// in global (time, seq) order, exactly like the sequential engine.
	modeSerial
)

// Network is a deterministic discrete-event simulated network.
type Network struct {
	cfg       Config
	rng       *rand.Rand
	now       int64
	seq       uint64
	queue     eventQueue
	nodes     []nodeState
	stats     Stats
	linkFault func(from, to peer.Addr) bool

	// Sharded-execution state; shards is nil in sequential mode.
	shards []shardState
	// coord holds evFunc events (At closures), which may touch arbitrary
	// state and therefore never run inside a parallel window: any window
	// with a due coord event runs serially instead.
	coord eventQueue
	mode  runMode
	// minPeriod is the smallest positive tick period ever attached; it
	// bounds the conservative lookahead window alongside the latency
	// floor (see lookahead).
	minPeriod int64
	// barrier, when set, runs after every sharded window with all shards
	// quiescent — the measurement plane's hook into a running trial.
	barrier func(now int64)
	// mergeHeads is the barrier merge's reusable per-shard cursor slice.
	mergeHeads []int
	// adaptMult is the adaptive window multiplier (see shard.go): it
	// doubles every time a window closes with no cross-shard traffic and
	// resets to 1 on any. Windows with adaptMult > 1 run serially over
	// base·mult lookaheads — serial execution is exact for any window
	// width, while the parallel path's lookahead invariant licenses only
	// the base width.
	adaptMult int64
	// adaptOff freezes adaptMult at 1 (fixed-window mode; used by the
	// trace-invariance tests).
	adaptOff bool
	// crossShard counts cross-shard events generated in the current
	// window: parallel windows tally at the merge barrier, serial windows
	// at push/send time.
	crossShard int
	// wideWindows counts windows that ran with adaptMult > 1.
	wideWindows int64
}

// New returns an empty network with the given configuration.
func New(cfg Config) *Network {
	if cfg.MaxLatency < cfg.MinLatency {
		cfg.MaxLatency = cfg.MinLatency
	}
	if cfg.Shards < 0 {
		cfg.Shards = 0
	}
	n := &Network{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
	}
	if cfg.Shards > 1 {
		n.shards = make([]shardState, cfg.Shards)
		for i := range n.shards {
			n.shards[i].queue.init(queueBuckets(cfg))
		}
		n.coord.init(queueBuckets(cfg))
		n.adaptMult = 1
		return n
	}
	n.queue.init(queueBuckets(cfg))
	return n
}

// queueBuckets derives the calendar queue's level-0 window from the
// config's latency bound instead of assuming the default 256-instant
// geometry. Buckets stay one instant wide — intra-bucket order is then
// insertion order by construction — and the ring is widened until the
// scheduling horizon (messages up to MaxLatency ahead, ticks a few periods
// ahead) fits comfortably inside level 0, so a long-latency configuration
// does not cycle every message through the overflow level. Pop order is
// independent of the geometry (see internal/sched), so this cannot perturb
// a golden trace.
func queueBuckets(cfg Config) int {
	const (
		defaultBuckets = 256
		maxBuckets     = 1 << 16
	)
	buckets := defaultBuckets
	for int64(buckets) < 4*cfg.MaxLatency && buckets < maxBuckets {
		buckets <<= 1
	}
	return buckets
}

// Now returns the current virtual time.
func (n *Network) Now() int64 { return n.now }

// Stats returns a snapshot of the traffic counters. In sharded mode the
// per-shard counters are summed in — integer sums, so the totals are
// independent of which shard accounted each message.
func (n *Network) Stats() Stats {
	s := n.stats
	for i := range n.shards {
		sh := &n.shards[i].stats
		s.Sent += sh.Sent
		s.Dropped += sh.Dropped
		s.Delivered += sh.Delivered
		s.DeadDest += sh.DeadDest
		s.WireUnits += sh.WireUnits
	}
	return s
}

// AddNode allocates a new live node and returns its address.
func (n *Network) AddNode() peer.Addr {
	addr := peer.Addr(len(n.nodes))
	st := nodeState{
		alive: true,
		rng:   rand.New(rand.NewSource(n.rng.Int63())),
	}
	if len(n.shards) > 0 {
		// Home shard and wire stream are pure functions of (seed, addr):
		// deterministic, and the wire stream is shard-count independent.
		st.shard = int32(splitmix64(uint64(n.cfg.Seed)^uint64(addr)*0x9e3779b97f4a7c15) % uint64(len(n.shards)))
		st.wire = newWireRNG(uint64(n.cfg.Seed), uint64(addr))
	}
	n.nodes = append(n.nodes, st)
	return addr
}

// NumNodes returns the number of addresses ever allocated (live or dead).
func (n *Network) NumNodes() int { return len(n.nodes) }

// Alive reports whether the node at addr is live.
func (n *Network) Alive(addr peer.Addr) bool {
	return n.valid(addr) && n.nodes[addr].alive
}

// Kill marks the node dead: pending and future events addressed to it are
// discarded. Messages it already sent remain in flight.
func (n *Network) Kill(addr peer.Addr) {
	if n.valid(addr) {
		n.nodes[addr].alive = false
	}
}

// Attach binds a protocol instance to a node. The protocol's Init runs at
// startOffset, and Tick fires every period after that. Attaching with period
// zero installs a purely reactive protocol (Handle only, after Init).
//
// The binding lands in the node's pid-sorted binding slice. The slice may
// move when a later Attach appends to it, so the scheduled evInit event
// re-resolves the binding by (addr, pid) at fire time instead of capturing
// a pointer into it.
func (n *Network) Attach(addr peer.Addr, pid ProtoID, p Protocol, period, startOffset int64) error {
	if !n.valid(addr) {
		return fmt.Errorf("attach: unknown address %d", addr)
	}
	st := &n.nodes[addr]
	if st.find(pid) != nil {
		return fmt.Errorf("attach: protocol %d already bound at address %d", pid, addr)
	}
	st.bindings = append(st.bindings, binding{
		pid:    pid,
		proto:  p,
		period: period,
		ctx:    Context{net: n, self: addr, pid: pid},
	})
	for i := len(st.bindings) - 1; i > 0 && st.bindings[i].pid < st.bindings[i-1].pid; i-- {
		st.bindings[i], st.bindings[i-1] = st.bindings[i-1], st.bindings[i]
	}
	if period > 0 && (n.minPeriod == 0 || period < n.minPeriod) {
		n.minPeriod = period
	}
	n.push(event{time: n.now + startOffset, kind: evInit, to: addr, pid: pid})
	return nil
}

// At schedules fn to run at the given absolute virtual time. Times in the
// past run at the current instant, after already-queued events.
func (n *Network) At(t int64, fn func()) {
	if t < n.now {
		t = n.now
	}
	n.push(event{time: t, kind: evFunc, fn: fn})
}

// SetLinkFault installs a per-link fault predicate: messages for which fn
// returns true are dropped (and counted as drops). Pass nil to clear. Used
// to model network partitions and asymmetric link failures.
func (n *Network) SetLinkFault(fn func(from, to peer.Addr) bool) {
	n.linkFault = fn
}

// Partition installs a link fault that cuts traffic between nodes in
// different groups. Nodes absent from every group stay connected to
// everyone.
func (n *Network) Partition(groups ...[]peer.Addr) {
	assignment := make(map[peer.Addr]int)
	for g, members := range groups {
		for _, a := range members {
			assignment[a] = g
		}
	}
	n.SetLinkFault(func(from, to peer.Addr) bool {
		gf, okf := assignment[from]
		gt, okt := assignment[to]
		return okf && okt && gf != gt
	})
}

// Send transmits msg from one node to another, applying the latency and
// drop models. It is normally called through a Context.
//
// In sharded mode, sends issued while a window is executing draw their
// drop and latency decisions from the sender's wire RNG and are accounted
// to the sender's shard; a send in a parallel window additionally buffers
// the message until the window barrier instead of pushing it directly.
// The link-fault predicate, if any, must be safe for concurrent calls.
func (n *Network) Send(from, to peer.Addr, pid ProtoID, msg Message) {
	if len(n.shards) > 0 && n.mode != modeIdle {
		n.sendSharded(from, to, pid, msg)
		return
	}
	n.stats.Sent++
	if s, ok := msg.(Sizer); ok {
		n.stats.WireUnits += int64(s.WireSize())
	}
	if n.linkFault != nil && n.linkFault(from, to) {
		n.stats.Dropped++
		recycle(msg)
		return
	}
	if n.cfg.Drop > 0 && n.rng.Float64() < n.cfg.Drop {
		n.stats.Dropped++
		recycle(msg)
		return
	}
	n.push(event{
		time: n.now + n.latency(),
		kind: evMessage,
		to:   to, pid: pid, from: from, msg: msg,
	})
}

// Run processes events until virtual time reaches until (inclusive) or the
// queue drains. It returns the number of events processed.
func (n *Network) Run(until int64) int {
	if len(n.shards) > 0 {
		return n.runSharded(until)
	}
	processed := 0
	for n.queue.len() > 0 && n.queue.peekTime() <= until {
		e := n.queue.pop()
		n.now = e.time
		n.dispatch(e)
		processed++
	}
	if n.now < until {
		n.now = until
	}
	return processed
}

// RunUntil advances the network in steps of checkEvery until cond returns
// true or virtual time exceeds max. It reports whether cond was satisfied.
func (n *Network) RunUntil(cond func() bool, checkEvery, max int64) bool {
	for n.now < max {
		next := n.now + checkEvery
		if next > max {
			next = max
		}
		n.Run(next)
		if cond() {
			return true
		}
	}
	return cond()
}

func (n *Network) dispatch(e event) {
	switch e.kind {
	case evFunc:
		e.fn()
	case evInit:
		st := &n.nodes[e.to]
		if !st.alive {
			return
		}
		b := st.find(e.pid)
		if b == nil {
			return
		}
		b.proto.Init(&b.ctx)
		if b.period > 0 {
			n.push(event{time: e.time + b.period, kind: evTick, to: e.to, pid: e.pid})
		}
	case evTick:
		st := &n.nodes[e.to]
		if !st.alive {
			return
		}
		b := st.find(e.pid)
		if b == nil {
			return
		}
		b.proto.Tick(&b.ctx)
		n.push(event{time: e.time + b.period, kind: evTick, to: e.to, pid: e.pid})
	case evMessage:
		if !n.valid(e.to) || !n.nodes[e.to].alive {
			n.stats.DeadDest++
			recycle(e.msg)
			return
		}
		b := n.nodes[e.to].find(e.pid)
		if b == nil {
			n.stats.DeadDest++
			recycle(e.msg)
			return
		}
		n.stats.Delivered++
		b.proto.Handle(&b.ctx, e.from, e.msg)
		recycle(e.msg)
	}
}

// recycle retires a message: pooled messages return their backing storage
// to the sender's pool (see proto.Recyclable). Called exactly once per
// message, after delivery or on any drop path; events abandoned in the
// queue at the end of a run are simply collected by the GC instead.
func recycle(m Message) {
	if r, ok := m.(proto.Recyclable); ok {
		r.Recycle()
	}
}

func (n *Network) latency() int64 {
	if n.cfg.MaxLatency <= 0 {
		return 1
	}
	if n.cfg.MaxLatency == n.cfg.MinLatency {
		return n.cfg.MinLatency
	}
	return n.cfg.MinLatency + n.rng.Int63n(n.cfg.MaxLatency-n.cfg.MinLatency+1)
}

// push stamps the next global insertion sequence and enqueues the event. In
// sharded mode it routes to the event's owner: evFunc events to the serial
// coordinator queue, node events to their node's home-shard wheel. It must
// not be called from inside a parallel window (workers buffer generated
// events instead; see shardState.emit).
func (n *Network) push(e event) {
	e.seq = n.seq
	n.seq++
	if len(n.shards) == 0 {
		n.queue.push(e)
		return
	}
	if e.kind == evFunc {
		if n.mode == modeSerial {
			// A closure scheduled mid-window can touch any shard's state;
			// count it as cross-shard traffic so the adaptive window
			// collapses back to the conservative width.
			n.crossShard++
		}
		n.coord.push(e)
		return
	}
	n.shards[n.nodes[e.to].shard].queue.push(e)
}

func (n *Network) valid(addr peer.Addr) bool {
	return addr >= 0 && int(addr) < len(n.nodes)
}

// Context is the simulator's implementation of proto.Context: the node's
// own address, the virtual clock, a per-node deterministic RNG, and the
// ability to send messages. Contexts live inside binding values; callbacks
// receive a pointer valid for the duration of the call.
type Context struct {
	net  *Network
	self peer.Addr
	pid  ProtoID
}

var _ proto.Context = (*Context)(nil)

// Self returns the node's own address.
func (c *Context) Self() peer.Addr { return c.self }

// Now returns the current virtual time: inside a parallel window, the
// dispatching shard's local clock; otherwise the global clock.
func (c *Context) Now() int64 {
	n := c.net
	if n.mode == modeParallel {
		return n.shards[n.nodes[c.self].shard].now
	}
	return n.now
}

// Rand returns the node's private deterministic random source.
func (c *Context) Rand() *rand.Rand { return c.net.nodes[c.self].rng }

// Send transmits msg to the same protocol binding on the destination node.
func (c *Context) Send(to peer.Addr, msg Message) {
	c.net.Send(c.self, to, c.pid, msg)
}
