// Package simnet provides a deterministic discrete-event network simulator,
// the substrate this repository uses in place of the paper's PeerSim. It
// models virtual time, per-message latency, uniform message drop (the
// paper's unreliable-UDP failure model), and node churn, and it drives
// protocol state machines attached to simulated nodes.
//
// Determinism: all randomness flows from the Config seed, and the event
// queue breaks time ties by insertion sequence, so a run is a pure function
// of its configuration.
package simnet

import (
	"fmt"
	"math/rand"

	"repro/internal/peer"
	"repro/internal/proto"
)

// Message, Sizer, ProtoID and Protocol are the engine-neutral contract
// defined in package proto; the aliases keep engine call sites readable.
type (
	// Message is a protocol payload delivered between nodes.
	Message = proto.Message
	// Sizer reports a message's wire size for traffic accounting.
	Sizer = proto.Sizer
	// ProtoID distinguishes the protocol stacks running on one node.
	ProtoID = proto.ProtoID
	// Protocol is a passive state machine driven by the engine.
	Protocol = proto.Protocol
)

// Config parameterises a simulated network.
type Config struct {
	// Seed drives all randomness in the network. Two networks with equal
	// configs and equal workloads produce identical runs.
	Seed int64
	// Drop is the probability that any single message is lost in
	// transit. The paper's Figure 4 uses 0.2.
	Drop float64
	// MinLatency and MaxLatency bound the uniform message latency in
	// virtual time units. Zero values mean instant delivery (latency 1,
	// so a message never arrives at its send instant).
	MinLatency, MaxLatency int64
}

type eventKind uint8

const (
	evTick eventKind = iota + 1
	evMessage
	evFunc
)

type event struct {
	time int64
	seq  uint64
	kind eventKind

	to   peer.Addr
	pid  ProtoID
	from peer.Addr
	msg  Message

	fn func()
}

type binding struct {
	proto  Protocol
	period int64
	ctx    Context
}

type nodeState struct {
	alive  bool
	protos map[ProtoID]*binding
	rng    *rand.Rand
}

// Stats aggregates network traffic counters.
type Stats struct {
	Sent      int64 // messages handed to the network
	Dropped   int64 // messages lost by the drop model
	Delivered int64 // messages that reached a live destination
	DeadDest  int64 // messages addressed to dead or unknown nodes
	WireUnits int64 // cumulative size of sent messages (descriptor units)
}

// Network is a deterministic discrete-event simulated network.
type Network struct {
	cfg       Config
	rng       *rand.Rand
	now       int64
	seq       uint64
	queue     eventQueue
	nodes     []*nodeState
	stats     Stats
	linkFault func(from, to peer.Addr) bool
}

// New returns an empty network with the given configuration.
func New(cfg Config) *Network {
	if cfg.MaxLatency < cfg.MinLatency {
		cfg.MaxLatency = cfg.MinLatency
	}
	return &Network{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
	}
}

// Now returns the current virtual time.
func (n *Network) Now() int64 { return n.now }

// Stats returns a snapshot of the traffic counters.
func (n *Network) Stats() Stats { return n.stats }

// AddNode allocates a new live node and returns its address.
func (n *Network) AddNode() peer.Addr {
	addr := peer.Addr(len(n.nodes))
	st := &nodeState{
		alive:  true,
		protos: make(map[ProtoID]*binding, 2),
		rng:    rand.New(rand.NewSource(n.rng.Int63())),
	}
	n.nodes = append(n.nodes, st)
	return addr
}

// NumNodes returns the number of addresses ever allocated (live or dead).
func (n *Network) NumNodes() int { return len(n.nodes) }

// Alive reports whether the node at addr is live.
func (n *Network) Alive(addr peer.Addr) bool {
	return n.valid(addr) && n.nodes[addr].alive
}

// Kill marks the node dead: pending and future events addressed to it are
// discarded. Messages it already sent remain in flight.
func (n *Network) Kill(addr peer.Addr) {
	if n.valid(addr) {
		n.nodes[addr].alive = false
	}
}

// Attach binds a protocol instance to a node. The protocol's Init runs at
// startOffset, and Tick fires every period after that. Attaching with period
// zero installs a purely reactive protocol (Handle only, after Init).
func (n *Network) Attach(addr peer.Addr, pid ProtoID, p Protocol, period, startOffset int64) error {
	if !n.valid(addr) {
		return fmt.Errorf("attach: unknown address %d", addr)
	}
	st := n.nodes[addr]
	if _, dup := st.protos[pid]; dup {
		return fmt.Errorf("attach: protocol %d already bound at address %d", pid, addr)
	}
	b := &binding{proto: p, period: period}
	b.ctx = Context{net: n, self: addr, node: st, pid: pid}
	st.protos[pid] = b
	start := n.now + startOffset
	n.push(event{time: start, kind: evFunc, fn: func() {
		if !st.alive {
			return
		}
		p.Init(&b.ctx)
		if period > 0 {
			n.push(event{time: start + period, kind: evTick, to: addr, pid: pid})
		}
	}})
	return nil
}

// At schedules fn to run at the given absolute virtual time. Times in the
// past run at the current instant, after already-queued events.
func (n *Network) At(t int64, fn func()) {
	if t < n.now {
		t = n.now
	}
	n.push(event{time: t, kind: evFunc, fn: fn})
}

// SetLinkFault installs a per-link fault predicate: messages for which fn
// returns true are dropped (and counted as drops). Pass nil to clear. Used
// to model network partitions and asymmetric link failures.
func (n *Network) SetLinkFault(fn func(from, to peer.Addr) bool) {
	n.linkFault = fn
}

// Partition installs a link fault that cuts traffic between nodes in
// different groups. Nodes absent from every group stay connected to
// everyone.
func (n *Network) Partition(groups ...[]peer.Addr) {
	assignment := make(map[peer.Addr]int)
	for g, members := range groups {
		for _, a := range members {
			assignment[a] = g
		}
	}
	n.SetLinkFault(func(from, to peer.Addr) bool {
		gf, okf := assignment[from]
		gt, okt := assignment[to]
		return okf && okt && gf != gt
	})
}

// Send transmits msg from one node to another, applying the latency and
// drop models. It is normally called through a Context.
func (n *Network) Send(from, to peer.Addr, pid ProtoID, msg Message) {
	n.stats.Sent++
	if s, ok := msg.(Sizer); ok {
		n.stats.WireUnits += int64(s.WireSize())
	}
	if n.linkFault != nil && n.linkFault(from, to) {
		n.stats.Dropped++
		recycle(msg)
		return
	}
	if n.cfg.Drop > 0 && n.rng.Float64() < n.cfg.Drop {
		n.stats.Dropped++
		recycle(msg)
		return
	}
	n.push(event{
		time: n.now + n.latency(),
		kind: evMessage,
		to:   to, pid: pid, from: from, msg: msg,
	})
}

// Run processes events until virtual time reaches until (inclusive) or the
// queue drains. It returns the number of events processed.
func (n *Network) Run(until int64) int {
	processed := 0
	for n.queue.len() > 0 && n.queue.peekTime() <= until {
		e := n.queue.pop()
		n.now = e.time
		n.dispatch(e)
		processed++
	}
	if n.now < until {
		n.now = until
	}
	return processed
}

// RunUntil advances the network in steps of checkEvery until cond returns
// true or virtual time exceeds max. It reports whether cond was satisfied.
func (n *Network) RunUntil(cond func() bool, checkEvery, max int64) bool {
	for n.now < max {
		next := n.now + checkEvery
		if next > max {
			next = max
		}
		n.Run(next)
		if cond() {
			return true
		}
	}
	return cond()
}

func (n *Network) dispatch(e event) {
	switch e.kind {
	case evFunc:
		e.fn()
	case evTick:
		st := n.nodes[e.to]
		if !st.alive {
			return
		}
		b, ok := st.protos[e.pid]
		if !ok {
			return
		}
		b.proto.Tick(&b.ctx)
		n.push(event{time: e.time + b.period, kind: evTick, to: e.to, pid: e.pid})
	case evMessage:
		if !n.valid(e.to) || !n.nodes[e.to].alive {
			n.stats.DeadDest++
			recycle(e.msg)
			return
		}
		st := n.nodes[e.to]
		b, ok := st.protos[e.pid]
		if !ok {
			n.stats.DeadDest++
			recycle(e.msg)
			return
		}
		n.stats.Delivered++
		b.proto.Handle(&b.ctx, e.from, e.msg)
		recycle(e.msg)
	}
}

// recycle retires a message: pooled messages return their backing storage
// to the sender's pool (see proto.Recyclable). Called exactly once per
// message, after delivery or on any drop path; events abandoned in the
// queue at the end of a run are simply collected by the GC instead.
func recycle(m Message) {
	if r, ok := m.(proto.Recyclable); ok {
		r.Recycle()
	}
}

func (n *Network) latency() int64 {
	if n.cfg.MaxLatency <= 0 {
		return 1
	}
	if n.cfg.MaxLatency == n.cfg.MinLatency {
		return n.cfg.MinLatency
	}
	return n.cfg.MinLatency + n.rng.Int63n(n.cfg.MaxLatency-n.cfg.MinLatency+1)
}

func (n *Network) push(e event) {
	e.seq = n.seq
	n.seq++
	n.queue.push(e)
}

func (n *Network) valid(addr peer.Addr) bool {
	return addr >= 0 && int(addr) < len(n.nodes)
}

// Context is the simulator's implementation of proto.Context: the node's
// own address, the virtual clock, a per-node deterministic RNG, and the
// ability to send messages.
type Context struct {
	net  *Network
	self peer.Addr
	node *nodeState
	pid  ProtoID
}

var _ proto.Context = (*Context)(nil)

// Self returns the node's own address.
func (c *Context) Self() peer.Addr { return c.self }

// Now returns the current virtual time.
func (c *Context) Now() int64 { return c.net.now }

// Rand returns the node's private deterministic random source.
func (c *Context) Rand() *rand.Rand { return c.node.rng }

// Send transmits msg to the same protocol binding on the destination node.
func (c *Context) Send(to peer.Addr, msg Message) {
	c.net.Send(c.self, to, c.pid, msg)
}
