package simnet

import (
	"math/rand"
	"sort"
	"testing"
)

// TestEventQueueOrdering feeds the pooled heap a shuffled workload and
// checks pops come out in (time, seq) order — the exact contract the old
// container/heap implementation provided.
func TestEventQueueOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var q eventQueue
	const total = 2000
	events := make([]event, total)
	for i := range events {
		events[i] = event{time: int64(rng.Intn(50)), seq: uint64(i), kind: evTick}
	}
	for _, e := range events {
		q.push(e)
	}
	want := make([]event, total)
	copy(want, events)
	sort.SliceStable(want, func(i, j int) bool {
		if want[i].time != want[j].time {
			return want[i].time < want[j].time
		}
		return want[i].seq < want[j].seq
	})
	for i := range want {
		got := q.pop()
		if got.time != want[i].time || got.seq != want[i].seq {
			t.Fatalf("pop %d = (t=%d seq=%d), want (t=%d seq=%d)",
				i, got.time, got.seq, want[i].time, want[i].seq)
		}
	}
	if q.len() != 0 {
		t.Fatalf("queue not drained: %d left", q.len())
	}
}

// TestEventQueueSteadyStateAllocs checks that a drain-and-refill workload
// recycles bucket storage in place instead of allocating — the property the
// pooled heap had and the calendar queue must keep.
func TestEventQueueSteadyStateAllocs(t *testing.T) {
	var q eventQueue
	const width = 64
	now := int64(0)
	for i := 0; i < width; i++ {
		q.push(event{time: int64(i), seq: uint64(i)})
	}
	seq := uint64(width)
	warm := func(rounds int) {
		for round := 0; round < rounds; round++ {
			for i := 0; i < width; i++ {
				e := q.pop()
				now = e.time
				q.push(event{time: now + width, seq: seq})
				seq++
			}
		}
	}
	warm(100)
	avg := testing.AllocsPerRun(100, func() { warm(1) })
	if avg != 0 {
		t.Errorf("steady-state churn allocates %.2f objects per round, want 0", avg)
	}
}

// TestRunProcessedCountDeterministic runs the same configuration twice and
// compares Stats and the per-Run processed event counts — the regression
// guard the event-queue rewrite must keep satisfying.
func TestRunProcessedCountDeterministic(t *testing.T) {
	run := func() ([]int, Stats) {
		n := New(Config{Seed: 7, Drop: 0.25, MinLatency: 1, MaxLatency: 11})
		a, b, c := n.AddNode(), n.AddNode(), n.AddNode()
		_ = n.Attach(a, 1, &echoProto{pingOn: b}, 3, 0)
		_ = n.Attach(b, 1, &echoProto{pingOn: c}, 4, 1)
		_ = n.Attach(c, 1, &echoProto{pingOn: a}, 5, 2)
		var counts []int
		for step := int64(100); step <= 1000; step += 100 {
			counts = append(counts, n.Run(step))
		}
		return counts, n.Stats()
	}
	c1, s1 := run()
	c2, s2 := run()
	if s1 != s2 {
		t.Fatalf("stats diverged: %+v vs %+v", s1, s2)
	}
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Fatalf("processed counts diverged at step %d: %d vs %d", i, c1[i], c2[i])
		}
	}
}
