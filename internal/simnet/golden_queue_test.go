package simnet

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/peer"
)

// legacyHeapQueue is the PR 1 pooled indexed min-heap, preserved verbatim as
// a test fixture: the reference for the calendar queue's ordering contract
// and the baseline for BenchmarkEventQueue. Do not "improve" it — its value
// is being exactly the implementation every golden trace was captured on.
type legacyHeapQueue struct {
	pool []event  // event storage; slots on the free list are zeroed
	heap []uint32 // binary min-heap of pool indices
	free []uint32 // recycled pool slots
}

func (q *legacyHeapQueue) len() int { return len(q.heap) }

func (q *legacyHeapQueue) less(a, b uint32) bool {
	ea, eb := &q.pool[a], &q.pool[b]
	if ea.time != eb.time {
		return ea.time < eb.time
	}
	return ea.seq < eb.seq
}

func (q *legacyHeapQueue) push(e event) {
	var idx uint32
	if n := len(q.free); n > 0 {
		idx = q.free[n-1]
		q.free = q.free[:n-1]
		q.pool[idx] = e
	} else {
		idx = uint32(len(q.pool))
		q.pool = append(q.pool, e)
	}
	q.heap = append(q.heap, idx)
	q.siftUp(len(q.heap) - 1)
}

func (q *legacyHeapQueue) pop() event {
	idx := q.heap[0]
	last := len(q.heap) - 1
	q.heap[0] = q.heap[last]
	q.heap = q.heap[:last]
	if last > 0 {
		q.siftDown(0)
	}
	e := q.pool[idx]
	q.pool[idx] = event{}
	q.free = append(q.free, idx)
	return e
}

func (q *legacyHeapQueue) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(q.heap[i], q.heap[parent]) {
			return
		}
		q.heap[i], q.heap[parent] = q.heap[parent], q.heap[i]
		i = parent
	}
}

func (q *legacyHeapQueue) siftDown(i int) {
	n := len(q.heap)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		least := left
		if right := left + 1; right < n && q.less(q.heap[right], q.heap[left]) {
			least = right
		}
		if !q.less(q.heap[least], q.heap[i]) {
			return
		}
		q.heap[i], q.heap[least] = q.heap[least], q.heap[i]
		i = least
	}
}

// driveSeedWorkload replays a seed-scenario-shaped event stream — n nodes'
// staggered tick trains at the default period, each tick fanning out
// latency-delayed messages with the default 1..10 latency window, plus
// occasional At-style same-instant functions, with pops interleaved exactly
// as Network.Run interleaves them — through push/pop callbacks. The stream
// is a pure function of the seed, so two queue implementations fed the same
// callbacks see byte-identical input.
func driveSeedWorkload(n int, seed int64, cycles int64,
	push func(event), pop func() (event, bool)) {
	const delta = 10 // core.DefaultDelta; not imported to keep the fixture frozen
	rng := rand.New(rand.NewSource(seed))
	var seq uint64
	emit := func(e event) {
		e.seq = seq
		seq++
		push(e)
	}
	// Bootstrap: every node's first tick at its start offset, like Attach.
	for i := 0; i < n; i++ {
		emit(event{time: int64(i % delta), kind: evTick, to: peer.Addr(i)})
	}
	until := cycles * delta
	for {
		e, ok := pop()
		if !ok || e.time > until {
			return
		}
		switch e.kind {
		case evTick:
			// A tick sends 1-2 latency-delayed messages and reschedules
			// itself — the simulator's dominant pattern.
			fan := 1 + rng.Intn(2)
			for f := 0; f < fan; f++ {
				emit(event{
					time: e.time + 1 + int64(rng.Intn(10)),
					kind: evMessage,
					to:   peer.Addr(rng.Intn(n)),
					from: e.to,
				})
			}
			emit(event{time: e.time + delta, kind: evTick, to: e.to})
		case evMessage:
			// Some deliveries answer immediately (request/answer pairs).
			if rng.Intn(4) == 0 {
				emit(event{
					time: e.time + 1 + int64(rng.Intn(10)),
					kind: evMessage,
					to:   e.from,
					from: e.to,
				})
			}
		case evFunc:
		}
		// Occasional At(now) — runs at the current instant, after queued
		// work, exactly like Network.At with a past deadline.
		if rng.Intn(64) == 0 {
			emit(event{time: e.time, kind: evFunc})
		}
	}
}

// TestGoldenQueueOrderMatchesLegacyHeap runs the seed-scenario workload at
// n=1024 through the retired PR 1 heap and the calendar queue side by side
// and asserts every pop is identical — time, seq, kind, and addressing. This
// is the byte-identical-ordering half of the golden regression; the CSV half
// (final run output sha256-pinned at n=256 and n=1024, unchanged from the
// pre-calendar constants) is experiment.TestGoldenCSVByteIdentical, which
// now runs on this queue.
func TestGoldenQueueOrderMatchesLegacyHeap(t *testing.T) {
	var legacy legacyHeapQueue
	var calendar eventQueue
	type rec struct {
		e  event
		ok bool
	}
	var legacyPops []rec
	driveSeedWorkload(1024, 42, 40,
		func(e event) { legacy.push(e) },
		func() (event, bool) {
			if legacy.len() == 0 {
				return event{}, false
			}
			e := legacy.pop()
			legacyPops = append(legacyPops, rec{e: e, ok: true})
			return e, true
		})
	i := 0
	driveSeedWorkload(1024, 42, 40,
		func(e event) { calendar.push(e) },
		func() (event, bool) {
			if calendar.len() == 0 {
				if i < len(legacyPops) {
					t.Fatalf("calendar queue drained at pop %d; heap served %d pops", i, len(legacyPops))
				}
				return event{}, false
			}
			e := calendar.pop()
			if i >= len(legacyPops) {
				t.Fatalf("calendar queue served extra pop %d: %+v", i, e)
			}
			want := legacyPops[i].e
			if e.time != want.time || e.seq != want.seq || e.kind != want.kind ||
				e.to != want.to || e.from != want.from {
				t.Fatalf("pop %d diverged:\n calendar (t=%d seq=%d kind=%d to=%d from=%d)\n legacy   (t=%d seq=%d kind=%d to=%d from=%d)",
					i, e.time, e.seq, e.kind, e.to, e.from,
					want.time, want.seq, want.kind, want.to, want.from)
			}
			i++
			return e, true
		})
	if i != len(legacyPops) {
		t.Fatalf("calendar queue served %d pops, heap served %d", i, len(legacyPops))
	}
	if len(legacyPops) < 100000 {
		t.Fatalf("workload too small to be meaningful: %d pops", len(legacyPops))
	}
}

// BenchmarkEventQueue pits the retired PR 1 pooled heap against the calendar
// queue on the acceptance workload: 1<<16 queued events in steady state,
// each op one pop plus one bounded-horizon push (message latency 1..10 or a
// tick one period out). The calendar queue must be >= 2x faster with
// allocs/op no worse; CI's bench job asserts the ratio on a multi-core
// runner (this container is single-core, but the workload is serial anyway).
func BenchmarkEventQueue(b *testing.B) {
	const queued = 1 << 16
	type impl struct {
		name string
		push func(event)
		pop  func() event
	}
	for _, mk := range []struct {
		name string
		make func() impl
	}{
		{"heap", func() impl {
			var q legacyHeapQueue
			return impl{push: q.push, pop: q.pop, name: "heap"}
		}},
		{"calendar", func() impl {
			var q eventQueue
			return impl{push: q.push, pop: q.pop, name: "calendar"}
		}},
	} {
		b.Run(fmt.Sprintf("impl=%s/queued=%d", mk.name, queued), func(b *testing.B) {
			q := mk.make()
			rng := rand.New(rand.NewSource(9))
			var seq uint64
			now := int64(0)
			push := func(t int64, kind eventKind) {
				q.push(event{time: t, seq: seq, kind: kind})
				seq++
			}
			for i := 0; i < queued; i++ {
				if i%3 == 0 {
					push(now+int64(rng.Intn(10)), evTick)
				} else {
					push(now+1+int64(rng.Intn(10)), evMessage)
				}
			}
			// Warm to steady state: the prefill fully sizes the heap's
			// pool but only touches a few ring slots of the calendar
			// queue, so run one full lap of the 256-bucket ring before
			// timing — both structures then measure from their warmed
			// high-water capacities.
			for i := 0; i < 1<<21; i++ {
				e := q.pop()
				now = e.time
				if e.kind == evTick {
					push(now+10, evTick)
				} else {
					push(now+1+int64(rng.Intn(10)), evMessage)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e := q.pop()
				now = e.time
				if e.kind == evTick {
					push(now+10, evTick)
				} else {
					push(now+1+int64(rng.Intn(10)), evMessage)
				}
			}
		})
	}
}
