package coord

import (
	"testing"
	"testing/quick"

	"repro/internal/peer"
)

func TestLatencyProperties(t *testing.T) {
	s := NewRandomSpace(100, 1, 100)
	if s.Len() != 100 {
		t.Fatalf("len = %d", s.Len())
	}
	f := func(ar, br uint8) bool {
		a, b := peer.Addr(int(ar)%100), peer.Addr(int(br)%100)
		la, lb := s.Latency(a, b), s.Latency(b, a)
		if la != lb {
			return false // symmetry
		}
		if a == b && la != 0 {
			return false // identity
		}
		// Max torus distance is sqrt(0.5^2+0.5^2) ~ 0.707 of scale.
		return la >= 0 && la <= 71
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLatencyUnknownAddr(t *testing.T) {
	s := NewRandomSpace(10, 2, 100)
	if got := s.Latency(peer.Addr(99), 0); got != 100 {
		t.Errorf("unknown addr latency = %d, want full diameter 100", got)
	}
	if got := s.Latency(peer.NoAddr, 0); got != 100 {
		t.Errorf("NoAddr latency = %d, want 100", got)
	}
}

func TestDefaultScale(t *testing.T) {
	s := NewRandomSpace(10, 3, 0)
	if s.scale != 100 {
		t.Errorf("default scale = %v, want 100", s.scale)
	}
}

func TestTorusWraps(t *testing.T) {
	if d := torusDelta(0.05, 0.95); d > 0.11 {
		t.Errorf("torus delta across the seam = %v, want ~0.1", d)
	}
}
