// Package coord models network proximity: each node gets a point on the
// unit torus and the latency between two nodes is their torus distance.
// The paper notes that keeping k > 1 entries per prefix-table slot "allows
// for optimizing the routes according to proximity"; this package supplies
// the proximity metric those experiments need.
package coord

import (
	"math"
	"math/rand"

	"repro/internal/peer"
)

// Space assigns virtual coordinates to node addresses.
type Space struct {
	pts   [][2]float64
	scale float64
}

// NewRandomSpace places n nodes uniformly on the unit torus, with
// latencies scaled so the network diameter is about scale time units.
// scale <= 0 selects 100.
func NewRandomSpace(n int, seed int64, scale float64) *Space {
	if scale <= 0 {
		scale = 100
	}
	rng := rand.New(rand.NewSource(seed))
	pts := make([][2]float64, n)
	for i := range pts {
		pts[i] = [2]float64{rng.Float64(), rng.Float64()}
	}
	return &Space{pts: pts, scale: scale}
}

// Len returns the number of placed nodes.
func (s *Space) Len() int { return len(s.pts) }

// Latency returns the symmetric proximity cost between two addresses.
// Unknown addresses cost the full diameter.
func (s *Space) Latency(a, b peer.Addr) int64 {
	if !s.valid(a) || !s.valid(b) {
		return int64(s.scale)
	}
	pa, pb := s.pts[a], s.pts[b]
	dx := torusDelta(pa[0], pb[0])
	dy := torusDelta(pa[1], pb[1])
	return int64(math.Sqrt(dx*dx+dy*dy) * s.scale)
}

// torusDelta is the wrapped 1-D distance on the unit circle.
func torusDelta(a, b float64) float64 {
	d := math.Abs(a - b)
	if d > 0.5 {
		d = 1 - d
	}
	return d
}

func (s *Space) valid(a peer.Addr) bool {
	return a >= 0 && int(a) < len(s.pts)
}
