package aggregate

import (
	"math"
	"testing"

	"repro/internal/id"
	"repro/internal/peer"
	"repro/internal/sampling"
	"repro/internal/simnet"
)

func buildNetwork(t testing.TB, n int, seed int64, initial func(i int) float64) (*simnet.Network, []*Protocol) {
	t.Helper()
	net := simnet.New(simnet.Config{Seed: seed})
	ids := id.Unique(n, seed+10)
	descs := make([]peer.Descriptor, n)
	for i := range descs {
		descs[i] = peer.Descriptor{ID: ids[i], Addr: net.AddNode()}
	}
	oracle := sampling.NewOracle(descs, seed+20)
	protos := make([]*Protocol, n)
	for i, d := range descs {
		p, err := New(d, oracle, initial(i))
		if err != nil {
			t.Fatal(err)
		}
		protos[i] = p
		if err := net.Attach(d.Addr, ProtoID, p, 10, int64(i%10)); err != nil {
			t.Fatal(err)
		}
	}
	return net, protos
}

func TestNewValidation(t *testing.T) {
	if _, err := New(peer.Descriptor{ID: 1}, nil, 0); err == nil {
		t.Error("nil sampler accepted")
	}
}

// TestConvergesToAverage: values converge to the global mean with variance
// shrinking every cycle.
func TestConvergesToAverage(t *testing.T) {
	const n = 200
	net, protos := buildNetwork(t, n, 1, func(i int) float64 { return float64(i) })
	want := float64(n-1) / 2
	net.Run(10 * 40)
	for i, p := range protos {
		if math.Abs(p.Value()-want) > want*0.05 {
			t.Fatalf("node %d estimate %.2f, want ~%.2f", i, p.Value(), want)
		}
	}
}

// TestSizeEstimation: the 1-at-one-node initialisation estimates N. The
// exchanges are not atomic pairs (requests can overlap), so the conserved
// mass drifts a little and single-epoch estimates carry variance; the
// protocol's hard guarantee is that all nodes agree on a value of the
// right magnitude.
func TestSizeEstimation(t *testing.T) {
	const n = 256
	net, protos := buildNetwork(t, n, 2, func(i int) float64 {
		if i == 0 {
			return 1
		}
		return 0
	})
	net.Run(10 * 50)
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, p := range protos {
		est := p.SizeEstimate()
		if est < float64(n)/2 || est > float64(n)*2 {
			t.Fatalf("size estimate %.1f outside [N/2, 2N] for N=%d", est, n)
		}
		lo = math.Min(lo, est)
		hi = math.Max(hi, est)
	}
	if hi/lo > 1.05 {
		t.Errorf("nodes disagree on the estimate: [%.1f, %.1f]", lo, hi)
	}
}

// TestMassApproximatelyConserved: push-pull averaging preserves the sum of
// values up to the small perturbation caused by overlapping exchanges.
func TestMassApproximatelyConserved(t *testing.T) {
	const n = 100
	net, protos := buildNetwork(t, n, 3, func(i int) float64 { return float64(i % 7) })
	var before float64
	for _, p := range protos {
		before += p.Value()
	}
	net.Run(10 * 30)
	var after float64
	for _, p := range protos {
		after += p.Value()
	}
	if math.Abs(after-before)/before > 0.1 {
		t.Errorf("mass drifted: %.2f -> %.2f", before, after)
	}
}

func TestRoundsProgress(t *testing.T) {
	net, protos := buildNetwork(t, 50, 4, func(int) float64 { return 1 })
	net.Run(10 * 10)
	for i, p := range protos {
		if p.Rounds() == 0 {
			t.Fatalf("node %d never exchanged", i)
		}
	}
}

func TestSizeEstimateZeroValue(t *testing.T) {
	p, err := New(peer.Descriptor{ID: 1}, sampling.Fixed(nil), 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.SizeEstimate() != 0 {
		t.Error("zero value should yield zero estimate")
	}
}

func TestHandleIgnoresForeign(t *testing.T) {
	net, protos := buildNetwork(t, 10, 5, func(int) float64 { return 1 })
	net.Send(0, protos[0].self.Addr, ProtoID, "garbage")
	net.Run(50) // must not panic
}

func TestWireSize(t *testing.T) {
	if (Message{}).WireSize() != 1 {
		t.Error("aggregate messages are one scalar")
	}
}
