// Package aggregate implements push-pull gossip averaging — the
// "aggregation" component of the paper's architecture (Figure 1, citing
// Jelasity, Montresor & Babaoglu, ACM TOCS 2005). Every period each node
// exchanges its current estimate with a random peer and both adopt the
// mean; estimates converge exponentially to the global average.
//
// With one node holding 1 and all others 0, the average converges to 1/N,
// giving a decentralised network-size estimate — useful for sizing
// bootstrap parameters before jump-starting an overlay.
package aggregate

import (
	"fmt"

	"repro/internal/peer"
	"repro/internal/proto"
	"repro/internal/sampling"
)

// ProtoID is the simnet protocol identifier conventionally used for the
// aggregation layer.
const ProtoID proto.ProtoID = 5

// Message is one half of a push-pull exchange.
type Message struct {
	Value   float64
	Request bool
}

// WireSize reports the message size in descriptor units; an estimate is
// one scalar.
func (Message) WireSize() int { return 1 }

// Protocol is the averaging state machine for one node.
type Protocol struct {
	self    peer.Descriptor
	sampler sampling.Service
	value   float64
	rounds  int
}

var _ proto.Protocol = (*Protocol)(nil)

// New returns an aggregation instance holding the given initial value.
func New(self peer.Descriptor, sampler sampling.Service, initial float64) (*Protocol, error) {
	if sampler == nil {
		return nil, fmt.Errorf("aggregate node %s: nil sampler", self.ID)
	}
	return &Protocol{self: self, sampler: sampler, value: initial}, nil
}

// Init is a no-op.
func (p *Protocol) Init(proto.Context) {}

// Tick performs the active half of a push-pull exchange with a random peer.
func (p *Protocol) Tick(ctx proto.Context) {
	s := p.sampler.Sample(1)
	if len(s) == 0 || s[0].ID == p.self.ID {
		return
	}
	ctx.Send(s[0].Addr, Message{Value: p.value, Request: true})
}

// Handle answers requests with the local value and averages in either case.
//
// Note on atomicity: the paper's push-pull averaging assumes the pair
// averages atomically. With asynchronous messages a node may enter two
// overlapping exchanges, which perturbs mass conservation slightly; the
// perturbation is zero-mean and vanishes as exchanges serialise, so
// convergence to the average is preserved in practice.
func (p *Protocol) Handle(ctx proto.Context, from peer.Addr, msg proto.Message) {
	m, ok := msg.(Message)
	if !ok {
		return
	}
	if m.Request {
		ctx.Send(from, Message{Value: p.value})
	}
	p.value = (p.value + m.Value) / 2
	p.rounds++
}

// Value returns the current estimate.
func (p *Protocol) Value() float64 { return p.value }

// Rounds returns the number of averaging steps performed.
func (p *Protocol) Rounds() int { return p.rounds }

// SizeEstimate interprets the converged value as a network-size estimate
// for the one-node-holds-1 initialisation. It returns 0 when the estimate
// is not yet meaningful.
func (p *Protocol) SizeEstimate() float64 {
	if p.value <= 0 {
		return 0
	}
	return 1 / p.value
}
