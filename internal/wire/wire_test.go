package wire

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/id"
	"repro/internal/peer"
	"repro/internal/proto"
)

// randomMessage fills a pooled message with rng-driven contents.
func randomMessage(rng *rand.Rand) *core.Message {
	m := core.NewMessage()
	m.Request = rng.Intn(2) == 0
	m.Sender = peer.Descriptor{ID: id.ID(rng.Uint64()), Addr: peer.Addr(rng.Int31n(1 << 20))}
	for i, n := 0, rng.Intn(40); i < n; i++ {
		m.Entries = append(m.Entries, peer.Descriptor{
			ID:   id.ID(rng.Uint64()),
			Addr: peer.Addr(rng.Int31n(1 << 20)),
		})
	}
	for i, n := 0, rng.Intn(8); i < n; i++ {
		m.Dead = append(m.Dead, id.ID(rng.Uint64()))
	}
	return m
}

func sameMessage(t *testing.T, want, got *core.Message) {
	t.Helper()
	if want.Request != got.Request {
		t.Errorf("Request: want %v, got %v", want.Request, got.Request)
	}
	if want.Sender != got.Sender {
		t.Errorf("Sender: want %v, got %v", want.Sender, got.Sender)
	}
	if len(want.Entries) != len(got.Entries) {
		t.Fatalf("Entries: want %d, got %d", len(want.Entries), len(got.Entries))
	}
	for i := range want.Entries {
		if want.Entries[i] != got.Entries[i] {
			t.Errorf("Entries[%d]: want %v, got %v", i, want.Entries[i], got.Entries[i])
		}
	}
	if len(want.Dead) != len(got.Dead) {
		t.Fatalf("Dead: want %d, got %d", len(want.Dead), len(got.Dead))
	}
	for i := range want.Dead {
		if want.Dead[i] != got.Dead[i] {
			t.Errorf("Dead[%d]: want %v, got %v", i, want.Dead[i], got.Dead[i])
		}
	}
}

func TestWireRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		m := randomMessage(rng)
		env := Envelope{
			From: peer.Addr(rng.Int31n(1 << 16)),
			To:   peer.Addr(rng.Int31n(1 << 16)),
			Pid:  proto.ProtoID(rng.Intn(256)),
		}
		frame := AppendFrame(nil, env, m)
		gotEnv, got, err := Decode(frame[4:])
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if gotEnv != env {
			t.Fatalf("trial %d: envelope: want %+v, got %+v", trial, env, gotEnv)
		}
		sameMessage(t, m, got)
		m.Recycle()
		got.Recycle()
	}
}

// TestWireRoundTripEdgeCases pins the corners the random sweep may miss:
// empty message, NoAddr sentinels everywhere, and the max-entry shape.
func TestWireRoundTripEdgeCases(t *testing.T) {
	cases := []func(m *core.Message) Envelope{
		func(m *core.Message) Envelope { // empty everything
			return Envelope{From: 0, To: 0, Pid: 0}
		},
		func(m *core.Message) Envelope { // NoAddr sentinels round-trip
			m.Sender = peer.None
			m.Entries = append(m.Entries, peer.None)
			return Envelope{From: peer.NoAddr, To: peer.NoAddr, Pid: proto.BootstrapID}
		},
		func(m *core.Message) Envelope { // request flag + certificates only
			m.Request = true
			m.Dead = append(m.Dead, 1, 2, 3)
			return Envelope{From: 7, To: 9, Pid: proto.NewscastID}
		},
	}
	for i, build := range cases {
		m := core.NewMessage()
		env := build(m)
		frame := AppendFrame(nil, env, m)
		gotEnv, got, err := Decode(frame[4:])
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if gotEnv != env {
			t.Fatalf("case %d: envelope: want %+v, got %+v", i, env, gotEnv)
		}
		sameMessage(t, m, got)
		m.Recycle()
		got.Recycle()
	}
}

// TestWireDecodeMalformed feeds the decoder structurally broken payloads
// and requires a typed error (never a panic, never a silent success).
func TestWireDecodeMalformed(t *testing.T) {
	m := core.NewMessage()
	m.Sender = peer.Descriptor{ID: 99, Addr: 3}
	m.Entries = append(m.Entries, peer.Descriptor{ID: 1, Addr: 1}, peer.Descriptor{ID: 2, Addr: 2})
	m.Dead = append(m.Dead, 5)
	frame := AppendFrame(nil, Envelope{From: 1, To: 2, Pid: proto.BootstrapID}, m)
	payload := frame[4:]
	m.Recycle()

	t.Run("empty", func(t *testing.T) {
		if _, _, err := Decode(nil); !errors.Is(err, ErrTruncated) {
			t.Fatalf("want ErrTruncated, got %v", err)
		}
	})
	t.Run("bad version", func(t *testing.T) {
		bad := bytes.Clone(payload)
		bad[0] = 0x7f
		if _, _, err := Decode(bad); !errors.Is(err, ErrVersion) {
			t.Fatalf("want ErrVersion, got %v", err)
		}
	})
	t.Run("truncated every prefix", func(t *testing.T) {
		for cut := 0; cut < len(payload); cut++ {
			if _, msg, err := Decode(payload[:cut]); err == nil {
				msg.Recycle()
				t.Fatalf("cut %d: decode of truncated payload succeeded", cut)
			}
		}
	})
	t.Run("trailing garbage", func(t *testing.T) {
		bad := append(bytes.Clone(payload), 0xee)
		if _, _, err := Decode(bad); !errors.Is(err, ErrTrailing) {
			t.Fatalf("want ErrTrailing, got %v", err)
		}
	})
	t.Run("forged entry count", func(t *testing.T) {
		// Overwrite the entry count (first uvarint after the 3-byte
		// header, two 1-byte addrs, and the 9-byte sender) with a count
		// the remaining bytes cannot hold.
		bad := bytes.Clone(payload)
		bad[3+1+1+9] = 0xff // uvarint continuation -> large count
		bad = append(bad, 0xff, 0x7f)
		if _, _, err := Decode(bad); err == nil {
			t.Fatal("decode with forged count succeeded")
		}
	})
	t.Run("oversized payload", func(t *testing.T) {
		if _, _, err := Decode(make([]byte, MaxFrameSize+1)); !errors.Is(err, ErrTooLarge) {
			t.Fatalf("want ErrTooLarge, got %v", err)
		}
	})
}

func TestReadFrame(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var stream []byte
	var msgs []*core.Message
	for i := 0; i < 5; i++ {
		m := randomMessage(rng)
		stream = AppendFrame(stream, Envelope{From: peer.Addr(i), To: peer.Addr(i + 1), Pid: 1}, m)
		msgs = append(msgs, m)
	}
	r := bytes.NewReader(stream)
	var buf []byte
	for i := 0; i < 5; i++ {
		payload, newBuf, err := ReadFrame(r, buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		buf = newBuf
		env, got, err := Decode(payload)
		if err != nil {
			t.Fatalf("frame %d: decode: %v", i, err)
		}
		if env.From != peer.Addr(i) || env.To != peer.Addr(i+1) {
			t.Fatalf("frame %d: envelope %+v", i, env)
		}
		sameMessage(t, msgs[i], got)
		got.Recycle()
	}
	if _, _, err := ReadFrame(r, buf); err != io.EOF {
		t.Fatalf("want io.EOF at clean boundary, got %v", err)
	}

	// A mid-frame cut must not look like orderly shutdown.
	r = bytes.NewReader(stream[:len(stream)-3])
	buf = buf[:0]
	var err error
	for err == nil {
		_, buf, err = ReadFrame(r, buf)
	}
	if err != io.ErrUnexpectedEOF {
		t.Fatalf("want io.ErrUnexpectedEOF at mid-frame cut, got %v", err)
	}
	for _, m := range msgs {
		m.Recycle()
	}
}

// TestWireCodecAllocs is the CI alloc guard for the tentpole requirement:
// steady-state encode AND decode at 0 allocs/op. The warm-up round grows
// the encode buffer and the pooled message's descriptor arena; after that
// the loop must not touch the heap.
func TestWireCodecAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randomMessage(rng)
	env := Envelope{From: 3, To: 8, Pid: proto.BootstrapID}
	buf := AppendFrame(nil, env, m)

	// Warm the pool with a decoded message of this shape.
	_, warm, err := Decode(buf[4:])
	if err != nil {
		t.Fatal(err)
	}
	warm.Recycle()

	avg := testing.AllocsPerRun(100, func() {
		buf = AppendFrame(buf[:0], env, m)
		_, got, err := Decode(buf[4:])
		if err != nil {
			t.Fatal(err)
		}
		got.Recycle()
	})
	if avg != 0 {
		t.Fatalf("encode+decode allocations: got %v allocs/op, want 0", avg)
	}
	m.Recycle()
}

// BenchmarkWireCodec measures one encode+decode round trip of a typical
// bootstrap exchange (~20 descriptors). CI asserts 0 allocs/op.
func BenchmarkWireCodec(b *testing.B) {
	m := core.NewMessage()
	m.Request = true
	m.Sender = peer.Descriptor{ID: 0xdeadbeef, Addr: 17}
	for i := 0; i < 20; i++ {
		m.Entries = append(m.Entries, peer.Descriptor{ID: id.ID(i * 0x9e3779b9), Addr: peer.Addr(i)})
	}
	m.Dead = append(m.Dead, 0x1111, 0x2222)
	env := Envelope{From: 17, To: 4, Pid: proto.BootstrapID}

	buf := AppendFrame(nil, env, m)
	_, warm, err := Decode(buf[4:])
	if err != nil {
		b.Fatal(err)
	}
	warm.Recycle()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendFrame(buf[:0], env, m)
		_, got, err := Decode(buf[4:])
		if err != nil {
			b.Fatal(err)
		}
		got.Recycle()
	}
	b.SetBytes(int64(len(buf)))
}
