package wire

import (
	"math/rand"
	"testing"

	"repro/internal/peer"
	"repro/internal/proto"
)

// FuzzWireRoundTrip drives the decoder with arbitrary bytes — it must
// never panic and never leak a pooled message on error — and checks the
// round-trip contract on anything it accepts: re-encoding the decoded
// message and decoding again yields the same envelope and message.
// (Byte-identity is not required: varints admit non-minimal encodings,
// which the decoder tolerates but the encoder never produces.)
func FuzzWireRoundTrip(f *testing.F) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 8; i++ {
		m := randomMessage(rng)
		frame := AppendFrame(nil, Envelope{
			From: peer.Addr(rng.Int31n(1 << 12)),
			To:   peer.Addr(rng.Int31n(1 << 12)),
			Pid:  proto.ProtoID(rng.Intn(8)),
		}, m)
		f.Add(frame[4:])
		m.Recycle()
	}
	f.Add([]byte{})
	f.Add([]byte{Version})
	f.Add([]byte{Version, 2, 0, 0xff, 0xff, 0xff, 0xff, 0x0f})

	f.Fuzz(func(t *testing.T, payload []byte) {
		env, m, err := Decode(payload)
		if err != nil {
			if m != nil {
				t.Fatal("decode returned both a message and an error")
			}
			return
		}
		reenc := AppendFrame(nil, env, m)
		env2, m2, err := Decode(reenc[4:])
		if err != nil {
			t.Fatalf("re-encoded payload rejected: %v\n in: %x\nout: %x", err, payload, reenc[4:])
		}
		if env2 != env {
			t.Fatalf("envelope drift: %+v -> %+v", env, env2)
		}
		if m2.Request != m.Request || m2.Sender != m.Sender ||
			len(m2.Entries) != len(m.Entries) || len(m2.Dead) != len(m.Dead) {
			t.Fatalf("message drift:\n in: %x\nout: %x", payload, reenc[4:])
		}
		for i := range m.Entries {
			if m.Entries[i] != m2.Entries[i] {
				t.Fatalf("entry %d drift", i)
			}
		}
		for i := range m.Dead {
			if m.Dead[i] != m2.Dead[i] {
				t.Fatalf("certificate %d drift", i)
			}
		}
		m.Recycle()
		m2.Recycle()
	})
}
