// Package wire is the binary codec of the socket transport engine: it
// serialises core bootstrap messages into length-prefixed frames and
// deserialises them back into pooled messages, keeping the zero-alloc
// discipline of the in-memory engines — steady-state encode appends into a
// caller-reused buffer and steady-state decode fills a pooled message's
// descriptor arena, so neither direction allocates per frame.
//
// Frame layout (version 1, all multi-byte integers little-endian):
//
//	frame   := length(uint32) payload
//	payload := ver(1) pid(1) flags(1) from(uvarint) to(uvarint)
//	           sender nEntries(uvarint) entry* nDead(uvarint) deadID*
//	entry   := id(8) addr(uvarint)
//	deadID  := id(8)
//
// Descriptor IDs ship as raw 8-byte words: they are uniform random points
// on the ring, so there is nothing for a varint to compress. Addresses are
// dense small integers assigned by the campaign topology and varint-encode
// to one or two bytes. The length prefix covers the payload only.
//
// The codec is deliberately specific to core.Message — the only protocol
// the socket engine carries (wire format v1). Decoding never trusts the
// peer: lengths, counts, and trailing bytes are validated against hard
// caps before any allocation sizing, so a corrupted or malicious frame
// yields an error, not a panic or an absurd allocation (fuzzed by
// FuzzWireRoundTrip).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/id"
	"repro/internal/peer"
	"repro/internal/proto"
)

// Version is the wire format version emitted by AppendFrame and accepted
// by Decode.
const Version = 1

// MaxFrameSize bounds a payload. A full bootstrap message is a few hundred
// bytes (c + table entries at ~10 bytes each); a megabyte is orders of
// magnitude of headroom while still refusing absurd length prefixes from a
// desynchronised or hostile stream.
const MaxFrameSize = 1 << 20

// maxEntries bounds the per-message descriptor and certificate counts.
// The protocol caps entries at c + the full prefix-table capacity (well
// under a thousand) and certificates at 32; the decoder allows a wide
// margin without letting a forged count size an allocation.
const maxEntries = 1 << 16

// flag bits of the payload flags byte.
const flagRequest = 1 << 0

// Envelope is the routing header of a frame: which host sent the message,
// which host it is for, and the protocol binding it addresses.
type Envelope struct {
	From, To peer.Addr
	Pid      proto.ProtoID
}

// Codec errors. Decode wraps them with positional detail; errors.Is works
// against these sentinels.
var (
	ErrTruncated = errors.New("wire: truncated frame")
	ErrVersion   = errors.New("wire: unsupported version")
	ErrTooLarge  = errors.New("wire: frame exceeds size bound")
	ErrCounts    = errors.New("wire: implausible element count")
	ErrTrailing  = errors.New("wire: trailing bytes after message")
)

// appendUvarint is binary.AppendUvarint (kept local so the encoder reads
// as one piece with the decoder's getUvarint).
func appendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

// appendAddr encodes an address as the uvarint of its two's-complement
// 32-bit pattern: real addresses are small non-negative integers (1-2
// bytes); the NoAddr sentinel still round-trips, just long-form.
func appendAddr(dst []byte, a peer.Addr) []byte {
	return appendUvarint(dst, uint64(uint32(a)))
}

// AppendFrame serialises (env, m) as one length-prefixed frame appended to
// dst and returns the extended slice. The message is only read; ownership
// stays with the caller (the transport recycles it after encoding, which
// is the moment the socket engine retires a sent message). Steady-state
// cost is pure byte appends into dst's existing capacity.
func AppendFrame(dst []byte, env Envelope, m *core.Message) []byte {
	base := len(dst)
	dst = append(dst, 0, 0, 0, 0) // length back-patched below
	dst = append(dst, Version, byte(env.Pid), flags(m))
	dst = appendAddr(dst, env.From)
	dst = appendAddr(dst, env.To)
	dst = appendDescriptor(dst, m.Sender)
	dst = appendUvarint(dst, uint64(len(m.Entries)))
	for _, d := range m.Entries {
		dst = appendDescriptor(dst, d)
	}
	dst = appendUvarint(dst, uint64(len(m.Dead)))
	for _, dead := range m.Dead {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(dead))
	}
	binary.LittleEndian.PutUint32(dst[base:], uint32(len(dst)-base-4))
	return dst
}

func flags(m *core.Message) byte {
	var f byte
	if m.Request {
		f |= flagRequest
	}
	return f
}

func appendDescriptor(dst []byte, d peer.Descriptor) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, uint64(d.ID))
	return appendAddr(dst, d.Addr)
}

// reader is a cursor over one payload.
type reader struct {
	buf []byte
	off int
}

func (r *reader) remaining() int { return len(r.buf) - r.off }

func (r *reader) byte() (byte, error) {
	if r.remaining() < 1 {
		return 0, ErrTruncated
	}
	b := r.buf[r.off]
	r.off++
	return b, nil
}

func (r *reader) uint64() (uint64, error) {
	if r.remaining() < 8 {
		return 0, ErrTruncated
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v, nil
}

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		return 0, ErrTruncated
	}
	r.off += n
	return v, nil
}

func (r *reader) addr() (peer.Addr, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(^uint32(0)) {
		return 0, fmt.Errorf("%w: address %d overflows 32 bits", ErrCounts, v)
	}
	return peer.Addr(int32(uint32(v))), nil
}

func (r *reader) descriptor() (peer.Descriptor, error) {
	raw, err := r.uint64()
	if err != nil {
		return peer.Descriptor{}, err
	}
	a, err := r.addr()
	if err != nil {
		return peer.Descriptor{}, err
	}
	return peer.Descriptor{ID: id.ID(raw), Addr: a}, nil
}

// Decode deserialises one payload (a frame without its length prefix) into
// a pooled message. On success the caller owns the returned message and
// must eventually retire it exactly once through proto.Recyclable — under
// the transport engine that is the normal delivery/drop path. On error no
// message escapes (the pooled draw is recycled internally).
//
// The entries land in the pooled message's descriptor arena: after the
// first few frames the arena has grown to the working-set size and decode
// allocates nothing.
func Decode(payload []byte) (Envelope, *core.Message, error) {
	var env Envelope
	if len(payload) > MaxFrameSize {
		return env, nil, fmt.Errorf("%w: %d bytes", ErrTooLarge, len(payload))
	}
	r := reader{buf: payload}
	ver, err := r.byte()
	if err != nil {
		return env, nil, err
	}
	if ver != Version {
		return env, nil, fmt.Errorf("%w: got %d, want %d", ErrVersion, ver, Version)
	}
	pid, err := r.byte()
	if err != nil {
		return env, nil, err
	}
	env.Pid = proto.ProtoID(pid)
	fl, err := r.byte()
	if err != nil {
		return env, nil, err
	}
	if fl&^flagRequest != 0 {
		return env, nil, fmt.Errorf("%w: unknown flag bits %#x", ErrVersion, fl)
	}
	if env.From, err = r.addr(); err != nil {
		return env, nil, err
	}
	if env.To, err = r.addr(); err != nil {
		return env, nil, err
	}

	m := core.NewMessage()
	if err := decodeBody(&r, m, fl); err != nil {
		m.Recycle()
		return env, nil, err
	}
	return env, m, nil
}

func decodeBody(r *reader, m *core.Message, fl byte) error {
	var err error
	m.Request = fl&flagRequest != 0
	if m.Sender, err = r.descriptor(); err != nil {
		return err
	}
	n, err := r.uvarint()
	if err != nil {
		return err
	}
	// Each entry is at least 9 bytes on the wire, so a count that cannot
	// fit in the remaining payload is rejected before it sizes anything.
	if n > maxEntries || int(n) > r.remaining()/9+1 {
		return fmt.Errorf("%w: %d entries in %d bytes", ErrCounts, n, r.remaining())
	}
	m.Entries = m.Entries[:0]
	for i := uint64(0); i < n; i++ {
		d, err := r.descriptor()
		if err != nil {
			return err
		}
		m.Entries = append(m.Entries, d)
	}
	n, err = r.uvarint()
	if err != nil {
		return err
	}
	if n > maxEntries || int(n) > r.remaining()/8 {
		return fmt.Errorf("%w: %d certificates in %d bytes", ErrCounts, n, r.remaining())
	}
	m.Dead = m.Dead[:0]
	for i := uint64(0); i < n; i++ {
		raw, err := r.uint64()
		if err != nil {
			return err
		}
		m.Dead = append(m.Dead, id.ID(raw))
	}
	if r.remaining() != 0 {
		return fmt.Errorf("%w: %d bytes", ErrTrailing, r.remaining())
	}
	return nil
}

// ReadFrame reads one length-prefixed frame from r into buf (grown as
// needed) and returns the payload slice aliasing buf — valid until the
// next call with the same buffer. io.EOF is returned untouched at a clean
// frame boundary so stream loops can distinguish orderly shutdown from a
// mid-frame cut (io.ErrUnexpectedEOF).
func ReadFrame(r io.Reader, buf []byte) ([]byte, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, buf, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxFrameSize {
		return nil, buf, fmt.Errorf("%w: %d bytes", ErrTooLarge, n)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, buf, err
	}
	return buf, buf, nil
}
