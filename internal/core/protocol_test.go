package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/id"
	"repro/internal/peer"
	"repro/internal/sampling"
	"repro/internal/simnet"
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.C = 8
	cfg.CR = 5
	return cfg
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{B: 0, K: 3, C: 20, CR: 30, Delta: 10},
		{B: 9, K: 3, C: 20, CR: 30, Delta: 10},
		{B: 5, K: 3, C: 20, CR: 30, Delta: 10}, // 5 does not divide 64
		{B: 4, K: 0, C: 20, CR: 30, Delta: 10},
		{B: 4, K: 3, C: 1, CR: 30, Delta: 10},
		{B: 4, K: 3, C: 21, CR: 30, Delta: 10}, // odd C
		{B: 4, K: 3, C: 20, CR: -1, Delta: 10},
		{B: 4, K: 3, C: 20, CR: 30, Delta: 0},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
}

func TestConfigDerived(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.NumRows() != 16 || cfg.NumCols() != 16 {
		t.Errorf("rows/cols = %d/%d, want 16/16", cfg.NumRows(), cfg.NumCols())
	}
	if cfg.TableCapacity() != 16*16*3 {
		t.Errorf("capacity = %d, want 768", cfg.TableCapacity())
	}
}

func TestNewNodeValidation(t *testing.T) {
	self := peer.Descriptor{ID: 1, Addr: 0}
	if _, err := NewNode(self, Config{}, sampling.Fixed(nil)); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := NewNode(self, DefaultConfig(), nil); err == nil {
		t.Error("nil sampler accepted")
	}
	if _, err := NewNode(self, DefaultConfig(), sampling.Fixed(nil)); err != nil {
		t.Errorf("valid node rejected: %v", err)
	}
}

func TestCreateMessageClosestToPeer(t *testing.T) {
	self := peer.Descriptor{ID: 1000, Addr: 0}
	// Sampler returns peers clustered near q and far from q.
	pool := []peer.Descriptor{
		{ID: 5001, Addr: 1}, {ID: 5002, Addr: 2}, {ID: 5003, Addr: 3},
		{ID: 90000, Addr: 4}, {ID: 90001, Addr: 5},
	}
	cfg := testConfig()
	cfg.C = 4
	cfg.CR = 5
	n, err := NewNode(self, cfg, sampling.Fixed(pool))
	if err != nil {
		t.Fatal(err)
	}
	n.leaf.Update(pool)
	q := peer.Descriptor{ID: 5000, Addr: 9}
	m := n.createMessage(q, true)
	if !m.Request {
		t.Error("request flag lost")
	}
	if m.Sender.ID != self.ID {
		t.Error("sender not self")
	}
	if len(m.Entries) < cfg.C {
		t.Fatalf("message has %d entries, want at least %d", len(m.Entries), cfg.C)
	}
	// The first C entries must be the closest to q: 5001, 5002, 5003 then
	// either self(1000) — distance 4000 — vs 90000 (85000): 1000 wins.
	wantClosest := map[id.ID]bool{5001: true, 5002: true, 5003: true, 1000: true}
	for i := 0; i < cfg.C; i++ {
		if !wantClosest[m.Entries[i].ID] {
			t.Errorf("entry %d = %s not among closest to q", i, m.Entries[i])
		}
	}
}

func TestCreateMessageIncludesPrefixPart(t *testing.T) {
	// q and a table entry share a long prefix; even if the entry is far
	// in ring distance it must ride along in the prefix part.
	self := peer.Descriptor{ID: 0x1000000000000000, Addr: 0}
	cfg := testConfig()
	cfg.CR = 0
	n, err := NewNode(self, cfg, sampling.Fixed(nil))
	if err != nil {
		t.Fatal(err)
	}
	q := peer.Descriptor{ID: 0xF000000000000001, Addr: 9}
	sharesPrefix := peer.Descriptor{ID: 0xF0000000FFFFFFFF, Addr: 7}
	n.table.Add(sharesPrefix)
	// Fill the leaf set with IDs near self so the close-to-q part does
	// not accidentally include the prefix peer.
	near := make([]peer.Descriptor, 0, cfg.C)
	for i := 1; i <= cfg.C; i++ {
		near = append(near, peer.Descriptor{ID: self.ID + id.ID(i), Addr: peer.Addr(i)})
	}
	n.leaf.Update(near)
	m := n.createMessage(q, false)
	found := false
	for _, d := range m.Entries {
		if d.ID == sharesPrefix.ID {
			found = true
		}
	}
	if !found {
		t.Error("descriptor sharing a prefix with q missing from message")
	}
}

func TestCreateMessageAblationDisablesFeedback(t *testing.T) {
	self := peer.Descriptor{ID: 0x1000000000000000, Addr: 0}
	cfg := testConfig()
	cfg.CR = 0
	cfg.DisablePrefixFeedback = true
	n, err := NewNode(self, cfg, sampling.Fixed(nil))
	if err != nil {
		t.Fatal(err)
	}
	q := peer.Descriptor{ID: 0xF000000000000001, Addr: 9}
	far := peer.Descriptor{ID: 0xF0000000FFFFFFFF, Addr: 7}
	n.table.Add(far)
	near := make([]peer.Descriptor, 0, cfg.C)
	for i := 1; i <= cfg.C; i++ {
		near = append(near, peer.Descriptor{ID: self.ID + id.ID(i), Addr: peer.Addr(i)})
	}
	n.leaf.Update(near)
	m := n.createMessage(q, false)
	for _, d := range m.Entries {
		if d.ID == far.ID {
			t.Error("ablated protocol leaked a prefix-table entry into the message")
		}
	}
	if len(m.Entries) != cfg.C {
		t.Errorf("ablated message has %d entries, want exactly %d", len(m.Entries), cfg.C)
	}
}

func TestSelectPeerFromCloserHalf(t *testing.T) {
	self := peer.Descriptor{ID: 1000, Addr: 0}
	cfg := testConfig()
	n, err := NewNode(self, cfg, sampling.Fixed(nil))
	if err != nil {
		t.Fatal(err)
	}
	n.leaf.Update([]peer.Descriptor{
		{ID: 1001, Addr: 1}, {ID: 1002, Addr: 2}, {ID: 1003, Addr: 3}, {ID: 1004, Addr: 4},
		{ID: 999, Addr: 5}, {ID: 998, Addr: 6}, {ID: 997, Addr: 7}, {ID: 996, Addr: 8},
	})
	rng := rand.New(rand.NewSource(1))
	closerHalf := map[id.ID]bool{1001: true, 1002: true, 999: true, 998: true}
	for i := 0; i < 200; i++ {
		q := n.selectPeer(rng)
		if !closerHalf[q.ID] {
			t.Fatalf("selectPeer returned %s, outside the closer half", q)
		}
	}
}

func TestSelectPeerFallsBackToSampler(t *testing.T) {
	self := peer.Descriptor{ID: 1000, Addr: 0}
	fallback := peer.Descriptor{ID: 7, Addr: 3}
	n, err := NewNode(self, testConfig(), sampling.Fixed([]peer.Descriptor{fallback}))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	if q := n.selectPeer(rng); q.ID != fallback.ID {
		t.Errorf("fallback peer = %s, want %s", q, fallback)
	}
	empty, err := NewNode(self, testConfig(), sampling.Fixed(nil))
	if err != nil {
		t.Fatal(err)
	}
	if q := empty.selectPeer(rng); !q.Nil() {
		t.Errorf("empty world should yield nil peer, got %s", q)
	}
}

func TestMessageWireSize(t *testing.T) {
	m := Message{Sender: peer.Descriptor{ID: 1}, Entries: make([]peer.Descriptor, 10)}
	if m.WireSize() != 11 {
		t.Errorf("WireSize = %d, want 11", m.WireSize())
	}
}

// TestTwoNodeExchange runs the protocol between two nodes in a tiny simnet
// and checks both ends learn each other.
func TestTwoNodeExchange(t *testing.T) {
	net := simnet.New(simnet.Config{Seed: 1})
	d1 := peer.Descriptor{ID: 100, Addr: net.AddNode()}
	d2 := peer.Descriptor{ID: 200, Addr: net.AddNode()}
	cfg := testConfig()
	n1, err := NewNode(d1, cfg, sampling.Fixed([]peer.Descriptor{d2}))
	if err != nil {
		t.Fatal(err)
	}
	n2, err := NewNode(d2, cfg, sampling.Fixed([]peer.Descriptor{d1}))
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Attach(d1.Addr, ProtoID, n1, cfg.Delta, 0); err != nil {
		t.Fatal(err)
	}
	if err := net.Attach(d2.Addr, ProtoID, n2, cfg.Delta, 1); err != nil {
		t.Fatal(err)
	}
	net.Run(cfg.Delta * 5)
	if !n1.Leaf().Contains(d2.ID) {
		t.Error("n1 never learned n2")
	}
	if !n2.Leaf().Contains(d1.ID) {
		t.Error("n2 never learned n1")
	}
	if n1.Table().Len() == 0 || n2.Table().Len() == 0 {
		t.Error("prefix tables stayed empty")
	}
	if n1.Exchanges() == 0 || n2.Exchanges() == 0 {
		t.Error("exchange counters stayed zero")
	}
}

// TestHandleIgnoresForeignMessages ensures robustness against payloads of
// other protocols arriving on the same ProtoID.
func TestHandleIgnoresForeignMessages(t *testing.T) {
	net := simnet.New(simnet.Config{Seed: 1})
	d1 := peer.Descriptor{ID: 100, Addr: net.AddNode()}
	n1, err := NewNode(d1, testConfig(), sampling.Fixed(nil))
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Attach(d1.Addr, ProtoID, n1, testConfig().Delta, 0); err != nil {
		t.Fatal(err)
	}
	net.Send(peer.Addr(0), d1.Addr, ProtoID, "not a bootstrap message")
	net.Run(100) // must not panic
}

// TestCreateMessageInvariants: property test over random node states — a
// message never contains the destination or duplicates, carries at most
// C + table-capacity entries, and its first min(C, len) entries are the
// closest-to-destination of everything the sender knows.
func TestCreateMessageInvariants(t *testing.T) {
	f := func(seed int64, raw []uint64, qRaw uint64) bool {
		rng := rand.New(rand.NewSource(seed))
		self := peer.Descriptor{ID: id.ID(rng.Uint64()), Addr: 0}
		cfg := DefaultConfig()
		cfg.CR = 0 // keep the union deterministic for the check
		n, err := NewNode(self, cfg, sampling.Fixed(nil))
		if err != nil {
			return false
		}
		pool := make([]peer.Descriptor, 0, len(raw))
		for i, v := range raw {
			pool = append(pool, peer.Descriptor{ID: id.ID(v), Addr: peer.Addr(int32(i))})
		}
		n.leaf.Update(pool)
		n.table.AddAll(pool)
		q := peer.Descriptor{ID: id.ID(qRaw), Addr: 9999}
		m := n.createMessage(q, true)

		if len(m.Entries) > cfg.C+cfg.TableCapacity() {
			return false
		}
		seen := make(map[id.ID]bool, len(m.Entries))
		for _, d := range m.Entries {
			if d.ID == q.ID || seen[d.ID] {
				return false
			}
			seen[d.ID] = true
		}
		// First entries are sorted by ring distance to q.
		limit := len(m.Entries)
		if limit > cfg.C {
			limit = cfg.C
		}
		for i := 1; i < limit; i++ {
			if id.CompareRing(q.ID, m.Entries[i-1].ID, m.Entries[i].ID) > 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestMessageSelfAlwaysIncluded: the sender's own descriptor must be able
// to reach the peer (it is part of the union); with a small world it is
// always in the message.
func TestMessageSelfAlwaysIncluded(t *testing.T) {
	self := peer.Descriptor{ID: 500, Addr: 0}
	n, err := NewNode(self, testConfig(), sampling.Fixed(nil))
	if err != nil {
		t.Fatal(err)
	}
	n.leaf.Update(descs(100, 200, 300))
	m := n.createMessage(peer.Descriptor{ID: 400, Addr: 4}, true)
	found := false
	for _, d := range m.Entries {
		if d.ID == self.ID {
			found = true
		}
	}
	if !found {
		t.Error("own descriptor missing from small-world message")
	}
}

// TestEvictionDetectsDeadPeer: with the failure-detector extension on, a
// node whose neighbour dies stops answering eventually evicts it from both
// structures; without the extension the dead entry lingers forever.
func TestEvictionDetectsDeadPeer(t *testing.T) {
	run := func(evict int) (*Node, id.ID) {
		net := simnet.New(simnet.Config{Seed: 3})
		d1 := peer.Descriptor{ID: 100, Addr: net.AddNode()}
		d2 := peer.Descriptor{ID: 200, Addr: net.AddNode()}
		cfg := testConfig()
		cfg.CR = 0
		cfg.EvictAfterMisses = evict
		n1, err := NewNode(d1, cfg, sampling.Fixed([]peer.Descriptor{d2}))
		if err != nil {
			t.Fatal(err)
		}
		n2, err := NewNode(d2, cfg, sampling.Fixed([]peer.Descriptor{d1}))
		if err != nil {
			t.Fatal(err)
		}
		if err := net.Attach(d1.Addr, ProtoID, n1, cfg.Delta, 0); err != nil {
			t.Fatal(err)
		}
		if err := net.Attach(d2.Addr, ProtoID, n2, cfg.Delta, 1); err != nil {
			t.Fatal(err)
		}
		net.Run(cfg.Delta * 5) // learn each other
		if !n1.Leaf().Contains(d2.ID) {
			t.Fatal("setup failed: n1 never learned n2")
		}
		net.Kill(d2.Addr)
		net.Run(cfg.Delta * 30)
		return n1, d2.ID
	}

	n1, dead := run(2)
	if n1.Leaf().Contains(dead) {
		t.Error("evicting node still holds the dead peer in its leaf set")
	}
	if n1.Table().Len() != 0 {
		t.Error("evicting node still holds the dead peer in its table")
	}
	n1, dead = run(0)
	if !n1.Leaf().Contains(dead) {
		t.Error("paper-faithful node (no detector) should keep the dead entry")
	}
}

func TestEvictionToleratesLoss(t *testing.T) {
	// With 20% drop and EvictAfterMisses=3, two live nodes must not
	// permanently evict each other (relearning through gossip).
	net := simnet.New(simnet.Config{Seed: 5, Drop: 0.2})
	d1 := peer.Descriptor{ID: 100, Addr: net.AddNode()}
	d2 := peer.Descriptor{ID: 200, Addr: net.AddNode()}
	cfg := testConfig()
	cfg.EvictAfterMisses = 3
	n1, err := NewNode(d1, cfg, sampling.Fixed([]peer.Descriptor{d2}))
	if err != nil {
		t.Fatal(err)
	}
	n2, err := NewNode(d2, cfg, sampling.Fixed([]peer.Descriptor{d1}))
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Attach(d1.Addr, ProtoID, n1, cfg.Delta, 0); err != nil {
		t.Fatal(err)
	}
	if err := net.Attach(d2.Addr, ProtoID, n2, cfg.Delta, 1); err != nil {
		t.Fatal(err)
	}
	net.Run(cfg.Delta * 100)
	if !n1.Leaf().Contains(d2.ID) || !n2.Leaf().Contains(d1.ID) {
		t.Error("live peers evicted each other permanently under loss")
	}
}

func TestEvictionConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EvictAfterMisses = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative EvictAfterMisses accepted")
	}
}
