package core

import (
	"testing"
	"testing/quick"

	"repro/internal/id"
	"repro/internal/peer"
)

func TestPrefixTableSlot(t *testing.T) {
	// self = 0xA3F0... ; b = 4.
	self := id.ID(0xA3F0000000000000)
	pt := NewPrefixTable(self, 4, 3)
	tests := []struct {
		name     string
		other    id.ID
		row, col int
		ok       bool
	}{
		{"first digit differs", 0xB000000000000000, 0, 0xB, true},
		{"second digit differs", 0xA500000000000000, 1, 5, true},
		{"third digit differs", 0xA3A0000000000000, 2, 0xA, true},
		{"self", self, 0, 0, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			row, col, ok := pt.Slot(tt.other)
			if ok != tt.ok {
				t.Fatalf("ok = %v, want %v", ok, tt.ok)
			}
			if ok && (row != tt.row || col != tt.col) {
				t.Errorf("slot = (%d, %d), want (%d, %d)", row, col, tt.row, tt.col)
			}
		})
	}
}

func TestPrefixTableAdd(t *testing.T) {
	pt := NewPrefixTable(0, 4, 2)
	d1 := peer.Descriptor{ID: 0xF000000000000000, Addr: 1}
	d2 := peer.Descriptor{ID: 0xF100000000000000, Addr: 2}
	d3 := peer.Descriptor{ID: 0xFF00000000000000, Addr: 3}
	if !pt.Add(d1) {
		t.Fatal("first add failed")
	}
	if pt.Add(d1) {
		t.Error("duplicate accepted")
	}
	if !pt.Add(d2) {
		t.Fatal("second distinct add failed")
	}
	// Slot (0, 0xF) now has k=2 entries; d3 also maps there.
	if pt.Add(d3) {
		t.Error("overfull slot accepted an entry")
	}
	if pt.Len() != 2 {
		t.Errorf("len = %d, want 2", pt.Len())
	}
	got := pt.Get(0, 0xF)
	if len(got) != 2 {
		t.Errorf("slot (0, 15) has %d entries, want 2", len(got))
	}
}

func TestPrefixTableRejectsSelf(t *testing.T) {
	pt := NewPrefixTable(42, 4, 3)
	if pt.Add(peer.Descriptor{ID: 42, Addr: 1}) {
		t.Error("self accepted into own table")
	}
}

func TestPrefixTableGetOutOfRange(t *testing.T) {
	pt := NewPrefixTable(0, 4, 3)
	if pt.Get(-1, 0) != nil || pt.Get(99, 0) != nil || pt.Get(0, -1) != nil || pt.Get(0, 99) != nil {
		t.Error("out-of-range Get should return nil")
	}
}

func TestPrefixTableEachAndEntries(t *testing.T) {
	pt := NewPrefixTable(0, 4, 3)
	pt.AddAll([]peer.Descriptor{
		{ID: 0x1000000000000000, Addr: 1},
		{ID: 0x2000000000000000, Addr: 2},
		{ID: 0x0100000000000000, Addr: 3},
	})
	if got := len(pt.Entries()); got != 3 {
		t.Fatalf("entries = %d, want 3", got)
	}
	count := 0
	pt.Each(func(row, col int, d peer.Descriptor) bool {
		count++
		wantRow, wantCol, _ := pt.Slot(d.ID)
		if row != wantRow || col != wantCol {
			t.Errorf("entry %s iterated at (%d,%d), want (%d,%d)", d, row, col, wantRow, wantCol)
		}
		return true
	})
	if count != 3 {
		t.Errorf("iterated %d, want 3", count)
	}
	// Early stop.
	count = 0
	pt.Each(func(_, _ int, _ peer.Descriptor) bool { count++; return false })
	if count != 1 {
		t.Errorf("early stop iterated %d, want 1", count)
	}
}

func TestPrefixTableRemove(t *testing.T) {
	pt := NewPrefixTable(0, 4, 3)
	d := peer.Descriptor{ID: 0x1000000000000000, Addr: 1}
	pt.Add(d)
	pt.Remove(d.ID)
	if pt.Len() != 0 {
		t.Error("remove failed")
	}
	pt.Remove(d.ID) // idempotent
	pt.Remove(0)    // self: no-op
}

func TestPrefixTableSlotCounts(t *testing.T) {
	pt := NewPrefixTable(0, 4, 3)
	pt.AddAll([]peer.Descriptor{
		{ID: 0x1000000000000000, Addr: 1},
		{ID: 0x1100000000000000, Addr: 2},
		{ID: 0x0200000000000000, Addr: 3},
	})
	counts := pt.SlotCounts()
	if counts[0][1] != 2 {
		t.Errorf("slot (0,1) count = %d, want 2", counts[0][1])
	}
	if counts[1][2] != 1 {
		t.Errorf("slot (1,2) count = %d, want 1", counts[1][2])
	}
}

// TestPrefixTableInvariants: after arbitrary inserts every stored entry is
// in its correct slot, no slot exceeds k, and no duplicates exist.
func TestPrefixTableInvariants(t *testing.T) {
	f := func(selfRaw uint64, raw []uint64) bool {
		self := id.ID(selfRaw)
		pt := NewPrefixTable(self, 4, 3)
		for _, v := range raw {
			pt.Add(peer.Descriptor{ID: id.ID(v), Addr: peer.Addr(int32(v))})
		}
		ok := true
		seen := make(map[id.ID]bool)
		perSlot := make(map[[2]int]int)
		pt.Each(func(row, col int, d peer.Descriptor) bool {
			wantRow, wantCol, valid := pt.Slot(d.ID)
			if !valid || row != wantRow || col != wantCol {
				ok = false
				return false
			}
			if seen[d.ID] {
				ok = false
				return false
			}
			seen[d.ID] = true
			perSlot[[2]int{row, col}]++
			if perSlot[[2]int{row, col}] > 3 {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPrefixTableDifferentBases(t *testing.T) {
	for _, b := range []int{1, 2, 4, 8} {
		self := id.ID(0)
		pt := NewPrefixTable(self, b, 1)
		other := id.ID(1) << 62 // digit value depends on b
		if !pt.Add(peer.Descriptor{ID: other, Addr: 1}) {
			t.Errorf("b=%d: add failed", b)
		}
		row, col, _ := pt.Slot(other)
		if got := pt.Get(row, col); len(got) != 1 {
			t.Errorf("b=%d: entry not found in slot (%d,%d)", b, row, col)
		}
		if pt.NumRows() != 64/b {
			t.Errorf("b=%d: rows = %d, want %d", b, pt.NumRows(), 64/b)
		}
	}
}
