// Package core implements the bootstrapping service itself — the paper's
// primary contribution (Section 4). The protocol simultaneously builds, at
// every participating node and from scratch, the two structures that
// prefix-based routing substrates (Pastry, Kademlia, Tapestry, Bamboo) are
// made of:
//
//   - a leaf set: the c/2 nearest successors and c/2 nearest predecessors
//     of the node in the ring of IDs, evolved T-Man style;
//   - a prefix table: up to k descriptors for every pair (i, j), where i is
//     the longest-common-prefix length (in base-2^b digits) with the node's
//     own ID and j is the first differing digit.
//
// The two structures mutually boost each other: the ring-building gossip
// fills the prefix table as a side effect, while the half-built prefix
// table provides long-range shortcuts that route stragglers to their final
// ring neighbourhood.
package core

import (
	"errors"
	"fmt"

	"repro/internal/id"
	"repro/internal/peer"
)

// Default protocol parameters, matching the paper's simulations (Section 5).
const (
	// DefaultB is the number of bits per digit (digits in base 2^b).
	DefaultB = 4
	// DefaultK is the number of entries kept per (prefix length, digit)
	// pair. k > 1 remains useful even for substrates that need a single
	// entry, because it enables proximity optimisation of routes.
	DefaultK = 3
	// DefaultC is the leaf set size.
	DefaultC = 20
	// DefaultCR is the number of fresh random samples mixed into every
	// outgoing message. These samples are "free": the sampling layer
	// runs anyway.
	DefaultCR = 30
	// DefaultDelta is the communication period in virtual time units.
	DefaultDelta = 10
)

// Config holds the bootstrap protocol parameters (paper Section 4, last
// paragraph).
type Config struct {
	// B is the number of bits per digit; the prefix table has up to
	// 64/B rows of 2^B columns.
	B int
	// K is the maximum number of entries per prefix-table slot.
	K int
	// C is the leaf set size; the leaf set keeps C/2 successors and C/2
	// predecessors.
	C int
	// CR is the number of random samples requested from the sampling
	// service for each outgoing message.
	CR int
	// Delta is the gossip period in virtual time units.
	Delta int64
	// DisablePrefixFeedback turns off the feedback of the prefix table
	// into message construction, degrading the protocol to pure T-Man
	// ring building with passive table filling. This is the ablation
	// for the paper's "the two components mutually boost each other"
	// design claim; it is never enabled in the paper's own experiments.
	DisablePrefixFeedback bool
	// EvictAfterMisses enables a lightweight failure detector — an
	// extension beyond the paper, whose protocol keeps descriptors of
	// departed nodes forever: after a peer fails to answer this many
	// consecutive requests it is evicted from the leaf set and prefix
	// table. Zero disables detection (the paper's behaviour). Under
	// message loss small values cause false positives; the evicted
	// peer is simply relearned through gossip.
	EvictAfterMisses int
	// Arena, when non-nil, supplies the descriptor blocks backing the
	// node's leaf set and prefix-table slots. The engine or harness that
	// builds the network owns the arena (one per network); core only
	// borrows blocks and returns them through Node.Release when the node
	// is permanently retired. Nil falls back to plain heap allocation —
	// correct, just without the pooling that keeps a churned network's
	// heap compact.
	Arena *peer.DescriptorArena
}

// DefaultConfig returns the parameter set used throughout the paper's
// evaluation: b=4, k=3, c=20, cr=30.
func DefaultConfig() Config {
	return Config{B: DefaultB, K: DefaultK, C: DefaultC, CR: DefaultCR, Delta: DefaultDelta}
}

// Validate checks the configuration for internal consistency.
func (c Config) Validate() error {
	switch {
	case c.B < 1 || c.B > 8:
		return fmt.Errorf("config: B = %d out of range [1, 8]", c.B)
	case id.Bits%c.B != 0:
		return fmt.Errorf("config: B = %d must divide %d", c.B, id.Bits)
	case c.K < 1:
		return errors.New("config: K must be at least 1")
	case c.C < 2:
		return errors.New("config: C must be at least 2")
	case c.C%2 != 0:
		return fmt.Errorf("config: C = %d must be even (C/2 successors and predecessors)", c.C)
	case c.CR < 0:
		return errors.New("config: CR must not be negative")
	case c.Delta < 1:
		return errors.New("config: Delta must be positive")
	case c.EvictAfterMisses < 0:
		return errors.New("config: EvictAfterMisses must not be negative")
	}
	return nil
}

// NumRows returns the number of prefix-table rows implied by B.
func (c Config) NumRows() int { return id.NumDigits(c.B) }

// NumCols returns the number of prefix-table columns (digit values) implied
// by B.
func (c Config) NumCols() int { return 1 << uint(c.B) }

// TableCapacity returns the maximum possible number of prefix-table
// entries, which also bounds the prefix part of a message.
func (c Config) TableCapacity() int { return c.NumRows() * c.NumCols() * c.K }
