package core

import (
	"repro/internal/id"
	"repro/internal/peer"
)

// PrefixTable is the routing structure at the heart of prefix-based DHTs:
// for every pair (i, j) — i the longest-common-prefix length with the
// node's own ID in base-2^b digits, j the first differing digit — it holds
// up to k descriptors of nodes whose IDs realise that pair. Rows are
// allocated lazily, because at any practical network size only the first
// O(log N) rows can ever be populated.
//
// Slot storage (the cap-k descriptor arrays) is drawn from the network's
// DescriptorArena when one is configured, also lazily, and returned whole
// through Release when the owning node is permanently retired.
type PrefixTable struct {
	self  id.ID
	b, k  int
	arena *peer.DescriptorArena
	rows  [][][]peer.Descriptor // rows[i][j] is the (i, j) slot, cap k
}

// NewPrefixTable returns an empty heap-backed prefix table for the given
// node.
func NewPrefixTable(self id.ID, b, k int) *PrefixTable {
	return NewPrefixTableIn(nil, self, b, k)
}

// NewPrefixTableIn returns an empty prefix table whose slot storage is
// drawn from the given arena (nil for plain heap allocation).
func NewPrefixTableIn(arena *peer.DescriptorArena, self id.ID, b, k int) *PrefixTable {
	return &PrefixTable{
		self:  self,
		b:     b,
		k:     k,
		arena: arena,
		rows:  make([][][]peer.Descriptor, id.NumDigits(b)),
	}
}

// Slot locates the (row, column) a descriptor ID belongs to relative to the
// table owner. ok is false for the owner's own ID.
func (t *PrefixTable) Slot(nodeID id.ID) (row, col int, ok bool) {
	if nodeID == t.self {
		return 0, 0, false
	}
	row = id.CommonPrefixLen(t.self, nodeID, t.b)
	col = nodeID.Digit(row, t.b)
	return row, col, true
}

// Add inserts a descriptor into its slot unless the slot is full or the
// descriptor is already present. It reports whether the table changed —
// this is the paper's UpdatePrefixTable applied to a single descriptor.
func (t *PrefixTable) Add(d peer.Descriptor) bool {
	row, col, ok := t.Slot(d.ID)
	if !ok {
		return false
	}
	if t.rows[row] == nil {
		t.rows[row] = make([][]peer.Descriptor, 1<<uint(t.b))
	}
	slot := t.rows[row][col]
	if len(slot) >= t.k {
		return false
	}
	for _, cur := range slot {
		if cur.ID == d.ID {
			return false
		}
	}
	if slot == nil {
		// First entry for this slot: draw its full cap-k block, so the
		// append below (and every later one, len < k) never reallocates.
		slot = t.arena.Get(t.k)
	}
	t.rows[row][col] = append(slot, d)
	return true
}

// AddAll inserts every descriptor of ds (the paper's UpdatePrefixTable).
// It reports how many entries were inserted.
func (t *PrefixTable) AddAll(ds []peer.Descriptor) int {
	n := 0
	for _, d := range ds {
		if t.Add(d) {
			n++
		}
	}
	return n
}

// Get returns the slot contents for (row, col). The returned slice is
// internal storage; callers must not modify it.
func (t *PrefixTable) Get(row, col int) []peer.Descriptor {
	if row < 0 || row >= len(t.rows) || t.rows[row] == nil {
		return nil
	}
	if col < 0 || col >= len(t.rows[row]) {
		return nil
	}
	return t.rows[row][col]
}

// Len returns the total number of entries in the table.
func (t *PrefixTable) Len() int {
	n := 0
	for _, row := range t.rows {
		for _, slot := range row {
			n += len(slot)
		}
	}
	return n
}

// Each calls fn for every entry in the table, row by row. fn returning
// false stops the iteration.
func (t *PrefixTable) Each(fn func(row, col int, d peer.Descriptor) bool) {
	for i, row := range t.rows {
		for j, slot := range row {
			for _, d := range slot {
				if !fn(i, j, d) {
					return
				}
			}
		}
	}
}

// Entries returns all table entries as a fresh slice.
func (t *PrefixTable) Entries() []peer.Descriptor {
	return t.AppendEntries(make([]peer.Descriptor, 0, t.Len()))
}

// AppendEntries appends all table entries to dst, row by row — the
// allocation-free variant of Entries for hot paths with a scratch buffer.
func (t *PrefixTable) AppendEntries(dst []peer.Descriptor) []peer.Descriptor {
	for _, row := range t.rows {
		for _, slot := range row {
			dst = append(dst, slot...)
		}
	}
	return dst
}

// SlotCounts returns, for each row, the number of entries per column.
// Used by the ground-truth comparison.
func (t *PrefixTable) SlotCounts() [][]int {
	out := make([][]int, len(t.rows))
	for i, row := range t.rows {
		out[i] = make([]int, 1<<uint(t.b))
		for j, slot := range row {
			out[i][j] = len(slot)
		}
	}
	return out
}

// Remove drops the entry with the given ID, if present (e.g. a peer
// detected as dead), compacting the slot in place so the slot keeps its
// arena block.
func (t *PrefixTable) Remove(nodeID id.ID) {
	row, col, ok := t.Slot(nodeID)
	if !ok || t.rows[row] == nil {
		return
	}
	slot := t.rows[row][col]
	for i := range slot {
		if slot[i].ID == nodeID {
			copy(slot[i:], slot[i+1:])
			t.rows[row][col] = slot[:len(slot)-1]
			return
		}
	}
}

// Release returns every slot block to the arena and drops the rows. The
// table must not be used again by its current owner: the blocks may be
// handed to another node. Safe to call repeatedly.
func (t *PrefixTable) Release() {
	for i, row := range t.rows {
		for j, slot := range row {
			if slot != nil {
				t.arena.Put(slot)
				row[j] = nil
			}
		}
		t.rows[i] = nil
	}
}

// Owner returns the ID of the node this table belongs to.
func (t *PrefixTable) Owner() id.ID { return t.self }

// B returns the digit width parameter.
func (t *PrefixTable) B() int { return t.b }

// K returns the per-slot capacity.
func (t *PrefixTable) K() int { return t.k }

// NumRows returns the number of rows (64/b).
func (t *PrefixTable) NumRows() int { return len(t.rows) }
