package core

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/flat"
	"repro/internal/id"
	"repro/internal/peer"
	"repro/internal/proto"
	"repro/internal/sampling"
)

// ProtoID is the simnet protocol identifier conventionally used for the
// bootstrapping layer (the sampling layer uses 1).
const ProtoID proto.ProtoID = 2

// Message is one half of a bootstrap gossip exchange (paper Figure 2): a
// set of node descriptors optimised for the receiver, carrying the sender's
// own descriptor so the receiver can answer. Request messages ask for an
// answer built the same way.
//
// Ownership: a Message is owned by its receiver. Senders must not retain or
// mutate Entries/Dead after handing the message to an engine; conversely a
// receiver may read but must not rewrite the slices in place, because an
// engine that fans one message out to several receivers (broadcast,
// livenet) shares the backing arrays between deliveries.
//
// Messages travel as *Message and are pooled: the protocol sends pointers
// (boxing a pointer into the proto.Message interface allocates nothing)
// and implements proto.Recyclable, so an engine that retires a delivered
// or dropped message returns it — entries arena included — to the pool for
// the next createMessage. Code that keeps a message beyond Handle (tests,
// ad-hoc tooling) simply never recycles it, which is always safe.
type Message struct {
	Sender  peer.Descriptor
	Entries []peer.Descriptor
	Request bool
	// Dead carries death certificates — IDs the sender has evicted via
	// its failure detector. Only present when the eviction extension is
	// enabled; receivers adopt them as tombstones so departures
	// propagate like rumors instead of fighting gossip reinfection.
	Dead []id.ID
}

// WireSize reports the message size in descriptor units (the entries plus
// the sender descriptor; certificates are half a descriptor each).
func (m Message) WireSize() int { return len(m.Entries) + 1 + (len(m.Dead)+1)/2 }

// messagePool recycles Message values together with their Entries/Dead
// backing arrays — the pooled entries arena that removes the per-send
// slice allocation from the tick hot path.
var messagePool = sync.Pool{New: func() any { return new(Message) }}

var _ proto.Recyclable = (*Message)(nil)

// Recycle implements proto.Recyclable: the message returns to the shared
// pool and its backing arrays become the arena for a future send. Only an
// engine may call it, exactly once, once the message is fully retired.
func (m *Message) Recycle() {
	m.Sender = peer.Descriptor{}
	m.Request = false
	m.Entries = m.Entries[:0]
	m.Dead = m.Dead[:0]
	messagePool.Put(m)
}

// NewMessage returns an empty pooled Message ready to be filled — the
// decode-side counterpart of createMessage's pool draw. A transport that
// deserialises frames appends into the returned message's Entries/Dead
// arenas; once the engine retires the message (proto.Recyclable), the
// arena returns to the pool for the next decode, so steady-state decoding
// allocates nothing.
func NewMessage() *Message { return messagePool.Get().(*Message) }

// maxCertificates caps the death certificates attached per message.
const maxCertificates = 32

// Node is the bootstrap protocol state machine for one participant. It
// implements proto.Protocol; the same callbacks are driven by the
// concurrent livenet runtime.
type Node struct {
	cfg     Config
	self    peer.Descriptor
	sampler sampling.Service
	leaf    *LeafSet
	table   *PrefixTable

	// exchanges counts completed update rounds, for observability.
	exchanges int64

	// Failure-detector state (used only when cfg.EvictAfterMisses > 0):
	// the peer whose answer is outstanding, whether it answered,
	// consecutive unanswered requests per peer, local tombstones for
	// evicted peers (expiry tick), and the tick counter. The per-peer
	// tables are open-addressed (internal/flat) rather than built-in
	// maps: half the memory at 2^18+ nodes, and their iteration order —
	// which reaches the wire via death certificates — is deterministic.
	pending  peer.Descriptor
	answered bool
	misses   flat.Table[int]
	tombs    flat.Table[int64]
	ticks    int64

	// appendSampler is the sampler's allocation-free fast path, resolved
	// once at construction (nil when the sampler doesn't offer one).
	appendSampler sampling.AppendSampler

	// released records that the node's arena-backed storage has been
	// returned; it makes Release idempotent.
	released bool
}

// msgScratch holds the union set and sample buffer reused across
// createMessage calls so steady-state message construction allocates
// nothing: the shipped entries live in a pooled message's arena. The
// scratch is pooled process-wide rather than retained per node — each
// node's callbacks run serialised (simnet is single-threaded; livenet
// drives each host from one dispatch loop), so a message construction
// holds an object exclusively for its duration and a handful of objects
// serve any number of nodes.
type msgScratch struct {
	union   peer.Set
	sample  []peer.Descriptor
	table   []peer.Descriptor
	expired []id.ID
}

var msgScratchPool = sync.Pool{New: func() any { return new(msgScratch) }}

// tombstoneTTL is how many ticks an evicted peer stays blacklisted. A
// falsely evicted live peer (consecutive message losses) is relearned
// through gossip once its tombstone expires.
const tombstoneTTL = 20

// sweepEvery makes every sweepEvery-th request (in expectation) probe a
// uniformly random known entry instead of a close ring neighbour, so dead
// entries outside the gossip working set are eventually detected.
const sweepEvery = 4

// appendCertificates appends the unexpired tombstoned IDs to dst, capped
// for transport, in the tomb table's (deterministic) iteration order.
// Expired tombstones found on the way are collected into scratch and
// deleted after the scan: deletion backshifts table entries, so deleting
// mid-iteration would derail the cursor.
func (n *Node) appendCertificates(dst []id.ID, sc *msgScratch) []id.ID {
	if n.tombs.Len() == 0 {
		return dst
	}
	added := 0
	sc.expired = sc.expired[:0]
	n.tombs.Iter(func(dead id.ID, expiry int64) bool {
		if n.ticks >= expiry {
			sc.expired = append(sc.expired, dead)
			return true
		}
		dst = append(dst, dead)
		added++
		return added < maxCertificates
	})
	for _, dead := range sc.expired {
		n.tombs.Delete(dead)
	}
	return dst
}

// adoptCertificates merges a peer's death certificates: each new one
// tombstones and removes the named entry locally.
func (n *Node) adoptCertificates(sender peer.Descriptor, dead []id.ID) {
	for _, d := range dead {
		if d == n.self.ID || d == sender.ID {
			continue
		}
		if n.tombs.Contains(d) {
			continue
		}
		n.tombs.Put(d, n.ticks+tombstoneTTL)
		n.leaf.Remove(d)
		n.table.Remove(d)
	}
}

var _ proto.Protocol = (*Node)(nil)

// NewNode returns a bootstrap node with empty structures. The sampler is
// the co-located peer sampling service (oracle or NEWSCAST instance).
func NewNode(self peer.Descriptor, cfg Config, sampler sampling.Service) (*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("new node %s: %w", self.ID, err)
	}
	if sampler == nil {
		return nil, fmt.Errorf("new node %s: nil sampler", self.ID)
	}
	n := &Node{
		cfg:     cfg,
		self:    self,
		sampler: sampler,
		leaf:    NewLeafSetIn(cfg.Arena, self.ID, cfg.C),
		table:   NewPrefixTableIn(cfg.Arena, self.ID, cfg.B, cfg.K),
		pending: peer.None,
	}
	n.appendSampler, _ = sampler.(sampling.AppendSampler)
	return n, nil
}

// Release returns the node's arena-backed storage (leaf set block, prefix
// table slots) to the network's arena. The engine or harness calls it when
// the node is permanently retired — simnet churn replaces nodes, so the
// victim releases; livenet kill/respawn revives the same node with its
// state intact, so it must NOT release. Idempotent; the node must not be
// driven again afterwards.
func (n *Node) Release() {
	if n.released {
		return
	}
	n.released = true
	n.leaf.Release()
	n.table.Release()
}

// Init implements the paper's start procedure: the leaf set is initialised
// with random nodes from the sampling service and the prefix table is
// cleared (it is born empty here).
func (n *Node) Init(ctx proto.Context) {
	n.leaf.Update(n.sampler.Sample(n.cfg.C))
}

// Tick is one iteration of the active thread: select a peer from the closer
// half of the leaf set, send it an optimised message, and (on arrival of
// the answer, via Handle) update the leaf set and prefix table.
func (n *Node) Tick(ctx proto.Context) {
	n.ticks++
	n.noteMissedAnswer()
	q := peer.None
	if n.cfg.EvictAfterMisses > 0 && ctx.Rand().Intn(sweepEvery) == 0 {
		q = n.sweepTarget(ctx.Rand())
	}
	if q.Nil() {
		q = n.selectPeer(ctx.Rand())
	}
	if q.Nil() {
		return
	}
	if n.cfg.EvictAfterMisses > 0 {
		n.pending, n.answered = q, false
	}
	ctx.Send(q.Addr, n.createMessage(q, true))
}

// sweepTarget picks a uniformly random entry from the node's structures —
// the probe that lets the failure detector reach entries the ring gossip
// never contacts (far leaf entries and prefix-table slots).
func (n *Node) sweepTarget(rng *rand.Rand) peer.Descriptor {
	all := n.leaf.Slice()
	all = append(all, n.table.Entries()...)
	if len(all) == 0 {
		return peer.None
	}
	return all[rng.Intn(len(all))]
}

// noteMissedAnswer charges the previously contacted peer when its answer
// never arrived, evicting it after EvictAfterMisses consecutive misses.
func (n *Node) noteMissedAnswer() {
	if n.cfg.EvictAfterMisses == 0 || n.pending.Nil() || n.answered {
		return
	}
	m, _ := n.misses.Get(n.pending.ID)
	m++
	if m >= n.cfg.EvictAfterMisses {
		n.leaf.Remove(n.pending.ID)
		n.table.Remove(n.pending.ID)
		n.misses.Delete(n.pending.ID)
		// Blacklist so gossip cannot immediately reintroduce the
		// entry; the tombstone expires in case this was a false
		// positive caused by message loss.
		n.tombs.Put(n.pending.ID, n.ticks+tombstoneTTL)
	} else {
		n.misses.Put(n.pending.ID, m)
	}
	n.pending = peer.None
}

// filterTombstoned drops descriptors currently blacklisted, expiring
// tombstones lazily. It copies on first removal rather than compacting the
// incoming slice in place: even though receivers own their messages (see
// Message), an engine that broadcasts one message value to several
// receivers shares the Entries backing array between them, and an in-place
// rewrite here would corrupt the siblings' view mid-filter.
func (n *Node) filterTombstoned(ds []peer.Descriptor) []peer.Descriptor {
	if n.tombs.Len() == 0 {
		return ds
	}
	out, forked := ds, false
	for i, d := range ds {
		expiry, dead := n.tombs.Get(d.ID)
		if dead && n.ticks >= expiry {
			n.tombs.Delete(d.ID)
			dead = false
		}
		switch {
		case dead && !forked: // first removal: fork, keep the prefix
			out = make([]peer.Descriptor, i, len(ds)-1)
			copy(out, ds[:i])
			forked = true
		case !dead && forked:
			out = append(out, d)
		}
	}
	return out
}

// Handle implements both the passive thread (answer requests with an
// equally optimised message) and the tail of the active thread (merge the
// answer).
func (n *Node) Handle(ctx proto.Context, from peer.Addr, msg proto.Message) {
	m, ok := msg.(*Message)
	if !ok {
		return
	}
	if m.Request {
		ctx.Send(from, n.createMessage(m.Sender, false))
	}
	entries := m.Entries
	if n.cfg.EvictAfterMisses > 0 {
		// Any message from a peer proves it alive.
		n.misses.Delete(m.Sender.ID)
		n.tombs.Delete(m.Sender.ID)
		if m.Sender.ID == n.pending.ID {
			n.answered = true
		}
		n.adoptCertificates(m.Sender, m.Dead)
		entries = n.filterTombstoned(entries)
	}
	n.updateLeafSet(entries)
	n.updatePrefixTable(entries)
	n.exchanges++
}

// updateLeafSet is the paper's UpdateLeafSet: merge and keep the c/2
// closest successors and predecessors.
func (n *Node) updateLeafSet(ds []peer.Descriptor) {
	n.leaf.Update(ds)
}

// updatePrefixTable is the paper's UpdatePrefixTable: fill any missing
// table entries from the received set.
func (n *Node) updatePrefixTable(ds []peer.Descriptor) {
	n.table.AddAll(ds)
}

// selectPeer picks a random peer from the closer half of the leaf set.
//
// The paper sorts the whole leaf set by ring distance and samples the
// first half. When one ring direction is locally much denser than the
// other, that half can consist entirely of one direction, so the node
// never gossips toward its sparse side; the node then cannot learn its
// farthest neighbour there except through the random-sample lottery, which
// stalls full convergence for tens of cycles (incompatible with the clean
// convergence the paper reports). We therefore take the closer half of
// each direction — in the typical balanced case the same set of peers —
// which restores symmetric information flow. Before the leaf set has any
// entries the node falls back to a random sample, which also re-bootstraps
// a node that lost all neighbours.
func (n *Node) selectPeer(rng *rand.Rand) peer.Descriptor {
	succ, pred := n.leaf.Successors(), n.leaf.Predecessors()
	if len(succ) == 0 && len(pred) == 0 {
		s := n.sampler.Sample(1)
		if len(s) == 0 {
			return peer.None
		}
		return s[0]
	}
	nSucc := (len(succ) + 1) / 2
	nPred := (len(pred) + 1) / 2
	i := rng.Intn(nSucc + nPred)
	if i < nSucc {
		return succ[i]
	}
	return pred[i-nSucc]
}

// createMessage is the paper's CreateMessage: from everything locally known
// — leaf set, cr fresh random samples, the prefix table, and the node's own
// descriptor — keep the c entries closest to the destination q, then append
// the remaining descriptors as the prefix part, bounded by the size of a
// full prefix table.
//
// Interpretation note: the paper describes the prefix part as "all node
// descriptors that are potentially useful for the peer for its prefix
// table (i.e., have a common prefix with the peer ID)". Row 0 of a prefix
// table is populated by IDs whose common prefix with the owner is *empty*,
// so every descriptor is potentially useful; filtering for a non-empty
// common prefix would permanently starve row 0 once the ring converges and
// messages carry only ring-near entries, contradicting the paper's perfect
// convergence. We therefore ship all remaining union entries, which also
// matches the paper's stated bound (the size of the full prefix table,
// "usually smaller in practice" — the union is far smaller than 768).
func (n *Node) createMessage(q peer.Descriptor, request bool) *Message {
	sc := msgScratchPool.Get().(*msgScratch)
	union := &sc.union
	union.Reset()
	union.Add(n.self)
	union.AddAll(n.leaf.Successors())
	union.AddAll(n.leaf.Predecessors())
	if n.cfg.CR > 0 {
		if n.appendSampler != nil {
			sc.sample = n.appendSampler.AppendSample(sc.sample[:0], n.cfg.CR)
			union.AddAll(sc.sample)
		} else {
			union.AddAll(n.sampler.Sample(n.cfg.CR))
		}
	}
	if !n.cfg.DisablePrefixFeedback {
		sc.table = n.table.AppendEntries(sc.table[:0])
		union.AddAll(sc.table)
	}
	union.Remove(q.ID) // never ship the destination its own descriptor

	nBase := min(n.cfg.C, union.Len())
	nExtra := 0
	if !n.cfg.DisablePrefixFeedback {
		nExtra = min(union.Len()-nBase, n.cfg.TableCapacity())
	}
	// Partial selection, run directly on the union's backing list: only
	// the nBase+nExtra entries actually shipped are selected and sorted,
	// O(u log(c+extra)) instead of fully sorting the whole union per
	// message. Selection permutes the list in place (the set's index is
	// stale afterwards, which Reset clears on next use), but its result
	// is order-insensitive: ring distance with ID tie-break is a total
	// order and the union holds distinct IDs, so the selected prefix is a
	// pure function of the union's contents.
	closest := peer.SelectNClosest(union.Slice(), q.ID, nBase+nExtra)

	// The shipped entries are copied out of scratch into a pooled
	// message's arena: messages are owned by their receiver (see Message),
	// so scratch must never escape — and the engine recycles the arena
	// once the receiver is done with it.
	m := messagePool.Get().(*Message)
	m.Sender = n.self
	m.Request = request
	m.Entries = append(m.Entries[:0], closest...)
	m.Dead = m.Dead[:0]
	if n.cfg.EvictAfterMisses > 0 {
		m.Dead = n.appendCertificates(m.Dead, sc)
	}
	msgScratchPool.Put(sc)
	return m
}

// Self returns the node's own descriptor.
func (n *Node) Self() peer.Descriptor { return n.self }

// Leaf returns the node's leaf set.
func (n *Node) Leaf() *LeafSet { return n.leaf }

// Table returns the node's prefix table.
func (n *Node) Table() *PrefixTable { return n.table }

// Exchanges returns the number of completed update rounds.
func (n *Node) Exchanges() int64 { return n.exchanges }

// Config returns the node's configuration.
func (n *Node) Config() Config { return n.cfg }
