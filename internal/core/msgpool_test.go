package core

import (
	"reflect"
	"testing"

	"repro/internal/peer"
	"repro/internal/sampling"
)

// msgSnapshot is a deep copy of a message's logical content, with nil and
// empty slices identified (pooling legitimately turns a nil Dead into an
// empty one).
type msgSnapshot struct {
	sender  peer.Descriptor
	request bool
	entries []peer.Descriptor
	dead    int
}

func snapshot(m *Message) msgSnapshot {
	return msgSnapshot{
		sender:  m.Sender,
		request: m.Request,
		entries: append([]peer.Descriptor{}, m.Entries...),
		dead:    len(m.Dead),
	}
}

// TestMessagePoolEquivalence drives two identically seeded nodes through
// the same exchange sequence; one node's outgoing messages are recycled
// back into the pool immediately (the engine's steady state), the other's
// never are. Every message pair must be content-identical: pooling is a
// storage optimisation and may not leak a previous message's bytes into
// the next, nor let scratch state alias a recycled arena.
func TestMessagePoolEquivalence(t *testing.T) {
	world := make([]peer.Descriptor, 96)
	for i := range world {
		world[i] = peer.Descriptor{ID: testID(i), Addr: peer.Addr(int32(i))}
	}
	build := func() *Node {
		cfg := testConfig()
		cfg.EvictAfterMisses = 2 // exercise the Dead arena too
		n, err := NewNode(world[0], cfg, sampling.Fixed(world[2:12]))
		if err != nil {
			t.Fatal(err)
		}
		n.Leaf().Update(world[12:40])
		n.Table().AddAll(world[40:])
		return n
	}
	recycled, pristine := build(), build()

	feed := func(n *Node, from peer.Descriptor, entries []peer.Descriptor) {
		m := &Message{Sender: from, Entries: append([]peer.Descriptor{}, entries...)}
		n.Handle(nil, from.Addr, m) // Request is false: no reply, ctx unused
	}
	for i := 0; i < 64; i++ {
		dest := world[1+(i%40)]
		// Interleave inbound gossip so the nodes' structures keep
		// changing between constructions.
		feed(recycled, world[50+(i%30)], world[i%64:i%64+8])
		feed(pristine, world[50+(i%30)], world[i%64:i%64+8])

		mr := recycled.createMessage(dest, i%2 == 0)
		mp := pristine.createMessage(dest, i%2 == 0)
		sr, sp := snapshot(mr), snapshot(mp)
		if !reflect.DeepEqual(sr, sp) {
			t.Fatalf("round %d: recycling changed message content:\n got %+v\nwant %+v", i, sr, sp)
		}
		mr.Recycle() // back to the pool; the next round reuses the arena
	}
}
