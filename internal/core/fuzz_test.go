package core

import (
	"encoding/binary"
	"testing"

	"repro/internal/id"
	"repro/internal/peer"
)

// decodeIDs turns fuzz bytes into a list of IDs (8 bytes each).
func decodeIDs(data []byte) []id.ID {
	out := make([]id.ID, 0, len(data)/8)
	for len(data) >= 8 {
		out = append(out, id.ID(binary.LittleEndian.Uint64(data)))
		data = data[8:]
	}
	return out
}

// FuzzLeafSetUpdate feeds arbitrary ID batches into a leaf set and checks
// the structural invariants can never be violated.
func FuzzLeafSetUpdate(f *testing.F) {
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0}, uint64(100))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}, uint64(0))
	f.Add([]byte{}, uint64(42))
	f.Fuzz(func(t *testing.T, data []byte, selfRaw uint64) {
		self := id.ID(selfRaw)
		l := NewLeafSet(self, 8)
		ids := decodeIDs(data)
		// Feed in two batches to exercise the incremental path.
		mid := len(ids) / 2
		for _, batch := range [][]id.ID{ids[:mid], ids[mid:]} {
			ds := make([]peer.Descriptor, len(batch))
			for i, v := range batch {
				ds[i] = peer.Descriptor{ID: v, Addr: peer.Addr(int32(i))}
			}
			l.Update(ds)
		}
		if l.Len() > 8 {
			t.Fatalf("capacity violated: %d", l.Len())
		}
		if l.Contains(self) {
			t.Fatal("self in leaf set")
		}
		seen := make(map[id.ID]bool)
		for _, d := range l.Slice() {
			if seen[d.ID] {
				t.Fatalf("duplicate %s", d)
			}
			seen[d.ID] = true
		}
		for _, d := range l.Successors() {
			if !id.IsSuccessor(self, d.ID) {
				t.Fatalf("%s misclassified as successor of %s", d.ID, self)
			}
		}
		for _, d := range l.Predecessors() {
			if id.IsSuccessor(self, d.ID) {
				t.Fatalf("%s misclassified as predecessor of %s", d.ID, self)
			}
		}
	})
}

// FuzzPrefixTableAdd feeds arbitrary descriptors into a prefix table and
// checks slot placement and capacity invariants.
func FuzzPrefixTableAdd(f *testing.F) {
	f.Add([]byte{0x10, 0, 0, 0, 0, 0, 0, 0}, uint64(0), uint8(4), uint8(2))
	f.Add([]byte{}, uint64(7), uint8(1), uint8(1))
	f.Fuzz(func(t *testing.T, data []byte, selfRaw uint64, bRaw, kRaw uint8) {
		b := int(bRaw)%4 + 1 // 1..4, all divide 64
		if b == 3 {
			b = 4
		}
		k := int(kRaw)%3 + 1
		self := id.ID(selfRaw)
		pt := NewPrefixTable(self, b, k)
		for i, v := range decodeIDs(data) {
			pt.Add(peer.Descriptor{ID: v, Addr: peer.Addr(int32(i))})
		}
		count := 0
		pt.Each(func(row, col int, d peer.Descriptor) bool {
			count++
			wr, wc, ok := pt.Slot(d.ID)
			if !ok || wr != row || wc != col {
				t.Fatalf("entry %s in slot (%d,%d), want (%d,%d, ok=%v)", d, row, col, wr, wc, ok)
			}
			return true
		})
		if count != pt.Len() {
			t.Fatalf("Each visited %d, Len says %d", count, pt.Len())
		}
		for _, row := range pt.SlotCounts() {
			for _, c := range row {
				if c > k {
					t.Fatalf("slot over capacity: %d > %d", c, k)
				}
			}
		}
	})
}
