package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/id"
	"repro/internal/peer"
	"repro/internal/sampling"
	"repro/internal/simnet"
	"repro/internal/truth"
)

// Example bootstraps a 64-node network from scratch over a simulated
// network where only the (oracle) sampling service is available, then
// verifies every node holds a perfect leaf set and prefix table.
func Example() {
	const n = 64
	net := simnet.New(simnet.Config{Seed: 7})
	ids := id.Unique(n, 7)
	descs := make([]peer.Descriptor, n)
	for i := range descs {
		descs[i] = peer.Descriptor{ID: ids[i], Addr: net.AddNode()}
	}
	oracle := sampling.NewOracle(descs, 7)

	cfg := core.DefaultConfig()
	nodes := make([]*core.Node, n)
	for i, d := range descs {
		nd, err := core.NewNode(d, cfg, oracle)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		nodes[i] = nd
		// Start each node at a random offset within one Δ, as the
		// paper prescribes for the loosely synchronised start.
		if err := net.Attach(d.Addr, core.ProtoID, nd, cfg.Delta, int64(i)%cfg.Delta); err != nil {
			fmt.Println("error:", err)
			return
		}
	}
	net.Run(cfg.Delta * 15)

	tr, err := truth.New(ids, cfg.B, cfg.K, cfg.C)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	perfect := 0
	for i, nd := range nodes {
		lm, _ := tr.LeafSetMissingFor(descs[i].ID, nd.Leaf())
		pm, _ := tr.PrefixMissingFor(descs[i].ID, nd.Table())
		if lm == 0 && pm == 0 {
			perfect++
		}
	}
	fmt.Printf("perfect nodes after 15 cycles: %d/%d\n", perfect, n)
	// Output: perfect nodes after 15 cycles: 64/64
}
