package core

import (
	"slices"
	"sync"

	"repro/internal/id"
	"repro/internal/peer"
)

// LeafSet holds a node's nearest neighbours in the ring of IDs: up to c/2
// closest successors and c/2 closest predecessors, the selection rule of
// the paper's UpdateLeafSet. When one direction cannot supply c/2 nodes,
// the set is topped up with the closest nodes from the other direction, so
// the set holds min(c, |known peers|) entries.
//
// Storage: both directions live in one capacity-c block — drawn from the
// network's DescriptorArena when one is configured — with succ and pred as
// views into it, so a leaf set costs a single allocation that churn can
// recycle whole (see peer.DescriptorArena for the ownership rules).
type LeafSet struct {
	self  id.ID
	c     int
	arena *peer.DescriptorArena
	block []peer.Descriptor // cap-c backing; succ and pred alias into it
	succ  []peer.Descriptor // ascending clockwise distance from self
	pred  []peer.Descriptor // ascending counter-clockwise distance from self
}

// NewLeafSet returns an empty heap-backed leaf set of capacity c for the
// given node.
func NewLeafSet(self id.ID, c int) *LeafSet {
	return NewLeafSetIn(nil, self, c)
}

// NewLeafSetIn returns an empty leaf set whose storage is drawn from the
// given arena (nil for plain heap allocation).
func NewLeafSetIn(arena *peer.DescriptorArena, self id.ID, c int) *LeafSet {
	return &LeafSet{self: self, c: c, arena: arena}
}

// leafScratch holds the merge pool and rebuild buffers reused across
// Update calls. The pool is shared by every leaf set in the process (all
// updates run serialised per node; concurrent nodes draw distinct objects
// from the pool), which turns what used to be per-call — and would
// otherwise be per-node retained — scratch into a handful of objects.
type leafScratch struct {
	pool       peer.Set
	old        []peer.Descriptor
	succ, pred []peer.Descriptor
}

var leafScratchPool = sync.Pool{New: func() any { return new(leafScratch) }}

// Update merges the given descriptors into the leaf set and re-applies the
// selection rule. The node's own descriptor and duplicates are ignored.
// It reports whether the kept set changed.
func (l *LeafSet) Update(ds []peer.Descriptor) bool {
	sc := leafScratchPool.Get().(*leafScratch)
	defer leafScratchPool.Put(sc)
	pool := &sc.pool
	pool.Reset()
	for _, d := range l.succ {
		pool.Add(d)
	}
	for _, d := range l.pred {
		pool.Add(d)
	}
	added := false
	for _, d := range ds {
		if d.ID == l.self {
			continue
		}
		if pool.Add(d) {
			added = true
		}
	}
	if !added {
		return false
	}
	// Snapshot the previous contents (distinct IDs by construction) for
	// the change check; rebuild overwrites the backing block in place.
	sc.old = append(sc.old[:0], l.succ...)
	sc.old = append(sc.old, l.pred...)
	l.rebuild(pool.Slice(), sc)
	if l.Len() != len(sc.old) {
		return true
	}
	for _, d := range l.succ {
		if !containsID(sc.old, d.ID) {
			return true
		}
	}
	for _, d := range l.pred {
		if !containsID(sc.old, d.ID) {
			return true
		}
	}
	return false
}

func containsID(ds []peer.Descriptor, nodeID id.ID) bool {
	for _, d := range ds {
		if d.ID == nodeID {
			return true
		}
	}
	return false
}

// rebuild applies the paper's selection rule to an arbitrary candidate
// pool (entries with distinct IDs) and writes the outcome into the backing
// block. The pool holds copies, so overwriting the block mid-rebuild
// cannot corrupt the candidates.
func (l *LeafSet) rebuild(pool []peer.Descriptor, sc *leafScratch) {
	succ, pred := sc.succ[:0], sc.pred[:0]
	for _, d := range pool {
		if d.ID == l.self {
			continue
		}
		if id.IsSuccessor(l.self, d.ID) {
			succ = append(succ, d)
		} else {
			pred = append(pred, d)
		}
	}
	// Directed ring distances from a fixed origin are injective over
	// distinct IDs, so neither comparator can tie: the sort order is a
	// total order, independent of the algorithm.
	slices.SortFunc(succ, func(a, b peer.Descriptor) int {
		da, db := id.Succ(l.self, a.ID), id.Succ(l.self, b.ID)
		switch {
		case da < db:
			return -1
		case da > db:
			return 1
		}
		return 0
	})
	slices.SortFunc(pred, func(a, b peer.Descriptor) int {
		da, db := id.Pred(l.self, a.ID), id.Pred(l.self, b.ID)
		switch {
		case da < db:
			return -1
		case da > db:
			return 1
		}
		return 0
	})

	half := l.c / 2
	nSucc := min(len(succ), half)
	nPred := min(len(pred), half)
	// Top up from the other direction when one side is short.
	if spare := l.c - nSucc - nPred; spare > 0 {
		nSucc = min(len(succ), nSucc+spare)
	}
	if spare := l.c - nSucc - nPred; spare > 0 {
		nPred = min(len(pred), nPred+spare)
	}
	// nSucc+nPred ≤ c by the spare arithmetic, so both directions fit the
	// single capacity-c block.
	if l.block == nil {
		l.block = l.arena.Get(l.c)
	}
	blk := append(l.block[:0], succ[:nSucc]...)
	blk = append(blk, pred[:nPred]...)
	l.succ = blk[0:nSucc:nSucc]
	l.pred = blk[nSucc : nSucc+nPred : nSucc+nPred]
	sc.succ, sc.pred = succ, pred
}

// Release returns the backing block to the arena. The leaf set must not be
// used again by its current owner: the block may be handed to another
// node. Safe to call on a never-filled or already-released set.
func (l *LeafSet) Release() {
	if l.block != nil {
		l.arena.Put(l.block)
	}
	l.block, l.succ, l.pred = nil, nil, nil
}

// Len returns the number of descriptors currently held.
func (l *LeafSet) Len() int { return len(l.succ) + len(l.pred) }

// Capacity returns the configured leaf set size c.
func (l *LeafSet) Capacity() int { return l.c }

// Successors returns the kept successors, closest first. The slice is the
// internal storage; callers must not modify it.
func (l *LeafSet) Successors() []peer.Descriptor { return l.succ }

// Predecessors returns the kept predecessors, closest first. The slice is
// the internal storage; callers must not modify it.
func (l *LeafSet) Predecessors() []peer.Descriptor { return l.pred }

// Slice returns all leaf set descriptors (successors then predecessors) as
// a fresh slice.
func (l *LeafSet) Slice() []peer.Descriptor {
	out := make([]peer.Descriptor, 0, l.Len())
	out = append(out, l.succ...)
	out = append(out, l.pred...)
	return out
}

// Contains reports whether a descriptor with the given ID is in the set.
func (l *LeafSet) Contains(nodeID id.ID) bool {
	return containsID(l.succ, nodeID) || containsID(l.pred, nodeID)
}

// SortedByRingDistance returns the leaf set ordered by (undirected) ring
// distance from the node, closest first — the order used by SelectPeer.
// Successor/predecessor lists are already sorted, so this is a merge.
func (l *LeafSet) SortedByRingDistance() []peer.Descriptor {
	out := make([]peer.Descriptor, 0, l.Len())
	i, j := 0, 0
	for i < len(l.succ) && j < len(l.pred) {
		ds := id.Succ(l.self, l.succ[i].ID)
		dp := id.Pred(l.self, l.pred[j].ID)
		if ds <= dp {
			out = append(out, l.succ[i])
			i++
		} else {
			out = append(out, l.pred[j])
			j++
		}
	}
	out = append(out, l.succ[i:]...)
	out = append(out, l.pred[j:]...)
	return out
}

// Remove drops a descriptor (e.g. one detected as dead) from the set,
// compacting the affected direction in place.
func (l *LeafSet) Remove(nodeID id.ID) {
	l.succ = removeInPlace(l.succ, nodeID)
	l.pred = removeInPlace(l.pred, nodeID)
}

// removeInPlace deletes the entry with the given ID preserving order.
// Each direction holds distinct IDs, so one hit suffices.
func removeInPlace(ds []peer.Descriptor, nodeID id.ID) []peer.Descriptor {
	for i := range ds {
		if ds[i].ID == nodeID {
			copy(ds[i:], ds[i+1:])
			return ds[:len(ds)-1]
		}
	}
	return ds
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
