package core

import (
	"sort"

	"repro/internal/id"
	"repro/internal/peer"
)

// LeafSet holds a node's nearest neighbours in the ring of IDs: up to c/2
// closest successors and c/2 closest predecessors, the selection rule of
// the paper's UpdateLeafSet. When one direction cannot supply c/2 nodes,
// the set is topped up with the closest nodes from the other direction, so
// the set holds min(c, |known peers|) entries.
type LeafSet struct {
	self id.ID
	c    int
	succ []peer.Descriptor // ascending clockwise distance from self
	pred []peer.Descriptor // ascending counter-clockwise distance from self
}

// NewLeafSet returns an empty leaf set of capacity c for the given node.
func NewLeafSet(self id.ID, c int) *LeafSet {
	return &LeafSet{self: self, c: c}
}

// Update merges the given descriptors into the leaf set and re-applies the
// selection rule. The node's own descriptor and duplicates are ignored.
// It reports whether the kept set changed.
func (l *LeafSet) Update(ds []peer.Descriptor) bool {
	pool := peer.NewSet(len(l.succ) + len(l.pred) + len(ds))
	for _, d := range l.succ {
		pool.Add(d)
	}
	for _, d := range l.pred {
		pool.Add(d)
	}
	added := false
	for _, d := range ds {
		if d.ID == l.self {
			continue
		}
		if pool.Add(d) {
			added = true
		}
	}
	if !added {
		return false
	}
	before := make(map[id.ID]struct{}, l.Len())
	for _, d := range l.succ {
		before[d.ID] = struct{}{}
	}
	for _, d := range l.pred {
		before[d.ID] = struct{}{}
	}
	l.rebuild(pool.Slice())
	if l.Len() != len(before) {
		return true
	}
	for _, d := range l.succ {
		if _, ok := before[d.ID]; !ok {
			return true
		}
	}
	for _, d := range l.pred {
		if _, ok := before[d.ID]; !ok {
			return true
		}
	}
	return false
}

// rebuild applies the paper's selection rule to an arbitrary candidate pool.
func (l *LeafSet) rebuild(pool []peer.Descriptor) {
	succ := make([]peer.Descriptor, 0, len(pool))
	pred := make([]peer.Descriptor, 0, len(pool))
	for _, d := range pool {
		if d.ID == l.self {
			continue
		}
		if id.IsSuccessor(l.self, d.ID) {
			succ = append(succ, d)
		} else {
			pred = append(pred, d)
		}
	}
	sort.Slice(succ, func(i, j int) bool {
		return id.Succ(l.self, succ[i].ID) < id.Succ(l.self, succ[j].ID)
	})
	sort.Slice(pred, func(i, j int) bool {
		return id.Pred(l.self, pred[i].ID) < id.Pred(l.self, pred[j].ID)
	})

	half := l.c / 2
	nSucc := min(len(succ), half)
	nPred := min(len(pred), half)
	// Top up from the other direction when one side is short.
	if spare := l.c - nSucc - nPred; spare > 0 {
		nSucc = min(len(succ), nSucc+spare)
	}
	if spare := l.c - nSucc - nPred; spare > 0 {
		nPred = min(len(pred), nPred+spare)
	}
	l.succ = append(l.succ[:0], succ[:nSucc]...)
	l.pred = append(l.pred[:0], pred[:nPred]...)
}

// Len returns the number of descriptors currently held.
func (l *LeafSet) Len() int { return len(l.succ) + len(l.pred) }

// Capacity returns the configured leaf set size c.
func (l *LeafSet) Capacity() int { return l.c }

// Successors returns the kept successors, closest first. The slice is the
// internal storage; callers must not modify it.
func (l *LeafSet) Successors() []peer.Descriptor { return l.succ }

// Predecessors returns the kept predecessors, closest first. The slice is
// the internal storage; callers must not modify it.
func (l *LeafSet) Predecessors() []peer.Descriptor { return l.pred }

// Slice returns all leaf set descriptors (successors then predecessors) as
// a fresh slice.
func (l *LeafSet) Slice() []peer.Descriptor {
	out := make([]peer.Descriptor, 0, l.Len())
	out = append(out, l.succ...)
	out = append(out, l.pred...)
	return out
}

// Contains reports whether a descriptor with the given ID is in the set.
func (l *LeafSet) Contains(nodeID id.ID) bool {
	for _, d := range l.succ {
		if d.ID == nodeID {
			return true
		}
	}
	for _, d := range l.pred {
		if d.ID == nodeID {
			return true
		}
	}
	return false
}

// SortedByRingDistance returns the leaf set ordered by (undirected) ring
// distance from the node, closest first — the order used by SelectPeer.
// Successor/predecessor lists are already sorted, so this is a merge.
func (l *LeafSet) SortedByRingDistance() []peer.Descriptor {
	out := make([]peer.Descriptor, 0, l.Len())
	i, j := 0, 0
	for i < len(l.succ) && j < len(l.pred) {
		ds := id.Succ(l.self, l.succ[i].ID)
		dp := id.Pred(l.self, l.pred[j].ID)
		if ds <= dp {
			out = append(out, l.succ[i])
			i++
		} else {
			out = append(out, l.pred[j])
			j++
		}
	}
	out = append(out, l.succ[i:]...)
	out = append(out, l.pred[j:]...)
	return out
}

// Remove drops a descriptor (e.g. one detected as dead) from the set.
func (l *LeafSet) Remove(nodeID id.ID) {
	l.succ = peer.Without(l.succ, nodeID)
	l.pred = peer.Without(l.pred, nodeID)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
