package core

import (
	"sync"
	"testing"

	"repro/internal/peer"
	"repro/internal/sampling"
)

// populatedNode builds an arena-backed node and fills both structures so it
// holds a leaf block plus at least one prefix slot block.
func populatedNode(t *testing.T, arena *peer.DescriptorArena, selfIdx int, world []peer.Descriptor) *Node {
	t.Helper()
	cfg := testConfig()
	cfg.Arena = arena
	n, err := NewNode(world[selfIdx], cfg, sampling.Fixed(world))
	if err != nil {
		t.Fatal(err)
	}
	n.Leaf().Update(world)
	n.Table().AddAll(world)
	return n
}

func testWorld(size int) []peer.Descriptor {
	world := make([]peer.Descriptor, size)
	for i := range world {
		world[i] = peer.Descriptor{ID: testID(i), Addr: peer.Addr(i)}
	}
	return world
}

// TestNodeReleaseReturnsAllBlocks checks the exactly-once contract at node
// granularity: Release returns every block the node's structures drew, and
// a second Release returns nothing (no double-free, Outstanding stays 0).
func TestNodeReleaseReturnsAllBlocks(t *testing.T) {
	arena := peer.NewDescriptorArena()
	world := testWorld(64)
	n := populatedNode(t, arena, 0, world)
	if got := arena.Outstanding(); got < 2 {
		t.Fatalf("populated node holds %d blocks, want at least leaf + one slot", got)
	}
	n.Release()
	if got := arena.Outstanding(); got != 0 {
		t.Fatalf("Outstanding after Release = %d, want 0", got)
	}
	n.Release() // idempotent: must not return blocks twice
	if got := arena.Outstanding(); got != 0 {
		t.Fatalf("Outstanding after double Release = %d, want 0", got)
	}
}

// TestReleasedBlockHandoffZeroed checks the cross-incarnation aliasing
// contract: the block a released leaf set hands back is reissued to the
// next owner of the same capacity with every slot zeroed, so no stale
// descriptor of the dead node can surface in its replacement.
func TestReleasedBlockHandoffZeroed(t *testing.T) {
	arena := peer.NewDescriptorArena()
	world := testWorld(32)
	const c = 20
	ls := NewLeafSetIn(arena, world[0].ID, c)
	ls.Update(world[1:])
	if ls.Len() == 0 {
		t.Fatal("leaf set empty after update")
	}
	blk := ls.block
	first := &blk[:1][0]
	ls.Release()
	if ls.block != nil || ls.Len() != 0 {
		t.Fatal("Release left views behind")
	}

	got := arena.Get(c)
	if &got[:1][0] != first {
		t.Fatal("released leaf block was not reissued for capacity", c)
	}
	for i, d := range got[:cap(got)] {
		if d != (peer.Descriptor{}) {
			t.Fatalf("reissued block slot %d holds stale descriptor %+v", i, d)
		}
	}
}

// TestChurnReleaseExactlyOnce mimics the simnet churn loop single-threaded:
// waves of nodes are spawned from one arena, populated, and the victims
// released; the arena's outstanding count must always equal the number of
// blocks held by live nodes, and draining the population must return it to
// zero.
func TestChurnReleaseExactlyOnce(t *testing.T) {
	arena := peer.NewDescriptorArena()
	world := testWorld(128)
	live := make([]*Node, 0, 16)
	for i := 0; i < 16; i++ {
		live = append(live, populatedNode(t, arena, i, world))
	}
	for wave := 0; wave < 10; wave++ {
		// Kill the first half, spawn replacements.
		for _, n := range live[:8] {
			n.Release()
		}
		live = append(live[:0], live[8:]...)
		for i := 0; i < 8; i++ {
			live = append(live, populatedNode(t, arena, (wave*8+i)%len(world), world))
		}
	}
	for _, n := range live {
		n.Release()
	}
	if got := arena.Outstanding(); got != 0 {
		t.Fatalf("Outstanding after draining all nodes = %d, want 0", got)
	}
}

// TestConcurrentChurnHammer is the livenet-shaped stress: many goroutines
// spawn, populate, and retire arena-backed nodes concurrently. Run under
// -race; the final outstanding count must be zero (each block returned
// exactly once).
func TestConcurrentChurnHammer(t *testing.T) {
	arena := peer.NewDescriptorArena()
	world := testWorld(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				n := populatedNode(t, arena, (g*100+i)%len(world), world)
				n.Release()
			}
		}(g)
	}
	wg.Wait()
	if got := arena.Outstanding(); got != 0 {
		t.Errorf("Outstanding after concurrent hammer = %d, want 0", got)
	}
}
