package core

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/id"
	"repro/internal/peer"
	"repro/internal/sampling"
)

// TestSelectPeerRebootstrapAfterLosingLeafSet covers the recovery path a
// node takes when every leaf-set entry has been removed (e.g. all evicted
// by the failure detector): selectPeer must fall back to the sampling
// service rather than going silent forever.
func TestSelectPeerRebootstrapAfterLosingLeafSet(t *testing.T) {
	self := peer.Descriptor{ID: 1000, Addr: 0}
	fallback := peer.Descriptor{ID: 7, Addr: 3}
	neighbours := []peer.Descriptor{{ID: 900, Addr: 1}, {ID: 1100, Addr: 2}}
	n, err := NewNode(self, testConfig(), sampling.Fixed([]peer.Descriptor{fallback}))
	if err != nil {
		t.Fatal(err)
	}
	n.Leaf().Update(neighbours)
	rng := rand.New(rand.NewSource(1))
	if q := n.selectPeer(rng); q.Nil() || q.ID == fallback.ID {
		t.Fatalf("with a populated leaf set selectPeer should pick a neighbour, got %s", q)
	}
	for _, d := range neighbours {
		n.Leaf().Remove(d.ID)
	}
	if got := n.Leaf().Len(); got != 0 {
		t.Fatalf("leaf set not emptied: %d entries", got)
	}
	if q := n.selectPeer(rng); q.ID != fallback.ID {
		t.Errorf("after losing all leaf entries selectPeer = %s, want sampler fallback %s", q, fallback)
	}
}

// TestFilterTombstonedPreservesSharedSlice checks the receiver-owns-message
// contract: filtering tombstoned entries must not rewrite the incoming
// backing array, which an engine may share across several receivers of one
// broadcast message.
func TestFilterTombstonedPreservesSharedSlice(t *testing.T) {
	self := peer.Descriptor{ID: 1000, Addr: 0}
	cfg := testConfig()
	cfg.EvictAfterMisses = 2
	n, err := NewNode(self, cfg, sampling.Fixed(nil))
	if err != nil {
		t.Fatal(err)
	}
	n.tombs.Put(2, n.ticks+tombstoneTTL) // ID 2 currently blacklisted
	shared := []peer.Descriptor{{ID: 1, Addr: 1}, {ID: 2, Addr: 2}, {ID: 3, Addr: 3}}
	snapshot := make([]peer.Descriptor, len(shared))
	copy(snapshot, shared)

	got := n.filterTombstoned(shared)
	want := []peer.Descriptor{{ID: 1, Addr: 1}, {ID: 3, Addr: 3}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("filtered = %v, want %v", got, want)
	}
	if !reflect.DeepEqual(shared, snapshot) {
		t.Errorf("input slice mutated: %v, want %v", shared, snapshot)
	}

	// No-removal path may return the input unchanged (and must not copy).
	clean := []peer.Descriptor{{ID: 5, Addr: 5}}
	if out := n.filterTombstoned(clean); &out[0] != &clean[0] {
		t.Error("no-removal filter should return the input slice as-is")
	}

	// An expired tombstone is dropped lazily and its entry passes through.
	expiry, _ := n.tombs.Get(2)
	n.ticks = expiry + 1
	if out := n.filterTombstoned(shared); !reflect.DeepEqual(out, snapshot) {
		t.Errorf("expired tombstone still filtered: %v", out)
	}
	if n.tombs.Contains(2) {
		t.Error("expired tombstone not collected")
	}
}

// TestCreateMessageScratchStable checks that the per-node scratch buffers
// reused across createMessage calls never leak into a shipped message: two
// consecutive messages must have disjoint backing arrays and identical
// content to a freshly-built node's message.
func TestCreateMessageScratchStable(t *testing.T) {
	world := make([]peer.Descriptor, 64)
	for i := range world {
		world[i] = peer.Descriptor{ID: testID(i), Addr: peer.Addr(i)}
	}
	self := world[0]
	dest := world[1]
	build := func() *Node {
		n, err := NewNode(self, testConfig(), sampling.Fixed(world[2:10]))
		if err != nil {
			t.Fatal(err)
		}
		n.Leaf().Update(world[10:40])
		n.Table().AddAll(world[40:])
		return n
	}
	n := build()
	m1 := n.createMessage(dest, true)
	m2 := n.createMessage(dest, true)
	if !reflect.DeepEqual(m1.Entries, m2.Entries) {
		t.Fatal("same state produced different messages")
	}
	if len(m1.Entries) > 0 && &m1.Entries[0] == &m2.Entries[0] {
		t.Error("messages share a backing array: scratch escaped")
	}
	fresh := build().createMessage(dest, true)
	if !reflect.DeepEqual(m1.Entries, fresh.Entries) {
		t.Error("scratch-reusing node diverged from freshly built node")
	}
}

func testID(i int) id.ID { return id.ID(0x9e3779b97f4a7c15 * uint64(i+1)) }
