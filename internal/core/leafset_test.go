package core

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/id"
	"repro/internal/peer"
)

func desc(n uint64) peer.Descriptor { return peer.Descriptor{ID: id.ID(n), Addr: peer.Addr(n % 10000)} }

func descs(ns ...uint64) []peer.Descriptor {
	out := make([]peer.Descriptor, len(ns))
	for i, n := range ns {
		out[i] = desc(n)
	}
	return out
}

func TestLeafSetBasicSelection(t *testing.T) {
	l := NewLeafSet(100, 4)
	l.Update(descs(101, 102, 103, 99, 98, 97))
	// c/2 = 2 closest successors: 101, 102; 2 closest predecessors: 99, 98.
	succ := l.Successors()
	pred := l.Predecessors()
	if len(succ) != 2 || succ[0].ID != 101 || succ[1].ID != 102 {
		t.Errorf("successors = %v", succ)
	}
	if len(pred) != 2 || pred[0].ID != 99 || pred[1].ID != 98 {
		t.Errorf("predecessors = %v", pred)
	}
}

func TestLeafSetIgnoresSelfAndDuplicates(t *testing.T) {
	l := NewLeafSet(100, 4)
	l.Update(descs(100, 101, 101, 102))
	if l.Contains(100) {
		t.Error("leaf set contains self")
	}
	if l.Len() != 2 {
		t.Errorf("len = %d, want 2", l.Len())
	}
}

func TestLeafSetTopUpFromOtherDirection(t *testing.T) {
	// Only successors exist: the set must fill with c closest successors.
	l := NewLeafSet(100, 4)
	l.Update(descs(101, 102, 103, 104, 105))
	if l.Len() != 4 {
		t.Fatalf("len = %d, want 4", l.Len())
	}
	ids := make(map[id.ID]bool)
	for _, d := range l.Slice() {
		ids[d.ID] = true
	}
	for _, want := range []id.ID{101, 102, 103, 104} {
		if !ids[want] {
			t.Errorf("missing %d from topped-up set %v", want, l.Slice())
		}
	}
}

func TestLeafSetUpdateImproves(t *testing.T) {
	l := NewLeafSet(100, 4)
	l.Update(descs(200, 300, 50, 40))
	if changed := l.Update(descs(101, 99)); !changed {
		t.Error("closer peers should change the set")
	}
	if !l.Contains(101) || !l.Contains(99) {
		t.Error("closest peers evicted")
	}
	if changed := l.Update(descs(5000, 6000)); changed {
		t.Error("far peers should not change a set of closer peers")
	}
}

func TestLeafSetUpdateNoNewInfo(t *testing.T) {
	l := NewLeafSet(100, 4)
	l.Update(descs(101, 99))
	if l.Update(descs(101, 99, 100)) {
		t.Error("re-offering known peers reported a change")
	}
	if l.Update(nil) {
		t.Error("empty update reported a change")
	}
}

func TestLeafSetWraparound(t *testing.T) {
	top := ^uint64(0)
	l := NewLeafSet(id.ID(top-1), 4)
	l.Update(descs(top, 0, 1, top-2, top-3))
	// Successors of top-1 clockwise: top, 0, 1. Predecessors: top-2, top-3.
	succ := l.Successors()
	if len(succ) != 2 || succ[0].ID != id.ID(top) || succ[1].ID != 0 {
		t.Errorf("wraparound successors = %v", succ)
	}
	pred := l.Predecessors()
	if len(pred) != 2 || pred[0].ID != id.ID(top-2) || pred[1].ID != id.ID(top-3) {
		t.Errorf("wraparound predecessors = %v", pred)
	}
}

func TestLeafSetSortedByRingDistance(t *testing.T) {
	l := NewLeafSet(100, 6)
	l.Update(descs(103, 101, 98, 96, 110, 90))
	sorted := l.SortedByRingDistance()
	for i := 1; i < len(sorted); i++ {
		if id.CompareRing(100, sorted[i-1].ID, sorted[i].ID) > 0 {
			t.Fatalf("not sorted at %d: %v", i, sorted)
		}
	}
	if len(sorted) != l.Len() {
		t.Errorf("sorted len %d != len %d", len(sorted), l.Len())
	}
}

func TestLeafSetRemove(t *testing.T) {
	l := NewLeafSet(100, 4)
	l.Update(descs(101, 102, 99, 98))
	l.Remove(101)
	if l.Contains(101) || l.Len() != 3 {
		t.Errorf("remove failed: %v", l.Slice())
	}
	l.Remove(98)
	if l.Contains(98) || l.Len() != 2 {
		t.Errorf("remove failed: %v", l.Slice())
	}
}

// TestLeafSetMatchesReferenceSelection cross-checks the incremental Update
// against a brute-force reference: feed a random pool in random batches and
// compare with selecting directly from the whole pool.
func TestLeafSetMatchesReferenceSelection(t *testing.T) {
	f := func(seed int64, raw []uint64) bool {
		rng := rand.New(rand.NewSource(seed))
		self := id.ID(rng.Uint64())
		pool := make([]peer.Descriptor, 0, len(raw))
		seen := map[id.ID]bool{self: true}
		for _, v := range raw {
			if seen[id.ID(v)] {
				continue
			}
			seen[id.ID(v)] = true
			pool = append(pool, desc(v))
		}
		const c = 8
		l := NewLeafSet(self, c)
		// Feed in random batches.
		perm := rng.Perm(len(pool))
		for start := 0; start < len(perm); {
			n := 1 + rng.Intn(4)
			if start+n > len(perm) {
				n = len(perm) - start
			}
			batch := make([]peer.Descriptor, 0, n)
			for _, pi := range perm[start : start+n] {
				batch = append(batch, pool[pi])
			}
			l.Update(batch)
			start += n
		}
		// Reference: one-shot selection over everything.
		ref := NewLeafSet(self, c)
		ref.Update(pool)
		got := idsOf(l.Slice())
		want := idsOf(ref.Slice())
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func idsOf(ds []peer.Descriptor) []id.ID {
	out := make([]id.ID, len(ds))
	for i, d := range ds {
		out[i] = d.ID
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TestLeafSetInvariants checks structural invariants after arbitrary update
// sequences: capacity respected, directions sorted, no self, no duplicates.
func TestLeafSetInvariants(t *testing.T) {
	f := func(seed int64, raw []uint64) bool {
		self := id.ID(seed)
		l := NewLeafSet(self, 10)
		for _, v := range raw {
			l.Update(descs(v, v+1, v*3))
		}
		if l.Len() > 10 {
			return false
		}
		if l.Contains(self) {
			return false
		}
		seen := make(map[id.ID]bool)
		for _, d := range l.Slice() {
			if seen[d.ID] {
				return false
			}
			seen[d.ID] = true
		}
		succ := l.Successors()
		for i := 1; i < len(succ); i++ {
			if id.Succ(self, succ[i-1].ID) >= id.Succ(self, succ[i].ID) {
				return false
			}
		}
		pred := l.Predecessors()
		for i := 1; i < len(pred); i++ {
			if id.Pred(self, pred[i-1].ID) >= id.Pred(self, pred[i].ID) {
				return false
			}
		}
		for _, d := range succ {
			if !id.IsSuccessor(self, d.ID) {
				return false
			}
		}
		for _, d := range pred {
			if id.IsSuccessor(self, d.ID) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
