package broadcast

import (
	"testing"

	"repro/internal/id"
	"repro/internal/peer"
	"repro/internal/sampling"
	"repro/internal/simnet"
)

func buildNetwork(t testing.TB, n int, seed int64, drop float64) (*simnet.Network, []*Protocol, []peer.Descriptor) {
	t.Helper()
	net := simnet.New(simnet.Config{Seed: seed, Drop: drop})
	ids := id.Unique(n, seed+10)
	descs := make([]peer.Descriptor, n)
	for i := range descs {
		descs[i] = peer.Descriptor{ID: ids[i], Addr: net.AddNode()}
	}
	oracle := sampling.NewOracle(descs, seed+20)
	protos := make([]*Protocol, n)
	for i, d := range descs {
		p, err := New(d, DefaultConfig(), oracle, nil)
		if err != nil {
			t.Fatal(err)
		}
		protos[i] = p
		if err := net.Attach(d.Addr, ProtoID, p, 10, int64(i%10)); err != nil {
			t.Fatal(err)
		}
	}
	return net, protos, descs
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Config{Fanout: 0, TTL: 5}).Validate(); err == nil {
		t.Error("zero fanout accepted")
	}
	if err := (Config{Fanout: 2, TTL: 0}).Validate(); err == nil {
		t.Error("zero ttl accepted")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(peer.Descriptor{ID: 1}, DefaultConfig(), nil, nil); err == nil {
		t.Error("nil sampler accepted")
	}
	if _, err := New(peer.Descriptor{ID: 1}, Config{}, sampling.Fixed(nil), nil); err == nil {
		t.Error("invalid config accepted")
	}
}

// TestFullCoverage: a rumor injected at one node reaches everyone within a
// logarithmic number of periods.
func TestFullCoverage(t *testing.T) {
	const n = 500
	net, protos, _ := buildNetwork(t, n, 1, 0)
	net.At(5, func() {
		ctxInject(net, protos[0], Rumor{Seq: 1, Payload: "start"})
	})
	net.Run(10 * 20)
	covered := 0
	for _, p := range protos {
		if _, ok := p.Delivered(1); ok {
			covered++
		}
	}
	if covered != n {
		t.Errorf("coverage %d/%d after 20 periods", covered, n)
	}
}

// ctxInject injects a rumor through a scheduled function; the Protocol API
// needs a Context, which only the network can mint, so we reuse the node's
// Handle path via a self-addressed message.
func ctxInject(net *simnet.Network, p *Protocol, r Rumor) {
	net.Send(p.self.Addr, p.self.Addr, ProtoID, r)
}

// TestCoverageUnderDrop: 20% loss slows but does not stop dissemination.
func TestCoverageUnderDrop(t *testing.T) {
	const n = 300
	net, protos, _ := buildNetwork(t, n, 2, 0.2)
	net.At(5, func() {
		ctxInject(net, protos[0], Rumor{Seq: 7, Payload: "start"})
	})
	net.Run(10 * 30)
	covered := 0
	for _, p := range protos {
		if _, ok := p.Delivered(7); ok {
			covered++
		}
	}
	if covered < n*99/100 {
		t.Errorf("coverage %d/%d under 20%% drop", covered, n)
	}
}

// TestStartSkewBounded: the spread between the first and last reception —
// the start skew the bootstrap protocol must tolerate — stays within a few
// periods, supporting the paper's loosely-synchronised-start assumption.
func TestStartSkewBounded(t *testing.T) {
	const n, period = 400, 10
	net, protos, _ := buildNetwork(t, n, 3, 0)
	net.At(0, func() {
		ctxInject(net, protos[0], Rumor{Seq: 9, Payload: "start"})
	})
	net.Run(period * 30)
	var first, last int64 = 1 << 62, -1
	for _, p := range protos {
		at, ok := p.Delivered(9)
		if !ok {
			t.Fatal("incomplete coverage")
		}
		if at < first {
			first = at
		}
		if at > last {
			last = at
		}
	}
	skew := last - first
	if skew > 10*period {
		t.Errorf("start skew %d exceeds 10 periods", skew)
	}
}

func TestDeliverOnce(t *testing.T) {
	net, protos, _ := buildNetwork(t, 50, 4, 0)
	calls := 0
	p, err := New(peer.Descriptor{ID: 999999, Addr: net.AddNode()}, DefaultConfig(), sampling.Fixed(nil), func(Rumor, int64) { calls++ })
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Attach(p.self.Addr, ProtoID, p, 10, 0); err != nil {
		t.Fatal(err)
	}
	net.Send(protos[0].self.Addr, p.self.Addr, ProtoID, Rumor{Seq: 3})
	net.Send(protos[0].self.Addr, p.self.Addr, ProtoID, Rumor{Seq: 3})
	net.Run(100)
	if calls != 1 {
		t.Errorf("onDeliver fired %d times, want 1", calls)
	}
}

func TestHandleIgnoresForeign(t *testing.T) {
	net, protos, _ := buildNetwork(t, 10, 5, 0)
	net.Send(0, protos[0].self.Addr, ProtoID, "garbage")
	net.Run(50) // must not panic
}
