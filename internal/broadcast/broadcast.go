// Package broadcast implements gossip (rumor-mongering) broadcast over the
// peer sampling service — the component the paper relies on to start the
// bootstrapping protocol in a loosely synchronised way ("the protocol is
// started by a system administrator, using some form of broadcasting or
// flooding on top of the peer sampling service").
//
// A node holding the rumor forwards it to Fanout random peers every period,
// for TTL periods after first hearing it. The time between injection and a
// node's first reception is that node's start skew; the experiment in
// cmd/samplesim measures the skew distribution, which justifies the paper's
// assumption that all nodes can start within a small number of Δ.
package broadcast

import (
	"fmt"

	"repro/internal/peer"
	"repro/internal/proto"
	"repro/internal/sampling"
)

// ProtoID is the simnet protocol identifier conventionally used for the
// broadcast layer.
const ProtoID proto.ProtoID = 4

// Defaults chosen to cover networks of tens of thousands of nodes within a
// handful of periods.
const (
	DefaultFanout = 4
	DefaultTTL    = 16
)

// Rumor is the broadcast payload.
type Rumor struct {
	// Seq identifies the rumor; nodes deliver each Seq once.
	Seq uint64
	// Payload is an opaque application value (e.g. "start bootstrap").
	Payload string
}

// WireSize reports the message size in descriptor units; a rumor is tiny.
func (Rumor) WireSize() int { return 1 }

// Config parameterises the broadcast protocol.
type Config struct {
	// Fanout is the number of random peers the rumor is pushed to per
	// period while hot.
	Fanout int
	// TTL is the number of periods a rumor stays hot after reception.
	TTL int
}

// DefaultConfig returns the default fanout/TTL.
func DefaultConfig() Config { return Config{Fanout: DefaultFanout, TTL: DefaultTTL} }

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Fanout < 1 {
		return fmt.Errorf("broadcast config: fanout %d < 1", c.Fanout)
	}
	if c.TTL < 1 {
		return fmt.Errorf("broadcast config: ttl %d < 1", c.TTL)
	}
	return nil
}

// Protocol is the rumor-mongering state machine for one node.
type Protocol struct {
	cfg     Config
	self    peer.Descriptor
	sampler sampling.Service

	// seen maps rumor Seq to remaining hot periods.
	seen map[uint64]int
	// rumors retains the payloads for re-forwarding.
	rumors map[uint64]Rumor
	// DeliveredAt records, per Seq, the virtual time of first delivery.
	deliveredAt map[uint64]int64
	onDeliver   func(Rumor, int64)
}

var _ proto.Protocol = (*Protocol)(nil)

// New returns a broadcast instance. onDeliver, if non-nil, fires once per
// rumor at first reception with the reception time.
func New(self peer.Descriptor, cfg Config, sampler sampling.Service, onDeliver func(Rumor, int64)) (*Protocol, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if sampler == nil {
		return nil, fmt.Errorf("broadcast node %s: nil sampler", self.ID)
	}
	return &Protocol{
		cfg:         cfg,
		self:        self,
		sampler:     sampler,
		seen:        make(map[uint64]int),
		rumors:      make(map[uint64]Rumor),
		deliveredAt: make(map[uint64]int64),
		onDeliver:   onDeliver,
	}, nil
}

// Init is a no-op; the protocol is purely reactive until a rumor arrives
// or is injected.
func (p *Protocol) Init(proto.Context) {}

// Inject makes this node the origin of a rumor (the "system
// administrator" entry point).
func (p *Protocol) Inject(ctx proto.Context, r Rumor) {
	p.receive(ctx, r)
}

// Tick pushes all hot rumors to Fanout random peers and cools them.
func (p *Protocol) Tick(ctx proto.Context) {
	for seq, left := range p.seen {
		if left <= 0 {
			continue
		}
		p.seen[seq] = left - 1
		rumor := p.rumors[seq]
		for _, d := range p.sampler.Sample(p.cfg.Fanout) {
			if d.ID == p.self.ID {
				continue
			}
			ctx.Send(d.Addr, rumor)
		}
	}
}

// Handle merges an incoming rumor.
func (p *Protocol) Handle(ctx proto.Context, _ peer.Addr, msg proto.Message) {
	r, ok := msg.(Rumor)
	if !ok {
		return
	}
	p.receive(ctx, r)
}

func (p *Protocol) receive(ctx proto.Context, r Rumor) {
	if _, dup := p.seen[r.Seq]; dup {
		return
	}
	p.seen[r.Seq] = p.cfg.TTL
	p.rumors[r.Seq] = r
	p.deliveredAt[r.Seq] = ctx.Now()
	if p.onDeliver != nil {
		p.onDeliver(r, ctx.Now())
	}
}

// Delivered reports whether the rumor with the given Seq has been received
// and, if so, when.
func (p *Protocol) Delivered(seq uint64) (int64, bool) {
	at, ok := p.deliveredAt[seq]
	return at, ok
}
