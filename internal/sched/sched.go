// Package sched implements a two-level bucketed calendar queue — a timing
// wheel with an overflow level — for time-ordered scheduling in O(1)
// amortised time per operation.
//
// Both engines in this repository are tick-dominated: nearly every hot-path
// operation is "schedule an event a bounded distance in the future" (a
// gossip tick one period ahead, a message one latency ahead). A binary heap
// pays O(log n) sifts per event for a workload that never needs the full
// generality of a priority queue; a calendar queue exploits the bounded
// horizon to make both enqueue and dequeue O(1) amortised.
//
// # Structure
//
// Level 0 is a ring of B buckets, each of width 2^shift time units, covering
// the half-open window [front·2^shift, (front+B)·2^shift) ahead of the
// cursor. An event at time t lands in bucket (t>>shift) mod B. Events beyond
// the window go to the overflow level — an unsorted slice — and are re-binned
// into level 0 when the cursor approaches them. When every pending event
// lives in overflow the cursor jumps straight to the earliest overflow
// bucket, and if the overflow span is much wider than the window the bucket
// width doubles until the span fits a small number of wraps, so an adversely
// spread workload degrades gracefully instead of re-scanning the overflow
// once per wrap.
//
// # Determinism
//
// Every Push is stamped with a strictly increasing insertion sequence
// number, and Pop yields entries in strict (time, seq) order: ties on the
// deadline always resolve in insertion order, exactly like a stable binary
// heap over (time, seq). The pop order is therefore a pure function of the
// push sequence — independent of bucket geometry, widening, or re-binning —
// which is what lets the deterministic simulator replace its heap without
// perturbing a single golden trace.
//
// The zero Queue is ready to use with default geometry; New picks explicit
// geometry. Queue is not safe for concurrent use — callers shard and lock
// (see livenet's wire) or are single-threaded (simnet).
package sched

import (
	"math"
	"slices"
)

// Default geometry: 256 buckets of width 1. Right for virtual-time workloads
// (simnet: tick period 10, latency ≤ ~10), where a bucket holds exactly one
// instant and intra-bucket order is insertion order by construction.
const (
	defaultShift   = 0
	defaultBuckets = 256
)

// entry is one scheduled item: its deadline, its insertion sequence number
// (the deterministic tie-break), and the caller's value.
type entry[T any] struct {
	at  int64
	seq uint64
	val T
}

// Queue is a two-level calendar queue over int64 time. See the package
// comment for the structure and the determinism contract.
type Queue[T any] struct {
	shift   uint  // log2 of the bucket width
	mask    int64 // len(buckets)-1; bucket count is a power of two
	buckets [][]entry[T]

	// Cursor state. front is the bucket number (at>>shift) the cursor is
	// in; frontHead is the pop position inside that bucket; frontSorted
	// records whether the front bucket has been put in (time, seq) order.
	// Invariant: frontHead > 0 implies frontSorted.
	front       int64
	frontHead   int
	frontSorted bool

	l0       int // entries resident in level 0
	overflow []entry[T]
	ofMin    int64 // minimum bucket number in overflow; valid iff overflow is non-empty

	size int
	seq  uint64
}

// New returns a queue with 1<<shift-wide buckets and `buckets` (rounded up
// to a power of two, minimum 2) level-0 slots. The window should cover the
// workload's typical scheduling horizon; events beyond it are still correct,
// just routed through the overflow level.
func New[T any](shift uint, buckets int) *Queue[T] {
	q := &Queue[T]{}
	q.init(shift, buckets)
	return q
}

func (q *Queue[T]) init(shift uint, buckets int) {
	n := 2
	for n < buckets {
		n <<= 1
	}
	q.shift = shift
	q.mask = int64(n - 1)
	q.buckets = make([][]entry[T], n)
}

// Len returns the number of pending entries.
func (q *Queue[T]) Len() int { return q.size }

// Push schedules v at time at. Entries pushed for a time already passed by
// the cursor are served next, in push order — the "schedule at now" case.
func (q *Queue[T]) Push(at int64, v T) {
	if q.buckets == nil {
		q.init(defaultShift, defaultBuckets)
	}
	e := entry[T]{at: at, seq: q.seq, val: v}
	q.seq++
	q.size++
	b := at >> q.shift
	if q.size == 1 {
		// Empty queue: re-anchor the window at the new entry so a long
		// quiet gap never forces the cursor to walk dead buckets. The old
		// front bucket may still hold a fully-popped (already zeroed)
		// prefix that was never recycled; truncate it or the re-anchored
		// cursor could serve those dead slots.
		if old := q.front & q.mask; len(q.buckets[old]) > 0 {
			q.buckets[old] = q.buckets[old][:0]
		}
		q.front = b
		q.frontHead = 0
		q.frontSorted = false
		q.buckets[b&q.mask] = append(q.buckets[b&q.mask], e)
		q.l0++
		return
	}
	if b < q.front {
		// Late push (deadline at or before the cursor): clamp into the
		// front bucket; the (time, seq) insert below places it first
		// among what remains, which is exactly "run next".
		b = q.front
	}
	if b >= q.front+q.mask+1 {
		if len(q.overflow) == 0 || b < q.ofMin {
			q.ofMin = b
		}
		q.overflow = append(q.overflow, e)
		return
	}
	q.place(b, e)
	q.l0++
}

// place routes an in-window entry into its bucket. A bucket that is not the
// (sorted) front bucket takes a plain append — it is sorted only when the
// cursor reaches it. The sorted front bucket takes an ordered insert so the
// drain position stays valid.
func (q *Queue[T]) place(b int64, e entry[T]) {
	idx := b & q.mask
	if b == q.front && q.frontSorted {
		bkt := q.buckets[idx]
		// Upper bound by (time, seq) over the undrained tail. A fresh
		// push always carries the max seq, but re-binned overflow
		// entries carry old seqs, so compare both fields.
		lo, hi := q.frontHead, len(bkt)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if bkt[mid].at < e.at || (bkt[mid].at == e.at && bkt[mid].seq < e.seq) {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		bkt = append(bkt, entry[T]{})
		copy(bkt[lo+1:], bkt[lo:])
		bkt[lo] = e
		q.buckets[idx] = bkt
		return
	}
	q.buckets[idx] = append(q.buckets[idx], e)
	if b == q.front {
		q.frontSorted = false
	}
}

// PeekTime returns the deadline of the earliest entry.
func (q *Queue[T]) PeekTime() (int64, bool) {
	if q.size == 0 {
		return 0, false
	}
	return q.settle().at, true
}

// Peek returns the earliest entry's value without removing it — the value
// Pop would return next. The sharded simulator uses it to compare the heads
// of several wheels by their embedded sequence numbers when it must merge
// serially.
func (q *Queue[T]) Peek() (T, bool) {
	if q.size == 0 {
		var zero T
		return zero, false
	}
	return q.settle().val, true
}

// Pop removes and returns the earliest entry's value.
func (q *Queue[T]) Pop() (T, bool) {
	if q.size == 0 {
		var zero T
		return zero, false
	}
	e := q.settle()
	v := e.val
	*e = entry[T]{} // drop references so popped values can be collected
	q.frontHead++
	q.l0--
	q.size--
	return v, true
}

// AppendDue pops every entry with deadline <= now, in (time, seq) order,
// appending the values to buf and returning it. The append form lets a
// caller holding a lock collect due work into a scratch buffer and run it
// after unlocking.
func (q *Queue[T]) AppendDue(now int64, buf []T) []T {
	for q.size > 0 {
		e := q.settle()
		if e.at > now {
			break
		}
		buf = append(buf, e.val)
		*e = entry[T]{}
		q.frontHead++
		q.l0--
		q.size--
	}
	return buf
}

// Drain removes every pending entry, calling fn on each in no particular
// order, and resets the queue (retaining its geometry and capacity). Used
// at shutdown, where accounting needs each value but ordering is moot.
func (q *Queue[T]) Drain(fn func(T)) {
	for i := range q.buckets {
		bkt := q.buckets[i]
		head := 0
		if int64(i) == q.front&q.mask {
			head = q.frontHead
		}
		for j := head; j < len(bkt); j++ {
			fn(bkt[j].val)
		}
		clear(bkt)
		q.buckets[i] = bkt[:0]
	}
	for i := range q.overflow {
		fn(q.overflow[i].val)
	}
	clear(q.overflow)
	q.overflow = q.overflow[:0]
	q.frontHead = 0
	q.frontSorted = false
	q.l0 = 0
	q.size = 0
}

// settle positions the cursor on the earliest pending entry and returns a
// pointer to it. It must only be called with size > 0. Amortised O(1): the
// cursor only ever moves forward, and each overflow entry is re-binned a
// bounded number of times (the widening step bounds wraps per batch).
func (q *Queue[T]) settle() *entry[T] {
	for {
		if q.l0 == 0 {
			// Everything pending is in overflow: jump the window to the
			// earliest overflow bucket (widening first if the overflow
			// span would cause many wraps) and re-bin.
			q.jump()
			continue
		}
		idx := q.front & q.mask
		bkt := q.buckets[idx]
		if q.frontHead >= len(bkt) {
			// Front bucket exhausted: recycle it and advance.
			clear(bkt)
			q.buckets[idx] = bkt[:0]
			q.frontHead = 0
			q.frontSorted = false
			q.front++
			if len(q.overflow) > 0 && q.ofMin <= q.front {
				// The cursor is entering territory the overflow owns;
				// pull its in-window entries in before serving anything.
				q.rebin()
			}
			continue
		}
		if len(q.overflow) > 0 && q.ofMin <= q.front {
			q.rebin()
			bkt = q.buckets[idx]
		}
		if !q.frontSorted {
			slices.SortFunc(bkt, func(a, b entry[T]) int {
				if a.at != b.at {
					if a.at < b.at {
						return -1
					}
					return 1
				}
				if a.seq < b.seq {
					return -1
				}
				return 1 // seqs are unique; equality is impossible
			})
			q.frontSorted = true
		}
		return &bkt[q.frontHead]
	}
}

// jump re-anchors an empty level 0 at the earliest overflow entry. If the
// overflow spans far more than the window (a sparse far-future workload),
// the bucket width doubles until the span fits within a few wraps, keeping
// the total re-binning work per batch linear instead of quadratic.
func (q *Queue[T]) jump() {
	// The old front bucket may hold a fully-popped zeroed prefix that was
	// never recycled (level 0 is empty, so that is all it can hold); the
	// re-anchored window may collide with its ring slot, so truncate it.
	if old := q.front & q.mask; len(q.buckets[old]) > 0 {
		q.buckets[old] = q.buckets[old][:0]
	}
	minAt, maxAt := int64(math.MaxInt64), int64(math.MinInt64)
	for i := range q.overflow {
		at := q.overflow[i].at
		if at < minAt {
			minAt = at
		}
		if at > maxAt {
			maxAt = at
		}
	}
	window := q.mask + 1
	for q.shift < 40 && (maxAt>>q.shift)-(minAt>>q.shift) >= window*8 {
		q.shift++
	}
	q.front = minAt >> q.shift
	q.frontHead = 0
	q.frontSorted = false
	q.rebin()
}

// rebin moves every overflow entry whose bucket now falls inside the level-0
// window into its bucket, and recomputes the overflow minimum.
func (q *Queue[T]) rebin() {
	limit := q.front + q.mask + 1
	keep := q.overflow[:0]
	newMin := int64(math.MaxInt64)
	for _, e := range q.overflow {
		b := e.at >> q.shift
		if b < q.front {
			b = q.front
		}
		if b < limit {
			q.place(b, e)
			q.l0++
			continue
		}
		keep = append(keep, e)
		if b < newMin {
			newMin = b
		}
	}
	clear(q.overflow[len(keep):])
	q.overflow = keep
	q.ofMin = newMin
}
