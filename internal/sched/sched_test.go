package sched

import (
	"math/rand"
	"sort"
	"testing"
)

// popAll drains q and returns the values in pop order.
func popAll(q *Queue[int]) []int {
	var out []int
	for {
		v, ok := q.Pop()
		if !ok {
			return out
		}
		out = append(out, v)
	}
}

// refEntry mirrors the queue's ordering contract for the model checks.
type refEntry struct {
	at  int64
	seq int
}

func refOrder(entries []refEntry) []int {
	idx := make([]int, len(entries))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ea, eb := entries[idx[a]], entries[idx[b]]
		if ea.at != eb.at {
			return ea.at < eb.at
		}
		return ea.seq < eb.seq
	})
	return idx
}

// TestQueueOrdering pushes a shuffled batch and checks strict (time, seq)
// pop order — the contract both engines rely on.
func TestQueueOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	q := New[int](0, 64)
	const total = 5000
	entries := make([]refEntry, total)
	for i := range entries {
		entries[i] = refEntry{at: int64(rng.Intn(200)), seq: i}
		q.Push(entries[i].at, i)
	}
	want := refOrder(entries)
	got := popAll(q)
	if len(got) != total {
		t.Fatalf("popped %d entries, want %d", len(got), total)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop %d = entry %d (at=%d seq=%d), want entry %d (at=%d seq=%d)",
				i, got[i], entries[got[i]].at, entries[got[i]].seq,
				want[i], entries[want[i]].at, entries[want[i]].seq)
		}
	}
}

// TestQueuePeek pins Peek's contract: it returns exactly what the next Pop
// returns, without consuming it, at every point of a randomized workload.
func TestQueuePeek(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	q := New[int](0, 16)
	if _, ok := q.Peek(); ok {
		t.Fatal("Peek on empty queue reported ok")
	}
	for i := 0; i < 2000; i++ {
		q.Push(int64(rng.Intn(500)), i)
		if rng.Intn(3) == 0 {
			pv, pok := q.Peek()
			v, ok := q.Pop()
			if !pok || !ok || pv != v {
				t.Fatalf("Peek = (%d, %v) but Pop = (%d, %v)", pv, pok, v, ok)
			}
		}
	}
	for q.Len() > 0 {
		pv, _ := q.Peek()
		v, _ := q.Pop()
		if pv != v {
			t.Fatalf("Peek = %d but Pop = %d", pv, v)
		}
	}
}

// TestQueueInterleavedModel is the main correctness hammer: a long random
// interleaving of pushes (including far-future overflow times, same-instant
// ties, and pushes at or before the cursor) and pops, checked against a
// reference sort at every pop. Several geometries, including a wheel small
// enough that overflow and re-binning dominate.
func TestQueueInterleavedModel(t *testing.T) {
	geometries := []struct {
		name    string
		shift   uint
		buckets int
	}{
		{"w1xb256", 0, 256},
		{"w8xb16", 3, 16},
		{"w1xb2", 0, 2}, // pathological: nearly everything overflows
	}
	for _, g := range geometries {
		t.Run(g.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			q := New[int](g.shift, g.buckets)
			type live struct {
				at  int64
				seq int
			}
			var pending []live
			var now int64
			seq := 0
			for step := 0; step < 60000; step++ {
				if rng.Intn(3) > 0 || len(pending) == 0 {
					var at int64
					switch rng.Intn(10) {
					case 0: // at or before the cursor: must run next
						at = now
					case 1: // far future: exercises overflow + widening
						at = now + int64(rng.Intn(100000))
					default: // bounded horizon, the dominant workload
						at = now + int64(rng.Intn(40))
					}
					q.Push(at, seq)
					pending = append(pending, live{at: at, seq: seq})
					seq++
					continue
				}
				// Pop, and check it is the (time, seq) minimum. Late
				// pushes (at <= cursor) are served as if at the cursor
				// time, so order by max(at, pushed-after-now) — but the
				// queue clamps internally; the reference must clamp too.
				best := 0
				for i := 1; i < len(pending); i++ {
					if pending[i].at != pending[best].at {
						if pending[i].at < pending[best].at {
							best = i
						}
					} else if pending[i].seq < pending[best].seq {
						best = i
					}
				}
				v, ok := q.Pop()
				if !ok {
					t.Fatalf("step %d: Pop empty with %d pending", step, len(pending))
				}
				if v != pending[best].seq {
					t.Fatalf("step %d: popped seq %d, want seq %d (at=%d)",
						step, v, pending[best].seq, pending[best].at)
				}
				if pending[best].at > now {
					now = pending[best].at
				}
				pending = append(pending[:best], pending[best+1:]...)
			}
			// Drain the tail in order.
			sort.Slice(pending, func(a, b int) bool {
				if pending[a].at != pending[b].at {
					return pending[a].at < pending[b].at
				}
				return pending[a].seq < pending[b].seq
			})
			for i, want := range pending {
				v, ok := q.Pop()
				if !ok || v != want.seq {
					t.Fatalf("tail pop %d = %d (ok=%v), want %d", i, v, ok, want.seq)
				}
			}
			if _, ok := q.Pop(); ok {
				t.Fatal("queue should be empty")
			}
		})
	}
}

// TestQueueLatePushClamped pins the "schedule at now" semantics: an entry
// pushed for a deadline the cursor already passed runs next, after nothing.
func TestQueueLatePushClamped(t *testing.T) {
	q := New[int](0, 16)
	q.Push(5, 1)
	q.Push(9, 2)
	if v, _ := q.Pop(); v != 1 {
		t.Fatalf("first pop = %d, want 1", v)
	}
	// Cursor is at 5; deadline 0 is in the past and must still pop before
	// the pending entry at 9.
	q.Push(0, 3)
	if v, _ := q.Pop(); v != 3 {
		t.Fatalf("late push did not run next")
	}
	if v, _ := q.Pop(); v != 2 {
		t.Fatalf("final pop wrong")
	}
}

// TestQueueReanchorAfterEmpty is the regression for the stale front bucket:
// drain the queue, then push a time whose ring slot collides with the old
// front bucket. The popped prefix must not resurface as zero values.
func TestQueueReanchorAfterEmpty(t *testing.T) {
	q := New[int](0, 16)
	q.Push(3, 10)
	q.Push(3, 11)
	if v, _ := q.Pop(); v != 10 {
		t.Fatal("warmup pop 1")
	}
	if v, _ := q.Pop(); v != 11 {
		t.Fatal("warmup pop 2")
	}
	// Same ring slot as bucket 3 (16-bucket ring): bucket 19.
	q.Push(19, 12)
	if q.Len() != 1 {
		t.Fatalf("Len = %d, want 1", q.Len())
	}
	if v, ok := q.Pop(); !ok || v != 12 {
		t.Fatalf("re-anchored pop = %d (ok=%v), want 12", v, ok)
	}

	// Same hazard through the overflow jump: the overflow entry at bucket
	// 19+16 shares a ring slot with the stale, fully-popped front bucket.
	q.Push(19, 20)
	q.Push(19, 21)
	q.Push(19+16, 22) // beyond the window: lands in overflow
	if v, _ := q.Pop(); v != 20 {
		t.Fatal("jump warmup pop 1")
	}
	if v, _ := q.Pop(); v != 21 {
		t.Fatal("jump warmup pop 2")
	}
	if v, ok := q.Pop(); !ok || v != 22 {
		t.Fatalf("post-jump pop = %d (ok=%v), want 22", v, ok)
	}
}

// TestQueueAppendDue checks the sweeper path: only entries at or before now
// come out, in order, and the rest stay queued.
func TestQueueAppendDue(t *testing.T) {
	q := New[int](4, 8)
	times := []int64{100, 40, 40, 700, 5, 300}
	for i, at := range times {
		q.Push(at, i)
	}
	got := q.AppendDue(100, nil)
	want := []int{4, 1, 2, 0} // at=5, 40(seq1), 40(seq2), 100
	if len(got) != len(want) {
		t.Fatalf("AppendDue returned %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AppendDue returned %v, want %v", got, want)
		}
	}
	if q.Len() != 2 {
		t.Fatalf("Len after AppendDue = %d, want 2", q.Len())
	}
	if at, _ := q.PeekTime(); at != 300 {
		t.Fatalf("PeekTime = %d, want 300", at)
	}
}

// TestQueueDrain checks Drain visits every pending entry exactly once,
// including overflow and a partially drained front bucket, and resets.
func TestQueueDrain(t *testing.T) {
	q := New[int](0, 8)
	seen := make(map[int]bool)
	for i := 0; i < 40; i++ {
		q.Push(int64(i*3), i)
	}
	for i := 0; i < 5; i++ {
		v, _ := q.Pop()
		seen[v] = true
	}
	q.Drain(func(v int) {
		if seen[v] {
			t.Fatalf("Drain revisited %d", v)
		}
		seen[v] = true
	})
	if len(seen) != 40 {
		t.Fatalf("saw %d entries, want 40", len(seen))
	}
	if q.Len() != 0 {
		t.Fatalf("Len after Drain = %d", q.Len())
	}
	q.Push(1, 99)
	if v, ok := q.Pop(); !ok || v != 99 {
		t.Fatal("queue unusable after Drain")
	}
}

// TestQueueZeroValue checks the zero Queue initialises itself on first Push.
func TestQueueZeroValue(t *testing.T) {
	var q Queue[string]
	q.Push(2, "b")
	q.Push(1, "a")
	if v, _ := q.Pop(); v != "a" {
		t.Fatal("zero-value queue misordered")
	}
	if v, _ := q.Pop(); v != "b" {
		t.Fatal("zero-value queue misordered")
	}
}

// TestQueueSteadyStateAllocs pins the tick-shaped steady state — push one
// bounded-horizon entry per pop — at zero allocations per operation once
// bucket capacities are warm.
func TestQueueSteadyStateAllocs(t *testing.T) {
	q := New[int](0, 256)
	var now int64
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 4096; i++ {
		q.Push(now+int64(1+rng.Intn(20)), i)
	}
	// Warm until every ring slot has seen its high-water occupancy; bucket
	// capacity growth is the only allocation source, so the warm loop must
	// outlast the occupancy maxima's slow logarithmic climb.
	for i := 0; i < 1<<17; i++ {
		v, _ := q.Pop()
		at, _ := q.PeekTime()
		now = at
		q.Push(now+int64(1+rng.Intn(20)), v)
	}
	avg := testing.AllocsPerRun(200, func() {
		for i := 0; i < 64; i++ {
			v, _ := q.Pop()
			at, _ := q.PeekTime()
			now = at
			q.Push(now+int64(1+rng.Intn(20)), v)
		}
	})
	if avg != 0 {
		t.Errorf("steady state allocates %.2f objects per 64-op batch, want 0", avg)
	}
}
