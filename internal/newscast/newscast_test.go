package newscast

import (
	"testing"

	"repro/internal/id"
	"repro/internal/peer"
	"repro/internal/simnet"
)

// buildNetwork wires n NEWSCAST nodes into a simnet. Every node starts with a
// star view: it only knows node 0 — the worst-case, fully non-random
// initialisation discussed in the paper's self-healing property.
func buildNetwork(t testing.TB, n int, cfg simnet.Config, delta int64) (*simnet.Network, []*Protocol) {
	t.Helper()
	net := simnet.New(cfg)
	ids := id.Unique(n, cfg.Seed+1000)
	protos := make([]*Protocol, n)
	descs := make([]peer.Descriptor, n)
	for i := 0; i < n; i++ {
		descs[i] = peer.Descriptor{ID: ids[i], Addr: net.AddNode()}
	}
	for i := 0; i < n; i++ {
		protos[i] = New(descs[i], []peer.Descriptor{descs[0]}, DefaultViewSize)
		offset := int64(i) * delta / int64(n) // stagger starts within one cycle
		if err := net.Attach(descs[i].Addr, ProtoID, protos[i], delta, offset); err != nil {
			t.Fatal(err)
		}
	}
	return net, protos
}

func TestViewInvariants(t *testing.T) {
	const n, delta = 200, 10
	net, protos := buildNetwork(t, n, simnet.Config{Seed: 3}, delta)
	net.Run(delta * 20)
	for i, p := range protos {
		view := p.View()
		if len(view) > p.ViewSize() {
			t.Fatalf("node %d view overflow: %d", i, len(view))
		}
		seen := make(map[id.ID]struct{})
		for _, d := range view {
			if d.ID == p.self.ID {
				t.Fatalf("node %d has itself in view", i)
			}
			if _, dup := seen[d.ID]; dup {
				t.Fatalf("node %d has duplicate %s", i, d)
			}
			seen[d.ID] = struct{}{}
		}
	}
}

func TestViewsFillUp(t *testing.T) {
	const n, delta = 300, 10
	net, protos := buildNetwork(t, n, simnet.Config{Seed: 5}, delta)
	net.Run(delta * 20)
	for i, p := range protos {
		if len(p.View()) < p.ViewSize() {
			t.Errorf("node %d view only %d/%d after 20 cycles", i, len(p.View()), p.ViewSize())
		}
	}
}

// TestRandomisesStarInit checks the self-healing property the paper relies
// on: starting from the degenerate everyone-knows-only-node-0 state, views
// quickly stop being dominated by node 0 and in-degrees even out.
func TestRandomisesStarInit(t *testing.T) {
	const n, delta = 400, 10
	net, protos := buildNetwork(t, n, simnet.Config{Seed: 11}, delta)
	net.Run(delta * 30)
	indeg := make(map[id.ID]int)
	for _, p := range protos {
		for _, d := range p.View() {
			indeg[d.ID]++
		}
	}
	// Node 0's in-degree must not dominate: with a converged random
	// overlay the mean in-degree is viewSize; allow generous slack.
	mean := float64(DefaultViewSize)
	if got := float64(indeg[protos[0].self.ID]); got > 10*mean {
		t.Errorf("node 0 in-degree %v still dominates (mean %v)", got, mean)
	}
	// Nearly all nodes should be represented somewhere.
	if len(indeg) < n*9/10 {
		t.Errorf("only %d/%d nodes appear in any view", len(indeg), n)
	}
}

// TestSelfHealingAfterCatastrophe reproduces the Section 3 property: after
// a massive failure (here 70% of nodes) the surviving views purge dead
// entries within a few cycles, because dead nodes stop injecting fresh
// descriptors.
func TestSelfHealingAfterCatastrophe(t *testing.T) {
	const n, delta = 500, 10
	net, protos := buildNetwork(t, n, simnet.Config{Seed: 13}, delta)
	net.Run(delta * 15) // converge first

	dead := make(map[id.ID]bool)
	for i := 0; i < n*7/10; i++ {
		dead[protos[i].self.ID] = true
		net.Kill(protos[i].self.Addr)
	}
	net.Run(delta * 45) // 30 more cycles

	var deadRefs, total int
	for i := n * 7 / 10; i < n; i++ {
		for _, d := range protos[i].View() {
			total++
			if dead[d.ID] {
				deadRefs++
			}
		}
	}
	frac := float64(deadRefs) / float64(total)
	if frac > 0.05 {
		t.Errorf("dead entries still %.1f%% of survivor views after 30 cycles", frac*100)
	}
}

func TestSampleProperties(t *testing.T) {
	const n, delta = 200, 10
	net, protos := buildNetwork(t, n, simnet.Config{Seed: 17}, delta)
	net.Run(delta * 15)
	p := protos[42]
	s := p.Sample(10)
	if len(s) != 10 {
		t.Fatalf("sample size %d, want 10", len(s))
	}
	seen := make(map[id.ID]struct{})
	for _, d := range s {
		if _, dup := seen[d.ID]; dup {
			t.Fatal("duplicate in sample")
		}
		seen[d.ID] = struct{}{}
	}
	if got := p.Sample(1000); len(got) != len(p.View()) {
		t.Errorf("oversized sample returned %d, want view size %d", len(got), len(p.View()))
	}
	if got := p.Sample(0); got != nil {
		t.Errorf("zero sample returned %v", got)
	}
}

// TestSampleApproximatelyUniform draws many single samples from one node
// over time and checks no peer is pathologically overrepresented. NEWSCAST
// samples are not perfectly i.i.d. uniform, so the bound is loose.
func TestSampleApproximatelyUniform(t *testing.T) {
	const n, delta = 150, 10
	net, protos := buildNetwork(t, n, simnet.Config{Seed: 23}, delta)
	counts := make(map[id.ID]int)
	draws := 0
	for cycle := 0; cycle < 200; cycle++ {
		net.Run(net.Now() + delta)
		for _, d := range protos[7].Sample(3) {
			counts[d.ID]++
			draws++
		}
	}
	mean := float64(draws) / float64(n-1)
	for nodeID, c := range counts {
		if float64(c) > mean*5 {
			t.Errorf("peer %s sampled %d times, mean %.1f — distribution badly skewed", nodeID, c, mean)
		}
	}
	if len(counts) < (n-1)/2 {
		t.Errorf("only %d distinct peers sampled over 200 cycles", len(counts))
	}
}

func TestMessageLossTolerated(t *testing.T) {
	const n, delta = 200, 10
	net, protos := buildNetwork(t, n, simnet.Config{Seed: 29, Drop: 0.2}, delta)
	net.Run(delta * 30)
	full := 0
	for _, p := range protos {
		if len(p.View()) == p.ViewSize() {
			full++
		}
	}
	if full < n*95/100 {
		t.Errorf("only %d/%d views full under 20%% loss", full, n)
	}
}

func TestWireSize(t *testing.T) {
	m := Message{Entries: make([]entry, 31)}
	if m.WireSize() != 31 {
		t.Errorf("WireSize = %d, want 31", m.WireSize())
	}
}

func TestNewExcludesSelfAndCapsView(t *testing.T) {
	self := peer.Descriptor{ID: 1, Addr: 0}
	boot := []peer.Descriptor{self}
	for i := 2; i <= 50; i++ {
		boot = append(boot, peer.Descriptor{ID: id.ID(i), Addr: peer.Addr(i)})
	}
	p := New(self, boot, 10)
	if len(p.View()) != 10 {
		t.Errorf("view len %d, want 10", len(p.View()))
	}
	for _, d := range p.View() {
		if d.ID == self.ID {
			t.Error("self in initial view")
		}
	}
}

// TestCostOneMessagePerCycle verifies the paper's cost property: each node
// sends one request per cycle, so total requests ~= n per cycle (plus one
// answer each when delivered).
func TestCostOneMessagePerCycle(t *testing.T) {
	const n, delta, cycles = 100, 10, 20
	net, _ := buildNetwork(t, n, simnet.Config{Seed: 31}, delta)
	net.Run(delta * cycles)
	sent := net.Stats().Sent
	// Requests: n per cycle. Answers: up to n per cycle. Allow the
	// boundary cycle slack.
	maxExpected := int64(2 * n * (cycles + 1))
	if sent > maxExpected {
		t.Errorf("sent %d messages, budget %d — protocol is too chatty", sent, maxExpected)
	}
	if sent < int64(n*cycles) {
		t.Errorf("sent %d messages, expected at least %d requests", sent, n*cycles)
	}
}
