package newscast

import (
	"testing"

	"repro/internal/id"
	"repro/internal/peer"
	"repro/internal/sampling"
	"repro/internal/simnet"
)

func TestSamplerBoundsAndDistinctness(t *testing.T) {
	const n, delta = 200, 10
	net, protos := buildNetwork(t, n, simnet.Config{Seed: 37}, delta)
	net.Run(delta * 15)
	s := NewSampler(protos[42], 1)
	got := s.Sample(10)
	if len(got) != 10 {
		t.Fatalf("sample size %d, want 10", len(got))
	}
	seen := make(map[id.ID]struct{})
	for _, d := range got {
		if _, dup := seen[d.ID]; dup {
			t.Fatal("duplicate in sample")
		}
		seen[d.ID] = struct{}{}
	}
	if got := s.Sample(1000); len(got) != len(protos[42].View()) {
		t.Errorf("oversized sample returned %d, want view size %d", len(got), len(protos[42].View()))
	}
	if got := s.Sample(0); got != nil {
		t.Errorf("zero sample returned %v", got)
	}
}

func TestSamplerAppendMatchesSample(t *testing.T) {
	const n, delta = 100, 10
	net, protos := buildNetwork(t, n, simnet.Config{Seed: 39}, delta)
	net.Run(delta * 15)
	a := NewSampler(protos[7], 123)
	b := NewSampler(protos[7], 123)
	var buf []peer.Descriptor
	for round := 0; round < 30; round++ {
		sa := a.Sample(5)
		buf = b.AppendSample(buf[:0], 5)
		for i := range sa {
			if sa[i] != buf[i] {
				t.Fatalf("round %d pos %d: Sample %v != AppendSample %v", round, i, sa[i], buf[i])
			}
		}
	}
}

// TestStatNewscastSamplerUniformity is the chi-squared quality check of the
// decentralized sampler: descriptors drawn from converged NEWSCAST views at
// n=1024 must be spread over the membership nearly as uniformly as the
// global-knowledge oracle's. NEWSCAST samples are not i.i.d. uniform —
// consecutive views overlap, so counts are overdispersed relative to the
// oracle — hence the statistic is bounded by a generous multiple of the
// oracle baseline rather than a raw chi-squared critical value, mirroring
// the loose per-peer bounds of TestSampleProperties /
// TestSampleApproximatelyUniform.
func TestStatNewscastSamplerUniformity(t *testing.T) {
	const n, delta = 1024, 10
	const observers, perDraw, cycles = 16, 3, 150
	net, protos := buildNetwork(t, n, simnet.Config{Seed: 41}, delta)
	net.Run(delta * 15) // converge first

	descs := make([]peer.Descriptor, n)
	for i, p := range protos {
		descs[i] = p.self
	}

	samplers := make([]*Sampler, observers)
	for i := range samplers {
		samplers[i] = NewSampler(protos[(i*61)%n], int64(500+i))
	}
	counts := make(map[id.ID]int, n)
	draws := 0
	for c := 0; c < cycles; c++ {
		net.Run(net.Now() + delta)
		for _, s := range samplers {
			for _, d := range s.Sample(perDraw) {
				counts[d.ID]++
				draws++
			}
		}
	}

	// Oracle baseline: the same number of draws from perfect uniform
	// sampling, same chi-squared statistic.
	oracle := sampling.NewOracle(descs, 71)
	oracleCounts := make(map[id.ID]int, n)
	for i := 0; i < draws/perDraw; i++ {
		for _, d := range oracle.Sample(perDraw) {
			oracleCounts[d.ID]++
		}
	}

	chi2 := func(counts map[id.ID]int, draws int) float64 {
		e := float64(draws) / float64(n)
		var x float64
		for _, d := range descs {
			o := float64(counts[d.ID])
			x += (o - e) * (o - e) / e
		}
		return x
	}
	ncChi, orChi := chi2(counts, draws), chi2(oracleCounts, draws)
	t.Logf("draws=%d newscast chi2=%.0f oracle chi2=%.0f (df=%d)", draws, ncChi, orChi, n-1)

	// The oracle statistic concentrates near df = n-1; NEWSCAST's view
	// correlation costs a constant factor, not an asymptotic one.
	if ncChi > 5*orChi {
		t.Errorf("newscast sampler chi2 %.0f exceeds 5x the oracle baseline %.0f", ncChi, orChi)
	}
	// Nearly every member must be reachable through gossip views.
	if len(counts) < n*9/10 {
		t.Errorf("only %d/%d members ever sampled from newscast views", len(counts), n)
	}
}
