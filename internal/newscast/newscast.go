// Package newscast implements the NEWSCAST gossip protocol, the
// instantiation of the peer sampling service used by the paper (Section 3).
//
// Each node keeps a small view of node descriptors tagged with timestamps.
// Periodically it picks a random member of its view and the two nodes
// exchange views; each keeps the freshest entries of the merged views. The
// protocol is cheap (one small message per node per interval), randomises
// non-random initial views very quickly, and self-heals after catastrophic
// failures, which is what makes it a suitable "liquid" bottom layer.
package newscast

import (
	"sort"

	"repro/internal/id"
	"repro/internal/peer"
	"repro/internal/proto"
	"repro/internal/sampling"
)

// DefaultViewSize matches the implementations described by the paper:
// messages carry approximately 30 descriptors.
const DefaultViewSize = 30

// entry is a view slot: a descriptor plus the virtual time at which the
// descriptor was (re)injected by its owner.
type entry struct {
	desc peer.Descriptor
	ts   int64
}

// Message is a NEWSCAST view exchange. Request messages ask the receiver to
// answer with its own view; answers do not.
type Message struct {
	Entries []entry
	Request bool
}

// WireSize reports the message size in descriptor units for traffic
// accounting.
func (m Message) WireSize() int { return len(m.Entries) }

// Protocol is the NEWSCAST state machine for one node. It implements
// proto.Protocol and sampling.Service: higher layers on the same node call
// Sample locally, exactly as they would call into a co-located daemon.
type Protocol struct {
	self     peer.Descriptor
	viewSize int
	view     []entry

	// lastCtx retains the node's deterministic RNG between callbacks so
	// that Sample, which is invoked by co-located higher layers outside
	// a callback, can stay deterministic.
	rng interface{ Intn(int) int }
}

var (
	_ proto.Protocol   = (*Protocol)(nil)
	_ sampling.Service = (*Protocol)(nil)
)

// New returns a NEWSCAST instance for the node with the given descriptor.
// bootstrapView seeds the initial view; it may be tiny, identical at all
// nodes, or wildly non-random — the protocol randomises it within a few
// cycles. viewSize <= 0 selects DefaultViewSize.
func New(self peer.Descriptor, bootstrapView []peer.Descriptor, viewSize int) *Protocol {
	if viewSize <= 0 {
		viewSize = DefaultViewSize
	}
	p := &Protocol{self: self, viewSize: viewSize}
	for _, d := range bootstrapView {
		if d.ID == self.ID {
			continue
		}
		p.view = append(p.view, entry{desc: d, ts: 0})
	}
	p.truncate()
	return p
}

// Init captures the node RNG.
func (p *Protocol) Init(ctx proto.Context) { p.rng = ctx.Rand() }

// Tick runs one active NEWSCAST cycle: send the view (plus a fresh self
// descriptor) to a random view member and merge the answer when it arrives.
func (p *Protocol) Tick(ctx proto.Context) {
	if len(p.view) == 0 {
		return
	}
	target := p.view[ctx.Rand().Intn(len(p.view))].desc
	ctx.Send(target.Addr, Message{Entries: p.outgoing(ctx.Now()), Request: true})
}

// Handle merges an incoming view and answers requests with the local view.
func (p *Protocol) Handle(ctx proto.Context, from peer.Addr, msg proto.Message) {
	m, ok := msg.(Message)
	if !ok {
		return
	}
	if m.Request {
		ctx.Send(from, Message{Entries: p.outgoing(ctx.Now())})
	}
	p.merge(m.Entries)
}

// ProtoID is the simnet protocol identifier conventionally used for the
// sampling layer.
const ProtoID proto.ProtoID = 1

// outgoing builds the view to send: the current view plus the node's own
// descriptor stamped with the current time.
func (p *Protocol) outgoing(now int64) []entry {
	out := make([]entry, 0, len(p.view)+1)
	out = append(out, entry{desc: p.self, ts: now})
	out = append(out, p.view...)
	return out
}

// merge folds received entries into the view, keeping for each ID the
// freshest occurrence, dropping the self entry, and truncating to the
// viewSize freshest descriptors.
func (p *Protocol) merge(received []entry) {
	best := make(map[id.ID]entry, len(p.view)+len(received))
	for _, e := range p.view {
		best[e.desc.ID] = e
	}
	for _, e := range received {
		if e.desc.ID == p.self.ID {
			continue
		}
		if cur, ok := best[e.desc.ID]; !ok || e.ts > cur.ts {
			best[e.desc.ID] = e
		}
	}
	p.view = p.view[:0]
	for _, e := range best {
		p.view = append(p.view, e)
	}
	p.truncate()
}

// truncate keeps the viewSize freshest entries, breaking timestamp ties by
// ID for determinism.
func (p *Protocol) truncate() {
	sort.Slice(p.view, func(i, j int) bool {
		if p.view[i].ts != p.view[j].ts {
			return p.view[i].ts > p.view[j].ts
		}
		return p.view[i].desc.ID < p.view[j].desc.ID
	})
	if len(p.view) > p.viewSize {
		p.view = p.view[:p.viewSize]
	}
}

// Sample returns up to n distinct random descriptors from the current view.
// It implements sampling.Service for co-located higher layers.
func (p *Protocol) Sample(n int) []peer.Descriptor {
	if n > len(p.view) {
		n = len(p.view)
	}
	if n <= 0 {
		return nil
	}
	idx := make([]int, len(p.view))
	for i := range idx {
		idx[i] = i
	}
	// Partial Fisher-Yates: only the first n positions are needed.
	for i := 0; i < n; i++ {
		j := i
		if p.rng != nil {
			j = i + p.rng.Intn(len(idx)-i)
		}
		idx[i], idx[j] = idx[j], idx[i]
	}
	out := make([]peer.Descriptor, n)
	for i := 0; i < n; i++ {
		out[i] = p.view[idx[i]].desc
	}
	return out
}

// View returns a copy of the current view descriptors, freshest first.
// Intended for tests and measurement code.
func (p *Protocol) View() []peer.Descriptor {
	out := make([]peer.Descriptor, len(p.view))
	for i, e := range p.view {
		out[i] = e.desc
	}
	return out
}

// ViewSize returns the configured view capacity.
func (p *Protocol) ViewSize() int { return p.viewSize }
