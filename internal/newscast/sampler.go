package newscast

import (
	"math/rand"

	"repro/internal/peer"
	"repro/internal/sampling"
)

// Sampler adapts a co-located Protocol's current view into a
// sampling.Service + sampling.AppendSampler for higher layers on the same
// node — the decentralized alternative to drawing from the global-knowledge
// oracle, matching the paper's deployed architecture where the bootstrap
// layer consumes whatever the gossip layer's view holds.
//
// It carries its own deterministically seeded RNG and scratch rather than
// borrowing the protocol's engine RNG: higher layers sample outside the
// gossip callbacks, and consuming the protocol's RNG there would perturb
// the gossip layer's seeded trace. Like a sampling.Stream it is a
// single-caller handle — both execution engines serialise all of one
// node's protocol callbacks, which is exactly the safety the view read
// relies on. AppendSample draws the same sequence as Sample.
type Sampler struct {
	p       *Protocol
	rng     *rand.Rand
	scratch []int
}

var (
	_ sampling.Service       = (*Sampler)(nil)
	_ sampling.AppendSampler = (*Sampler)(nil)
)

// NewSampler returns a sampler over p's live view, seeded deterministically.
func NewSampler(p *Protocol, seed int64) *Sampler {
	return &Sampler{p: p, rng: rand.New(rand.NewSource(seed))}
}

// Sample returns up to n distinct random descriptors from the protocol's
// current view.
func (s *Sampler) Sample(n int) []peer.Descriptor {
	return s.AppendSample(nil, n)
}

// AppendSample appends up to n distinct random descriptors from the
// protocol's current view to dst, allocating nothing beyond what dst (and
// a once-grown index scratch) needs.
func (s *Sampler) AppendSample(dst []peer.Descriptor, n int) []peer.Descriptor {
	view := s.p.view
	if n > len(view) {
		n = len(view)
	}
	if n <= 0 {
		return dst
	}
	idx := s.scratch
	if cap(idx) < len(view) {
		idx = make([]int, len(view))
	}
	idx = idx[:len(view)]
	for i := range idx {
		idx[i] = i
	}
	// Partial Fisher-Yates: views are small (~30 entries), so shuffling
	// the first n positions beats rejection sampling's duplicate scans.
	for i := 0; i < n; i++ {
		j := i + s.rng.Intn(len(idx)-i)
		idx[i], idx[j] = idx[j], idx[i]
		dst = append(dst, view[idx[i]].desc)
	}
	s.scratch = idx
	return dst
}
