package sampling

import (
	"math"
	"testing"

	"repro/internal/id"
	"repro/internal/peer"
)

func members(n int) []peer.Descriptor {
	out := make([]peer.Descriptor, n)
	for i := range out {
		out[i] = peer.Descriptor{ID: id.ID(i + 1), Addr: peer.Addr(i)}
	}
	return out
}

func TestOracleSampleDistinct(t *testing.T) {
	o := NewOracle(members(50), 1)
	for trial := 0; trial < 100; trial++ {
		s := o.Sample(10)
		if len(s) != 10 {
			t.Fatalf("len = %d, want 10", len(s))
		}
		seen := make(map[id.ID]struct{})
		for _, d := range s {
			if _, dup := seen[d.ID]; dup {
				t.Fatalf("duplicate %s in sample", d)
			}
			seen[d.ID] = struct{}{}
		}
	}
}

func TestOracleSampleBounds(t *testing.T) {
	o := NewOracle(members(3), 1)
	if got := o.Sample(10); len(got) != 3 {
		t.Errorf("oversized request returned %d, want 3", len(got))
	}
	if got := o.Sample(0); got != nil {
		t.Errorf("zero request returned %v", got)
	}
	if got := o.Sample(-1); got != nil {
		t.Errorf("negative request returned %v", got)
	}
	empty := NewOracle(nil, 1)
	if got := empty.Sample(5); got != nil {
		t.Errorf("empty oracle returned %v", got)
	}
}

func TestOracleUniformity(t *testing.T) {
	const n, draws = 20, 40000
	o := NewOracle(members(n), 7)
	counts := make(map[id.ID]int)
	for i := 0; i < draws; i++ {
		for _, d := range o.Sample(1) {
			counts[d.ID]++
		}
	}
	want := float64(draws) / n
	for nodeID, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.15 {
			t.Errorf("node %s drawn %d times, want ~%.0f", nodeID, c, want)
		}
	}
	if len(counts) != n {
		t.Errorf("only %d of %d members ever sampled", len(counts), n)
	}
}

func TestOracleAddRemove(t *testing.T) {
	o := NewOracle(members(5), 1)
	o.Add(peer.Descriptor{ID: 100, Addr: 99})
	o.Add(peer.Descriptor{ID: 100, Addr: 99}) // idempotent
	if o.Len() != 6 {
		t.Fatalf("len = %d, want 6", o.Len())
	}
	o.Remove(3)
	o.Remove(3) // idempotent
	if o.Len() != 5 {
		t.Fatalf("len = %d, want 5", o.Len())
	}
	// Removed member must never appear again.
	for i := 0; i < 200; i++ {
		for _, d := range o.Sample(5) {
			if d.ID == 3 {
				t.Fatal("removed member sampled")
			}
		}
	}
}

func TestOracleConcurrentAccess(t *testing.T) {
	o := NewOracle(members(100), 1)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		g := g
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 1000; i++ {
				o.Sample(5)
				if g == 0 {
					o.Add(peer.Descriptor{ID: id.ID(1000 + i), Addr: peer.Addr(i)})
				}
				if g == 1 {
					o.Remove(id.ID(1000 + i))
				}
			}
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
}

func TestFixed(t *testing.T) {
	f := Fixed(members(3))
	if got := f.Sample(2); len(got) != 2 || got[0].ID != 1 {
		t.Errorf("got %v", got)
	}
	if got := f.Sample(10); len(got) != 3 {
		t.Errorf("oversized request returned %d", len(got))
	}
}
