// Package sampling defines the peer sampling service abstraction — the
// bottom layer of the paper's architecture (Section 3) — together with an
// oracle implementation backed by global knowledge.
//
// The bootstrapping service only ever consumes this interface, so it can run
// over the gossip-based NEWSCAST implementation (package newscast) or, for
// isolating layers in experiments and tests, over the oracle.
package sampling

import (
	"math/rand"
	"sync"

	"repro/internal/id"
	"repro/internal/peer"
)

// Service provides random peer addresses from the set of participating
// nodes. Implementations must be safe for use from the node that owns them;
// the Oracle is additionally safe for concurrent use.
type Service interface {
	// Sample returns up to n distinct random peer descriptors. Fewer than
	// n are returned only when the service does not know n peers.
	Sample(n int) []peer.Descriptor
}

// AppendSampler is optionally implemented by Services that can append
// samples to a caller-provided buffer without allocating — the fast path
// the bootstrap protocol's per-tick message construction probes for.
// AppendSample must draw exactly the same sample sequence as Sample.
type AppendSampler interface {
	AppendSample(dst []peer.Descriptor, n int) []peer.Descriptor
}

// Oracle is a Service drawing uniform samples from a globally known
// membership list. It models a perfectly converged sampling layer, which is
// the paper's operating assumption for the bootstrap experiments ("we are
// given a network where the sampling service is already functional").
type Oracle struct {
	mu      sync.Mutex
	rng     *rand.Rand
	members []peer.Descriptor
	pos     map[id.ID]int
	scratch []int // drawn member indices of the in-progress sample
}

var (
	_ Service       = (*Oracle)(nil)
	_ AppendSampler = (*Oracle)(nil)
)

// NewOracle returns an Oracle over the given membership, seeded
// deterministically.
func NewOracle(members []peer.Descriptor, seed int64) *Oracle {
	o := &Oracle{
		rng: rand.New(rand.NewSource(seed)),
		pos: make(map[id.ID]int, len(members)),
	}
	o.members = make([]peer.Descriptor, len(members))
	copy(o.members, members)
	for i, m := range o.members {
		o.pos[m.ID] = i
	}
	return o
}

// Sample returns up to n distinct uniformly random members.
func (o *Oracle) Sample(n int) []peer.Descriptor {
	return o.AppendSample(nil, n)
}

// AppendSample appends up to n distinct uniformly random members to dst.
// It allocates nothing beyond what dst needs to grow, and consumes the
// oracle's RNG exactly like Sample, so the two are interchangeable without
// disturbing a seeded run.
func (o *Oracle) AppendSample(dst []peer.Descriptor, n int) []peer.Descriptor {
	o.mu.Lock()
	defer o.mu.Unlock()
	if n > len(o.members) {
		n = len(o.members)
	}
	if n <= 0 {
		return dst
	}
	// Rejection sampling with a linear duplicate scan. For the small n
	// used by the protocols (cr <= 100) relative to membership size,
	// this is cheaper than a partial Fisher-Yates and allocation-free.
	drawn := o.scratch[:0]
	for len(drawn) < n {
		i := o.rng.Intn(len(o.members))
		dup := false
		for _, j := range drawn {
			if i == j {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		drawn = append(drawn, i)
		dst = append(dst, o.members[i])
	}
	o.scratch = drawn
	return dst
}

// Add inserts a member (idempotent by ID). Used by churn models.
func (o *Oracle) Add(d peer.Descriptor) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if _, dup := o.pos[d.ID]; dup {
		return
	}
	o.pos[d.ID] = len(o.members)
	o.members = append(o.members, d)
}

// Remove deletes a member by ID, if present. Used by churn models.
func (o *Oracle) Remove(nodeID id.ID) {
	o.mu.Lock()
	defer o.mu.Unlock()
	i, ok := o.pos[nodeID]
	if !ok {
		return
	}
	last := len(o.members) - 1
	o.members[i] = o.members[last]
	o.pos[o.members[i].ID] = i
	o.members = o.members[:last]
	delete(o.pos, nodeID)
}

// Len returns the current membership size.
func (o *Oracle) Len() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.members)
}

// Fixed is a Service returning a static list, useful in unit tests.
type Fixed []peer.Descriptor

var _ Service = Fixed(nil)

// Sample returns the first n descriptors of the fixed list.
func (f Fixed) Sample(n int) []peer.Descriptor {
	if n > len(f) {
		n = len(f)
	}
	out := make([]peer.Descriptor, n)
	copy(out, f[:n])
	return out
}
