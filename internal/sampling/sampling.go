// Package sampling defines the peer sampling service abstraction — the
// bottom layer of the paper's architecture (Section 3) — together with an
// oracle implementation backed by global knowledge.
//
// The bootstrapping service only ever consumes this interface, so it can run
// over the gossip-based NEWSCAST implementation (package newscast) or, for
// isolating layers in experiments and tests, over the oracle.
//
// The oracle is structured for the concurrent (livenet) engine: the
// membership lives in an immutable snapshot behind an atomic pointer,
// mutated copy-on-write by Add/Remove, and each concurrent consumer draws
// through its own Stream — a private, deterministically seeded RNG plus
// scratch — so the per-tick sample path never takes a lock and never
// contends. The Oracle's own Sample/AppendSample methods are the shared
// default stream, serialised by a mutex for backwards compatibility; the
// deterministic simulator keeps using them so seeded traces are unchanged.
package sampling

import (
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/id"
	"repro/internal/peer"
)

// Service provides random peer addresses from the set of participating
// nodes. Implementations must be safe for use from the node that owns them;
// the Oracle is additionally safe for concurrent use.
type Service interface {
	// Sample returns up to n distinct random peer descriptors. Fewer than
	// n are returned only when the service does not know n peers.
	Sample(n int) []peer.Descriptor
}

// AppendSampler is optionally implemented by Services that can append
// samples to a caller-provided buffer without allocating — the fast path
// the bootstrap protocol's per-tick message construction probes for.
// AppendSample must draw exactly the same sample sequence as Sample.
type AppendSampler interface {
	AppendSample(dst []peer.Descriptor, n int) []peer.Descriptor
}

// Oracle is a Service drawing uniform samples from a globally known
// membership list. It models a perfectly converged sampling layer, which is
// the paper's operating assumption for the bootstrap experiments ("we are
// given a network where the sampling service is already functional").
//
// The membership is an immutable snapshot behind an atomic pointer:
// readers (samplers) load it lock-free, writers (Add/Remove) publish a
// fresh copy under a writer-only mutex. Sample/AppendSample on the Oracle
// itself draw from a shared default RNG stream guarded by a mutex — safe
// for concurrent use and sequence-identical to the pre-snapshot
// implementation for a given seed. Concurrent hot paths should draw
// through per-caller Stream handles instead, which never contend.
type Oracle struct {
	seed int64
	snap atomic.Pointer[[]peer.Descriptor]

	// wmu serialises writers only; pos locates members for Remove and
	// deduplicates Add, and is touched only under wmu.
	wmu sync.Mutex
	pos map[id.ID]int

	// def is the shared default stream behind Sample/AppendSample,
	// serialised by defMu so the Oracle itself stays safe for concurrent
	// use (harness code, tests, the single-threaded simulator).
	defMu sync.Mutex
	def   Stream
}

var (
	_ Service       = (*Oracle)(nil)
	_ AppendSampler = (*Oracle)(nil)
)

// NewOracle returns an Oracle over the given membership, seeded
// deterministically. The default stream consumes its RNG exactly like the
// historical mutexed implementation, so seeded simulator traces are
// byte-identical.
func NewOracle(members []peer.Descriptor, seed int64) *Oracle {
	o := &Oracle{
		seed: seed,
		pos:  make(map[id.ID]int, len(members)),
	}
	snap := make([]peer.Descriptor, len(members))
	copy(snap, members)
	for i, m := range snap {
		o.pos[m.ID] = i
	}
	o.snap.Store(&snap)
	o.def = Stream{o: o, rng: rand.New(rand.NewSource(seed))}
	return o
}

// members returns the current membership snapshot (never nil to callers;
// the slice must not be mutated).
func (o *Oracle) members() []peer.Descriptor {
	return *o.snap.Load()
}

// Sample returns up to n distinct uniformly random members, drawn from the
// shared default stream.
func (o *Oracle) Sample(n int) []peer.Descriptor {
	return o.AppendSample(nil, n)
}

// AppendSample appends up to n distinct uniformly random members to dst,
// drawn from the shared default stream. It allocates nothing beyond what
// dst needs to grow, and consumes the stream's RNG exactly like Sample, so
// the two are interchangeable without disturbing a seeded run.
func (o *Oracle) AppendSample(dst []peer.Descriptor, n int) []peer.Descriptor {
	o.defMu.Lock()
	defer o.defMu.Unlock()
	return o.def.AppendSample(dst, n)
}

// Stream returns a sampling handle with its own deterministic RNG stream
// and scratch, reading the shared membership snapshot lock-free. Streams
// with the same (oracle seed, key) draw identical sequences over identical
// membership histories — seed-stable — and distinct keys draw independent
// streams. A Stream is for a single caller: it must not be used from more
// than one goroutine at a time (each concurrent consumer takes its own),
// but any number of Streams may run concurrently with each other and with
// Add/Remove without contending.
func (o *Oracle) Stream(key int64) *Stream {
	// SplitMix64-style key whitening so adjacent keys land on distant
	// rand.Source states.
	mixed := int64(uint64(o.seed) ^ (0x9e3779b97f4a7c15 * (uint64(key) + 1)))
	return &Stream{o: o, rng: rand.New(rand.NewSource(mixed))}
}

// Stream is a single-caller view of an Oracle: a private RNG stream plus
// scratch over the shared lock-free membership snapshot. It implements
// Service and AppendSampler; the sample path takes no lock.
type Stream struct {
	o       *Oracle
	rng     *rand.Rand
	scratch []int // drawn member indices of the in-progress sample
}

var (
	_ Service       = (*Stream)(nil)
	_ AppendSampler = (*Stream)(nil)
)

// Sample returns up to n distinct uniformly random members.
func (s *Stream) Sample(n int) []peer.Descriptor {
	return s.AppendSample(nil, n)
}

// AppendSample appends up to n distinct uniformly random members to dst.
// It allocates nothing beyond what dst needs to grow, and consumes the
// stream's RNG exactly like Sample, so the two are interchangeable without
// disturbing a seeded sequence.
func (s *Stream) AppendSample(dst []peer.Descriptor, n int) []peer.Descriptor {
	members := s.o.members()
	if n > len(members) {
		n = len(members)
	}
	if n <= 0 {
		return dst
	}
	// Rejection sampling with a linear duplicate scan. For the small n
	// used by the protocols (cr <= 100) relative to membership size,
	// this is cheaper than a partial Fisher-Yates and allocation-free.
	drawn := s.scratch[:0]
	for len(drawn) < n {
		i := s.rng.Intn(len(members))
		dup := false
		for _, j := range drawn {
			if i == j {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		drawn = append(drawn, i)
		dst = append(dst, members[i])
	}
	s.scratch = drawn
	return dst
}

// Add inserts a member (idempotent by ID), publishing a fresh snapshot.
// Used by churn models.
func (o *Oracle) Add(d peer.Descriptor) {
	o.wmu.Lock()
	defer o.wmu.Unlock()
	if _, dup := o.pos[d.ID]; dup {
		return
	}
	cur := o.members()
	next := make([]peer.Descriptor, len(cur)+1)
	copy(next, cur)
	next[len(cur)] = d
	o.pos[d.ID] = len(cur)
	o.snap.Store(&next)
}

// Remove deletes a member by ID, if present, publishing a fresh snapshot.
// It preserves the historical swap-delete ordering (the last member moves
// into the hole), so default-stream sequences under a fixed seed are
// unchanged. Used by churn models.
func (o *Oracle) Remove(nodeID id.ID) {
	o.wmu.Lock()
	defer o.wmu.Unlock()
	i, ok := o.pos[nodeID]
	if !ok {
		return
	}
	cur := o.members()
	last := len(cur) - 1
	next := make([]peer.Descriptor, last)
	copy(next, cur[:last])
	if i < last {
		next[i] = cur[last]
		o.pos[next[i].ID] = i
	}
	delete(o.pos, nodeID)
	o.snap.Store(&next)
}

// Len returns the current membership size, lock-free.
func (o *Oracle) Len() int {
	return len(o.members())
}

// Fixed is a Service returning a static list, useful in unit tests.
type Fixed []peer.Descriptor

var _ Service = Fixed(nil)

// Sample returns the first n descriptors of the fixed list.
func (f Fixed) Sample(n int) []peer.Descriptor {
	if n > len(f) {
		n = len(f)
	}
	out := make([]peer.Descriptor, n)
	copy(out, f[:n])
	return out
}
