package sampling

import (
	"sync"
	"testing"

	"repro/internal/id"
	"repro/internal/peer"
)

// TestStreamMatchesSampleSequence extends the "AppendSample must draw
// exactly the same sequence as Sample" contract to streams: two streams
// with the same key over identical oracles must draw identical sequences
// whichever entry point is used.
func TestStreamMatchesSampleSequence(t *testing.T) {
	a := NewOracle(members(200), 77).Stream(5)
	b := NewOracle(members(200), 77).Stream(5)
	var buf []peer.Descriptor
	for round := 0; round < 50; round++ {
		sa := a.Sample(7)
		buf = b.AppendSample(buf[:0], 7)
		if len(sa) != len(buf) {
			t.Fatalf("round %d: lengths differ (%d vs %d)", round, len(sa), len(buf))
		}
		for i := range sa {
			if sa[i] != buf[i] {
				t.Fatalf("round %d pos %d: Sample drew %v, AppendSample drew %v", round, i, sa[i], buf[i])
			}
		}
	}
}

// TestStatStreamSeedStable pins seed stability: a fixed (oracle seed, key)
// pair yields a reproducible sample sequence across oracle instances, and
// distinct keys yield distinct streams.
func TestStatStreamSeedStable(t *testing.T) {
	draw := func(key int64) []peer.Descriptor {
		s := NewOracle(members(300), 13).Stream(key)
		var out []peer.Descriptor
		for i := 0; i < 40; i++ {
			out = s.AppendSample(out, 5)
		}
		return out
	}
	a, b := draw(9), draw(9)
	if len(a) != len(b) {
		t.Fatalf("replay lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pos %d: replay diverged (%v vs %v)", i, a[i], b[i])
		}
	}
	c := draw(10)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("streams with different keys drew identical sequences")
	}
}

// TestStatStreamConcurrentChurnHammer hammers AppendSample from 64
// goroutines — one private stream each — while the main goroutine churns
// the membership through Add/Remove. Run under -race this proves the
// sample path takes no lock and tears no snapshot; the assertions prove
// every draw was distinct and a member at some point of the churn history.
func TestStatStreamConcurrentChurnHammer(t *testing.T) {
	const base = 4096
	o := NewOracle(members(base), 99)
	valid := make(map[id.ID]bool, base+200)
	for _, d := range members(base) {
		valid[d.ID] = true
	}
	// Pre-declare the churn cohort so the validity set is closed before
	// the samplers start.
	for i := 0; i < 200; i++ {
		valid[id.ID(10000+i)] = true
	}

	const goroutines = 64
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		s := o.Stream(int64(g))
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var buf []peer.Descriptor
			for i := 0; i < 2000; i++ {
				buf = s.AppendSample(buf[:0], 10)
				seen := make(map[id.ID]struct{}, len(buf))
				for _, d := range buf {
					if !valid[d.ID] {
						errs <- "sampled a descriptor that was never a member"
						return
					}
					if _, dup := seen[d.ID]; dup {
						errs <- "duplicate descriptor within one sample"
						return
					}
					seen[d.ID] = struct{}{}
				}
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		for i := 0; i < 200; i++ {
			o.Add(peer.Descriptor{ID: id.ID(10000 + i), Addr: peer.Addr(20000 + i)})
			o.Remove(id.ID(i%base + 1))
		}
		close(done)
	}()
	wg.Wait()
	<-done
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
	if got := o.Len(); got != base {
		t.Fatalf("Len = %d after 200 adds and 200 removes of %d, want %d", got, base, base)
	}
}
