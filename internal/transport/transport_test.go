package transport

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/id"
	"repro/internal/peer"
	"repro/internal/proto"
)

// pinger is a minimal request/reply gossiper over core.Message: every
// tick it sends one request to a fixed-stride neighbour; every request it
// answers with one reply. The shape mirrors the bootstrap protocol's
// traffic (so pooling and retirement run the real paths) while the shared
// counters make delivery observable from the test.
type pinger struct {
	self     peer.Descriptor
	n        int
	requests *atomic.Int64 // handled requests, shared across hosts
	replies  *atomic.Int64 // handled replies
}

func (p *pinger) Init(ctx proto.Context) {}

func (p *pinger) Tick(ctx proto.Context) {
	to := peer.Addr((int(ctx.Self()) + 1 + ctx.Rand().Intn(p.n-1)) % p.n)
	m := core.NewMessage()
	m.Sender = p.self
	m.Request = true
	m.Entries = append(m.Entries, p.self)
	ctx.Send(to, m)
}

func (p *pinger) Handle(ctx proto.Context, from peer.Addr, msg proto.Message) {
	m, ok := msg.(*core.Message)
	if !ok {
		return
	}
	if !m.Request {
		p.replies.Add(1)
		return
	}
	p.requests.Add(1)
	r := core.NewMessage()
	r.Sender = p.self
	r.Request = false
	ctx.Send(from, r)
}

// cluster spins up the networks of a campaign inside one test process —
// one Network per simulated OS process — with a pinger on every host.
type cluster struct {
	nets     []*Network
	requests atomic.Int64
	replies  atomic.Int64
}

func newCluster(t *testing.T, cfg Config, period time.Duration) *cluster {
	t.Helper()
	cfg = cfg.withDefaults()
	c := &cluster{}
	ids := id.Unique(cfg.N, cfg.Seed+0x11)
	for p := 0; p < cfg.Procs; p++ {
		pc := cfg
		pc.Proc = p
		n, err := New(pc)
		if err != nil {
			t.Fatal(err)
		}
		for _, h := range n.LocalHosts() {
			pg := &pinger{
				self:     peer.Descriptor{ID: ids[h.Addr()], Addr: h.Addr()},
				n:        cfg.N,
				requests: &c.requests,
				replies:  &c.replies,
			}
			if err := h.Attach(core.ProtoID, pg, period, time.Duration(int(h.Addr()))*period/time.Duration(cfg.N)); err != nil {
				t.Fatal(err)
			}
		}
		c.nets = append(c.nets, n)
	}
	return c
}

func (c *cluster) start(t *testing.T) {
	t.Helper()
	for _, n := range c.nets {
		if err := n.Start(); err != nil {
			t.Fatal(err)
		}
	}
}

// settle runs the quiesce protocol across every process and returns the
// summed stats.
func (c *cluster) settle(t *testing.T) Stats {
	t.Helper()
	for _, n := range c.nets {
		n.StopTicks()
	}
	// Quiescence is global: a process is only settled once its peers have
	// stopped producing too, so poll the sum.
	deadline := time.Now().Add(10 * time.Second)
	var prev Stats
	stable := 0
	for time.Now().Before(deadline) && stable < 5 {
		time.Sleep(20 * time.Millisecond)
		cur := c.sum()
		pending := int64(0)
		for _, n := range c.nets {
			pending += n.inflight.Load()
		}
		if cur == prev && pending == 0 {
			stable++
		} else {
			stable = 0
		}
		prev = cur
	}
	if stable < 5 {
		t.Fatalf("cluster did not quiesce: %+v", prev)
	}
	return prev
}

func (c *cluster) sum() Stats {
	var st Stats
	for _, n := range c.nets {
		st.Add(n.Snapshot())
	}
	return st
}

func (c *cluster) close() {
	for _, n := range c.nets {
		n.Close()
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func conserved(t *testing.T, st Stats) {
	t.Helper()
	if st.Sent != st.Delivered+st.Dropped+st.Overflow {
		t.Fatalf("conservation violated: Sent=%d Delivered=%d Dropped=%d Overflow=%d (diff %d)",
			st.Sent, st.Delivered, st.Dropped, st.Overflow,
			st.Sent-st.Delivered-st.Dropped-st.Overflow)
	}
}

func TestTransportDelivery(t *testing.T) {
	c := newCluster(t, Config{Seed: 1, N: 4, Procs: 1, BasePort: 19310}, 10*time.Millisecond)
	defer c.close()
	c.start(t)
	waitFor(t, 5*time.Second, func() bool {
		return c.requests.Load() >= 20 && c.replies.Load() >= 20
	}, "request/reply traffic over loopback TCP")
	st := c.settle(t)
	conserved(t, st)
	if st.Delivered == 0 {
		t.Fatal("no deliveries counted")
	}
	c.close()
	conserved(t, c.sum())
}

func TestTransportTwoProcs(t *testing.T) {
	c := newCluster(t, Config{Seed: 2, N: 8, Procs: 2, BasePort: 19320}, 10*time.Millisecond)
	defer c.close()
	c.start(t)
	waitFor(t, 5*time.Second, func() bool { return c.requests.Load() >= 50 }, "cross-process traffic")
	// Per-process stats must show both sides participating.
	for p, n := range c.nets {
		if st := n.Snapshot(); st.Sent == 0 || st.Delivered == 0 {
			t.Fatalf("proc %d idle: %+v", p, st)
		}
	}
	st := c.settle(t)
	conserved(t, st)
}

// TestTransportConservationUnderStress forces every outcome bucket at
// once — loss model, dead hosts, and inbox/queue overflow — and checks
// the conservation law over the summed counters at quiescence.
func TestTransportConservationUnderStress(t *testing.T) {
	cfg := Config{Seed: 3, N: 16, Procs: 2, BasePort: 19330, InboxSize: 2, QueueSize: 8, Drop: 0.2}
	c := newCluster(t, cfg, 2*time.Millisecond)
	defer c.close()
	c.start(t)
	waitFor(t, 5*time.Second, func() bool { return c.sum().Sent >= 2000 }, "stress traffic")

	// Kill a host on each process mid-flight, let traffic target it, then
	// respawn it.
	var victims []*Host
	for _, n := range c.nets {
		victims = append(victims, n.LocalHosts()[0])
	}
	for _, h := range victims {
		h.Kill()
	}
	time.Sleep(50 * time.Millisecond)
	for _, h := range victims {
		if err := h.Respawn(); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(50 * time.Millisecond)

	st := c.settle(t)
	conserved(t, st)
	if st.Dropped == 0 {
		t.Error("loss model injected no drops")
	}
	for _, h := range victims {
		if got := h.Stats().Incarnations; got != 2 {
			t.Errorf("victim incarnations = %d, want 2", got)
		}
	}
	c.close()
	conserved(t, c.sum())
}

// TestTransportReconnectBackoff starts the second process only after the
// first has been dialing (and backing off) for a while: queued frames
// must survive the down window and deliver once the peer comes up.
func TestTransportReconnectBackoff(t *testing.T) {
	cfg := Config{Seed: 4, N: 4, Procs: 2, BasePort: 19340, MaxBackoff: 100 * time.Millisecond}
	cfg = cfg.withDefaults()
	ids := id.Unique(cfg.N, cfg.Seed+0x11)
	var handled atomic.Int64

	mk := func(proc int) *Network {
		pc := cfg
		pc.Proc = proc
		n, err := New(pc)
		if err != nil {
			t.Fatal(err)
		}
		for _, h := range n.LocalHosts() {
			pg := &pinger{
				self:     peer.Descriptor{ID: ids[h.Addr()], Addr: h.Addr()},
				n:        cfg.N,
				requests: &handled,
				replies:  &handled,
			}
			if err := h.Attach(core.ProtoID, pg, 10*time.Millisecond, 0); err != nil {
				t.Fatal(err)
			}
		}
		return n
	}

	n0 := mk(0)
	defer n0.Close()
	if err := n0.Start(); err != nil {
		t.Fatal(err)
	}
	// Let proc 0 send into the void: its writer to proc 1 dials, fails,
	// and backs off with frames queued.
	time.Sleep(250 * time.Millisecond)
	if st := n0.Snapshot(); st.Sent == 0 {
		t.Fatal("proc 0 sent nothing during the down window")
	}

	n1 := mk(1)
	defer n1.Close()
	if err := n1.Start(); err != nil {
		t.Fatal(err)
	}
	before := n1.Snapshot().Delivered
	waitFor(t, 5*time.Second, func() bool { return n1.Snapshot().Delivered > before }, "delivery after reconnect")
}

func TestTransportUDP(t *testing.T) {
	c := newCluster(t, Config{Seed: 5, N: 4, Procs: 2, BasePort: 19350, UDP: true}, 10*time.Millisecond)
	defer c.close()
	c.start(t)
	// UDP offers no conservation guarantee; assert the data plane works.
	waitFor(t, 5*time.Second, func() bool { return c.requests.Load() >= 20 }, "datagram traffic")
}

func TestTransportPauseResume(t *testing.T) {
	c := newCluster(t, Config{Seed: 6, N: 4, Procs: 1, BasePort: 19360}, 5*time.Millisecond)
	defer c.close()
	c.start(t)
	waitFor(t, 5*time.Second, func() bool { return c.requests.Load() >= 10 }, "initial traffic")

	for _, n := range c.nets {
		n.PauseAll()
	}
	paused := c.requests.Load() + c.replies.Load()
	time.Sleep(100 * time.Millisecond)
	if got := c.requests.Load() + c.replies.Load(); got != paused {
		t.Fatalf("handlers ran while paused: %d -> %d", paused, got)
	}
	for _, n := range c.nets {
		n.ResumeAll()
	}
	waitFor(t, 5*time.Second, func() bool {
		return c.requests.Load()+c.replies.Load() > paused
	}, "traffic after resume")
}

// TestTransportLoopbackShortcut pins the engine contract for payloads the
// wire codec cannot carry: process-local deliveries hand the pointer over
// directly (and still honour the Recyclable retirement), remote ones
// panic.
type fakeMsg struct{ recycles *atomic.Int64 }

func (f *fakeMsg) Recycle() { f.recycles.Add(1) }

type fakeSender struct {
	to  peer.Addr
	msg proto.Message
}

func (f *fakeSender) Init(ctx proto.Context) { ctx.Send(f.to, f.msg) }
func (f *fakeSender) Tick(ctx proto.Context) {}
func (f *fakeSender) Handle(ctx proto.Context, from peer.Addr, msg proto.Message) {
}

func TestTransportLoopbackShortcut(t *testing.T) {
	n, err := New(Config{Seed: 7, N: 2, Procs: 1, BasePort: 19370})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	var recycles atomic.Int64
	hosts := n.LocalHosts()
	sender := &fakeSender{to: hosts[1].Addr(), msg: &fakeMsg{recycles: &recycles}}
	if err := hosts[0].Attach(core.ProtoID, sender, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := hosts[1].Attach(core.ProtoID, &pinger{n: 2, requests: new(atomic.Int64), replies: new(atomic.Int64)}, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := n.Start(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return recycles.Load() == 1 }, "local non-wire payload retired exactly once")
	st := n.Snapshot()
	if st.Sent != 1 || st.Delivered != 1 {
		t.Fatalf("loopback accounting: %+v", st)
	}
}
