// Package transport is the third protocol engine: real sockets. Where
// simnet interleaves events deterministically and livenet hands pointers
// between goroutines, transport serialises every protocol message through
// the internal/wire codec and carries it over the kernel's network stack —
// TCP streams by default, UDP datagrams optionally — so serialization
// cost, kernel backpressure, and real partial failure are measured rather
// than modeled.
//
// Topology is the coinkit-style port-indexed localhost shape: a campaign
// of N hosts is sharded across Procs OS processes; process p listens on
// BasePort+p and owns every host whose address satisfies addr % Procs ==
// p. Each process runs one peer loop per destination process (including
// itself — local traffic traverses the same loopback sockets, so every
// message pays the full encode/kernel/decode path) with dial-on-demand, a
// versioned handshake, bounded send queues, and reconnect under capped
// exponential backoff.
//
// The host model mirrors livenet exactly — one goroutine per host, a
// bounded inbox, Attach/Kill/Respawn/Pause/Resume, per-binding tick
// coalescing — so the experiment harness drives all three engines through
// the same motions. Determinism is necessarily weaker here: the kernel
// schedules packets, so only statistical convergence trends are
// reproducible (asserted by the cross-engine equivalence tests), not
// message interleavings.
//
// Accounting mirrors livenet's conservation law. Every send is counted
// Sent and lands in exactly one outcome bucket: Delivered (dispatched to
// a protocol on the destination process), Overflow (bounced off a full
// send queue or a full destination inbox), or Dropped (sender-side fault
// model, dead/unknown destination, write failure, or shutdown drain).
// Sends and outcomes are counted on different processes, so the law
//
//	ΣSent == ΣDelivered + ΣDropped + ΣOverflow
//
// holds for the sum over all processes, at quiescence (StopTicks +
// Quiesce, no connection failures during the drain); cmd/netsim checks it
// at the end of every campaign. UDP mode relaxes this: datagrams the
// kernel sheds vanish uncounted, which is exactly the difference between
// the two socket types worth measuring.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/peer"
	"repro/internal/proto"
	"repro/internal/wire"
)

// Config parameterises one process's shard of the campaign network.
type Config struct {
	// Seed drives the per-host RNGs and the sender-side fault model.
	Seed int64
	// N is the total number of hosts across all processes.
	N int
	// Procs is the number of processes the campaign is sharded over;
	// zero selects 1 (single-process, still over real loopback sockets).
	Procs int
	// Proc is this process's shard index in [0, Procs).
	Proc int
	// BasePort indexes the localhost topology: process p listens on
	// BasePort+p.
	BasePort int
	// InboxSize bounds each host's message queue (zero selects 256).
	InboxSize int
	// QueueSize bounds each peer loop's send queue (zero selects 1024).
	// A full queue maps the kernel's backpressure into Overflow: when a
	// destination process reads slower than we send, its TCP window
	// closes, our writer stalls, the queue fills, and further sends
	// overflow instead of blocking the protocol callback.
	QueueSize int
	// Drop is the sender-side per-message loss probability — the same
	// injected fault model the other engines expose, applied before a
	// frame reaches the socket so scenarios stay engine-portable.
	Drop float64
	// UDP selects datagram sockets for the data plane: no handshake, no
	// reconnect, no delivery guarantee — conservation becomes a lower
	// bound rather than an equality.
	UDP bool
	// DialTimeout bounds one dial attempt (zero selects 2s).
	DialTimeout time.Duration
	// MaxBackoff caps the reconnect backoff (zero selects 2s).
	MaxBackoff time.Duration
}

func (cfg Config) withDefaults() Config {
	if cfg.Procs <= 0 {
		cfg.Procs = 1
	}
	if cfg.InboxSize <= 0 {
		cfg.InboxSize = 256
	}
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 1024
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 2 * time.Second
	}
	return cfg
}

// Validate checks the shard configuration.
func (cfg Config) Validate() error {
	c := cfg.withDefaults()
	if c.N < 1 {
		return errors.New("transport: N must be positive")
	}
	if c.Proc < 0 || c.Proc >= c.Procs {
		return fmt.Errorf("transport: Proc %d out of [0, %d)", c.Proc, c.Procs)
	}
	if c.BasePort <= 0 || c.BasePort+c.Procs > 65536 {
		return fmt.Errorf("transport: BasePort %d leaves no room for %d process ports", c.BasePort, c.Procs)
	}
	if c.Drop < 0 || c.Drop >= 1 {
		return fmt.Errorf("transport: Drop = %v out of [0, 1)", c.Drop)
	}
	return nil
}

// Stats is a snapshot of this process's traffic counters; see the package
// comment for the cross-process conservation law.
type Stats struct {
	Sent      int64
	Dropped   int64
	Delivered int64
	Overflow  int64
}

// Add accumulates another process's counters (used by campaign drivers).
func (s *Stats) Add(o Stats) {
	s.Sent += o.Sent
	s.Dropped += o.Dropped
	s.Delivered += o.Delivered
	s.Overflow += o.Overflow
}

// HostStats is a per-host traffic snapshot, mirroring livenet.HostStats.
type HostStats struct {
	Delivered    int64
	Overflow     int64
	Ticks        int64
	Incarnations int64
}

// partitionFunc is a cut predicate; see SetPartition.
type partitionFunc func(from, to peer.Addr) bool

// handshake framing: magic, wire version, and the dialing process index.
var handshakeMagic = [4]byte{'R', 'P', 'W', wire.Version}

const handshakeLen = 4 + 4 // magic + uint32 proc

// ErrClosed is returned by Start and Respawn after Close.
var ErrClosed = errors.New("transport: network closed")

// Network is one process's shard: the local hosts, the listener they
// receive through, and one peer loop per destination process.
type Network struct {
	cfg   Config
	mu    sync.Mutex
	rng   *rand.Rand // guarded by mu: host seeding
	hosts []*Host    // index = global addr; nil for non-local shards
	local []*Host    // the non-nil subset, in addr order
	peers []*peerLoop
	wg    sync.WaitGroup
	stop  chan struct{}

	listener net.Listener
	udp      *net.UDPConn
	conns    map[net.Conn]struct{} // guarded by mu: inbound conns for teardown

	closed    atomic.Bool
	closing   bool // guarded by mu: no wg.Add once set
	started   atomic.Bool
	start     time.Time
	noTicks   atomic.Bool // StopTicks: quiesce the tick sources
	dropBits  atomic.Uint64
	partition atomic.Pointer[partitionFunc]

	// inflight counts frames accepted into a send queue but not yet
	// handed to the kernel (or dropped); Quiesce requires it to reach
	// zero before trusting counter stability.
	inflight atomic.Int64

	sent, dropped, delivered, overflow atomic.Int64
}

// New builds the shard: every local host (addr % Procs == Proc) is
// allocated, ready for Attach; call Start to bind the sockets and run.
func New(cfg Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	n := &Network{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		hosts: make([]*Host, cfg.N),
		peers: make([]*peerLoop, cfg.Procs),
		stop:  make(chan struct{}),
		conns: make(map[net.Conn]struct{}),
	}
	n.dropBits.Store(math.Float64bits(cfg.Drop))
	for addr := 0; addr < cfg.N; addr++ {
		// Host RNG seeds are drawn in global addr order from the shared
		// seed so a host's seed does not depend on the process count —
		// skipping the draws of non-local hosts keeps the stream aligned.
		seed1, seed2 := n.rng.Int63(), n.rng.Int63()
		if addr%cfg.Procs != cfg.Proc {
			continue
		}
		h := &Host{
			net:     n,
			addr:    peer.Addr(addr),
			inbox:   make(chan command, cfg.InboxSize),
			rng:     rand.New(rand.NewSource(seed1)),
			sendRNG: rand.New(rand.NewSource(seed2)),
			ctrl:    make(chan ctrlMsg),
			inc:     newIncarnation(),
		}
		n.hosts[addr] = h
		n.local = append(n.local, h)
	}
	for p := 0; p < cfg.Procs; p++ {
		n.peers[p] = &peerLoop{
			net:   n,
			proc:  p,
			addr:  fmt.Sprintf("127.0.0.1:%d", cfg.BasePort+p),
			queue: make(chan *[]byte, cfg.QueueSize),
		}
	}
	return n, nil
}

// LocalHosts returns this process's hosts in global-address order. Attach
// protocols to them before Start.
func (n *Network) LocalHosts() []*Host { return n.local }

// Local reports whether addr is owned by this process.
func (n *Network) Local(addr peer.Addr) bool {
	return int(addr) >= 0 && int(addr) < n.cfg.N && int(addr)%n.cfg.Procs == n.cfg.Proc
}

// SetDrop changes the sender-side loss probability at runtime.
func (n *Network) SetDrop(p float64) { n.dropBits.Store(math.Float64bits(p)) }

// SetPartition installs a cut predicate applied on the sender: messages
// for which fn(from, to) reports true are dropped before reaching the
// socket. Every process of a campaign must install the same predicate for
// a coherent global partition. Passing nil heals the cut.
func (n *Network) SetPartition(fn func(from, to peer.Addr) bool) {
	if fn == nil {
		n.partition.Store(nil)
		return
	}
	pf := partitionFunc(fn)
	n.partition.Store(&pf)
}

// StopTicks stops every tick source without touching the hosts: queued
// and in-flight traffic keeps flowing and replies are still generated,
// but no new gossip rounds start. It is the first step of the quiesce
// protocol (see Quiesce) and is irreversible for the network's lifetime.
func (n *Network) StopTicks() { n.noTicks.Store(true) }

// Quiesce waits for this process's traffic to settle: no frames pending
// in send queues and the counters unchanged across several consecutive
// polls. Call StopTicks first (on every process of the campaign); with
// tick sources stopped the bootstrap protocol generates at most one reply
// per in-flight request, so traffic drains in bounded hops. Returns false
// on timeout.
func (n *Network) Quiesce(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	const needStable = 5
	stable := 0
	prev := n.readStats()
	for time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
		cur := n.readStats()
		if n.inflight.Load() == 0 && cur == prev {
			if stable++; stable >= needStable {
				return true
			}
		} else {
			stable = 0
		}
		prev = cur
	}
	return false
}

// command is one unit of work for a host goroutine.
type command struct {
	tick *binding
	from peer.Addr
	pid  proto.ProtoID
	msg  proto.Message
}

// binding mirrors livenet.binding: one (protocol, schedule) pair in the
// host's pid-sorted value slice, sealed at Start. tickQueued coalesces
// ticks exactly as livenet does (see that package for why it is a bare
// uint32 rather than atomic.Bool).
type binding struct {
	pid        proto.ProtoID
	p          proto.Protocol
	period     time.Duration
	offset     time.Duration
	tickQueued uint32
}

type incarnation struct {
	down     chan struct{}
	downOnce sync.Once
	exited   chan struct{}
	running  bool // guarded by Host.mu
}

func newIncarnation() *incarnation {
	return &incarnation{down: make(chan struct{}), exited: make(chan struct{})}
}

func (inc *incarnation) kill() { inc.downOnce.Do(func() { close(inc.down) }) }

func (inc *incarnation) dead() bool {
	select {
	case <-inc.down:
		return true
	default:
		return false
	}
}

type ctrlMsg struct {
	pause bool
	ack   chan struct{}
}

// Host is one node of the campaign owned by this process. All protocol
// callbacks run on the host's single goroutine.
type Host struct {
	net     *Network
	addr    peer.Addr
	inbox   chan command
	rng     *rand.Rand
	sendRNG *rand.Rand
	// bindings is pid-sorted and sealed at Network.Start.
	bindings []binding
	ctrl     chan ctrlMsg

	mu  sync.Mutex
	inc *incarnation

	delivered, overflow, ticks, incarnations atomic.Int64
}

// Addr returns the host's global address.
func (h *Host) Addr() peer.Addr { return h.addr }

// Stats returns the host's per-host counters.
func (h *Host) Stats() HostStats {
	return HostStats{
		Delivered:    h.delivered.Load(),
		Overflow:     h.overflow.Load(),
		Ticks:        h.ticks.Load(),
		Incarnations: h.incarnations.Load(),
	}
}

// hostContext implements proto.Context for transport callbacks.
type hostContext struct {
	h   *Host
	pid proto.ProtoID
}

var _ proto.Context = hostContext{}

func (c hostContext) Self() peer.Addr  { return c.h.addr }
func (c hostContext) Now() int64       { return time.Since(c.h.net.start).Milliseconds() }
func (c hostContext) Rand() *rand.Rand { return c.h.rng }
func (c hostContext) Send(to peer.Addr, msg proto.Message) {
	c.h.net.send(c.h, to, c.pid, msg)
}

// Attach binds a protocol to the host; must precede Network.Start.
func (h *Host) Attach(pid proto.ProtoID, p proto.Protocol, period, offset time.Duration) error {
	if h.find(pid) != nil {
		return fmt.Errorf("transport attach: protocol %d already bound at host %d", pid, h.addr)
	}
	h.bindings = append(h.bindings, binding{pid: pid, p: p, period: period, offset: offset})
	for i := len(h.bindings) - 1; i > 0 && h.bindings[i].pid < h.bindings[i-1].pid; i-- {
		h.bindings[i], h.bindings[i-1] = h.bindings[i-1], h.bindings[i]
	}
	return nil
}

func (h *Host) find(pid proto.ProtoID) *binding {
	for i := range h.bindings {
		if h.bindings[i].pid == pid {
			return &h.bindings[i]
		}
	}
	return nil
}

// Kill crashes the host (see livenet.Host.Kill — identical semantics:
// waits for the goroutine, drains the inbox as dropped, survives racing
// Respawns).
func (h *Host) Kill() {
	for {
		h.mu.Lock()
		inc := h.inc
		h.mu.Unlock()
		inc.kill()
		h.mu.Lock()
		running := inc.running
		h.mu.Unlock()
		if running {
			<-inc.exited
		}
		h.drainInbox()
		h.mu.Lock()
		same := h.inc == inc
		h.mu.Unlock()
		if same {
			return
		}
	}
}

// Stopped reports whether the host's current incarnation has been killed.
func (h *Host) Stopped() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.inc.dead()
}

func (h *Host) drainInbox() {
	for {
		select {
		case cmd := <-h.inbox:
			if cmd.tick != nil {
				atomic.StoreUint32(&cmd.tick.tickQueued, 0)
			} else {
				h.net.dropped.Add(1)
				recycle(cmd.msg)
			}
		default:
			return
		}
	}
}

// recycle retires a message exactly once (see proto.Recyclable).
func recycle(m proto.Message) {
	if r, ok := m.(proto.Recyclable); ok {
		r.Recycle()
	}
}

// Respawn restarts a killed host with its protocol state intact (the
// crash-recovery model; see livenet.Host.Respawn).
func (h *Host) Respawn() error {
	n := h.net
	for {
		if n.closed.Load() {
			return ErrClosed
		}
		h.mu.Lock()
		inc := h.inc
		running := inc.running
		h.mu.Unlock()
		if !inc.dead() {
			return nil
		}
		if running {
			<-inc.exited
		}
		h.drainInbox()
		n.mu.Lock()
		if n.closing {
			n.mu.Unlock()
			return ErrClosed
		}
		h.mu.Lock()
		if h.inc != inc {
			h.mu.Unlock()
			n.mu.Unlock()
			continue
		}
		fresh := newIncarnation()
		h.inc = fresh
		launch := n.started.Load()
		if launch {
			fresh.running = true
			n.wg.Add(1)
		}
		h.mu.Unlock()
		n.mu.Unlock()
		if launch {
			go h.run(fresh)
		}
		return nil
	}
}

// Pause freezes the host between callbacks until Resume; see
// livenet.Host.Pause for the handshake contract.
func (h *Host) Pause() bool { return h.control(true) }

// Resume unfreezes a paused host.
func (h *Host) Resume() bool { return h.control(false) }

func (h *Host) control(pause bool) bool {
	c := ctrlMsg{pause: pause, ack: make(chan struct{})}
	for {
		h.mu.Lock()
		inc := h.inc
		running := inc.running
		h.mu.Unlock()
		if !running || inc.dead() {
			return false
		}
		select {
		case h.ctrl <- c:
			<-c.ack
			return true
		case <-inc.exited:
		case <-h.net.stop:
			return false
		}
	}
}

// Start binds the listener, launches the accept loop, the peer writers,
// and every live host goroutine.
func (n *Network) Start() error {
	if n.closed.Load() {
		return ErrClosed
	}
	n.mu.Lock()
	if n.closing {
		n.mu.Unlock()
		return ErrClosed
	}
	if n.started.Load() {
		n.mu.Unlock()
		return errors.New("transport: network already started")
	}
	bind := fmt.Sprintf("127.0.0.1:%d", n.cfg.BasePort+n.cfg.Proc)
	if n.cfg.UDP {
		uaddr, err := net.ResolveUDPAddr("udp", bind)
		if err != nil {
			n.mu.Unlock()
			return err
		}
		conn, err := net.ListenUDP("udp", uaddr)
		if err != nil {
			n.mu.Unlock()
			return fmt.Errorf("transport: bind %s: %w", bind, err)
		}
		n.udp = conn
		n.wg.Add(1)
		go n.readUDP(conn)
	} else {
		l, err := net.Listen("tcp", bind)
		if err != nil {
			n.mu.Unlock()
			return fmt.Errorf("transport: bind %s: %w", bind, err)
		}
		n.listener = l
		n.wg.Add(1)
		go n.acceptLoop(l)
	}
	n.start = time.Now()
	n.started.Store(true)
	for _, p := range n.peers {
		n.wg.Add(1)
		go p.run()
	}
	// Launch hosts under mu: every wg.Add must be ordered before a
	// concurrent Close sets closing and waits.
	for _, h := range n.local {
		h.mu.Lock()
		inc := h.inc
		if inc.dead() || inc.running {
			h.mu.Unlock()
			continue
		}
		inc.running = true
		n.wg.Add(1)
		h.mu.Unlock()
		go h.run(inc)
	}
	n.mu.Unlock()
	return nil
}

// run is the host main loop for one incarnation; structurally identical
// to livenet.Host.run.
func (h *Host) run(inc *incarnation) {
	defer h.net.wg.Done()
	defer close(inc.exited)
	h.incarnations.Add(1)
	inits := make(chan *binding, len(h.bindings))
	var timers []*time.Timer
	var tickers []*time.Ticker
	for i := range h.bindings {
		b := &h.bindings[i]
		timers = append(timers, time.AfterFunc(b.offset, func() {
			select {
			case inits <- b:
			case <-h.net.stop:
			case <-inc.down:
			}
		}))
	}
	defer func() {
		for _, t := range timers {
			t.Stop()
		}
		for _, t := range tickers {
			t.Stop()
		}
	}()
	for {
		select {
		case <-h.net.stop:
			return
		case <-inc.down:
			return
		case c := <-h.ctrl:
			close(c.ack)
			if c.pause {
				if !h.parked(inc) {
					return
				}
			}
		case b := <-inits:
			if !h.net.noTicks.Load() {
				b.p.Init(hostContext{h: h, pid: b.pid})
			}
			if b.period > 0 {
				ticker := time.NewTicker(b.period)
				tickers = append(tickers, ticker)
				go h.forwardTicks(ticker, b, inc)
			}
		case cmd := <-h.inbox:
			h.dispatch(cmd)
		}
	}
}

func (h *Host) parked(inc *incarnation) bool {
	for {
		select {
		case c := <-h.ctrl:
			close(c.ack)
			if !c.pause {
				return true
			}
		case <-inc.down:
			return false
		case <-h.net.stop:
			return false
		}
	}
}

func (h *Host) forwardTicks(t *time.Ticker, b *binding, inc *incarnation) {
	for {
		select {
		case <-h.net.stop:
			return
		case <-inc.down:
			return
		case <-t.C:
			if h.net.noTicks.Load() {
				continue // quiescing: stop feeding new gossip rounds
			}
			if !atomic.CompareAndSwapUint32(&b.tickQueued, 0, 1) {
				continue
			}
			select {
			case h.inbox <- command{tick: b}:
			case <-h.net.stop:
				atomic.StoreUint32(&b.tickQueued, 0)
				return
			case <-inc.down:
				atomic.StoreUint32(&b.tickQueued, 0)
				return
			default:
				atomic.StoreUint32(&b.tickQueued, 0)
			}
		}
	}
}

func (h *Host) dispatch(cmd command) {
	if cmd.tick != nil {
		atomic.StoreUint32(&cmd.tick.tickQueued, 0)
		if h.net.noTicks.Load() {
			return
		}
		h.ticks.Add(1)
		cmd.tick.p.Tick(hostContext{h: h, pid: cmd.tick.pid})
		return
	}
	b := h.find(cmd.pid)
	if b == nil {
		h.net.dropped.Add(1)
		recycle(cmd.msg)
		return
	}
	h.net.delivered.Add(1)
	h.delivered.Add(1)
	b.p.Handle(hostContext{h: h, pid: cmd.pid}, cmd.from, cmd.msg)
	recycle(cmd.msg)
}

// frameBufPool recycles encode buffers; pointers-to-slices so Put/Get do
// not allocate a header per frame.
var frameBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 512); return &b }}

// send applies the fault model, serialises the message, and enqueues the
// frame on the destination process's peer loop. Serialisation is the
// sending side's retirement point: once the bytes are built the message
// is recycled — the receiving process decodes into its own pooled
// message, so the two sides never share storage (they may not even share
// an address space).
//
// Payload types the wire codec does not understand take the loopback
// shortcut when the destination is process-local (direct inbox delivery,
// pointer handoff as under livenet) and panic when it is not: shipping an
// unserialisable payload across processes is an engine-contract violation,
// not a runtime condition.
func (n *Network) send(from *Host, to peer.Addr, pid proto.ProtoID, msg proto.Message) {
	n.sent.Add(1)
	rng := from.sendRNG
	dropP := math.Float64frombits(n.dropBits.Load())
	drop := dropP > 0 && rng.Float64() < dropP
	if !drop {
		if cut := n.partition.Load(); cut != nil && (*cut)(from.addr, to) {
			drop = true
		}
	}
	if drop || int(to) < 0 || int(to) >= n.cfg.N {
		n.dropped.Add(1)
		recycle(msg)
		return
	}
	m, ok := msg.(*core.Message)
	if !ok {
		if !n.Local(to) {
			panic(fmt.Sprintf("transport: payload %T has no wire encoding and host %d is remote", msg, to))
		}
		n.deliver(n.hosts[to], command{from: from.addr, pid: pid, msg: msg})
		return
	}
	bufp := frameBufPool.Get().(*[]byte)
	*bufp = wire.AppendFrame((*bufp)[:0], wire.Envelope{From: from.addr, To: to, Pid: pid}, m)
	recycle(m)
	p := n.peers[int(to)%n.cfg.Procs]
	n.inflight.Add(1)
	select {
	case p.queue <- bufp:
	default:
		// Send queue full: the destination process is reading slower
		// than we produce — kernel backpressure surfaced as Overflow.
		n.inflight.Add(-1)
		n.overflow.Add(1)
		releaseFrame(bufp)
	}
}

func releaseFrame(bufp *[]byte) { frameBufPool.Put(bufp) }

// deliver places a decoded command in the destination inbox with
// livenet's exact outcome taxonomy: room → delivered later by dispatch;
// full+dead → Dropped; full+live → Overflow.
func (n *Network) deliver(dst *Host, cmd command) {
	select {
	case dst.inbox <- cmd:
	case <-n.stop:
		n.dropped.Add(1)
		recycle(cmd.msg)
	default:
		if dst.Stopped() {
			n.dropped.Add(1)
			recycle(cmd.msg)
			return
		}
		n.overflow.Add(1)
		dst.overflow.Add(1)
		recycle(cmd.msg)
	}
}

// route dispatches one decoded frame to its local host; non-local or
// unknown destinations are dropped (they were counted Sent by the peer).
func (n *Network) route(env wire.Envelope, m *core.Message) {
	if !n.Local(env.To) {
		n.dropped.Add(1)
		m.Recycle()
		return
	}
	n.deliver(n.hosts[env.To], command{from: env.From, pid: env.Pid, msg: m})
}

// peerLoop is the sending side of one process-to-process link: a bounded
// frame queue drained by a writer goroutine that dials on demand and
// reconnects under capped exponential backoff.
type peerLoop struct {
	net   *Network
	proc  int
	addr  string
	queue chan *[]byte
}

const initialBackoff = 20 * time.Millisecond

// run is the writer goroutine. Each frame is written (and flushed — the
// write syscall hands it to the kernel) before the next is pulled; a
// write error closes the connection, counts the frame as dropped, and
// re-dials with backoff. Frames stranded at shutdown drain as dropped.
func (p *peerLoop) run() {
	n := p.net
	defer n.wg.Done()
	var conn net.Conn
	defer func() {
		if conn != nil {
			conn.Close()
		}
		p.drain()
	}()
	for {
		var bufp *[]byte
		select {
		case <-n.stop:
			return
		case bufp = <-p.queue:
		}
		for {
			if conn == nil {
				conn = p.dial()
				if conn == nil { // network stopping
					n.dropped.Add(1)
					n.inflight.Add(-1)
					releaseFrame(bufp)
					return
				}
			}
			if n.cfg.UDP {
				_, err := conn.Write(*bufp)
				if err != nil {
					// A UDP send error is local (no route, full socket
					// buffer); the datagram is gone either way.
					n.dropped.Add(1)
				}
				break
			}
			if _, err := conn.Write(*bufp); err != nil {
				conn.Close()
				conn = nil
				select {
				case <-n.stop:
					n.dropped.Add(1)
					n.inflight.Add(-1)
					releaseFrame(bufp)
					return
				default:
				}
				// Retry the same frame on a fresh connection once; if the
				// peer stays down the dial loop backs off and the frame
				// eventually drains as dropped at shutdown. To keep the
				// accounting single-outcome the retry happens before any
				// counter is touched.
				continue
			}
			break
		}
		n.inflight.Add(-1)
		releaseFrame(bufp)
	}
}

// dial connects to the peer process, retrying with capped exponential
// backoff until it succeeds or the network stops (then nil). TCP mode
// sends the handshake before the connection is considered up.
func (p *peerLoop) dial() net.Conn {
	n := p.net
	backoff := initialBackoff
	for {
		select {
		case <-n.stop:
			return nil
		default:
		}
		network := "tcp"
		if n.cfg.UDP {
			network = "udp"
		}
		conn, err := net.DialTimeout(network, p.addr, n.cfg.DialTimeout)
		if err == nil && !n.cfg.UDP {
			var hs [handshakeLen]byte
			copy(hs[:], handshakeMagic[:])
			binary.LittleEndian.PutUint32(hs[4:], uint32(n.cfg.Proc))
			if _, werr := conn.Write(hs[:]); werr != nil {
				conn.Close()
				err = werr
			}
		}
		if err == nil {
			return conn
		}
		t := time.NewTimer(backoff)
		select {
		case <-n.stop:
			t.Stop()
			return nil
		case <-t.C:
		}
		if backoff *= 2; backoff > n.cfg.MaxBackoff {
			backoff = n.cfg.MaxBackoff
		}
	}
}

// drain empties the send queue at shutdown, counting stranded frames as
// dropped.
func (p *peerLoop) drain() {
	for {
		select {
		case bufp := <-p.queue:
			p.net.dropped.Add(1)
			p.net.inflight.Add(-1)
			releaseFrame(bufp)
		default:
			return
		}
	}
}

// acceptLoop serves inbound TCP connections: one reader goroutine each.
func (n *Network) acceptLoop(l net.Listener) {
	defer n.wg.Done()
	for {
		conn, err := l.Accept()
		if err != nil {
			select {
			case <-n.stop:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		n.mu.Lock()
		if n.closing {
			n.mu.Unlock()
			conn.Close()
			return
		}
		n.conns[conn] = struct{}{}
		n.wg.Add(1)
		n.mu.Unlock()
		go n.readConn(conn)
	}
}

// readConn validates the handshake then decodes frames until the stream
// ends. A decode error poisons the stream (framing can no longer be
// trusted), so the connection is closed; the dialer reconnects.
func (n *Network) readConn(conn net.Conn) {
	defer n.wg.Done()
	defer func() {
		conn.Close()
		n.mu.Lock()
		delete(n.conns, conn)
		n.mu.Unlock()
	}()
	var hs [handshakeLen]byte
	if _, err := io.ReadFull(conn, hs[:]); err != nil {
		return
	}
	if [4]byte(hs[:4]) != handshakeMagic {
		return
	}
	if proc := binary.LittleEndian.Uint32(hs[4:]); proc >= uint32(n.cfg.Procs) {
		return
	}
	var buf []byte
	for {
		payload, nbuf, err := wire.ReadFrame(conn, buf)
		buf = nbuf
		if err != nil {
			return
		}
		env, m, err := wire.Decode(payload)
		if err != nil {
			// The peer counted this frame Sent; its bytes arrived but
			// cannot be understood — account it before poisoning the
			// stream.
			n.dropped.Add(1)
			return
		}
		n.route(env, m)
	}
}

// readUDP decodes one frame per datagram. Datagrams still carry the
// 4-byte length prefix so the two modes share the exact wire format.
func (n *Network) readUDP(conn *net.UDPConn) {
	defer n.wg.Done()
	buf := make([]byte, 64*1024)
	for {
		sz, _, err := conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-n.stop:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		if sz < 4 {
			n.dropped.Add(1)
			continue
		}
		want := binary.LittleEndian.Uint32(buf[:4])
		if int(want) != sz-4 {
			n.dropped.Add(1)
			continue
		}
		env, m, err := wire.Decode(buf[4:sz])
		if err != nil {
			n.dropped.Add(1)
			continue
		}
		n.route(env, m)
	}
}

// Close stops all hosts and socket loops, waits for them, and settles the
// accounting: frames stranded in send queues and commands stranded in
// inboxes drain as dropped. For an exact conservation check run StopTicks
// + Quiesce first (on every process); Close alone can strand bytes in
// kernel buffers, which only the cross-process sum at quiescence sees.
func (n *Network) Close() {
	if n.closed.Swap(true) {
		return
	}
	n.mu.Lock()
	n.closing = true
	l, u := n.listener, n.udp
	conns := make([]net.Conn, 0, len(n.conns))
	for c := range n.conns {
		conns = append(conns, c)
	}
	n.mu.Unlock()
	close(n.stop)
	if l != nil {
		l.Close()
	}
	if u != nil {
		u.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	n.wg.Wait()
	for _, p := range n.peers {
		p.drain()
	}
	for _, h := range n.local {
		h.drainInbox()
	}
}

// Snapshot returns a consistent counter snapshot (stable across two
// consecutive reads where possible); exact at quiescence.
func (n *Network) Snapshot() Stats {
	prev := n.readStats()
	for i := 0; i < 8; i++ {
		cur := n.readStats()
		if cur == prev {
			return cur
		}
		prev = cur
	}
	return prev
}

func (n *Network) readStats() Stats {
	// Sent last: outcomes never exceed sends even in a torn read.
	st := Stats{
		Dropped:   n.dropped.Load(),
		Delivered: n.delivered.Load(),
		Overflow:  n.overflow.Load(),
	}
	st.Sent = n.sent.Load()
	return st
}

// Stats returns a snapshot of the traffic counters; see Snapshot.
func (n *Network) Stats() Stats { return n.Snapshot() }

// PauseAll pauses every live local host in parallel and returns once all
// are parked; with every process paused the campaign is at a consistent
// cut for measurement.
func (n *Network) PauseAll() { n.controlAll(true) }

// ResumeAll resumes every live local host.
func (n *Network) ResumeAll() { n.controlAll(false) }

func (n *Network) controlAll(pause bool) {
	hosts := n.local
	workers := 256
	if workers > len(hosts) {
		workers = len(hosts)
	}
	if workers < 1 {
		return
	}
	var wg sync.WaitGroup
	next := make(chan *Host, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for h := range next {
				h.control(pause)
			}
		}()
	}
	for _, h := range hosts {
		next <- h
	}
	close(next)
	wg.Wait()
}
