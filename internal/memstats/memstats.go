// Package memstats formats the process-memory accounting line the
// simulator CLIs emit under -memstats: live heap bytes (total and per
// node) after a forced collection, plus the process's peak resident set.
// It is the CLI-facing face of the memory plane — the number the
// BenchmarkNetworkFootprint regression gate tracks, available on any run
// without rebuilding the benchmark harness.
package memstats

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
)

// HeapAlloc returns the live heap in bytes after a forced collection —
// retained state, not allocation slack. Harnesses call it while the
// network under measurement is still reachable; call it only at
// measurement points, never on a hot path.
func HeapAlloc() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// Line returns a space-separated key=value summary attributing heapBytes
// (a HeapAlloc figure captured while the n-node network was live) across
// the nodes, plus the process peak RSS when procfs exposes it.
func Line(n int, heapBytes uint64) string {
	perNode := uint64(0)
	if n > 0 {
		perNode = heapBytes / uint64(n)
	}
	s := fmt.Sprintf("heap_alloc_bytes=%d heap_bytes_per_node=%d", heapBytes, perNode)
	if rss, ok := PeakRSSKB(); ok {
		s += fmt.Sprintf(" peak_rss_kb=%d", rss)
	}
	return s
}

// Campaign tracks the live heap across a multi-trial campaign. A single
// end-of-run HeapAlloc is meaningless when several trials share one heap:
// it sees whatever subset happened to be live at that instant. A Campaign
// instead records a baseline before any trial starts and lets every worker
// Sample() the heap at the end of each of its trials — while that trial's
// network is still reachable — keeping the maximum. The peak is a true
// high-water mark of retained state under the campaign's actual
// concurrency, not a snapshot of the stragglers.
//
// Sample is safe for concurrent use; Baseline, Peak and Line are meant for
// after the campaign completes.
type Campaign struct {
	baseline uint64
	peak     atomic.Uint64
}

// StartCampaign captures the pre-campaign baseline (post-GC live heap) and
// returns a tracker for the workers to sample.
func StartCampaign() *Campaign {
	return &Campaign{baseline: HeapAlloc()}
}

// Sample records the current post-GC live heap into the campaign maximum
// and returns the sampled value. Callers sample at per-trial measurement
// points with the trial's network still reachable — the forced collection
// makes this far too heavy for any hot path.
func (c *Campaign) Sample() uint64 {
	h := HeapAlloc()
	for {
		old := c.peak.Load()
		if h <= old || c.peak.CompareAndSwap(old, h) {
			return h
		}
	}
}

// Baseline returns the pre-campaign live heap.
func (c *Campaign) Baseline() uint64 { return c.baseline }

// Peak returns the largest sampled live heap, never below the baseline.
func (c *Campaign) Peak() uint64 {
	if p := c.peak.Load(); p > c.baseline {
		return p
	}
	return c.baseline
}

// Line returns the campaign's key=value summary. n is the per-trial
// network size and workers the number of trials live at once, so the
// above-baseline peak is attributed across the n*workers node instances
// that coexisted at the high-water mark.
func (c *Campaign) Line(n, workers int) string {
	base, peak := c.Baseline(), c.Peak()
	perNode := uint64(0)
	if nodes := uint64(n) * uint64(workers); nodes > 0 {
		perNode = (peak - base) / nodes
	}
	s := fmt.Sprintf("heap_baseline_bytes=%d heap_peak_bytes=%d heap_bytes_per_node=%d", base, peak, perNode)
	if rss, ok := PeakRSSKB(); ok {
		s += fmt.Sprintf(" peak_rss_kb=%d", rss)
	}
	return s
}

// PeakRSSKB reads the process's resident-set high-water mark from
// /proc/self/status (VmHWM). Best-effort: ok is false on platforms or
// sandboxes without procfs, and callers simply omit the field.
func PeakRSSKB() (int64, bool) {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0, false
	}
	for _, line := range strings.Split(string(data), "\n") {
		rest, found := strings.CutPrefix(line, "VmHWM:")
		if !found {
			continue
		}
		rest = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(rest), "kB"))
		v, err := strconv.ParseInt(strings.TrimSpace(rest), 10, 64)
		if err != nil {
			return 0, false
		}
		return v, true
	}
	return 0, false
}
