// Package memstats formats the process-memory accounting line the
// simulator CLIs emit under -memstats: live heap bytes (total and per
// node) after a forced collection, plus the process's peak resident set.
// It is the CLI-facing face of the memory plane — the number the
// BenchmarkNetworkFootprint regression gate tracks, available on any run
// without rebuilding the benchmark harness.
package memstats

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// HeapAlloc returns the live heap in bytes after a forced collection —
// retained state, not allocation slack. Harnesses call it while the
// network under measurement is still reachable; call it only at
// measurement points, never on a hot path.
func HeapAlloc() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// Line returns a space-separated key=value summary attributing heapBytes
// (a HeapAlloc figure captured while the n-node network was live) across
// the nodes, plus the process peak RSS when procfs exposes it.
func Line(n int, heapBytes uint64) string {
	perNode := uint64(0)
	if n > 0 {
		perNode = heapBytes / uint64(n)
	}
	s := fmt.Sprintf("heap_alloc_bytes=%d heap_bytes_per_node=%d", heapBytes, perNode)
	if rss, ok := PeakRSSKB(); ok {
		s += fmt.Sprintf(" peak_rss_kb=%d", rss)
	}
	return s
}

// PeakRSSKB reads the process's resident-set high-water mark from
// /proc/self/status (VmHWM). Best-effort: ok is false on platforms or
// sandboxes without procfs, and callers simply omit the field.
func PeakRSSKB() (int64, bool) {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0, false
	}
	for _, line := range strings.Split(string(data), "\n") {
		rest, found := strings.CutPrefix(line, "VmHWM:")
		if !found {
			continue
		}
		rest = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(rest), "kB"))
		v, err := strconv.ParseInt(strings.TrimSpace(rest), 10, 64)
		if err != nil {
			return 0, false
		}
		return v, true
	}
	return 0, false
}
