package memstats

import (
	"strings"
	"testing"
)

func TestLineShape(t *testing.T) {
	if got := HeapAlloc(); got == 0 {
		t.Error("HeapAlloc returned 0 for a running process")
	}
	line := Line(100, 4096)
	if !strings.Contains(line, "heap_alloc_bytes=4096") {
		t.Errorf("missing heap_alloc_bytes field: %q", line)
	}
	if !strings.Contains(line, "heap_bytes_per_node=40") {
		t.Errorf("missing heap_bytes_per_node field: %q", line)
	}
	for _, f := range strings.Fields(line) {
		if !strings.Contains(f, "=") {
			t.Errorf("field %q is not key=value", f)
		}
	}
}

func TestLineZeroNodes(t *testing.T) {
	if line := Line(0, 4096); !strings.Contains(line, "heap_bytes_per_node=0") {
		t.Errorf("n=0 should report 0 bytes/node, got %q", line)
	}
}
