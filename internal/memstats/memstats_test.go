package memstats

import (
	"strings"
	"sync"
	"testing"
)

func TestLineShape(t *testing.T) {
	if got := HeapAlloc(); got == 0 {
		t.Error("HeapAlloc returned 0 for a running process")
	}
	line := Line(100, 4096)
	if !strings.Contains(line, "heap_alloc_bytes=4096") {
		t.Errorf("missing heap_alloc_bytes field: %q", line)
	}
	if !strings.Contains(line, "heap_bytes_per_node=40") {
		t.Errorf("missing heap_bytes_per_node field: %q", line)
	}
	for _, f := range strings.Fields(line) {
		if !strings.Contains(f, "=") {
			t.Errorf("field %q is not key=value", f)
		}
	}
}

func TestLineZeroNodes(t *testing.T) {
	if line := Line(0, 4096); !strings.Contains(line, "heap_bytes_per_node=0") {
		t.Errorf("n=0 should report 0 bytes/node, got %q", line)
	}
}

func TestCampaignPeak(t *testing.T) {
	c := StartCampaign()
	if c.Baseline() == 0 {
		t.Fatal("campaign baseline is 0 for a running process")
	}
	if c.Peak() != c.Baseline() {
		t.Errorf("pre-sample peak %d != baseline %d", c.Peak(), c.Baseline())
	}
	// A retained allocation must show up in the sample and raise the peak
	// above the baseline captured before it existed.
	buf := make([]byte, 8<<20)
	h := c.Sample()
	if buf[0] != 0 { // keep buf live across the forced GC inside Sample
		t.Fatal("unreachable")
	}
	if h <= c.Baseline() {
		t.Errorf("sample %d with 8MiB retained not above baseline %d", h, c.Baseline())
	}
	if c.Peak() != h {
		t.Errorf("peak %d != only sample %d", c.Peak(), h)
	}
	// Releasing the buffer lowers the live heap but never the peak.
	buf = nil
	_ = buf
	c.Sample()
	if c.Peak() < h {
		t.Errorf("peak regressed from %d to %d after a smaller sample", h, c.Peak())
	}
}

func TestCampaignConcurrentSample(t *testing.T) {
	c := StartCampaign()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				c.Sample()
			}
		}()
	}
	wg.Wait()
	if c.Peak() < c.Baseline() {
		t.Errorf("peak %d below baseline %d after concurrent sampling", c.Peak(), c.Baseline())
	}
}

func TestCampaignLineShape(t *testing.T) {
	c := &Campaign{baseline: 1 << 20}
	c.peak.Store(9 << 20)
	line := c.Line(1024, 2)
	for _, want := range []string{
		"heap_baseline_bytes=1048576",
		"heap_peak_bytes=9437184",
		// (9MiB - 1MiB) / (1024 nodes * 2 workers) = 4096
		"heap_bytes_per_node=4096",
	} {
		if !strings.Contains(line, want) {
			t.Errorf("campaign line %q missing %q", line, want)
		}
	}
	for _, f := range strings.Fields(line) {
		if !strings.Contains(f, "=") {
			t.Errorf("field %q is not key=value", f)
		}
	}
	if zero := c.Line(0, 0); !strings.Contains(zero, "heap_bytes_per_node=0") {
		t.Errorf("zero nodes should report 0 bytes/node, got %q", zero)
	}
}
