// Package proto defines the protocol-engine contract shared by the
// deterministic discrete-event simulator (package simnet) and the
// concurrent goroutine runtime (package livenet). Protocol implementations
// — the sampling layer, the bootstrapping service, the Chord baseline,
// broadcast and aggregation — are written once against these interfaces
// and run unchanged under either engine.
package proto

import (
	"math/rand"

	"repro/internal/peer"
)

// Message is a protocol payload delivered between nodes. Payloads should
// be plain data; they are shared by reference, so senders must not mutate
// a message after sending it.
type Message interface{}

// Sizer is optionally implemented by messages to report their wire size in
// descriptor units; engines use it for traffic accounting.
type Sizer interface {
	WireSize() int
}

// Recyclable is optionally implemented by messages whose backing storage is
// pooled by the sending protocol. An engine calls Recycle exactly once per
// message, at the moment the message is retired: after the receiving
// protocol's Handle returns, or when the engine drops the message (loss
// model, dead destination, full inbox, shutdown drain). After Recycle the
// message and its slices may be reused for a future send, so neither
// engines nor protocols may retain any part of a recyclable message past
// Handle. A message fanned out by reference to several receivers must NOT
// be recycled per delivery — engines that broadcast one value must recycle
// it once, after the last delivery, or not at all.
type Recyclable interface {
	Recycle()
}

// ProtoID distinguishes the protocol stacks running on one node (e.g. the
// sampling layer and the bootstrapping layer). Messages are delivered to
// the same ProtoID on the destination node.
type ProtoID uint8

// Conventional protocol identifiers used across this repository.
const (
	// NewscastID is the sampling layer.
	NewscastID ProtoID = 1
	// BootstrapID is the bootstrapping service.
	BootstrapID ProtoID = 2
	// ChordID is the Chord bootstrap baseline.
	ChordID ProtoID = 3
	// BroadcastID is the gossip broadcast layer.
	BroadcastID ProtoID = 4
	// AggregateID is the gossip aggregation layer.
	AggregateID ProtoID = 5
)

// Context is the capability surface a protocol sees during a callback: its
// own address, a clock, a deterministic random source, and the ability to
// send messages. Contexts are only valid for the duration of the callback;
// implementations must not retain them.
type Context interface {
	// Self returns the node's own address.
	Self() peer.Addr
	// Now returns the current time in engine time units (virtual ticks
	// under simnet, milliseconds since start under livenet).
	Now() int64
	// Rand returns the node's private random source. It must only be
	// used inside the callback.
	Rand() *rand.Rand
	// Send transmits msg to the destination node, addressed to the same
	// protocol binding the caller is attached under. Sending across
	// protocol stacks is an engine-level operation, not a protocol one.
	Send(to peer.Addr, msg Message)
}

// Protocol is a passive state machine driven by an engine. All state
// access is serialised by the engine (single-threaded event loop under
// simnet, one goroutine per host under livenet), so implementations need
// no internal locking.
type Protocol interface {
	// Init is called once when the node starts, before any tick.
	Init(ctx Context)
	// Tick is called every period, starting at the node's start offset.
	Tick(ctx Context)
	// Handle is called for every delivered message.
	Handle(ctx Context, from peer.Addr, msg Message)
}
