// Package proto_test pins the engine-side half of the proto.Recyclable
// contract against all three engines: the deterministic simulator
// (simnet), the goroutine runtime (livenet), and the socket transport.
// The contract — Recycle is called exactly once per message, at
// retirement — is what makes pooled payloads safe; a missed Recycle leaks
// pool capacity under sustained load, and a double Recycle hands the same
// backing storage to two concurrent sends. Both failure modes are silent
// in production, so they are pinned here with a counting fake that
// detects each directly.
package proto_test

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/livenet"
	"repro/internal/peer"
	"repro/internal/proto"
	"repro/internal/simnet"
	"repro/internal/transport"
)

// tracker issues counting messages and audits their retirement.
type tracker struct {
	issued      atomic.Int64
	outstanding atomic.Int64 // issued minus retired: leaks if nonzero at quiescence
	doubles     atomic.Int64 // Recycle calls beyond the first per message
}

func (trk *tracker) new() *countMsg {
	trk.issued.Add(1)
	trk.outstanding.Add(1)
	return &countMsg{trk: trk}
}

// check audits the tracker at engine quiescence: every issued message
// retired, none retired twice.
func (trk *tracker) check(t *testing.T, engine string) {
	t.Helper()
	if trk.issued.Load() == 0 {
		t.Fatalf("%s: protocol issued no messages — the test exercised nothing", engine)
	}
	if d := trk.doubles.Load(); d != 0 {
		t.Errorf("%s: %d double recycles (contract: exactly once)", engine, d)
	}
	if o := trk.outstanding.Load(); o != 0 {
		t.Errorf("%s: %d of %d messages never retired (leak)", engine, o, trk.issued.Load())
	}
}

// countMsg is the counting fake: a recyclable payload whose retirement is
// observable.
type countMsg struct {
	trk      *tracker
	recycles atomic.Int32
}

func (m *countMsg) Recycle() {
	if m.recycles.Add(1) > 1 {
		m.trk.doubles.Add(1)
		return
	}
	m.trk.outstanding.Add(-1)
}

// churner sends one tracked message per tick to a random peer. With a
// cutoff (engine Now units) it stops producing, so a bounded run can
// retire everything in flight before the audit.
type churner struct {
	trk    *tracker
	peers  []peer.Addr
	cutoff int64
}

func (c *churner) Init(ctx proto.Context) {}

func (c *churner) Tick(ctx proto.Context) {
	if c.cutoff > 0 && ctx.Now() >= c.cutoff {
		return
	}
	to := c.peers[ctx.Rand().Intn(len(c.peers))]
	if to == ctx.Self() {
		return
	}
	ctx.Send(to, c.trk.new())
}

func (c *churner) Handle(ctx proto.Context, from peer.Addr, msg proto.Message) {}

// TestCountingFakeDetectsDouble proves the fake itself catches a
// violating engine — without this, a green contract test could mean a
// broken detector.
func TestCountingFakeDetectsDouble(t *testing.T) {
	trk := &tracker{}
	m := trk.new()
	m.Recycle()
	m.Recycle()
	if trk.doubles.Load() != 1 {
		t.Fatalf("doubles = %d after a double recycle, want 1", trk.doubles.Load())
	}
	if trk.outstanding.Load() != 0 {
		t.Fatalf("outstanding = %d, want 0", trk.outstanding.Load())
	}
	leak := trk.new()
	_ = leak
	if trk.outstanding.Load() != 1 {
		t.Fatal("leaked message not visible as outstanding")
	}
}

// TestRecyclableExactlyOnceSimnet drives the deterministic engine through
// every retirement path it has — delivery, loss model, dead destination —
// and audits at quiescence. The senders stop at a cutoff and the run
// extends past cutoff+MaxLatency, so nothing is still in flight when the
// audit runs.
func TestRecyclableExactlyOnceSimnet(t *testing.T) {
	const n, cutoff = 16, 50
	trk := &tracker{}
	net := simnet.New(simnet.Config{Seed: 1, Drop: 0.3, MinLatency: 1, MaxLatency: 3})
	addrs := make([]peer.Addr, n)
	for i := range addrs {
		addrs[i] = net.AddNode()
	}
	for i, a := range addrs {
		p := &churner{trk: trk, peers: addrs, cutoff: cutoff}
		if err := net.Attach(a, proto.BootstrapID, p, 1, int64(i%3)); err != nil {
			t.Fatal(err)
		}
	}
	// A mid-run death exercises the dead-destination retirement path.
	net.At(cutoff/2, func() { net.Kill(addrs[0]) })
	net.Run(cutoff + 10)

	st := net.Stats()
	if st.Dropped == 0 || st.DeadDest == 0 || st.Delivered == 0 {
		t.Fatalf("not all retirement paths exercised: %+v", st)
	}
	trk.check(t, "simnet")
}

// TestRecyclableExactlyOnceLivenet audits the goroutine engine. Close
// drains in-flight and queued messages into the Dropped bucket, so after
// it returns every issued message must be retired — including those
// stranded by the kill, the loss model, and the tiny inboxes.
func TestRecyclableExactlyOnceLivenet(t *testing.T) {
	const n = 12
	trk := &tracker{}
	net := livenet.New(livenet.Config{
		Seed: 2, Drop: 0.2, InboxSize: 2,
		MinLatency: time.Millisecond, MaxLatency: 3 * time.Millisecond,
	})
	hosts := make([]*livenet.Host, n)
	addrs := make([]peer.Addr, n)
	for i := range hosts {
		hosts[i] = net.AddHost()
		addrs[i] = hosts[i].Addr()
	}
	for _, h := range hosts {
		if err := h.Attach(proto.BootstrapID, &churner{trk: trk, peers: addrs}, 2*time.Millisecond, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := net.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	hosts[0].Kill() // dead-destination path, plus the victim's inbox drain
	time.Sleep(50 * time.Millisecond)
	net.Close()

	st := net.Stats()
	if st.Delivered == 0 || st.Dropped == 0 {
		t.Fatalf("not all retirement paths exercised: %+v", st)
	}
	trk.check(t, "livenet")
}

// TestRecyclableExactlyOnceTransport audits the socket engine's
// process-local path: payloads that do not implement the wire codec's
// message type travel the loopback shortcut by pointer, and the engine
// still owes them the exactly-once retirement across delivery, the loss
// model, inbox overflow, and dead hosts. (The cross-process path retires
// the original at encode time; its conservation is pinned by the
// transport package's own tests.)
func TestRecyclableExactlyOnceTransport(t *testing.T) {
	const n = 8
	trk := &tracker{}
	net, err := transport.New(transport.Config{
		Seed: 3, N: n, Procs: 1, BasePort: 19380, Drop: 0.2, InboxSize: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	hosts := net.LocalHosts()
	addrs := make([]peer.Addr, n)
	for i, h := range hosts {
		addrs[i] = h.Addr()
	}
	for _, h := range hosts {
		if err := h.Attach(proto.BootstrapID, &churner{trk: trk, peers: addrs}, 2*time.Millisecond, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := net.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	hosts[0].Kill()
	time.Sleep(50 * time.Millisecond)
	net.StopTicks()
	if !net.Quiesce(5 * time.Second) {
		t.Fatal("transport did not quiesce")
	}
	st := net.Snapshot()
	if st.Delivered == 0 || st.Dropped == 0 {
		t.Fatalf("not all retirement paths exercised: %+v", st)
	}
	net.Close()
	trk.check(t, "transport")
}
