package chord

import (
	"math/rand"
	"testing"

	"repro/internal/id"
	"repro/internal/peer"
	"repro/internal/sampling"
	"repro/internal/simnet"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{C: 1, CR: 0, Delta: 10},
		{C: 3, CR: 0, Delta: 10},
		{C: 20, CR: -1, Delta: 10},
		{C: 20, CR: 0, Delta: 0},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestNewNodeValidation(t *testing.T) {
	self := peer.Descriptor{ID: 1, Addr: 0}
	if _, err := NewNode(self, Config{}, sampling.Fixed(nil)); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := NewNode(self, DefaultConfig(), nil); err == nil {
		t.Error("nil sampler accepted")
	}
}

func TestFingerTarget(t *testing.T) {
	n, err := NewNode(peer.Descriptor{ID: 100, Addr: 0}, DefaultConfig(), sampling.Fixed(nil))
	if err != nil {
		t.Fatal(err)
	}
	if n.FingerTarget(0) != 101 {
		t.Errorf("finger 0 target = %d, want 101", n.FingerTarget(0))
	}
	if n.FingerTarget(3) != 108 {
		t.Errorf("finger 3 target = %d, want 108", n.FingerTarget(3))
	}
	// Wraparound at the top bit.
	if n.FingerTarget(63) != id.ID(100+uint64(1)<<63) {
		t.Error("finger 63 target wrong")
	}
}

func TestImproveFingers(t *testing.T) {
	n, err := NewNode(peer.Descriptor{ID: 0, Addr: 0}, DefaultConfig(), sampling.Fixed(nil))
	if err != nil {
		t.Fatal(err)
	}
	far := peer.Descriptor{ID: 1000, Addr: 1}
	near := peer.Descriptor{ID: 10, Addr: 2}
	n.absorb([]peer.Descriptor{far})
	if n.Finger(0).ID != 1000 {
		t.Error("empty finger should take any candidate")
	}
	n.absorb([]peer.Descriptor{near})
	// Finger 0 targets 1: 10 is closer clockwise than 1000.
	if n.Finger(0).ID != 10 {
		t.Errorf("finger 0 = %s, want 10", n.Finger(0))
	}
	// Finger 10 targets 1024: 10 would wrap nearly all the way around,
	// 1000 also precedes 1024... both wrap; closest clockwise from 1024
	// is the smaller wrap distance. Succ(1024, 10) ~ 2^64-1014;
	// Succ(1024, 1000) ~ 2^64-24: 1000 wins? No: Succ(1024,1000) =
	// 1000-1024 mod 2^64 = 2^64-24, Succ(1024,10) = 2^64-1014. 10 wins.
	if n.Finger(10).ID != 10 {
		t.Errorf("finger 10 = %s, want 10", n.Finger(10))
	}
}

func TestRingTruth(t *testing.T) {
	r := NewRing([]id.ID{10, 20, 30})
	if r.Successor(5) != 10 || r.Successor(10) != 10 || r.Successor(11) != 20 {
		t.Error("successor basic cases failed")
	}
	if r.Successor(31) != 10 {
		t.Error("successor must wrap")
	}
	if r.RootOf(25) != 30 {
		t.Error("root of 25 should be 30")
	}
}

// buildChordNetwork runs the Chord bootstrap over a simnet.
func buildChordNetwork(t testing.TB, n int, seed int64, cycles int64) ([]*Node, []peer.Descriptor, *Ring) {
	t.Helper()
	net := simnet.New(simnet.Config{Seed: seed})
	ids := id.Unique(n, seed+100)
	descs := make([]peer.Descriptor, n)
	for i := range descs {
		descs[i] = peer.Descriptor{ID: ids[i], Addr: net.AddNode()}
	}
	oracle := sampling.NewOracle(descs, seed+200)
	cfg := DefaultConfig()
	nodes := make([]*Node, n)
	for i, d := range descs {
		nd, err := NewNode(d, cfg, oracle)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = nd
		if err := net.Attach(d.Addr, ProtoID, nd, cfg.Delta, int64(i)%cfg.Delta); err != nil {
			t.Fatal(err)
		}
	}
	net.Run(cfg.Delta * cycles)
	return nodes, descs, NewRing(ids)
}

// TestChordBootstrapConverges: fingers converge to ground truth within a
// logarithmic number of cycles — the property of "Chord on demand" that
// the paper builds on.
func TestChordBootstrapConverges(t *testing.T) {
	nodes, _, ring := buildChordNetwork(t, 256, 1, 30)
	wrong, total := ring.NetworkFingerErrors(nodes)
	if wrong != 0 {
		t.Errorf("%d/%d fingers still wrong after 30 cycles", wrong, total)
	}
}

func TestChordLeafConverges(t *testing.T) {
	nodes, descs, _ := buildChordNetwork(t, 128, 2, 30)
	// Every node must know its immediate successor: the member with the
	// smallest clockwise distance.
	for i, n := range nodes {
		wantSucc := descs[0].ID
		bestDist := ^uint64(0)
		for _, d := range descs {
			if d.ID == n.Self().ID {
				continue
			}
			if dist := id.Succ(n.Self().ID, d.ID); dist < bestDist {
				bestDist = dist
				wantSucc = d.ID
			}
		}
		succ := n.Leaf().Successors()
		if len(succ) == 0 || succ[0].ID != wantSucc {
			t.Fatalf("node %d: first successor wrong", i)
		}
	}
}

// TestChordRouting: greedy finger routing reaches the key's true root in
// O(log N) hops.
func TestChordRouting(t *testing.T) {
	const n = 256
	nodes, descs, ring := buildChordNetwork(t, n, 3, 30)
	byAddr := make(map[peer.Addr]*Node, n)
	for _, nd := range nodes {
		byAddr[nd.Self().Addr] = nd
	}
	rng := rand.New(rand.NewSource(4))
	totalHops := 0
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		key := id.ID(rng.Uint64())
		cur := nodes[rng.Intn(n)]
		hops := 0
		for ; hops < 64; hops++ {
			next, done := cur.NextHop(key)
			if done {
				break
			}
			nxt, ok := byAddr[next.Addr]
			if !ok {
				t.Fatalf("hop to unknown node %s", next)
			}
			cur = nxt
		}
		if cur.Self().ID != ring.RootOf(key) {
			t.Fatalf("key %s delivered to %s, want %s", key, cur.Self().ID, ring.RootOf(key))
		}
		totalHops += hops
	}
	if mean := float64(totalHops) / trials; mean > 10 {
		t.Errorf("mean hops %.1f too high for n=%d", mean, n)
	}
	_ = descs
}

func TestWireSize(t *testing.T) {
	m := Message{Entries: make([]peer.Descriptor, 7)}
	if m.WireSize() != 8 {
		t.Errorf("WireSize = %d, want 8", m.WireSize())
	}
}

func TestHandleIgnoresForeignMessages(t *testing.T) {
	net := simnet.New(simnet.Config{Seed: 1})
	d := peer.Descriptor{ID: 5, Addr: net.AddNode()}
	nd, err := NewNode(d, DefaultConfig(), sampling.Fixed(nil))
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Attach(d.Addr, ProtoID, nd, 10, 0); err != nil {
		t.Fatal(err)
	}
	net.Send(0, d.Addr, ProtoID, 12345)
	net.Run(50) // must not panic
}
