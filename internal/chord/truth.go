package chord

import (
	"sort"

	"repro/internal/id"
)

// Ring is the ground-truth oracle for Chord structures over a fixed
// membership.
type Ring struct {
	sorted []id.ID
	pos    map[id.ID]int
}

// NewRing builds the oracle from the membership IDs.
func NewRing(ids []id.ID) *Ring {
	r := &Ring{
		sorted: make([]id.ID, len(ids)),
		pos:    make(map[id.ID]int, len(ids)),
	}
	copy(r.sorted, ids)
	sort.Slice(r.sorted, func(i, j int) bool { return r.sorted[i] < r.sorted[j] })
	for i, v := range r.sorted {
		r.pos[v] = i
	}
	return r
}

// Successor returns the first member clockwise from point (inclusive).
func (r *Ring) Successor(point id.ID) id.ID {
	i := sort.Search(len(r.sorted), func(i int) bool { return r.sorted[i] >= point })
	if i == len(r.sorted) {
		i = 0 // wrap
	}
	return r.sorted[i]
}

// TrueFinger returns the correct finger i for the given node: the
// successor of self + 2^i.
func (r *Ring) TrueFinger(self id.ID, i int) id.ID {
	return r.Successor(self + id.ID(uint64(1)<<uint(i)))
}

// FingerErrors counts how many of a node's fingers differ from ground
// truth, out of NumFingers.
func (r *Ring) FingerErrors(n *Node) (wrong, total int) {
	for i := 0; i < NumFingers; i++ {
		total++
		want := r.TrueFinger(n.Self().ID, i)
		got := n.Finger(i)
		if got.Nil() || got.ID != want {
			wrong++
		}
	}
	return wrong, total
}

// NetworkFingerErrors aggregates FingerErrors over a population.
func (r *Ring) NetworkFingerErrors(nodes []*Node) (wrong, total int) {
	for _, n := range nodes {
		w, t := r.FingerErrors(n)
		wrong += w
		total += t
	}
	return wrong, total
}

// RootOf returns the member that owns key under Chord's successor rule.
func (r *Ring) RootOf(key id.ID) id.ID {
	return r.Successor(key)
}
