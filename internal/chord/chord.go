// Package chord implements a Chord-style bootstrap baseline: the same
// T-Man gossip machinery builds a sorted ring (successor/predecessor sets)
// while finger tables — successor(self + 2^i) for each bit i — are filled
// from every descriptor seen. This reproduces the design alternative the
// paper contrasts itself with ("we have already addressed bootstrapping
// CHORD, based on a sorted ring and additional fingers defined by distance
// in the ID space"), and serves as the comparison baseline for the
// prefix-table approach.
package chord

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/id"
	"repro/internal/peer"
	"repro/internal/proto"
	"repro/internal/sampling"
)

// ProtoID is the simnet protocol identifier conventionally used for the
// Chord bootstrap layer.
const ProtoID proto.ProtoID = 3

// NumFingers is the finger-table size: one finger per bit of the ID space.
const NumFingers = id.Bits

// Config parameterises the Chord bootstrap baseline. It mirrors the
// bootstrap service's ring parameters so comparisons are apples-to-apples.
type Config struct {
	// C is the leaf (successor/predecessor) set size.
	C int
	// CR is the number of random samples mixed into each message.
	CR int
	// Delta is the gossip period.
	Delta int64
	// FixPerTick is the number of fingers refreshed per cycle through
	// find-successor queries routed over the ring (Chord's fix_fingers).
	FixPerTick int
}

// DefaultConfig mirrors the bootstrap service's defaults.
func DefaultConfig() Config {
	return Config{C: core.DefaultC, CR: core.DefaultCR, Delta: core.DefaultDelta, FixPerTick: 8}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.C < 2 || c.C%2 != 0 {
		return fmt.Errorf("chord config: C = %d must be even and >= 2", c.C)
	}
	if c.CR < 0 {
		return fmt.Errorf("chord config: CR = %d must not be negative", c.CR)
	}
	if c.Delta < 1 {
		return fmt.Errorf("chord config: Delta = %d must be positive", c.Delta)
	}
	if c.FixPerTick < 0 {
		return fmt.Errorf("chord config: FixPerTick = %d must not be negative", c.FixPerTick)
	}
	return nil
}

// Message is a Chord bootstrap gossip exchange.
type Message struct {
	Sender  peer.Descriptor
	Entries []peer.Descriptor
	Request bool
}

// WireSize reports the message size in descriptor units.
func (m Message) WireSize() int { return len(m.Entries) + 1 }

// FindReq is a find-successor query routed greedily toward Target — the
// fix_fingers mechanism Chord uses to finish its fingers. Gossip alone
// converges the ring quickly but leaves a polynomial tail of inexact
// fingers (the exact successor of a far target only arrives by luck);
// Chord resolves this by looking fingers up through the ring itself.
type FindReq struct {
	Target id.ID
	Origin peer.Descriptor
	Index  int
	Hops   int
}

// WireSize reports the query size in descriptor units.
func (FindReq) WireSize() int { return 2 }

// FindResp answers a FindReq with the target's owner.
type FindResp struct {
	Index int
	Found peer.Descriptor
}

// WireSize reports the answer size in descriptor units.
func (FindResp) WireSize() int { return 1 }

// maxFindHops bounds query forwarding on half-built rings.
const maxFindHops = 64

// Node is the Chord bootstrap state machine for one participant.
type Node struct {
	cfg     Config
	self    peer.Descriptor
	sampler sampling.Service
	leaf    *core.LeafSet
	fingers [NumFingers]peer.Descriptor
	fixIdx  int
}

var _ proto.Protocol = (*Node)(nil)

// NewNode returns a Chord bootstrap node with empty structures.
func NewNode(self peer.Descriptor, cfg Config, sampler sampling.Service) (*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if sampler == nil {
		return nil, fmt.Errorf("chord node %s: nil sampler", self.ID)
	}
	n := &Node{cfg: cfg, self: self, sampler: sampler, leaf: core.NewLeafSet(self.ID, cfg.C)}
	for i := range n.fingers {
		n.fingers[i] = peer.None
	}
	return n, nil
}

// FingerTarget returns the ring point self + 2^i that finger i must cover.
func (n *Node) FingerTarget(i int) id.ID {
	return n.self.ID + id.ID(uint64(1)<<uint(i))
}

// Init seeds the leaf set from the sampling service.
func (n *Node) Init(ctx proto.Context) {
	n.absorb(n.sampler.Sample(n.cfg.C))
}

// Tick runs one active gossip round, then refreshes FixPerTick fingers in
// round-robin order through find-successor queries.
func (n *Node) Tick(ctx proto.Context) {
	q := n.selectPeer(ctx.Rand())
	if !q.Nil() {
		ctx.Send(q.Addr, n.createMessage(q, true))
	}
	for j := 0; j < n.cfg.FixPerTick; j++ {
		i := n.fixIdx % NumFingers
		n.fixIdx++
		target := n.FingerTarget(i)
		next, done := n.NextHop(target)
		if done {
			n.adoptFinger(i, n.self)
			continue
		}
		ctx.Send(next.Addr, FindReq{Target: target, Origin: n.self, Index: i})
	}
}

// Handle answers gossip requests, merges incoming descriptors, and routes
// find-successor queries.
func (n *Node) Handle(ctx proto.Context, from peer.Addr, msg proto.Message) {
	switch m := msg.(type) {
	case Message:
		if m.Request {
			ctx.Send(from, n.createMessage(m.Sender, false))
		}
		n.absorb(m.Entries)
	case FindReq:
		next, done := n.NextHop(m.Target)
		if done || m.Hops >= maxFindHops {
			ctx.Send(m.Origin.Addr, FindResp{Index: m.Index, Found: n.self})
			return
		}
		m.Hops++
		ctx.Send(next.Addr, m)
	case FindResp:
		if m.Index >= 0 && m.Index < NumFingers {
			n.adoptFinger(m.Index, m.Found)
		}
	}
}

// adoptFinger installs d as finger i when it is a better successor of the
// target than the incumbent. Unlike gossip absorption this accepts the
// node's own descriptor: a node can be its own finger across the wrap.
func (n *Node) adoptFinger(i int, d peer.Descriptor) {
	target := n.FingerTarget(i)
	cur := n.fingers[i]
	if cur.Nil() || id.Succ(target, d.ID) < id.Succ(target, cur.ID) {
		n.fingers[i] = d
	}
}

// absorb merges descriptors into both the leaf set and the finger table.
func (n *Node) absorb(ds []peer.Descriptor) {
	n.leaf.Update(ds)
	for _, d := range ds {
		if d.ID == n.self.ID {
			continue
		}
		n.improveFingers(d)
	}
}

// improveFingers lets d take over any finger whose target it is closer to
// (clockwise) than the incumbent — Chord's successor(target) definition.
func (n *Node) improveFingers(d peer.Descriptor) {
	for i := 0; i < NumFingers; i++ {
		target := n.FingerTarget(i)
		cur := n.fingers[i]
		if cur.Nil() || id.Succ(target, d.ID) < id.Succ(target, cur.ID) {
			n.fingers[i] = d
		}
	}
}

// selectPeer picks a random peer from the closer half of each leaf-set
// direction, falling back to a random sample, mirroring the bootstrap
// service (including its direction balancing; see core.Node.selectPeer).
func (n *Node) selectPeer(rng *rand.Rand) peer.Descriptor {
	succ, pred := n.leaf.Successors(), n.leaf.Predecessors()
	if len(succ) == 0 && len(pred) == 0 {
		s := n.sampler.Sample(1)
		if len(s) == 0 {
			return peer.None
		}
		return s[0]
	}
	nSucc := (len(succ) + 1) / 2
	nPred := (len(pred) + 1) / 2
	i := rng.Intn(nSucc + nPred)
	if i < nSucc {
		return succ[i]
	}
	return pred[i-nSucc]
}

// createMessage keeps the c entries closest to q from everything known
// (leaf set, fingers, cr random samples, self), then appends, for each of
// q's finger targets, the sender's best candidate — the Chord analogue of
// the bootstrap service's prefix part. Without the target-directed part,
// exact fingers for far targets would only ever arrive through the
// random-sample lottery and convergence would acquire a long polynomial
// tail.
func (n *Node) createMessage(q peer.Descriptor, request bool) Message {
	union := peer.NewSet(n.cfg.C + n.cfg.CR + NumFingers + 1)
	union.Add(n.self)
	union.AddAll(n.leaf.Slice())
	for _, f := range n.fingers {
		if !f.Nil() {
			union.Add(f)
		}
	}
	if n.cfg.CR > 0 {
		union.AddAll(n.sampler.Sample(n.cfg.CR))
	}
	union.Remove(q.ID)

	all := union.Copy()
	peer.SortByRingDistance(all, q.ID)
	keep := min(len(all), n.cfg.C)
	entries := make([]peer.Descriptor, 0, keep+NumFingers)
	entries = append(entries, all[:keep]...)

	// Target-directed part: the best known successor candidate for each
	// of q's finger targets, deduplicated against the base part.
	seen := make(map[id.ID]struct{}, len(entries))
	for _, d := range entries {
		seen[d.ID] = struct{}{}
	}
	for i := 0; i < NumFingers; i++ {
		target := q.ID + id.ID(uint64(1)<<uint(i))
		best := peer.None
		var bestDist uint64
		for _, d := range all {
			dist := id.Succ(target, d.ID)
			if best.Nil() || dist < bestDist {
				best, bestDist = d, dist
			}
		}
		if best.Nil() {
			continue
		}
		if _, dup := seen[best.ID]; dup {
			continue
		}
		seen[best.ID] = struct{}{}
		entries = append(entries, best)
	}
	return Message{Sender: n.self, Entries: entries, Request: request}
}

// Self returns the node's descriptor.
func (n *Node) Self() peer.Descriptor { return n.self }

// Leaf returns the node's successor/predecessor set.
func (n *Node) Leaf() *core.LeafSet { return n.leaf }

// Finger returns finger i (may be a nil descriptor early on).
func (n *Node) Finger(i int) peer.Descriptor { return n.fingers[i] }

// NextHop routes greedily toward key: deliver when this node is the key's
// successor-side root within its leaf span; otherwise forward to the
// closest preceding node among fingers and leaf set.
func (n *Node) NextHop(key id.ID) (peer.Descriptor, bool) {
	if key == n.self.ID {
		return n.self, true
	}
	// If the key lies between our closest predecessor and us, we own it.
	pred := n.leaf.Predecessors()
	if len(pred) > 0 {
		if id.Succ(pred[0].ID, key) <= id.Succ(pred[0].ID, n.self.ID) {
			return n.self, true
		}
	}
	// Closest preceding node: the known node whose ID is farthest
	// clockwise from self while still strictly preceding the key.
	best := peer.None
	var bestAdv uint64
	consider := func(d peer.Descriptor) {
		if d.Nil() || d.ID == n.self.ID {
			return
		}
		adv := id.Succ(n.self.ID, d.ID)
		if adv < id.Succ(n.self.ID, key) && adv > bestAdv {
			best, bestAdv = d, adv
		}
	}
	for i := range n.fingers {
		consider(n.fingers[i])
	}
	for _, d := range n.leaf.Slice() {
		consider(d)
	}
	if best.Nil() {
		// No known node precedes the key: our successor owns it.
		succ := n.leaf.Successors()
		if len(succ) > 0 {
			return succ[0], false
		}
		return n.self, true
	}
	return best, false
}
