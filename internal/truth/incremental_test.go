package truth

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/id"
	"repro/internal/peer"
)

// equivalent asserts that the incrementally maintained oracle answers every
// query exactly like a freshly built one over the same membership.
func equivalent(t *testing.T, inc *Truth, ids []id.ID, b, k, c int) {
	t.Helper()
	fresh, err := New(ids, b, k, c)
	if err != nil {
		t.Fatal(err)
	}
	if inc.N() != fresh.N() {
		t.Fatalf("N = %d, want %d", inc.N(), fresh.N())
	}
	if !reflect.DeepEqual(inc.sorted, fresh.sorted) {
		t.Fatalf("sorted rings diverge:\n inc %v\n new %v", inc.sorted, fresh.sorted)
	}
	for _, v := range ids {
		if !inc.Contains(v) {
			t.Fatalf("member %s missing", v)
		}
		if got, want := inc.PerfectLeafSet(v), fresh.PerfectLeafSet(v); !reflect.DeepEqual(got, want) {
			t.Fatalf("PerfectLeafSet(%s) = %v, want %v", v, got, want)
		}
		if got, want := inc.ExpectedSlotCounts(v), fresh.ExpectedSlotCounts(v); !reflect.DeepEqual(got, want) {
			t.Fatalf("ExpectedSlotCounts(%s) = %v, want %v", v, got, want)
		}
	}
}

func TestUpdateMatchesRebuild(t *testing.T) {
	const b, k, c = 4, 3, 8
	rng := rand.New(rand.NewSource(11))
	gen := id.NewGenerator(12)
	ids := make([]id.ID, 64)
	for i := range ids {
		ids[i] = gen.Next()
	}
	tr, err := New(ids, b, k, c)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 25; round++ {
		// Remove a random batch, add a random batch.
		nRem := rng.Intn(len(ids) / 4)
		perm := rng.Perm(len(ids))
		removed := make([]id.ID, nRem)
		for i := range removed {
			removed[i] = ids[perm[i]]
		}
		survivors := make([]id.ID, 0, len(ids))
		for _, i := range perm[nRem:] {
			survivors = append(survivors, ids[i])
		}
		added := make([]id.ID, rng.Intn(16)+1)
		for i := range added {
			added[i] = gen.Next()
		}
		if err := tr.Update(added, removed); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		ids = append(survivors, added...)
		equivalent(t, tr, ids, b, k, c)
	}
}

func TestUpdateLargeBatchMatchesRebuild(t *testing.T) {
	// Batches above the scan/set validation threshold (mass-join path).
	const b, k, c = 4, 3, 8
	gen := id.NewGenerator(21)
	ids := make([]id.ID, 128)
	for i := range ids {
		ids[i] = gen.Next()
	}
	tr, err := New(ids, b, k, c)
	if err != nil {
		t.Fatal(err)
	}
	added := make([]id.ID, 128)
	for i := range added {
		added[i] = gen.Next()
	}
	if err := tr.Update(added, ids[:64]); err != nil {
		t.Fatal(err)
	}
	equivalent(t, tr, append(append([]id.ID{}, ids[64:]...), added...), b, k, c)
}

func TestUpdateRejectsBadDeltas(t *testing.T) {
	ids := []id.ID{10, 20, 30, 40}
	tr, err := New(ids, 4, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name           string
		added, removed []id.ID
	}{
		{"remove non-member", nil, []id.ID{99}},
		{"add existing member", []id.ID{20}, nil},
		{"add twice in batch", []id.ID{50, 50}, nil},
		{"remove twice in batch", nil, []id.ID{20, 20}},
		{"add and remove same id", []id.ID{20}, []id.ID{20}},
		{"empty membership", nil, []id.ID{10, 20, 30, 40}},
	}
	for _, tc := range cases {
		if err := tr.Update(tc.added, tc.removed); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// Failed updates must leave the oracle untouched.
	equivalent(t, tr, ids, 4, 3, 4)
	// Single-ID convenience wrappers share the validation.
	if err := tr.Add(20); err == nil {
		t.Error("Add of existing member accepted")
	}
	if err := tr.Remove(99); err == nil {
		t.Error("Remove of non-member accepted")
	}
	if err := tr.Add(50); err != nil {
		t.Errorf("Add(50): %v", err)
	}
	if err := tr.Remove(10); err != nil {
		t.Errorf("Remove(10): %v", err)
	}
	equivalent(t, tr, []id.ID{20, 30, 40, 50}, 4, 3, 4)
}

func TestUpdateReinsertRemovedID(t *testing.T) {
	// Removing an ID and re-adding it in a LATER batch must restore the
	// exact original oracle (the livenet kill→respawn cycle).
	ids := id.Unique(40, 7)
	tr, err := New(ids, 4, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Update(nil, ids[:10]); err != nil {
		t.Fatal(err)
	}
	equivalent(t, tr, ids[10:], 4, 3, 8)
	if err := tr.Update(ids[:10], nil); err != nil {
		t.Fatal(err)
	}
	equivalent(t, tr, ids, 4, 3, 8)
}

// buildMembers gives every node a partially filled leaf set and prefix
// table so measurement sees a realistic mid-convergence state.
func buildMembers(ids []id.ID, b, k, c int) []Member {
	descs := make([]peer.Descriptor, len(ids))
	for i, v := range ids {
		descs[i] = peer.Descriptor{ID: v, Addr: peer.Addr(int32(i))}
	}
	members := make([]Member, len(ids))
	for i, v := range ids {
		ls := core.NewLeafSet(v, c)
		lo := i % (len(descs) - 8)
		ls.Update(descs[lo : lo+8])
		pt := core.NewPrefixTable(v, b, k)
		pt.AddAll(descs[(i*13)%len(descs):])
		members[i] = Member{Self: v, Leaf: ls, Table: pt}
	}
	return members
}

func TestMeasureAllMatchesSerialMethods(t *testing.T) {
	const b, k, c = 4, 3, 8
	ids := id.Unique(96, 5)
	tr, err := New(ids, b, k, c)
	if err != nil {
		t.Fatal(err)
	}
	members := buildMembers(ids, b, k, c)

	// Reference: the existing one-node-at-a-time public methods.
	var want Aggregate
	for _, m := range members {
		lm, lt := tr.LeafSetMissingFor(m.Self, m.Leaf)
		pm, pt, pd := tr.PrefixMissingLive(m.Self, m.Table)
		want.LeafMissing += lm
		want.LeafTotal += lt
		want.PrefixMissing += pm
		want.PrefixTotal += pt
		want.PrefixDead += pd
		want.LeafDead += tr.LeafSetDead(m.Leaf)
		if lm == 0 {
			want.LeafPerfect++
		}
		if pm == 0 {
			want.PrefixPerfect++
		}
	}
	for _, workers := range []int{1, 2, 3, 7, 32} {
		if got := tr.MeasureAll(members, workers); got != want {
			t.Errorf("MeasureAll(workers=%d) = %+v, want %+v", workers, got, want)
		}
	}
}

func TestMeasureAllDeadEntries(t *testing.T) {
	// Entries naming departed members must count as dead, not as
	// occupancy — measured through a real churn delta.
	const b, k, c = 4, 3, 8
	ids := id.Unique(32, 9)
	tr, err := New(ids, b, k, c)
	if err != nil {
		t.Fatal(err)
	}
	members := buildMembers(ids, b, k, c)
	if err := tr.Update(nil, []id.ID{ids[0]}); err != nil {
		t.Fatal(err)
	}
	agg := tr.MeasureAll(members[1:], 2)
	if agg.LeafDead == 0 && agg.PrefixDead == 0 {
		t.Error("departed member's descriptors not counted dead anywhere")
	}
	// The departed node itself is skipped silently when measured.
	empty := tr.MeasureAll(members[:1], 1)
	if empty != (Aggregate{}) {
		t.Errorf("non-member measurement contributed %+v", empty)
	}
}
