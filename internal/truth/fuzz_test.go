package truth

import (
	"encoding/binary"
	"testing"

	"repro/internal/id"
)

// FuzzTrieCounts cross-checks the radix trie's subtree counts against a
// naive scan for arbitrary membership sets.
func FuzzTrieCounts(f *testing.F) {
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0}, uint8(0), uint8(3))
	f.Add([]byte{0xAB, 0xCD, 0, 0, 0, 0, 0, 0}, uint8(1), uint8(0))
	f.Fuzz(func(t *testing.T, data []byte, rowRaw, colRaw uint8) {
		var ids []id.ID
		seen := make(map[id.ID]bool)
		for len(data) >= 8 {
			v := id.ID(binary.LittleEndian.Uint64(data))
			data = data[8:]
			if !seen[v] {
				seen[v] = true
				ids = append(ids, v)
			}
		}
		if len(ids) == 0 {
			return
		}
		const b = 4
		tr, err := New(ids, b, 3, 8)
		if err != nil {
			t.Fatal(err)
		}
		self := ids[0]
		row := int(rowRaw) % 8
		col := int(colRaw) % 16
		got := tr.AvailableAt(self, row, col)
		want := 0
		for _, v := range ids {
			if v == self {
				continue
			}
			if id.CommonPrefixLen(self, v, b) == row && v.Digit(row, b) == col {
				want++
			}
		}
		if got != want {
			t.Fatalf("AvailableAt(%s, %d, %d) = %d, want %d (n=%d)", self, row, col, got, want, len(ids))
		}
	})
}
