// Sampled measurement: the paper reports convergence as means over node
// samples, and at paper scale (2^18) even the sharded full-network
// MeasureAll costs seconds per cycle. MeasureSample measures a uniform
// node sample without replacement and reports ratio estimates of the
// missing-entry proportions with Student-t confidence intervals, making
// per-cycle measurement O(sample) instead of O(N).
//
// Estimator. The exact network metric is a ratio of population sums,
// R = Σ missing_i / Σ total_i. Over a simple random sample without
// replacement of s of the N nodes, the classical survey-sampling ratio
// estimator R̂ = Σ_s missing_i / Σ_s total_i targets R with first-order
// bias O(1/s), and its linearized variance is
//
//	Var(R̂) ≈ (1 − s/N) · s_e² / (s · t̄²)
//
// where s_e² = Σ_s (missing_i − R̂·total_i)² / (s−1) is the residual
// variance and t̄ the sample mean of total_i; (1 − s/N) is the finite
// population correction for sampling without replacement. The reported
// interval is R̂ ± t_{1−α/2, s−1} · √Var(R̂).
//
// Stratification. Under churn the population is a mixture: a small fresh
// minority (nodes that joined in the last cycle or two) with large missing
// counts, and an established majority near zero. A simple random sample's
// count of fresh nodes is itself binomial — the dominant variance term —
// and the residual distribution is bimodal, so the t-interval undercovers.
// When the membership marks both fresh and established nodes (Member.Fresh)
// the estimator therefore samples the two strata separately with
// proportional allocation and reports the combined ratio estimator
//
//	R̂ = Σ_h (N_h/n_h)·m_h / Σ_h (N_h/n_h)·t_h
//
// with the stratified linearized variance
//
//	Var(R̂) = (1/T̂²) · Σ_h N_h²·(1 − n_h/N_h)·s_eh²/n_h
//
// where s_eh² is the within-stratum variance of the residuals
// e_i = missing_i − R̂·total_i (centred per stratum, since the combined R̂
// does not zero each stratum's residual mean), and the t-interval uses
// df = Σ_h (n_h − 1). Fixing each stratum's sample count removes the
// binomial mixing term entirely. A stratum sampled completely is a census:
// it contributes its exact sums and zero variance.
package truth

import (
	"math"
	"math/rand"
	"runtime"
	"slices"
	"sync"
)

// Estimate is a point estimate together with the half-width of its
// two-sided confidence interval: the exact value is claimed to lie in
// [Mean−CI, Mean+CI] at the configured confidence level.
type Estimate struct {
	Mean float64
	CI   float64
}

// Covers reports whether exact lies inside the interval.
func (e Estimate) Covers(exact float64) bool {
	return math.Abs(e.Mean-exact) <= e.CI
}

// SampleAggregate is the result of a sampled measurement.
type SampleAggregate struct {
	// SampleSize is the number of nodes actually measured; Population is
	// the membership size the sample was drawn from.
	SampleSize, Population int
	// Confidence is the two-sided level of the intervals (e.g. 0.95).
	Confidence float64
	// Exact is true when the requested sample covered the whole
	// population, so the estimates are exact and the CIs zero.
	Exact bool
	// Strata is the number of node-age strata the estimator used: 1 on
	// the classical single-stratum path (uniform membership, or an exact
	// fallback), 2 when the membership contained both fresh and
	// established nodes and the sample was stratified (see Member.Fresh).
	Strata int
	// LeafMissing and PrefixMissing estimate the network-wide missing
	// proportions — the quantities MeasureAll computes exactly.
	LeafMissing, PrefixMissing Estimate
	// Sums are the raw integer sums over the measured nodes only (the
	// whole network when Exact). Callers scale the count metrics by
	// Population/SampleSize to project them to the network.
	Sums Aggregate
}

// sampleSums extends the per-shard Aggregate with the integer square and
// cross sums the variance of the ratio estimator needs. Everything stays
// integral until the final estimate, so the result is bit-identical for
// every worker count.
type sampleSums struct {
	agg                          Aggregate
	leafMM, leafMT, leafTT       int64 // Σm², Σm·t, Σt² (leaf)
	prefixMM, prefixMT, prefixTT int64 // Σm², Σm·t, Σt² (prefix)
}

func (s *sampleSums) add(o sampleSums) {
	a, b := &s.agg, &o.agg
	a.LeafMissing += b.LeafMissing
	a.LeafTotal += b.LeafTotal
	a.PrefixMissing += b.PrefixMissing
	a.PrefixTotal += b.PrefixTotal
	a.LeafPerfect += b.LeafPerfect
	a.PrefixPerfect += b.PrefixPerfect
	a.LeafDead += b.LeafDead
	a.PrefixDead += b.PrefixDead
	s.leafMM += o.leafMM
	s.leafMT += o.leafMT
	s.leafTT += o.leafTT
	s.prefixMM += o.prefixMM
	s.prefixMT += o.prefixMT
	s.prefixTT += o.prefixTT
}

func (s *sampleSums) measure(t *Truth, m Member, scr *measureScratch) {
	nc, ok := t.measureNode(m, scr)
	if !ok {
		return
	}
	nc.addTo(&s.agg)
	lm, lt := int64(nc.leafMissing), int64(nc.leafTotal)
	pm, pt := int64(nc.prefixMissing), int64(nc.prefixTotal)
	s.leafMM += lm * lm
	s.leafMT += lm * lt
	s.leafTT += lt * lt
	s.prefixMM += pm * pm
	s.prefixMT += pm * pt
	s.prefixTT += pt * pt
}

// MeasureSample measures a uniform random sample of sampleSize members
// drawn without replacement and returns ratio estimates of the
// network-wide missing proportions with 95% Student-t confidence
// intervals. The measurement shares MeasureAll's per-shard scratch and
// worker-pool sharding (workers < 1 means GOMAXPROCS); like MeasureAll
// the result is bit-identical for every worker count, because the sample
// is drawn before sharding and every accumulation is integral. rng drives
// only the sample selection; a given (rng state, members) pair yields the
// same sample deterministically. sampleSize <= 0 or >= len(members) falls
// back to an exact full measurement with zero-width intervals (without
// consuming rng). A membership containing both fresh and established nodes
// (Member.Fresh) is sampled per age stratum and estimated with the
// combined stratified estimator — see the package comment.
func (t *Truth) MeasureSample(members []Member, sampleSize int, rng *rand.Rand, workers int) SampleAggregate {
	return t.MeasureSampleConf(members, sampleSize, 0.95, rng, workers)
}

// MeasureSampleConf is MeasureSample at an explicit two-sided confidence
// level in (0, 1); out-of-range values select 0.95.
func (t *Truth) MeasureSampleConf(members []Member, sampleSize int, confidence float64, rng *rand.Rand, workers int) SampleAggregate {
	if confidence <= 0 || confidence >= 1 {
		confidence = 0.95
	}
	n := len(members)
	if sampleSize <= 0 || sampleSize >= n {
		agg := t.MeasureAll(members, workers)
		sa := SampleAggregate{
			SampleSize: n,
			Population: n,
			Confidence: confidence,
			Exact:      true,
			Strata:     1,
			Sums:       agg,
		}
		if agg.LeafTotal > 0 {
			sa.LeafMissing.Mean = float64(agg.LeafMissing) / float64(agg.LeafTotal)
		}
		if agg.PrefixTotal > 0 {
			sa.PrefixMissing.Mean = float64(agg.PrefixMissing) / float64(agg.PrefixTotal)
		}
		return sa
	}

	nFresh := 0
	for i := range members {
		if members[i].Fresh {
			nFresh++
		}
	}
	if nFresh > 0 && nFresh < n {
		return t.measureStratified(members, sampleSize, confidence, nFresh, rng, workers)
	}

	idx := sampleIndices(rng, n, sampleSize)
	sums := measureIndices(t, members, idx, workers)
	tq := tQuantile(confidence, sampleSize-1)
	return SampleAggregate{
		SampleSize: sampleSize,
		Population: n,
		Confidence: confidence,
		Strata:     1,
		LeafMissing: ratioEstimate(int64(sums.agg.LeafMissing), int64(sums.agg.LeafTotal),
			sums.leafMM, sums.leafMT, sums.leafTT, sampleSize, n, tq),
		PrefixMissing: ratioEstimate(int64(sums.agg.PrefixMissing), int64(sums.agg.PrefixTotal),
			sums.prefixMM, sums.prefixMT, sums.prefixTT, sampleSize, n, tq),
		Sums: sums.agg,
	}
}

// stratum is one age stratum's measured sample: its integer sums, how many
// nodes were measured, and how many the stratum holds in the population.
type stratum struct {
	sums sampleSums
	n, N int
}

// measureStratified draws and measures the fresh and established strata
// separately (proportional allocation with a per-stratum floor, census
// when the allocation covers a stratum) and combines them with the
// stratified ratio estimator described in the package comment. The fresh
// stratum draws from rng first, then the established one, so the result is
// a deterministic function of (rng state, members) like the classical path;
// a census stratum consumes no rng at all, mirroring the exact fallback.
func (t *Truth) measureStratified(members []Member, sampleSize int, confidence float64, nFresh int, rng *rand.Rand, workers int) SampleAggregate {
	n := len(members)
	freshIdx := make([]int, 0, nFresh)
	estIdx := make([]int, 0, n-nFresh)
	for i := range members {
		if members[i].Fresh {
			freshIdx = append(freshIdx, i)
		} else {
			estIdx = append(estIdx, i)
		}
	}
	sFresh, sEst := allocateStrata(sampleSize, len(freshIdx), len(estIdx))
	strata := [2]stratum{
		t.measureStratum(members, freshIdx, sFresh, rng, workers),
		t.measureStratum(members, estIdx, sEst, rng, workers),
	}
	measured := strata[0].n + strata[1].n
	df := 0
	for _, st := range strata {
		if st.n < st.N && st.n >= 2 {
			df += st.n - 1
		}
	}
	tq := tQuantile(confidence, df)
	sa := SampleAggregate{
		SampleSize: measured,
		Population: n,
		Confidence: confidence,
		Strata:     2,
		LeafMissing: combinedRatioEstimate([2]metricSums{
			strata[0].metric(leafMetric), strata[1].metric(leafMetric)}, tq),
		PrefixMissing: combinedRatioEstimate([2]metricSums{
			strata[0].metric(prefixMetric), strata[1].metric(prefixMetric)}, tq),
	}
	var both sampleSums
	both.add(strata[0].sums)
	both.add(strata[1].sums)
	sa.Sums = both.agg
	return sa
}

// measureStratum samples s of the stratum's indices (all of them when
// s >= len(idx): a census, drawing nothing from rng) and measures them.
func (t *Truth) measureStratum(members []Member, idx []int, s int, rng *rand.Rand, workers int) stratum {
	picked := idx
	if s < len(idx) {
		pos := sampleIndices(rng, len(idx), s)
		picked = make([]int, len(pos))
		for i, p := range pos {
			picked[i] = idx[p]
		}
	}
	return stratum{
		sums: measureIndices(t, members, picked, workers),
		n:    len(picked),
		N:    len(idx),
	}
}

// stratumFloor is the smallest sample a stratum is given (when it holds
// that many nodes): a within-stratum variance estimated from fewer than ~8
// residuals is noisy enough to destabilise the interval width, and the
// budget cost of the floor is negligible for the stratum sizes the harness
// produces.
const stratumFloor = 8

// allocateStrata splits the requested sample size proportionally across
// the two strata, then clamps so each stratum measures at least
// stratumFloor nodes, or all of them when it holds fewer. The point of
// stratifying is that neither stratum's count is left to chance;
// proportional allocation keeps the established stratum's sample large,
// which matters because under continuous churn the established majority
// carries its own missing-entry tail (dead entries left by departed
// neighbours), not just the fresh minority. The clamped total may differ
// slightly from the request; the caller reports the actual size.
func allocateStrata(sampleSize, nFresh, nEst int) (sFresh, sEst int) {
	sFresh = int(math.Round(float64(sampleSize) * float64(nFresh) / float64(nFresh+nEst)))
	if sFresh < stratumFloor {
		sFresh = stratumFloor
	}
	if sFresh > nFresh {
		sFresh = nFresh
	}
	sEst = sampleSize - sFresh
	if sEst < stratumFloor {
		sEst = stratumFloor
	}
	if sEst > nEst {
		sEst = nEst
	}
	return sFresh, sEst
}

// metricSums is one metric's slice of a stratum: the per-metric integer
// sums plus the stratum's sample and population counts.
type metricSums struct {
	m, t, mm, mt, tt int64
	n, N             int
}

const (
	leafMetric = iota
	prefixMetric
)

func (st stratum) metric(which int) metricSums {
	s := &st.sums
	ms := metricSums{n: st.n, N: st.N}
	if which == leafMetric {
		ms.m, ms.t = int64(s.agg.LeafMissing), int64(s.agg.LeafTotal)
		ms.mm, ms.mt, ms.tt = s.leafMM, s.leafMT, s.leafTT
	} else {
		ms.m, ms.t = int64(s.agg.PrefixMissing), int64(s.agg.PrefixTotal)
		ms.mm, ms.mt, ms.tt = s.prefixMM, s.prefixMT, s.prefixTT
	}
	return ms
}

// combinedRatioEstimate finalizes one metric's stratified ratio estimate.
// With a single stratum covering the population it reduces exactly to
// ratioEstimate (the weights cancel); see the package comment for the
// formulas.
func combinedRatioEstimate(strata [2]metricSums, tq float64) Estimate {
	var mHat, tHat float64
	for _, st := range strata {
		if st.n == 0 {
			continue
		}
		w := float64(st.N) / float64(st.n)
		mHat += w * float64(st.m)
		tHat += w * float64(st.t)
	}
	if tHat <= 0 {
		return Estimate{}
	}
	r := mHat / tHat
	var v float64
	for _, st := range strata {
		if st.n < 2 || st.n >= st.N {
			// Degenerate or census stratum: no sampling variance.
			continue
		}
		// Within-stratum residual variance around the combined ratio,
		// centred because Σe_h ≠ 0 under the combined R̂.
		sumE := float64(st.m) - r*float64(st.t)
		sumE2 := float64(st.mm) - 2*r*float64(st.mt) + r*r*float64(st.tt)
		ss := sumE2 - sumE*sumE/float64(st.n)
		if ss < 0 {
			ss = 0
		}
		s2 := ss / float64(st.n-1)
		fpc := 1 - float64(st.n)/float64(st.N)
		v += float64(st.N) * float64(st.N) * fpc * s2 / float64(st.n)
	}
	return Estimate{Mean: r, CI: tq * math.Sqrt(v) / tHat}
}

// measureIndices measures the members at the given (sorted) indices,
// sharding across the worker pool exactly like MeasureAll.
func measureIndices(t *Truth, members []Member, idx []int, workers int) sampleSums {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(idx) {
		workers = len(idx)
	}
	if workers <= 1 {
		var sums sampleSums
		scr := newMeasureScratch(t)
		for _, i := range idx {
			sums.measure(t, members[i], scr)
		}
		return sums
	}
	partials := make([]sampleSums, workers)
	chunk := (len(idx) + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, len(idx))
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			scr := newMeasureScratch(t)
			for _, i := range idx[lo:hi] {
				partials[w].measure(t, members[i], scr)
			}
		}(w, lo, hi)
	}
	wg.Wait()
	var sums sampleSums
	for i := range partials {
		sums.add(partials[i])
	}
	return sums
}

// sampleIndices draws a uniform sample of s distinct indices in [0, n)
// without replacement using Floyd's algorithm — O(s) memory and exactly s
// rng draws — and returns them sorted, so the sharded measurement walks
// members in cache-friendly order and the integer sums are independent of
// draw order anyway.
func sampleIndices(rng *rand.Rand, n, s int) []int {
	chosen := make(map[int]struct{}, s)
	idx := make([]int, 0, s)
	for i := n - s; i < n; i++ {
		j := rng.Intn(i + 1)
		if _, dup := chosen[j]; dup {
			j = i
		}
		chosen[j] = struct{}{}
		idx = append(idx, j)
	}
	slices.Sort(idx)
	return idx
}

// ratioEstimate finalizes one metric's ratio estimate from the integer
// sample sums. tq is the Student-t critical value for the interval.
func ratioEstimate(sumM, sumT, sumMM, sumMT, sumTT int64, s, n int, tq float64) Estimate {
	if sumT <= 0 {
		return Estimate{}
	}
	r := float64(sumM) / float64(sumT)
	if s < 2 {
		return Estimate{Mean: r}
	}
	// Residual sum of squares Σ(m_i − R̂·t_i)² expanded over the integer
	// sums; clamp tiny negative float cancellation.
	rss := float64(sumMM) - 2*r*float64(sumMT) + r*r*float64(sumTT)
	if rss < 0 {
		rss = 0
	}
	s2 := rss / float64(s-1)
	tbar := float64(sumT) / float64(s)
	fpc := 1 - float64(s)/float64(n)
	if fpc < 0 {
		fpc = 0
	}
	se := math.Sqrt(fpc*s2/float64(s)) / tbar
	return Estimate{Mean: r, CI: tq * se}
}

// tQuantile returns the two-sided Student-t critical value: the t with
// P(|T_df| <= t) = confidence. Exact closed forms for df 1 and 2; the
// Cornish-Fisher expansion of the normal quantile otherwise (relative
// error < 0.2% at df = 3, < 0.01% for df >= 10 — far below the
// statistical noise of any sample the harness draws).
func tQuantile(confidence float64, df int) float64 {
	p := 0.5 + confidence/2
	switch {
	case df <= 0:
		return math.Inf(1)
	case df == 1:
		return math.Tan(math.Pi * (p - 0.5))
	case df == 2:
		a := 2*p - 1
		return a * math.Sqrt(2/(1-a*a))
	}
	z := normQuantile(p)
	v := float64(df)
	z2 := z * z
	g1 := (z2 + 1) * z / 4
	g2 := ((5*z2+16)*z2 + 3) * z / 96
	g3 := (((3*z2+19)*z2+17)*z2 - 15) * z / 384
	g4 := (((((79*z2+776)*z2+1482)*z2-1920)*z2 - 945) * z) / 92160
	return z + g1/v + g2/(v*v) + g3/(v*v*v) + g4/(v*v*v*v)
}

// normQuantile is the standard normal inverse CDF (Acklam's rational
// approximation, |relative error| < 1.15e-9 over (0, 1)).
func normQuantile(p float64) float64 {
	const (
		a1 = -3.969683028665376e+01
		a2 = 2.209460984245205e+02
		a3 = -2.759285104469687e+02
		a4 = 1.383577518672690e+02
		a5 = -3.066479806614716e+01
		a6 = 2.506628277459239e+00

		b1 = -5.447609879822406e+01
		b2 = 1.615858368580409e+02
		b3 = -1.556989798598866e+02
		b4 = 6.680131188771972e+01
		b5 = -1.328068155288572e+01

		c1 = -7.784894002430293e-03
		c2 = -3.223964580411365e-01
		c3 = -2.400758277161838e+00
		c4 = -2.549732539343734e+00
		c5 = 4.374664141464968e+00
		c6 = 2.938163982698783e+00

		d1 = 7.784695709041462e-03
		d2 = 3.224671290700398e-01
		d3 = 2.445134137142996e+00
		d4 = 3.754408661907416e+00

		pLow  = 0.02425
		pHigh = 1 - pLow
	)
	switch {
	case p <= 0:
		return math.Inf(-1)
	case p >= 1:
		return math.Inf(1)
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c1*q+c2)*q+c3)*q+c4)*q+c5)*q + c6) /
			((((d1*q+d2)*q+d3)*q+d4)*q + 1)
	case p > pHigh:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c1*q+c2)*q+c3)*q+c4)*q+c5)*q + c6) /
			((((d1*q+d2)*q+d3)*q+d4)*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a1*r+a2)*r+a3)*r+a4)*r+a5)*r + a6) * q /
			(((((b1*r+b2)*r+b3)*r+b4)*r+b5)*r + 1)
	}
}
