package truth

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/id"
	"repro/internal/peer"
)

func TestNewRejectsBadInput(t *testing.T) {
	if _, err := New(nil, 4, 3, 20); err == nil {
		t.Error("empty membership accepted")
	}
	if _, err := New([]id.ID{1, 2, 1}, 4, 3, 20); err == nil {
		t.Error("duplicate membership accepted")
	}
}

// naiveAvailable counts, without the trie, the members whose slot relative
// to self is (row, col).
func naiveAvailable(ids []id.ID, self id.ID, row, col, b int) int {
	n := 0
	for _, v := range ids {
		if v == self {
			continue
		}
		if id.CommonPrefixLen(self, v, b) == row && v.Digit(row, b) == col {
			n++
		}
	}
	return n
}

func TestAvailableAtMatchesNaive(t *testing.T) {
	const b = 4
	rng := rand.New(rand.NewSource(5))
	ids := id.Unique(300, 5)
	tr, err := New(ids, b, 3, 20)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 100; trial++ {
		self := ids[rng.Intn(len(ids))]
		row := rng.Intn(6)
		col := rng.Intn(16)
		want := naiveAvailable(ids, self, row, col, b)
		got := tr.AvailableAt(self, row, col)
		if got != want {
			t.Fatalf("AvailableAt(%s, %d, %d) = %d, want %d", self, row, col, got, want)
		}
	}
}

func TestAvailableAtSmallBases(t *testing.T) {
	for _, b := range []int{1, 2, 8} {
		ids := id.Unique(100, int64(b))
		tr, err := New(ids, b, 3, 20)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(b)))
		for trial := 0; trial < 30; trial++ {
			self := ids[rng.Intn(len(ids))]
			row := rng.Intn(3)
			col := rng.Intn(1 << uint(b))
			if got, want := tr.AvailableAt(self, row, col), naiveAvailable(ids, self, row, col, b); got != want {
				t.Fatalf("b=%d: AvailableAt(%s, %d, %d) = %d, want %d", b, self, row, col, got, want)
			}
		}
	}
}

func TestExpectedSlotCountsMatchesNaive(t *testing.T) {
	const b, k = 4, 3
	ids := id.Unique(200, 9)
	tr, err := New(ids, b, k, 20)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		self := ids[rng.Intn(len(ids))]
		expected := tr.ExpectedSlotCounts(self)
		for row := 0; row < 8; row++ {
			for col := 0; col < 16; col++ {
				want := naiveAvailable(ids, self, row, col, b)
				if want > k {
					want = k
				}
				got := 0
				if row < len(expected) {
					got = expected[row][col]
				}
				if got != want {
					t.Fatalf("self %s slot (%d,%d): expected %d, naive %d", self, row, col, got, want)
				}
			}
		}
	}
}

func TestExpectedSlotCountsOwnDigitZero(t *testing.T) {
	ids := id.Unique(100, 3)
	tr, err := New(ids, 4, 3, 20)
	if err != nil {
		t.Fatal(err)
	}
	self := ids[0]
	for row, cols := range tr.ExpectedSlotCounts(self) {
		if cols[self.Digit(row, 4)] != 0 {
			t.Fatalf("row %d: own-digit slot must be zero", row)
		}
	}
}

// buildRing returns n IDs plus a Truth over them.
func buildRing(t *testing.T, n int, seed int64, c int) ([]id.ID, *Truth) {
	t.Helper()
	ids := id.Unique(n, seed)
	tr, err := New(ids, 4, 3, c)
	if err != nil {
		t.Fatal(err)
	}
	return ids, tr
}

// naivePerfectLeafSet computes the perfect leaf set by brute force over the
// whole membership, mirroring the protocol selection exactly.
func naivePerfectLeafSet(ids []id.ID, self id.ID, c int) map[id.ID]bool {
	ls := core.NewLeafSet(self, c)
	ds := make([]peer.Descriptor, 0, len(ids))
	for i, v := range ids {
		ds = append(ds, peer.Descriptor{ID: v, Addr: peer.Addr(i)})
	}
	ls.Update(ds)
	out := make(map[id.ID]bool, ls.Len())
	for _, d := range ls.Slice() {
		out[d.ID] = true
	}
	return out
}

func TestPerfectLeafSetMatchesBruteForce(t *testing.T) {
	for _, n := range []int{5, 12, 21, 50, 300} {
		const c = 8
		ids, tr := buildRing(t, n, int64(n), c)
		rng := rand.New(rand.NewSource(int64(n)))
		for trial := 0; trial < 20; trial++ {
			self := ids[rng.Intn(len(ids))]
			want := naivePerfectLeafSet(ids, self, c)
			got := tr.PerfectLeafSet(self)
			if len(got) != len(want) {
				t.Fatalf("n=%d self=%s: size %d, want %d", n, self, len(got), len(want))
			}
			for _, v := range got {
				if !want[v] {
					t.Fatalf("n=%d self=%s: %s not in brute-force set", n, self, v)
				}
			}
		}
	}
}

func TestPerfectLeafSetUnknownSelf(t *testing.T) {
	_, tr := buildRing(t, 10, 1, 4)
	if got := tr.PerfectLeafSet(id.ID(123456789)); got != nil {
		t.Errorf("unknown self returned %v", got)
	}
}

func TestLeafSetMissingFor(t *testing.T) {
	ids, tr := buildRing(t, 50, 2, 8)
	self := ids[0]
	ls := core.NewLeafSet(self, 8)
	missing, total := tr.LeafSetMissingFor(self, ls)
	if total != 8 {
		t.Fatalf("total = %d, want 8", total)
	}
	if missing != total {
		t.Fatalf("empty leaf set should miss everything: %d/%d", missing, total)
	}
	// Fill with the perfect entries: zero missing.
	perfect := tr.PerfectLeafSet(self)
	ds := make([]peer.Descriptor, len(perfect))
	for i, v := range perfect {
		ds[i] = peer.Descriptor{ID: v, Addr: peer.Addr(i)}
	}
	ls.Update(ds)
	missing, total = tr.LeafSetMissingFor(self, ls)
	if missing != 0 {
		t.Fatalf("perfectly filled leaf set missing %d/%d", missing, total)
	}
}

func TestPrefixMissingFor(t *testing.T) {
	ids, tr := buildRing(t, 100, 4, 8)
	self := ids[0]
	pt := core.NewPrefixTable(self, 4, 3)
	missing, total := tr.PrefixMissingFor(self, pt)
	if total == 0 {
		t.Fatal("expected some perfect prefix entries at n=100")
	}
	if missing != total {
		t.Fatalf("empty table should miss everything: %d/%d", missing, total)
	}
	// Insert every member: table perfect (per-slot counts reach min(k, avail)).
	for i, v := range ids {
		pt.Add(peer.Descriptor{ID: v, Addr: peer.Addr(i)})
	}
	missing, _ = tr.PrefixMissingFor(self, pt)
	if missing != 0 {
		t.Fatalf("fully fed table still missing %d entries", missing)
	}
}

func TestPrefixMissingPartial(t *testing.T) {
	// Two IDs differing in the first digit: each expects exactly 1 entry
	// from the other (plus nothing deeper).
	ids := []id.ID{0x1000000000000000, 0xF000000000000000}
	tr, err := New(ids, 4, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	pt := core.NewPrefixTable(ids[0], 4, 3)
	missing, total := tr.PrefixMissingFor(ids[0], pt)
	if total != 1 || missing != 1 {
		t.Fatalf("missing/total = %d/%d, want 1/1", missing, total)
	}
	pt.Add(peer.Descriptor{ID: ids[1], Addr: 1})
	missing, total = tr.PrefixMissingFor(ids[0], pt)
	if total != 1 || missing != 0 {
		t.Fatalf("after add: missing/total = %d/%d, want 0/1", missing, total)
	}
}

// TestTrieInsertionOrderIrrelevant: the trie is a pure function of the
// membership set.
func TestTrieInsertionOrderIrrelevant(t *testing.T) {
	f := func(seed int64) bool {
		ids := id.Unique(64, seed)
		tr1, err1 := New(ids, 4, 3, 8)
		shuffled := make([]id.ID, len(ids))
		copy(shuffled, ids)
		rng := rand.New(rand.NewSource(seed + 1))
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		tr2, err2 := New(shuffled, 4, 3, 8)
		if err1 != nil || err2 != nil {
			return false
		}
		for _, self := range ids[:8] {
			e1 := tr1.ExpectedSlotCounts(self)
			e2 := tr2.ExpectedSlotCounts(self)
			if len(e1) != len(e2) {
				return false
			}
			for i := range e1 {
				for j := range e1[i] {
					if e1[i][j] != e2[i][j] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestN(t *testing.T) {
	_, tr := buildRing(t, 33, 1, 4)
	if tr.N() != 33 {
		t.Errorf("N = %d, want 33", tr.N())
	}
}
