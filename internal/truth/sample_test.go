package truth

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/id"
	"repro/internal/peer"
)

// sampleWorld builds a membership with deliberately imperfect, per-node
// heterogeneous structures: node i's leaf set and prefix table are filled
// from a window of the descriptor ring, so missing fractions vary across
// nodes — the variance the estimator has to cope with.
func sampleWorld(t testing.TB, n int) (*Truth, []Member) {
	t.Helper()
	cfg := core.DefaultConfig()
	ids := id.Unique(n, 7)
	descs := make([]peer.Descriptor, n)
	for i, v := range ids {
		descs[i] = peer.Descriptor{ID: v, Addr: peer.Addr(i)}
	}
	tr, err := New(ids, cfg.B, cfg.K, cfg.C)
	if err != nil {
		t.Fatal(err)
	}
	members := make([]Member, n)
	for i := range members {
		ls := core.NewLeafSet(ids[i], cfg.C)
		// Window size varies with i so leaf quality is heterogeneous.
		w := 10 + i%30
		lo := i % (n - w)
		ls.Update(descs[lo : lo+w])
		pt := core.NewPrefixTable(ids[i], cfg.B, cfg.K)
		pw := 32 + (i*13)%128
		start := (i * 131) % (n - pw)
		pt.AddAll(descs[start : start+pw])
		members[i] = Member{Self: ids[i], Leaf: ls, Table: pt}
	}
	return tr, members
}

func TestMeasureSampleExactFallback(t *testing.T) {
	tr, members := sampleWorld(t, 512)
	exact := tr.MeasureAll(members, 2)
	for _, s := range []int{0, len(members), len(members) + 10} {
		sa := tr.MeasureSample(members, s, rand.New(rand.NewSource(1)), 2)
		if !sa.Exact {
			t.Fatalf("sampleSize=%d: want exact fallback", s)
		}
		if sa.Sums != exact {
			t.Fatalf("sampleSize=%d: Sums = %+v, want %+v", s, sa.Sums, exact)
		}
		if sa.LeafMissing.CI != 0 || sa.PrefixMissing.CI != 0 {
			t.Fatalf("sampleSize=%d: exact fallback must have zero CI", s)
		}
		wantLeaf := float64(exact.LeafMissing) / float64(exact.LeafTotal)
		if sa.LeafMissing.Mean != wantLeaf {
			t.Fatalf("sampleSize=%d: leaf mean %v, want %v", s, sa.LeafMissing.Mean, wantLeaf)
		}
	}
}

// TestMeasureSampleWorkerInvariance pins the bit-identity contract: the
// sample is drawn before sharding and every accumulation is integral, so
// the SampleAggregate — floats included — is identical for every worker
// count.
func TestMeasureSampleWorkerInvariance(t *testing.T) {
	tr, members := sampleWorld(t, 1024)
	var ref SampleAggregate
	for i, workers := range []int{1, 2, 3, 4, 7} {
		sa := tr.MeasureSample(members, 200, rand.New(rand.NewSource(42)), workers)
		if i == 0 {
			ref = sa
			continue
		}
		if sa != ref {
			t.Fatalf("workers=%d diverged: %+v != %+v", workers, sa, ref)
		}
	}
}

func TestMeasureSampleDeterministic(t *testing.T) {
	tr, members := sampleWorld(t, 1024)
	a := tr.MeasureSample(members, 128, rand.New(rand.NewSource(9)), 2)
	b := tr.MeasureSample(members, 128, rand.New(rand.NewSource(9)), 4)
	if a != b {
		t.Fatalf("same seed diverged: %+v != %+v", a, b)
	}
	c := tr.MeasureSample(members, 128, rand.New(rand.NewSource(10)), 2)
	if a == c {
		t.Fatal("different seeds produced identical samples (suspicious)")
	}
}

// TestMeasureSampleEstimatesNearExact checks the estimator is in the right
// neighbourhood: a single draw from a deliberately heavy-tailed synthetic
// world must land within twice its own (non-degenerate) confidence
// interval of the exact value. The statistical claim proper — ≥ 93/100
// draws inside 1× CI on realistic protocol state — is the coverage
// regression in internal/experiment.
func TestMeasureSampleEstimatesNearExact(t *testing.T) {
	tr, members := sampleWorld(t, 2048)
	exact := tr.MeasureAll(members, 2)
	exactLeaf := float64(exact.LeafMissing) / float64(exact.LeafTotal)
	exactPrefix := float64(exact.PrefixMissing) / float64(exact.PrefixTotal)
	if exactLeaf == 0 || exactPrefix == 0 {
		t.Fatal("world unexpectedly perfect; the estimator test needs variance")
	}
	sa := tr.MeasureSample(members, 512, rand.New(rand.NewSource(3)), 2)
	if sa.LeafMissing.CI <= 0 || sa.PrefixMissing.CI <= 0 {
		t.Fatalf("degenerate CIs: %+v", sa)
	}
	if d := math.Abs(sa.LeafMissing.Mean - exactLeaf); d > 2*sa.LeafMissing.CI {
		t.Errorf("leaf estimate %v ± %v too far from exact %v", sa.LeafMissing.Mean, sa.LeafMissing.CI, exactLeaf)
	}
	if d := math.Abs(sa.PrefixMissing.Mean - exactPrefix); d > 2*sa.PrefixMissing.CI {
		t.Errorf("prefix estimate %v ± %v too far from exact %v", sa.PrefixMissing.Mean, sa.PrefixMissing.CI, exactPrefix)
	}
}

// markFresh returns a copy of members with every index in fresh marked.
func markFresh(members []Member, fresh ...int) []Member {
	out := append([]Member(nil), members...)
	for _, i := range fresh {
		out[i].Fresh = true
	}
	return out
}

// TestMeasureStratifiedEngagement pins when the stratified path runs: only
// a true sample over a membership holding both fresh and established nodes.
func TestMeasureStratifiedEngagement(t *testing.T) {
	tr, members := sampleWorld(t, 512)
	rng := func() *rand.Rand { return rand.New(rand.NewSource(4)) }

	if sa := tr.MeasureSample(members, 64, rng(), 2); sa.Strata != 1 {
		t.Fatalf("uniform membership: Strata = %d, want 1", sa.Strata)
	}
	allFresh := markFresh(members)
	for i := range allFresh {
		allFresh[i].Fresh = true
	}
	if sa := tr.MeasureSample(allFresh, 64, rng(), 2); sa.Strata != 1 {
		t.Fatalf("all-fresh membership: Strata = %d, want 1", sa.Strata)
	}
	mixed := markFresh(members, 3, 17, 101, 200, 499)
	sa := tr.MeasureSample(mixed, 64, rng(), 2)
	if sa.Strata != 2 {
		t.Fatalf("mixed membership: Strata = %d, want 2", sa.Strata)
	}
	if sa.Exact || sa.SampleSize != 64 || sa.Population != 512 {
		t.Fatalf("stratified aggregate malformed: %+v", sa)
	}
	// Exact fallback ignores the marks.
	if sa := tr.MeasureSample(mixed, 0, rng(), 2); !sa.Exact || sa.Strata != 1 {
		t.Fatalf("exact fallback: %+v", sa)
	}
}

// TestMeasureStratifiedInvariance extends the bit-identity contracts to the
// stratified path: identical results for every worker count and for every
// rng with the same seed, different results for different seeds.
func TestMeasureStratifiedInvariance(t *testing.T) {
	tr, members := sampleWorld(t, 1024)
	fresh := make([]int, 0, 60)
	for i := 0; i < 60; i++ {
		fresh = append(fresh, i*17)
	}
	mixed := markFresh(members, fresh...)
	var ref SampleAggregate
	for i, workers := range []int{1, 2, 3, 4, 7} {
		sa := tr.MeasureSample(mixed, 200, rand.New(rand.NewSource(42)), workers)
		if i == 0 {
			ref = sa
			continue
		}
		if sa != ref {
			t.Fatalf("workers=%d diverged: %+v != %+v", workers, sa, ref)
		}
	}
	if ref.Strata != 2 {
		t.Fatalf("Strata = %d, want 2", ref.Strata)
	}
	if other := tr.MeasureSample(mixed, 200, rand.New(rand.NewSource(43)), 2); other == ref {
		t.Fatal("different seeds produced identical stratified samples (suspicious)")
	}
}

// TestMeasureStratifiedCensusStratum: a fresh stratum smaller than its
// minimum allocation is measured completely; with the established stratum
// also censused (sample size n-1 forces both allocations to their caps) the
// estimate must equal the exact ratio with zero interval width.
func TestMeasureStratifiedCensusStratum(t *testing.T) {
	tr, members := sampleWorld(t, 256)
	mixed := markFresh(members, 7)
	exact := tr.MeasureAll(members, 2)
	sa := tr.MeasureSample(mixed, 255, rand.New(rand.NewSource(8)), 2)
	if sa.Strata != 2 {
		t.Fatalf("Strata = %d, want 2", sa.Strata)
	}
	// sFresh clamps to the census of its single node; sEst to 254 of 255.
	if sa.SampleSize != 255 {
		t.Fatalf("SampleSize = %d, want 255", sa.SampleSize)
	}
	wantLeaf := float64(exact.LeafMissing) / float64(exact.LeafTotal)
	if d := math.Abs(sa.LeafMissing.Mean - wantLeaf); d > 0.05 {
		t.Errorf("near-census leaf mean %v far from exact %v", sa.LeafMissing.Mean, wantLeaf)
	}
}

func TestAllocateStrata(t *testing.T) {
	cases := []struct {
		s, nF, nE    int
		wantF, wantE int
	}{
		{128, 40, 4056, 8, 120},   // proportional rounds to 1, floored to 8
		{128, 2048, 2048, 64, 64}, // even split
		{10, 3, 997, 3, 8},        // fresh smaller than the floor: census it
		{10, 1, 999, 1, 9},        // single fresh node: census it
		{100, 4, 5, 4, 5},         // sample bigger than both strata: census both
	}
	for _, tc := range cases {
		gotF, gotE := allocateStrata(tc.s, tc.nF, tc.nE)
		if gotF != tc.wantF || gotE != tc.wantE {
			t.Errorf("allocateStrata(%d, %d, %d) = (%d, %d), want (%d, %d)",
				tc.s, tc.nF, tc.nE, gotF, gotE, tc.wantF, tc.wantE)
		}
	}
}

// TestSampleIndicesUniform draws many small samples and checks every index
// is hit at the expected rate — Floyd's algorithm done right is exactly
// uniform without replacement.
func TestSampleIndicesUniform(t *testing.T) {
	const n, s, rounds = 40, 8, 20000
	rng := rand.New(rand.NewSource(5))
	counts := make([]int, n)
	for r := 0; r < rounds; r++ {
		idx := sampleIndices(rng, n, s)
		if len(idx) != s {
			t.Fatalf("len = %d, want %d", len(idx), s)
		}
		for i := 1; i < len(idx); i++ {
			if idx[i] <= idx[i-1] {
				t.Fatalf("indices not sorted-distinct: %v", idx)
			}
		}
		for _, i := range idx {
			counts[i]++
		}
	}
	want := float64(rounds) * float64(s) / float64(n)
	for i, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.1 {
			t.Errorf("index %d drawn %d times, want ~%.0f", i, c, want)
		}
	}
}

func TestTQuantileAgainstTable(t *testing.T) {
	// Two-sided 95% critical values from standard t tables.
	cases := []struct {
		df   int
		want float64
		tol  float64
	}{
		{1, 12.7062, 1e-3},
		{2, 4.3027, 1e-3},
		{3, 3.1824, 0.02},
		{5, 2.5706, 0.005},
		{10, 2.2281, 0.002},
		{30, 2.0423, 1e-3},
		{100, 1.9840, 1e-3},
		{511, 1.9647, 1e-3},
	}
	for _, tc := range cases {
		got := tQuantile(0.95, tc.df)
		if math.Abs(got-tc.want)/tc.want > tc.tol {
			t.Errorf("tQuantile(0.95, %d) = %v, want %v (tol %v)", tc.df, got, tc.want, tc.tol)
		}
	}
	// 99% level spot checks.
	if got := tQuantile(0.99, 10); math.Abs(got-3.1693)/3.1693 > 0.005 {
		t.Errorf("tQuantile(0.99, 10) = %v, want 3.1693", got)
	}
	if got := tQuantile(0.99, 100); math.Abs(got-2.6259)/2.6259 > 1e-3 {
		t.Errorf("tQuantile(0.99, 100) = %v, want 2.6259", got)
	}
}

func TestNormQuantile(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959964},
		{0.995, 2.575829},
		{0.84134, 0.99999}, // Φ(1) ≈ 0.841345
		{0.025, -1.959964},
	}
	for _, tc := range cases {
		if got := normQuantile(tc.p); math.Abs(got-tc.want) > 1e-3 {
			t.Errorf("normQuantile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}
