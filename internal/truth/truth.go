// Package truth computes ground-truth routing state — perfect leaf sets and
// perfect prefix-table occupancy for the actual set of participating IDs —
// and measures how far protocol state is from it. These are exactly the
// "proportion of missing leaf set entries" and "proportion of missing
// prefix table entries" metrics plotted in the paper's Figures 3 and 4.
//
// Perfect prefix-table occupancy is derived from a lazily expanded
// radix-2^b trie with subtree counts, so a full-network measurement costs
// O(N · rows · 2^b) instead of O(N^2).
package truth

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/id"
	"repro/internal/peer"
)

// Truth is a ground-truth oracle for a fixed membership set.
type Truth struct {
	b, k, c int
	sorted  []id.ID
	pos     map[id.ID]int
	root    *trieNode
}

// New builds the oracle for the given membership and protocol parameters
// (b bits per digit, k entries per slot, leaf set size c).
func New(ids []id.ID, b, k, c int) (*Truth, error) {
	if len(ids) == 0 {
		return nil, fmt.Errorf("truth: empty membership")
	}
	t := &Truth{
		b:      b,
		k:      k,
		c:      c,
		sorted: make([]id.ID, len(ids)),
		pos:    make(map[id.ID]int, len(ids)),
		root:   &trieNode{},
	}
	copy(t.sorted, ids)
	sort.Slice(t.sorted, func(i, j int) bool { return t.sorted[i] < t.sorted[j] })
	for i := 1; i < len(t.sorted); i++ {
		if t.sorted[i] == t.sorted[i-1] {
			return nil, fmt.Errorf("truth: duplicate id %s", t.sorted[i])
		}
	}
	for i, v := range t.sorted {
		t.pos[v] = i
	}
	for _, v := range ids {
		t.root.insert(v, 0, b)
	}
	return t, nil
}

// N returns the membership size.
func (t *Truth) N() int { return len(t.sorted) }

// trieNode is a lazily expanded radix-2^b trie node with subtree counts.
// While count == 1 the node stays unexpanded and remembers its sole ID.
type trieNode struct {
	count    int
	children []*trieNode
	sole     id.ID
}

func (n *trieNode) insert(v id.ID, depth, b int) {
	n.count++
	if n.count == 1 {
		n.sole = v
		return
	}
	if depth == id.NumDigits(b) {
		return // full depth; unique IDs never reach here twice
	}
	if n.children == nil {
		n.children = make([]*trieNode, 1<<uint(b))
		// Push the previously sole occupant one level down.
		d := n.sole.Digit(depth, b)
		n.children[d] = &trieNode{}
		n.children[d].insert(n.sole, depth+1, b)
	}
	d := v.Digit(depth, b)
	if n.children[d] == nil {
		n.children[d] = &trieNode{}
	}
	n.children[d].insert(v, depth+1, b)
}

// childCount returns the number of IDs below child digit d, resolving
// unexpanded single-occupant nodes.
func (n *trieNode) childCount(d, depth, b int) int {
	if n.children == nil {
		// Unexpanded: n.count <= 1. The sole occupant counts if its
		// digit matches.
		if n.count == 1 && n.sole.Digit(depth, b) == d {
			return 1
		}
		return 0
	}
	if n.children[d] == nil {
		return 0
	}
	return n.children[d].count
}

// PerfectLeafSet returns the IDs a perfect leaf set for self must contain,
// applying the paper's selection rule (c/2 closest successors and
// predecessors, topped up from the other direction) to the full membership.
func (t *Truth) PerfectLeafSet(self id.ID) []id.ID {
	p, ok := t.pos[self]
	if !ok {
		return nil
	}
	n := len(t.sorted)
	others := n - 1
	if others <= 0 {
		return nil
	}
	// Candidates: up to c ring-neighbours in each direction. The final
	// set is always a subset of these.
	limit := t.c
	if limit > others {
		limit = others
	}
	succ := make([]id.ID, 0, limit)
	pred := make([]id.ID, 0, limit)
	for i := 1; i <= limit; i++ {
		succ = append(succ, t.sorted[(p+i)%n])
		pred = append(pred, t.sorted[(p-i+n)%n])
	}
	// Classify by ring half exactly as the protocol does. Clockwise
	// neighbours beyond the antipode are really predecessors and vice
	// versa; at practical sizes this never triggers, but small networks
	// need it for exactness.
	var realSucc, realPred []id.ID
	seen := make(map[id.ID]struct{}, 2*limit)
	for _, v := range succ {
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		if id.IsSuccessor(self, v) {
			realSucc = append(realSucc, v)
		} else {
			realPred = append(realPred, v)
		}
	}
	for _, v := range pred {
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		if id.IsSuccessor(self, v) {
			realSucc = append(realSucc, v)
		} else {
			realPred = append(realPred, v)
		}
	}
	sort.Slice(realSucc, func(i, j int) bool {
		return id.Succ(self, realSucc[i]) < id.Succ(self, realSucc[j])
	})
	sort.Slice(realPred, func(i, j int) bool {
		return id.Pred(self, realPred[i]) < id.Pred(self, realPred[j])
	})
	half := t.c / 2
	nSucc := minInt(len(realSucc), half)
	nPred := minInt(len(realPred), half)
	if spare := t.c - nSucc - nPred; spare > 0 {
		nSucc = minInt(len(realSucc), nSucc+spare)
	}
	if spare := t.c - nSucc - nPred; spare > 0 {
		nPred = minInt(len(realPred), nPred+spare)
	}
	out := make([]id.ID, 0, nSucc+nPred)
	out = append(out, realSucc[:nSucc]...)
	out = append(out, realPred[:nPred]...)
	return out
}

// LeafSetMissingFor returns how many entries of the perfect leaf set for
// self are absent from ls, and the perfect total.
func (t *Truth) LeafSetMissingFor(self id.ID, ls *core.LeafSet) (missing, total int) {
	return LeafSetMissingWith(t.PerfectLeafSet(self), ls)
}

// LeafSetMissingWith is LeafSetMissingFor against a precomputed perfect
// leaf set — callers measuring every cycle cache PerfectLeafSet per
// membership epoch instead of re-deriving it per node per cycle.
func LeafSetMissingWith(perfect []id.ID, ls *core.LeafSet) (missing, total int) {
	for _, v := range perfect {
		if !ls.Contains(v) {
			missing++
		}
	}
	return missing, len(perfect)
}

// ExpectedSlotCounts returns, for each (row, col) of self's prefix table,
// the perfect occupancy min(k, available), where available is the number of
// member IDs whose slot relative to self is (row, col). Rows beyond the
// point where self is alone in its prefix subtree are all-zero and omitted.
func (t *Truth) ExpectedSlotCounts(self id.ID) [][]int {
	cols := 1 << uint(t.b)
	var out [][]int
	node := t.root
	for depth := 0; depth < id.NumDigits(t.b); depth++ {
		if node == nil || node.count <= 1 {
			break
		}
		row := make([]int, cols)
		own := self.Digit(depth, t.b)
		for j := 0; j < cols; j++ {
			if j == own {
				continue
			}
			avail := node.childCount(j, depth, t.b)
			if avail > t.k {
				avail = t.k
			}
			row[j] = avail
		}
		out = append(out, row)
		if node.children == nil {
			break
		}
		node = node.children[own]
	}
	return out
}

// PrefixMissingFor returns how many perfect prefix-table entries are absent
// from pt (per-slot shortfall against ExpectedSlotCounts) and the perfect
// total. Entries beyond a slot's expectation never compensate for another
// slot's shortfall.
func (t *Truth) PrefixMissingFor(self id.ID, pt *core.PrefixTable) (missing, total int) {
	expected := t.ExpectedSlotCounts(self)
	actual := pt.SlotCounts()
	for i, row := range expected {
		for j, want := range row {
			if want == 0 {
				continue
			}
			total += want
			have := 0
			if i < len(actual) && actual[i] != nil {
				have = actual[i][j]
			}
			if have < want {
				missing += want - have
			}
		}
	}
	return missing, total
}

// PrefixMissingLive is PrefixMissingFor with liveness awareness: only
// entries that are current members count toward a slot's occupancy, so
// descriptors of departed nodes do not mask real gaps. In a failure-free
// run it agrees with PrefixMissingFor exactly.
func (t *Truth) PrefixMissingLive(self id.ID, pt *core.PrefixTable) (missing, total, dead int) {
	return t.PrefixMissingLiveWith(t.ExpectedSlotCounts(self), pt)
}

// PrefixMissingLiveWith is PrefixMissingLive against precomputed expected
// slot counts (see LeafSetMissingWith for the rationale).
func (t *Truth) PrefixMissingLiveWith(expected [][]int, pt *core.PrefixTable) (missing, total, dead int) {
	live := make(map[int]map[int]int, len(expected))
	pt.Each(func(row, col int, d peer.Descriptor) bool {
		if _, ok := t.pos[d.ID]; ok {
			if live[row] == nil {
				live[row] = make(map[int]int)
			}
			live[row][col]++
		} else {
			dead++
		}
		return true
	})
	for i, row := range expected {
		for j, want := range row {
			if want == 0 {
				continue
			}
			total += want
			have := live[i][j]
			if have < want {
				missing += want - have
			}
		}
	}
	return missing, total, dead
}

// LeafSetDead counts entries of ls that are not current members.
func (t *Truth) LeafSetDead(ls *core.LeafSet) int {
	dead := 0
	for _, d := range ls.Slice() {
		if _, ok := t.pos[d.ID]; !ok {
			dead++
		}
	}
	return dead
}

// Contains reports whether nodeID is a current member.
func (t *Truth) Contains(nodeID id.ID) bool {
	_, ok := t.pos[nodeID]
	return ok
}

// AvailableAt returns the exact number of member IDs whose slot relative to
// self is (row, col), uncapped by k. self must be a member. Used by tests
// to cross-check the trie.
func (t *Truth) AvailableAt(self id.ID, row, col int) int {
	node := t.root
	for depth := 0; depth < row; depth++ {
		if node == nil || node.children == nil {
			// self is a member, so an unexpanded node on self's
			// path holds exactly self; nothing else lies below.
			return 0
		}
		node = node.children[self.Digit(depth, t.b)]
	}
	if node == nil || col == self.Digit(row, t.b) {
		return 0
	}
	return node.childCount(col, row, t.b)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
