// Package truth computes ground-truth routing state — perfect leaf sets and
// perfect prefix-table occupancy for the actual set of participating IDs —
// and measures how far protocol state is from it. These are exactly the
// "proportion of missing leaf set entries" and "proportion of missing
// prefix table entries" metrics plotted in the paper's Figures 3 and 4.
//
// Perfect prefix-table occupancy is derived from a lazily expanded
// radix-2^b trie with subtree counts, so a full-network measurement costs
// O(N · rows · 2^b) instead of O(N^2).
//
// The oracle is incremental: Update applies a churn delta in
// O(changes·log N + N) — one allocation-free merge of the sorted ring plus
// per-ID trie surgery — instead of an O(N log N) rebuild, and MeasureAll
// shards the per-node measurement across a worker pool with per-shard
// scratch buffers, so paper-scale (2^18) per-cycle measurement is bounded
// by cores, not by a single thread re-deriving ground truth.
package truth

import (
	"cmp"
	"fmt"
	"runtime"
	"slices"
	"sync"

	"repro/internal/core"
	"repro/internal/flat"
	"repro/internal/id"
	"repro/internal/peer"
)

// Truth is a ground-truth oracle for a membership set. The membership can
// be mutated with Add, Remove and Update; measurement methods may be called
// concurrently with each other, but not concurrently with mutations.
type Truth struct {
	b, k, c int
	sorted  []id.ID
	spare   []id.ID // second buffer, swapped with sorted by Update merges
	// members is the membership test; the sorted ring above stays the
	// iteration authority (flat.Set iterates in slot order, not ID order).
	members flat.Set
	root    *trieNode
}

// New builds the oracle for the given membership and protocol parameters
// (b bits per digit, k entries per slot, leaf set size c).
func New(ids []id.ID, b, k, c int) (*Truth, error) {
	if len(ids) == 0 {
		return nil, fmt.Errorf("truth: empty membership")
	}
	t := &Truth{
		b:      b,
		k:      k,
		c:      c,
		sorted: make([]id.ID, len(ids)),
		root:   &trieNode{},
	}
	copy(t.sorted, ids)
	slices.Sort(t.sorted)
	for i := 1; i < len(t.sorted); i++ {
		if t.sorted[i] == t.sorted[i-1] {
			return nil, fmt.Errorf("truth: duplicate id %s", t.sorted[i])
		}
	}
	t.members.Reserve(len(t.sorted))
	for _, v := range t.sorted {
		t.members.Add(v)
	}
	for _, v := range ids {
		t.root.insert(v, 0, b)
	}
	return t, nil
}

// N returns the membership size.
func (t *Truth) N() int { return len(t.sorted) }

// indexOf returns v's position in the sorted ring, or -1 for a non-member.
func (t *Truth) indexOf(v id.ID) int {
	if i, ok := slices.BinarySearch(t.sorted, v); ok {
		return i
	}
	return -1
}

// Add inserts a single member. See Update for cost; callers applying a
// whole churn cycle should batch through Update instead.
func (t *Truth) Add(v id.ID) error { return t.Update([]id.ID{v}, nil) }

// Remove deletes a single member. See Update.
func (t *Truth) Remove(v id.ID) error { return t.Update(nil, []id.ID{v}) }

// Update applies a membership delta: every ID of removed leaves, every ID
// of added joins. The sorted ring is rebuilt with one merge pass into a
// retained spare buffer and the prefix trie is patched per ID, so a churn
// cycle costs O(N + changes·log N) with no steady-state allocation —
// versus the O(N log N) sort, map build and trie build of a fresh New.
//
// An ID may not appear in both lists, removed IDs must be members, added
// IDs must not be; violations leave the oracle unchanged and return an
// error. The membership must stay non-empty.
func (t *Truth) Update(added, removed []id.ID) error {
	if len(added) == 0 && len(removed) == 0 {
		return nil
	}
	if len(t.sorted)+len(added)-len(removed) < 1 {
		return fmt.Errorf("truth: update would empty the membership")
	}
	// Validate both lists in full before mutating anything. Every ID
	// must appear at most once across the whole delta: a repeated
	// removal would decrement the trie counts twice, a repeated addition
	// (or an added-and-removed ID) would ring the ID twice in the merge.
	// Small batches are checked by scanning; large ones (mass joins)
	// through a throwaway set, keeping validation O(changes) rather
	// than O(changes²).
	var addedSet *flat.Set
	if len(added)+len(removed) > 64 {
		addedSet = flat.NewSet(len(added) + len(removed))
	}
	for i, v := range removed {
		if !t.members.Contains(v) {
			return fmt.Errorf("truth: remove of non-member %s", v)
		}
		if addedSet != nil {
			if !addedSet.Add(v) {
				return fmt.Errorf("truth: duplicate id %s in update batch", v)
			}
			continue
		}
		for j := 0; j < i; j++ {
			if removed[j] == v {
				return fmt.Errorf("truth: duplicate id %s in update batch", v)
			}
		}
	}
	for i, v := range added {
		if t.members.Contains(v) {
			return fmt.Errorf("truth: duplicate id %s", v)
		}
		if addedSet != nil {
			if !addedSet.Add(v) {
				return fmt.Errorf("truth: duplicate id %s in update batch", v)
			}
			continue
		}
		for j := 0; j < i; j++ {
			if added[j] == v {
				return fmt.Errorf("truth: duplicate id %s in update batch", v)
			}
		}
		for _, r := range removed {
			if r == v {
				return fmt.Errorf("truth: duplicate id %s in update batch", v)
			}
		}
	}
	for _, v := range removed {
		t.members.Remove(v)
		t.root.remove(v, 0, t.b)
	}
	for _, v := range added {
		t.members.Add(v)
		t.root.insert(v, 0, t.b)
	}
	// Merge the surviving ring with the sorted additions into the spare
	// buffer, then swap the buffers.
	addSorted := append(t.spare[:0], added...)
	slices.Sort(addSorted)
	merged := addSorted[len(addSorted):]
	ai := 0
	for _, v := range t.sorted {
		if !t.members.Contains(v) {
			continue // removed this update
		}
		for ai < len(addSorted) && addSorted[ai] < v {
			merged = append(merged, addSorted[ai])
			ai++
		}
		merged = append(merged, v)
	}
	merged = append(merged, addSorted[ai:]...)
	t.sorted, t.spare = merged, t.sorted
	return nil
}

// trieNode is a lazily expanded radix-2^b trie node with subtree counts.
// While an unexpanded node holds count == 1 it remembers its sole ID;
// expanded nodes whose count drops through removals are not re-collapsed
// (the subtree counts alone drive every query, so collapse would only
// save memory already paid for).
type trieNode struct {
	count    int
	children []*trieNode
	sole     id.ID
}

func (n *trieNode) insert(v id.ID, depth, b int) {
	n.count++
	if n.children == nil {
		if n.count == 1 {
			n.sole = v
			return
		}
		if depth == id.NumDigits(b) {
			return // full depth; unique IDs never reach here twice
		}
		n.children = make([]*trieNode, 1<<b)
		// Push the previously sole occupant one level down.
		d := n.sole.Digit(depth, b)
		n.children[d] = &trieNode{}
		n.children[d].insert(n.sole, depth+1, b)
	}
	if depth == id.NumDigits(b) {
		return
	}
	d := v.Digit(depth, b)
	if n.children[d] == nil {
		n.children[d] = &trieNode{}
	}
	n.children[d].insert(v, depth+1, b)
}

// remove decrements the subtree counts along v's path. Emptied nodes stay
// allocated; count == 0 makes them invisible to every query.
func (n *trieNode) remove(v id.ID, depth, b int) {
	n.count--
	if n.children == nil || depth == id.NumDigits(b) {
		return
	}
	if c := n.children[v.Digit(depth, b)]; c != nil {
		c.remove(v, depth+1, b)
	}
}

// childCount returns the number of IDs below child digit d, resolving
// unexpanded single-occupant nodes.
func (n *trieNode) childCount(d, depth, b int) int {
	if n.children == nil {
		// Unexpanded: n.count <= 1. The sole occupant counts if its
		// digit matches.
		if n.count == 1 && n.sole.Digit(depth, b) == d {
			return 1
		}
		return 0
	}
	if n.children[d] == nil {
		return 0
	}
	return n.children[d].count
}

// PerfectLeafSet returns the IDs a perfect leaf set for self must contain,
// applying the paper's selection rule (c/2 closest successors and
// predecessors, topped up from the other direction) to the full membership.
func (t *Truth) PerfectLeafSet(self id.ID) []id.ID {
	p := t.indexOf(self)
	if p < 0 {
		return nil
	}
	// Candidate buffers only — the slot-count tables of a full
	// measurement scratch are not needed on the leaf-set path.
	scr := &measureScratch{
		succ: make([]id.ID, 0, t.c),
		pred: make([]id.ID, 0, t.c),
	}
	return t.appendPerfectLeafSet(nil, p, scr)
}

// appendPerfectLeafSet appends the perfect leaf set of the member at sorted
// position p to dst, using scr's buffers for the candidate lists. It is the
// allocation-free core of PerfectLeafSet.
func (t *Truth) appendPerfectLeafSet(dst []id.ID, p int, scr *measureScratch) []id.ID {
	self := t.sorted[p]
	n := len(t.sorted)
	others := n - 1
	if others <= 0 {
		return dst
	}
	// Candidates: up to c ring-neighbours in each direction. The final
	// set is always a subset of these. Classify by ring half exactly as
	// the protocol does: clockwise neighbours beyond the antipode are
	// really predecessors and vice versa; at practical sizes this never
	// triggers, but small networks need it for exactness.
	limit := min(t.c, others)
	realSucc := scr.succ[:0]
	realPred := scr.pred[:0]
	classify := func(v id.ID) {
		if id.IsSuccessor(self, v) {
			realSucc = append(realSucc, v)
		} else {
			realPred = append(realPred, v)
		}
	}
	if 2*limit <= others {
		// The two candidate windows cannot overlap: no dedup needed.
		for i := 1; i <= limit; i++ {
			classify(t.sorted[(p+i)%n])
			classify(t.sorted[(p-i+n)%n])
		}
	} else {
		// Small network: the windows wrap into each other; dedup in the
		// same order the candidates are considered (successor window
		// first, then predecessor window).
		if scr.seen == nil {
			scr.seen = make(map[id.ID]struct{}, 2*limit)
		}
		clear(scr.seen)
		for i := 1; i <= limit; i++ {
			v := t.sorted[(p+i)%n]
			if _, dup := scr.seen[v]; !dup {
				scr.seen[v] = struct{}{}
				classify(v)
			}
		}
		for i := 1; i <= limit; i++ {
			v := t.sorted[(p-i+n)%n]
			if _, dup := scr.seen[v]; !dup {
				scr.seen[v] = struct{}{}
				classify(v)
			}
		}
	}
	// slices.SortFunc, not sort.Slice: the reflection swapper of the
	// latter allocates per call, which at one call per node per cycle
	// dominates the measurement-plane allocation profile. The keys are
	// distinct (distinct IDs, fixed self), so the order is total and the
	// result algorithm-independent.
	slices.SortFunc(realSucc, func(a, b id.ID) int {
		return cmp.Compare(id.Succ(self, a), id.Succ(self, b))
	})
	slices.SortFunc(realPred, func(a, b id.ID) int {
		return cmp.Compare(id.Pred(self, a), id.Pred(self, b))
	})
	scr.succ, scr.pred = realSucc, realPred
	half := t.c / 2
	nSucc := min(len(realSucc), half)
	nPred := min(len(realPred), half)
	if spare := t.c - nSucc - nPred; spare > 0 {
		nSucc = min(len(realSucc), nSucc+spare)
	}
	if spare := t.c - nSucc - nPred; spare > 0 {
		nPred = min(len(realPred), nPred+spare)
	}
	dst = append(dst, realSucc[:nSucc]...)
	dst = append(dst, realPred[:nPred]...)
	return dst
}

// LeafSetMissingFor returns how many entries of the perfect leaf set for
// self are absent from ls, and the perfect total.
func (t *Truth) LeafSetMissingFor(self id.ID, ls *core.LeafSet) (missing, total int) {
	return LeafSetMissingWith(t.PerfectLeafSet(self), ls)
}

// LeafSetMissingWith is LeafSetMissingFor against a precomputed perfect
// leaf set — callers measuring every cycle cache PerfectLeafSet per
// membership epoch instead of re-deriving it per node per cycle.
func LeafSetMissingWith(perfect []id.ID, ls *core.LeafSet) (missing, total int) {
	for _, v := range perfect {
		if !ls.Contains(v) {
			missing++
		}
	}
	return missing, len(perfect)
}

// ExpectedSlotCounts returns, for each (row, col) of self's prefix table,
// the perfect occupancy min(k, available), where available is the number of
// member IDs whose slot relative to self is (row, col). Rows beyond the
// point where self is alone in its prefix subtree are all-zero and omitted.
func (t *Truth) ExpectedSlotCounts(self id.ID) [][]int {
	cols := 1 << t.b
	var out [][]int
	node := t.root
	for depth := 0; depth < id.NumDigits(t.b); depth++ {
		if node == nil || node.count <= 1 {
			break
		}
		row := make([]int, cols)
		t.expectedRow(node, self, depth, row)
		out = append(out, row)
		if node.children == nil {
			break
		}
		node = node.children[self.Digit(depth, t.b)]
	}
	return out
}

// expectedRow fills row with the perfect per-column occupancy of the prefix
// table row at the given depth, reading the trie node covering self's
// depth-long prefix.
func (t *Truth) expectedRow(node *trieNode, self id.ID, depth int, row []int) {
	own := self.Digit(depth, t.b)
	for j := range row {
		if j == own {
			row[j] = 0
			continue
		}
		avail := node.childCount(j, depth, t.b)
		if avail > t.k {
			avail = t.k
		}
		row[j] = avail
	}
}

// expectedSlotCountsInto is ExpectedSlotCounts writing into preallocated
// rows (each cols wide); it returns the number of rows filled.
func (t *Truth) expectedSlotCountsInto(self id.ID, rows [][]int) int {
	node := t.root
	used := 0
	for depth := 0; depth < id.NumDigits(t.b); depth++ {
		if node == nil || node.count <= 1 {
			break
		}
		t.expectedRow(node, self, depth, rows[used])
		used++
		if node.children == nil {
			break
		}
		node = node.children[self.Digit(depth, t.b)]
	}
	return used
}

// PrefixMissingFor returns how many perfect prefix-table entries are absent
// from pt (per-slot shortfall against ExpectedSlotCounts) and the perfect
// total. Entries beyond a slot's expectation never compensate for another
// slot's shortfall.
func (t *Truth) PrefixMissingFor(self id.ID, pt *core.PrefixTable) (missing, total int) {
	expected := t.ExpectedSlotCounts(self)
	actual := pt.SlotCounts()
	for i, row := range expected {
		for j, want := range row {
			if want == 0 {
				continue
			}
			total += want
			have := 0
			if i < len(actual) && actual[i] != nil {
				have = actual[i][j]
			}
			if have < want {
				missing += want - have
			}
		}
	}
	return missing, total
}

// PrefixMissingLive is PrefixMissingFor with liveness awareness: only
// entries that are current members count toward a slot's occupancy, so
// descriptors of departed nodes do not mask real gaps. In a failure-free
// run it agrees with PrefixMissingFor exactly.
func (t *Truth) PrefixMissingLive(self id.ID, pt *core.PrefixTable) (missing, total, dead int) {
	return t.PrefixMissingLiveWith(t.ExpectedSlotCounts(self), pt)
}

// PrefixMissingLiveWith is PrefixMissingLive against precomputed expected
// slot counts (see LeafSetMissingWith for the rationale).
func (t *Truth) PrefixMissingLiveWith(expected [][]int, pt *core.PrefixTable) (missing, total, dead int) {
	live := make(map[int]map[int]int, len(expected))
	pt.Each(func(row, col int, d peer.Descriptor) bool {
		if t.members.Contains(d.ID) {
			if live[row] == nil {
				live[row] = make(map[int]int)
			}
			live[row][col]++
		} else {
			dead++
		}
		return true
	})
	for i, row := range expected {
		for j, want := range row {
			if want == 0 {
				continue
			}
			total += want
			have := live[i][j]
			if have < want {
				missing += want - have
			}
		}
	}
	return missing, total, dead
}

// LeafSetDead counts entries of ls that are not current members.
func (t *Truth) LeafSetDead(ls *core.LeafSet) int {
	dead := 0
	for _, d := range ls.Successors() {
		if !t.members.Contains(d.ID) {
			dead++
		}
	}
	for _, d := range ls.Predecessors() {
		if !t.members.Contains(d.ID) {
			dead++
		}
	}
	return dead
}

// Contains reports whether nodeID is a current member.
func (t *Truth) Contains(nodeID id.ID) bool { return t.members.Contains(nodeID) }

// AvailableAt returns the exact number of member IDs whose slot relative to
// self is (row, col), uncapped by k. self must be a member. Used by tests
// to cross-check the trie.
func (t *Truth) AvailableAt(self id.ID, row, col int) int {
	node := t.root
	for depth := 0; depth < row; depth++ {
		if node == nil || node.children == nil {
			// self is a member, so an unexpanded node on self's
			// path holds exactly self; nothing else lies below.
			return 0
		}
		node = node.children[self.Digit(depth, t.b)]
	}
	if node == nil || col == self.Digit(row, t.b) {
		return 0
	}
	return node.childCount(col, row, t.b)
}

// Member pairs a node's identity with the structures MeasureAll inspects.
type Member struct {
	Self  id.ID
	Leaf  *core.LeafSet
	Table *core.PrefixTable
	// Fresh marks a node that joined recently (the harness decides the
	// cutoff — typically within the last two cycles). MeasureAll ignores
	// it; the sampled estimator stratifies on it, because under churn the
	// fresh minority carries missing-entry counts orders of magnitude
	// above the established majority and a simple random sample's
	// interval undercovers badly on that mixture (see sample.go).
	Fresh bool
}

// Aggregate is the network-wide sum of per-node measurements: raw integer
// counts, so the result is exactly independent of how the measurement was
// sharded (integer addition is associative and commutative).
type Aggregate struct {
	// LeafMissing/LeafTotal sum missing and perfect leaf entries.
	LeafMissing, LeafTotal int
	// PrefixMissing/PrefixTotal sum missing and perfect prefix entries
	// (liveness-aware: only current members occupy slots).
	PrefixMissing, PrefixTotal int
	// LeafPerfect/PrefixPerfect count nodes whose structure is perfect.
	LeafPerfect, PrefixPerfect int
	// LeafDead/PrefixDead count structure entries naming departed nodes.
	LeafDead, PrefixDead int
}

// Add accumulates another aggregate's integer sums. Because an Aggregate
// is nothing but raw counts, adding per-shard partials — whether the
// shards are worker goroutines or whole OS processes measuring disjoint
// member subsets against the same truth — reproduces the whole-network
// measurement exactly.
func (a *Aggregate) Add(o Aggregate) {
	a.LeafMissing += o.LeafMissing
	a.LeafTotal += o.LeafTotal
	a.PrefixMissing += o.PrefixMissing
	a.PrefixTotal += o.PrefixTotal
	a.LeafPerfect += o.LeafPerfect
	a.PrefixPerfect += o.PrefixPerfect
	a.LeafDead += o.LeafDead
	a.PrefixDead += o.PrefixDead
}

// measureScratch is the per-shard working memory of MeasureAll: candidate
// and result buffers for perfect leaf sets, and two rows×cols tables for
// expected and observed slot occupancy. One scratch per worker keeps the
// shards false-sharing-free and the whole measurement allocation-free
// after the first node.
type measureScratch struct {
	leaf       []id.ID
	succ, pred []id.ID
	seen       map[id.ID]struct{} // only used when candidate windows overlap
	expected   [][]int
	live       [][]int
}

func newMeasureScratch(t *Truth) *measureScratch {
	rows, cols := id.NumDigits(t.b), 1<<t.b
	scr := &measureScratch{
		leaf:     make([]id.ID, 0, t.c),
		succ:     make([]id.ID, 0, t.c),
		pred:     make([]id.ID, 0, t.c),
		expected: make([][]int, rows),
		live:     make([][]int, rows),
	}
	for i := 0; i < rows; i++ {
		scr.expected[i] = make([]int, cols)
		scr.live[i] = make([]int, cols)
	}
	return scr
}

// nodeCounts is the raw per-node measurement — the unit both MeasureAll
// (which sums them into an Aggregate) and MeasureSample (which additionally
// needs per-node values for the estimator's variance) are built from.
type nodeCounts struct {
	leafMissing, leafTotal, leafDead       int
	prefixMissing, prefixTotal, prefixDead int
}

// measureNode measures a single member using scr's buffers. scr.live must
// be all-zero on entry and is restored to all-zero before returning. ok is
// false for a non-member (harness bug), which contributes nothing.
func (t *Truth) measureNode(m Member, scr *measureScratch) (nc nodeCounts, ok bool) {
	p := t.indexOf(m.Self)
	if p < 0 {
		return nodeCounts{}, false
	}
	scr.leaf = t.appendPerfectLeafSet(scr.leaf[:0], p, scr)
	for _, v := range scr.leaf {
		if !m.Leaf.Contains(v) {
			nc.leafMissing++
		}
	}
	nc.leafTotal = len(scr.leaf)
	nc.leafDead = t.LeafSetDead(m.Leaf)

	rows := t.expectedSlotCountsInto(m.Self, scr.expected)
	maxRow := -1
	m.Table.Each(func(row, col int, d peer.Descriptor) bool {
		if t.members.Contains(d.ID) {
			scr.live[row][col]++
			if row > maxRow {
				maxRow = row
			}
		} else {
			nc.prefixDead++
		}
		return true
	})
	for i := 0; i < rows; i++ {
		for j, want := range scr.expected[i] {
			if want == 0 {
				continue
			}
			nc.prefixTotal += want
			if have := scr.live[i][j]; have < want {
				nc.prefixMissing += want - have
			}
		}
	}
	for i := 0; i <= maxRow; i++ {
		clear(scr.live[i])
	}
	return nc, true
}

// addTo folds one node's counts into the network aggregate — the single
// accumulation shared by the full (MeasureAll) and sampled (MeasureSample)
// paths, so a new metric cannot diverge between them.
func (nc nodeCounts) addTo(agg *Aggregate) {
	agg.LeafMissing += nc.leafMissing
	agg.LeafTotal += nc.leafTotal
	if nc.leafMissing == 0 {
		agg.LeafPerfect++
	}
	agg.LeafDead += nc.leafDead
	agg.PrefixMissing += nc.prefixMissing
	agg.PrefixTotal += nc.prefixTotal
	if nc.prefixMissing == 0 {
		agg.PrefixPerfect++
	}
	agg.PrefixDead += nc.prefixDead
}

// measureOne measures a single member into agg using scr's buffers.
func (t *Truth) measureOne(m Member, scr *measureScratch, agg *Aggregate) {
	if nc, ok := t.measureNode(m, scr); ok {
		nc.addTo(agg)
	}
}

// MeasureAll measures every member against the oracle, sharding the work
// across a pool of workers (workers < 1 means GOMAXPROCS). The aggregate is
// a sum of per-node integer counts, so the result is bit-identical for
// every worker count, including 1. Safe to call while other goroutines
// read the measured structures' nodes only if those nodes are quiescent;
// the oracle itself must not be mutated concurrently.
func (t *Truth) MeasureAll(members []Member, workers int) Aggregate {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(members) {
		workers = len(members)
	}
	if workers <= 1 {
		var agg Aggregate
		scr := newMeasureScratch(t)
		for _, m := range members {
			t.measureOne(m, scr, &agg)
		}
		return agg
	}
	partials := make([]Aggregate, workers)
	chunk := (len(members) + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, len(members))
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			scr := newMeasureScratch(t)
			for i := lo; i < hi; i++ {
				t.measureOne(members[i], scr, &partials[w])
			}
		}(w, lo, hi)
	}
	wg.Wait()
	var agg Aggregate
	for _, p := range partials {
		agg.LeafMissing += p.LeafMissing
		agg.LeafTotal += p.LeafTotal
		agg.PrefixMissing += p.PrefixMissing
		agg.PrefixTotal += p.PrefixTotal
		agg.LeafPerfect += p.LeafPerfect
		agg.PrefixPerfect += p.PrefixPerfect
		agg.LeafDead += p.LeafDead
		agg.PrefixDead += p.PrefixDead
	}
	return agg
}
