package id_test

import (
	"fmt"

	"repro/internal/id"
)

func ExampleID_Digit() {
	v := id.ID(0xA3F0000000000000)
	fmt.Println(v.Digit(0, 4), v.Digit(1, 4), v.Digit(2, 4))
	// Output: 10 3 15
}

func ExampleCommonPrefixLen() {
	a := id.ID(0xAB00000000000000)
	b := id.ID(0xAC00000000000000)
	fmt.Println(id.CommonPrefixLen(a, b, 4)) // share the digit 0xA
	fmt.Println(id.CommonPrefixLen(a, a, 4)) // identical: all 16 digits
	// Output:
	// 1
	// 16
}

func ExampleRingDistance() {
	// The ring wraps: the distance between the ends of the ID space is 2.
	fmt.Println(id.RingDistance(id.ID(1), id.ID(^uint64(0))))
	fmt.Println(id.RingDistance(100, 140))
	// Output:
	// 2
	// 40
}

func ExampleIsSuccessor() {
	fmt.Println(id.IsSuccessor(100, 150))             // clockwise: successor
	fmt.Println(id.IsSuccessor(100, 50))              // counter-clockwise
	fmt.Println(id.IsSuccessor(id.ID(^uint64(0)), 3)) // wraps around zero
	// Output:
	// true
	// false
	// true
}
