package id

import (
	"math/bits"
	"testing"
	"testing/quick"
)

func TestDigit(t *testing.T) {
	tests := []struct {
		name string
		id   ID
		i, b int
		want int
	}{
		{"msb digit b=4", ID(0xF000000000000000), 0, 4, 0xF},
		{"second digit b=4", ID(0x0A00000000000000), 1, 4, 0xA},
		{"last digit b=4", ID(0x0000000000000007), 15, 4, 7},
		{"msb digit b=1", ID(1) << 63, 0, 1, 1},
		{"lsb digit b=1", ID(1), 63, 1, 1},
		{"zero id", ID(0), 5, 4, 0},
		{"beyond width", ID(0xFFFFFFFFFFFFFFFF), 16, 4, 0},
		{"b=2 digit", ID(0b11_10_01_00) << 56, 1, 2, 0b10},
		{"b=8 digit", ID(0x00AB000000000000), 1, 8, 0xAB},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.id.Digit(tt.i, tt.b); got != tt.want {
				t.Errorf("Digit(%d, %d) of %s = %#x, want %#x", tt.i, tt.b, tt.id, got, tt.want)
			}
		})
	}
}

func TestDigitReconstructsID(t *testing.T) {
	// Property: concatenating all digits reproduces the ID, for every digit width.
	for _, b := range []int{1, 2, 4, 8, 16} {
		b := b
		f := func(v uint64) bool {
			var rebuilt uint64
			for i := 0; i < NumDigits(b); i++ {
				rebuilt = rebuilt<<uint(b) | uint64(ID(v).Digit(i, b))
			}
			return rebuilt == v
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("b=%d: %v", b, err)
		}
	}
}

func TestCommonPrefixLen(t *testing.T) {
	tests := []struct {
		name string
		a, c ID
		b    int
		want int
	}{
		{"identical", 0x1234, 0x1234, 4, 16},
		{"differ at msb", 0x8000000000000000, 0, 4, 0},
		{"one common digit", 0xAB00000000000000, 0xA000000000000000, 4, 1},
		{"bit granularity ignored", 0xA800000000000000, 0xA000000000000000, 4, 1},
		{"b=1 counts bits", 0xA800000000000000, 0xA000000000000000, 1, 4},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := CommonPrefixLen(tt.a, tt.c, tt.b); got != tt.want {
				t.Errorf("CommonPrefixLen(%s, %s, %d) = %d, want %d", tt.a, tt.c, tt.b, got, tt.want)
			}
		})
	}
}

func TestCommonPrefixLenMatchesDigits(t *testing.T) {
	// Property: CommonPrefixLen equals the number of leading equal digits.
	for _, b := range []int{1, 2, 4, 8} {
		b := b
		f := func(x, y uint64) bool {
			a, c := ID(x), ID(y)
			n := 0
			for n < NumDigits(b) && a.Digit(n, b) == c.Digit(n, b) {
				n++
			}
			return CommonPrefixLen(a, c, b) == n
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("b=%d: %v", b, err)
		}
	}
}

func TestRingDistanceSymmetric(t *testing.T) {
	f := func(x, y uint64) bool {
		return RingDistance(ID(x), ID(y)) == RingDistance(ID(y), ID(x))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRingDistanceBound(t *testing.T) {
	f := func(x, y uint64) bool {
		return RingDistance(ID(x), ID(y)) <= 1<<63
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSuccPredComplement(t *testing.T) {
	// Property: for distinct IDs the two directed distances sum to 2^64,
	// i.e. they are exact complements on the ring.
	f := func(x, y uint64) bool {
		if x == y {
			return Succ(ID(x), ID(y)) == 0 && Pred(ID(x), ID(y)) == 0
		}
		return Succ(ID(x), ID(y))+Pred(ID(x), ID(y)) == 0 // wraps to 2^64 == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIsSuccessorPartition(t *testing.T) {
	// Property: every ID other than the pivot is exactly one of
	// successor-of or predecessor-of the pivot.
	f := func(x, y uint64) bool {
		a, c := ID(x), ID(y)
		if a == c {
			return !IsSuccessor(a, c)
		}
		succ := IsSuccessor(a, c)
		pred := !succ
		_ = pred
		// antisymmetry except at the antipode (where both directions tie)
		if Succ(a, c) == Pred(a, c) {
			return succ && IsSuccessor(c, a)
		}
		return succ != IsSuccessor(c, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareRing(t *testing.T) {
	a := ID(100)
	if CompareRing(a, 101, 105) >= 0 {
		t.Error("101 should be closer to 100 than 105")
	}
	if CompareRing(a, 105, 101) <= 0 {
		t.Error("105 should be farther from 100 than 101")
	}
	if CompareRing(a, 99, 101) != 0 {
		t.Error("99 and 101 are equidistant from 100")
	}
	// wraparound: 2^64-1 is at distance 101 from 100
	if CompareRing(a, ID(^uint64(0)), 300) >= 0 {
		t.Error("wraparound distance should beat 300-100")
	}
}

func TestXORDistance(t *testing.T) {
	if XORDistance(0b1010, 0b1010) != 0 {
		t.Error("distance to self must be zero")
	}
	if XORDistance(0b1010, 0b0010) != 0b1000 {
		t.Error("xor metric mismatch")
	}
	f := func(x, y uint64) bool {
		return XORDistance(ID(x), ID(y)) == XORDistance(ID(y), ID(x))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestXORDistanceUnidirectional(t *testing.T) {
	// Kademlia's unidirectionality: for any a and distance d there is
	// exactly one y with XORDistance(a, y) == d.
	f := func(x, d uint64) bool {
		y := ID(x ^ d)
		return XORDistance(ID(x), y) == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCommonPrefixBitsMatchesLeadingZeros(t *testing.T) {
	f := func(x, y uint64) bool {
		return CommonPrefixBits(ID(x), ID(y)) == bits.LeadingZeros64(x^y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGeneratorUnique(t *testing.T) {
	g := NewGenerator(42)
	seen := make(map[ID]struct{})
	for i := 0; i < 10000; i++ {
		v := g.Next()
		if _, dup := seen[v]; dup {
			t.Fatalf("duplicate id %s at draw %d", v, i)
		}
		seen[v] = struct{}{}
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	a := Unique(100, 7)
	b := Unique(100, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %s vs %s", i, a[i], b[i])
		}
	}
	c := Unique(100, 8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical sequences")
	}
}

func TestParseRoundTrip(t *testing.T) {
	f := func(x uint64) bool {
		got, err := Parse(ID(x).String())
		return err == nil && got == ID(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	for _, s := range []string{"", "zz", "10000000000000000", "-1"} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}

func TestSortAscending(t *testing.T) {
	ids := []ID{5, 1, 9, 3}
	SortAscending(ids)
	want := []ID{1, 3, 5, 9}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("got %v want %v", ids, want)
		}
	}
}
