// Package id implements the 64-bit node identifier arithmetic used by the
// bootstrapping service: base-2^b digit access, longest-common-prefix
// length, the ring metric used for leaf sets, and the XOR metric used by
// Kademlia-style overlays.
//
// The paper simulates 64-bit IDs (Section 5): although DHT definitions often
// use 128 bits, the longest common prefix between any two IDs is far below
// 64 bits at any practical network size, so the extra bits play no role.
package id

import (
	"fmt"
	"math/bits"
	"math/rand"
	"sort"
	"strconv"
)

// Bits is the width of a node identifier in bits.
const Bits = 64

// ID is a node identifier, a point on the ring [0, 2^64).
type ID uint64

// String formats the ID as a fixed-width hexadecimal string.
func (a ID) String() string {
	return fmt.Sprintf("%016x", uint64(a))
}

// Parse parses a hexadecimal ID produced by String.
func Parse(s string) (ID, error) {
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("parse id %q: %w", s, err)
	}
	return ID(v), nil
}

// Digit returns the i-th digit of the ID in base 2^b, counting from the most
// significant digit (digit 0). b must divide into the 64-bit width; digits
// beyond the last full digit are zero.
func (a ID) Digit(i, b int) int {
	shift := Bits - (i+1)*b
	if shift < 0 {
		return 0
	}
	return int(uint64(a) >> uint(shift) & (1<<uint(b) - 1))
}

// NumDigits returns the number of base-2^b digits in an ID.
func NumDigits(b int) int { return Bits / b }

// CommonPrefixLen returns the length, in base-2^b digits, of the longest
// common prefix of a and b2.
func CommonPrefixLen(a, b2 ID, b int) int {
	x := uint64(a) ^ uint64(b2)
	if x == 0 {
		return NumDigits(b)
	}
	return bits.LeadingZeros64(x) / b
}

// CommonPrefixBits returns the longest common prefix of a and b2 in bits.
func CommonPrefixBits(a, b2 ID) int {
	return bits.LeadingZeros64(uint64(a) ^ uint64(b2))
}

// XORDistance is the Kademlia metric between two IDs.
func XORDistance(a, b2 ID) uint64 { return uint64(a) ^ uint64(b2) }

// Succ returns the clockwise (increasing, wrapping) distance from a to b2 on
// the ring. Succ(a, a) == 0.
func Succ(a, b2 ID) uint64 { return uint64(b2) - uint64(a) }

// Pred returns the counter-clockwise distance from a to b2 on the ring.
func Pred(a, b2 ID) uint64 { return uint64(a) - uint64(b2) }

// RingDistance returns the minimal distance between a and b2 along the ring,
// in either direction.
func RingDistance(a, b2 ID) uint64 {
	s := Succ(a, b2)
	p := Pred(a, b2)
	if s < p {
		return s
	}
	return p
}

// IsSuccessor reports whether b2 is a successor of a, i.e. closer to a in
// the increasing (clockwise) direction than in the decreasing one. The paper
// classifies every ID as either a successor or a predecessor of a given
// node; ties (the exact antipode) count as successors, and a node is not a
// successor of itself.
func IsSuccessor(a, b2 ID) bool {
	if a == b2 {
		return false
	}
	return Succ(a, b2) <= Pred(a, b2)
}

// CompareRing orders x and y by ring distance from the pivot a: it returns a
// negative number when x is strictly closer to a than y, zero when
// equidistant, and a positive number otherwise.
func CompareRing(a, x, y ID) int {
	dx, dy := RingDistance(a, x), RingDistance(a, y)
	switch {
	case dx < dy:
		return -1
	case dx > dy:
		return 1
	default:
		return 0
	}
}

// Generator produces unique random IDs from a deterministic source.
type Generator struct {
	rng  *rand.Rand
	seen map[ID]struct{}
}

// NewGenerator returns a Generator seeded with the given seed.
func NewGenerator(seed int64) *Generator {
	return &Generator{
		rng:  rand.New(rand.NewSource(seed)),
		seen: make(map[ID]struct{}),
	}
}

// Reserve marks ids as already taken, so Next never returns any of them.
// Seeding a generator with a network's pre-existing identifiers makes
// later draws collision-free by construction — the churn/join harness
// relies on this instead of detecting duplicates after the fact.
func (g *Generator) Reserve(ids ...ID) {
	for _, v := range ids {
		g.seen[v] = struct{}{}
	}
}

// Next returns a fresh ID never returned by this generator before (and
// never colliding with a Reserved ID).
func (g *Generator) Next() ID {
	for {
		v := ID(g.rng.Uint64())
		if _, dup := g.seen[v]; dup {
			continue
		}
		g.seen[v] = struct{}{}
		return v
	}
}

// Unique returns n distinct random IDs drawn from a source seeded with seed.
func Unique(n int, seed int64) []ID {
	g := NewGenerator(seed)
	out := make([]ID, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// SortAscending sorts ids in increasing numeric order (ring order starting
// at zero).
func SortAscending(ids []ID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
