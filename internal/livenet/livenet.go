// Package livenet is a concurrent in-memory network runtime: one goroutine
// per host drives the same protocol state machines that run under the
// deterministic simulator, over a channel-based transport with optional
// loss, latency, and bounded inboxes (UDP-like semantics). It demonstrates
// that the protocol implementations are engine-agnostic and exercises them
// under real concurrency; run the tests with -race.
package livenet

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/peer"
	"repro/internal/proto"
)

// Config parameterises the runtime.
type Config struct {
	// Seed drives the loss and latency models and per-host RNGs.
	Seed int64
	// Drop is the per-message loss probability.
	Drop float64
	// MinLatency and MaxLatency bound the uniform delivery latency.
	MinLatency, MaxLatency time.Duration
	// InboxSize bounds each host's message queue; messages arriving at
	// a full inbox are dropped, as UDP would. Zero selects 256.
	InboxSize int
}

// Stats aggregates traffic counters. All fields are updated atomically.
type Stats struct {
	Sent      int64
	Dropped   int64
	Delivered int64
	Overflow  int64
}

// Network is a concurrent in-memory network of hosts.
type Network struct {
	cfg    Config
	mu     sync.Mutex
	rng    *rand.Rand // guarded by mu: drop/latency decisions, host seeds
	hosts  []*Host
	wg     sync.WaitGroup
	stop   chan struct{}
	closed atomic.Bool
	start  time.Time

	sent, dropped, delivered, overflow atomic.Int64
}

// New returns a network ready for AddHost/Attach; call Start to run it.
func New(cfg Config) *Network {
	if cfg.InboxSize <= 0 {
		cfg.InboxSize = 256
	}
	if cfg.MaxLatency < cfg.MinLatency {
		cfg.MaxLatency = cfg.MinLatency
	}
	return &Network{
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		stop: make(chan struct{}),
	}
}

type command struct {
	// tick is non-nil for tick commands.
	tick *binding
	// from/pid/msg describe a delivery.
	from peer.Addr
	pid  proto.ProtoID
	msg  proto.Message
}

type binding struct {
	pid    proto.ProtoID
	p      proto.Protocol
	period time.Duration
	offset time.Duration
}

// Host is one node: a mailbox plus the protocols attached to it. All
// protocol callbacks run on the host's single goroutine.
type Host struct {
	net      *Network
	addr     peer.Addr
	inbox    chan command
	rng      *rand.Rand
	bindings []*binding
	protos   map[proto.ProtoID]proto.Protocol
	tickers  []*time.Ticker
	timers   []*time.Timer
	down     chan struct{}
	downOnce sync.Once
	exited   chan struct{}
	started  atomic.Bool
}

// hostContext implements proto.Context for livenet callbacks; one per
// binding so Send routes to the caller's own protocol on the peer.
type hostContext struct {
	h   *Host
	pid proto.ProtoID
}

var _ proto.Context = hostContext{}

func (c hostContext) Self() peer.Addr  { return c.h.addr }
func (c hostContext) Now() int64       { return time.Since(c.h.net.start).Milliseconds() }
func (c hostContext) Rand() *rand.Rand { return c.h.rng }
func (c hostContext) Send(to peer.Addr, msg proto.Message) {
	c.h.net.send(c.h.addr, to, c.pid, msg)
}

// AddHost allocates a host. All hosts must be added, and their protocols
// attached, before Start.
func (n *Network) AddHost() *Host {
	n.mu.Lock()
	defer n.mu.Unlock()
	h := &Host{
		net:    n,
		addr:   peer.Addr(len(n.hosts)),
		inbox:  make(chan command, n.cfg.InboxSize),
		rng:    rand.New(rand.NewSource(n.rng.Int63())),
		protos: make(map[proto.ProtoID]proto.Protocol, 2),
		down:   make(chan struct{}),
		exited: make(chan struct{}),
	}
	n.hosts = append(n.hosts, h)
	return h
}

// Addr returns the host's address.
func (h *Host) Addr() peer.Addr { return h.addr }

// Stop crashes the host: its goroutine exits, its tickers stop, and
// messages addressed to it are dropped. It waits for the host goroutine
// to finish its current callback, so the host's protocol state may be
// inspected safely afterwards. Safe to call multiple times.
func (h *Host) Stop() {
	h.downOnce.Do(func() { close(h.down) })
	if h.started.Load() {
		<-h.exited
	}
}

// Stopped reports whether the host has been crashed.
func (h *Host) Stopped() bool {
	select {
	case <-h.down:
		return true
	default:
		return false
	}
}

// Attach binds a protocol to the host. period zero installs a purely
// reactive protocol. Must be called before Network.Start.
func (h *Host) Attach(pid proto.ProtoID, p proto.Protocol, period, offset time.Duration) error {
	if _, dup := h.protos[pid]; dup {
		return fmt.Errorf("livenet attach: protocol %d already bound at host %d", pid, h.addr)
	}
	b := &binding{pid: pid, p: p, period: period, offset: offset}
	h.protos[pid] = p
	h.bindings = append(h.bindings, b)
	return nil
}

// ErrClosed is returned by Start after Close.
var ErrClosed = errors.New("livenet: network closed")

// Start launches every host goroutine and begins ticking.
func (n *Network) Start() error {
	if n.closed.Load() {
		return ErrClosed
	}
	n.mu.Lock()
	n.start = time.Now()
	hosts := make([]*Host, len(n.hosts))
	copy(hosts, n.hosts)
	n.mu.Unlock()
	for _, h := range hosts {
		h.started.Store(true)
		n.wg.Add(1)
		go h.run()
	}
	return nil
}

// run is the host main loop: Init all protocols (after their offsets),
// then serve ticks and deliveries until shutdown.
func (h *Host) run() {
	defer h.net.wg.Done()
	defer close(h.exited)
	// Stagger protocol starts without blocking the mailbox: offsets are
	// armed as timers that enqueue an init-then-tick sequence.
	inits := make(chan *binding, len(h.bindings))
	for _, b := range h.bindings {
		b := b
		h.timers = append(h.timers, time.AfterFunc(b.offset, func() {
			select {
			case inits <- b:
			case <-h.net.stop:
			}
		}))
	}
	defer func() {
		for _, t := range h.timers {
			t.Stop()
		}
		for _, t := range h.tickers {
			t.Stop()
		}
	}()
	for {
		select {
		case <-h.net.stop:
			return
		case <-h.down:
			return
		case b := <-inits:
			b.p.Init(hostContext{h: h, pid: b.pid})
			if b.period > 0 {
				ticker := time.NewTicker(b.period)
				h.tickers = append(h.tickers, ticker)
				go h.forwardTicks(ticker, b)
			}
		case cmd := <-h.inbox:
			h.dispatch(cmd)
		}
	}
}

func (h *Host) forwardTicks(t *time.Ticker, b *binding) {
	for {
		select {
		case <-h.net.stop:
			return
		case <-t.C:
			select {
			case h.inbox <- command{tick: b}:
			case <-h.net.stop:
				return
			default:
				// Inbox full: skip the tick rather than stall.
			}
		}
	}
}

func (h *Host) dispatch(cmd command) {
	if cmd.tick != nil {
		cmd.tick.p.Tick(hostContext{h: h, pid: cmd.tick.pid})
		return
	}
	p, ok := h.protos[cmd.pid]
	if !ok {
		return
	}
	h.net.delivered.Add(1)
	p.Handle(hostContext{h: h, pid: cmd.pid}, cmd.from, cmd.msg)
}

// send applies the loss and latency models and enqueues the delivery.
func (n *Network) send(from, to peer.Addr, pid proto.ProtoID, msg proto.Message) {
	n.sent.Add(1)
	n.mu.Lock()
	drop := n.cfg.Drop > 0 && n.rng.Float64() < n.cfg.Drop
	var lat time.Duration
	if !drop && n.cfg.MaxLatency > 0 {
		span := int64(n.cfg.MaxLatency - n.cfg.MinLatency)
		lat = n.cfg.MinLatency
		if span > 0 {
			lat += time.Duration(n.rng.Int63n(span + 1))
		}
	}
	var dst *Host
	if int(to) >= 0 && int(to) < len(n.hosts) {
		dst = n.hosts[to]
	}
	n.mu.Unlock()

	if drop || dst == nil {
		n.dropped.Add(1)
		return
	}
	deliver := func() {
		if dst.Stopped() {
			n.dropped.Add(1)
			return
		}
		select {
		case dst.inbox <- command{from: from, pid: pid, msg: msg}:
		case <-n.stop:
		default:
			n.overflow.Add(1)
		}
	}
	if lat <= 0 {
		deliver()
		return
	}
	time.AfterFunc(lat, deliver)
}

// Close stops all hosts and waits for them to exit. It is idempotent.
func (n *Network) Close() {
	if n.closed.Swap(true) {
		return
	}
	close(n.stop)
	n.wg.Wait()
}

// Stats returns a snapshot of the traffic counters.
func (n *Network) Stats() Stats {
	return Stats{
		Sent:      n.sent.Load(),
		Dropped:   n.dropped.Load(),
		Delivered: n.delivered.Load(),
		Overflow:  n.overflow.Load(),
	}
}
