// Package livenet is a concurrent in-memory network runtime: one goroutine
// per host drives the same protocol state machines that run under the
// deterministic simulator, over a channel-based transport with optional
// loss, latency, and bounded inboxes (UDP-like semantics). It demonstrates
// that the protocol implementations are engine-agnostic and exercises them
// under real concurrency; run the tests with -race.
//
// Beyond plain message passing the runtime exposes a host lifecycle API —
// Pause/Resume (freeze a host between callbacks, e.g. for a consistent
// whole-network measurement), Kill/Respawn (crash-recovery churn) — and a
// runtime-mutable fault model (SetDrop, SetLatency, SetPartition) that the
// scenario layer (scenario.go) drives during campaign runs.
package livenet

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/peer"
	"repro/internal/proto"
	"repro/internal/sched"
)

// Config parameterises the runtime. Drop and the latency bounds are only
// the initial fault model; SetDrop/SetLatency/SetPartition change it while
// the network runs.
type Config struct {
	// Seed drives the loss and latency models and per-host RNGs.
	Seed int64
	// Drop is the per-message loss probability.
	Drop float64
	// MinLatency and MaxLatency bound the uniform delivery latency.
	MinLatency, MaxLatency time.Duration
	// InboxSize bounds each host's message queue; messages arriving at
	// a full inbox are dropped, as UDP would. Zero selects 256.
	InboxSize int
}

// Stats is a snapshot of the network traffic counters. At quiescence
// (after Close) the counters are conserved:
//
//	Sent == Delivered + Dropped + Overflow
//
// Every sent message is eventually dispatched to a protocol (Delivered),
// rejected by the fault model, addressed to a dead or unknown host, or
// stranded in flight at shutdown (Dropped), or bounced off a full inbox
// (Overflow).
type Stats struct {
	Sent      int64
	Dropped   int64
	Delivered int64
	Overflow  int64
}

// HostStats is a per-host traffic snapshot.
type HostStats struct {
	// Delivered counts messages dispatched to this host's protocols.
	Delivered int64
	// Overflow counts messages bounced off this host's full inbox.
	Overflow int64
	// Ticks counts protocol tick callbacks run on this host.
	Ticks int64
	// Incarnations counts how many times the host has been (re)started.
	Incarnations int64
}

// latencyWindow is an immutable [min, max] delivery latency pair; SetLatency
// swaps the whole window atomically so senders never observe a torn pair.
type latencyWindow struct {
	min, max time.Duration
}

// partitionFunc is a cut predicate; see SetPartition.
type partitionFunc func(from, to peer.Addr) bool

// Network is a concurrent in-memory network of hosts.
//
// The send path is deliberately lock-free: the fault model lives in
// atomics (drop probability as float bits, the latency window and the
// partition predicate behind atomic pointers) and the per-send randomness
// comes from the sending host's private RNG, so concurrent senders never
// serialise on Network.mu. The mutex only guards cold control-plane state:
// host registration and the closing handshake.
type Network struct {
	cfg     Config
	mu      sync.Mutex
	rng     *rand.Rand // guarded by mu: host seeding (AddHost, pre-Start)
	hosts   []*Host    // append-only before Start; read lock-free afterwards
	wg      sync.WaitGroup
	stop    chan struct{}
	closed  atomic.Bool
	closing bool // guarded by mu: no wg.Add once set
	started atomic.Bool
	start   time.Time

	// Mutable fault model, read lock-free on every send.
	dropBits  atomic.Uint64 // math.Float64bits of the drop probability
	lat       atomic.Pointer[latencyWindow]
	partition atomic.Pointer[partitionFunc]

	wire *wire

	sent, dropped, delivered, overflow atomic.Int64
}

// New returns a network ready for AddHost/Attach; call Start to run it.
func New(cfg Config) *Network {
	if cfg.InboxSize <= 0 {
		cfg.InboxSize = 256
	}
	if cfg.MaxLatency < cfg.MinLatency {
		cfg.MaxLatency = cfg.MinLatency
	}
	n := &Network{
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		stop: make(chan struct{}),
	}
	n.dropBits.Store(math.Float64bits(cfg.Drop))
	n.lat.Store(&latencyWindow{min: cfg.MinLatency, max: cfg.MaxLatency})
	n.wire = newWire(n)
	return n
}

// SetDrop changes the per-message loss probability at runtime.
func (n *Network) SetDrop(p float64) {
	n.dropBits.Store(math.Float64bits(p))
}

// SetLatency changes the delivery latency window at runtime.
func (n *Network) SetLatency(min, max time.Duration) {
	if max < min {
		max = min
	}
	n.lat.Store(&latencyWindow{min: min, max: max})
}

// SetPartition installs a cut predicate: messages for which fn(from, to)
// reports true are dropped. Passing nil heals the partition. fn must be
// pure, fast, and safe for concurrent use; it is called lock-free on the
// sender's goroutine.
func (n *Network) SetPartition(fn func(from, to peer.Addr) bool) {
	if fn == nil {
		n.partition.Store(nil)
		return
	}
	pf := partitionFunc(fn)
	n.partition.Store(&pf)
}

// command is one unit of work for a host goroutine.
type command struct {
	// tick is non-nil for tick commands.
	tick *binding
	// from/pid/msg describe a delivery.
	from peer.Addr
	pid  proto.ProtoID
	msg  proto.Message
}

// binding is one (protocol, schedule) pair, stored by value in the host's
// pid-sorted bindings slice — the slice is the only protocol registry (no
// shadow map), and at the two-or-three bindings a bootstrap host carries a
// linear scan of a contiguous value slice beats a map lookup while costing
// a single allocation for the whole registry. The slice is sealed at Start
// (Attach must precede it), so interior pointers taken by the host
// goroutine (tick commands, the init channel) remain stable for the life
// of the network.
type binding struct {
	pid    proto.ProtoID
	p      proto.Protocol
	period time.Duration
	offset time.Duration
	// tickQueued coalesces tick commands: at most one tick per binding
	// sits in the inbox at a time. Without this a host that falls behind
	// (or is paused for a measurement) accumulates a backlog of stale
	// ticks and then fires a catch-up gossip storm — hundreds of extra
	// messages per host — instead of just resuming at its period.
	//
	// A bare uint32 driven through sync/atomic rather than atomic.Bool:
	// the wrapper embeds a noCopy guard, which would (correctly) trip
	// vet's copylocks on the by-value appends Attach performs before the
	// slice is sealed. The atomics only start once Start launches the
	// goroutines, after the last copy.
	tickQueued uint32
}

// incarnation is one life of a host: the channels that end it. Kill closes
// down and waits for exited; Respawn installs a fresh incarnation.
type incarnation struct {
	down     chan struct{}
	downOnce sync.Once
	exited   chan struct{}
	running  bool // goroutine launched (guarded by Host.mu)
}

func newIncarnation() *incarnation {
	return &incarnation{down: make(chan struct{}), exited: make(chan struct{})}
}

func (inc *incarnation) kill() { inc.downOnce.Do(func() { close(inc.down) }) }

func (inc *incarnation) dead() bool {
	select {
	case <-inc.down:
		return true
	default:
		return false
	}
}

// ctrlMsg is a pause/resume handshake. ack is closed by the host goroutine
// once the command takes effect.
type ctrlMsg struct {
	pause bool
	ack   chan struct{}
}

// Host is one node: a mailbox plus the protocols attached to it. All
// protocol callbacks run on the host's single goroutine.
type Host struct {
	net   *Network
	addr  peer.Addr
	inbox chan command
	rng   *rand.Rand
	// sendRNG drives this host's outbound drop/latency decisions. It is
	// distinct from the protocol-visible rng and is only touched from the
	// host's own callback goroutine, so the send path needs no lock.
	sendRNG *rand.Rand
	// bindings is sorted by pid and sealed at Network.Start; it doubles as
	// the dispatch table (find) and the tick schedule.
	bindings []binding
	ctrl     chan ctrlMsg

	mu  sync.Mutex // lifecycle state
	inc *incarnation

	delivered, overflow, ticks, incarnations atomic.Int64
}

// hostContext implements proto.Context for livenet callbacks; one per
// binding so Send routes to the caller's own protocol on the peer.
type hostContext struct {
	h   *Host
	pid proto.ProtoID
}

var _ proto.Context = hostContext{}

func (c hostContext) Self() peer.Addr  { return c.h.addr }
func (c hostContext) Now() int64       { return time.Since(c.h.net.start).Milliseconds() }
func (c hostContext) Rand() *rand.Rand { return c.h.rng }
func (c hostContext) Send(to peer.Addr, msg proto.Message) {
	c.h.net.send(c.h.addr, to, c.pid, msg)
}

// AddHost allocates a host. All hosts must be added, and their protocols
// attached, before Start.
func (n *Network) AddHost() *Host {
	n.mu.Lock()
	defer n.mu.Unlock()
	h := &Host{
		net:     n,
		addr:    peer.Addr(len(n.hosts)),
		inbox:   make(chan command, n.cfg.InboxSize),
		rng:     rand.New(rand.NewSource(n.rng.Int63())),
		sendRNG: rand.New(rand.NewSource(n.rng.Int63())),
		ctrl:    make(chan ctrlMsg),
		inc:     newIncarnation(),
	}
	n.hosts = append(n.hosts, h)
	return h
}

// Addr returns the host's address.
func (h *Host) Addr() peer.Addr { return h.addr }

// Stats returns the host's per-host counters.
func (h *Host) Stats() HostStats {
	return HostStats{
		Delivered:    h.delivered.Load(),
		Overflow:     h.overflow.Load(),
		Ticks:        h.ticks.Load(),
		Incarnations: h.incarnations.Load(),
	}
}

// Kill crashes the host: its goroutine exits, its tickers stop, and
// messages addressed to it are dropped. It waits for the host goroutine
// to finish its current callback, so the host's protocol state may be
// inspected safely afterwards, and drains messages already queued in the
// inbox, counting them as dropped. Safe to call multiple times and safe
// to call concurrently with Respawn and with senders.
func (h *Host) Kill() {
	for {
		h.mu.Lock()
		inc := h.inc
		h.mu.Unlock()
		inc.kill()
		h.mu.Lock()
		running := inc.running
		h.mu.Unlock()
		if running {
			<-inc.exited
		}
		h.drainInbox()
		h.mu.Lock()
		same := h.inc == inc
		h.mu.Unlock()
		if same {
			return
		}
		// A concurrent Respawn swapped in a fresh incarnation between
		// our read and now; kill that one too, or we would return with
		// the host still running.
	}
}

// Stop is an alias for Kill, kept for API compatibility.
func (h *Host) Stop() { h.Kill() }

// drainInbox discards queued deliveries, counting them as dropped. Tick
// commands are engine-internal and do not touch the traffic counters.
func (h *Host) drainInbox() {
	for {
		select {
		case cmd := <-h.inbox:
			if cmd.tick != nil {
				atomic.StoreUint32(&cmd.tick.tickQueued, 0)
			} else {
				h.net.dropped.Add(1)
				recycle(cmd.msg)
			}
		default:
			return
		}
	}
}

// recycle retires a message (see proto.Recyclable): called exactly once
// per message, after its Handle returns or on any drop/overflow/drain
// path. sync.Pool's Put/Get establish the cross-goroutine ordering.
func recycle(m proto.Message) {
	if r, ok := m.(proto.Recyclable); ok {
		r.Recycle()
	}
}

// Stopped reports whether the host's current incarnation has been killed.
func (h *Host) Stopped() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.inc.dead()
}

// Respawn restarts a killed host with its protocol state intact — the
// crash-recovery model: the node comes back with whatever (possibly
// stale) structures it had, re-runs Init after its configured offsets,
// and resumes ticking. It is a no-op if the host is already running and
// returns ErrClosed after Network.Close. Respawn before Network.Start
// just revives the host; Start will launch it.
func (h *Host) Respawn() error {
	n := h.net
	for {
		if n.closed.Load() {
			return ErrClosed
		}
		h.mu.Lock()
		inc := h.inc
		running := inc.running
		h.mu.Unlock()
		if !inc.dead() {
			return nil
		}
		if running {
			// Wait for the previous incarnation outside the locks.
			<-inc.exited
		}
		// Discard messages that arrived while the host was down, as a
		// rebooting UDP host would. Best-effort: a message still in
		// flight on the wire from the down window can land after the
		// drain and reach the new incarnation — indistinguishable, to
		// the protocol, from one sent during the reboot itself.
		h.drainInbox()
		n.mu.Lock()
		if n.closing {
			n.mu.Unlock()
			return ErrClosed
		}
		h.mu.Lock()
		if h.inc != inc {
			// A concurrent Respawn won; re-evaluate from scratch.
			h.mu.Unlock()
			n.mu.Unlock()
			continue
		}
		fresh := newIncarnation()
		h.inc = fresh
		launch := n.started.Load()
		if launch {
			fresh.running = true
			n.wg.Add(1)
		}
		h.mu.Unlock()
		n.mu.Unlock()
		if launch {
			go h.run(fresh)
		}
		return nil
	}
}

// Pause freezes the host between callbacks: the host goroutine stops
// draining its inbox and ticks until Resume. It returns once the host is
// actually parked, so the caller may read the host's protocol state until
// the matching Resume (the handshake establishes the happens-before
// edges). Returns false if the host is dead or the network stopped.
func (h *Host) Pause() bool { return h.control(true) }

// Resume unfreezes a paused host. Returns false if the host is dead or
// the network stopped. Resuming a host that is not paused is a no-op
// handshake.
func (h *Host) Resume() bool { return h.control(false) }

func (h *Host) control(pause bool) bool {
	c := ctrlMsg{pause: pause, ack: make(chan struct{})}
	for {
		h.mu.Lock()
		inc := h.inc
		running := inc.running
		h.mu.Unlock()
		if !running || inc.dead() {
			return false
		}
		select {
		case h.ctrl <- c:
			// Some incarnation received the command (h.ctrl is shared
			// across incarnations) and closes ack immediately on
			// receipt, so this wait is short and unconditional —
			// selecting on a possibly stale inc.exited here could
			// report a successfully parked host as dead.
			<-c.ack
			return true
		case <-inc.exited:
			// This incarnation ended; re-evaluate — a concurrent
			// Respawn may have installed a live one.
		case <-h.net.stop:
			return false
		}
	}
}

// Attach binds a protocol to the host. period zero installs a purely
// reactive protocol. Must be called before Network.Start.
func (h *Host) Attach(pid proto.ProtoID, p proto.Protocol, period, offset time.Duration) error {
	if h.find(pid) != nil {
		return fmt.Errorf("livenet attach: protocol %d already bound at host %d", pid, h.addr)
	}
	h.bindings = append(h.bindings, binding{pid: pid, p: p, period: period, offset: offset})
	for i := len(h.bindings) - 1; i > 0 && h.bindings[i].pid < h.bindings[i-1].pid; i-- {
		h.bindings[i], h.bindings[i-1] = h.bindings[i-1], h.bindings[i]
	}
	return nil
}

// find returns the binding for pid, or nil. The returned pointer is stable
// once the network has started (the slice is sealed at Start).
func (h *Host) find(pid proto.ProtoID) *binding {
	for i := range h.bindings {
		if h.bindings[i].pid == pid {
			return &h.bindings[i]
		}
	}
	return nil
}

// ErrClosed is returned by Start and Respawn after Close.
var ErrClosed = errors.New("livenet: network closed")

// Start launches every live host goroutine and begins ticking.
func (n *Network) Start() error {
	if n.closed.Load() {
		return ErrClosed
	}
	n.mu.Lock()
	if n.closing {
		n.mu.Unlock()
		return ErrClosed
	}
	if n.started.Load() {
		n.mu.Unlock()
		return errors.New("livenet: network already started")
	}
	n.start = time.Now()
	// Publish started only now, under mu and after n.start is written:
	// Respawn checks it (under mu) to decide whether to launch, and a
	// launched goroutine reads n.start in Context.Now.
	n.started.Store(true)
	n.wg.Add(1)
	go n.wire.loop()
	// Launch hosts while still holding n.mu: every wg.Add must be
	// ordered before a concurrent Close sets closing and calls wg.Wait
	// (same discipline Respawn follows), or goroutines could start after
	// Close has already drained and snapshotted.
	for _, h := range n.hosts {
		h.mu.Lock()
		inc := h.inc
		if inc.dead() || inc.running {
			h.mu.Unlock()
			continue
		}
		inc.running = true
		n.wg.Add(1)
		h.mu.Unlock()
		go h.run(inc)
	}
	n.mu.Unlock()
	return nil
}

// run is the host main loop for one incarnation: Init all protocols
// (after their offsets), then serve ticks, deliveries and pause/resume
// handshakes until shutdown.
func (h *Host) run(inc *incarnation) {
	defer h.net.wg.Done()
	defer close(inc.exited)
	h.incarnations.Add(1)
	// Stagger protocol starts without blocking the mailbox: offsets are
	// armed as timers that enqueue an init-then-tick sequence.
	inits := make(chan *binding, len(h.bindings))
	var timers []*time.Timer
	var tickers []*time.Ticker
	for i := range h.bindings {
		b := &h.bindings[i]
		timers = append(timers, time.AfterFunc(b.offset, func() {
			select {
			case inits <- b:
			case <-h.net.stop:
			case <-inc.down:
			}
		}))
	}
	defer func() {
		for _, t := range timers {
			t.Stop()
		}
		for _, t := range tickers {
			t.Stop()
		}
	}()
	for {
		select {
		case <-h.net.stop:
			return
		case <-inc.down:
			return
		case c := <-h.ctrl:
			close(c.ack)
			if c.pause {
				if !h.parked(inc) {
					return
				}
			}
		case b := <-inits:
			b.p.Init(hostContext{h: h, pid: b.pid})
			if b.period > 0 {
				ticker := time.NewTicker(b.period)
				tickers = append(tickers, ticker)
				go h.forwardTicks(ticker, b, inc)
			}
		case cmd := <-h.inbox:
			h.dispatch(cmd)
		}
	}
}

// parked blocks until Resume, Kill, or network stop. It reports whether
// the incarnation should keep running.
func (h *Host) parked(inc *incarnation) bool {
	for {
		select {
		case c := <-h.ctrl:
			close(c.ack)
			if !c.pause {
				return true
			}
		case <-inc.down:
			return false
		case <-h.net.stop:
			return false
		}
	}
}

func (h *Host) forwardTicks(t *time.Ticker, b *binding, inc *incarnation) {
	for {
		select {
		case <-h.net.stop:
			return
		case <-inc.down:
			return
		case <-t.C:
			if !atomic.CompareAndSwapUint32(&b.tickQueued, 0, 1) {
				continue // a tick is already queued; coalesce
			}
			select {
			case h.inbox <- command{tick: b}:
			case <-h.net.stop:
				atomic.StoreUint32(&b.tickQueued, 0)
				return
			case <-inc.down:
				atomic.StoreUint32(&b.tickQueued, 0)
				return
			default:
				// Inbox full: skip the tick rather than stall.
				atomic.StoreUint32(&b.tickQueued, 0)
			}
		}
	}
}

func (h *Host) dispatch(cmd command) {
	if cmd.tick != nil {
		atomic.StoreUint32(&cmd.tick.tickQueued, 0)
		h.ticks.Add(1)
		cmd.tick.p.Tick(hostContext{h: h, pid: cmd.tick.pid})
		return
	}
	b := h.find(cmd.pid)
	if b == nil {
		h.net.dropped.Add(1)
		recycle(cmd.msg)
		return
	}
	h.net.delivered.Add(1)
	h.delivered.Add(1)
	b.p.Handle(hostContext{h: h, pid: cmd.pid}, cmd.from, cmd.msg)
	recycle(cmd.msg)
}

// send applies the fault model and enqueues the delivery, either directly
// or through the wire for latency. It runs entirely lock-free — fault
// model from atomics, randomness from the sender's private RNG, host table
// immutable after Start — so concurrent senders never contend. It must
// only be called from the sending host's callback goroutine (the only
// place protocols can send from).
func (n *Network) send(from, to peer.Addr, pid proto.ProtoID, msg proto.Message) {
	n.sent.Add(1)
	rng := n.hosts[from].sendRNG
	dropP := math.Float64frombits(n.dropBits.Load())
	drop := dropP > 0 && rng.Float64() < dropP
	if !drop {
		if cut := n.partition.Load(); cut != nil && (*cut)(from, to) {
			drop = true
		}
	}
	var lat time.Duration
	if w := n.lat.Load(); !drop && w.max > 0 {
		span := int64(w.max - w.min)
		lat = w.min
		if span > 0 {
			lat += time.Duration(rng.Int63n(span + 1))
		}
	}
	var dst *Host
	if int(to) >= 0 && int(to) < len(n.hosts) {
		dst = n.hosts[to]
	}

	if drop || dst == nil {
		n.dropped.Add(1)
		recycle(msg)
		return
	}
	cmd := command{from: from, pid: pid, msg: msg}
	if lat <= 0 {
		n.deliver(dst, cmd)
		return
	}
	n.wire.enqueue(from, lat, dst, cmd)
}

// deliver places the command in the destination inbox. Messages for dead
// hosts still enter the inbox while it has room (they are drained as
// dropped by Kill/Close — checking liveness before every enqueue would
// race with Kill's drain, and the accounting comes out the same); only
// when the inbox is full does liveness pick the category, so a dead
// host's steady-state losses read as Dropped, not inbox pressure.
func (n *Network) deliver(dst *Host, cmd command) {
	select {
	case dst.inbox <- cmd:
	case <-n.stop:
		n.dropped.Add(1)
		recycle(cmd.msg)
	default:
		if dst.Stopped() {
			n.dropped.Add(1)
			recycle(cmd.msg)
			return
		}
		n.overflow.Add(1)
		dst.overflow.Add(1)
		recycle(cmd.msg)
	}
}

// wire models propagation delay with sharded timing wheels: each shard is a
// calendar queue (internal/sched) of in-flight messages keyed on
// nanoseconds since the wire's epoch, guarded by its own mutex, and a
// single sweeper goroutine harvests expired entries from every shard.
// Senders hash to a shard by their own address, so concurrent
// latency-delayed sends from different hosts never contend on one lock —
// the old single `wire.mu` + container/heap was the last global mutex on
// the live data plane (and its interface{} boxing the last reflection on
// the send path). Replacing per-message time.AfterFunc with the wheels also
// keeps shutdown deterministic — Close drains the shards and counts
// stranded messages as dropped — and scales to 10k+ hosts without a timer
// goroutine per message.
type wire struct {
	net    *Network
	epoch  time.Time // monotonic zero for wheel deadlines
	shards []wireShard
	mask   uint32
	wake   chan struct{}
	// scratch collects due flights under each shard lock so delivery (and
	// message recycling) runs with no lock held. Sweeper-goroutine-only.
	scratch []flight
}

// wireShard is one lock-striped timing wheel. next is the earliest deadline
// the sweeper has promised to service for this shard (MaxInt64 when it
// believes the shard is empty); an enqueue with a strictly earlier deadline
// must wake the sweeper, and only such an enqueue must — comparing against
// the sweeper's promise rather than the heap head fixes the old wake check
// (`w.heap[0].at == at`), which compared by value and could both miss a new
// earliest deadline and fire spuriously on ties.
//
// No padding against false sharing: sched.Queue is several cache lines of
// slice headers on its own, so adjacent shards' hot words already land on
// distinct lines.
type wireShard struct {
	mu   sync.Mutex
	q    sched.Queue[flight]
	next int64
}

type flight struct {
	dst *Host
	cmd command
}

// Wheel geometry: 2^17 ns (~131 µs) buckets, 512 of them — a ~67 ms window
// covering the latency configs the campaigns run (100 µs – a few ms);
// longer latencies route through the wheels' overflow level.
const (
	wireShift   = 17
	wireBuckets = 512
)

// wireShardCount picks a power-of-two shard count: enough stripes that
// GOMAXPROCS concurrently sending hosts rarely collide, bounded so the
// sweeper's per-pass scan stays trivial.
func wireShardCount() int {
	n := 8
	for n < runtime.GOMAXPROCS(0) && n < 64 {
		n <<= 1
	}
	return n
}

func newWire(n *Network) *wire { return newWireShards(n, wireShardCount()) }

func newWireShards(n *Network, shardCount int) *wire {
	w := &wire{
		net:    n,
		epoch:  time.Now(),
		shards: make([]wireShard, shardCount),
		mask:   uint32(shardCount - 1),
		wake:   make(chan struct{}, 1),
	}
	for i := range w.shards {
		w.shards[i].q = *sched.New[flight](wireShift, wireBuckets)
		w.shards[i].next = math.MaxInt64
	}
	return w
}

// enqueue schedules delivery after delay on the sender's shard. Lock-free
// with respect to every other sender outside the shard stripe: the only
// mutex taken is the shard's own, and the sweeper is woken only when this
// deadline is strictly earlier than the one it is sleeping toward.
func (w *wire) enqueue(from peer.Addr, delay time.Duration, dst *Host, cmd command) {
	at := int64(time.Since(w.epoch) + delay)
	s := &w.shards[uint32(from)&w.mask]
	s.mu.Lock()
	s.q.Push(at, flight{dst: dst, cmd: cmd})
	earlier := at < s.next
	if earlier {
		s.next = at
	}
	s.mu.Unlock()
	if earlier {
		select {
		case w.wake <- struct{}{}:
		default:
		}
	}
}

// loop is the sweeper: it harvests every shard's expired buckets into a
// scratch buffer, delivers outside the locks, then sleeps until the
// earliest pending deadline (or a wake from an earlier enqueue). It exits
// on network stop; Close then drains what remains.
func (w *wire) loop() {
	defer w.net.wg.Done()
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		now := int64(time.Since(w.epoch))
		next := int64(math.MaxInt64)
		w.scratch = w.scratch[:0]
		for i := range w.shards {
			s := &w.shards[i]
			s.mu.Lock()
			w.scratch = s.q.AppendDue(now, w.scratch)
			if t, ok := s.q.PeekTime(); ok {
				s.next = t
				if t < next {
					next = t
				}
			} else {
				s.next = math.MaxInt64
			}
			s.mu.Unlock()
		}
		for i := range w.scratch {
			w.net.deliver(w.scratch[i].dst, w.scratch[i].cmd)
			w.scratch[i] = flight{}
		}
		sleep := time.Hour
		if next != math.MaxInt64 {
			sleep = time.Duration(next - int64(time.Since(w.epoch)))
			if sleep < 0 {
				sleep = 0
			}
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(sleep)
		select {
		case <-w.net.stop:
			return
		case <-w.wake:
		case <-timer.C:
		}
	}
}

// drain counts every message still in flight as dropped. Only called after
// the loop goroutine has exited, but it takes the shard locks anyway so a
// straggling sender (a host goroutine finishing its last callback) cannot
// race the teardown accounting.
func (w *wire) drain() {
	var stranded int64
	for i := range w.shards {
		s := &w.shards[i]
		s.mu.Lock()
		s.q.Drain(func(f flight) {
			stranded++
			recycle(f.cmd.msg)
		})
		s.next = math.MaxInt64
		s.mu.Unlock()
	}
	w.net.dropped.Add(stranded)
}

// Close stops all hosts, waits for them to exit, and settles the traffic
// accounting: in-flight and queued-but-undispatched messages are counted
// as dropped, so the conservation law documented on Stats holds. It is
// idempotent.
func (n *Network) Close() {
	if n.closed.Swap(true) {
		return
	}
	n.mu.Lock()
	n.closing = true
	n.mu.Unlock()
	close(n.stop)
	n.wg.Wait()
	if n.started.Load() {
		n.wire.drain()
	}
	n.mu.Lock()
	hosts := n.hosts
	n.mu.Unlock()
	for _, h := range hosts {
		h.drainInbox()
	}
}

// PauseAll pauses every live host, in parallel, and returns once all of
// them are parked. Combined with ResumeAll it brackets a consistent
// whole-network measurement without stopping the clock.
func (n *Network) PauseAll() { n.controlAll(true) }

// ResumeAll resumes every live host.
func (n *Network) ResumeAll() { n.controlAll(false) }

func (n *Network) controlAll(pause bool) {
	n.mu.Lock()
	hosts := make([]*Host, len(n.hosts))
	copy(hosts, n.hosts)
	n.mu.Unlock()
	// The handshakes are wait-bound (each blocks until the target host
	// goroutine gets scheduled), not CPU-bound, so fan out far wider
	// than GOMAXPROCS: with serial handshakes a loaded scheduler pays
	// one full scheduling round-trip per host, which at thousands of
	// hosts turns a measurement barrier into seconds.
	workers := 256
	if workers > len(hosts) {
		workers = len(hosts)
	}
	if workers < 1 {
		return
	}
	var wg sync.WaitGroup
	next := make(chan *Host, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for h := range next {
				h.control(pause)
			}
		}()
	}
	for _, h := range hosts {
		next <- h
	}
	close(next)
	wg.Wait()
}

// Snapshot returns a consistent snapshot of the traffic counters: the
// four counters are re-read until two consecutive passes agree, so a
// mid-run snapshot is a plausible cut of the counter stream rather than
// four unrelated instants. At quiescence (after Close) it is exact and
// satisfies Sent == Delivered + Dropped + Overflow.
func (n *Network) Snapshot() Stats {
	prev := n.readStats()
	for i := 0; i < 8; i++ {
		cur := n.readStats()
		if cur == prev {
			return cur
		}
		prev = cur
	}
	return prev
}

func (n *Network) readStats() Stats {
	// Sent is read last: every message is counted sent before it can be
	// counted delivered/dropped/overflowed, so with monotonic counters
	// this ordering guarantees Delivered+Dropped+Overflow <= Sent even
	// for a torn read — a snapshot can undercount outcomes, never show
	// more outcomes than sends.
	st := Stats{
		Dropped:   n.dropped.Load(),
		Delivered: n.delivered.Load(),
		Overflow:  n.overflow.Load(),
	}
	st.Sent = n.sent.Load()
	return st
}

// Stats returns a snapshot of the traffic counters; see Snapshot.
func (n *Network) Stats() Stats { return n.Snapshot() }
