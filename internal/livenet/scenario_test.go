package livenet

import (
	"strings"
	"testing"
)

// goldenChurn pins the churn fault plan for seed 42, n=100, cycles=30.
// The schedule — not the message interleaving — is the reproducible part
// of a live campaign; regenerate deliberately if the generator changes.
const goldenChurn = `@5 kill frac=0.052
@7 respawn
@11 kill frac=0.141
@13 respawn
@18 kill frac=0.125
@20 respawn
@23 kill frac=0.150
@25 respawn
`

const goldenPartition = `@10 partition split=54
@20 heal
`

func TestLiveScenarioGoldenSchedule(t *testing.T) {
	got := TraceSchedule(ScenarioChurn.Events(42, 100, 30))
	if got != goldenChurn {
		t.Errorf("churn schedule for seed 42 drifted:\ngot:\n%swant:\n%s", got, goldenChurn)
	}
	got = TraceSchedule(ScenarioPartition.Events(42, 100, 30))
	if got != goldenPartition {
		t.Errorf("partition schedule for seed 42 drifted:\ngot:\n%swant:\n%s", got, goldenPartition)
	}
}

func TestLiveScenarioDeterminism(t *testing.T) {
	for _, s := range Builtins() {
		for _, seed := range []int64{1, 42, 7919} {
			a := TraceSchedule(s.Events(seed, 256, 40))
			b := TraceSchedule(s.Events(seed, 256, 40))
			if a != b {
				t.Errorf("scenario %s seed %d: schedule not deterministic:\n%s\nvs\n%s", s.Name, seed, a, b)
			}
		}
	}
}

func TestLiveScenarioSeedSensitivity(t *testing.T) {
	// The jittered scenarios must actually vary across seeds; otherwise
	// a multi-trial campaign replays one fault plan N times.
	for _, s := range []Scenario{ScenarioChurn, ScenarioLatency} {
		a := TraceSchedule(s.Events(1, 256, 40))
		b := TraceSchedule(s.Events(2, 256, 40))
		if a == b {
			t.Errorf("scenario %s: seeds 1 and 2 yield the identical schedule", s.Name)
		}
	}
}

func TestLiveScenarioEventsSorted(t *testing.T) {
	// Short runs included: generators whose raw plans overrun the
	// campaign (drop ramps, partition heals) must come back clipped, or
	// the runner's convergence condition (cycle > last event) would be
	// unreachable.
	for _, cycles := range []int{6, 12, 60} {
		for _, s := range Builtins() {
			for seed := int64(0); seed < 20; seed++ {
				evs := s.Events(seed, 512, cycles)
				for i := 1; i < len(evs); i++ {
					if evs[i].Cycle < evs[i-1].Cycle {
						t.Errorf("scenario %s: events out of order at %d: %s after %s", s.Name, i, evs[i], evs[i-1])
					}
				}
				for _, e := range evs {
					if e.Cycle < 0 || e.Cycle >= cycles {
						t.Errorf("scenario %s cycles=%d seed=%d: event outside the run: %s", s.Name, cycles, seed, e)
					}
				}
			}
		}
	}
}

func TestLiveParseScenario(t *testing.T) {
	for _, s := range Builtins() {
		got, err := ParseScenario(s.Name)
		if err != nil {
			t.Fatalf("ParseScenario(%q): %v", s.Name, err)
		}
		if got.Name != s.Name {
			t.Errorf("ParseScenario(%q) resolved to %q", s.Name, got.Name)
		}
	}
	if _, err := ParseScenario("nope"); err == nil {
		t.Error("ParseScenario accepted an unknown name")
	}
	if !strings.Contains(ScenarioNone.Name, "none") {
		t.Error("ScenarioNone misnamed")
	}
}

func TestLiveScenarioNoneEmpty(t *testing.T) {
	if evs := ScenarioNone.Events(42, 100, 30); len(evs) != 0 {
		t.Errorf("none scenario scheduled %d events", len(evs))
	}
}
