package livenet

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// EventOp enumerates the churn/failure actions a scenario can schedule.
type EventOp int

const (
	// OpKill crashes Frac of the currently running hosts (at least one).
	OpKill EventOp = iota + 1
	// OpRespawn restarts every currently dead host.
	OpRespawn
	// OpPartition splits the network: messages crossing the boundary
	// between hosts with Addr < Split and the rest are dropped.
	OpPartition
	// OpHeal removes the partition.
	OpHeal
	// OpSetDrop sets the per-message loss probability to Value; a
	// negative Value restores the run's configured baseline.
	OpSetDrop
	// OpSetLatency sets the delivery latency window to [Min, Max]; a
	// negative bound restores the run's configured baseline window.
	OpSetLatency
)

// String implements fmt.Stringer.
func (op EventOp) String() string {
	switch op {
	case OpKill:
		return "kill"
	case OpRespawn:
		return "respawn"
	case OpPartition:
		return "partition"
	case OpHeal:
		return "heal"
	case OpSetDrop:
		return "set-drop"
	case OpSetLatency:
		return "set-latency"
	default:
		return fmt.Sprintf("op(%d)", int(op))
	}
}

// Event is one scheduled churn/failure action, applied at the beginning of
// the given cycle of a campaign run. The schedule is the reproducible part
// of a live trial: it is a pure function of (seed, n, cycles), while the
// delivery order under real concurrency is not.
type Event struct {
	// Cycle is the campaign cycle the event fires at, starting at 0.
	Cycle int
	// Op selects the action.
	Op EventOp
	// Frac is the fraction of running hosts affected (OpKill).
	Frac float64
	// Value is the new drop probability (OpSetDrop).
	Value float64
	// Min and Max bound the new latency window (OpSetLatency).
	Min, Max time.Duration
	// Split is the partition boundary (OpPartition): hosts with
	// Addr < Split form one side.
	Split int
}

// String renders the event in the canonical golden-trace form.
func (e Event) String() string {
	switch e.Op {
	case OpKill:
		return fmt.Sprintf("@%d kill frac=%.3f", e.Cycle, e.Frac)
	case OpRespawn:
		return fmt.Sprintf("@%d respawn", e.Cycle)
	case OpPartition:
		return fmt.Sprintf("@%d partition split=%d", e.Cycle, e.Split)
	case OpHeal:
		return fmt.Sprintf("@%d heal", e.Cycle)
	case OpSetDrop:
		if e.Value < 0 {
			return fmt.Sprintf("@%d set-drop baseline", e.Cycle)
		}
		return fmt.Sprintf("@%d set-drop p=%.3f", e.Cycle, e.Value)
	case OpSetLatency:
		if e.Min < 0 || e.Max < 0 {
			return fmt.Sprintf("@%d set-latency baseline", e.Cycle)
		}
		return fmt.Sprintf("@%d set-latency min=%s max=%s", e.Cycle, e.Min, e.Max)
	default:
		return fmt.Sprintf("@%d %s", e.Cycle, e.Op)
	}
}

// TraceSchedule renders a schedule one event per line — the golden-trace
// format pinned by the determinism tests.
func TraceSchedule(events []Event) string {
	var b strings.Builder
	for _, e := range events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Scenario is a named, deterministic churn/failure schedule generator.
// Schedule must be a pure function of its arguments: the same (seed, n,
// cycles) always yields the identical event list, which is what makes a
// live campaign reproducible even though message interleaving is not.
type Scenario struct {
	// Name identifies the scenario in CLI flags and output headers.
	Name string
	// Schedule produces the event list for a run of the given length
	// over n hosts. A nil Schedule means no events.
	Schedule func(seed int64, n, cycles int) []Event
}

// Events returns the schedule, sorted by cycle (stable), with events at
// or beyond the campaign length discarded — an out-of-range event would
// never fire yet would push the last-event cycle past the run and make
// the runner's convergence condition unreachable. Nil for the empty
// scenario.
func (s Scenario) Events(seed int64, n, cycles int) []Event {
	if s.Schedule == nil || cycles <= 0 {
		return nil
	}
	evs := s.Schedule(seed, n, cycles)
	// Copy before filtering/sorting: a custom Schedule may legitimately
	// return a cached slice, which an in-place rewrite would corrupt for
	// the next call. Restorative out-of-range events are clamped to the
	// final cycle rather than discarded — dropping a heal or a
	// back-to-baseline would leave the fault permanently applied, the
	// exact outcome the filter exists to prevent.
	kept := make([]Event, 0, len(evs))
	for _, e := range evs {
		if e.Cycle >= cycles {
			if !e.restorative() {
				continue
			}
			e.Cycle = cycles - 1
		}
		kept = append(kept, e)
	}
	sort.SliceStable(kept, func(i, j int) bool { return kept[i].Cycle < kept[j].Cycle })
	return kept
}

// restorative reports whether the event undoes a fault rather than
// injecting one: healing a partition, respawning dead hosts, or restoring
// the baseline loss/latency model.
func (e Event) restorative() bool {
	switch e.Op {
	case OpHeal, OpRespawn:
		return true
	case OpSetDrop:
		return e.Value < 0
	case OpSetLatency:
		return e.Min < 0 || e.Max < 0
	default:
		return false
	}
}

// Builtin scenarios. Each derives its schedule from the seed alone, so a
// campaign re-run with the same seed replays the identical fault plan.
var (
	// ScenarioNone runs failure-free.
	ScenarioNone = Scenario{Name: "none"}

	// ScenarioChurn alternates crash waves and mass respawns: every few
	// cycles a random ~10% of the running hosts crash; two cycles later
	// all dead hosts come back (crash-recovery). Wave spacing and sizes
	// are jittered from the seed.
	ScenarioChurn = Scenario{Name: "churn", Schedule: churnSchedule}

	// ScenarioPartition cuts the network in half for the middle third of
	// the run, then heals it — the classic split/merge robustness test.
	ScenarioPartition = Scenario{Name: "partition", Schedule: partitionSchedule}

	// ScenarioDrop ramps the loss rate up to 40% and back down.
	ScenarioDrop = Scenario{Name: "drop", Schedule: dropSchedule}

	// ScenarioLatency injects latency spikes: short windows where the
	// delivery delay jumps by an order of magnitude.
	ScenarioLatency = Scenario{Name: "latency", Schedule: latencySchedule}
)

// Builtins lists the built-in scenarios.
func Builtins() []Scenario {
	return []Scenario{ScenarioNone, ScenarioChurn, ScenarioPartition, ScenarioDrop, ScenarioLatency}
}

// ParseScenario resolves a built-in scenario by name.
func ParseScenario(name string) (Scenario, error) {
	for _, s := range Builtins() {
		if s.Name == name {
			return s, nil
		}
	}
	names := make([]string, 0, len(Builtins()))
	for _, s := range Builtins() {
		names = append(names, s.Name)
	}
	return Scenario{}, fmt.Errorf("unknown scenario %q (want one of %s)", name, strings.Join(names, ", "))
}

func churnSchedule(seed int64, n, cycles int) []Event {
	rng := rand.New(rand.NewSource(seed ^ 0x6c69766573696d)) // "livesim"
	var evs []Event
	// Leave a head start to build some structure and a tail to observe
	// recovery after the last respawn; compress both for short runs so
	// every campaign of at least ~6 cycles sees at least one wave.
	c := 3 + rng.Intn(3)
	tail := 5
	if cycles < c+tail+3 {
		c = 1 + rng.Intn(2)
		tail = 2
	}
	for c < cycles-tail {
		frac := 0.05 + 0.10*rng.Float64()
		evs = append(evs, Event{Cycle: c, Op: OpKill, Frac: frac})
		evs = append(evs, Event{Cycle: c + 2, Op: OpRespawn})
		c += 4 + rng.Intn(4)
	}
	return evs
}

func partitionSchedule(seed int64, n, cycles int) []Event {
	rng := rand.New(rand.NewSource(seed ^ 0x706172746974)) // "partit"
	at := cycles / 3
	heal := 2 * cycles / 3
	if heal <= at {
		heal = at + 1
	}
	// Split somewhere near the middle, jittered so the two sides differ
	// across seeds. Clamped to [1, n-1] so both sides are non-empty even
	// on tiny networks — split=0 would make the cut a silent no-op.
	lo, hi := n/4, 3*n/4
	if lo < 1 {
		lo = 1
	}
	if hi > n-1 {
		hi = n - 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	split := lo + rng.Intn(hi-lo)
	return []Event{
		{Cycle: at, Op: OpPartition, Split: split},
		{Cycle: heal, Op: OpHeal},
	}
}

func dropSchedule(seed int64, n, cycles int) []Event {
	rng := rand.New(rand.NewSource(seed ^ 0x64726f70)) // "drop"
	start := 2 + rng.Intn(3)
	// Leave a recovery tail after the restore event: convergence is only
	// claimable once the fault plan is fully applied, so a restore on the
	// final cycle would make converged_frac 0 by construction.
	last := cycles - 5
	if start > last {
		start = last
	}
	if start < 0 {
		return nil
	}
	// Interpolate the ramp over [start, last] so the final restore-to-
	// baseline event always lands inside the campaign — on short runs the
	// ramp compresses (same-cycle events apply in order, last one wins)
	// rather than losing its tail to the out-of-range filter.
	ramp := []float64{0.10, 0.25, 0.40, 0.10, -1}
	evs := make([]Event, 0, len(ramp))
	for i, v := range ramp {
		c := start + i*(last-start)/(len(ramp)-1)
		evs = append(evs, Event{Cycle: c, Op: OpSetDrop, Value: v})
	}
	return evs
}

func latencySchedule(seed int64, n, cycles int) []Event {
	rng := rand.New(rand.NewSource(seed ^ 0x6c6174656e6379)) // "latency"
	var evs []Event
	c := 3 + rng.Intn(3)
	for c < cycles-3 {
		spike := time.Duration(10+rng.Intn(40)) * time.Millisecond
		evs = append(evs, Event{Cycle: c, Op: OpSetLatency, Min: spike / 2, Max: spike})
		evs = append(evs, Event{Cycle: c + 2, Op: OpSetLatency, Min: -1, Max: -1}) // back to baseline
		c += 5 + rng.Intn(5)
	}
	return evs
}
