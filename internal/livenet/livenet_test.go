package livenet

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/id"
	"repro/internal/newscast"
	"repro/internal/peer"
	"repro/internal/proto"
	"repro/internal/sampling"
	"repro/internal/truth"
)

// TestBootstrapOverLivenet runs the full two-layer stack — NEWSCAST under
// the bootstrapping service — on the concurrent runtime and checks that
// the structures converge to (near) perfection. With -race this also
// validates that the engine serialises protocol state correctly.
func TestBootstrapOverLivenet(t *testing.T) {
	const n = 64
	const period = 10 * time.Millisecond

	net := New(Config{Seed: 1})
	defer net.Close()

	ids := id.Unique(n, 2)
	hosts := make([]*Host, n)
	descs := make([]peer.Descriptor, n)
	for i := 0; i < n; i++ {
		hosts[i] = net.AddHost()
		descs[i] = peer.Descriptor{ID: ids[i], Addr: hosts[i].Addr()}
	}
	oracle := sampling.NewOracle(descs, 3)

	cfg := core.DefaultConfig()
	nodes := make([]*core.Node, n)
	for i := 0; i < n; i++ {
		nc := newscast.New(descs[i], oracle.Sample(5), newscast.DefaultViewSize)
		if err := hosts[i].Attach(newscast.ProtoID, nc, period, time.Duration(i)*period/n); err != nil {
			t.Fatal(err)
		}
		nd, err := core.NewNode(descs[i], cfg, nc)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = nd
		if err := hosts[i].Attach(core.ProtoID, nd, period, 5*period+time.Duration(i)*period/n); err != nil {
			t.Fatal(err)
		}
	}
	if err := net.Start(); err != nil {
		t.Fatal(err)
	}

	// Let the stack run for ~60 periods (5 warmup + bootstrap), then
	// stop the network before measuring: protocol state must not be
	// read while host goroutines are live.
	time.Sleep(60 * period)
	net.Close()

	tr, err := truth.New(ids, cfg.B, cfg.K, cfg.C)
	if err != nil {
		t.Fatal(err)
	}
	var leafMiss, leafTot, prefMiss, prefTot int
	for i, nd := range nodes {
		lm, lt := tr.LeafSetMissingFor(descs[i].ID, nd.Leaf())
		pm, pt := tr.PrefixMissingFor(descs[i].ID, nd.Table())
		leafMiss += lm
		leafTot += lt
		prefMiss += pm
		prefTot += pt
	}
	leafFrac := float64(leafMiss) / float64(leafTot)
	prefFrac := float64(prefMiss) / float64(prefTot)
	t.Logf("livenet convergence: leaf missing %.4f, prefix missing %.4f, stats %+v",
		leafFrac, prefFrac, net.Stats())
	// Wall-clock scheduling is nondeterministic; demand substantial
	// convergence rather than perfection.
	if leafFrac > 0.05 {
		t.Errorf("leaf missing %.4f after ~60 periods, want < 0.05", leafFrac)
	}
	if prefFrac > 0.05 {
		t.Errorf("prefix missing %.4f after ~60 periods, want < 0.05", prefFrac)
	}
	if st := net.Stats(); st.Sent == 0 || st.Delivered == 0 {
		t.Errorf("no traffic recorded: %+v", st)
	}
}

type countingProto struct {
	ticks   int
	handled int
	echoTo  peer.Addr
}

func (p *countingProto) Init(proto.Context) {}
func (p *countingProto) Tick(ctx proto.Context) {
	p.ticks++
	if p.echoTo != peer.NoAddr {
		ctx.Send(p.echoTo, "ping")
	}
}
func (p *countingProto) Handle(ctx proto.Context, from peer.Addr, msg proto.Message) {
	p.handled++
}

func TestTicksAndDelivery(t *testing.T) {
	net := New(Config{Seed: 4})
	a, b := net.AddHost(), net.AddHost()
	pa := &countingProto{echoTo: b.Addr()}
	pb := &countingProto{echoTo: peer.NoAddr}
	if err := a.Attach(9, pa, 5*time.Millisecond, 0); err != nil {
		t.Fatal(err)
	}
	if err := b.Attach(9, pb, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := net.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond)
	net.Close()
	if pa.ticks == 0 {
		t.Error("no ticks fired")
	}
	if pb.handled == 0 {
		t.Error("no messages delivered")
	}
}

func TestAttachDuplicate(t *testing.T) {
	net := New(Config{Seed: 5})
	defer net.Close()
	h := net.AddHost()
	p := &countingProto{echoTo: peer.NoAddr}
	if err := h.Attach(1, p, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := h.Attach(1, p, 0, 0); err == nil {
		t.Error("duplicate attach accepted")
	}
}

func TestCloseIdempotentAndStartAfterClose(t *testing.T) {
	net := New(Config{Seed: 6})
	h := net.AddHost()
	p := &countingProto{echoTo: peer.NoAddr}
	if err := h.Attach(1, p, time.Millisecond, 0); err != nil {
		t.Fatal(err)
	}
	if err := net.Start(); err != nil {
		t.Fatal(err)
	}
	net.Close()
	net.Close() // idempotent
	if err := net.Start(); err == nil {
		t.Error("start after close should fail")
	}
}

func TestDropModel(t *testing.T) {
	net := New(Config{Seed: 7, Drop: 1.0})
	a, b := net.AddHost(), net.AddHost()
	pa := &countingProto{echoTo: b.Addr()}
	pb := &countingProto{echoTo: peer.NoAddr}
	if err := a.Attach(9, pa, time.Millisecond, 0); err != nil {
		t.Fatal(err)
	}
	if err := b.Attach(9, pb, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := net.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	net.Close()
	if pb.handled != 0 {
		t.Errorf("drop=1.0 still delivered %d messages", pb.handled)
	}
	if st := net.Stats(); st.Dropped == 0 {
		t.Error("no drops recorded")
	}
}

func TestSendToUnknownHost(t *testing.T) {
	net := New(Config{Seed: 8})
	a := net.AddHost()
	pa := &countingProto{echoTo: peer.Addr(99)}
	if err := a.Attach(9, pa, time.Millisecond, 0); err != nil {
		t.Fatal(err)
	}
	if err := net.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	net.Close()
	if st := net.Stats(); st.Dropped == 0 {
		t.Error("sends to unknown hosts should count as dropped")
	}
}

func TestHostStop(t *testing.T) {
	net := New(Config{Seed: 9})
	a, b := net.AddHost(), net.AddHost()
	pa := &countingProto{echoTo: b.Addr()}
	pb := &countingProto{echoTo: peer.NoAddr}
	if err := a.Attach(9, pa, time.Millisecond, 0); err != nil {
		t.Fatal(err)
	}
	if err := b.Attach(9, pb, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := net.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	b.Stop()
	b.Stop() // idempotent
	if !b.Stopped() {
		t.Error("host should report stopped")
	}
	time.Sleep(20 * time.Millisecond)
	handled := pb.handled
	time.Sleep(50 * time.Millisecond)
	net.Close()
	if pb.handled > handled {
		t.Errorf("crashed host handled %d more messages", pb.handled-handled)
	}
	if pb.handled == 0 {
		t.Error("no traffic before the crash")
	}
}
