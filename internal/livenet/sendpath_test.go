package livenet

import (
	"sync"
	"testing"
	"time"

	"repro/internal/peer"
)

// TestLiveSendPathConcurrentFaultMutation hammers the runtime-mutable
// fault model from several goroutines while every host is sending: the
// send path reads drop probability, latency window and partition predicate
// lock-free, so this test (run under -race in CI) is the proof that
// concurrent senders and control-plane writers never race — and that no
// send acquires Network.mu, since the writers never block the senders.
func TestLiveSendPathConcurrentFaultMutation(t *testing.T) {
	const n = 48
	net, _ := buildEchoNet(t, n, Config{Seed: 31, MaxLatency: 500 * time.Microsecond}, 2*time.Millisecond)
	if err := net.Start(); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	mutate := func(fn func(i int)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					fn(i)
				}
			}
		}()
	}
	mutate(func(i int) { net.SetDrop(float64(i%10) / 20) })
	mutate(func(i int) {
		min := time.Duration(i%3) * 100 * time.Microsecond
		net.SetLatency(min, min*2)
	})
	mutate(func(i int) {
		if i%2 == 0 {
			split := peer.Addr(i % n)
			net.SetPartition(func(from, to peer.Addr) bool {
				return (from < split) != (to < split)
			})
		} else {
			net.SetPartition(nil)
		}
	})

	time.Sleep(150 * time.Millisecond)
	close(stop)
	wg.Wait()
	net.Close()

	st := net.Stats()
	if st.Sent == 0 {
		t.Fatal("no traffic generated")
	}
	checkConservation(t, st)
}
