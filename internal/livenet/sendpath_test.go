package livenet

import (
	"sync"
	"testing"
	"time"

	"repro/internal/peer"
)

// TestLiveSendPathConcurrentFaultMutation hammers the runtime-mutable
// fault model from several goroutines while every host is sending: the
// send path reads drop probability, latency window and partition predicate
// lock-free, so this test (run under -race in CI) is the proof that
// concurrent senders and control-plane writers never race — and that no
// send acquires Network.mu, since the writers never block the senders.
func TestLiveSendPathConcurrentFaultMutation(t *testing.T) {
	const n = 48
	net, _ := buildEchoNet(t, n, Config{Seed: 31, MaxLatency: 500 * time.Microsecond}, 2*time.Millisecond)
	if err := net.Start(); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	mutate := func(fn func(i int)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					fn(i)
				}
			}
		}()
	}
	mutate(func(i int) { net.SetDrop(float64(i%10) / 20) })
	mutate(func(i int) {
		min := time.Duration(i%3) * 100 * time.Microsecond
		net.SetLatency(min, min*2)
	})
	mutate(func(i int) {
		if i%2 == 0 {
			split := peer.Addr(i % n)
			net.SetPartition(func(from, to peer.Addr) bool {
				return (from < split) != (to < split)
			})
		} else {
			net.SetPartition(nil)
		}
	})

	time.Sleep(150 * time.Millisecond)
	close(stop)
	wg.Wait()
	net.Close()

	st := net.Stats()
	if st.Sent == 0 {
		t.Fatal("no traffic generated")
	}
	checkConservation(t, st)
}

// wireTestMsg is a minimal payload for wire-level hammers.
type wireTestMsg struct{}

// TestLiveWireShardedEnqueueRace hammers the sharded wire: 64 hosts
// concurrently push latency-delayed sends (one goroutine per host — the
// send path's concurrency contract) while the sweeper harvests expired
// buckets and a mutator churns the latency window, under -race in CI's
// live job. Each sender locks only its own shard stripe, so this is the
// proof that the latency-delayed send path acquires no global mutex — the
// wire analogue of TestLiveSendPathConcurrentFaultMutation — and the
// conservation check at quiescence proves no flight is lost between the
// wheels, the sweeper's scratch buffer, and Close's drain.
func TestLiveWireShardedEnqueueRace(t *testing.T) {
	const n = 64
	net := New(Config{Seed: 77, MinLatency: 20 * time.Microsecond, MaxLatency: 400 * time.Microsecond})
	hosts := make([]*Host, n)
	for i := range hosts {
		hosts[i] = net.AddHost()
	}
	if err := net.Start(); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := range hosts {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			to := peer.Addr((i + 1) % n)
			for j := 0; ; j++ {
				select {
				case <-stop:
					return
				default:
					net.send(hosts[i].Addr(), to, 1, wireTestMsg{})
					to = peer.Addr((int(to) + 7) % n)
				}
			}
		}()
	}
	// Churn the latency window so deadlines swing between the wheels'
	// level-0 window and the overflow level, and earlier-deadline
	// enqueues keep re-arming the sweeper mid-sleep.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				min := time.Duration(1+i%5) * 50 * time.Microsecond
				net.SetLatency(min, min*time.Duration(1+i%200))
			}
		}
	}()

	time.Sleep(150 * time.Millisecond)
	close(stop)
	wg.Wait()
	net.Close()

	st := net.Stats()
	if st.Sent == 0 {
		t.Fatal("no traffic generated")
	}
	checkConservation(t, st)
}

// TestLiveWireCloseRacesDrain closes the network while senders are still
// mid-enqueue: Close's drain takes each shard lock, so racing enqueues
// either land before the drain (counted dropped) or after (stranded in a
// drained shard — indistinguishable from a packet lost at teardown). The
// assertions are the safety half (no race, outcomes never exceed sends);
// exact conservation at quiescence is TestLiveWireShardedEnqueueRace's job.
func TestLiveWireCloseRacesDrain(t *testing.T) {
	const n = 32
	net := New(Config{Seed: 78, MinLatency: 10 * time.Microsecond, MaxLatency: 200 * time.Microsecond})
	hosts := make([]*Host, n)
	for i := range hosts {
		hosts[i] = net.AddHost()
	}
	if err := net.Start(); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := range hosts {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; ; j++ {
				select {
				case <-stop:
					return
				default:
					net.send(hosts[i].Addr(), peer.Addr(j%n), 1, wireTestMsg{})
				}
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	done := make(chan struct{})
	go func() {
		net.Close() // races the still-running senders
		close(done)
	}()
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()
	<-done
	st := net.Stats()
	if st.Sent == 0 {
		t.Fatal("no traffic generated")
	}
	if got := st.Delivered + st.Dropped + st.Overflow; got > st.Sent {
		t.Fatalf("more outcomes than sends: %d > %d (%+v)", got, st.Sent, st)
	}
}

// TestWireWakeOnEarlierDeadline pins the wake condition the wheel API
// fixed: with the sweeper asleep toward a far deadline (5s), an enqueue
// with a strictly earlier deadline — on a different shard — must re-arm it,
// so the near flight is delivered in tens of milliseconds, not at the far
// deadline. The old check compared the new deadline against the heap head
// by value; a sweeper sleeping toward a stale deadline could miss the
// reordering entirely.
func TestWireWakeOnEarlierDeadline(t *testing.T) {
	net := New(Config{Seed: 79})
	a, b := net.AddHost(), net.AddHost()
	w := net.wire
	net.started.Store(true) // the sweeper alone; no host goroutines
	net.wg.Add(1)
	go w.loop()

	w.enqueue(a.Addr(), 5*time.Second, b, command{from: a.Addr(), pid: 1})
	time.Sleep(20 * time.Millisecond) // let the sweeper arm the 5s timer
	start := time.Now()
	w.enqueue(b.Addr(), 30*time.Millisecond, a, command{from: b.Addr(), pid: 1})

	deadline := time.After(3 * time.Second)
	select {
	case <-a.inbox:
		if waited := time.Since(start); waited > 2*time.Second {
			t.Fatalf("near flight took %v; the sweeper slept toward the far deadline", waited)
		}
	case <-deadline:
		t.Fatal("near flight never delivered: earlier-deadline enqueue did not wake the sweeper")
	}
	net.Close()
}
