package livenet

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/peer"
	"repro/internal/proto"
)

// echoProto sends a message to a target on every tick and counts what it
// handles. Counters are plain ints: the engine serialises all callbacks
// per host, which is exactly what -race verifies.
type echoProto struct {
	targets []peer.Addr
	handled int
	ticked  int
}

func (p *echoProto) Init(proto.Context) {}
func (p *echoProto) Tick(ctx proto.Context) {
	p.ticked++
	if len(p.targets) > 0 {
		ctx.Send(p.targets[ctx.Rand().Intn(len(p.targets))], "ping")
	}
}
func (p *echoProto) Handle(ctx proto.Context, from peer.Addr, msg proto.Message) { p.handled++ }

// buildEchoNet wires n hosts that each tick every period and ping a random
// peer.
func buildEchoNet(t *testing.T, n int, cfg Config, period time.Duration) (*Network, []*Host) {
	t.Helper()
	net := New(cfg)
	hosts := make([]*Host, n)
	addrs := make([]peer.Addr, n)
	for i := range hosts {
		hosts[i] = net.AddHost()
		addrs[i] = hosts[i].Addr()
	}
	for i, h := range hosts {
		if err := h.Attach(9, &echoProto{targets: addrs}, period, time.Duration(i)*period/time.Duration(n)); err != nil {
			t.Fatal(err)
		}
	}
	return net, hosts
}

func checkConservation(t *testing.T, st Stats) {
	t.Helper()
	if st.Sent != st.Delivered+st.Dropped+st.Overflow {
		t.Errorf("counter conservation violated at quiescence: sent=%d != delivered=%d + dropped=%d + overflow=%d (sum %d)",
			st.Sent, st.Delivered, st.Dropped, st.Overflow, st.Delivered+st.Dropped+st.Overflow)
	}
}

// TestLiveStatsConservation drives traffic through every loss path — the
// drop model, latency (in-flight messages stranded at Close), a tiny
// inbox (overflow), and a killed host — and checks that at quiescence
// Sent == Delivered + Dropped + Overflow.
func TestLiveStatsConservation(t *testing.T) {
	net, hosts := buildEchoNet(t, 8, Config{
		Seed:       21,
		Drop:       0.3,
		MinLatency: time.Millisecond,
		MaxLatency: 3 * time.Millisecond,
		InboxSize:  4,
	}, 2*time.Millisecond)
	if err := net.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(60 * time.Millisecond)
	hosts[0].Kill()
	time.Sleep(60 * time.Millisecond)
	net.Close()
	st := net.Snapshot()
	if st.Sent == 0 {
		t.Fatal("no traffic")
	}
	checkConservation(t, st)
	if st.Dropped == 0 {
		t.Error("drop=0.3 recorded no drops")
	}
}

// TestLiveKillRespawnSnapshotRace hammers the lifecycle API from several
// goroutines at once — random Kill/Respawn, Pause/Resume sweeps, and
// stats snapshots — while traffic flows. Run with -race; correctness here
// is "no race, no deadlock, counters conserved at quiescence".
func TestLiveKillRespawnSnapshotRace(t *testing.T) {
	const n = 24
	net, hosts := buildEchoNet(t, n, Config{Seed: 31, InboxSize: 16}, time.Millisecond)
	if err := net.Start(); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stopCh := make(chan struct{})
	// Churn goroutines: concurrent Kill/Respawn of overlapping host sets,
	// including double-kill and respawn-while-respawning paths.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stopCh:
					return
				default:
				}
				h := hosts[rng.Intn(n)]
				if rng.Intn(2) == 0 {
					h.Kill()
				} else if err := h.Respawn(); err != nil {
					return // network closing
				}
			}
		}(int64(g))
	}
	// Snapshot goroutine: consistent cuts plus per-host stats.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stopCh:
				return
			default:
			}
			st := net.Snapshot()
			if st.Sent < 0 || st.Delivered > st.Sent {
				t.Errorf("implausible snapshot: %+v", st)
				return
			}
			for _, h := range hosts {
				_ = h.Stats()
			}
		}
	}()
	// Pause/Resume sweeps against the churn.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			select {
			case <-stopCh:
				return
			default:
			}
			net.PauseAll()
			net.ResumeAll()
		}
	}()

	time.Sleep(150 * time.Millisecond)
	close(stopCh)
	wg.Wait()
	net.Close()
	checkConservation(t, net.Snapshot())
}

// TestLiveSendToDeadHost checks that messages addressed to a killed host
// are accounted for and that the host handles traffic again after
// Respawn with its state intact.
func TestLiveSendToDeadHost(t *testing.T) {
	net := New(Config{Seed: 41})
	a, b := net.AddHost(), net.AddHost()
	pa := &echoProto{targets: []peer.Addr{b.Addr()}}
	pb := &echoProto{}
	if err := a.Attach(9, pa, time.Millisecond, 0); err != nil {
		t.Fatal(err)
	}
	if err := b.Attach(9, pb, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := net.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	b.Kill()
	if !b.Stopped() {
		t.Fatal("killed host not Stopped")
	}
	b.Kill() // idempotent
	time.Sleep(30 * time.Millisecond)

	// Reading pb is safe: Kill waited for the host goroutine.
	handledWhileDead := pb.handled
	if handledWhileDead == 0 {
		t.Error("no traffic handled before the kill")
	}
	if err := b.Respawn(); err != nil {
		t.Fatal(err)
	}
	if b.Stopped() {
		t.Error("respawned host still Stopped")
	}
	time.Sleep(30 * time.Millisecond)
	net.Close()
	if pb.handled <= handledWhileDead {
		t.Error("respawned host handled no new messages")
	}
	if got := b.Stats().Incarnations; got != 2 {
		t.Errorf("incarnations = %d, want 2", got)
	}
	checkConservation(t, net.Snapshot())
}

// TestLivePauseResume checks the pause handshake: a paused host runs no
// callbacks (its counters freeze) and resumes where it left off.
func TestLivePauseResume(t *testing.T) {
	net := New(Config{Seed: 51})
	h := net.AddHost()
	p := &echoProto{}
	if err := h.Attach(9, p, time.Millisecond, 0); err != nil {
		t.Fatal(err)
	}
	if err := net.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if !h.Pause() {
		t.Fatal("Pause failed on a live host")
	}
	ticked := p.ticked // safe: host is parked
	time.Sleep(20 * time.Millisecond)
	if p.ticked != ticked {
		t.Errorf("paused host ticked %d more times", p.ticked-ticked)
	}
	if !h.Resume() {
		t.Fatal("Resume failed")
	}
	time.Sleep(20 * time.Millisecond)
	net.Close()
	if p.ticked <= ticked {
		t.Error("resumed host never ticked again")
	}
}

// TestLiveDoubleCloseAndLifecycleAfterClose pins the shutdown paths:
// Close is idempotent, Kill after Close must not hang, Respawn after
// Close reports ErrClosed, Pause after Close reports failure.
func TestLiveDoubleCloseAndLifecycleAfterClose(t *testing.T) {
	net, hosts := buildEchoNet(t, 4, Config{Seed: 61}, time.Millisecond)
	if err := net.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	net.Close()
	net.Close() // idempotent
	hosts[0].Kill()
	if err := hosts[1].Respawn(); err != ErrClosed {
		t.Errorf("Respawn after Close = %v, want ErrClosed", err)
	}
	if hosts[2].Pause() {
		t.Error("Pause succeeded after Close")
	}
	if err := net.Start(); err == nil {
		t.Error("Start after Close should fail")
	}
	checkConservation(t, net.Snapshot())
}

// TestLiveKillBeforeStart kills a host before Start: the network must
// come up without it and Close cleanly.
func TestLiveKillBeforeStart(t *testing.T) {
	net, hosts := buildEchoNet(t, 4, Config{Seed: 71}, time.Millisecond)
	hosts[3].Kill()
	if err := net.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	net.Close()
	if got := hosts[3].Stats().Incarnations; got != 0 {
		t.Errorf("pre-start-killed host ran %d incarnations", got)
	}
	checkConservation(t, net.Snapshot())
}

// TestLiveRuntimeFaultModel flips the fault model while the network runs:
// drop to 1.0 silences delivery growth, a full partition between the two
// hosts does the same, and healing restores traffic.
func TestLiveRuntimeFaultModel(t *testing.T) {
	net := New(Config{Seed: 81})
	a, b := net.AddHost(), net.AddHost()
	pa := &echoProto{targets: []peer.Addr{b.Addr()}}
	pb := &echoProto{}
	if err := a.Attach(9, pa, time.Millisecond, 0); err != nil {
		t.Fatal(err)
	}
	if err := b.Attach(9, pb, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := net.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(25 * time.Millisecond)
	base := net.Snapshot()
	if base.Delivered == 0 {
		t.Fatal("no traffic before fault injection")
	}

	net.SetDrop(1.0)
	time.Sleep(25 * time.Millisecond)
	mid := net.Snapshot()
	net.SetDrop(0)

	// Snapshot after the drop phase so the partition assertion measures
	// the partition, not leftovers of drop=1.0.
	preCut := net.Snapshot()
	split := b.Addr()
	net.SetPartition(func(from, to peer.Addr) bool { return (from < split) != (to < split) })
	time.Sleep(25 * time.Millisecond)
	cut := net.Snapshot()
	if cut.Dropped <= preCut.Dropped {
		t.Error("partition dropped nothing")
	}
	net.SetPartition(nil)
	net.SetLatency(time.Millisecond, 2*time.Millisecond)
	time.Sleep(25 * time.Millisecond)
	net.Close()
	final := net.Snapshot()
	if final.Delivered <= cut.Delivered {
		t.Error("healing the partition restored no traffic")
	}
	if mid.Dropped <= base.Dropped {
		t.Error("drop=1.0 dropped nothing")
	}
	checkConservation(t, final)
}
