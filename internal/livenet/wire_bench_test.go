package livenet

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/peer"
)

// BenchmarkWireEnqueueParallel measures the latency-delayed enqueue path
// under concurrency — the operation the old single `wire.mu` serialised.
// shards=1 is that old regime (every sender contending on one lock over one
// wheel); shards=N is the sharded wire as shipped. On a multi-core runner
// the sharded variant should scale with senders while shards=1 flatlines;
// CI's bench job records both in BENCH_pr5.json. Enqueue is called
// directly so the benchmark isolates wheel insertion + wake arbitration
// from the fault model.
func BenchmarkWireEnqueueParallel(b *testing.B) {
	for _, shards := range []int{1, wireShardCount()} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			const hosts = 256
			net := New(Config{Seed: 91})
			for i := 0; i < hosts; i++ {
				net.AddHost()
			}
			net.wire = newWireShards(net, shards)
			if err := net.Start(); err != nil {
				b.Fatal(err)
			}
			defer net.Close()
			w := net.wire
			var nextHost atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				from := peer.Addr(int(nextHost.Add(1)-1) % hosts)
				dst := net.hosts[(int(from)+1)%hosts]
				cmd := command{from: from, pid: 1, msg: wireTestMsg{}}
				delay := 200 * time.Microsecond
				for pb.Next() {
					w.enqueue(from, delay, dst, cmd)
				}
			})
		})
	}
}
