package experiment

import (
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/livenet"
	"repro/internal/transport"
	"repro/internal/truth"
)

// TestSocketScheduleExpansion pins the properties the multi-process
// driver depends on: the expansion is deterministic (two processes
// expanding independently agree on every victim), kills and respawns
// track a consistent alive set, and latency events are rejected.
func TestSocketScheduleExpansion(t *testing.T) {
	const n, cycles = 50, 30
	schedule := livenet.ScenarioChurn.Events(7, n, cycles)
	a, err := expandSocketSchedule(schedule, 7, n)
	if err != nil {
		t.Fatal(err)
	}
	b, err := expandSocketSchedule(schedule, 7, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("plan sizes differ or empty: %d vs %d", len(a), len(b))
	}
	kills := 0
	for c, pa := range a {
		pb := b[c]
		if pb == nil {
			t.Fatalf("cycle %d present in one expansion only", c)
		}
		if len(pa.kills) != len(pb.kills) {
			t.Fatalf("cycle %d: kill counts differ", c)
		}
		for i := range pa.kills {
			if pa.kills[i] != pb.kills[i] {
				t.Fatalf("cycle %d: victim %d differs: %d vs %d", c, i, pa.kills[i], pb.kills[i])
			}
		}
		kills += len(pa.kills)
	}
	if kills == 0 {
		t.Fatal("churn scenario expanded to zero kills")
	}

	lat := []livenet.Event{{Cycle: 1, Op: livenet.OpSetLatency, Min: time.Millisecond, Max: time.Millisecond}}
	if _, err := expandSocketSchedule(lat, 1, n); err == nil {
		t.Fatal("latency event accepted by socket expansion")
	}
}

// TestSocketShardedPartialSums runs a two-shard campaign inside one test
// process, stepping the shards in lockstep the way cmd/netsim does across
// real processes, and checks the driver-side invariants: per-cycle global
// alive counts agree between shards, the summed partial aggregates form a
// complete measurement (totals cover every live node), and the summed
// traffic counters are conserved at quiescence.
func TestSocketShardedPartialSums(t *testing.T) {
	const n, cycles = 24, 6
	p := SocketParams{
		N:        n,
		Config:   core.DefaultConfig(),
		Period:   15 * time.Millisecond,
		Cycles:   cycles,
		Procs:    2,
		BasePort: 19400,
		Scenario: livenet.ScenarioChurn,
	}
	var trials []*SocketTrial
	for proc := 0; proc < 2; proc++ {
		pc := p
		pc.Proc = proc
		tr, err := NewSocketTrial(pc, 3)
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Close()
		trials = append(trials, tr)
	}
	for _, tr := range trials {
		if err := tr.Start(); err != nil {
			t.Fatal(err)
		}
	}
	for cycle := 0; cycle < cycles; cycle++ {
		var sum truth.Aggregate
		local := 0
		global := -1
		for _, tr := range trials {
			agg, la, ga, err := tr.StepCycle(cycle)
			if err != nil {
				t.Fatal(err)
			}
			sum.Add(agg)
			local += la
			if global >= 0 && ga != global {
				t.Fatalf("cycle %d: shards disagree on global alive: %d vs %d", cycle, global, ga)
			}
			global = ga
		}
		if local != global {
			t.Fatalf("cycle %d: local alive counts sum to %d, global says %d", cycle, local, global)
		}
		if sum.LeafTotal == 0 {
			t.Fatalf("cycle %d: summed measurement is empty", cycle)
		}
		pt := PointFromAggregate(cycle, sum, global, 0, 0, 0)
		if pt.LeafMissing < 0 || pt.LeafMissing > 1 {
			t.Fatalf("cycle %d: implausible missing fraction %v", cycle, pt.LeafMissing)
		}
	}
	for _, tr := range trials {
		tr.Net().StopTicks()
	}
	// Global quiescence: poll the summed counters, mirroring the netsim
	// driver's DRAIN barrier.
	deadline := time.Now().Add(10 * time.Second)
	var prev transport.Stats
	stable := 0
	for time.Now().Before(deadline) && stable < 5 {
		time.Sleep(20 * time.Millisecond)
		var cur transport.Stats
		for _, tr := range trials {
			cur.Add(tr.Stats())
		}
		if cur == prev {
			stable++
		} else {
			stable = 0
		}
		prev = cur
	}
	if stable < 5 {
		t.Fatalf("sharded campaign did not quiesce: %+v", prev)
	}
	if prev.Sent != prev.Delivered+prev.Dropped+prev.Overflow {
		t.Fatalf("summed counters not conserved: %+v", prev)
	}
	if prev.Delivered == 0 {
		t.Fatal("no cross-shard deliveries")
	}
}

// TestLiveCrossEngineSocketEquivalence runs the identical protocol
// configuration under the livenet engine (goroutines, pointer handoff)
// and the socket engine (real loopback TCP through the wire codec) and
// asserts the convergence outcomes agree within the same tolerance the
// simnet/livenet comparison uses. Message interleaving differs — the
// kernel schedules the socket engine's deliveries — so this is the
// statistical-equivalence claim, the strongest reproducibility available
// once real sockets are involved.
func TestLiveCrossEngineSocketEquivalence(t *testing.T) {
	const n = 64
	const cycles = 40
	cfg := core.DefaultConfig()

	live, err := RunLive(LiveParams{
		N:              n,
		Config:         cfg,
		Period:         20 * time.Millisecond,
		Cycles:         cycles,
		MeasureWorkers: 4,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	sock, err := RunSocket(SocketParams{
		N:              n,
		Config:         cfg,
		Period:         20 * time.Millisecond,
		Cycles:         cycles,
		BasePort:       19410,
		MeasureWorkers: 4,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}

	liveF, sockF := live.Final(), sock.Final()
	t.Logf("livenet: converged_at=%d final=(%.4f, %.4f); socket: converged_at=%d final=(%.4f, %.4f) stats=%+v",
		live.ConvergedAt, liveF.LeafMissing, liveF.PrefixMissing,
		sock.ConvergedAt, sockF.LeafMissing, sockF.PrefixMissing, sock.Stats)

	if live.ConvergedAt < 0 {
		t.Errorf("livenet run did not converge in %d cycles", cycles)
	}
	if sock.ConvergedAt < 0 {
		t.Errorf("socket run did not converge in %d cycles", cycles)
	}
	const tol = 0.02
	if liveF.LeafMissing > tol || sockF.LeafMissing > tol {
		t.Errorf("final leaf missing disagrees with convergence: live=%e sock=%e (tol %v)",
			liveF.LeafMissing, sockF.LeafMissing, tol)
	}
	if liveF.PrefixMissing > tol || sockF.PrefixMissing > tol {
		t.Errorf("final prefix missing disagrees with convergence: live=%e sock=%e (tol %v)",
			liveF.PrefixMissing, sockF.PrefixMissing, tol)
	}
	if d := math.Abs(liveF.LeafMissing - sockF.LeafMissing); d > tol {
		t.Errorf("cross-engine leaf missing gap %e exceeds tolerance %v", d, tol)
	}
	if d := math.Abs(liveF.PrefixMissing - sockF.PrefixMissing); d > tol {
		t.Errorf("cross-engine prefix missing gap %e exceeds tolerance %v", d, tol)
	}
	if live.ConvergedAt >= 0 && sock.ConvergedAt >= 0 {
		if diff := sock.ConvergedAt - live.ConvergedAt; diff > 15 || diff < -15 {
			t.Errorf("cross-engine convergence cycles diverge: live=%d sock=%d", live.ConvergedAt, sock.ConvergedAt)
		}
	}
	// The socket engine drains to quiescence before its final snapshot,
	// so its counters obey the same conservation law as livenet's.
	if sock.Stats.Sent != sock.Stats.Delivered+sock.Stats.Dropped+sock.Stats.Overflow {
		t.Errorf("socket counters not conserved at quiescence: %+v", sock.Stats)
	}
	if sock.Stats.Sent == 0 {
		t.Error("socket engine recorded no traffic")
	}
}
