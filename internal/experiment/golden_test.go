package experiment

import (
	"testing"

	"repro/internal/core"
	"repro/internal/simnet"
)

// TestGoldenTrace pins full runs to golden outcomes captured on the
// pre-rewrite event queue (container/heap over *event) and the pre-rewrite
// createMessage (full sort per message). A run is a pure function of its
// seed, so any change to event ordering, RNG consumption order, or message
// construction shows up here as a changed counter. Update the constants
// only for a change that intentionally alters the trace, and say so in the
// commit message.
func TestGoldenTrace(t *testing.T) {
	cases := []struct {
		name      string
		n         int
		drop      float64
		converged int
		points    int
		stats     simnet.Stats
	}{
		{
			name: "n256", n: 256, drop: 0,
			converged: 6, points: 7,
			stats: simnet.Stats{Sent: 3094, Dropped: 0, Delivered: 3035, DeadDest: 0, WireUnits: 256737},
		},
		{
			name: "n256drop", n: 256, drop: 0.2,
			converged: 8, points: 9,
			stats: simnet.Stats{Sent: 3677, Dropped: 764, Delivered: 2872, DeadDest: 0, WireUnits: 303933},
		},
		{
			name: "n1024", n: 1024, drop: 0,
			converged: 9, points: 10,
			stats: simnet.Stats{Sent: 18523, Dropped: 0, Delivered: 18328, DeadDest: 0, WireUnits: 2059732},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Run(Params{
				N:         tc.n,
				Seed:      42,
				Config:    core.DefaultConfig(),
				Drop:      tc.drop,
				MaxCycles: 80,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.ConvergedAt != tc.converged {
				t.Errorf("ConvergedAt = %d, want %d", res.ConvergedAt, tc.converged)
			}
			if len(res.Points) != tc.points {
				t.Errorf("len(Points) = %d, want %d", len(res.Points), tc.points)
			}
			if res.Stats != tc.stats {
				t.Errorf("Stats = %+v, want %+v", res.Stats, tc.stats)
			}
		})
	}
}
