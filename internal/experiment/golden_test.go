package experiment

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"testing"

	"repro/internal/core"
	"repro/internal/simnet"
)

// TestGoldenTrace pins full runs to golden outcomes captured on the
// pre-rewrite event queue (container/heap over *event) and the pre-rewrite
// createMessage (full sort per message). A run is a pure function of its
// seed, so any change to event ordering, RNG consumption order, or message
// construction shows up here as a changed counter. Update the constants
// only for a change that intentionally alters the trace, and say so in the
// commit message.
func TestGoldenTrace(t *testing.T) {
	cases := []struct {
		name      string
		n         int
		drop      float64
		converged int
		points    int
		stats     simnet.Stats
	}{
		{
			name: "n256", n: 256, drop: 0,
			converged: 6, points: 7,
			stats: simnet.Stats{Sent: 3094, Dropped: 0, Delivered: 3035, DeadDest: 0, WireUnits: 256737},
		},
		{
			name: "n256drop", n: 256, drop: 0.2,
			converged: 8, points: 9,
			stats: simnet.Stats{Sent: 3677, Dropped: 764, Delivered: 2872, DeadDest: 0, WireUnits: 303933},
		},
		{
			name: "n1024", n: 1024, drop: 0,
			converged: 9, points: 10,
			stats: simnet.Stats{Sent: 18523, Dropped: 0, Delivered: 18328, DeadDest: 0, WireUnits: 2059732},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Run(Params{
				N:         tc.n,
				Seed:      42,
				Config:    core.DefaultConfig(),
				Drop:      tc.drop,
				MaxCycles: 80,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.ConvergedAt != tc.converged {
				t.Errorf("ConvergedAt = %d, want %d", res.ConvergedAt, tc.converged)
			}
			if len(res.Points) != tc.points {
				t.Errorf("len(Points) = %d, want %d", len(res.Points), tc.points)
			}
			if res.Stats != tc.stats {
				t.Errorf("Stats = %+v, want %+v", res.Stats, tc.stats)
			}
		})
	}
}

// TestGoldenTraceShardInvariance pins the sharded engine's contract at the
// harness level. Shards=1 must be byte-identical to the default (Shards=0)
// run — same CSV hash TestGoldenCSVByteIdentical pins — because a single
// shard runs the very same sequential engine. Every Shards>1 value must
// produce one common trace: the conservative-window engine's merge order
// and the per-node oracle streams are shard-count invariant. That common
// trace legitimately differs from the sequential one (per-node streams
// replace the shared oracle stream, whose draw order only exists under
// sequential dispatch); both sides converging within a couple of cycles of
// each other ties the two families together behaviorally.
func TestGoldenTraceShardInvariance(t *testing.T) {
	run := func(shards int) (*Result, string) {
		res, err := Run(Params{
			N:         1024,
			Seed:      42,
			Config:    core.DefaultConfig(),
			MaxCycles: 80,
			Shards:    shards,
		})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		var buf bytes.Buffer
		if err := res.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		sum := sha256.Sum256(buf.Bytes())
		return res, hex.EncodeToString(sum[:])
	}

	// Shards=1 is the sequential engine verbatim: the pre-PR golden pin.
	const seqSum = "9d97478c075a1cb31310643ed283dd5427de223a9aa1f9f8f10b04e020e10a4f"
	seq, sum := run(1)
	if sum != seqSum {
		t.Errorf("shards=1 CSV sha256 = %s, want pinned sequential %s", sum, seqSum)
	}

	ref, refSum := run(2)
	for _, shards := range []int{4} {
		res, sum := run(shards)
		if sum != refSum {
			t.Errorf("shards=%d CSV sha256 = %s, want %s (shards=2)", shards, sum, refSum)
		}
		if res.Stats != ref.Stats {
			t.Errorf("shards=%d Stats = %+v, want %+v (shards=2)", shards, res.Stats, ref.Stats)
		}
		if res.ConvergedAt != ref.ConvergedAt {
			t.Errorf("shards=%d ConvergedAt = %d, want %d (shards=2)", shards, res.ConvergedAt, ref.ConvergedAt)
		}
	}
	// Different RNG streams shift convergence by a cycle or so; anything
	// beyond that means the parallel engine changed the protocol, not just
	// the randomness.
	if d := ref.ConvergedAt - seq.ConvergedAt; ref.ConvergedAt < 0 || d > 2 || d < -2 {
		t.Errorf("sharded runs converge at %d, sequential at %d; expected within 2 cycles",
			ref.ConvergedAt, seq.ConvergedAt)
	}
}

// TestGoldenCSVByteIdentical pins the full-measurement CSV output to
// hashes captured immediately before the sampled measurement plane landed
// (PR 4): with MeasureSample off, every byte of the emitted series —
// header, formatting, and all measured values — must be identical to the
// pre-estimator harness. This is the proof that sampling is purely opt-in:
// neither the measurement plane rework nor the oracle's snapshot/stream
// rewrite may perturb a default run.
func TestGoldenCSVByteIdentical(t *testing.T) {
	cases := []struct {
		name  string
		n     int
		bytes int
		sum   string
	}{
		{name: "n256", n: 256, bytes: 515,
			sum: "a4c1b6c21b8b74d99be288dfb1866bf03da03bb5557131c36336d870ee104b86"},
		{name: "n1024", n: 1024, bytes: 718,
			sum: "9d97478c075a1cb31310643ed283dd5427de223a9aa1f9f8f10b04e020e10a4f"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Run(Params{
				N:         tc.n,
				Seed:      42,
				Config:    core.DefaultConfig(),
				MaxCycles: 80,
			})
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := res.WriteCSV(&buf); err != nil {
				t.Fatal(err)
			}
			if buf.Len() != tc.bytes {
				t.Errorf("CSV is %d bytes, want %d", buf.Len(), tc.bytes)
			}
			sum := sha256.Sum256(buf.Bytes())
			if got := hex.EncodeToString(sum[:]); got != tc.sum {
				t.Errorf("CSV sha256 = %s, want %s\n%s", got, tc.sum, buf.String())
			}
		})
	}
}
