package experiment

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"strconv"
	"sync"

	"repro/internal/memstats"
)

// AggPoint is one per-cycle aggregate of a convergence metric across
// independent trials: mean, min and max of the missing proportions, plus
// the fraction of trials already converged by that cycle.
type AggPoint struct {
	Cycle  int
	Trials int
	// LeafMean/Min/Max aggregate Point.LeafMissing across trials.
	LeafMean, LeafMin, LeafMax float64
	// PrefixMean/Min/Max aggregate Point.PrefixMissing across trials.
	PrefixMean, PrefixMin, PrefixMax float64
	// ConvergedFrac is the fraction of trials whose ConvergedAt is at or
	// before this cycle.
	ConvergedFrac float64
	// LeafCIMean/PrefixCIMean average the per-trial estimator interval
	// half-widths; zero under full measurement.
	LeafCIMean, PrefixCIMean float64
}

// TrialsResult is the outcome of a multi-trial campaign.
type TrialsResult struct {
	// Params is the shared configuration (its Seed field is ignored; each
	// trial runs with its own seed).
	Params Params
	// Seeds are the per-trial seeds, in input order.
	Seeds []int64
	// Trials holds one full Result per seed, index-aligned with Seeds.
	Trials []*Result
	// Agg is the per-cycle aggregate series. Trials that converged (and
	// stopped) before the longest trial ended are padded with their final
	// point, so a finished run keeps contributing its converged state.
	Agg []AggPoint
	// Workers is the resolved worker-pool size the trials actually ran on
	// (after the GOMAXPROCS default and the clamp to the trial count).
	Workers int
	// Mem is the campaign heap tracker — baseline before the first trial,
	// peak across every trial's end-of-run sample taken while that trial's
	// network was still live. Nil unless Params.MemStats was set.
	Mem *memstats.Campaign
}

// Seeds returns n deterministic trial seeds derived from base, suitable for
// RunTrials: base, base+7919, base+2*7919, … — the same stride cmd/bootsim
// uses for -runs repetitions, so a -trials campaign aggregates exactly the
// per-seed series a -runs campaign prints raw.
func Seeds(base int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = base + int64(i)*7919
	}
	return out
}

// RunTrials runs one independent trial of p per seed, fanning the trials
// across a pool of workers goroutines (workers < 1 means GOMAXPROCS), and
// aggregates the per-cycle convergence series across trials. Each trial is
// a self-contained deterministic simulation keyed only on its seed, so the
// result — including Trials order and every aggregate — is independent of
// workers and of goroutine scheduling.
func RunTrials(p Params, seeds []int64, workers int) (*TrialsResult, error) {
	if len(seeds) == 0 {
		return nil, errors.New("experiment: RunTrials needs at least one seed")
	}
	if p.Sampler == 0 {
		p.Sampler = SamplerOracle
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
		// A sharded trial already runs Params.Shards engine workers, so
		// the default splits the cores between the two levels instead of
		// oversubscribing trials*shards goroutines onto GOMAXPROCS.
		// An explicit workers count is always honored as given.
		if p.Shards > 1 {
			workers /= p.Shards
			if workers < 1 {
				workers = 1
			}
		}
	}
	if workers > len(seeds) {
		workers = len(seeds)
	}
	// One campaign tracker across the pool: each worker samples the heap
	// at the end of each of its trials (network still reachable), and the
	// tracker keeps the high-water mark — a per-trial end-of-run snapshot
	// is meaningless when concurrent trials share the heap.
	if p.MemStats {
		p.memCampaign = memstats.StartCampaign()
	}

	results := make([]*Result, len(seeds))
	errs := make([]error, len(seeds))
	runPool(len(seeds), workers, func(i int) {
		tp := p
		tp.Seed = seeds[i]
		results[i], errs[i] = Run(tp)
	})

	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("trial %d (seed %d): %w", i, seeds[i], err)
		}
	}
	return &TrialsResult{
		Params:  p,
		Seeds:   seeds,
		Trials:  results,
		Agg:     aggregate(results),
		Workers: workers,
		Mem:     p.memCampaign,
	}, nil
}

// runPool runs fn(i) for every i in [0, n) across a pool of workers
// goroutines and waits for all of them — the shared trial fan-out of
// RunTrials and RunLiveTrials.
func runPool(n, workers int, fn func(int)) {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// aggregate folds the per-trial series into a per-cycle aggregate. Trials
// shorter than the longest one (early convergence) contribute their final
// point for the remaining cycles.
func aggregate(trials []*Result) []AggPoint {
	series := make([][]Point, len(trials))
	conv := make([]int, len(trials))
	for i, t := range trials {
		series[i] = t.Points
		conv[i] = t.ConvergedAt
	}
	return aggregateSeries(series, conv)
}

// aggregateSeries is the engine-agnostic aggregation core shared by the
// simnet (RunTrials) and livenet (RunLiveTrials) campaign runners: one
// per-cycle Point series and ConvergedAt per trial in, mean/min/max
// aggregates out. Series shorter than the longest one contribute their
// final point for the remaining cycles.
func aggregateSeries(series [][]Point, convergedAt []int) []AggPoint {
	cycles := 0
	for _, pts := range series {
		if len(pts) > cycles {
			cycles = len(pts)
		}
	}
	agg := make([]AggPoint, 0, cycles)
	for c := 0; c < cycles; c++ {
		a := AggPoint{Cycle: c, Trials: len(series)}
		converged := 0
		for i, pts := range series {
			pt := pts[len(pts)-1]
			if c < len(pts) {
				pt = pts[c]
			}
			a.LeafMean += pt.LeafMissing
			a.PrefixMean += pt.PrefixMissing
			a.LeafCIMean += pt.LeafCI
			a.PrefixCIMean += pt.PrefixCI
			if i == 0 || pt.LeafMissing < a.LeafMin {
				a.LeafMin = pt.LeafMissing
			}
			if pt.LeafMissing > a.LeafMax {
				a.LeafMax = pt.LeafMissing
			}
			if i == 0 || pt.PrefixMissing < a.PrefixMin {
				a.PrefixMin = pt.PrefixMissing
			}
			if pt.PrefixMissing > a.PrefixMax {
				a.PrefixMax = pt.PrefixMissing
			}
			if convergedAt[i] >= 0 && c >= convergedAt[i] {
				converged++
			}
		}
		a.LeafMean /= float64(len(series))
		a.PrefixMean /= float64(len(series))
		a.LeafCIMean /= float64(len(series))
		a.PrefixCIMean /= float64(len(series))
		a.ConvergedFrac = float64(converged) / float64(len(series))
		agg = append(agg, a)
	}
	return agg
}

// ConvergedTrials counts trials that reached perfection.
func (tr *TrialsResult) ConvergedTrials() int {
	n := 0
	for _, t := range tr.Trials {
		if t.ConvergedAt >= 0 {
			n++
		}
	}
	return n
}

// WriteCSV emits the aggregate per-cycle series with a header. Campaigns
// run with sampled measurement grow ±ci columns.
func (tr *TrialsResult) WriteCSV(w io.Writer) error {
	return writeAggCSV(w, tr.Agg, tr.Params.MeasureSample > 0)
}

// writeAggCSV is the shared CSV emitter for aggregate series; sampled adds
// the estimator interval columns, keeping full-measurement output
// byte-identical to the historical format.
func writeAggCSV(w io.Writer, agg []AggPoint, sampled bool) error {
	header := "cycle,trials,leaf_missing_mean,leaf_missing_min,leaf_missing_max,prefix_missing_mean,prefix_missing_min,prefix_missing_max,converged_frac"
	if sampled {
		header += ",leaf_ci_mean,prefix_ci_mean"
	}
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	for _, a := range agg {
		row := strconv.Itoa(a.Cycle) + "," +
			strconv.Itoa(a.Trials) + "," +
			strconv.FormatFloat(a.LeafMean, 'e', 6, 64) + "," +
			strconv.FormatFloat(a.LeafMin, 'e', 6, 64) + "," +
			strconv.FormatFloat(a.LeafMax, 'e', 6, 64) + "," +
			strconv.FormatFloat(a.PrefixMean, 'e', 6, 64) + "," +
			strconv.FormatFloat(a.PrefixMin, 'e', 6, 64) + "," +
			strconv.FormatFloat(a.PrefixMax, 'e', 6, 64) + "," +
			strconv.FormatFloat(a.ConvergedFrac, 'f', 4, 64)
		if sampled {
			row += "," + strconv.FormatFloat(a.LeafCIMean, 'e', 6, 64) +
				"," + strconv.FormatFloat(a.PrefixCIMean, 'e', 6, 64)
		}
		if _, err := fmt.Fprintln(w, row); err != nil {
			return err
		}
	}
	return nil
}
