package experiment

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
)

func trialParams(n int) Params {
	return Params{N: n, Config: core.DefaultConfig(), MaxCycles: 40}
}

func TestSeeds(t *testing.T) {
	s := Seeds(42, 3)
	want := []int64{42, 42 + 7919, 42 + 2*7919}
	if !reflect.DeepEqual(s, want) {
		t.Errorf("Seeds = %v, want %v", s, want)
	}
}

// TestRunTrialsIndependentOfWorkers is the acceptance property of the
// parallel runner: trial results and aggregates are a pure function of the
// seeds, not of the worker count or scheduling.
func TestRunTrialsIndependentOfWorkers(t *testing.T) {
	seeds := Seeds(42, 4)
	var baseline *TrialsResult
	for _, workers := range []int{1, 2, 7} {
		res, err := RunTrials(trialParams(128), seeds, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if baseline == nil {
			baseline = res
			continue
		}
		if !reflect.DeepEqual(res.Agg, baseline.Agg) {
			t.Errorf("workers=%d: aggregate series diverged from workers=1", workers)
		}
		for i := range res.Trials {
			if res.Trials[i].ConvergedAt != baseline.Trials[i].ConvergedAt {
				t.Errorf("workers=%d trial %d: ConvergedAt = %d, want %d",
					workers, i, res.Trials[i].ConvergedAt, baseline.Trials[i].ConvergedAt)
			}
			if res.Trials[i].Stats != baseline.Trials[i].Stats {
				t.Errorf("workers=%d trial %d: stats diverged", workers, i)
			}
		}
	}
}

// TestRunTrialsMatchesSingleRuns checks each trial equals a standalone Run
// with the same seed — the pool adds concurrency, never coupling.
func TestRunTrialsMatchesSingleRuns(t *testing.T) {
	seeds := Seeds(7, 3)
	res, err := RunTrials(trialParams(128), seeds, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, seed := range seeds {
		p := trialParams(128)
		p.Seed = seed
		solo, err := Run(p)
		if err != nil {
			t.Fatal(err)
		}
		if res.Trials[i].ConvergedAt != solo.ConvergedAt || res.Trials[i].Stats != solo.Stats {
			t.Errorf("trial %d (seed %d) diverged from standalone run", i, seed)
		}
	}
}

func TestRunTrialsAggregateInvariants(t *testing.T) {
	res, err := RunTrials(trialParams(128), Seeds(1, 3), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Agg) == 0 {
		t.Fatal("empty aggregate series")
	}
	for _, a := range res.Agg {
		if a.Trials != 3 {
			t.Errorf("cycle %d: trials = %d, want 3", a.Cycle, a.Trials)
		}
		if a.LeafMin > a.LeafMean || a.LeafMean > a.LeafMax {
			t.Errorf("cycle %d: leaf min/mean/max out of order: %+v", a.Cycle, a)
		}
		if a.PrefixMin > a.PrefixMean || a.PrefixMean > a.PrefixMax {
			t.Errorf("cycle %d: prefix min/mean/max out of order: %+v", a.Cycle, a)
		}
		if a.ConvergedFrac < 0 || a.ConvergedFrac > 1 {
			t.Errorf("cycle %d: converged frac %v out of [0,1]", a.Cycle, a.ConvergedFrac)
		}
	}
	last := res.Agg[len(res.Agg)-1]
	if res.ConvergedTrials() == 3 && last.ConvergedFrac != 1 {
		t.Errorf("all trials converged but final frac = %v", last.ConvergedFrac)
	}
}

// TestRunTrialsMemCampaign checks the campaign heap accounting: every
// trial's HeapBytes comes from a shared tracker whose peak bounds all the
// per-trial samples, and the resolved worker count is reported.
func TestRunTrialsMemCampaign(t *testing.T) {
	p := trialParams(128)
	p.MemStats = true
	res, err := RunTrials(p, Seeds(11, 3), 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Workers != 2 {
		t.Errorf("resolved Workers = %d, want 2", res.Workers)
	}
	if res.Mem == nil {
		t.Fatal("MemStats campaign tracker missing from TrialsResult")
	}
	if res.Mem.Baseline() == 0 {
		t.Error("campaign baseline is 0")
	}
	for i, tr := range res.Trials {
		if tr.HeapBytes == 0 {
			t.Errorf("trial %d: HeapBytes not sampled under MemStats", i)
		}
		if tr.HeapBytes > res.Mem.Peak() {
			t.Errorf("trial %d: heap sample %d above campaign peak %d", i, tr.HeapBytes, res.Mem.Peak())
		}
	}

	p.MemStats = false
	res, err = RunTrials(p, Seeds(11, 2), 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mem != nil {
		t.Error("campaign tracker allocated without MemStats")
	}
	if res.Workers != 2 {
		t.Errorf("resolved Workers = %d, want 2 (clamped to the trial count)", res.Workers)
	}
}

func TestRunTrialsErrors(t *testing.T) {
	if _, err := RunTrials(trialParams(128), nil, 1); err == nil {
		t.Error("no seeds accepted")
	}
	bad := trialParams(1) // N < 2 fails validation
	if _, err := RunTrials(bad, Seeds(1, 2), 1); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestTrialsWriteCSV(t *testing.T) {
	res, err := RunTrials(trialParams(128), Seeds(3, 2), 2)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := res.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != len(res.Agg)+1 {
		t.Fatalf("%d CSV lines for %d aggregate points", len(lines), len(res.Agg))
	}
	if !strings.HasPrefix(lines[0], "cycle,trials,leaf_missing_mean") {
		t.Errorf("unexpected header %q", lines[0])
	}
}
