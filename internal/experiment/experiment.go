// Package experiment is the measurement harness reproducing the paper's
// evaluation (Section 5). It wires N simulated nodes — sampling layer plus
// bootstrap layer — into a deterministic simnet, runs the bootstrap
// protocol, and samples per-cycle convergence: the proportion of missing
// leaf-set entries and missing prefix-table entries across the whole
// network, the exact metrics of Figures 3 and 4.
package experiment

import (
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"strconv"

	"repro/internal/core"
	"repro/internal/flat"
	"repro/internal/id"
	"repro/internal/memstats"
	"repro/internal/newscast"
	"repro/internal/peer"
	"repro/internal/sampling"
	"repro/internal/simnet"
	"repro/internal/truth"
)

// SamplerKind selects the peer sampling implementation under the bootstrap
// layer.
type SamplerKind int

const (
	// SamplerOracle uses global-knowledge uniform sampling — the
	// paper's operating assumption ("the sampling service is already
	// functional").
	SamplerOracle SamplerKind = iota + 1
	// SamplerNewscast runs a live NEWSCAST layer under the bootstrap
	// layer, as in a real deployment of the architecture.
	SamplerNewscast
)

// String implements fmt.Stringer.
func (s SamplerKind) String() string {
	switch s {
	case SamplerOracle:
		return "oracle"
	case SamplerNewscast:
		return "newscast"
	default:
		return "unknown"
	}
}

// ParseSampler converts a CLI flag value into a SamplerKind.
func ParseSampler(s string) (SamplerKind, error) {
	switch s {
	case "oracle":
		return SamplerOracle, nil
	case "newscast":
		return SamplerNewscast, nil
	default:
		return 0, fmt.Errorf("unknown sampler %q (want oracle or newscast)", s)
	}
}

// Churn describes a node-replacement workload: each cycle in
// [StartCycle, StopCycle) a fraction Rate of the network is killed and
// replaced by fresh nodes with new IDs, keeping N constant.
type Churn struct {
	Rate       float64
	StartCycle int
	StopCycle  int
}

// Active reports whether churn applies at the given cycle.
func (c Churn) Active(cycle int) bool {
	return c.Rate > 0 && cycle >= c.StartCycle && cycle < c.StopCycle
}

// Params configures one experiment run.
type Params struct {
	// N is the network size.
	N int
	// Seed drives every random choice in the run.
	Seed int64
	// Config holds the bootstrap protocol parameters.
	Config core.Config
	// Drop is the uniform message-drop probability (0.2 in Figure 4).
	Drop float64
	// MaxCycles bounds the run; the run ends earlier on perfection.
	MaxCycles int
	// Sampler selects the sampling layer; zero value means oracle.
	Sampler SamplerKind
	// WarmupCycles runs the NEWSCAST layer alone before the bootstrap
	// layer starts (ignored for the oracle sampler).
	WarmupCycles int
	// Churn optionally replaces nodes during the run.
	Churn Churn
	// Join optionally injects a massive simultaneous join: Count fresh
	// nodes start the protocol at the beginning of cycle Cycle. This is
	// the paper's motivating "massive joins" scenario.
	Join Join
	// IDs optionally fixes the initial membership identifiers (length
	// must equal N). Used to study non-uniform ID distributions; the
	// default is N uniform random IDs.
	IDs []id.ID
	// MeasureWorkers is the number of goroutines the per-cycle
	// ground-truth measurement is sharded across (0 = GOMAXPROCS). The
	// measurement aggregates integer counts, so every value produces
	// bit-identical results; the protocol trace is untouched either way.
	MeasureWorkers int
	// MeasureSample, when positive and smaller than the live population,
	// measures a uniform random node sample of that size per cycle
	// instead of the full network, reporting ratio estimates with
	// confidence intervals (truth.MeasureSample) — the paper itself
	// plots means over node samples, and at paper scale full measurement
	// costs seconds per cycle. Zero (the default) measures every node.
	// Sampling touches only the measurement plane — the protocol trace
	// is bit-identical either way. A cycle whose sample shows zero
	// missing entries does not count as converged on the sample's word
	// alone: the runner re-checks with one exact MeasureAll over the full
	// population and only declares convergence when that confirms, so an
	// optimistic sample costs one full measurement instead of ending the
	// run early. When the confirmation refutes the sample, the exact
	// measurement replaces it as that cycle's reported Point (recognisable
	// by SampleSize == 0); confirmed cycles keep the sampled estimate.
	MeasureSample int
	// MeasureConfidence is the two-sided confidence level of the sampled
	// estimator's intervals; 0 selects 0.95. Ignored for full
	// measurement.
	MeasureConfidence float64
	// Shards is the simulation engine's parallel shard count
	// (simnet.Config.Shards): 0 or 1 runs the sequential engine, higher
	// values partition the nodes across that many workers with
	// conservative lookahead windows. Runs with any fixed Shards > 1 are
	// deterministic, and every Shards > 1 value produces the same trace as
	// every other — but that trace differs from the Shards <= 1 one: with
	// parallel dispatch each node draws from its own oracle Stream (keyed
	// by spawn order, as livenet does) instead of the single shared oracle
	// stream, whose draw order is inherently dispatch-order dependent.
	Shards int
	// KeepRunningAfterPerfect continues until MaxCycles even after
	// perfection, for steady-state studies.
	KeepRunningAfterPerfect bool
	// MemStats records the live heap (after a forced GC) into
	// Result.HeapBytes at the end of the run, while the network is still
	// reachable — the CLI's -memstats accounting. It runs once, after the
	// last cycle, so the protocol trace is untouched.
	MemStats bool

	// memCampaign, when non-nil, redirects the MemStats capture through a
	// shared campaign tracker: the end-of-trial heap sample also feeds the
	// campaign's peak high-water mark. Set only by RunTrials, which owns
	// the campaign across its worker pool.
	memCampaign *memstats.Campaign
}

// Join describes a massive simultaneous join event.
type Join struct {
	Cycle int
	Count int
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.N < 2 {
		return errors.New("experiment: N must be at least 2")
	}
	if p.MaxCycles < 1 {
		return errors.New("experiment: MaxCycles must be positive")
	}
	if p.Drop < 0 || p.Drop >= 1 {
		return fmt.Errorf("experiment: Drop = %v out of [0, 1)", p.Drop)
	}
	if p.Churn.Rate < 0 || p.Churn.Rate > 1 {
		return fmt.Errorf("experiment: churn rate = %v out of [0, 1]", p.Churn.Rate)
	}
	if p.Join.Count < 0 || p.Join.Cycle < 0 {
		return fmt.Errorf("experiment: join = %+v must not be negative", p.Join)
	}
	if len(p.IDs) != 0 && len(p.IDs) != p.N {
		return fmt.Errorf("experiment: %d explicit IDs for N = %d", len(p.IDs), p.N)
	}
	if p.MeasureWorkers < 0 {
		return fmt.Errorf("experiment: MeasureWorkers = %d must not be negative", p.MeasureWorkers)
	}
	if p.MeasureSample < 0 {
		return fmt.Errorf("experiment: MeasureSample = %d must not be negative", p.MeasureSample)
	}
	if p.MeasureConfidence < 0 || p.MeasureConfidence >= 1 {
		return fmt.Errorf("experiment: MeasureConfidence = %v out of [0, 1)", p.MeasureConfidence)
	}
	if p.Shards < 0 {
		return fmt.Errorf("experiment: Shards = %d must not be negative", p.Shards)
	}
	return p.Config.Validate()
}

// Point is one per-cycle measurement across the whole network.
type Point struct {
	// Cycle is the cycle index, starting at 0 (the paper's convention:
	// the first Δ-interval after the staggered start).
	Cycle int
	// LeafMissing is the proportion of missing leaf-set entries.
	LeafMissing float64
	// PrefixMissing is the proportion of missing prefix-table entries.
	PrefixMissing float64
	// LeafPerfect and PrefixPerfect count nodes whose structure is
	// already perfect.
	LeafPerfect, PrefixPerfect int
	// LeafDead and PrefixDead count structure entries pointing at
	// departed nodes (nonzero only under churn).
	LeafDead, PrefixDead int
	// Alive is the number of live nodes at measurement time.
	Alive int
	// Sent and Dropped are cumulative network counters.
	Sent, Dropped int64
	// WireUnits is the cumulative traffic volume in descriptor units;
	// the paper argues the prefix part keeps messages well under the
	// full-table bound, which this exposes.
	WireUnits int64
	// LeafCI and PrefixCI are the half-widths of the sampled estimator's
	// confidence intervals around LeafMissing/PrefixMissing; zero for a
	// full (exact) measurement.
	LeafCI, PrefixCI float64
	// SampleSize is the number of nodes measured this cycle under
	// sampled measurement (the perfect/dead node counts are then scaled
	// projections); zero means every live node was measured exactly.
	SampleSize int
}

// Result is the outcome of a run.
type Result struct {
	Params Params
	// Points holds one entry per completed cycle, in order.
	Points []Point
	// ConvergedAt is the first cycle at which both structures were
	// perfect at every live node, or -1.
	ConvergedAt int
	// Stats is the final network traffic snapshot.
	Stats simnet.Stats
	// HeapBytes is the post-GC live heap captured at the end of the run
	// with the network still live; 0 unless Params.MemStats was set.
	HeapBytes uint64
}

// member is one node of the experiment network.
type member struct {
	desc  peer.Descriptor
	boot  *core.Node
	nc    *newscast.Protocol
	alive bool
	// joinCycle is the cycle the node was spawned in (0 for the initial
	// population). Sampled measurement stratifies on it: nodes younger
	// than freshAgeCycles are the "fresh" stratum (truth.Member.Fresh).
	joinCycle int
}

// freshAgeCycles is the stratification boundary for sampled measurement: a
// node that joined fewer than this many cycles before the measurement is
// "fresh" — its structures are still mostly empty, so it sits in the other
// mode of the bimodal missing-count mixture churn creates.
const freshAgeCycles = 2

// Run executes the experiment and returns the per-cycle series.
func Run(p Params) (*Result, error) {
	if p.Sampler == 0 {
		p.Sampler = SamplerOracle
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	r := &runner{p: p}
	return r.run()
}

type runner struct {
	p       Params
	net     *simnet.Network
	rng     *rand.Rand // harness-level randomness (offsets, churn picks)
	measRNG *rand.Rand // sampled-measurement draws; separate stream so
	// enabling sampling never perturbs the protocol trace
	idGen      *id.Generator
	oracle     *sampling.Oracle
	samplerSeq int64 // newscast sampler seed counter (spawn order)
	members    []*member
	byID       flat.Table[*member]
	// arena backs every node's leaf-set and prefix-table blocks for the
	// lifetime of the trial; churn victims return their blocks on kill.
	arena *peer.DescriptorArena
	// tr is the trial's ground-truth oracle. It is built once and then
	// mutated incrementally by churn/join deltas — never rebuilt per
	// cycle (the measurement plane's dominant cost at paper scale).
	tr *truth.Truth
	// aliveBuf and measBuf are reused across measure calls.
	aliveBuf []*member
	measBuf  []truth.Member
	// cycle is the loop's current cycle index; spawn stamps it on new
	// members so measurement can stratify by node age.
	cycle int
}

func (r *runner) run() (*Result, error) {
	p := r.p
	r.net = simnet.New(simnet.Config{Seed: p.Seed, Drop: p.Drop, Shards: p.Shards})
	r.rng = rand.New(rand.NewSource(p.Seed + 0x9e3779b9))
	r.measRNG = rand.New(rand.NewSource(p.Seed + 0x5ca1ab1e))
	r.idGen = id.NewGenerator(p.Seed + 0x7f4a7c15)
	// Explicit initial IDs bypass the generator, so reserve them: later
	// churn/join draws are then collision-free by construction (the
	// generator never repeats a reserved or produced ID).
	r.idGen.Reserve(p.IDs...)
	r.byID.Reserve(p.N)
	// One descriptor arena per trial: the harness owns it, every node's
	// structures borrow blocks from it (core.Config.Arena), and applyChurn
	// returns a victim's blocks the moment it is permanently retired.
	r.arena = peer.NewDescriptorArena()
	r.p.Config.Arena = r.arena

	descs := make([]peer.Descriptor, p.N)
	for i := 0; i < p.N; i++ {
		nodeID := r.idGen.Next()
		if len(p.IDs) == p.N {
			nodeID = p.IDs[i]
		}
		descs[i] = peer.Descriptor{ID: nodeID, Addr: r.net.AddNode()}
	}
	r.oracle = sampling.NewOracle(descs, p.Seed+0x1234)

	delta := p.Config.Delta
	warmup := int64(0)
	if p.Sampler == SamplerNewscast {
		warmup = int64(p.WarmupCycles) * delta
	}
	for i := 0; i < p.N; i++ {
		m, err := r.spawn(descs[i], warmup)
		if err != nil {
			return nil, err
		}
		r.members = append(r.members, m)
	}
	if p.Sampler == SamplerNewscast && warmup > 0 {
		r.net.Run(warmup)
	}
	ids := make([]id.ID, len(r.members))
	for i, m := range r.members {
		ids[i] = m.desc.ID
	}
	tr, err := truth.New(ids, p.Config.B, p.Config.K, p.Config.C)
	if err != nil {
		return nil, err
	}
	r.tr = tr

	res := &Result{Params: p, ConvergedAt: -1}
	start := r.net.Now()
	for cycle := 0; cycle < p.MaxCycles; cycle++ {
		r.cycle = cycle
		if p.Churn.Active(cycle) {
			if err := r.applyChurn(); err != nil {
				return nil, err
			}
		}
		if p.Join.Count > 0 && cycle == p.Join.Cycle {
			if err := r.applyJoin(p.Join.Count); err != nil {
				return nil, err
			}
		}
		r.net.Run(start + int64(cycle+1)*delta)
		pt := r.measure(cycle)
		joinPending := p.Join.Count > 0 && cycle < p.Join.Cycle
		perfect := pt.LeafMissing == 0 && pt.PrefixMissing == 0 && !joinPending
		if perfect && pt.SampleSize > 0 {
			// An all-perfect sample is only evidence, not proof: a small
			// sample can miss every imperfect node. Confirm with one exact
			// measurement before the run is allowed to stop (or stamp
			// ConvergedAt). When the exact measurement disagrees it
			// supersedes the sample as the reported point (SampleSize == 0
			// marks it exact): the full measurement is already paid for,
			// and an optimistic estimate the run itself refuted would
			// misreport the convergence tail.
			var agg truth.Aggregate
			agg, perfect = r.confirmPerfect()
			if !perfect {
				pt = pointFromAggregate(cycle, agg, pt.Alive, pt.Sent, pt.Dropped, pt.WireUnits)
			}
		}
		res.Points = append(res.Points, pt)
		if perfect {
			if res.ConvergedAt < 0 {
				res.ConvergedAt = cycle
			}
			if !p.KeepRunningAfterPerfect {
				break
			}
		}
	}
	res.Stats = r.net.Stats()
	if p.MemStats {
		if p.memCampaign != nil {
			res.HeapBytes = p.memCampaign.Sample()
		} else {
			res.HeapBytes = memstats.HeapAlloc()
		}
	}
	return res, nil
}

// confirmPerfect re-checks an all-perfect sampled measurement against the
// full live population (measBuf still holds this cycle's members). Exact
// integer counts, so "confirmed" means genuinely zero missing entries; the
// aggregate is returned so a refuted sample's cycle can report the exact
// measurement instead.
func (r *runner) confirmPerfect() (truth.Aggregate, bool) {
	agg := r.tr.MeasureAll(r.measBuf, r.p.MeasureWorkers)
	return agg, agg.LeafMissing == 0 && agg.PrefixMissing == 0
}

// spawn creates a node: its sampling instance (live NEWSCAST or shared
// oracle) and its bootstrap instance, attached with a random start offset
// within one Δ, as the paper prescribes.
func (r *runner) spawn(d peer.Descriptor, bootstrapStart int64) (*member, error) {
	p := r.p
	m := &member{desc: d, alive: true, joinCycle: r.cycle}
	var svc sampling.Service
	switch p.Sampler {
	case SamplerNewscast:
		// Seed the view with a few random contacts (the "bootstrap
		// server" a joining node would contact in practice).
		m.nc = newscast.New(d, r.oracle.Sample(5), newscast.DefaultViewSize)
		if err := r.net.Attach(d.Addr, newscast.ProtoID, m.nc, p.Config.Delta, r.rng.Int63n(p.Config.Delta)); err != nil {
			return nil, fmt.Errorf("attach newscast: %w", err)
		}
		// The adapter draws from the co-located view through its own
		// seeded stream instead of the node's engine RNG, and gives
		// the bootstrap layer the AppendSampler fast path.
		r.samplerSeq++
		svc = newscast.NewSampler(m.nc, p.Seed+0x51*r.samplerSeq)
	default:
		if p.Shards > 1 {
			// Parallel dispatch would interleave draws on the shared
			// oracle stream in worker order, making the trace depend on
			// scheduling. Give every node its own deterministic Stream
			// keyed by spawn order instead (livenet does the same); the
			// node's draw sequence is then a pure function of the seed
			// and invariant across shard counts.
			r.samplerSeq++
			svc = r.oracle.Stream(r.samplerSeq)
		} else {
			svc = r.oracle
		}
	}
	boot, err := core.NewNode(d, p.Config, svc)
	if err != nil {
		return nil, err
	}
	m.boot = boot
	offset := bootstrapStart + r.rng.Int63n(p.Config.Delta)
	if err := r.net.Attach(d.Addr, core.ProtoID, boot, p.Config.Delta, offset); err != nil {
		return nil, fmt.Errorf("attach bootstrap: %w", err)
	}
	r.byID.Put(d.ID, m)
	return m, nil
}

// applyChurn replaces Rate*N random live nodes with fresh ones and applies
// the delta to the trial's ground-truth oracle.
func (r *runner) applyChurn() error {
	n := int(r.p.Churn.Rate * float64(r.p.N))
	if n == 0 && r.p.Churn.Rate > 0 {
		n = 1
	}
	alive := r.aliveMembers()
	if n > len(alive) {
		n = len(alive)
	}
	perm := r.rng.Perm(len(alive))
	removed := make([]id.ID, n)
	for i := 0; i < n; i++ {
		victim := alive[perm[i]]
		victim.alive = false
		r.net.Kill(victim.desc.Addr)
		// A churned node never comes back (unlike a livenet Kill/Respawn):
		// hand its structure blocks to the arena for the replacement wave.
		victim.boot.Release()
		r.oracle.Remove(victim.desc.ID)
		r.byID.Delete(victim.desc.ID)
		removed[i] = victim.desc.ID
	}
	added := make([]id.ID, n)
	for i := 0; i < n; i++ {
		d := peer.Descriptor{ID: r.idGen.Next(), Addr: r.net.AddNode()}
		r.oracle.Add(d)
		m, err := r.spawn(d, 0)
		if err != nil {
			return err
		}
		r.members = append(r.members, m)
		added[i] = d.ID
	}
	return r.tr.Update(added, removed)
}

// applyJoin starts count fresh nodes within the coming cycle — a massive
// simultaneous join. New nodes appear in the sampling layer immediately
// (the paper's NEWSCAST handles that in a handful of cycles even after
// doubling; with the oracle it is instant).
func (r *runner) applyJoin(count int) error {
	added := make([]id.ID, count)
	for i := 0; i < count; i++ {
		d := peer.Descriptor{ID: r.idGen.Next(), Addr: r.net.AddNode()}
		r.oracle.Add(d)
		m, err := r.spawn(d, 0)
		if err != nil {
			return err
		}
		r.members = append(r.members, m)
		added[i] = d.ID
	}
	return r.tr.Update(added, nil)
}

func (r *runner) aliveMembers() []*member {
	out := r.aliveBuf[:0]
	for _, m := range r.members {
		if m.alive {
			out = append(out, m)
		}
	}
	r.aliveBuf = out
	return out
}

// measure computes the network-wide missing proportions against ground
// truth for the current membership, sharding the per-node measurement
// across MeasureWorkers goroutines. The simulator is quiescent between
// Run calls, so the parallel readers see stable protocol state.
func (r *runner) measure(cycle int) Point {
	alive := r.aliveMembers()
	ms := r.measBuf[:0]
	for _, m := range alive {
		ms = append(ms, truth.Member{
			Self: m.desc.ID, Leaf: m.boot.Leaf(), Table: m.boot.Table(),
			Fresh: cycle-m.joinCycle < freshAgeCycles,
		})
	}
	r.measBuf = ms
	st := r.net.Stats()
	if r.p.MeasureSample > 0 {
		sa := r.tr.MeasureSampleConf(ms, r.p.MeasureSample, r.p.MeasureConfidence, r.measRNG, r.p.MeasureWorkers)
		return pointFromSampleAggregate(cycle, sa, len(alive), st.Sent, st.Dropped, st.WireUnits)
	}
	agg := r.tr.MeasureAll(ms, r.p.MeasureWorkers)
	return pointFromAggregate(cycle, agg, len(alive), st.Sent, st.Dropped, st.WireUnits)
}

// pointFromAggregate converts MeasureAll's integer sums into the per-cycle
// Point both engines report (wireUnits is 0 under livenet, which does no
// descriptor-unit accounting).
func pointFromAggregate(cycle int, agg truth.Aggregate, alive int, sent, dropped, wireUnits int64) Point {
	pt := Point{
		Cycle:         cycle,
		LeafPerfect:   agg.LeafPerfect,
		PrefixPerfect: agg.PrefixPerfect,
		LeafDead:      agg.LeafDead,
		PrefixDead:    agg.PrefixDead,
		Alive:         alive,
		Sent:          sent,
		Dropped:       dropped,
		WireUnits:     wireUnits,
	}
	if agg.LeafTotal > 0 {
		pt.LeafMissing = float64(agg.LeafMissing) / float64(agg.LeafTotal)
	}
	if agg.PrefixTotal > 0 {
		pt.PrefixMissing = float64(agg.PrefixMissing) / float64(agg.PrefixTotal)
	}
	return pt
}

// pointFromSampleAggregate converts a sampled measurement into a Point:
// estimated missing proportions with their interval half-widths, and the
// per-node count metrics scaled from the sample to the live population.
func pointFromSampleAggregate(cycle int, sa truth.SampleAggregate, alive int, sent, dropped, wireUnits int64) Point {
	pt := pointFromAggregate(cycle, sa.Sums, alive, sent, dropped, wireUnits)
	pt.LeafMissing = sa.LeafMissing.Mean
	pt.PrefixMissing = sa.PrefixMissing.Mean
	if sa.Exact {
		return pt
	}
	pt.LeafCI, pt.PrefixCI = sa.LeafMissing.CI, sa.PrefixMissing.CI
	pt.SampleSize = sa.SampleSize
	scale := float64(sa.Population) / float64(sa.SampleSize)
	pt.LeafPerfect = int(math.Round(float64(pt.LeafPerfect) * scale))
	pt.PrefixPerfect = int(math.Round(float64(pt.PrefixPerfect) * scale))
	pt.LeafDead = int(math.Round(float64(pt.LeafDead) * scale))
	pt.PrefixDead = int(math.Round(float64(pt.PrefixDead) * scale))
	return pt
}

// WriteCSV emits the per-cycle series with a header, one row per cycle.
// Runs with sampled measurement grow ±ci and sample-size columns; full
// measurement keeps the historical column set byte-identically (pinned by
// the golden CSV test).
func (res *Result) WriteCSV(w io.Writer) error {
	sampled := res.Params.MeasureSample > 0
	header := "cycle,leaf_missing,prefix_missing,leaf_perfect_nodes,prefix_perfect_nodes,leaf_dead,prefix_dead,alive,sent,dropped,wire_units"
	if sampled {
		header += ",leaf_ci,prefix_ci,sample_size"
	}
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	for _, pt := range res.Points {
		row := strconv.Itoa(pt.Cycle) + "," +
			strconv.FormatFloat(pt.LeafMissing, 'e', 6, 64) + "," +
			strconv.FormatFloat(pt.PrefixMissing, 'e', 6, 64) + "," +
			strconv.Itoa(pt.LeafPerfect) + "," +
			strconv.Itoa(pt.PrefixPerfect) + "," +
			strconv.Itoa(pt.LeafDead) + "," +
			strconv.Itoa(pt.PrefixDead) + "," +
			strconv.Itoa(pt.Alive) + "," +
			strconv.FormatInt(pt.Sent, 10) + "," +
			strconv.FormatInt(pt.Dropped, 10) + "," +
			strconv.FormatInt(pt.WireUnits, 10)
		if sampled {
			row += "," + strconv.FormatFloat(pt.LeafCI, 'e', 6, 64) +
				"," + strconv.FormatFloat(pt.PrefixCI, 'e', 6, 64) +
				"," + strconv.Itoa(pt.SampleSize)
		}
		if _, err := fmt.Fprintln(w, row); err != nil {
			return err
		}
	}
	return nil
}

// Final returns the last measured point. It returns a zero Point for an
// empty series.
func (res *Result) Final() Point {
	if len(res.Points) == 0 {
		return Point{}
	}
	return res.Points[len(res.Points)-1]
}
