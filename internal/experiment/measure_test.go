package experiment

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/id"
)

// TestMeasureWorkersInvariance: the per-cycle measurement is sharded
// across MeasureWorkers goroutines but aggregates integer counts, so the
// full result — every Point, bit for bit — must be identical for any
// worker count, and identical to the serial measurement.
func TestMeasureWorkersInvariance(t *testing.T) {
	base := Params{
		N:         192,
		Seed:      77,
		Config:    core.DefaultConfig(),
		Drop:      0.1,
		MaxCycles: 12,
		Churn:     Churn{Rate: 0.02, StartCycle: 1, StopCycle: 6},

		KeepRunningAfterPerfect: true,
	}
	var ref *Result
	for _, workers := range []int{1, 2, 3, 8} {
		p := base
		p.MeasureWorkers = workers
		res, err := Run(p)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if !reflect.DeepEqual(res.Points, ref.Points) {
			t.Errorf("workers=%d: Points diverge from workers=1", workers)
		}
		if res.ConvergedAt != ref.ConvergedAt || res.Stats != ref.Stats {
			t.Errorf("workers=%d: ConvergedAt/Stats diverge: %d/%+v vs %d/%+v",
				workers, res.ConvergedAt, res.Stats, ref.ConvergedAt, ref.Stats)
		}
	}
}

// TestChurnExplicitIDCollisionFree: explicit initial IDs chosen to be
// exactly the IDs the churn generator would draw next used to collide —
// the oracle then rejected the duplicate mid-run and the trial died.
// Reserving the explicit IDs in the generator makes churn allocation
// collision-free by construction.
func TestChurnExplicitIDCollisionFree(t *testing.T) {
	const n, seed = 16, int64(5)
	// The runner's generator is seeded with Seed+0x7f4a7c15 and consumes
	// n draws during setup; churn then draws n+1, n+2, ... Handing those
	// very draws in as the explicit membership forces the collision.
	all := id.Unique(2*n, seed+0x7f4a7c15)
	res, err := Run(Params{
		N:         n,
		Seed:      seed,
		IDs:       all[n : 2*n],
		Config:    core.DefaultConfig(),
		MaxCycles: 10,
		Churn:     Churn{Rate: 0.2, StartCycle: 0, StopCycle: 8},

		KeepRunningAfterPerfect: true,
	})
	if err != nil {
		t.Fatalf("churn with adversarial explicit IDs failed: %v", err)
	}
	if len(res.Points) != 10 {
		t.Errorf("run truncated: %d points, want 10", len(res.Points))
	}
	// Every measured cycle must still see the full population.
	for _, pt := range res.Points {
		if pt.Alive != n {
			t.Errorf("cycle %d: alive = %d, want %d", pt.Cycle, pt.Alive, n)
		}
	}
}

// TestGeneratorReserve pins the collision-free contract at the source.
func TestGeneratorReserve(t *testing.T) {
	first := id.NewGenerator(9).Next()
	g := id.NewGenerator(9)
	g.Reserve(first)
	for i := 0; i < 100; i++ {
		if g.Next() == first {
			t.Fatal("generator returned a reserved ID")
		}
	}
}
