package experiment

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/livenet"
)

func quickLiveParams(n, cycles int) LiveParams {
	return LiveParams{
		N:      n,
		Config: core.DefaultConfig(),
		Period: 5 * time.Millisecond,
		Cycles: cycles,
	}
}

func TestLiveParamsValidate(t *testing.T) {
	good := quickLiveParams(16, 5)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*LiveParams)
	}{
		{"tiny N", func(p *LiveParams) { p.N = 1 }},
		{"zero cycles", func(p *LiveParams) { p.Cycles = 0 }},
		{"drop out of range", func(p *LiveParams) { p.Drop = 1 }},
		{"negative drop", func(p *LiveParams) { p.Drop = -0.1 }},
		{"negative period", func(p *LiveParams) { p.Period = -time.Second }},
		{"negative latency", func(p *LiveParams) { p.MaxLatency = -time.Millisecond }},
		{"bad config", func(p *LiveParams) { p.Config.C = 3 }},
	}
	for _, tc := range cases {
		p := good
		tc.mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestLiveRunConvergesFailureFree(t *testing.T) {
	res, err := RunLive(quickLiveParams(32, 25), 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.ConvergedAt < 0 {
		t.Errorf("failure-free live run did not converge: final %+v", res.Final())
	}
	if len(res.Points) == 0 {
		t.Fatal("no measurement points")
	}
	if got := res.Final().Alive; got != 32 {
		t.Errorf("alive = %d, want 32", got)
	}
	if st := res.Stats; st.Sent != st.Delivered+st.Dropped+st.Overflow {
		t.Errorf("counters not conserved: %+v", st)
	}
}

// TestLiveNewscastSamplerConverges runs the full two-layer stack on the
// concurrent runtime: NEWSCAST gossips on every host, the bootstrap layer
// samples its decentralized view through the newscast.Sampler adapter —
// no oracle on the data plane at all. Sampled measurement rides along so
// the whole new measurement path runs under -race in the live CI job.
func TestLiveNewscastSamplerConverges(t *testing.T) {
	p := quickLiveParams(48, 40)
	p.Period = 20 * time.Millisecond
	p.Sampler = SamplerNewscast
	p.WarmupCycles = 5
	p.MeasureSample = 24
	res, err := RunLive(p, 9)
	if err != nil {
		t.Fatal(err)
	}
	if res.ConvergedAt < 0 {
		t.Errorf("two-layer live stack did not converge: final %+v", res.Final())
	}
	if st := res.Stats; st.Sent != st.Delivered+st.Dropped+st.Overflow {
		t.Errorf("counters not conserved: %+v", st)
	}
}

func TestLiveTrialsChurnCampaign(t *testing.T) {
	p := quickLiveParams(48, 16)
	p.Scenario = livenet.ScenarioChurn
	p.KeepRunningAfterPerfect = true
	p.MemStats = true
	res, err := RunLiveTrials(p, Seeds(11, 3), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trials) != 3 {
		t.Fatalf("got %d trials, want 3", len(res.Trials))
	}
	if res.Workers != 2 {
		t.Errorf("resolved Workers = %d, want 2", res.Workers)
	}
	if res.Mem == nil {
		t.Fatal("MemStats campaign tracker missing from LiveTrialsResult")
	}
	if res.Mem.Peak() < res.Mem.Baseline() {
		t.Errorf("campaign peak %d below baseline %d", res.Mem.Peak(), res.Mem.Baseline())
	}
	for i, tr := range res.Trials {
		if tr.HeapBytes == 0 {
			t.Errorf("trial %d: HeapBytes not sampled under MemStats", i)
		}
		if tr.HeapBytes > res.Mem.Peak() {
			t.Errorf("trial %d: heap sample %d above campaign peak %d", i, tr.HeapBytes, res.Mem.Peak())
		}
		if tr.Killed == 0 || tr.Respawned == 0 {
			t.Errorf("trial %d: churn scenario applied no lifecycle events (killed=%d respawned=%d)",
				i, tr.Killed, tr.Respawned)
		}
		if tr.Killed != tr.Respawned {
			t.Errorf("trial %d: killed=%d != respawned=%d; schedule must pair waves with respawns",
				i, tr.Killed, tr.Respawned)
		}
		if len(tr.Points) != p.Cycles {
			t.Errorf("trial %d: %d points, want %d (KeepRunningAfterPerfect)", i, len(tr.Points), p.Cycles)
		}
		if got := tr.Final().Alive; got != p.N {
			t.Errorf("trial %d: final alive = %d, want %d after last respawn", i, got, p.N)
		}
		if st := tr.Stats; st.Sent != st.Delivered+st.Dropped+st.Overflow {
			t.Errorf("trial %d: counters not conserved: %+v", i, st)
		}
		if len(tr.Schedule) == 0 {
			t.Errorf("trial %d: empty fault schedule under churn scenario", i)
		}
	}
	if len(res.Agg) != p.Cycles {
		t.Errorf("aggregate series has %d cycles, want %d", len(res.Agg), p.Cycles)
	}
	var sb strings.Builder
	if err := res.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != p.Cycles+1 {
		t.Errorf("CSV has %d lines, want %d (header + cycles)", len(lines), p.Cycles+1)
	}
	if !strings.HasPrefix(lines[0], "cycle,trials,") {
		t.Errorf("unexpected CSV header %q", lines[0])
	}
}

func TestLiveSchedulesDifferAcrossTrials(t *testing.T) {
	p := quickLiveParams(32, 12)
	p.Scenario = livenet.ScenarioChurn
	p.KeepRunningAfterPerfect = true
	res, err := RunLiveTrials(p, Seeds(5, 2), 1)
	if err != nil {
		t.Fatal(err)
	}
	a := livenet.TraceSchedule(res.Trials[0].Schedule)
	b := livenet.TraceSchedule(res.Trials[1].Schedule)
	if a == b {
		t.Error("two trial seeds produced the identical fault plan")
	}
}

func TestLivePartitionHealRecovers(t *testing.T) {
	p := quickLiveParams(32, 24)
	p.Scenario = livenet.ScenarioPartition
	p.KeepRunningAfterPerfect = true
	res, err := RunLive(p, 9)
	if err != nil {
		t.Fatal(err)
	}
	// During the cut the global structures cannot be perfect (the oracle
	// still samples both sides but messages across the boundary drop);
	// after healing they must recover. Assert recovery rather than the
	// exact degradation, which depends on scheduling.
	final := res.Final()
	if final.LeafMissing > 0.05 || final.PrefixMissing > 0.05 {
		t.Errorf("no recovery after heal: final leaf=%e prefix=%e", final.LeafMissing, final.PrefixMissing)
	}
	if st := res.Stats; st.Sent != st.Delivered+st.Dropped+st.Overflow {
		t.Errorf("counters not conserved: %+v", st)
	}
	if st := res.Stats; st.Dropped == 0 {
		t.Error("partition scenario dropped no messages")
	}
}

func TestLiveTrialsRejectsBadInput(t *testing.T) {
	if _, err := RunLiveTrials(quickLiveParams(16, 4), nil, 2); err == nil {
		t.Error("empty seed list accepted")
	}
	bad := quickLiveParams(1, 4)
	if _, err := RunLiveTrials(bad, Seeds(1, 2), 2); err == nil {
		t.Error("invalid params accepted")
	}
}
