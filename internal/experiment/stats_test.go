package experiment

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/truth"
)

// TestStatSampleCoverage is the statistical regression for the sampled
// measurement plane: on realistic protocol state — n=4096 mid-bootstrap
// under 1% per-cycle churn — MeasureSample(512)'s 95% confidence intervals
// must cover MeasureAll's exact missing proportions in at least 93 of 100
// sampling trials, per metric. Every input is seeded (the simulation, the
// oracle, all 100 sample draws), so the covered counts are fixed numbers:
// this test cannot flake, only regress.
func TestStatSampleCoverage(t *testing.T) {
	p := Params{
		N:         4096,
		Seed:      0xC0FFEE,
		Config:    core.DefaultConfig(),
		MaxCycles: 6,
		Sampler:   SamplerOracle,
		// Churn through the whole run keeps the structures imperfect:
		// a converged population has zero variance and nothing to cover.
		Churn:                   Churn{Rate: 0.01, StartCycle: 0, StopCycle: 1 << 20},
		KeepRunningAfterPerfect: true,
		MeasureWorkers:          2,
	}
	r := &runner{p: p}
	if _, err := r.run(); err != nil {
		t.Fatal(err)
	}
	// The runner's members and incremental truth oracle survive the run;
	// measure the final (post-churn) state directly.
	alive := r.aliveMembers()
	ms := make([]truth.Member, 0, len(alive))
	for _, m := range alive {
		ms = append(ms, truth.Member{Self: m.desc.ID, Leaf: m.boot.Leaf(), Table: m.boot.Table()})
	}
	exact := r.tr.MeasureAll(ms, 2)
	exactLeaf := float64(exact.LeafMissing) / float64(exact.LeafTotal)
	exactPrefix := float64(exact.PrefixMissing) / float64(exact.PrefixTotal)
	if exactLeaf == 0 || exactPrefix == 0 {
		t.Fatalf("population fully converged (leaf=%v prefix=%v); the coverage test needs imperfect state", exactLeaf, exactPrefix)
	}

	const trials, sampleSize, wantCovered = 100, 512, 93
	leafCovered, prefixCovered := 0, 0
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(0x9999 + trial*7919)))
		sa := r.tr.MeasureSample(ms, sampleSize, rng, 2)
		if sa.Exact || sa.SampleSize != sampleSize {
			t.Fatalf("trial %d: expected a true sample, got %+v", trial, sa)
		}
		if sa.LeafMissing.Covers(exactLeaf) {
			leafCovered++
		}
		if sa.PrefixMissing.Covers(exactPrefix) {
			prefixCovered++
		}
	}
	t.Logf("exact leaf=%.6f prefix=%.6f; coverage leaf=%d/100 prefix=%d/100",
		exactLeaf, exactPrefix, leafCovered, prefixCovered)
	if leafCovered < wantCovered {
		t.Errorf("leaf CI covered the exact value in %d/100 trials, want >= %d", leafCovered, wantCovered)
	}
	if prefixCovered < wantCovered {
		t.Errorf("prefix CI covered the exact value in %d/100 trials, want >= %d", prefixCovered, wantCovered)
	}
}

// TestStatSampleCoverageHighChurn is the regression for the stratified
// estimator: a long run under sustained churn leaves a small fresh
// minority (nodes younger than two cycles, here 40 of 4096) whose missing
// counts sit orders of magnitude above the established majority's. A
// simple random sample contains a binomially-varying — often zero —
// number of those nodes, its residual distribution is bimodal, and the
// classical t-interval undercovers badly. Stratifying by age (Member.Fresh,
// as runner.measure marks it) fixes each stratum's count and restores
// nominal coverage. Both halves are seeded and deterministic: the covered
// counts are fixed numbers, so the unstratified half is a pinned
// demonstration of the failure, not a flake risk.
func TestStatSampleCoverageHighChurn(t *testing.T) {
	p := Params{
		N:                       4096,
		Seed:                    0xC0FFEE,
		Config:                  core.DefaultConfig(),
		MaxCycles:               14,
		Sampler:                 SamplerOracle,
		Churn:                   Churn{Rate: 0.005, StartCycle: 0, StopCycle: 1 << 20},
		KeepRunningAfterPerfect: true,
		MeasureWorkers:          2,
	}
	r := &runner{p: p}
	if _, err := r.run(); err != nil {
		t.Fatal(err)
	}
	lastCycle := p.MaxCycles - 1
	alive := r.aliveMembers()
	stratified := make([]truth.Member, 0, len(alive))
	flat := make([]truth.Member, 0, len(alive))
	nFresh := 0
	for _, m := range alive {
		tm := truth.Member{Self: m.desc.ID, Leaf: m.boot.Leaf(), Table: m.boot.Table()}
		flat = append(flat, tm)
		tm.Fresh = lastCycle-m.joinCycle < freshAgeCycles
		if tm.Fresh {
			nFresh++
		}
		stratified = append(stratified, tm)
	}
	if nFresh == 0 || nFresh == len(alive) {
		t.Fatalf("degenerate age mix (%d fresh of %d); the stratified path needs both strata", nFresh, len(alive))
	}
	exact := r.tr.MeasureAll(flat, 2)
	exactLeaf := float64(exact.LeafMissing) / float64(exact.LeafTotal)
	exactPrefix := float64(exact.PrefixMissing) / float64(exact.PrefixTotal)
	if exactLeaf == 0 || exactPrefix == 0 {
		t.Fatalf("population fully converged (leaf=%v prefix=%v)", exactLeaf, exactPrefix)
	}

	const trials, sampleSize = 100, 224
	coverage := func(ms []truth.Member, wantStrata int) (leaf, prefix int) {
		for trial := 0; trial < trials; trial++ {
			rng := rand.New(rand.NewSource(int64(0x9999 + trial*7919)))
			sa := r.tr.MeasureSample(ms, sampleSize, rng, 2)
			if sa.Strata != wantStrata {
				t.Fatalf("trial %d: Strata = %d, want %d", trial, sa.Strata, wantStrata)
			}
			if sa.SampleSize != sampleSize {
				t.Fatalf("trial %d: SampleSize = %d, want %d", trial, sa.SampleSize, sampleSize)
			}
			if sa.LeafMissing.Covers(exactLeaf) {
				leaf++
			}
			if sa.PrefixMissing.Covers(exactPrefix) {
				prefix++
			}
		}
		return leaf, prefix
	}
	sl, sp := coverage(stratified, 2)
	ul, up := coverage(flat, 1)
	t.Logf("fresh=%d/%d exact leaf=%.6f prefix=%.6f; stratified leaf=%d/100 prefix=%d/100, unstratified leaf=%d/100 prefix=%d/100",
		nFresh, len(alive), exactLeaf, exactPrefix, sl, sp, ul, up)
	const wantCovered = 93
	if sl < wantCovered || sp < wantCovered {
		t.Errorf("stratified coverage leaf=%d prefix=%d, want both >= %d", sl, sp, wantCovered)
	}
	// The unstratified halves are the pinned failure: if these start
	// passing, the scenario no longer stresses the estimator and the test
	// should move somewhere that does.
	if ul >= wantCovered || up >= wantCovered {
		t.Errorf("unstratified coverage leaf=%d prefix=%d unexpectedly reached %d; scenario no longer demonstrates the failure", ul, up, wantCovered)
	}
}

// TestSampledConvergenceConfirmed pins the stopping rule of sampled runs:
// an all-zero sample alone must not end the run. With seed 3 the n=256
// network truly converges at cycle 7, but a size-8 sample reads all-perfect
// from cycle 4 on (the sample simply misses the last few imperfect nodes).
// The runner confirms any perfect-looking sample with one exact MeasureAll,
// so the sampled run must stop at the same cycle as the full one — and a
// refuted sample's cycle must report the exact measurement it was refuted
// by (SampleSize == 0, equal to the full run's point), never the optimistic
// estimate the run itself disproved.
func TestSampledConvergenceConfirmed(t *testing.T) {
	base := Params{N: 256, Seed: 3, Config: core.DefaultConfig(), MaxCycles: 40}
	full, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if full.ConvergedAt < 0 {
		t.Fatalf("full run never converged within %d cycles", base.MaxCycles)
	}
	sp := base
	sp.MeasureSample = 8
	sampled, err := Run(sp)
	if err != nil {
		t.Fatal(err)
	}
	// The confirm path leaves a visible fingerprint now: a pre-convergence
	// cycle whose sample read all-perfect gets the exact measurement as its
	// point. The sampled run's protocol trace is bit-identical to the full
	// run's (pinned below by TestStatSampledRunMatchesFullTrend), so a
	// replaced point must equal the full run's point at that cycle exactly.
	// Deterministic — if no cycle gets replaced anymore, re-pin a seed that
	// produces an optimistic sample (most small seeds do).
	refuted := 0
	for c := 0; c < full.ConvergedAt && c < len(sampled.Points); c++ {
		pt := sampled.Points[c]
		if pt.LeafMissing == 0 && pt.PrefixMissing == 0 {
			t.Errorf("cycle %d: a refuted all-perfect sample survived as the reported point", c)
		}
		if pt.SampleSize == 0 {
			refuted++
			if pt != full.Points[c] {
				t.Errorf("cycle %d: replaced point %+v != exact point %+v", c, pt, full.Points[c])
			}
		}
	}
	if refuted == 0 {
		t.Error("no refuted pre-convergence sample; the scenario no longer exercises the confirmation")
	}
	if sampled.ConvergedAt != full.ConvergedAt {
		t.Errorf("sampled ConvergedAt = %d, want %d (exact convergence)", sampled.ConvergedAt, full.ConvergedAt)
	}
	if len(sampled.Points) != full.ConvergedAt+1 {
		t.Errorf("sampled run stopped after %d cycles, want %d: an unconfirmed sample ended it early",
			len(sampled.Points), full.ConvergedAt+1)
	}
}

// TestStatSampledRunMatchesFullTrend runs the same seeded experiment twice
// — full measurement and sampled measurement — and checks (a) the protocol
// trace is bit-identical (sampling must never leak into the data plane)
// and (b) each cycle's sampled estimate tracks the full measurement within
// a few interval widths.
func TestStatSampledRunMatchesFullTrend(t *testing.T) {
	base := Params{
		N:         512,
		Seed:      77,
		Config:    core.DefaultConfig(),
		MaxCycles: 12,
		// Keep both runs measuring every cycle so the series align.
		KeepRunningAfterPerfect: true,
	}
	full, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	sp := base
	sp.MeasureSample = 128
	sampled, err := Run(sp)
	if err != nil {
		t.Fatal(err)
	}
	if full.Stats != sampled.Stats {
		t.Fatalf("sampled measurement disturbed the protocol trace: %+v != %+v", sampled.Stats, full.Stats)
	}
	if len(full.Points) != len(sampled.Points) {
		t.Fatalf("series lengths differ: %d vs %d", len(full.Points), len(sampled.Points))
	}
	for i := range full.Points {
		f, s := full.Points[i], sampled.Points[i]
		if s.SampleSize == 0 {
			// A refuted all-perfect sample reports the exact confirm
			// measurement instead; identical traces make it equal to the
			// full run's point.
			if s != f {
				t.Fatalf("cycle %d: replaced point %+v != exact point %+v", i, s, f)
			}
			continue
		}
		if s.SampleSize != sp.MeasureSample {
			t.Fatalf("cycle %d: SampleSize = %d, want %d", i, s.SampleSize, sp.MeasureSample)
		}
		// 4x the half-width plus absolute slack: a per-cycle bound loose
		// enough to never trip on an honest estimator, tight enough to
		// catch a broken one.
		if d := s.LeafMissing - f.LeafMissing; d > 4*s.LeafCI+0.02 || d < -4*s.LeafCI-0.02 {
			t.Errorf("cycle %d: sampled leaf %v ± %v far from exact %v", i, s.LeafMissing, s.LeafCI, f.LeafMissing)
		}
		if d := s.PrefixMissing - f.PrefixMissing; d > 4*s.PrefixCI+0.02 || d < -4*s.PrefixCI-0.02 {
			t.Errorf("cycle %d: sampled prefix %v ± %v far from exact %v", i, s.PrefixMissing, s.PrefixCI, f.PrefixMissing)
		}
	}
}
