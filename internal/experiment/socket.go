package experiment

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/id"
	"repro/internal/livenet"
	"repro/internal/peer"
	"repro/internal/sampling"
	"repro/internal/transport"
	"repro/internal/truth"
)

// SocketParams configures one socket-engine campaign trial: the bootstrap
// protocol over real loopback sockets (package transport), optionally
// sharded across OS processes. The scenario vocabulary is shared with
// livenet, except latency events: the socket engine measures the kernel's
// real delivery latency instead of injecting one, so OpSetLatency is a
// configuration error here.
type SocketParams struct {
	// N is the total host count across all processes.
	N int
	// Config holds the bootstrap protocol parameters (Delta ignored).
	Config core.Config
	// Period is the wall-clock gossip period Δ. Zero selects the livenet
	// default for this N.
	Period time.Duration
	// Cycles is the campaign length in periods.
	Cycles int
	// Drop is the initial sender-side loss probability.
	Drop float64
	// InboxSize / QueueSize bound the per-host inbox and per-peer send
	// queue (zero selects the transport defaults).
	InboxSize, QueueSize int
	// Procs shards the campaign over OS processes; Proc is this
	// process's shard. Zero Procs selects 1.
	Procs, Proc int
	// BasePort indexes the localhost topology (process p listens on
	// BasePort+p).
	BasePort int
	// UDP selects datagram sockets (see transport.Config.UDP).
	UDP bool
	// Scenario is the churn/failure schedule; zero value is failure-free.
	Scenario livenet.Scenario
	// MeasureWorkers shards the per-cycle measurement (0 = GOMAXPROCS).
	MeasureWorkers int
	// KeepRunningAfterPerfect continues to Cycles even after perfection.
	KeepRunningAfterPerfect bool
}

func (p SocketParams) withDefaults() SocketParams {
	if p.Procs <= 0 {
		p.Procs = 1
	}
	if p.Period == 0 {
		p.Period = DefaultLivePeriod(p.N, 1)
	}
	return p
}

// Validate checks the parameters.
func (p SocketParams) Validate() error {
	p = p.withDefaults()
	if p.N < 2 {
		return errors.New("experiment: socket N must be at least 2")
	}
	if p.Cycles < 1 {
		return errors.New("experiment: socket Cycles must be positive")
	}
	if p.Drop < 0 || p.Drop >= 1 {
		return fmt.Errorf("experiment: socket Drop = %v out of [0, 1)", p.Drop)
	}
	if p.Period < 0 {
		return errors.New("experiment: socket Period must not be negative")
	}
	return p.Config.Validate()
}

// SocketResult is the outcome of one single-process socket trial.
type SocketResult struct {
	Params SocketParams
	Seed   int64
	// Schedule is the scenario's deterministic event plan for this seed.
	Schedule []livenet.Event
	// Points holds one entry per completed cycle.
	Points []Point
	// ConvergedAt is the first cycle at which both structures were
	// perfect at every live node, or -1.
	ConvergedAt int
	// Stats is the final traffic snapshot, taken at quiescence (conserved
	// when every frame drained cleanly; see the transport package).
	Stats transport.Stats
	// Killed and Respawned count lifecycle events applied.
	Killed, Respawned int
}

// Final returns the last measured point.
func (res *SocketResult) Final() Point {
	if len(res.Points) == 0 {
		return Point{}
	}
	return res.Points[len(res.Points)-1]
}

// cyclePlan is the fully resolved fault actions of one cycle: explicit
// global address lists instead of fractions, so every process of a
// campaign — expanding the schedule independently from the same seed —
// executes the identical plan without coordination.
type cyclePlan struct {
	kills    []int // global addrs to crash, ascending
	respawns []int // global addrs to revive, ascending
	setDrop  *float64
	split    *int // partition boundary; negative heals
}

// expandSocketSchedule resolves a livenet schedule into per-cycle address
// plans. Kill victims are drawn from a dedicated deterministic RNG over
// the simulated alive set in ascending address order — the same inputs on
// every process yield the same victims. Latency events are rejected: the
// socket engine has no latency injector.
func expandSocketSchedule(schedule []livenet.Event, seed int64, n int) (map[int]*cyclePlan, error) {
	plans := make(map[int]*cyclePlan)
	at := func(c int) *cyclePlan {
		if plans[c] == nil {
			plans[c] = &cyclePlan{}
		}
		return plans[c]
	}
	rng := rand.New(rand.NewSource(seed + 0x50c3e7))
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	for _, e := range schedule {
		switch e.Op {
		case livenet.OpKill:
			var up []int
			for addr, a := range alive {
				if a {
					up = append(up, addr)
				}
			}
			k := int(e.Frac * float64(len(up)))
			if k == 0 && e.Frac > 0 {
				k = 1
			}
			if max := len(up) - 2; k > max {
				k = max
			}
			if k <= 0 {
				continue
			}
			perm := rng.Perm(len(up))
			p := at(e.Cycle)
			for i := 0; i < k; i++ {
				victim := up[perm[i]]
				alive[victim] = false
				p.kills = append(p.kills, victim)
			}
		case livenet.OpRespawn:
			p := at(e.Cycle)
			for addr, a := range alive {
				if !a {
					alive[addr] = true
					p.respawns = append(p.respawns, addr)
				}
			}
		case livenet.OpSetDrop:
			v := e.Value
			at(e.Cycle).setDrop = &v
		case livenet.OpPartition:
			s := e.Split
			at(e.Cycle).split = &s
		case livenet.OpHeal:
			s := -1
			at(e.Cycle).split = &s
		case livenet.OpSetLatency:
			return nil, errors.New("experiment: socket engine does not support latency events (the kernel provides the latency)")
		default:
			return nil, fmt.Errorf("experiment: unknown scenario op %v", e.Op)
		}
	}
	return plans, nil
}

// socketMember is one node of the campaign as seen from this process:
// every node has a descriptor and an alive bit (global knowledge derived
// from the shared plan); only local nodes carry a host and protocol state.
type socketMember struct {
	desc  peer.Descriptor
	host  *transport.Host // nil for nodes owned by other processes
	node  *core.Node      // nil for remote nodes
	alive bool
}

// SocketTrial is one process's share of a socket campaign, stepped one
// cycle at a time so a multi-process driver (cmd/netsim) can interleave
// its own barriers between cycles. Single-process callers use RunSocket.
type SocketTrial struct {
	p        SocketParams
	seed     int64
	net      *transport.Network
	members  []*socketMember
	oracle   *sampling.Oracle
	tr       *truth.Truth
	plans    map[int]*cyclePlan
	schedule []livenet.Event
	// LastEventCycle is the latest cycle with a scheduled event;
	// convergence may only be declared at or after it.
	LastEventCycle int
	// Killed and Respawned count lifecycle events applied to local hosts.
	Killed, Respawned int
	measBuf           []truth.Member
}

// NewSocketTrial builds this process's shard: the transport network, the
// local hosts with their bootstrap nodes, the global membership oracle,
// and the resolved fault plan. Call Start, then StepCycle per cycle.
func NewSocketTrial(p SocketParams, seed int64) (*SocketTrial, error) {
	p = p.withDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	net, err := transport.New(transport.Config{
		Seed:      seed,
		N:         p.N,
		Procs:     p.Procs,
		Proc:      p.Proc,
		BasePort:  p.BasePort,
		InboxSize: p.InboxSize,
		QueueSize: p.QueueSize,
		Drop:      p.Drop,
		UDP:       p.UDP,
	})
	if err != nil {
		return nil, err
	}

	// Identity derivation matches RunLive exactly (ids[i] ↔ addr i), so
	// the cross-engine comparison runs the same ring on both engines.
	ids := id.Unique(p.N, seed+0x11)
	descs := make([]peer.Descriptor, p.N)
	members := make([]*socketMember, p.N)
	for i := 0; i < p.N; i++ {
		descs[i] = peer.Descriptor{ID: ids[i], Addr: peer.Addr(i)}
		members[i] = &socketMember{desc: descs[i], alive: true}
	}
	oracle := sampling.NewOracle(descs, seed+0x1234)

	cfg := p.Config
	cfg.Arena = peer.NewDescriptorArena()
	for _, h := range net.LocalHosts() {
		addr := int(h.Addr())
		m := members[addr]
		m.host = h
		node, err := core.NewNode(m.desc, cfg, oracle.Stream(int64(addr)))
		if err != nil {
			net.Close()
			return nil, err
		}
		m.node = node
		// Offsets are a pure function of (seed, addr) — not an RNG
		// stream — so they are identical however the campaign is
		// sharded.
		off := time.Duration((uint64(seed)*0x9e3779b97f4a7c15 + uint64(addr)*0xbf58476d1ce4e5b9) % uint64(p.Period))
		if err := h.Attach(core.ProtoID, node, p.Period, off); err != nil {
			net.Close()
			return nil, fmt.Errorf("attach bootstrap: %w", err)
		}
	}

	schedule := p.Scenario.Events(seed, p.N, p.Cycles)
	plans, err := expandSocketSchedule(schedule, seed, p.N)
	if err != nil {
		net.Close()
		return nil, err
	}
	lastEvent := -1
	for c := range plans {
		if c > lastEvent {
			lastEvent = c
		}
	}

	tr, err := truth.New(ids, p.Config.B, p.Config.K, p.Config.C)
	if err != nil {
		net.Close()
		return nil, err
	}
	return &SocketTrial{
		p: p, seed: seed, net: net, members: members,
		oracle: oracle, tr: tr, plans: plans, schedule: schedule,
		LastEventCycle: lastEvent,
	}, nil
}

// Schedule returns the scenario's event plan.
func (t *SocketTrial) Schedule() []livenet.Event { return t.schedule }

// Net exposes the underlying network (driver teardown, stats).
func (t *SocketTrial) Net() *transport.Network { return t.net }

// Start binds the sockets and launches the hosts.
func (t *SocketTrial) Start() error { return t.net.Start() }

// applyPlan executes one cycle's fault actions. Membership bookkeeping
// (oracle, truth) is global — every process tracks all N nodes — while
// Kill/Respawn touch only local hosts.
func (t *SocketTrial) applyPlan(plan *cyclePlan) error {
	if plan == nil {
		return nil
	}
	var added, removed []id.ID
	var wg sync.WaitGroup
	for _, addr := range plan.kills {
		m := t.members[addr]
		m.alive = false
		t.oracle.Remove(m.desc.ID)
		removed = append(removed, m.desc.ID)
		if m.host != nil {
			t.Killed++
			wg.Add(1)
			go func() {
				defer wg.Done()
				m.host.Kill()
			}()
		}
	}
	wg.Wait()
	for _, addr := range plan.respawns {
		m := t.members[addr]
		m.alive = true
		t.oracle.Add(m.desc)
		added = append(added, m.desc.ID)
		if m.host != nil {
			if err := m.host.Respawn(); err != nil {
				return err
			}
			t.Respawned++
		}
	}
	if plan.setDrop != nil {
		v := *plan.setDrop
		if v < 0 {
			v = t.p.Drop
		}
		t.net.SetDrop(v)
	}
	if plan.split != nil {
		if s := *plan.split; s < 0 {
			t.net.SetPartition(nil)
		} else {
			split := peer.Addr(s)
			t.net.SetPartition(func(from, to peer.Addr) bool {
				return (from < split) != (to < split)
			})
		}
	}
	if len(added) > 0 || len(removed) > 0 {
		return t.tr.Update(added, removed)
	}
	return nil
}

// StepCycle runs one campaign cycle: apply the cycle's fault plan, let
// the network gossip for one period, pause the local hosts, measure the
// local members against the global truth, resume. The returned aggregate
// covers only this process's members — integer sums, so a driver adds the
// per-process partials to recover exactly the whole-network measurement —
// alongside the local and global alive counts.
func (t *SocketTrial) StepCycle(cycle int) (agg truth.Aggregate, localAlive, globalAlive int, err error) {
	if err := t.applyPlan(t.plans[cycle]); err != nil {
		return truth.Aggregate{}, 0, 0, err
	}
	time.Sleep(t.p.Period)

	t.net.PauseAll()
	ms := t.measBuf[:0]
	for _, m := range t.members {
		if !m.alive {
			continue
		}
		globalAlive++
		if m.node == nil {
			continue
		}
		localAlive++
		ms = append(ms, truth.Member{Self: m.desc.ID, Leaf: m.node.Leaf(), Table: m.node.Table()})
	}
	t.measBuf = ms
	agg = t.tr.MeasureAll(ms, t.p.MeasureWorkers)
	t.net.ResumeAll()
	return agg, localAlive, globalAlive, nil
}

// Drain quiesces this process's share of the traffic: tick sources off,
// then wait for the counters to settle. Campaign drivers call it on every
// process before summing final stats.
func (t *SocketTrial) Drain(timeout time.Duration) bool {
	t.net.StopTicks()
	return t.net.Quiesce(timeout)
}

// Stats returns the process-local traffic counters.
func (t *SocketTrial) Stats() transport.Stats { return t.net.Stats() }

// Close tears the shard down.
func (t *SocketTrial) Close() { t.net.Close() }

// RunSocket executes one complete single-process socket trial — the
// socket-engine counterpart of RunLive, over real loopback TCP (or UDP).
func RunSocket(p SocketParams, seed int64) (*SocketResult, error) {
	p = p.withDefaults()
	if p.Procs != 1 {
		return nil, errors.New("experiment: RunSocket is single-process; use SocketTrial under cmd/netsim for multi-process campaigns")
	}
	t, err := NewSocketTrial(p, seed)
	if err != nil {
		return nil, err
	}
	defer t.Close()
	if err := t.Start(); err != nil {
		return nil, err
	}
	res := &SocketResult{Params: p, Seed: seed, Schedule: t.Schedule(), ConvergedAt: -1}
	for cycle := 0; cycle < p.Cycles; cycle++ {
		agg, _, alive, err := t.StepCycle(cycle)
		if err != nil {
			return nil, err
		}
		st := t.Stats()
		pt := pointFromAggregate(cycle, agg, alive, st.Sent, st.Dropped, 0)
		res.Points = append(res.Points, pt)
		if pt.LeafMissing == 0 && pt.PrefixMissing == 0 && cycle >= t.LastEventCycle {
			if res.ConvergedAt < 0 {
				res.ConvergedAt = cycle
			}
			if !p.KeepRunningAfterPerfect {
				break
			}
		}
	}
	res.Killed, res.Respawned = t.Killed, t.Respawned
	t.Drain(10 * time.Second)
	res.Stats = t.Stats()
	return res, nil
}

// PointFromAggregate converts a (possibly summed cross-process) exact
// measurement into the per-cycle Point all engines report — exported for
// external campaign drivers (cmd/netsim).
func PointFromAggregate(cycle int, agg truth.Aggregate, alive int, sent, dropped, wireUnits int64) Point {
	return pointFromAggregate(cycle, agg, alive, sent, dropped, wireUnits)
}

// AggregateSeries exposes the engine-agnostic per-cycle aggregation used
// by the campaign runners, for external drivers.
func AggregateSeries(series [][]Point, convergedAt []int) []AggPoint {
	return aggregateSeries(series, convergedAt)
}

// WriteAggCSV emits an aggregate series in the shared campaign CSV format.
func WriteAggCSV(w io.Writer, agg []AggPoint, sampled bool) error {
	return writeAggCSV(w, agg, sampled)
}
