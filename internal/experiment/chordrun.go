package experiment

import (
	"math/rand"

	"repro/internal/chord"
	"repro/internal/id"
	"repro/internal/peer"
	"repro/internal/sampling"
	"repro/internal/simnet"
)

// ChordParams configures a run of the Chord bootstrap baseline (ablation
// A3): the same gossip budget as the bootstrapping service, building ring
// plus fingers instead of ring plus prefix tables.
type ChordParams struct {
	N         int
	Seed      int64
	Config    chord.Config
	Drop      float64
	MaxCycles int
}

// ChordPoint is one per-cycle measurement of the Chord baseline.
type ChordPoint struct {
	Cycle int
	// FingerWrong is the proportion of finger entries that differ from
	// ground truth.
	FingerWrong float64
	// LeafMissing is the proportion of missing successor/predecessor
	// entries (against the same perfect-leaf-set rule as the bootstrap
	// service, using the chord C parameter).
	LeafMissing float64
	Sent        int64
}

// ChordResult is the outcome of a baseline run.
type ChordResult struct {
	Params      ChordParams
	Points      []ChordPoint
	ConvergedAt int // first cycle with perfect fingers everywhere, or -1
	Stats       simnet.Stats
}

// RunChord executes the Chord baseline and returns its per-cycle series.
func RunChord(p ChordParams) (*ChordResult, error) {
	if err := p.Config.Validate(); err != nil {
		return nil, err
	}
	net := simnet.New(simnet.Config{Seed: p.Seed, Drop: p.Drop})
	rng := rand.New(rand.NewSource(p.Seed + 0x51ed270))
	ids := id.Unique(p.N, p.Seed+0x2545f491)
	descs := make([]peer.Descriptor, p.N)
	for i := range descs {
		descs[i] = peer.Descriptor{ID: ids[i], Addr: net.AddNode()}
	}
	oracle := sampling.NewOracle(descs, p.Seed+0x9e3779b9)
	nodes := make([]*chord.Node, p.N)
	for i, d := range descs {
		nd, err := chord.NewNode(d, p.Config, oracle)
		if err != nil {
			return nil, err
		}
		nodes[i] = nd
		if err := net.Attach(d.Addr, chord.ProtoID, nd, p.Config.Delta, rng.Int63n(p.Config.Delta)); err != nil {
			return nil, err
		}
	}
	ring := chord.NewRing(ids)
	sorted := make([]id.ID, len(ids))
	copy(sorted, ids)
	id.SortAscending(sorted)
	pos := make(map[id.ID]int, len(sorted))
	for i, v := range sorted {
		pos[v] = i
	}

	res := &ChordResult{Params: p, ConvergedAt: -1}
	for cycle := 0; cycle < p.MaxCycles; cycle++ {
		net.Run(int64(cycle+1) * p.Config.Delta)
		wrong, total := ring.NetworkFingerErrors(nodes)
		var leafMiss, leafTot int
		for i, nd := range nodes {
			lm, lt := leafMissingAgainstRing(sorted, pos[descs[i].ID], nd)
			leafMiss += lm
			leafTot += lt
		}
		pt := ChordPoint{
			Cycle:       cycle,
			FingerWrong: float64(wrong) / float64(total),
			Sent:        net.Stats().Sent,
		}
		if leafTot > 0 {
			pt.LeafMissing = float64(leafMiss) / float64(leafTot)
		}
		res.Points = append(res.Points, pt)
		if wrong == 0 && leafMiss == 0 {
			res.ConvergedAt = cycle
			break
		}
	}
	res.Stats = net.Stats()
	return res, nil
}

// leafMissingAgainstRing checks the chord node's successor list against the
// true ring: its C/2 nearest successors and predecessors in the pre-sorted
// membership, where pos is the node's own index.
func leafMissingAgainstRing(sorted []id.ID, pos int, nd *chord.Node) (missing, total int) {
	half := nd.Leaf().Capacity() / 2
	n := len(sorted)
	for i := 1; i <= half && i < n; i++ {
		total += 2
		if !nd.Leaf().Contains(sorted[(pos+i)%n]) {
			missing++
		}
		if !nd.Leaf().Contains(sorted[(pos-i+n)%n]) {
			missing++
		}
	}
	return missing, total
}
