package experiment

import (
	"math"
	"testing"
	"time"

	"repro/internal/core"
)

// TestLiveCrossEngineEquivalence runs the identical protocol configuration
// under both execution engines — the deterministic discrete-event simnet
// (experiment.Run) and the concurrent goroutine livenet (RunLive) — with
// zero loss and zero latency, and asserts the final overlay quality
// agrees within tolerance. The protocol code is shared; what differs is
// virtual time versus wall-clock goroutine scheduling, so agreement here
// is evidence the convergence claim is not an artifact of the simulator's
// synchronous dispatch.
func TestLiveCrossEngineEquivalence(t *testing.T) {
	// Generous period and cycle budget: under -race on an oversubscribed
	// CI runner, callbacks slow ~10-20x and tick coalescing skips gossip
	// rounds, so the live side needs wall-clock slack that an idle
	// machine doesn't.
	const n = 64
	const cycles = 40
	cfg := core.DefaultConfig()

	sim, err := Run(Params{
		N:              n,
		Seed:           1,
		Config:         cfg,
		MaxCycles:      cycles,
		MeasureWorkers: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// MeasureWorkers > 1 on both engines: parallel measurement must not
	// change the reported missing-entry fractions (the simnet side is
	// additionally pinned bit-exactly in TestMeasureWorkersInvariance).
	live, err := RunLive(LiveParams{
		N:              n,
		Config:         cfg,
		Period:         20 * time.Millisecond,
		Cycles:         cycles,
		MeasureWorkers: 4,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}

	simF, liveF := sim.Final(), live.Final()
	t.Logf("simnet: converged_at=%d final=(%.4f, %.4f); livenet: converged_at=%d final=(%.4f, %.4f)",
		sim.ConvergedAt, simF.LeafMissing, simF.PrefixMissing,
		live.ConvergedAt, liveF.LeafMissing, liveF.PrefixMissing)

	if sim.ConvergedAt < 0 {
		t.Errorf("simnet run did not converge in %d cycles", cycles)
	}
	if live.ConvergedAt < 0 {
		t.Errorf("livenet run did not converge in %d cycles", cycles)
	}
	const tol = 0.02
	if simF.LeafMissing > tol || liveF.LeafMissing > tol {
		t.Errorf("final leaf missing disagrees with convergence: sim=%e live=%e (tol %v)",
			simF.LeafMissing, liveF.LeafMissing, tol)
	}
	if simF.PrefixMissing > tol || liveF.PrefixMissing > tol {
		t.Errorf("final prefix missing disagrees with convergence: sim=%e live=%e (tol %v)",
			simF.PrefixMissing, liveF.PrefixMissing, tol)
	}
	if d := math.Abs(simF.LeafMissing - liveF.LeafMissing); d > tol {
		t.Errorf("cross-engine leaf missing gap %e exceeds tolerance %v", d, tol)
	}
	if d := math.Abs(simF.PrefixMissing - liveF.PrefixMissing); d > tol {
		t.Errorf("cross-engine prefix missing gap %e exceeds tolerance %v", d, tol)
	}
	// Cycles-to-converge should be the same order: both engines run the
	// same protocol at the same Δ-relative rate. Allow generous slack for
	// wall-clock scheduling noise.
	if live.ConvergedAt >= 0 && sim.ConvergedAt >= 0 {
		if diff := live.ConvergedAt - sim.ConvergedAt; diff > 15 || diff < -15 {
			t.Errorf("cross-engine convergence cycles diverge: sim=%d live=%d", sim.ConvergedAt, live.ConvergedAt)
		}
	}
	// Both engines must account for every message they sent.
	if live.Stats.Sent != live.Stats.Delivered+live.Stats.Dropped+live.Stats.Overflow {
		t.Errorf("livenet counters not conserved: %+v", live.Stats)
	}
	if sim.Stats.Sent == 0 || live.Stats.Sent == 0 {
		t.Error("an engine recorded no traffic")
	}
}

// TestLiveCrossEngineSampledEstimator reruns the cross-engine comparison
// with the sampled measurement plane enabled on both engines: the final
// sampled means must agree within the overlap of their own confidence
// intervals (plus the scheduling tolerance the full-measurement variant
// grants). Both engines sample half the network per cycle, so agreement
// here is evidence the estimator, not just the exact measurement, is
// engine-independent.
func TestLiveCrossEngineSampledEstimator(t *testing.T) {
	const n = 96
	const cycles = 40
	const sample = n / 2
	cfg := core.DefaultConfig()

	sim, err := Run(Params{
		N:              n,
		Seed:           1,
		Config:         cfg,
		MaxCycles:      cycles,
		MeasureWorkers: 2,
		MeasureSample:  sample,
	})
	if err != nil {
		t.Fatal(err)
	}
	live, err := RunLive(LiveParams{
		N:              n,
		Config:         cfg,
		Period:         20 * time.Millisecond,
		Cycles:         cycles,
		MeasureWorkers: 2,
		MeasureSample:  sample,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}

	simF, liveF := sim.Final(), live.Final()
	t.Logf("simnet: converged_at=%d final=(%.4f ± %.4f, %.4f ± %.4f); livenet: converged_at=%d final=(%.4f ± %.4f, %.4f ± %.4f)",
		sim.ConvergedAt, simF.LeafMissing, simF.LeafCI, simF.PrefixMissing, simF.PrefixCI,
		live.ConvergedAt, liveF.LeafMissing, liveF.LeafCI, liveF.PrefixMissing, liveF.PrefixCI)

	if sim.ConvergedAt < 0 {
		t.Errorf("simnet sampled run did not converge in %d cycles", cycles)
	}
	if live.ConvergedAt < 0 {
		t.Errorf("livenet sampled run did not converge in %d cycles", cycles)
	}
	if simF.SampleSize != sample || liveF.SampleSize != sample {
		t.Errorf("final points not sampled: sim SampleSize=%d live SampleSize=%d, want %d",
			simF.SampleSize, liveF.SampleSize, sample)
	}
	// CI-overlap agreement: the engines' estimates of the same quantity
	// must be compatible given their own uncertainty claims, with the
	// same absolute scheduling tolerance as the exact variant.
	const tol = 0.02
	if d := math.Abs(simF.LeafMissing - liveF.LeafMissing); d > simF.LeafCI+liveF.LeafCI+tol {
		t.Errorf("sampled leaf estimates incompatible: |%v - %v| = %e > %e + %e + %v",
			simF.LeafMissing, liveF.LeafMissing, d, simF.LeafCI, liveF.LeafCI, tol)
	}
	if d := math.Abs(simF.PrefixMissing - liveF.PrefixMissing); d > simF.PrefixCI+liveF.PrefixCI+tol {
		t.Errorf("sampled prefix estimates incompatible: |%v - %v| = %e > %e + %e + %v",
			simF.PrefixMissing, liveF.PrefixMissing, d, simF.PrefixCI, liveF.PrefixCI, tol)
	}
}
