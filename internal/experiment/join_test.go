package experiment

import (
	"testing"

	"repro/internal/core"
	"repro/internal/id"
	"repro/internal/peer"
	"repro/internal/sampling"
	"repro/internal/simnet"
	"repro/internal/truth"
)

// TestMassiveJoin: bootstrap N nodes, then N more join simultaneously —
// the paper's motivating scenario ("massive joins to a large overlay
// network are not supported by known protocols very well"). The doubled
// network must reconverge to perfection within a few more cycles.
func TestMassiveJoin(t *testing.T) {
	p := smallParams(128, 21)
	p.MaxCycles = 50
	p.Join = Join{Cycle: 15, Count: 128}
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.ConvergedAt < 0 {
		t.Fatalf("doubled network did not reconverge; final %+v", res.Final())
	}
	if got := res.Final().Alive; got != 256 {
		t.Errorf("alive = %d, want 256", got)
	}
	// The join must be visible as a quality dip at cycle 15.
	if res.Points[15].PrefixMissing == 0 {
		t.Error("join left no trace in the metrics — suspicious")
	}
	// Reconvergence should take roughly as long as a fresh bootstrap of
	// the doubled size, not dramatically longer.
	if res.ConvergedAt > 15+25 {
		t.Errorf("reconvergence at cycle %d, want within ~25 cycles of the join", res.ConvergedAt)
	}
}

func TestJoinValidation(t *testing.T) {
	p := smallParams(16, 1)
	p.Join = Join{Cycle: -1, Count: 5}
	if err := p.Validate(); err == nil {
		t.Error("negative join cycle accepted")
	}
	p.Join = Join{Cycle: 1, Count: -5}
	if err := p.Validate(); err == nil {
		t.Error("negative join count accepted")
	}
}

// switchableSampler redirects Sample calls to the current backing
// service; the test flips it from a partition-local oracle to the global
// one when the partition heals, modelling the sampling layer's own merge.
type switchableSampler struct {
	svc sampling.Service
}

func (s *switchableSampler) Sample(n int) []peer.Descriptor { return s.svc.Sample(n) }

// TestPartitionHealing: a network bootstraps while partitioned into two
// halves — each with its own (partition-local) sampling membership — and
// each side converges on its own ring. When the partition heals and the
// sampling layers merge, the two rings must fuse into one perfect
// overlay without restarting the protocol.
func TestPartitionHealing(t *testing.T) {
	const n = 128
	cfg := core.DefaultConfig()
	net := simnet.New(simnet.Config{Seed: 31})
	ids := id.Unique(n, 32)
	descs := make([]peer.Descriptor, n)
	for i := range descs {
		descs[i] = peer.Descriptor{ID: ids[i], Addr: net.AddNode()}
	}
	var descs1, descs2 []peer.Descriptor
	for i, d := range descs {
		if i%2 == 0 {
			descs1 = append(descs1, d)
		} else {
			descs2 = append(descs2, d)
		}
	}
	oracle1 := sampling.NewOracle(descs1, 33)
	oracle2 := sampling.NewOracle(descs2, 34)
	global := sampling.NewOracle(descs, 35)
	samplers := make([]*switchableSampler, n)
	nodes := make([]*core.Node, n)
	for i, d := range descs {
		if i%2 == 0 {
			samplers[i] = &switchableSampler{svc: oracle1}
		} else {
			samplers[i] = &switchableSampler{svc: oracle2}
		}
		nd, err := core.NewNode(d, cfg, samplers[i])
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = nd
		if err := net.Attach(d.Addr, core.ProtoID, nd, cfg.Delta, int64(i)%cfg.Delta); err != nil {
			t.Fatal(err)
		}
	}
	// Cut the network into the same two halves before anything starts.
	half1 := make([]peer.Addr, 0, n/2)
	half2 := make([]peer.Addr, 0, n/2)
	for i, d := range descs {
		if i%2 == 0 {
			half1 = append(half1, d.Addr)
		} else {
			half2 = append(half2, d.Addr)
		}
	}
	net.Partition(half1, half2)
	net.Run(cfg.Delta * 20)

	// While partitioned, nobody can be globally perfect: each side
	// misses the other side's ring neighbours.
	tr, err := truth.New(ids, cfg.B, cfg.K, cfg.C)
	if err != nil {
		t.Fatal(err)
	}
	miss := 0
	for i, nd := range nodes {
		lm, _ := tr.LeafSetMissingFor(descs[i].ID, nd.Leaf())
		miss += lm
	}
	if miss == 0 {
		t.Fatal("partitioned network reached global perfection — partition ineffective")
	}

	// Heal: links reopen and the sampling layers merge.
	net.SetLinkFault(nil)
	for _, s := range samplers {
		s.svc = global
	}
	net.Run(net.Now() + cfg.Delta*25)
	for i, nd := range nodes {
		if lm, _ := tr.LeafSetMissingFor(descs[i].ID, nd.Leaf()); lm != 0 {
			t.Fatalf("node %d leaf set still imperfect %d cycles after healing", i, 25)
		}
		if pm, _ := tr.PrefixMissingFor(descs[i].ID, nd.Table()); pm != 0 {
			t.Fatalf("node %d prefix table still imperfect after healing", i)
		}
	}
}

// TestClusteredIDs: the paper argues prefix tables are "independent of ID
// distribution". Bootstrap a network whose IDs all share a long common
// prefix (a pathological, highly clustered distribution) and check it
// still converges to perfection.
func TestClusteredIDs(t *testing.T) {
	const n = 128
	ids := make([]id.ID, n)
	gen := id.NewGenerator(77)
	for i := range ids {
		// All IDs inside one 1/2^16 sliver of the space: the first
		// four hex digits are fixed.
		ids[i] = 0xABCD000000000000 | (gen.Next() >> 16)
	}
	p := smallParams(n, 78)
	p.IDs = ids
	p.MaxCycles = 40
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.ConvergedAt < 0 {
		t.Fatalf("clustered-ID network did not converge; final %+v", res.Final())
	}
}

func TestExplicitIDsValidation(t *testing.T) {
	p := smallParams(10, 1)
	p.IDs = []id.ID{1, 2, 3}
	if err := p.Validate(); err == nil {
		t.Error("mismatched IDs length accepted")
	}
}

// TestChurnEvictionImproves: the failure-detector extension
// (EvictAfterMisses) reclaims slots occupied by departed nodes, so the
// post-churn residual must be strictly better than the paper-faithful
// protocol's and the structures should approach perfection again.
func TestChurnEvictionImproves(t *testing.T) {
	base := smallParams(128, 44)
	base.MaxCycles = 60
	base.KeepRunningAfterPerfect = true
	base.Churn = Churn{Rate: 0.02, StartCycle: 2, StopCycle: 8}

	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	withEvict := base
	withEvict.Config.EvictAfterMisses = 2
	evict, err := Run(withEvict)
	if err != nil {
		t.Fatal(err)
	}
	pf, ef := plain.Final(), evict.Final()
	if ef.PrefixMissing >= pf.PrefixMissing && pf.PrefixMissing > 0 {
		t.Errorf("eviction did not improve prefix residual: %.4f vs %.4f", ef.PrefixMissing, pf.PrefixMissing)
	}
	if ef.PrefixDead > pf.PrefixDead {
		t.Errorf("eviction left more dead entries: %d vs %d", ef.PrefixDead, pf.PrefixDead)
	}
	// Residuals are noisy (tombstones expire and re-infection races the
	// sweep probes) but must be a small fraction of the plain protocol's.
	if pf.PrefixMissing > 0 && ef.PrefixMissing > pf.PrefixMissing/2 {
		t.Errorf("prefix residual with eviction %.4f, want at most half of plain %.4f",
			ef.PrefixMissing, pf.PrefixMissing)
	}
	if ef.PrefixMissing > 0.05 {
		t.Errorf("prefix residual with eviction %.4f, want < 0.05", ef.PrefixMissing)
	}
	if ef.LeafMissing > 0.05 {
		t.Errorf("leaf residual with eviction %.4f, want < 0.05", ef.LeafMissing)
	}
}
