package experiment

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/id"
	"repro/internal/livenet"
	"repro/internal/memstats"
	"repro/internal/newscast"
	"repro/internal/peer"
	"repro/internal/sampling"
	"repro/internal/truth"
)

// LiveParams configures one live campaign trial: the bootstrap protocol
// running on the concurrent goroutine runtime (package livenet) under a
// churn/failure scenario, with wall-clock cycles instead of virtual time.
// The sampling layer is the oracle — the paper's operating assumption —
// so campaigns isolate the bootstrap layer's behaviour under real
// concurrency and injected faults.
type LiveParams struct {
	// N is the network size (one goroutine-backed host per node).
	N int
	// Config holds the bootstrap protocol parameters. Delta is ignored;
	// Period is the wall-clock gossip period.
	Config core.Config
	// Period is the wall-clock gossip period Δ. Zero selects a default
	// that scales with N so laptop-class machines keep up.
	Period time.Duration
	// Cycles is the campaign length in periods.
	Cycles int
	// Drop is the initial per-message loss probability (scenarios may
	// change it mid-run).
	Drop float64
	// MinLatency and MaxLatency bound the initial delivery latency.
	MinLatency, MaxLatency time.Duration
	// InboxSize bounds each host's inbox (zero selects the livenet
	// default).
	InboxSize int
	// Scenario is the churn/failure schedule; the zero value runs
	// failure-free.
	Scenario livenet.Scenario
	// KeepRunningAfterPerfect continues to Cycles even after perfection.
	KeepRunningAfterPerfect bool
	// MeasureWorkers shards the pause-the-world measurement across this
	// many goroutines (0 = GOMAXPROCS). The reported fractions are
	// bit-identical for every value; only the paused window shrinks.
	MeasureWorkers int
	// MeasureSample, when positive and smaller than the live population,
	// measures a uniform node sample per cycle instead of the whole
	// network (see Params.MeasureSample) — under livenet it additionally
	// shrinks the pause-the-world window from O(N) to O(sample).
	MeasureSample int
	// MeasureConfidence is the two-sided confidence level of the sampled
	// estimator's intervals; 0 selects 0.95.
	MeasureConfidence float64
	// Sampler selects the sampling layer under the bootstrap nodes; the
	// zero value means oracle. With SamplerOracle every node draws
	// through its own lock-free oracle Stream; with SamplerNewscast a
	// NEWSCAST instance runs on every host and the bootstrap layer
	// samples its decentralized view through a newscast.Sampler.
	Sampler SamplerKind
	// WarmupCycles delays the bootstrap layer's start by this many
	// periods so a NEWSCAST layer can randomise its views first (ignored
	// for the oracle sampler). Warmup happens before cycle 0: measured
	// cycles always cover a running bootstrap layer.
	WarmupCycles int
	// MemStats records the live heap into LiveResult.HeapBytes after the
	// last cycle, with every host still running (see Params.MemStats).
	// A single trial's figure is directly attributable; across a
	// concurrent campaign use LiveTrialsResult.Mem, the shared tracker
	// RunLiveTrials maintains from the same per-trial samples.
	MemStats bool

	// memCampaign mirrors Params.memCampaign: set only by RunLiveTrials so
	// every trial's end-of-run heap sample also feeds the campaign peak.
	memCampaign *memstats.Campaign
}

// liveTicksPerCoreSecond is the sustained protocol-callback throughput
// one core absorbs with headroom to spare for the measurement barrier:
// each tick triggers a request and a reply, together ~100µs of leaf-set/
// prefix-table work plus scheduling, so one core saturates near 10k
// ticks/s — target about half that.
const liveTicksPerCoreSecond = 5000

// DefaultLivePeriod returns a gossip period that keeps the aggregate tick
// rate of `concurrent` simultaneous n-host trials within this machine's
// capacity. Every host ticks once per period, so the offered load is
// n*concurrent/period ticks per second; a period shorter than the cores
// can absorb just melts into inbox backlog, skipped ticks and seconds-long
// scheduler queues — measured convergence then reflects the overload, not
// the protocol. Clamped to [10ms, 10s].
func DefaultLivePeriod(n, concurrent int) time.Duration {
	if concurrent < 1 {
		concurrent = 1
	}
	cores := runtime.GOMAXPROCS(0)
	p := time.Duration(int64(n) * int64(concurrent) * int64(time.Second) / int64(cores*liveTicksPerCoreSecond))
	if p < 10*time.Millisecond {
		p = 10 * time.Millisecond
	}
	if p > 10*time.Second {
		p = 10 * time.Second
	}
	return p
}

func (p LiveParams) withDefaults(concurrent int) LiveParams {
	// Only exactly zero selects the default — a negative Period is a
	// caller bug that must reach Validate, not be silently replaced.
	if p.Period == 0 {
		p.Period = DefaultLivePeriod(p.N, concurrent)
	}
	return p
}

// Validate checks the parameters.
func (p LiveParams) Validate() error {
	if p.N < 2 {
		return errors.New("experiment: live N must be at least 2")
	}
	if p.Cycles < 1 {
		return errors.New("experiment: live Cycles must be positive")
	}
	if p.Drop < 0 || p.Drop >= 1 {
		return fmt.Errorf("experiment: live Drop = %v out of [0, 1)", p.Drop)
	}
	if p.Period < 0 {
		return errors.New("experiment: live Period must not be negative")
	}
	if p.MinLatency < 0 || p.MaxLatency < 0 {
		return errors.New("experiment: live latency bounds must not be negative")
	}
	if p.MeasureWorkers < 0 {
		return fmt.Errorf("experiment: live MeasureWorkers = %d must not be negative", p.MeasureWorkers)
	}
	if p.MeasureSample < 0 {
		return fmt.Errorf("experiment: live MeasureSample = %d must not be negative", p.MeasureSample)
	}
	if p.MeasureConfidence < 0 || p.MeasureConfidence >= 1 {
		return fmt.Errorf("experiment: live MeasureConfidence = %v out of [0, 1)", p.MeasureConfidence)
	}
	if p.WarmupCycles < 0 {
		return fmt.Errorf("experiment: live WarmupCycles = %d must not be negative", p.WarmupCycles)
	}
	return p.Config.Validate()
}

// LiveResult is the outcome of one live trial.
type LiveResult struct {
	Params LiveParams
	Seed   int64
	// Schedule is the scenario's event plan for this seed — deterministic
	// given (seed, scenario), unlike the message interleaving.
	Schedule []livenet.Event
	// Points holds one entry per completed cycle. WireUnits is always 0:
	// the livenet engine does not do descriptor-unit accounting.
	Points []Point
	// ConvergedAt is the first cycle at which both structures were
	// perfect at every live node, or -1.
	ConvergedAt int
	// Stats is the final network traffic snapshot (conserved: Sent ==
	// Delivered + Dropped + Overflow after shutdown).
	Stats livenet.Stats
	// Killed and Respawned count lifecycle events applied by the
	// scenario.
	Killed, Respawned int
	// HeapBytes is the post-GC live heap captured before shutdown; 0
	// unless Params.MemStats was set.
	HeapBytes uint64
}

// Final returns the last measured point (zero Point for an empty series).
func (res *LiveResult) Final() Point {
	if len(res.Points) == 0 {
		return Point{}
	}
	return res.Points[len(res.Points)-1]
}

// liveMember is one node of the campaign network.
type liveMember struct {
	desc  peer.Descriptor
	host  *livenet.Host
	node  *core.Node
	nc    *newscast.Protocol // non-nil under SamplerNewscast
	alive bool
}

// RunLive executes one live trial: N hosts on the concurrent runtime,
// scenario events applied at cycle boundaries, and a pause-the-world
// measurement (PauseAll/ResumeAll) of the convergence metrics each cycle.
func RunLive(p LiveParams, seed int64) (*LiveResult, error) {
	p = p.withDefaults(1)
	if err := p.Validate(); err != nil {
		return nil, err
	}

	net := livenet.New(livenet.Config{
		Seed:       seed,
		Drop:       p.Drop,
		MinLatency: p.MinLatency,
		MaxLatency: p.MaxLatency,
		InboxSize:  p.InboxSize,
	})
	defer net.Close()

	ids := id.Unique(p.N, seed+0x11)
	descs := make([]peer.Descriptor, p.N)
	members := make([]*liveMember, p.N)
	for i := 0; i < p.N; i++ {
		h := net.AddHost()
		descs[i] = peer.Descriptor{ID: ids[i], Addr: h.Addr()}
		members[i] = &liveMember{desc: descs[i], host: h, alive: true}
	}
	oracle := sampling.NewOracle(descs, seed+0x1234)
	rng := rand.New(rand.NewSource(seed + 0x9e3779b9))
	measRNG := rand.New(rand.NewSource(seed + 0x5ca1ab1e))
	// One arena per trial, shared by every host's node. Blocks are never
	// released during the run: a killed host keeps its protocol state for
	// Respawn (the crash-recovery model), so its blocks stay owned by the
	// node for the whole trial. The arena's win here is batching: ~3 block
	// allocations per node become one chunk allocation per 256 blocks.
	cfg := p.Config
	cfg.Arena = peer.NewDescriptorArena()
	warmup := time.Duration(0)
	if p.Sampler == SamplerNewscast {
		warmup = time.Duration(p.WarmupCycles) * p.Period
	}
	for i, m := range members {
		// Each node samples through its own handle — an oracle Stream
		// or a newscast Sampler — so the per-tick sample path never
		// takes a shared lock: concurrent hosts do not contend.
		var svc sampling.Service
		if p.Sampler == SamplerNewscast {
			m.nc = newscast.New(m.desc, oracle.Sample(5), newscast.DefaultViewSize)
			ncOffset := time.Duration(rng.Int63n(int64(p.Period)))
			if err := m.host.Attach(newscast.ProtoID, m.nc, p.Period, ncOffset); err != nil {
				return nil, fmt.Errorf("attach newscast: %w", err)
			}
			svc = newscast.NewSampler(m.nc, seed+0x51*int64(i+1))
		} else {
			svc = oracle.Stream(int64(i))
		}
		node, err := core.NewNode(m.desc, cfg, svc)
		if err != nil {
			return nil, err
		}
		m.node = node
		offset := warmup + time.Duration(rng.Int63n(int64(p.Period)))
		if err := m.host.Attach(core.ProtoID, node, p.Period, offset); err != nil {
			return nil, fmt.Errorf("attach bootstrap: %w", err)
		}
	}

	schedule := p.Scenario.Events(seed, p.N, p.Cycles)
	byCycle := make(map[int][]livenet.Event, len(schedule))
	lastEvent := -1
	for _, e := range schedule {
		byCycle[e.Cycle] = append(byCycle[e.Cycle], e)
		if e.Cycle > lastEvent {
			lastEvent = e.Cycle
		}
	}

	if err := net.Start(); err != nil {
		return nil, err
	}
	// Let the NEWSCAST layer gossip alone through the warmup window; the
	// bootstrap bindings' offsets already delay their first tick past it.
	if warmup > 0 {
		time.Sleep(warmup)
	}

	// The trial's ground-truth oracle: built once, then patched with the
	// kill/respawn deltas of each cycle's scenario events. Membership
	// only changes via applyLiveEvent (same goroutine), so the patch
	// happens before pausing the world — the stop-the-world window then
	// covers only the actual state inspection, not the truth derivation.
	tr, err := truth.New(ids, p.Config.B, p.Config.K, p.Config.C)
	if err != nil {
		return nil, err
	}

	res := &LiveResult{Params: p, Seed: seed, Schedule: schedule, ConvergedAt: -1}
	var measBuf []truth.Member
	for cycle := 0; cycle < p.Cycles; cycle++ {
		for _, e := range byCycle[cycle] {
			added, removed, err := applyLiveEvent(net, members, oracle, rng, e, res)
			if err != nil {
				return nil, err
			}
			if len(added) > 0 || len(removed) > 0 {
				if err := tr.Update(added, removed); err != nil {
					return nil, err
				}
			}
		}
		time.Sleep(p.Period)

		net.PauseAll()
		ms := measBuf[:0]
		alive := 0
		for _, m := range members {
			if !m.alive {
				continue
			}
			alive++
			ms = append(ms, truth.Member{Self: m.desc.ID, Leaf: m.node.Leaf(), Table: m.node.Table()})
		}
		measBuf = ms
		var pt Point
		confirmed := true
		st := net.Snapshot()
		if p.MeasureSample > 0 {
			sa := tr.MeasureSampleConf(ms, p.MeasureSample, p.MeasureConfidence, measRNG, p.MeasureWorkers)
			pt = pointFromSampleAggregate(cycle, sa, alive, st.Sent, st.Dropped, 0)
			if pt.LeafMissing == 0 && pt.PrefixMissing == 0 && pt.SampleSize > 0 {
				// An all-perfect sample can simply have missed every
				// imperfect node; confirm with one exact measurement while
				// the world is still paused before the convergence check
				// below may trust it. When the exact measurement disagrees
				// it supersedes the sample as the reported point (SampleSize
				// == 0 marks it exact): the full measurement is already paid
				// for, and an optimistic estimate the run itself refuted
				// would misreport the convergence tail.
				agg := tr.MeasureAll(ms, p.MeasureWorkers)
				confirmed = agg.LeafMissing == 0 && agg.PrefixMissing == 0
				if !confirmed {
					pt = pointFromAggregate(cycle, agg, alive, st.Sent, st.Dropped, 0)
				}
			}
		} else {
			agg := tr.MeasureAll(ms, p.MeasureWorkers)
			pt = pointFromAggregate(cycle, agg, alive, st.Sent, st.Dropped, 0)
		}
		net.ResumeAll()

		res.Points = append(res.Points, pt)
		// Events apply at the start of their cycle and measurement runs
		// at its end, so a perfect measurement at the last event's own
		// cycle already reflects the fully applied fault plan.
		if pt.LeafMissing == 0 && pt.PrefixMissing == 0 && confirmed && cycle >= lastEvent {
			if res.ConvergedAt < 0 {
				res.ConvergedAt = cycle
			}
			if !p.KeepRunningAfterPerfect {
				break
			}
		}
	}
	if p.MemStats {
		if p.memCampaign != nil {
			res.HeapBytes = p.memCampaign.Sample()
		} else {
			res.HeapBytes = memstats.HeapAlloc()
		}
	}
	net.Close()
	res.Stats = net.Snapshot()
	return res, nil
}

// applyLiveEvent executes one scenario event; it returns the membership
// delta (IDs that joined and left) for the trial's ground-truth oracle.
func applyLiveEvent(net *livenet.Network, members []*liveMember, oracle *sampling.Oracle, rng *rand.Rand, e livenet.Event, res *LiveResult) (added, removed []id.ID, err error) {
	switch e.Op {
	case livenet.OpKill:
		var alive []*liveMember
		for _, m := range members {
			if m.alive {
				alive = append(alive, m)
			}
		}
		k := int(e.Frac * float64(len(alive)))
		if k == 0 && e.Frac > 0 {
			k = 1
		}
		// Never kill the whole network: keep at least two hosts so the
		// survivors still have someone to gossip with.
		if max := len(alive) - 2; k > max {
			k = max
		}
		if k <= 0 {
			return nil, nil, nil
		}
		perm := rng.Perm(len(alive))
		// Kill the wave in parallel: each Kill blocks until the victim's
		// goroutine exits, and paying those scheduler round-trips serially
		// makes a 1000-host wave take minutes on a loaded machine.
		var wg sync.WaitGroup
		for i := 0; i < k; i++ {
			victim := alive[perm[i]]
			victim.alive = false
			oracle.Remove(victim.desc.ID)
			res.Killed++
			removed = append(removed, victim.desc.ID)
			wg.Add(1)
			go func() {
				defer wg.Done()
				victim.host.Kill()
			}()
		}
		wg.Wait()
		return nil, removed, nil
	case livenet.OpRespawn:
		for _, m := range members {
			if m.alive {
				continue
			}
			if err := m.host.Respawn(); err != nil {
				return added, nil, err
			}
			m.alive = true
			oracle.Add(m.desc)
			res.Respawned++
			added = append(added, m.desc.ID)
		}
		return added, nil, nil
	case livenet.OpPartition:
		split := peer.Addr(e.Split)
		net.SetPartition(func(from, to peer.Addr) bool {
			return (from < split) != (to < split)
		})
		return nil, nil, nil
	case livenet.OpHeal:
		net.SetPartition(nil)
		return nil, nil, nil
	case livenet.OpSetDrop:
		v := e.Value
		if v < 0 {
			v = res.Params.Drop // restore the configured baseline
		}
		net.SetDrop(v)
		return nil, nil, nil
	case livenet.OpSetLatency:
		min, max := e.Min, e.Max
		if min < 0 || max < 0 {
			min, max = res.Params.MinLatency, res.Params.MaxLatency
		}
		net.SetLatency(min, max)
		return nil, nil, nil
	default:
		return nil, nil, fmt.Errorf("experiment: unknown scenario op %v", e.Op)
	}
}

// LiveTrialsResult is the outcome of a multi-trial live campaign.
type LiveTrialsResult struct {
	// Params is the shared configuration.
	Params LiveParams
	// Seeds are the per-trial seeds, in input order.
	Seeds []int64
	// Trials holds one full LiveResult per seed, index-aligned with
	// Seeds.
	Trials []*LiveResult
	// Agg is the per-cycle aggregate series (see TrialsResult.Agg).
	Agg []AggPoint
	// Workers is the resolved worker-pool size the trials actually ran on.
	Workers int
	// Mem is the campaign heap tracker (see TrialsResult.Mem). Nil unless
	// Params.MemStats was set.
	Mem *memstats.Campaign
}

// RunLiveTrials runs one independent live trial per seed, fanning the
// trials across a pool of workers goroutines (workers < 1 means
// GOMAXPROCS), and aggregates the per-cycle convergence series. Unlike
// RunTrials the per-trial series are wall-clock concurrent executions:
// the fault schedules are deterministic per seed, the interleavings are
// not, which is exactly the point of the campaign.
func RunLiveTrials(p LiveParams, seeds []int64, workers int) (*LiveTrialsResult, error) {
	if len(seeds) == 0 {
		return nil, errors.New("experiment: RunLiveTrials needs at least one seed")
	}
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(seeds) {
		workers = len(seeds)
	}
	// Resolve the default period against the number of trials that will
	// actually run at once, and share it across all trials so their
	// per-cycle series aggregate like with like.
	p = p.withDefaults(workers)
	if err := p.Validate(); err != nil {
		return nil, err
	}
	// Shared campaign tracker (see RunTrials): every trial samples the
	// heap before its shutdown and the tracker keeps the high-water mark.
	if p.MemStats {
		p.memCampaign = memstats.StartCampaign()
	}

	results := make([]*LiveResult, len(seeds))
	errs := make([]error, len(seeds))
	runPool(len(seeds), workers, func(i int) {
		results[i], errs[i] = RunLive(p, seeds[i])
	})

	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("live trial %d (seed %d): %w", i, seeds[i], err)
		}
	}
	series := make([][]Point, len(results))
	conv := make([]int, len(results))
	for i, r := range results {
		series[i] = r.Points
		conv[i] = r.ConvergedAt
	}
	return &LiveTrialsResult{
		Params:  p,
		Seeds:   seeds,
		Trials:  results,
		Agg:     aggregateSeries(series, conv),
		Workers: workers,
		Mem:     p.memCampaign,
	}, nil
}

// ConvergedTrials counts trials that reached perfection.
func (tr *LiveTrialsResult) ConvergedTrials() int {
	n := 0
	for _, t := range tr.Trials {
		if t.ConvergedAt >= 0 {
			n++
		}
	}
	return n
}

// TotalStats sums the traffic counters across trials.
func (tr *LiveTrialsResult) TotalStats() livenet.Stats {
	var total livenet.Stats
	for _, t := range tr.Trials {
		total.Sent += t.Stats.Sent
		total.Dropped += t.Stats.Dropped
		total.Delivered += t.Stats.Delivered
		total.Overflow += t.Stats.Overflow
	}
	return total
}

// WriteCSV emits the aggregate per-cycle series with a header.
func (tr *LiveTrialsResult) WriteCSV(w io.Writer) error {
	return writeAggCSV(w, tr.Agg, tr.Params.MeasureSample > 0)
}
