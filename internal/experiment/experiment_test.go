package experiment

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/chord"
	"repro/internal/core"
	"repro/internal/id"
	"repro/internal/peer"
	"repro/internal/sampling"
	"repro/internal/simnet"
	"repro/internal/truth"
)

func smallParams(n int, seed int64) Params {
	return Params{
		N:         n,
		Seed:      seed,
		Config:    core.DefaultConfig(),
		MaxCycles: 40,
	}
}

func TestValidate(t *testing.T) {
	if err := smallParams(10, 1).Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	bad := []Params{
		{N: 1, Config: core.DefaultConfig(), MaxCycles: 10},
		{N: 10, Config: core.DefaultConfig(), MaxCycles: 0},
		{N: 10, Config: core.DefaultConfig(), MaxCycles: 10, Drop: 1.0},
		{N: 10, Config: core.DefaultConfig(), MaxCycles: 10, Drop: -0.1},
		{N: 10, Config: core.Config{}, MaxCycles: 10},
		{N: 10, Config: core.DefaultConfig(), MaxCycles: 10, Churn: Churn{Rate: 2}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
}

func TestParseSampler(t *testing.T) {
	if s, err := ParseSampler("oracle"); err != nil || s != SamplerOracle {
		t.Error("oracle parse failed")
	}
	if s, err := ParseSampler("newscast"); err != nil || s != SamplerNewscast {
		t.Error("newscast parse failed")
	}
	if _, err := ParseSampler("bogus"); err == nil {
		t.Error("bogus sampler accepted")
	}
	if SamplerOracle.String() != "oracle" || SamplerNewscast.String() != "newscast" {
		t.Error("String mismatch")
	}
	if SamplerKind(0).String() != "unknown" {
		t.Error("zero SamplerKind should print unknown")
	}
}

// TestConvergesNoFailures is the miniature of Figure 3: a few hundred nodes
// converge to perfect leaf sets and prefix tables in well under 30 cycles.
func TestConvergesNoFailures(t *testing.T) {
	res, err := Run(smallParams(256, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.ConvergedAt < 0 {
		t.Fatalf("no convergence within %d cycles; final %+v", res.Params.MaxCycles, res.Final())
	}
	if res.ConvergedAt > 25 {
		t.Errorf("converged at cycle %d, expected well under 25 at N=256", res.ConvergedAt)
	}
	final := res.Final()
	if final.LeafMissing != 0 || final.PrefixMissing != 0 {
		t.Errorf("final point not perfect: %+v", final)
	}
	if final.LeafPerfect != 256 || final.PrefixPerfect != 256 {
		t.Errorf("perfect node counts %d/%d, want 256/256", final.LeafPerfect, final.PrefixPerfect)
	}
}

// TestMonotoneImprovement: missing proportions must decay (roughly)
// monotonically in a failure-free run.
func TestMonotoneImprovement(t *testing.T) {
	res, err := Run(smallParams(128, 2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].LeafMissing > res.Points[i-1].LeafMissing+1e-12 {
			t.Errorf("leaf missing increased at cycle %d: %v -> %v",
				i, res.Points[i-1].LeafMissing, res.Points[i].LeafMissing)
		}
		if res.Points[i].PrefixMissing > res.Points[i-1].PrefixMissing+1e-12 {
			t.Errorf("prefix missing increased at cycle %d: %v -> %v",
				i, res.Points[i-1].PrefixMissing, res.Points[i].PrefixMissing)
		}
	}
}

// TestConvergesUnderDrop is the miniature of Figure 4: with 20% uniform
// message drop convergence still completes, only slower.
func TestConvergesUnderDrop(t *testing.T) {
	clean, err := Run(smallParams(192, 3))
	if err != nil {
		t.Fatal(err)
	}
	p := smallParams(192, 3)
	p.Drop = 0.2
	p.MaxCycles = 60
	lossy, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if lossy.ConvergedAt < 0 {
		t.Fatalf("no convergence under 20%% drop; final %+v", lossy.Final())
	}
	if lossy.ConvergedAt < clean.ConvergedAt {
		t.Errorf("lossy run converged faster (%d) than clean (%d)?", lossy.ConvergedAt, clean.ConvergedAt)
	}
	// The paper: convergence is slowed proportionally, not broken.
	if lossy.ConvergedAt > clean.ConvergedAt*3 {
		t.Errorf("lossy convergence %d too slow vs clean %d", lossy.ConvergedAt, clean.ConvergedAt)
	}
}

func TestDeterministicRuns(t *testing.T) {
	a, err := Run(smallParams(96, 7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(smallParams(96, 7))
	if err != nil {
		t.Fatal(err)
	}
	if a.ConvergedAt != b.ConvergedAt || len(a.Points) != len(b.Points) {
		t.Fatalf("runs diverged: %d/%d cycles vs %d/%d", a.ConvergedAt, len(a.Points), b.ConvergedAt, len(b.Points))
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatalf("point %d diverged: %+v vs %+v", i, a.Points[i], b.Points[i])
		}
	}
	c, err := Run(smallParams(96, 8))
	if err != nil {
		t.Fatal(err)
	}
	if c.Stats == a.Stats {
		t.Error("different seeds produced identical traffic, suspicious")
	}
}

// TestNewscastSampler runs the full two-layer stack: NEWSCAST warms up,
// then bootstrap runs over it.
func TestNewscastSampler(t *testing.T) {
	p := smallParams(128, 4)
	p.Sampler = SamplerNewscast
	p.WarmupCycles = 10
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.ConvergedAt < 0 {
		t.Fatalf("two-layer stack did not converge; final %+v", res.Final())
	}
}

// TestChurnRecovery: churn during cycles 2-8. The paper's protocol has no
// liveness detection (it is designed to complete within a short window), so
// descriptors of departed nodes linger and full perfection is not
// guaranteed; the claim is that quality stays comparable to ordinary DHT
// maintenance under churn. We assert the damage is bounded and that the
// structures substantially converge after churn stops.
func TestChurnRecovery(t *testing.T) {
	p := smallParams(128, 5)
	p.MaxCycles = 60
	p.KeepRunningAfterPerfect = true
	p.Churn = Churn{Rate: 0.02, StartCycle: 2, StopCycle: 8}
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	final := res.Final()
	if final.Alive != 128 {
		t.Errorf("alive = %d, want 128 (replacement churn keeps N constant)", final.Alive)
	}
	if final.LeafMissing > 0.15 {
		t.Errorf("leaf missing %.3f after churn stopped, want < 0.15", final.LeafMissing)
	}
	// Slots filled by now-departed nodes cannot be reclaimed without a
	// failure detector, so the residual is bounded by the cumulative
	// churn volume (6 cycles x 2% = 12% of membership replaced).
	if final.PrefixMissing > 0.12 {
		t.Errorf("prefix missing %.3f after churn stopped, want < cumulative churn 0.12", final.PrefixMissing)
	}
	// Quality must improve after churn stops.
	during := res.Points[7]
	if final.LeafMissing > during.LeafMissing {
		t.Errorf("leaf missing did not improve after churn: %.3f -> %.3f", during.LeafMissing, final.LeafMissing)
	}
}

// TestAblationFeedbackSlower: without prefix feedback the prefix tables
// must converge strictly slower (or not at all within budget) — the
// paper's "mutually boost each other" claim.
func TestAblationFeedbackSlower(t *testing.T) {
	full, err := Run(smallParams(256, 6))
	if err != nil {
		t.Fatal(err)
	}
	p := smallParams(256, 6)
	p.Config.DisablePrefixFeedback = true
	p.MaxCycles = full.Params.MaxCycles
	ablated, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	fullAt := full.ConvergedAt
	ablatedAt := ablated.ConvergedAt
	if ablatedAt >= 0 && ablatedAt <= fullAt {
		t.Errorf("ablated protocol converged at %d, full at %d — feedback gave no benefit", ablatedAt, fullAt)
	}
}

func TestWriteCSV(t *testing.T) {
	res, err := Run(smallParams(64, 9))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(res.Points)+1 {
		t.Fatalf("csv has %d lines, want %d", len(lines), len(res.Points)+1)
	}
	if !strings.HasPrefix(lines[0], "cycle,leaf_missing") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[len(lines)-1], "0.000000e+00") {
		t.Errorf("final row should contain zeros: %q", lines[len(lines)-1])
	}
}

func TestKeepRunningAfterPerfect(t *testing.T) {
	p := smallParams(64, 10)
	p.MaxCycles = 30
	p.KeepRunningAfterPerfect = true
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 30 {
		t.Errorf("points = %d, want 30 (run to MaxCycles)", len(res.Points))
	}
	if res.ConvergedAt < 0 {
		t.Error("should still record convergence cycle")
	}
	// Perfection must be stable in a failure-free network.
	for _, pt := range res.Points[res.ConvergedAt:] {
		if pt.LeafMissing != 0 || pt.PrefixMissing != 0 {
			t.Errorf("perfection regressed at cycle %d: %+v", pt.Cycle, pt)
		}
	}
}

func TestFinalEmpty(t *testing.T) {
	var res Result
	if res.Final() != (Point{}) {
		t.Error("empty result should yield zero point")
	}
}

// TestChordBaselineRun exercises the Chord baseline runner (ablation A3).
func TestChordBaselineRun(t *testing.T) {
	res, err := RunChord(ChordParams{
		N:         128,
		Seed:      11,
		Config:    chord.DefaultConfig(),
		MaxCycles: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ConvergedAt < 0 {
		t.Fatalf("chord baseline did not converge; final %+v", res.Points[len(res.Points)-1])
	}
	// Finger error must decay monotonically in a failure-free run.
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].FingerWrong > res.Points[i-1].FingerWrong+1e-12 {
			t.Errorf("finger error increased at cycle %d", i)
		}
	}
}

func TestChordBaselineValidation(t *testing.T) {
	if _, err := RunChord(ChordParams{N: 10, Config: chord.Config{}, MaxCycles: 5}); err == nil {
		t.Error("invalid chord config accepted")
	}
}

// TestMessageSizeBounded validates the paper's cost claim: messages are
// the c closest entries plus a prefix part "bounded by the size of the
// full prefix table, and usually ... smaller in practice". The mean
// message size must sit far below the hard bound c + tableCapacity + 1.
func TestMessageSizeBounded(t *testing.T) {
	p := smallParams(256, 12)
	p.KeepRunningAfterPerfect = true
	p.MaxCycles = 30
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	final := res.Final()
	mean := float64(final.WireUnits) / float64(final.Sent)
	cfg := p.Config
	hardBound := float64(cfg.C + cfg.TableCapacity() + 1)
	if mean >= hardBound {
		t.Fatalf("mean message size %.1f exceeds hard bound %.1f", mean, hardBound)
	}
	// "Usually much smaller": the union is leaf + cr samples + table
	// (~250 at this N), not the 789-entry worst case.
	if mean > hardBound/2 {
		t.Errorf("mean message size %.1f not 'much smaller' than bound %.1f", mean, hardBound)
	}
	if mean < float64(cfg.C) {
		t.Errorf("mean message size %.1f below c=%d — messages suspiciously empty", mean, cfg.C)
	}
	t.Logf("mean message size: %.1f descriptor units (bound %.0f)", mean, hardBound)
}

// TestConvergesWithLatency: the paper's cycle model assumes messages
// arrive within the Δ they were sent in. With latencies up to a full Δ
// (answers often land one cycle late), the protocol must still converge.
func TestConvergesWithLatency(t *testing.T) {
	const n = 128
	net := simnet.New(simnet.Config{Seed: 61, MinLatency: 2, MaxLatency: 10})
	ids := id.Unique(n, 62)
	descs := make([]peer.Descriptor, n)
	for i := range descs {
		descs[i] = peer.Descriptor{ID: ids[i], Addr: net.AddNode()}
	}
	oracle := sampling.NewOracle(descs, 63)
	cfg := core.DefaultConfig() // Delta = 10 == MaxLatency
	nodes := make([]*core.Node, n)
	for i, d := range descs {
		nd, err := core.NewNode(d, cfg, oracle)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = nd
		if err := net.Attach(d.Addr, core.ProtoID, nd, cfg.Delta, int64(i)%cfg.Delta); err != nil {
			t.Fatal(err)
		}
	}
	net.Run(cfg.Delta * 40)
	tr, err := truth.New(ids, cfg.B, cfg.K, cfg.C)
	if err != nil {
		t.Fatal(err)
	}
	for i, nd := range nodes {
		if lm, _ := tr.LeafSetMissingFor(descs[i].ID, nd.Leaf()); lm != 0 {
			t.Fatalf("node %d leaf set imperfect after 40 cycles with latency", i)
		}
		if pm, _ := tr.PrefixMissingFor(descs[i].ID, nd.Table()); pm != 0 {
			t.Fatalf("node %d prefix table imperfect after 40 cycles with latency", i)
		}
	}
}
