package dht

import (
	"math/rand"
	"testing"

	"repro/internal/id"
	"repro/internal/peer"
)

// TestJoinRevivesNode: Join is the inverse of Remove — the rejoined node
// counts live again, its neighbourhood re-adopts it, and keys rooted in
// its range land on it once more.
func TestJoinRevivesNode(t *testing.T) {
	const n = 128
	c, descs := perfectCluster(t, n, 3, 71)
	rng := rand.New(rand.NewSource(72))

	victim := descs[rng.Intn(n)]
	c.Remove(victim.Addr)
	if c.Len() != n-1 {
		t.Fatalf("live = %d after remove, want %d", c.Len(), n-1)
	}
	c.Join(victim.Addr)
	if c.Len() != n {
		t.Fatalf("live = %d after join, want %d", c.Len(), n)
	}
	// Idempotent on a live node.
	c.Join(victim.Addr)
	if c.Len() != n {
		t.Fatalf("live = %d after double join, want %d", c.Len(), n)
	}

	// The rejoined node serves: keys written from it and keys rooted at it
	// are readable cluster-wide.
	for i := 0; i < 50; i++ {
		key := id.ID(rng.Uint64())
		if _, err := c.Put(victim.Addr, key, []byte{byte(i)}); err != nil {
			t.Fatalf("put via rejoined node: %v", err)
		}
		got, err := c.Get(descs[rng.Intn(n)].Addr, key)
		if err != nil || len(got) != 1 || got[0] != byte(i) {
			t.Fatalf("get of key written via rejoined node: %v %v", got, err)
		}
	}
}

// TestJoinFlashCrowd: a quarter of the cluster sits out as standbys, keys
// preload on the live rump, and then every standby joins at once. The
// flash crowd must not lose readability of the preloaded keys — joins
// shift key ownership, so migration has to chase every root change — and
// the joiners must end up holding keys.
func TestJoinFlashCrowd(t *testing.T) {
	const n, standby, nkeys = 256, 64, 300
	c, descs := perfectCluster(t, n, 3, 73)
	rng := rand.New(rand.NewSource(74))
	for i := n - standby; i < n; i++ {
		c.Remove(descs[i].Addr)
	}
	if c.Len() != n-standby {
		t.Fatalf("live = %d, want %d", c.Len(), n-standby)
	}

	keys := make([]id.ID, nkeys)
	for i := range keys {
		keys[i] = id.ID(rng.Uint64())
		from := descs[rng.Intn(n-standby)].Addr
		if _, err := c.Put(from, keys[i], []byte{byte(i), byte(i >> 8)}); err != nil {
			t.Fatalf("preload put %d: %v", i, err)
		}
	}

	for i := n - standby; i < n; i++ {
		c.Join(descs[i].Addr)
	}
	if c.Len() != n {
		t.Fatalf("live = %d after flash crowd, want %d", c.Len(), n)
	}

	joined := 0
	for i := n - standby; i < n; i++ {
		slot, _ := c.slotOf(descs[i].Addr)
		if c.nodes[slot].Keys() > 0 {
			joined++
		}
	}
	if joined == 0 {
		t.Fatal("no joiner received any migrated keys")
	}
	for i, key := range keys {
		from := descs[rng.Intn(n)].Addr
		got, err := c.Get(from, key)
		if err != nil {
			t.Fatalf("key %d unreadable after flash crowd: %v", i, err)
		}
		if len(got) != 2 || got[0] != byte(i) || got[1] != byte(i>>8) {
			t.Fatalf("key %d corrupted after flash crowd: %v", i, got)
		}
	}
}

// TestJoinUnknownAddr: joining an address the cluster never knew is a
// no-op, not a panic.
func TestJoinUnknownAddr(t *testing.T) {
	c, _ := perfectCluster(t, 16, 3, 75)
	c.Join(peer.Addr(9999))
	if c.Len() != 16 {
		t.Fatalf("live = %d, want 16", c.Len())
	}
}
