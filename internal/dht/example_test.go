package dht_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dht"
	"repro/internal/id"
	"repro/internal/overlay/pastry"
	"repro/internal/peer"
)

// Example stores and retrieves a value on a small cluster with perfect
// routing state, surviving the crash of the key's root node.
func Example() {
	const n = 64
	ids := id.Unique(n, 3)
	descs := make([]peer.Descriptor, n)
	for i, v := range ids {
		descs[i] = peer.Descriptor{ID: v, Addr: peer.Addr(i)}
	}
	cfg := core.DefaultConfig()
	nodes := make([]*dht.Node, n)
	for i, d := range descs {
		ls := core.NewLeafSet(d.ID, cfg.C)
		ls.Update(descs)
		pt := core.NewPrefixTable(d.ID, cfg.B, cfg.K)
		pt.AddAll(descs)
		nodes[i] = dht.NewNode(pastry.New(d, ls, pt, cfg.B))
	}
	cluster := dht.NewCluster(nodes, 3)

	key := id.ID(0xFEEDFACE00000000)
	stored, err := cluster.Put(descs[0].Addr, key, []byte("hello"))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("replicas:", len(stored))

	cluster.Remove(stored[0]) // crash the root
	v, err := cluster.Get(descs[5].Addr, key)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("after root crash:", string(v))
	// Output:
	// replicas: 3
	// after root crash: hello
}
