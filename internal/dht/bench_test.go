package dht

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/id"
	"repro/internal/overlay/pastry"
	"repro/internal/peer"
)

// buildRouters constructs perfectly bootstrapped routers (shared by the
// flat cluster and the legacy baseline).
func buildRouters(tb testing.TB, n int, seed int64) ([]*pastry.Router, []peer.Descriptor) {
	tb.Helper()
	ids := id.Unique(n, seed)
	descs := make([]peer.Descriptor, n)
	for i, v := range ids {
		descs[i] = peer.Descriptor{ID: v, Addr: peer.Addr(i)}
	}
	cfg := core.DefaultConfig()
	routers := make([]*pastry.Router, n)
	for i, d := range descs {
		ls := core.NewLeafSet(d.ID, cfg.C)
		ls.Update(descs)
		pt := core.NewPrefixTable(d.ID, cfg.B, cfg.K)
		pt.AddAll(descs)
		routers[i] = pastry.New(d, ls, pt, cfg.B)
	}
	return routers, descs
}

// benchKeys pre-generates the key and origin streams so benchmark loops
// measure DHT work, not RNG work.
func benchKeys(n, count int, seed int64) ([]id.ID, []peer.Addr) {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]id.ID, count)
	origins := make([]peer.Addr, count)
	for i := range keys {
		keys[i] = id.ID(rng.Uint64())
		origins[i] = peer.Addr(rng.Intn(n))
	}
	return keys, origins
}

const benchValSize = 64

// BenchmarkDHTOps is the PR 8 serving-plane gate: ops/sec of the flat
// concurrent cluster vs the pre-PR synchronous baseline at n=4096, and
// the 0 allocs/op guarantee on the Get fast path. op=mixed is 90% get /
// 10% put over a pre-loaded working set.
func BenchmarkDHTOps(b *testing.B) {
	const n = 4096
	const working = 1024
	keys, origins := benchKeys(n, working, 31)
	val := make([]byte, benchValSize)
	for i := range val {
		val[i] = byte(i)
	}

	preload := func(put func(from peer.Addr, key id.ID) error) {
		for i := 0; i < working; i++ {
			if err := put(origins[i], keys[i]); err != nil {
				b.Fatalf("preload: %v", err)
			}
		}
	}

	b.Run("impl=legacy/op=get", func(b *testing.B) {
		routers, _ := buildRouters(b, n, 32)
		c := newLegacyCluster(routers, DefaultReplicas)
		preload(func(from peer.Addr, key id.ID) error {
			_, err := c.Put(from, key, val)
			return err
		})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			j := i % working
			if _, err := c.Get(origins[j], keys[j]); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("impl=legacy/op=mixed", func(b *testing.B) {
		routers, _ := buildRouters(b, n, 32)
		c := newLegacyCluster(routers, DefaultReplicas)
		preload(func(from peer.Addr, key id.ID) error {
			_, err := c.Put(from, key, val)
			return err
		})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			j := i % working
			if i%10 == 9 {
				if _, err := c.Put(origins[j], keys[j], val); err != nil {
					b.Fatal(err)
				}
			} else if _, err := c.Get(origins[j], keys[j]); err != nil {
				b.Fatal(err)
			}
		}
	})

	newFlat := func(b *testing.B) *Cluster {
		routers, _ := buildRouters(b, n, 32)
		nodes := make([]*Node, len(routers))
		for i, r := range routers {
			nodes[i] = NewNode(r)
		}
		c := NewCluster(nodes, DefaultReplicas)
		preload(func(from peer.Addr, key id.ID) error {
			var st OpStats
			return c.PutStats(from, key, val, &st)
		})
		return c
	}

	b.Run("impl=flat/op=get", func(b *testing.B) {
		c := newFlat(b)
		scratch := make([]byte, 0, benchValSize)
		var st OpStats
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			j := i % working
			out, err := c.GetStats(scratch[:0], origins[j], keys[j], &st)
			if err != nil {
				b.Fatal(err)
			}
			scratch = out[:0]
		}
	})

	b.Run("impl=flat/op=mixed", func(b *testing.B) {
		c := newFlat(b)
		scratch := make([]byte, 0, benchValSize)
		var st OpStats
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			j := i % working
			if i%10 == 9 {
				if err := c.PutStats(origins[j], keys[j], val, &st); err != nil {
					b.Fatal(err)
				}
			} else {
				out, err := c.GetStats(scratch[:0], origins[j], keys[j], &st)
				if err != nil {
					b.Fatal(err)
				}
				scratch = out[:0]
			}
		}
	})

	b.Run("impl=flat-parallel/op=mixed", func(b *testing.B) {
		c := newFlat(b)
		var ctr atomic.Uint64
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			scratch := make([]byte, 0, benchValSize)
			var st OpStats
			for pb.Next() {
				i := int(ctr.Add(1))
				j := i % working
				if i%10 == 9 {
					if err := c.PutStats(origins[j], keys[j], val, &st); err != nil {
						b.Fatal(err)
					}
				} else {
					out, err := c.GetStats(scratch[:0], origins[j], keys[j], &st)
					if err != nil {
						b.Fatal(err)
					}
					scratch = out[:0]
				}
			}
		})
	})
}

// BenchmarkClusterRemove pins the O(changes) churn claim: the flat
// cluster's per-departure cost must not scale with cluster size, while
// the legacy baseline rebuilds a full mesh per departure.
func BenchmarkClusterRemove(b *testing.B) {
	for _, impl := range []string{"flat", "legacy"} {
		for _, n := range []int{2048, 8192} {
			b.Run(fmt.Sprintf("impl=%s/n=%d", impl, n), func(b *testing.B) {
				// Remove at most half the cluster per instance, rebuilding
				// (off the clock) when exhausted so every removal sees a
				// healthy population.
				budget := n / 2
				k := budget
				var fc *Cluster
				var lc *legacyCluster
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if k == budget {
						b.StopTimer()
						routers, _ := buildRouters(b, n, 33)
						if impl == "flat" {
							nodes := make([]*Node, len(routers))
							for i, r := range routers {
								nodes[i] = NewNode(r)
							}
							fc = NewCluster(nodes, DefaultReplicas)
						} else {
							lc = newLegacyCluster(routers, DefaultReplicas)
						}
						k = 0
						b.StartTimer()
					}
					if impl == "flat" {
						fc.Remove(peer.Addr(k))
					} else {
						lc.Remove(peer.Addr(k))
					}
					k++
				}
			})
		}
	}
}

// TestGetStatsAllocs is the serving-plane alloc guard: steady-state
// GetStats with reused scratch, and steady-state overwriting PutStats,
// must not allocate.
func TestGetStatsAllocs(t *testing.T) {
	const n = 512
	const working = 128
	c, _ := perfectCluster(t, n, 3, 34)
	keys, origins := benchKeys(n, working, 35)
	val := make([]byte, benchValSize)
	var st OpStats
	for i := 0; i < working; i++ {
		if err := c.PutStats(origins[i], keys[i], val, &st); err != nil {
			t.Fatalf("preload: %v", err)
		}
	}
	scratch := make([]byte, 0, benchValSize)
	i := 0
	got := testing.AllocsPerRun(500, func() {
		j := i % working
		i++
		out, err := c.GetStats(scratch[:0], origins[j], keys[j], &st)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != benchValSize {
			t.Fatalf("short read: %d", len(out))
		}
		scratch = out[:0]
	})
	if got != 0 {
		t.Errorf("GetStats fast path allocates %.1f allocs/op, want 0", got)
	}
	i = 0
	got = testing.AllocsPerRun(500, func() {
		j := i % working
		i++
		if err := c.PutStats(origins[j], keys[j], val, &st); err != nil {
			t.Fatal(err)
		}
	})
	if got != 0 {
		t.Errorf("steady-state PutStats allocates %.1f allocs/op, want 0", got)
	}
}
