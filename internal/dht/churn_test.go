package dht

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/id"
	"repro/internal/peer"
)

// TestReplicaMigrationUnderChurn: under sequential churn far deeper than
// the replication factor, every key must stay readable — departures
// re-replicate the victim neighbourhood's keys, so copies heal instead of
// eroding until all three original replicas happen to die.
func TestReplicaMigrationUnderChurn(t *testing.T) {
	const n = 256
	const nkeys = 200
	c, descs := perfectCluster(t, n, 3, 41)
	rng := rand.New(rand.NewSource(42))
	keys := make([]id.ID, nkeys)
	for i := range keys {
		keys[i] = id.ID(rng.Uint64())
		if _, err := c.Put(descs[rng.Intn(n)].Addr, keys[i], []byte{byte(i), byte(i >> 8)}); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	// Kill 30% of the cluster, one node at a time (each departure is
	// repaired before the next — the steady-churn regime).
	alive := make([]peer.Addr, n)
	for i, d := range descs {
		alive[i] = d.Addr
	}
	for k := 0; k < n*30/100; k++ {
		vi := rng.Intn(len(alive))
		c.Remove(alive[vi])
		alive[vi] = alive[len(alive)-1]
		alive = alive[:len(alive)-1]
	}
	if c.Len() != len(alive) {
		t.Fatalf("live = %d, want %d", c.Len(), len(alive))
	}
	for i, key := range keys {
		from := alive[rng.Intn(len(alive))]
		got, err := c.Get(from, key)
		if err != nil {
			t.Fatalf("key %d unreadable after churn: %v", i, err)
		}
		if len(got) != 2 || got[0] != byte(i) || got[1] != byte(i>>8) {
			t.Fatalf("key %d corrupted after churn: %v", i, got)
		}
	}
}

// TestDegradedReplicationSurfaced: when a partition hides most of the
// cluster from the writer, the write succeeds on the reachable side but
// reports Stored < Want — the under-replication signal the load plane
// counts (the old API returned fewer addresses silently).
func TestDegradedReplicationSurfaced(t *testing.T) {
	const n = 64
	const small = 3 // nodes on the writer's side of the cut
	c, descs := perfectCluster(t, n, 5, 43)
	side := func(a peer.Addr) bool { return int(a) < small }
	c.SetPartition(func(a, b peer.Addr) bool { return side(a) != side(b) })

	var st OpStats
	err := c.PutStats(descs[0].Addr, id.ID(0x5EED), []byte("v"), &st)
	if err != nil {
		t.Fatalf("degraded put failed outright: %v", err)
	}
	if st.Want != 5 {
		t.Fatalf("Want = %d, want 5 (replication target unclamped by the cut)", st.Want)
	}
	if st.Stored >= st.Want {
		t.Fatalf("Stored = %d, Want = %d: degraded write not surfaced", st.Stored, st.Want)
	}
	if st.Stored < 1 || st.Stored > small {
		t.Fatalf("Stored = %d, want within [1, %d] (only the writer's side is reachable)", st.Stored, small)
	}

	// The same write through the compat API still succeeds with the short
	// address list (old behaviour, now measurable through PutStats).
	addrs, err := c.Put(descs[0].Addr, id.ID(0x5EED), []byte("v"))
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != st.Stored {
		t.Fatalf("Put stored %d, PutStats reported %d", len(addrs), st.Stored)
	}
}

// TestPartitionIsolation: a write made under a partition is visible on
// the writer's side and invisible across the cut.
func TestPartitionIsolation(t *testing.T) {
	const n = 64
	c, descs := perfectCluster(t, n, 3, 44)
	side := func(a peer.Addr) bool { return int(a) < n/2 }
	c.SetPartition(func(a, b peer.Addr) bool { return side(a) != side(b) })

	key := id.ID(0xCAFE)
	if _, err := c.Put(descs[0].Addr, key, []byte("w")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(descs[1].Addr, key); err != nil {
		t.Fatalf("same-side read failed: %v", err)
	}
	if _, err := c.Get(descs[n-1].Addr, key); err == nil {
		t.Fatal("cross-cut read saw the write")
	} else if !errors.Is(err, ErrNotFound) && !errors.Is(err, ErrNoRoute) {
		t.Fatalf("cross-cut read: unexpected error %v", err)
	}
	c.SetPartition(nil)
	if _, err := c.Get(descs[1].Addr, key); err != nil {
		t.Fatalf("read after healing failed: %v", err)
	}
}

// TestConcurrentOpsDuringChurn: routing reads immutable snapshots, so
// gets and puts racing with Remove must stay memory-safe and never return
// corrupt data (run under -race in CI's load job).
func TestConcurrentOpsDuringChurn(t *testing.T) {
	const n = 256
	const nkeys = 64
	c, descs := perfectCluster(t, n, 3, 45)
	rng := rand.New(rand.NewSource(46))
	keys := make([]id.ID, nkeys)
	val := []byte("steady")
	for i := range keys {
		keys[i] = id.ID(rng.Uint64())
		if _, err := c.Put(descs[rng.Intn(n)].Addr, keys[i], val); err != nil {
			t.Fatal(err)
		}
	}
	// Victims are the top addresses; workers originate from the bottom
	// half, which survives.
	victims := make([]peer.Addr, n/4)
	for i := range victims {
		victims[i] = descs[n-1-i].Addr
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, v := range victims {
			c.Remove(v)
		}
	}()
	workers := 4
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(seed int64) {
			rng := rand.New(rand.NewSource(seed))
			scratch := make([]byte, 0, 16)
			var st OpStats
			for i := 0; i < 2000; i++ {
				from := descs[rng.Intn(n/2)].Addr
				key := keys[rng.Intn(nkeys)]
				if i%5 == 0 {
					if err := c.PutStats(from, key, val, &st); err != nil {
						errc <- err
						return
					}
					continue
				}
				out, err := c.GetStats(scratch[:0], from, key, &st)
				if err != nil {
					errc <- err
					return
				}
				if string(out) != "steady" {
					errc <- errors.New("corrupt read under churn: " + string(out))
					return
				}
				scratch = out[:0]
			}
			errc <- nil
		}(int64(47 + w))
	}
	for w := 0; w < workers; w++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	<-done
}
