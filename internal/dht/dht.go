// Package dht implements a replicated key-value store over the
// bootstrapped overlay — the kind of "application" the paper's
// architecture diagram places on top of the structured overlay layer
// (PAST-style: a key's root is the ring-closest node, replicas go to the
// root's nearest ring neighbours, so responsibility migrates to a replica
// automatically when the root departs).
package dht

import (
	"errors"
	"fmt"

	"repro/internal/id"
	"repro/internal/overlay/pastry"
	"repro/internal/peer"
)

// DefaultReplicas is the replication factor used when none is given.
const DefaultReplicas = 3

// Node is one DHT participant: a router plus local storage.
type Node struct {
	router *pastry.Router
	data   map[id.ID][]byte
}

// NewNode wraps a router with an empty store.
func NewNode(r *pastry.Router) *Node {
	return &Node{router: r, data: make(map[id.ID][]byte)}
}

// Addr returns the node's address.
func (n *Node) Addr() peer.Addr { return n.router.Self().Addr }

// Keys returns the number of keys stored locally.
func (n *Node) Keys() int { return len(n.data) }

// Cluster evaluates DHT operations over a population of nodes, simulating
// the message flow synchronously (route to root, then replicate to the
// root's ring neighbourhood).
type Cluster struct {
	nodes    map[peer.Addr]*Node
	mesh     *pastry.Mesh
	replicas int
}

// NewCluster builds a cluster; replicas <= 0 selects DefaultReplicas.
func NewCluster(nodes []*Node, replicas int) *Cluster {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	routers := make([]*pastry.Router, len(nodes))
	byAddr := make(map[peer.Addr]*Node, len(nodes))
	for i, n := range nodes {
		routers[i] = n.router
		byAddr[n.Addr()] = n
	}
	return &Cluster{
		nodes:    byAddr,
		mesh:     pastry.NewMesh(routers, 0),
		replicas: replicas,
	}
}

// Errors returned by cluster operations.
var (
	ErrNotFound = errors.New("dht: key not found")
	ErrNoRoute  = errors.New("dht: routing failed")
)

// Put routes the key from the given node to its root and stores the value
// at the root and at its replicas-1 closest ring neighbours. It returns
// the addresses that stored the value.
func (c *Cluster) Put(from peer.Addr, key id.ID, value []byte) ([]peer.Addr, error) {
	root, err := c.root(from, key)
	if err != nil {
		return nil, err
	}
	stored := make([]peer.Addr, 0, c.replicas)
	for _, addr := range c.replicaSet(root) {
		node := c.nodes[addr]
		cp := make([]byte, len(value))
		copy(cp, value)
		node.data[key] = cp
		stored = append(stored, addr)
	}
	return stored, nil
}

// Get routes the key from the given node to its root and returns the
// stored value, falling back to the root's replica set — which is exactly
// where responsibility migrates when nodes near the key depart.
func (c *Cluster) Get(from peer.Addr, key id.ID) ([]byte, error) {
	root, err := c.root(from, key)
	if err != nil {
		return nil, err
	}
	for _, addr := range c.replicaSet(root) {
		if v, ok := c.nodes[addr].data[key]; ok {
			out := make([]byte, len(v))
			copy(out, v)
			return out, nil
		}
	}
	return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
}

// Remove drops a node from the cluster (a crash), scrubbing it from every
// surviving router's structures — the steady-state repair that a running
// maintenance protocol (or the bootstrap eviction extension) provides.
func (c *Cluster) Remove(addr peer.Addr) {
	victim, ok := c.nodes[addr]
	if !ok {
		return
	}
	delete(c.nodes, addr)
	victimID := victim.router.Self().ID
	routers := make([]*pastry.Router, 0, len(c.nodes))
	for _, n := range c.nodes {
		n.router.Forget(victimID)
		routers = append(routers, n.router)
	}
	c.mesh = pastry.NewMesh(routers, 0)
}

// Len returns the number of live nodes.
func (c *Cluster) Len() int { return len(c.nodes) }

// root resolves the key's current root node address.
func (c *Cluster) root(from peer.Addr, key id.ID) (*Node, error) {
	path, err := c.mesh.Route(from, key)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNoRoute, err)
	}
	node, ok := c.nodes[path[len(path)-1]]
	if !ok {
		return nil, fmt.Errorf("%w: root %d unknown", ErrNoRoute, path[len(path)-1])
	}
	return node, nil
}

// replicaSet returns the addresses responsible for keys rooted at the
// given node: the root plus its closest ring neighbours, alternating
// successor/predecessor as PAST does.
func (c *Cluster) replicaSet(root *Node) []peer.Addr {
	out := []peer.Addr{root.Addr()}
	succ := root.router.LeafSuccessors()
	pred := root.router.LeafPredecessors()
	i, j := 0, 0
	for len(out) < c.replicas {
		progressed := false
		if i < len(succ) {
			if _, live := c.nodes[succ[i].Addr]; live {
				out = append(out, succ[i].Addr)
				progressed = true
			}
			i++
		}
		if len(out) >= c.replicas {
			break
		}
		if j < len(pred) {
			if _, live := c.nodes[pred[j].Addr]; live {
				out = append(out, pred[j].Addr)
				progressed = true
			}
			j++
		}
		if i >= len(succ) && j >= len(pred) && !progressed {
			break
		}
	}
	return out
}
