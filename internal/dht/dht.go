// Package dht implements a replicated key-value store over the
// bootstrapped overlay — the kind of "application" the paper's
// architecture diagram places on top of the structured overlay layer
// (PAST-style: a key's root is the ring-closest node, replicas go to the
// root's nearest ring neighbours, so responsibility migrates to a replica
// automatically when the root departs).
//
// The serving hot path is built for concurrent load generation:
//
//   - routing reads immutable pastry.Snapshot values through per-node
//     atomic pointers (PR 4 copy-on-write discipline), so any number of
//     workers route lock-free while Remove repairs routers;
//   - departed nodes are not scrubbed from every router eagerly; routes
//     step around them through the cluster's Reachable filter, and only
//     the victim's leaf neighbourhood is repaired and re-replicated
//     (O(changes) per departure instead of the former full
//     pastry.NewMesh rebuild);
//   - values live in per-node arenas (see valueStore) and GetStats
//     appends into caller-owned scratch, so the Get fast path runs at
//     0 allocs/op (alloc-guarded in bench_test.go).
package dht

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/flat"
	"repro/internal/id"
	"repro/internal/overlay/pastry"
	"repro/internal/peer"
)

// DefaultReplicas is the replication factor used when none is given.
const DefaultReplicas = 3

// MaxReplicas bounds the replication factor; NewCluster clamps to it. The
// replica set can never exceed the root's leaf neighbourhood anyway, and
// the bound lets op-path dedup scratch live on the stack.
const MaxReplicas = 64

// maxRouteHops bounds one routed operation; prefix routing resolves in
// O(log N) hops, so hitting this means the overlay is broken, not slow.
const maxRouteHops = 128

// Node is one DHT participant: a router, its published routing snapshot,
// and local storage.
type Node struct {
	router *pastry.Router
	// snap is the immutable routing state ops read. It is republished
	// (under the cluster's repair lock) whenever the router changes.
	snap atomic.Pointer[pastry.Snapshot]
	// mu serialises access to store; routing never takes it.
	mu    sync.Mutex
	store valueStore
}

// NewNode wraps a router with an empty store.
func NewNode(r *pastry.Router) *Node {
	n := &Node{router: r}
	n.snap.Store(r.Snapshot())
	return n
}

// Addr returns the node's address.
func (n *Node) Addr() peer.Addr { return n.router.Self().Addr }

// Keys returns the number of keys stored locally.
func (n *Node) Keys() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.store.keys()
}

// StoreBytes returns the size of the node's value arena (diagnostics).
func (n *Node) StoreBytes() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.store.bytes()
}

// Partition is an optional reachability cut: it reports true when a and b
// are on opposite sides and must not exchange messages. It must be safe
// for concurrent use and cheap — it runs on every routing candidate.
type Partition func(a, b peer.Addr) bool

// Cluster evaluates DHT operations over a population of nodes, simulating
// the message flow synchronously (route to root, then replicate to the
// root's ring neighbourhood). Put/Get/GetStats/PutStats are safe for
// concurrent use with each other and with Remove.
type Cluster struct {
	replicas int
	nodes    []*Node
	// byAddr maps peer.Addr (widened to id.ID) to the node's slot index;
	// open-addressed so the per-hop lookup is a probe over flat arrays.
	byAddr *flat.Table[int32]
	alive  []atomic.Bool
	// aliveByAddr is a dense addr-indexed mirror of alive, built when the
	// address space is compact (the usual case): liveness checks on the
	// routing hot path become one array load instead of a hash probe.
	aliveByAddr []atomic.Bool
	live        atomic.Int32
	part        atomic.Pointer[Partition]
	// filtered stays false until the first departure or partition; while
	// it is false every node is reachable and ops route with a nil filter,
	// skipping the per-candidate liveness calls entirely.
	filtered atomic.Bool
	// reach is the single Reachable closure every op shares — built once
	// so the hot path never allocates a capture.
	reach    pastry.Reachable
	repairMu sync.Mutex
}

// NewCluster builds a cluster; replicas <= 0 selects DefaultReplicas and
// values above MaxReplicas are clamped.
func NewCluster(nodes []*Node, replicas int) *Cluster {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	if replicas > MaxReplicas {
		replicas = MaxReplicas
	}
	c := &Cluster{
		replicas: replicas,
		nodes:    nodes,
		byAddr:   flat.NewTable[int32](len(nodes)),
		alive:    make([]atomic.Bool, len(nodes)),
	}
	maxAddr := peer.Addr(-1)
	for i, n := range nodes {
		c.byAddr.Put(addrKey(n.Addr()), int32(i))
		c.alive[i].Store(true)
		if a := n.Addr(); a > maxAddr {
			maxAddr = a
		}
	}
	c.live.Store(int32(len(nodes)))
	if int(maxAddr)+1 <= 4*len(nodes)+64 {
		c.aliveByAddr = make([]atomic.Bool, int(maxAddr)+1)
		for _, n := range nodes {
			c.aliveByAddr[n.Addr()].Store(true)
		}
		c.reach = func(from, to peer.Addr) bool {
			if to < 0 || int(to) >= len(c.aliveByAddr) || !c.aliveByAddr[to].Load() {
				return false
			}
			if p := c.part.Load(); p != nil && (*p)(from, to) {
				return false
			}
			return true
		}
		return c
	}
	c.reach = func(from, to peer.Addr) bool {
		slot, ok := c.slotOf(to)
		if !ok || !c.alive[slot].Load() {
			return false
		}
		if p := c.part.Load(); p != nil && (*p)(from, to) {
			return false
		}
		return true
	}
	return c
}

// filter returns the Reachable the current op should route with: nil
// while the cluster is clean (everything reachable — the fast path), the
// shared closure once any departure or partition makes filtering real.
func (c *Cluster) filter() pastry.Reachable {
	if c.filtered.Load() {
		return c.reach
	}
	return nil
}

// isAlive reports whether the address belongs to a live node.
func (c *Cluster) isAlive(a peer.Addr) bool {
	if c.aliveByAddr != nil {
		return a >= 0 && int(a) < len(c.aliveByAddr) && c.aliveByAddr[a].Load()
	}
	slot, ok := c.slotOf(a)
	return ok && c.alive[slot].Load()
}

// SetPartition installs (or, with nil, clears) a reachability cut that
// every subsequent operation honours: routing, replica placement, and
// replica reads all stay on the originating side.
func (c *Cluster) SetPartition(p Partition) {
	if p == nil {
		c.part.Store(nil)
		return
	}
	// Publish the filtered flag before the cut so no op can observe the
	// partition without also routing through the filter.
	c.filtered.Store(true)
	c.part.Store(&p)
}

// Errors returned by cluster operations.
var (
	ErrNotFound = errors.New("dht: key not found")
	ErrNoRoute  = errors.New("dht: routing failed")
)

// OpStats reports per-operation detail the load plane records. Fields are
// only written, never read, by the cluster — callers may reuse one struct
// across calls.
type OpStats struct {
	// Hops is the number of routed hops from the origin to the key root.
	Hops int
	// Stored is the number of replicas that accepted a Put.
	Stored int
	// Want is the replication target at op time: the configured factor
	// clamped to the live population. Stored < Want means the write is
	// under-replicated (short leaf sets post-churn, or a partition hid
	// part of the neighbourhood) — the degraded-replication signal the
	// load plane counts.
	Want int
}

// addrKey widens an address into the flat table's key domain.
func addrKey(a peer.Addr) id.ID { return id.ID(uint64(uint32(a))) }

// slotOf resolves an address to its node slot.
func (c *Cluster) slotOf(addr peer.Addr) (int32, bool) {
	if addr < 0 {
		return 0, false
	}
	return c.byAddr.Get(addrKey(addr))
}

// route walks the key from the origin to its live root, returning the
// root's slot and the hop count. Zero-alloc: every step reads an
// immutable snapshot through an atomic pointer.
func (c *Cluster) route(from peer.Addr, key id.ID) (int32, int, error) {
	slot, ok := c.slotOf(from)
	if !ok || !c.alive[slot].Load() {
		return 0, 0, ErrNoRoute
	}
	filt := c.filter()
	hops := 0
	for {
		next, done := c.nodes[slot].snap.Load().NextHopAlive(key, from, filt)
		if done {
			return slot, hops, nil
		}
		hops++
		if hops > maxRouteHops {
			return 0, hops, ErrNoRoute
		}
		ns, ok := c.slotOf(next.Addr)
		if !ok {
			return 0, hops, ErrNoRoute
		}
		slot = ns
	}
}

// replicaCursor walks a key root's replica set — the root, then its ring
// neighbours alternating successor/predecessor as PAST does — skipping
// unreachable peers and deduplicating addresses (succ and pred overlap on
// small rings). It lives on the caller's stack; no allocation.
type replicaCursor struct {
	c          *Cluster
	filt       pastry.Reachable // nil while the cluster is clean
	origin     peer.Addr
	succ, pred []peer.Descriptor
	rootSlot   int32
	rootAddr   peer.Addr
	k          int // next candidate index: even → succ[k/2], odd → pred[k/2]
	rootDone   bool
	nseen      int
	seen       [MaxReplicas]peer.Addr
}

func (c *Cluster) replicaCursor(origin peer.Addr, rootSlot int32) replicaCursor {
	snap := c.nodes[rootSlot].snap.Load()
	succ, pred := snap.Leaf()
	return replicaCursor{
		c:        c,
		filt:     c.filter(),
		origin:   origin,
		succ:     succ,
		pred:     pred,
		rootSlot: rootSlot,
		rootAddr: snap.Self().Addr,
	}
}

// next returns the slot of the next replica; ok is false once the set is
// exhausted or the replication factor is met.
func (cur *replicaCursor) next() (int32, bool) {
	c := cur.c
	if !cur.rootDone {
		cur.rootDone = true
		cur.seen[0] = cur.rootAddr
		cur.nseen = 1
		return cur.rootSlot, true
	}
	for cur.nseen < c.replicas {
		idx := cur.k
		cur.k++
		var d peer.Descriptor
		if idx%2 == 0 {
			si := idx / 2
			if si >= len(cur.succ) {
				if idx/2 >= len(cur.pred) {
					return 0, false // both directions exhausted
				}
				continue
			}
			d = cur.succ[si]
		} else {
			pi := idx / 2
			if pi >= len(cur.pred) {
				if (idx+1)/2 >= len(cur.succ) {
					return 0, false
				}
				continue
			}
			d = cur.pred[pi]
		}
		if cur.filt != nil && !cur.filt(cur.origin, d.Addr) {
			continue
		}
		dup := false
		for i := 0; i < cur.nseen; i++ {
			if cur.seen[i] == d.Addr {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		slot, ok := c.slotOf(d.Addr)
		if !ok {
			continue
		}
		cur.seen[cur.nseen] = d.Addr
		cur.nseen++
		return slot, true
	}
	return 0, false
}

// PutStats routes the key to its root and stores the value at the root
// and its ring neighbours, recording hops and achieved replication in st.
// Stored < Want reports a degraded write without failing it.
func (c *Cluster) PutStats(from peer.Addr, key id.ID, value []byte, st *OpStats) error {
	rootSlot, hops, err := c.route(from, key)
	if err != nil {
		return err
	}
	st.Hops = hops
	want := c.replicas
	if live := int(c.live.Load()); live < want {
		want = live
	}
	st.Want = want
	cur := c.replicaCursor(from, rootSlot)
	stored := 0
	for {
		slot, ok := cur.next()
		if !ok {
			break
		}
		n := c.nodes[slot]
		n.mu.Lock()
		n.store.put(key, value)
		n.mu.Unlock()
		stored++
	}
	st.Stored = stored
	return nil
}

// Put routes the key from the given node to its root and stores the value
// at the root and at its replicas-1 closest ring neighbours. It returns
// the addresses that stored the value.
func (c *Cluster) Put(from peer.Addr, key id.ID, value []byte) ([]peer.Addr, error) {
	rootSlot, _, err := c.route(from, key)
	if err != nil {
		return nil, err
	}
	stored := make([]peer.Addr, 0, c.replicas)
	cur := c.replicaCursor(from, rootSlot)
	for {
		slot, ok := cur.next()
		if !ok {
			break
		}
		n := c.nodes[slot]
		n.mu.Lock()
		n.store.put(key, value)
		n.mu.Unlock()
		stored = append(stored, n.Addr())
	}
	return stored, nil
}

// GetStats routes the key to its root and appends the first replica's
// value to dst, recording routed hops in st. Callers that reuse dst read
// at 0 allocs/op; on ErrNotFound/ErrNoRoute dst is returned unchanged.
func (c *Cluster) GetStats(dst []byte, from peer.Addr, key id.ID, st *OpStats) ([]byte, error) {
	rootSlot, hops, err := c.route(from, key)
	if err != nil {
		return dst, err
	}
	st.Hops = hops
	cur := c.replicaCursor(from, rootSlot)
	for {
		slot, ok := cur.next()
		if !ok {
			break
		}
		n := c.nodes[slot]
		n.mu.Lock()
		out, found := n.store.get(key, dst)
		n.mu.Unlock()
		if found {
			return out, nil
		}
	}
	return dst, ErrNotFound
}

// Get routes the key from the given node to its root and returns a copy
// of the stored value, falling back to the root's replica set — which is
// exactly where responsibility migrates when nodes near the key depart.
func (c *Cluster) Get(from peer.Addr, key id.ID) ([]byte, error) {
	var st OpStats
	out, err := c.GetStats(nil, from, key, &st)
	if err != nil {
		if errors.Is(err, ErrNotFound) {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
		}
		return nil, err
	}
	if out == nil {
		out = []byte{}
	}
	return out, nil
}

// Remove drops a node from the cluster (a crash). Cost is O(changes):
// the victim is marked dead (routes step around it via the Reachable
// filter — no global scrub), only its leaf neighbourhood repairs its
// routing state and republishes snapshots, and that neighbourhood
// re-replicates its keys so the replication factor heals instead of
// eroding under cumulative churn.
func (c *Cluster) Remove(addr peer.Addr) {
	c.repairMu.Lock()
	defer c.repairMu.Unlock()
	slot, ok := c.slotOf(addr)
	if !ok || !c.alive[slot].Load() {
		return
	}
	// Publish the filtered flag before the death so no op can observe the
	// dead node without also routing through the filter.
	c.filtered.Store(true)
	c.alive[slot].Store(false)
	if c.aliveByAddr != nil {
		c.aliveByAddr[addr].Store(false)
	}
	c.live.Add(-1)
	victim := c.nodes[slot]
	victimID := victim.router.Self().ID
	vsnap := victim.snap.Load()
	succ, pred := vsnap.Leaf()

	// The victim's live leaf neighbourhood: the routers that listed it,
	// the peers that inherit its key range, and the candidates they adopt
	// to refill their own structures.
	cand := make([]peer.Descriptor, 0, len(succ)+len(pred))
	for _, d := range succ {
		if s, ok := c.slotOf(d.Addr); ok && c.alive[s].Load() {
			cand = append(cand, d)
		}
	}
	for _, d := range pred {
		if s, ok := c.slotOf(d.Addr); ok && c.alive[s].Load() {
			cand = append(cand, d)
		}
	}
	for _, d := range cand {
		ms, _ := c.slotOf(d.Addr)
		m := c.nodes[ms]
		m.router.Repair(victimID, cand)
		m.snap.Store(m.router.Snapshot())
	}
	c.migrate(cand)
}

// Join is the inverse of Remove: it revives a node that the cluster knows
// but currently counts dead — a standby joining a flash crowd, or a
// crashed node recovering. Under the repair lock the joiner is marked
// alive, the live peers in its leaf neighbourhood adopt it (candidates ∪
// {joiner}, the arrival-side mirror of Remove's Repair call), the joiner
// refreshes its own structures against that live neighbourhood, and the
// neighbourhood re-replicates so the key range the joiner now owns
// actually reaches it. A recovering node re-enters with whatever its
// store held before the crash; re-replication reconciles its key range,
// and a fresh standby simply starts empty.
func (c *Cluster) Join(addr peer.Addr) {
	c.repairMu.Lock()
	defer c.repairMu.Unlock()
	slot, ok := c.slotOf(addr)
	if !ok || c.alive[slot].Load() {
		return
	}
	joiner := c.nodes[slot]
	jdesc := joiner.router.Self()

	c.alive[slot].Store(true)
	if c.aliveByAddr != nil {
		c.aliveByAddr[addr].Store(true)
	}
	c.live.Add(1)

	// The joiner's live leaf neighbourhood, read from its last published
	// snapshot. The snapshot may be stale — peers died while the joiner
	// was down — so filter to the currently live ones.
	jsnap := joiner.snap.Load()
	succ, pred := jsnap.Leaf()
	cand := make([]peer.Descriptor, 0, len(succ)+len(pred))
	for _, d := range succ {
		if s, ok := c.slotOf(d.Addr); ok && c.alive[s].Load() {
			cand = append(cand, d)
		}
	}
	for _, d := range pred {
		if s, ok := c.slotOf(d.Addr); ok && c.alive[s].Load() {
			cand = append(cand, d)
		}
	}
	withJoiner := append(append(make([]peer.Descriptor, 0, len(cand)+1), cand...), jdesc)
	for _, d := range cand {
		ms, _ := c.slotOf(d.Addr)
		m := c.nodes[ms]
		m.router.Adopt(withJoiner)
		m.snap.Store(m.router.Snapshot())
	}
	// Refresh the joiner against the neighbourhood as it is now and
	// republish, so ops routing through it see live peers again.
	joiner.router.Adopt(cand)
	joiner.snap.Store(joiner.router.Snapshot())

	c.migrate(withJoiner)
}

// migrate re-replicates every key held in the given neighbourhood: each
// key is re-routed to its current root and re-stored across the current
// replica set. Work is proportional to the keys the departed node's
// neighbourhood holds, not to the cluster or key population.
func (c *Cluster) migrate(neighbourhood []peer.Descriptor) {
	var keys []id.ID
	var val []byte
	for _, d := range neighbourhood {
		ms, ok := c.slotOf(d.Addr)
		if !ok {
			continue
		}
		m := c.nodes[ms]
		m.mu.Lock()
		keys = keys[:0]
		m.store.refs.Iter(func(k id.ID, _ valRef) bool {
			keys = append(keys, k)
			return true
		})
		m.mu.Unlock()
		from := d.Addr
		for _, k := range keys {
			m.mu.Lock()
			v, found := m.store.get(k, val[:0])
			m.mu.Unlock()
			if !found {
				continue
			}
			val = v
			rootSlot, _, err := c.route(from, k)
			if err != nil {
				continue
			}
			cur := c.replicaCursor(from, rootSlot)
			for {
				slot, ok := cur.next()
				if !ok {
					break
				}
				n := c.nodes[slot]
				n.mu.Lock()
				n.store.put(k, val)
				n.mu.Unlock()
			}
		}
	}
}

// Len returns the number of live nodes.
func (c *Cluster) Len() int { return int(c.live.Load()) }

// Replicas returns the configured replication factor.
func (c *Cluster) Replicas() int { return c.replicas }

// LiveAddrs appends the addresses of all live nodes to dst (slot order,
// deterministic) and returns it.
func (c *Cluster) LiveAddrs(dst []peer.Addr) []peer.Addr {
	for i, n := range c.nodes {
		if c.alive[i].Load() {
			dst = append(dst, n.Addr())
		}
	}
	return dst
}
