package dht

import (
	"repro/internal/flat"
	"repro/internal/id"
)

// valRef locates one stored value inside a node's byte arena: the value
// occupies heap[off : off+len] and owns heap[off : off+cap] (cap is the
// size the slot was carved with, so a smaller overwrite reuses it in
// place).
type valRef struct {
	off, len, cap uint32
}

// valueStore is one node's local key-value storage: an open-addressed
// flat table of references into a single append-only byte arena. Compared
// with the former map[id.ID][]byte it removes the per-value slice header
// and heap object (PR 6 discipline — the arena is one allocation, grown
// geometrically), and makes both lookups and overwrites allocation-free in
// steady state:
//
//   - get appends the value bytes into a caller-owned scratch buffer, so a
//     worker reusing its buffer reads at 0 allocs/op;
//   - put overwrites in place whenever the new value fits the slot carved
//     for the old one, which is the common case for fixed-size workload
//     values. A growing overwrite carves a fresh slot and strands the old
//     one — acceptable for serving workloads with stable value sizes; a
//     compacting store is deliberately out of scope here.
//
// The zero value is ready for use. Not safe for concurrent use; the owning
// Node serialises access.
type valueStore struct {
	refs flat.Table[valRef]
	heap []byte
}

// put stores val under key, copying it into the arena.
func (s *valueStore) put(key id.ID, val []byte) {
	if ref, ok := s.refs.Get(key); ok && len(val) <= int(ref.cap) {
		copy(s.heap[ref.off:ref.off+ref.cap], val)
		ref.len = uint32(len(val))
		s.refs.Put(key, ref)
		return
	}
	off := uint32(len(s.heap))
	s.heap = append(s.heap, val...)
	s.refs.Put(key, valRef{off: off, len: uint32(len(val)), cap: uint32(len(val))})
}

// get appends the value stored under key to dst and reports whether the
// key was present. dst is returned grown (unchanged on a miss); callers
// that reuse dst across calls read without allocating.
func (s *valueStore) get(key id.ID, dst []byte) ([]byte, bool) {
	ref, ok := s.refs.Get(key)
	if !ok {
		return dst, false
	}
	return append(dst, s.heap[ref.off:ref.off+ref.len]...), true
}

// keys returns the number of keys stored.
func (s *valueStore) keys() int { return s.refs.Len() }

// bytes returns the arena size (diagnostics).
func (s *valueStore) bytes() int { return len(s.heap) }
