package dht

// The pre-PR 8 synchronous cluster, kept verbatim as a benchmark baseline
// (PR 5 idiom): map-based node/value lookup, per-op value copies, and a
// full pastry.NewMesh rebuild on every departure. BenchmarkDHTOps and
// BenchmarkClusterRemove measure the rewrite against it.

import (
	"fmt"

	"repro/internal/id"
	"repro/internal/overlay/pastry"
	"repro/internal/peer"
)

type legacyNode struct {
	router *pastry.Router
	data   map[id.ID][]byte
}

type legacyCluster struct {
	nodes    map[peer.Addr]*legacyNode
	mesh     *pastry.Mesh
	replicas int
}

func newLegacyCluster(routers []*pastry.Router, replicas int) *legacyCluster {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	byAddr := make(map[peer.Addr]*legacyNode, len(routers))
	for _, r := range routers {
		byAddr[r.Self().Addr] = &legacyNode{router: r, data: make(map[id.ID][]byte)}
	}
	return &legacyCluster{
		nodes:    byAddr,
		mesh:     pastry.NewMesh(routers, 0),
		replicas: replicas,
	}
}

func (c *legacyCluster) Put(from peer.Addr, key id.ID, value []byte) ([]peer.Addr, error) {
	root, err := c.root(from, key)
	if err != nil {
		return nil, err
	}
	stored := make([]peer.Addr, 0, c.replicas)
	for _, addr := range c.replicaSet(root) {
		node := c.nodes[addr]
		cp := make([]byte, len(value))
		copy(cp, value)
		node.data[key] = cp
		stored = append(stored, addr)
	}
	return stored, nil
}

func (c *legacyCluster) Get(from peer.Addr, key id.ID) ([]byte, error) {
	root, err := c.root(from, key)
	if err != nil {
		return nil, err
	}
	for _, addr := range c.replicaSet(root) {
		if v, ok := c.nodes[addr].data[key]; ok {
			out := make([]byte, len(v))
			copy(out, v)
			return out, nil
		}
	}
	return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
}

func (c *legacyCluster) Remove(addr peer.Addr) {
	victim, ok := c.nodes[addr]
	if !ok {
		return
	}
	delete(c.nodes, addr)
	victimID := victim.router.Self().ID
	routers := make([]*pastry.Router, 0, len(c.nodes))
	for _, n := range c.nodes {
		n.router.Forget(victimID)
		routers = append(routers, n.router)
	}
	c.mesh = pastry.NewMesh(routers, 0)
}

func (c *legacyCluster) root(from peer.Addr, key id.ID) (*legacyNode, error) {
	path, err := c.mesh.Route(from, key)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNoRoute, err)
	}
	node, ok := c.nodes[path[len(path)-1]]
	if !ok {
		return nil, fmt.Errorf("%w: root %d unknown", ErrNoRoute, path[len(path)-1])
	}
	return node, nil
}

func (c *legacyCluster) replicaSet(root *legacyNode) []peer.Addr {
	out := []peer.Addr{root.router.Self().Addr}
	succ := root.router.LeafSuccessors()
	pred := root.router.LeafPredecessors()
	i, j := 0, 0
	for len(out) < c.replicas {
		progressed := false
		if i < len(succ) {
			if _, live := c.nodes[succ[i].Addr]; live {
				out = append(out, succ[i].Addr)
				progressed = true
			}
			i++
		}
		if len(out) >= c.replicas {
			break
		}
		if j < len(pred) {
			if _, live := c.nodes[pred[j].Addr]; live {
				out = append(out, pred[j].Addr)
				progressed = true
			}
			j++
		}
		if i >= len(succ) && j >= len(pred) && !progressed {
			break
		}
	}
	return out
}
