package dht

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/id"
	"repro/internal/overlay/pastry"
	"repro/internal/peer"
)

// perfectCluster builds a DHT over perfectly bootstrapped routers.
func perfectCluster(t testing.TB, n, replicas int, seed int64) (*Cluster, []peer.Descriptor) {
	t.Helper()
	ids := id.Unique(n, seed)
	descs := make([]peer.Descriptor, n)
	for i, v := range ids {
		descs[i] = peer.Descriptor{ID: v, Addr: peer.Addr(i)}
	}
	cfg := core.DefaultConfig()
	nodes := make([]*Node, n)
	for i, d := range descs {
		ls := core.NewLeafSet(d.ID, cfg.C)
		ls.Update(descs)
		pt := core.NewPrefixTable(d.ID, cfg.B, cfg.K)
		pt.AddAll(descs)
		nodes[i] = NewNode(pastry.New(d, ls, pt, cfg.B))
	}
	return NewCluster(nodes, replicas), descs
}

func TestPutGetRoundTrip(t *testing.T) {
	c, descs := perfectCluster(t, 200, 3, 1)
	rng := rand.New(rand.NewSource(2))
	type kv struct {
		key id.ID
		val []byte
	}
	var written []kv
	for i := 0; i < 100; i++ {
		key := id.ID(rng.Uint64())
		val := []byte{byte(i), byte(i >> 8), 0xAB}
		stored, err := c.Put(descs[rng.Intn(len(descs))].Addr, key, val)
		if err != nil {
			t.Fatalf("put %s: %v", key, err)
		}
		if len(stored) != 3 {
			t.Fatalf("put %s stored at %d replicas, want 3", key, len(stored))
		}
		written = append(written, kv{key, val})
	}
	for _, w := range written {
		got, err := c.Get(descs[rng.Intn(len(descs))].Addr, w.key)
		if err != nil {
			t.Fatalf("get %s: %v", w.key, err)
		}
		if !bytes.Equal(got, w.val) {
			t.Fatalf("get %s = %v, want %v", w.key, got, w.val)
		}
	}
}

func TestGetMissingKey(t *testing.T) {
	c, descs := perfectCluster(t, 50, 3, 3)
	_, err := c.Get(descs[0].Addr, id.ID(12345))
	if !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v, want ErrNotFound", err)
	}
}

func TestValueIsolation(t *testing.T) {
	// Mutating a stored or returned value must not affect the store.
	c, descs := perfectCluster(t, 50, 1, 4)
	val := []byte{1, 2, 3}
	if _, err := c.Put(descs[0].Addr, 99, val); err != nil {
		t.Fatal(err)
	}
	val[0] = 42 // caller mutates after Put
	got, err := c.Get(descs[1].Addr, 99)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 {
		t.Error("store aliased the caller's buffer")
	}
	got[1] = 42 // caller mutates the returned value
	again, err := c.Get(descs[2].Addr, 99)
	if err != nil {
		t.Fatal(err)
	}
	if again[1] != 2 {
		t.Error("returned value aliased the store")
	}
}

// TestSurvivesRootFailure: after the key's root crashes, the key remains
// readable because responsibility migrates to a ring-neighbour replica.
func TestSurvivesRootFailure(t *testing.T) {
	c, descs := perfectCluster(t, 300, 3, 5)
	rng := rand.New(rand.NewSource(6))
	key := id.ID(rng.Uint64())
	val := []byte("survives")
	stored, err := c.Put(descs[0].Addr, key, val)
	if err != nil {
		t.Fatal(err)
	}
	root := stored[0]
	c.Remove(root)
	if c.Len() != 299 {
		t.Fatalf("len = %d after removal", c.Len())
	}
	// Read from many different starting points.
	for i := 0; i < 50; i++ {
		from := descs[rng.Intn(len(descs))].Addr
		if from == root {
			continue
		}
		got, err := c.Get(from, key)
		if err != nil {
			t.Fatalf("get after root failure from %d: %v", from, err)
		}
		if !bytes.Equal(got, val) {
			t.Fatalf("value corrupted after root failure")
		}
	}
}

// TestSurvivesReplicaSetFailures: kill the root and one more replica; with
// replication 3 the key must still be readable.
func TestSurvivesReplicaSetFailures(t *testing.T) {
	c, descs := perfectCluster(t, 300, 3, 7)
	key := id.ID(0xDEAD00000000BEEF)
	stored, err := c.Put(descs[1].Addr, key, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	c.Remove(stored[0])
	c.Remove(stored[1])
	start := descs[2].Addr
	if start == stored[0] || start == stored[1] {
		start = descs[3].Addr
	}
	if _, err := c.Get(start, key); err != nil {
		t.Fatalf("get after two replica failures: %v", err)
	}
}

func TestReplicaSetDistinct(t *testing.T) {
	c, descs := perfectCluster(t, 100, 5, 8)
	stored, err := c.Put(descs[0].Addr, id.ID(777), []byte("v"))
	if err != nil {
		t.Fatal(err)
	}
	if len(stored) != 5 {
		t.Fatalf("stored at %d, want 5", len(stored))
	}
	seen := make(map[peer.Addr]bool)
	for _, a := range stored {
		if seen[a] {
			t.Fatalf("duplicate replica %d", a)
		}
		seen[a] = true
	}
}

func TestTinyClusterReplication(t *testing.T) {
	// Fewer nodes than replicas: everything stores everywhere.
	c, descs := perfectCluster(t, 2, 5, 9)
	stored, err := c.Put(descs[0].Addr, id.ID(5), []byte("v"))
	if err != nil {
		t.Fatal(err)
	}
	if len(stored) != 2 {
		t.Errorf("stored at %d, want all 2 nodes", len(stored))
	}
}

func TestRemoveUnknownIsNoop(t *testing.T) {
	c, _ := perfectCluster(t, 10, 3, 10)
	c.Remove(peer.Addr(999))
	if c.Len() != 10 {
		t.Error("removing unknown changed the cluster")
	}
}
