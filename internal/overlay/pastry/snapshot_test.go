package pastry

import (
	"testing"

	"repro/internal/id"
	"repro/internal/peer"
)

// TestSnapshotNextHopMatchesRouter: with a nil filter, NextHopAlive must
// agree hop-for-hop with the live router's NextHop for every (start, key).
func TestSnapshotNextHopMatchesRouter(t *testing.T) {
	routers, _, _ := perfectRouters(t, 128, 11)
	snaps := make([]*Snapshot, len(routers))
	for i, r := range routers {
		snaps[i] = r.Snapshot()
	}
	keys := id.Unique(200, 12)
	for i, r := range routers {
		for _, key := range keys {
			wantNext, wantDone := r.NextHop(key)
			gotNext, gotDone := snaps[i].NextHopAlive(key, r.Self().Addr, nil)
			if wantDone != gotDone || wantNext.ID != gotNext.ID {
				t.Fatalf("router %d key %s: snapshot hop (%s, %v) != router hop (%s, %v)",
					i, key, gotNext, gotDone, wantNext, wantDone)
			}
		}
	}
}

// TestSnapshotImmutable: repairing the router must not change an already
// captured snapshot's view.
func TestSnapshotImmutable(t *testing.T) {
	routers, descs, _ := perfectRouters(t, 64, 13)
	r := routers[0]
	snap := r.Snapshot()
	beforeSucc, beforePred := snap.Leaf()
	nSucc, nPred := len(beforeSucc), len(beforePred)
	first := beforeSucc[0]

	// Scrub the closest successor from the live structures.
	r.Repair(first.ID, descs[:0])

	afterSucc, afterPred := snap.Leaf()
	if len(afterSucc) != nSucc || len(afterPred) != nPred || afterSucc[0] != first {
		t.Fatal("repair mutated a captured snapshot")
	}
	fresh := r.Snapshot()
	fs, _ := fresh.Leaf()
	for _, d := range fs {
		if d.ID == first.ID {
			t.Fatal("repaired router still lists the departed peer")
		}
	}
}

// TestSnapshotRoutesAroundDead: with a filter rejecting a victim, no hop
// may ever land on it, and routes must still terminate at a live root.
func TestSnapshotRoutesAroundDead(t *testing.T) {
	routers, descs, _ := perfectRouters(t, 256, 14)
	snaps := make([]*Snapshot, len(routers))
	byAddr := make(map[peer.Addr]int, len(routers))
	for i, r := range routers {
		snaps[i] = r.Snapshot()
		byAddr[r.Self().Addr] = i
	}
	dead := map[peer.Addr]bool{descs[7].Addr: true, descs[99].Addr: true, descs[200].Addr: true}
	alive := func(_, to peer.Addr) bool { return !dead[to] }

	keys := id.Unique(100, 15)
	for _, key := range keys {
		cur := 0
		if dead[descs[cur].Addr] {
			cur = 1
		}
		for hops := 0; ; hops++ {
			if hops > 64 {
				t.Fatalf("key %s: no termination", key)
			}
			next, done := snaps[cur].NextHopAlive(key, descs[0].Addr, alive)
			if done {
				if dead[snaps[cur].Self().Addr] {
					t.Fatalf("key %s delivered at dead node", key)
				}
				break
			}
			if dead[next.Addr] {
				t.Fatalf("key %s: hop to dead node %s", key, next)
			}
			cur = byAddr[next.Addr]
		}
	}
}

// TestRepairRefillsLeafSet: after a neighbour departs, Repair with the
// departed node's neighborhood must both scrub the victim and keep the
// leaf set full.
func TestRepairRefillsLeafSet(t *testing.T) {
	routers, _, _ := perfectRouters(t, 128, 16)
	r := routers[0]
	victim := r.Snapshot().succ[0]
	vi := -1
	for i, rr := range routers {
		if rr.Self().ID == victim.ID {
			vi = i
		}
	}
	if vi < 0 {
		t.Fatal("victim not found")
	}
	before := r.leaf.Len()
	vs := routers[vi].Snapshot()
	cand := append(append([]peer.Descriptor{}, vs.succ...), vs.pred...)
	r.Repair(victim.ID, cand)
	if r.leaf.Contains(victim.ID) {
		t.Fatal("victim survives in leaf set after Repair")
	}
	if got := r.leaf.Len(); got < before {
		t.Fatalf("leaf set shrank after Repair: %d -> %d (candidates should refill)", before, got)
	}
}
