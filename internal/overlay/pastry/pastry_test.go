package pastry

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/coord"
	"repro/internal/core"
	"repro/internal/id"
	"repro/internal/peer"
	"repro/internal/sampling"
	"repro/internal/simnet"
	"repro/internal/truth"
)

// perfectRouters builds routers with perfect state for n members: every
// node's leaf set and prefix table are fed the entire membership.
func perfectRouters(t testing.TB, n int, seed int64) ([]*Router, []peer.Descriptor, *truth.Truth) {
	t.Helper()
	ids := id.Unique(n, seed)
	descs := make([]peer.Descriptor, n)
	for i, v := range ids {
		descs[i] = peer.Descriptor{ID: v, Addr: peer.Addr(i)}
	}
	cfg := core.DefaultConfig()
	routers := make([]*Router, n)
	for i, d := range descs {
		ls := core.NewLeafSet(d.ID, cfg.C)
		ls.Update(descs)
		pt := core.NewPrefixTable(d.ID, cfg.B, cfg.K)
		pt.AddAll(descs)
		routers[i] = New(d, ls, pt, cfg.B)
	}
	tr, err := truth.New(ids, cfg.B, cfg.K, cfg.C)
	if err != nil {
		t.Fatal(err)
	}
	return routers, descs, tr
}

// ringClosest returns the member numerically (ring) closest to key.
func ringClosest(descs []peer.Descriptor, key id.ID) peer.Descriptor {
	best := descs[0]
	for _, d := range descs[1:] {
		if id.CompareRing(key, d.ID, best.ID) < 0 {
			best = d
		}
	}
	return best
}

func TestRouteDeliversToRingClosest(t *testing.T) {
	const n = 400
	routers, descs, _ := perfectRouters(t, n, 1)
	mesh := NewMesh(routers, 0)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 300; trial++ {
		key := id.ID(rng.Uint64())
		start := peer.Addr(rng.Intn(n))
		path, err := mesh.Route(start, key)
		if err != nil {
			t.Fatalf("route %s from %d: %v", key, start, err)
		}
		root := path[len(path)-1]
		want := ringClosest(descs, key)
		if root != want.Addr {
			t.Fatalf("key %s rooted at %d, want %s", key, root, want)
		}
	}
}

func TestRouteHopsLogarithmic(t *testing.T) {
	const n = 512
	routers, _, _ := perfectRouters(t, n, 3)
	mesh := NewMesh(routers, 0)
	rng := rand.New(rand.NewSource(4))
	totalHops, trials := 0, 300
	maxHops := 0
	for trial := 0; trial < trials; trial++ {
		key := id.ID(rng.Uint64())
		path, err := mesh.Route(peer.Addr(rng.Intn(n)), key)
		if err != nil {
			t.Fatal(err)
		}
		hops := len(path) - 1
		totalHops += hops
		if hops > maxHops {
			maxHops = hops
		}
	}
	mean := float64(totalHops) / float64(trials)
	bound := math.Log(float64(n))/math.Log(16) + 2 // log_2^b N + slack
	if mean > bound {
		t.Errorf("mean hops %.2f exceeds prefix-routing bound %.2f", mean, bound)
	}
	if maxHops > 8 {
		t.Errorf("max hops %d suspiciously high for n=%d", maxHops, n)
	}
}

func TestRouteToExistingIDs(t *testing.T) {
	const n = 200
	routers, descs, _ := perfectRouters(t, n, 5)
	mesh := NewMesh(routers, 0)
	for i := 0; i < 50; i++ {
		target := descs[(i*7)%n]
		path, err := mesh.Route(descs[i].Addr, target.ID)
		if err != nil {
			t.Fatal(err)
		}
		if path[len(path)-1] != target.Addr {
			t.Fatalf("lookup of member %s ended at %d", target, path[len(path)-1])
		}
	}
}

func TestNextHopSelfKey(t *testing.T) {
	routers, descs, _ := perfectRouters(t, 50, 6)
	next, done := routers[0].NextHop(descs[0].ID)
	if !done || next.ID != descs[0].ID {
		t.Error("own key must be delivered locally")
	}
}

func TestLoneNodeOwnsEverything(t *testing.T) {
	d := peer.Descriptor{ID: 42, Addr: 0}
	cfg := core.DefaultConfig()
	r := New(d, core.NewLeafSet(d.ID, cfg.C), core.NewPrefixTable(d.ID, cfg.B, cfg.K), cfg.B)
	next, done := r.NextHop(id.ID(999))
	if !done || next.ID != 42 {
		t.Error("a lone node must root every key")
	}
}

func TestMeshRouteErrors(t *testing.T) {
	routers, _, _ := perfectRouters(t, 20, 7)
	mesh := NewMesh(routers, 0)
	if _, err := mesh.Route(peer.Addr(999), 1); err == nil {
		t.Error("unknown start accepted")
	}
}

// TestRoutingAfterRealBootstrap is the end-to-end claim of the paper: run
// the actual bootstrap protocol over a simulated network, then route over
// the tables it built.
func TestRoutingAfterRealBootstrap(t *testing.T) {
	const n = 128
	net := simnet.New(simnet.Config{Seed: 11})
	ids := id.Unique(n, 12)
	descs := make([]peer.Descriptor, n)
	for i := range descs {
		descs[i] = peer.Descriptor{ID: ids[i], Addr: net.AddNode()}
	}
	oracle := sampling.NewOracle(descs, 13)
	cfg := core.DefaultConfig()
	nodes := make([]*core.Node, n)
	for i, d := range descs {
		nd, err := core.NewNode(d, cfg, oracle)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = nd
		if err := net.Attach(d.Addr, core.ProtoID, nd, cfg.Delta, int64(i)%cfg.Delta); err != nil {
			t.Fatal(err)
		}
	}
	net.Run(cfg.Delta * 30)

	routers := make([]*Router, n)
	for i, nd := range nodes {
		routers[i] = FromBootstrap(nd)
	}
	mesh := NewMesh(routers, 0)
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 200; trial++ {
		key := id.ID(rng.Uint64())
		path, err := mesh.Route(descs[rng.Intn(n)].Addr, key)
		if err != nil {
			t.Fatalf("route over bootstrapped tables: %v", err)
		}
		want := ringClosest(descs, key)
		if path[len(path)-1] != want.Addr {
			t.Fatalf("key %s rooted at %d, want %s", key, path[len(path)-1], want)
		}
	}
}

// TestProximityRoutingCheaper validates the paper's rationale for k > 1:
// choosing the proximally closest of the k slot entries lowers total route
// cost without changing route length or the delivery root.
func TestProximityRoutingCheaper(t *testing.T) {
	const n = 600
	routers, descs, _ := perfectRouters(t, n, 21)
	space := coord.NewRandomSpace(n, 22, 100)

	proxRouters := make([]*Router, n)
	for i, d := range descs {
		cfg := core.DefaultConfig()
		ls := core.NewLeafSet(d.ID, cfg.C)
		ls.Update(descs)
		pt := core.NewPrefixTable(d.ID, cfg.B, cfg.K)
		pt.AddAll(descs)
		proxRouters[i] = New(d, ls, pt, cfg.B).WithProximity(space.Latency)
	}
	plain := NewMesh(routers, 0)
	prox := NewMesh(proxRouters, 0)

	rng := rand.New(rand.NewSource(23))
	var plainCost, proxCost int64
	const trials = 400
	for i := 0; i < trials; i++ {
		key := id.ID(rng.Uint64())
		start := peer.Addr(rng.Intn(n))
		p1, err := plain.Route(start, key)
		if err != nil {
			t.Fatal(err)
		}
		p2, err := prox.Route(start, key)
		if err != nil {
			t.Fatal(err)
		}
		if p1[len(p1)-1] != p2[len(p2)-1] {
			t.Fatalf("proximity choice changed the delivery root for %s", key)
		}
		plainCost += PathCost(p1, space.Latency)
		proxCost += PathCost(p2, space.Latency)
	}
	if proxCost >= plainCost {
		t.Errorf("proximity routing cost %d >= plain %d — k>1 gave no benefit", proxCost, plainCost)
	}
	improvement := 1 - float64(proxCost)/float64(plainCost)
	t.Logf("proximity routing saves %.1f%% of path cost", improvement*100)
	if improvement < 0.05 {
		t.Errorf("improvement %.3f suspiciously small for k=3", improvement)
	}
}

func TestPathCost(t *testing.T) {
	unit := func(a, b peer.Addr) int64 { return 10 }
	if got := PathCost([]peer.Addr{1, 2, 3}, unit); got != 20 {
		t.Errorf("PathCost = %d, want 20", got)
	}
	if got := PathCost([]peer.Addr{1}, unit); got != 0 {
		t.Errorf("single-node path cost = %d, want 0", got)
	}
}

// TestRoutabilityDuringBootstrap validates the paper's Section 4 remark
// that "the prefix tables — even before completed — can already fulfill a
// kind of routing function": route success over the half-built structures
// climbs steeply cycle by cycle, well before perfection.
func TestRoutabilityDuringBootstrap(t *testing.T) {
	const n = 256
	net := simnet.New(simnet.Config{Seed: 31})
	ids := id.Unique(n, 32)
	descs := make([]peer.Descriptor, n)
	for i := range descs {
		descs[i] = peer.Descriptor{ID: ids[i], Addr: net.AddNode()}
	}
	oracle := sampling.NewOracle(descs, 33)
	cfg := core.DefaultConfig()
	nodes := make([]*core.Node, n)
	for i, d := range descs {
		nd, err := core.NewNode(d, cfg, oracle)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = nd
		if err := net.Attach(d.Addr, core.ProtoID, nd, cfg.Delta, int64(i)%cfg.Delta); err != nil {
			t.Fatal(err)
		}
	}
	routability := func() float64 {
		routers := make([]*Router, n)
		for i, nd := range nodes {
			routers[i] = FromBootstrap(nd)
		}
		mesh := NewMesh(routers, 0)
		rng := rand.New(rand.NewSource(34))
		ok := 0
		const trials = 200
		for i := 0; i < trials; i++ {
			key := id.ID(rng.Uint64())
			path, err := mesh.Route(descs[rng.Intn(n)].Addr, key)
			if err != nil {
				continue
			}
			if path[len(path)-1] == ringClosest(descs, key).Addr {
				ok++
			}
		}
		return float64(ok) / trials
	}
	var series []float64
	for _, cycle := range []int64{2, 4, 6, 10} {
		net.Run(cfg.Delta * cycle)
		series = append(series, routability())
	}
	t.Logf("routability at cycles 2,4,6,10: %.2f %.2f %.2f %.2f",
		series[0], series[1], series[2], series[3])
	for i := 1; i < len(series); i++ {
		if series[i]+0.05 < series[i-1] {
			t.Errorf("routability regressed: %v", series)
		}
	}
	if series[len(series)-1] < 0.95 {
		t.Errorf("routability %.2f at cycle 10, want near-total", series[len(series)-1])
	}
	if series[1] < 0.30 {
		t.Errorf("routability %.2f at cycle 4 — half-built tables should already route a fair share", series[1])
	}
}
