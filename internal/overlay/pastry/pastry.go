// Package pastry implements Pastry-style greedy prefix routing on top of
// the structures produced by the bootstrapping service. It demonstrates the
// paper's central claim: the leaf sets and prefix tables built by the
// bootstrap protocol are, verbatim, the routing state of prefix-based DHTs
// such as Pastry, so a jump-started network can route immediately.
package pastry

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/id"
	"repro/internal/peer"
)

// Proximity is a symmetric cost metric between nodes (e.g. measured
// network latency). Routers use it to choose among equivalent prefix-table
// entries.
type Proximity func(a, b peer.Addr) int64

// Router routes keys using one node's bootstrapped state.
type Router struct {
	self  peer.Descriptor
	leaf  *core.LeafSet
	table *core.PrefixTable
	b     int
	prox  Proximity
}

// FromBootstrap adopts a bootstrap node's structures. The router shares the
// underlying leaf set and prefix table; ongoing protocol updates are
// visible to the router, exactly as in a live deployment.
func FromBootstrap(n *core.Node) *Router {
	return &Router{
		self:  n.Self(),
		leaf:  n.Leaf(),
		table: n.Table(),
		b:     n.Config().B,
	}
}

// New builds a router from explicit structures (used by tests).
func New(self peer.Descriptor, leaf *core.LeafSet, table *core.PrefixTable, b int) *Router {
	return &Router{self: self, leaf: leaf, table: table, b: b}
}

// WithProximity makes the router prefer, within a prefix-table slot, the
// entry closest to this node under the given metric — Pastry's locality
// heuristic, enabled by the bootstrap parameter k > 1 (the paper calls
// this out as the reason to keep multiple entries per slot). Any slot
// entry makes the same prefix progress, so route correctness and length
// are unaffected; only per-hop cost changes. It returns the router.
func (r *Router) WithProximity(p Proximity) *Router {
	r.prox = p
	return r
}

// Self returns the descriptor of the owning node.
func (r *Router) Self() peer.Descriptor { return r.self }

// Forget removes a departed peer from the routing structures. Higher
// layers call this when their failure detection declares a peer dead.
func (r *Router) Forget(nodeID id.ID) {
	r.leaf.Remove(nodeID)
	r.table.Remove(nodeID)
}

// LeafSuccessors returns the leaf-set successors, closest first. The slice
// is shared storage; callers must not modify it.
func (r *Router) LeafSuccessors() []peer.Descriptor { return r.leaf.Successors() }

// LeafPredecessors returns the leaf-set predecessors, closest first. The
// slice is shared storage; callers must not modify it.
func (r *Router) LeafPredecessors() []peer.Descriptor { return r.leaf.Predecessors() }

// NextHop returns the next node on the route toward key, following Pastry's
// algorithm: deliver locally when this node is the closest leaf; otherwise
// use the prefix-table entry extending the shared prefix; otherwise fall
// back to any known node strictly closer to the key that does not shorten
// the shared prefix. done is true when the key is rooted here.
func (r *Router) NextHop(key id.ID) (next peer.Descriptor, done bool) {
	if key == r.self.ID {
		return r.self, true
	}
	// Leaf set rule: if the key falls in the span covered by the leaf
	// set, the numerically closest of {leaf set, self} is the root.
	if best, in := r.leafRoot(key); in {
		if best.ID == r.self.ID {
			return r.self, true
		}
		return best, false
	}
	// Prefix rule: extend the common prefix by one digit, choosing the
	// proximally closest slot entry when a metric is installed.
	row := id.CommonPrefixLen(r.self.ID, key, r.b)
	col := key.Digit(row, r.b)
	if slot := r.table.Get(row, col); len(slot) > 0 {
		best := slot[0]
		if r.prox != nil {
			for _, d := range slot[1:] {
				if r.prox(r.self.Addr, d.Addr) < r.prox(r.self.Addr, best.Addr) {
					best = d
				}
			}
		}
		return best, false
	}
	// Rare case: any known node closer to the key with at least as long
	// a shared prefix.
	if d, ok := r.rareCase(key, row); ok {
		return d, false
	}
	// Nothing closer is known: deliver here (best effort).
	return r.self, true
}

// leafRoot reports whether key lies within the leaf set span and, if so,
// returns the numerically closest node among the leaf set and self.
func (r *Router) leafRoot(key id.ID) (peer.Descriptor, bool) {
	succ := r.leaf.Successors()
	pred := r.leaf.Predecessors()
	if len(succ) == 0 && len(pred) == 0 {
		return r.self, true // alone in the world
	}
	// Span: from the farthest predecessor to the farthest successor,
	// clockwise through self.
	lo := r.self.ID
	if len(pred) > 0 {
		lo = pred[len(pred)-1].ID
	}
	hi := r.self.ID
	if len(succ) > 0 {
		hi = succ[len(succ)-1].ID
	}
	// key in [lo, hi] going clockwise from lo?
	span := id.Succ(lo, hi)
	off := id.Succ(lo, key)
	if off > span {
		return peer.Descriptor{Addr: peer.NoAddr}, false
	}
	best := r.self
	bestDist := id.RingDistance(key, r.self.ID)
	for _, d := range succ {
		if dist := id.RingDistance(key, d.ID); dist < bestDist {
			best, bestDist = d, dist
		}
	}
	for _, d := range pred {
		if dist := id.RingDistance(key, d.ID); dist < bestDist {
			best, bestDist = d, dist
		}
	}
	return best, true
}

// rareCase scans everything the node knows for a peer strictly closer to
// the key whose shared prefix with the key is at least row digits.
func (r *Router) rareCase(key id.ID, row int) (peer.Descriptor, bool) {
	selfDist := id.RingDistance(key, r.self.ID)
	best := peer.Descriptor{Addr: peer.NoAddr}
	bestDist := selfDist
	consider := func(d peer.Descriptor) {
		if id.CommonPrefixLen(d.ID, key, r.b) < row {
			return
		}
		if dist := id.RingDistance(key, d.ID); dist < bestDist {
			best, bestDist = d, dist
		}
	}
	for _, d := range r.leaf.Slice() {
		consider(d)
	}
	r.table.Each(func(_, _ int, d peer.Descriptor) bool {
		consider(d)
		return true
	})
	return best, !best.Nil()
}

// Mesh evaluates routing over a set of routers indexed by address,
// simulating message forwarding hop by hop.
type Mesh struct {
	routers map[peer.Addr]*Router
	maxHops int
}

// NewMesh builds an evaluator over the given routers. maxHops bounds route
// length; <= 0 selects a generous default.
func NewMesh(routers []*Router, maxHops int) *Mesh {
	if maxHops <= 0 {
		maxHops = 128
	}
	m := &Mesh{routers: make(map[peer.Addr]*Router, len(routers)), maxHops: maxHops}
	for _, r := range routers {
		m.routers[r.self.Addr] = r
	}
	return m
}

// ErrRouteFailed is returned when a route exceeds the hop budget or visits
// an unknown node.
var ErrRouteFailed = errors.New("pastry: route failed")

// Route forwards key from the given start node until some node declares
// itself the root. It returns the path of node addresses visited, starting
// at start and ending at the root.
func (m *Mesh) Route(start peer.Addr, key id.ID) ([]peer.Addr, error) {
	cur, ok := m.routers[start]
	if !ok {
		return nil, fmt.Errorf("%w: unknown start %d", ErrRouteFailed, start)
	}
	path := []peer.Addr{start}
	for hop := 0; hop < m.maxHops; hop++ {
		next, done := cur.NextHop(key)
		if done {
			return path, nil
		}
		nr, ok := m.routers[next.Addr]
		if !ok {
			return path, fmt.Errorf("%w: hop to unknown node %s", ErrRouteFailed, next)
		}
		path = append(path, next.Addr)
		cur = nr
	}
	return path, fmt.Errorf("%w: exceeded %d hops", ErrRouteFailed, m.maxHops)
}

// PathCost sums the per-hop costs of a route under the given metric.
func PathCost(path []peer.Addr, prox Proximity) int64 {
	var total int64
	for i := 1; i < len(path); i++ {
		total += prox(path[i-1], path[i])
	}
	return total
}
