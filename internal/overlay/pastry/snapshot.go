package pastry

import (
	"repro/internal/id"
	"repro/internal/peer"
)

// Snapshot is an immutable copy of one router's routing state: the leaf
// lists and the populated prefix-table slots, flattened into two backing
// arrays. A snapshot is built under the owner's repair lock and then
// published through an atomic pointer, so any number of concurrent readers
// can route through it while the live core structures are being repaired —
// the copy-on-write discipline the serving plane requires (readers never
// touch a LeafSet or PrefixTable that a repair might be mutating).
//
// Snapshots go stale by design: a departed peer stays in every snapshot
// that listed it until the owner republishes. Readers therefore route with
// NextHopAlive, which takes a liveness filter and steps around dead
// entries, so a stale snapshot costs at most a few skipped candidates,
// never a wrong delivery.
type Snapshot struct {
	self peer.Descriptor
	b    int
	// succ and pred are the leaf lists, closest first.
	succ, pred []peer.Descriptor
	// Populated prefix slots, flattened: slot (row, col) holds
	// entries[slotOff[row*cols+col] : slotOff[row*cols+col+1]]. Only the
	// first `rows` rows are represented; deeper rows are empty.
	rows, cols int
	slotOff    []int32
	entries    []peer.Descriptor
}

// Snapshot captures the router's current routing state. The result shares
// nothing with the live structures; it costs O(leaf + table entries) and is
// meant to be rebuilt only when the state changes (join/repair), not per
// route.
func (r *Router) Snapshot() *Snapshot {
	s := &Snapshot{self: r.self, b: r.b}
	s.succ = append(s.succ, r.leaf.Successors()...)
	s.pred = append(s.pred, r.leaf.Predecessors()...)
	// Find the deepest populated row so the offset array stays O(log N)
	// in practice instead of O(NumDigits * 2^b).
	maxRow := -1
	r.table.Each(func(row, _ int, _ peer.Descriptor) bool {
		if row > maxRow {
			maxRow = row
		}
		return true
	})
	s.rows = maxRow + 1
	s.cols = 1 << uint(r.b)
	if s.rows == 0 {
		return s
	}
	s.slotOff = make([]int32, s.rows*s.cols+1)
	s.entries = make([]peer.Descriptor, 0, r.table.Len())
	// Each visits slots in (row, col) order, so one pass fills the
	// flattened layout; a second pass over slotOff turns counts into
	// offsets.
	cur := 0
	r.table.Each(func(row, col int, d peer.Descriptor) bool {
		idx := row*s.cols + col
		for cur < idx {
			cur++
			s.slotOff[cur] = int32(len(s.entries))
		}
		s.entries = append(s.entries, d)
		s.slotOff[idx+1] = int32(len(s.entries))
		return true
	})
	for i := cur + 1; i < len(s.slotOff); i++ {
		s.slotOff[i] = int32(len(s.entries))
	}
	return s
}

// Self returns the descriptor of the owning node.
func (s *Snapshot) Self() peer.Descriptor { return s.self }

// Leaf returns the snapshot's leaf lists, closest first. The slices are
// the snapshot's backing storage; callers must not modify them.
func (s *Snapshot) Leaf() (succ, pred []peer.Descriptor) { return s.succ, s.pred }

// slot returns the (row, col) slot contents.
func (s *Snapshot) slot(row, col int) []peer.Descriptor {
	if row < 0 || row >= s.rows {
		return nil
	}
	idx := row*s.cols + col
	return s.entries[s.slotOff[idx]:s.slotOff[idx+1]]
}

// Reachable is the liveness filter NextHopAlive consults before it
// considers a candidate: from is the address the route originated at (so a
// partition predicate can reject cross-boundary hops) and to is the
// candidate. A nil filter accepts everything.
type Reachable func(from, to peer.Addr) bool

// NextHopAlive is Router.NextHop evaluated against the snapshot, skipping
// every candidate the filter rejects. done is true when the key is rooted
// at the snapshot's owner (no live candidate is closer). The hot path
// allocates nothing: all scanning works over the snapshot's backing arrays.
func (s *Snapshot) NextHopAlive(key id.ID, origin peer.Addr, ok Reachable) (next peer.Descriptor, done bool) {
	if key == s.self.ID {
		return s.self, true
	}
	if best, in := s.leafRoot(key, origin, ok); in {
		if best.ID == s.self.ID {
			return s.self, true
		}
		return best, false
	}
	row := id.CommonPrefixLen(s.self.ID, key, s.b)
	col := key.Digit(row, s.b)
	for _, d := range s.slot(row, col) {
		if ok == nil || ok(origin, d.Addr) {
			return d, false
		}
	}
	if d, found := s.rareCase(key, row, origin, ok); found {
		return d, false
	}
	return s.self, true
}

// leafRoot reports whether key lies within the live span of the leaf set
// and, if so, returns the closest live node among the leaf entries and
// self. Dead entries neither define the span nor compete for root.
func (s *Snapshot) leafRoot(key id.ID, origin peer.Addr, ok Reachable) (peer.Descriptor, bool) {
	// Farthest live entry in each direction bounds the span.
	lo, hi := s.self.ID, s.self.ID
	anyLive := false
	for i := len(s.pred) - 1; i >= 0; i-- {
		if ok == nil || ok(origin, s.pred[i].Addr) {
			lo = s.pred[i].ID
			anyLive = true
			break
		}
	}
	for i := len(s.succ) - 1; i >= 0; i-- {
		if ok == nil || ok(origin, s.succ[i].Addr) {
			hi = s.succ[i].ID
			anyLive = true
			break
		}
	}
	if !anyLive {
		return s.self, true // alone in the (live) world
	}
	span := id.Succ(lo, hi)
	off := id.Succ(lo, key)
	if off > span {
		return peer.Descriptor{Addr: peer.NoAddr}, false
	}
	best := s.self
	bestDist := id.RingDistance(key, s.self.ID)
	for _, d := range s.succ {
		if ok != nil && !ok(origin, d.Addr) {
			continue
		}
		if dist := id.RingDistance(key, d.ID); dist < bestDist {
			best, bestDist = d, dist
		}
	}
	for _, d := range s.pred {
		if ok != nil && !ok(origin, d.Addr) {
			continue
		}
		if dist := id.RingDistance(key, d.ID); dist < bestDist {
			best, bestDist = d, dist
		}
	}
	return best, true
}

// rareCase scans everything the snapshot knows for a live peer strictly
// closer to the key whose shared prefix with the key is at least row
// digits.
func (s *Snapshot) rareCase(key id.ID, row int, origin peer.Addr, ok Reachable) (peer.Descriptor, bool) {
	best := peer.Descriptor{Addr: peer.NoAddr}
	bestDist := id.RingDistance(key, s.self.ID)
	consider := func(d peer.Descriptor) {
		if ok != nil && !ok(origin, d.Addr) {
			return
		}
		if id.CommonPrefixLen(d.ID, key, s.b) < row {
			return
		}
		if dist := id.RingDistance(key, d.ID); dist < bestDist {
			best, bestDist = d, dist
		}
	}
	for _, d := range s.succ {
		consider(d)
	}
	for _, d := range s.pred {
		consider(d)
	}
	for _, d := range s.entries {
		consider(d)
	}
	return best, !best.Nil()
}

// Repair applies a departure to the router's live structures: the departed
// peer is scrubbed and the candidates (typically the departed node's own
// leaf entries — the peers that inherit its neighborhood) are offered to
// the leaf set and prefix table as replacements. Callers republish a fresh
// Snapshot afterwards. This is the incremental counterpart of rebuilding a
// mesh: one departure costs O(leaf set) work at the affected routers only.
func (r *Router) Repair(departed id.ID, candidates []peer.Descriptor) {
	r.Forget(departed)
	// Never re-adopt the departed peer if the caller's candidate list
	// still carries it (the usual source is the departed node's own
	// neighborhood, which of course does not list the node itself, but a
	// defensive caller may pass broader sets).
	clean := candidates
	for _, d := range candidates {
		if d.ID == departed {
			clean = make([]peer.Descriptor, 0, len(candidates)-1)
			for _, c := range candidates {
				if c.ID != departed {
					clean = append(clean, c)
				}
			}
			break
		}
	}
	r.leaf.Update(clean)
	r.table.AddAll(clean)
}

// Adopt offers candidates to the router's structures without a departure —
// the arrival-side counterpart of Repair, used when a peer (re)joins the
// overlay. Callers republish a fresh Snapshot afterwards.
func (r *Router) Adopt(candidates []peer.Descriptor) {
	r.leaf.Update(candidates)
	r.table.AddAll(candidates)
}
