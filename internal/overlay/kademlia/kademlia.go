// Package kademlia implements Kademlia-style XOR-metric lookups on top of
// the structures produced by the bootstrapping service. A prefix table is
// information-equivalent to Kademlia's k-buckets (row i holds peers whose
// longest common prefix with the owner is exactly i digits, i.e. XOR
// distance in a fixed band), so a bootstrapped network supports iterative
// FindNode immediately.
package kademlia

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/id"
	"repro/internal/peer"
)

// DefaultAlpha is Kademlia's lookup concurrency parameter.
const DefaultAlpha = 3

// Node answers FindNode queries from its bootstrapped routing state.
type Node struct {
	self  peer.Descriptor
	leaf  *core.LeafSet
	table *core.PrefixTable
	k     int
}

// FromBootstrap adopts a bootstrap node's structures; k is the result-set
// size for FindNode (Kademlia's bucket size, here the table's per-slot
// capacity unless overridden by WithK).
func FromBootstrap(n *core.Node) *Node {
	return &Node{
		self:  n.Self(),
		leaf:  n.Leaf(),
		table: n.Table(),
		k:     n.Config().K * 2,
	}
}

// WithK overrides the FindNode result-set size.
func (n *Node) WithK(k int) *Node {
	n.k = k
	return n
}

// Self returns the descriptor of the owning node.
func (n *Node) Self() peer.Descriptor { return n.self }

// known returns everything this node knows, deduplicated.
func (n *Node) known() []peer.Descriptor {
	set := peer.NewSet(n.leaf.Len() + n.table.Len() + 1)
	set.Add(n.self)
	set.AddAll(n.leaf.Slice())
	set.AddAll(n.table.Entries())
	return set.Copy()
}

// FindNode returns the k known descriptors closest to target in XOR
// distance — Kademlia's RPC, answered from bootstrapped state.
func (n *Node) FindNode(target id.ID) []peer.Descriptor {
	all := n.known()
	peer.SortByXORDistance(all, target)
	if len(all) > n.k {
		all = all[:n.k]
	}
	return all
}

// Mesh evaluates iterative lookups over a population of nodes.
type Mesh struct {
	nodes map[peer.Addr]*Node
	alpha int
	maxRT int // round-trip budget
}

// NewMesh builds a lookup evaluator. alpha <= 0 selects DefaultAlpha.
func NewMesh(nodes []*Node, alpha int) *Mesh {
	if alpha <= 0 {
		alpha = DefaultAlpha
	}
	m := &Mesh{nodes: make(map[peer.Addr]*Node, len(nodes)), alpha: alpha, maxRT: 64}
	for _, n := range nodes {
		m.nodes[n.self.Addr] = n
	}
	return m
}

// ErrLookupFailed is returned when a lookup cannot make progress.
var ErrLookupFailed = errors.New("kademlia: lookup failed")

// LookupResult reports the outcome of an iterative lookup.
type LookupResult struct {
	// Closest is the best node found, XOR-closest first.
	Closest []peer.Descriptor
	// Queried is the number of FindNode RPCs issued.
	Queried int
	// Rounds is the number of strictly-improving iteration rounds.
	Rounds int
}

// Lookup performs an iterative FindNode from the given start node: query
// the alpha closest unqueried candidates, merge their answers, and stop
// when the closest known node stops improving (standard Kademlia
// convergence rule).
func (m *Mesh) Lookup(start peer.Addr, target id.ID) (*LookupResult, error) {
	origin, ok := m.nodes[start]
	if !ok {
		return nil, fmt.Errorf("%w: unknown start %d", ErrLookupFailed, start)
	}
	type candidate struct {
		desc    peer.Descriptor
		queried bool
	}
	shortlist := make(map[id.ID]*candidate)
	add := func(ds []peer.Descriptor) {
		for _, d := range ds {
			if _, dup := shortlist[d.ID]; !dup {
				shortlist[d.ID] = &candidate{desc: d}
			}
		}
	}
	add(origin.FindNode(target))
	res := &LookupResult{}

	sorted := func() []*candidate {
		out := make([]*candidate, 0, len(shortlist))
		for _, c := range shortlist {
			out = append(out, c)
		}
		sort.Slice(out, func(i, j int) bool {
			return id.XORDistance(target, out[i].desc.ID) < id.XORDistance(target, out[j].desc.ID)
		})
		return out
	}

	var best id.ID
	haveBest := false
	for round := 0; round < m.maxRT; round++ {
		cands := sorted()
		if len(cands) == 0 {
			return nil, fmt.Errorf("%w: empty shortlist", ErrLookupFailed)
		}
		if haveBest && cands[0].desc.ID == best {
			break // no improvement: converged
		}
		best, haveBest = cands[0].desc.ID, true
		res.Rounds++
		queriedAny := false
		for _, c := range cands {
			if c.queried {
				continue
			}
			c.queried = true
			node, ok := m.nodes[c.desc.Addr]
			if !ok {
				continue // dead or unknown peer: Kademlia just skips it
			}
			res.Queried++
			add(node.FindNode(target))
			queriedAny = true
			if res.Queried%m.alpha == 0 {
				break // end of this round's concurrent batch
			}
		}
		if !queriedAny {
			break // every candidate already queried
		}
	}
	final := sorted()
	k := origin.k
	if len(final) > k {
		final = final[:k]
	}
	res.Closest = make([]peer.Descriptor, len(final))
	for i, c := range final {
		res.Closest[i] = c.desc
	}
	return res, nil
}
