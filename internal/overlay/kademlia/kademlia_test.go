package kademlia

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/id"
	"repro/internal/peer"
	"repro/internal/sampling"
	"repro/internal/simnet"
)

// perfectNodes builds Kademlia nodes whose bootstrap structures were fed
// the full membership.
func perfectNodes(t testing.TB, n int, seed int64) ([]*Node, []peer.Descriptor) {
	t.Helper()
	ids := id.Unique(n, seed)
	descs := make([]peer.Descriptor, n)
	for i, v := range ids {
		descs[i] = peer.Descriptor{ID: v, Addr: peer.Addr(i)}
	}
	cfg := core.DefaultConfig()
	nodes := make([]*Node, n)
	for i, d := range descs {
		ls := core.NewLeafSet(d.ID, cfg.C)
		ls.Update(descs)
		pt := core.NewPrefixTable(d.ID, cfg.B, cfg.K)
		pt.AddAll(descs)
		nodes[i] = &Node{self: d, leaf: ls, table: pt, k: cfg.K * 2}
	}
	return nodes, descs
}

func xorClosest(descs []peer.Descriptor, key id.ID) peer.Descriptor {
	best := descs[0]
	for _, d := range descs[1:] {
		if id.XORDistance(key, d.ID) < id.XORDistance(key, best.ID) {
			best = d
		}
	}
	return best
}

func TestFindNodeReturnsClosestKnown(t *testing.T) {
	nodes, _ := perfectNodes(t, 100, 1)
	n := nodes[0]
	target := id.ID(0xDEADBEEF12345678)
	got := n.FindNode(target)
	if len(got) == 0 {
		t.Fatal("empty FindNode result")
	}
	for i := 1; i < len(got); i++ {
		if id.XORDistance(target, got[i-1].ID) > id.XORDistance(target, got[i].ID) {
			t.Fatal("FindNode result not sorted by XOR distance")
		}
	}
	// The first result must be at least as close as anything in the
	// node's own structures.
	bestKnown := got[0]
	for _, d := range n.known() {
		if id.XORDistance(target, d.ID) < id.XORDistance(target, bestKnown.ID) {
			t.Fatalf("FindNode missed a closer known node %s", d)
		}
	}
}

func TestLookupFindsGlobalClosest(t *testing.T) {
	const n = 300
	nodes, descs := perfectNodes(t, n, 2)
	mesh := NewMesh(nodes, 0)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		key := id.ID(rng.Uint64())
		start := peer.Addr(rng.Intn(n))
		res, err := mesh.Lookup(start, key)
		if err != nil {
			t.Fatalf("lookup %s: %v", key, err)
		}
		want := xorClosest(descs, key)
		if len(res.Closest) == 0 || res.Closest[0].ID != want.ID {
			t.Fatalf("lookup %s found %v, want %s", key, res.Closest[0], want)
		}
	}
}

func TestLookupSelf(t *testing.T) {
	nodes, descs := perfectNodes(t, 50, 4)
	mesh := NewMesh(nodes, 0)
	res, err := mesh.Lookup(descs[7].Addr, descs[7].ID)
	if err != nil {
		t.Fatal(err)
	}
	if res.Closest[0].ID != descs[7].ID {
		t.Error("lookup of own ID must find self")
	}
}

func TestLookupQueryBudgetLogarithmic(t *testing.T) {
	const n = 400
	nodes, _ := perfectNodes(t, n, 5)
	mesh := NewMesh(nodes, 0)
	rng := rand.New(rand.NewSource(6))
	totalQueried := 0
	const trials = 100
	for trial := 0; trial < trials; trial++ {
		res, err := mesh.Lookup(peer.Addr(rng.Intn(n)), id.ID(rng.Uint64()))
		if err != nil {
			t.Fatal(err)
		}
		totalQueried += res.Queried
	}
	if mean := float64(totalQueried) / trials; mean > 30 {
		t.Errorf("mean queries per lookup %.1f, expected O(log N) ~ small", mean)
	}
}

func TestLookupUnknownStart(t *testing.T) {
	nodes, _ := perfectNodes(t, 20, 7)
	mesh := NewMesh(nodes, 0)
	if _, err := mesh.Lookup(peer.Addr(999), 1); err == nil {
		t.Error("unknown start accepted")
	}
}

func TestWithK(t *testing.T) {
	nodes, _ := perfectNodes(t, 60, 8)
	n := nodes[0].WithK(5)
	if got := n.FindNode(0); len(got) != 5 {
		t.Errorf("FindNode returned %d, want 5", len(got))
	}
}

// TestLookupAfterRealBootstrap: run the actual bootstrap protocol, then
// perform Kademlia lookups over the resulting tables.
func TestLookupAfterRealBootstrap(t *testing.T) {
	const n = 128
	net := simnet.New(simnet.Config{Seed: 21})
	ids := id.Unique(n, 22)
	descs := make([]peer.Descriptor, n)
	for i := range descs {
		descs[i] = peer.Descriptor{ID: ids[i], Addr: net.AddNode()}
	}
	oracle := sampling.NewOracle(descs, 23)
	cfg := core.DefaultConfig()
	bnodes := make([]*core.Node, n)
	for i, d := range descs {
		nd, err := core.NewNode(d, cfg, oracle)
		if err != nil {
			t.Fatal(err)
		}
		bnodes[i] = nd
		if err := net.Attach(d.Addr, core.ProtoID, nd, cfg.Delta, int64(i)%cfg.Delta); err != nil {
			t.Fatal(err)
		}
	}
	net.Run(cfg.Delta * 30)

	nodes := make([]*Node, n)
	for i, bn := range bnodes {
		nodes[i] = FromBootstrap(bn)
	}
	mesh := NewMesh(nodes, 0)
	rng := rand.New(rand.NewSource(24))
	miss := 0
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		key := id.ID(rng.Uint64())
		res, err := mesh.Lookup(descs[rng.Intn(n)].Addr, key)
		if err != nil {
			t.Fatalf("lookup: %v", err)
		}
		if res.Closest[0].ID != xorClosest(descs, key).ID {
			miss++
		}
	}
	if miss > trials/100 {
		t.Errorf("%d/%d lookups missed the global closest node", miss, trials)
	}
}
