package tapestry

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/id"
	"repro/internal/peer"
	"repro/internal/sampling"
	"repro/internal/simnet"
)

func perfectRouters(t testing.TB, n int, seed int64) ([]*Router, []peer.Descriptor) {
	t.Helper()
	ids := id.Unique(n, seed)
	descs := make([]peer.Descriptor, n)
	for i, v := range ids {
		descs[i] = peer.Descriptor{ID: v, Addr: peer.Addr(i)}
	}
	cfg := core.DefaultConfig()
	routers := make([]*Router, n)
	for i, d := range descs {
		pt := core.NewPrefixTable(d.ID, cfg.B, cfg.K)
		pt.AddAll(descs)
		routers[i] = New(d, pt, cfg.B)
	}
	return routers, descs
}

// TestRootConsistency is the key property of surrogate routing: every
// start node maps a key to the same surrogate root, using prefix tables
// alone (no leaf sets).
func TestRootConsistency(t *testing.T) {
	const n = 300
	routers, descs := perfectRouters(t, n, 1)
	mesh := NewMesh(routers, 0)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 60; trial++ {
		key := id.ID(rng.Uint64())
		root0, err := mesh.SurrogateRoot(descs[0].Addr, key)
		if err != nil {
			t.Fatal(err)
		}
		for probe := 0; probe < 10; probe++ {
			start := descs[rng.Intn(n)].Addr
			root, err := mesh.SurrogateRoot(start, key)
			if err != nil {
				t.Fatalf("route from %d: %v", start, err)
			}
			if root != root0 {
				t.Fatalf("key %s: root %d from %d, but %d from node 0", key, root, start, root0)
			}
		}
	}
}

func TestRouteToMemberEndsThere(t *testing.T) {
	const n = 200
	routers, descs := perfectRouters(t, n, 3)
	mesh := NewMesh(routers, 0)
	for i := 0; i < 50; i++ {
		target := descs[(i*11)%n]
		root, err := mesh.SurrogateRoot(descs[i].Addr, target.ID)
		if err != nil {
			t.Fatal(err)
		}
		if root != target.Addr {
			t.Fatalf("lookup of member %s rooted at %d", target, root)
		}
	}
}

func TestHopsBounded(t *testing.T) {
	const n = 400
	routers, descs := perfectRouters(t, n, 5)
	mesh := NewMesh(routers, 0)
	rng := rand.New(rand.NewSource(6))
	total := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		path, err := mesh.Route(descs[rng.Intn(n)].Addr, id.ID(rng.Uint64()))
		if err != nil {
			t.Fatal(err)
		}
		total += len(path) - 1
	}
	if mean := float64(total) / trials; mean > 4 {
		t.Errorf("mean hops %.2f too high for n=%d", mean, n)
	}
}

func TestLoneNode(t *testing.T) {
	d := peer.Descriptor{ID: 7, Addr: 0}
	cfg := core.DefaultConfig()
	r := New(d, core.NewPrefixTable(d.ID, cfg.B, cfg.K), cfg.B)
	next, _, done := r.NextHop(id.ID(12345), 0)
	if !done || next.ID != 7 {
		t.Error("a lone node must root every key")
	}
}

func TestMeshErrors(t *testing.T) {
	routers, _ := perfectRouters(t, 10, 7)
	mesh := NewMesh(routers, 0)
	if _, err := mesh.Route(peer.Addr(999), 1); err == nil {
		t.Error("unknown start accepted")
	}
}

// TestAfterRealBootstrap: surrogate roots are consistent over tables built
// by the actual protocol.
func TestAfterRealBootstrap(t *testing.T) {
	const n = 128
	net := simnet.New(simnet.Config{Seed: 9})
	ids := id.Unique(n, 10)
	descs := make([]peer.Descriptor, n)
	for i := range descs {
		descs[i] = peer.Descriptor{ID: ids[i], Addr: net.AddNode()}
	}
	oracle := sampling.NewOracle(descs, 11)
	cfg := core.DefaultConfig()
	routers := make([]*Router, n)
	nodes := make([]*core.Node, n)
	for i, d := range descs {
		nd, err := core.NewNode(d, cfg, oracle)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = nd
		if err := net.Attach(d.Addr, core.ProtoID, nd, cfg.Delta, int64(i)%cfg.Delta); err != nil {
			t.Fatal(err)
		}
	}
	net.Run(cfg.Delta * 30)
	for i, nd := range nodes {
		routers[i] = FromBootstrap(nd)
	}
	mesh := NewMesh(routers, 0)
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 50; trial++ {
		key := id.ID(rng.Uint64())
		root0, err := mesh.SurrogateRoot(descs[0].Addr, key)
		if err != nil {
			t.Fatal(err)
		}
		root1, err := mesh.SurrogateRoot(descs[n/2].Addr, key)
		if err != nil {
			t.Fatal(err)
		}
		if root0 != root1 {
			t.Fatalf("inconsistent surrogate roots for %s: %d vs %d", key, root0, root1)
		}
	}
}
