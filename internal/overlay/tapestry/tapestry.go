// Package tapestry implements Tapestry-style surrogate routing over the
// structures produced by the bootstrapping service. Where Pastry falls
// back to its leaf set, Tapestry resolves a missing prefix-table slot
// deterministically: it tries the next higher digit value at the same
// level (wrapping), a rule every node applies identically, so any key
// maps to exactly one "surrogate root" using prefix tables alone.
//
// Including it alongside pastry and kademlia demonstrates the breadth of
// the paper's claim: one bootstrap output feeds all prefix-based DHTs.
package tapestry

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/id"
	"repro/internal/peer"
)

// Router routes keys with surrogate resolution over one node's
// bootstrapped state.
type Router struct {
	self  peer.Descriptor
	table *core.PrefixTable
	b     int
}

// FromBootstrap adopts a bootstrap node's prefix table.
func FromBootstrap(n *core.Node) *Router {
	return &Router{self: n.Self(), table: n.Table(), b: n.Config().B}
}

// New builds a router from an explicit table (used by tests).
func New(self peer.Descriptor, table *core.PrefixTable, b int) *Router {
	return &Router{self: self, table: table, b: b}
}

// Self returns the descriptor of the owning node.
func (r *Router) Self() peer.Descriptor { return r.self }

// NextHop advances the surrogate walk from the given level. Tapestry
// routes level by level: at level l the node resolves digit l of the key,
// taking the next higher filled slot (wrapping) when the exact one is
// empty, and counting itself as the match when its own digit comes first
// in that scan. The level strictly increases along a route, so walks
// terminate in at most 64/b hops. done is true when this node is the
// key's surrogate root.
func (r *Router) NextHop(key id.ID, level int) (next peer.Descriptor, nextLevel int, done bool) {
	cols := 1 << uint(r.b)
	for l := level; l < id.NumDigits(r.b); l++ {
		want := key.Digit(l, r.b)
		own := r.self.ID.Digit(l, r.b)
		advanced := false
		for off := 0; off < cols; off++ {
			col := (want + off) % cols
			if col == own {
				// We are the surrogate match at this level;
				// resolve the next level locally.
				advanced = true
				break
			}
			if slot := r.table.Get(l, col); len(slot) > 0 {
				return slot[0], l + 1, false
			}
		}
		if !advanced {
			// No slot and not our own digit anywhere: the row is
			// empty, meaning no other node shares our l-digit
			// prefix; we are the root.
			return r.self, l, true
		}
	}
	return r.self, id.NumDigits(r.b), true
}

// Mesh evaluates surrogate routing over a set of routers.
type Mesh struct {
	routers map[peer.Addr]*Router
	maxHops int
}

// NewMesh builds an evaluator. maxHops <= 0 selects one hop per digit
// level plus slack.
func NewMesh(routers []*Router, maxHops int) *Mesh {
	m := &Mesh{routers: make(map[peer.Addr]*Router, len(routers)), maxHops: maxHops}
	for _, r := range routers {
		m.routers[r.self.Addr] = r
		if maxHops <= 0 {
			m.maxHops = id.NumDigits(r.b) + 2
		}
	}
	return m
}

// ErrRouteFailed is returned when a route exceeds the hop budget or visits
// an unknown node.
var ErrRouteFailed = errors.New("tapestry: route failed")

// Route forwards key from start until a node declares itself the
// surrogate root, returning the visited path.
func (m *Mesh) Route(start peer.Addr, key id.ID) ([]peer.Addr, error) {
	cur, ok := m.routers[start]
	if !ok {
		return nil, fmt.Errorf("%w: unknown start %d", ErrRouteFailed, start)
	}
	path := []peer.Addr{start}
	level := 0
	for hop := 0; hop < m.maxHops; hop++ {
		next, nextLevel, done := cur.NextHop(key, level)
		if done {
			return path, nil
		}
		nr, ok := m.routers[next.Addr]
		if !ok {
			return path, fmt.Errorf("%w: hop to unknown node %s", ErrRouteFailed, next)
		}
		path = append(path, next.Addr)
		cur = nr
		level = nextLevel
	}
	return path, fmt.Errorf("%w: exceeded %d hops", ErrRouteFailed, m.maxHops)
}

// SurrogateRoot computes the key's root by walking from start; it is the
// node the overlay assigns responsibility for the key to.
func (m *Mesh) SurrogateRoot(start peer.Addr, key id.ID) (peer.Addr, error) {
	path, err := m.Route(start, key)
	if err != nil {
		return peer.NoAddr, err
	}
	return path[len(path)-1], nil
}
