package peer

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/id"
)

// TestSelectNClosestMatchesFullSort is the equivalence property the
// createMessage rewrite depends on: partial selection must return exactly
// the prefix a full ring-distance sort would.
func TestSelectNClosestMatchesFullSort(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		u := 1 + rng.Intn(200)
		ds := make([]Descriptor, 0, u)
		seen := make(map[id.ID]bool, u)
		for len(ds) < u {
			v := id.ID(rng.Uint64())
			if seen[v] {
				continue
			}
			seen[v] = true
			ds = append(ds, Descriptor{ID: v, Addr: Addr(len(ds))})
		}
		pivot := id.ID(rng.Uint64())
		n := rng.Intn(u + 10)

		want := make([]Descriptor, u)
		copy(want, ds)
		SortByRingDistance(want, pivot)
		if n < u {
			want = want[:n]
		}

		work := make([]Descriptor, u)
		copy(work, ds)
		got := SelectNClosest(work, pivot, n)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (u=%d n=%d pivot=%v): selection diverged from full sort\ngot  %v\nwant %v",
				trial, u, n, pivot, got, want)
		}
	}
}

func TestSelectNClosestEdges(t *testing.T) {
	ds := []Descriptor{{ID: 5, Addr: 1}, {ID: 9, Addr: 2}}
	if got := SelectNClosest(ds, 0, 0); len(got) != 0 {
		t.Errorf("n=0 returned %v", got)
	}
	if got := SelectNClosest(ds, 0, -3); len(got) != 0 {
		t.Errorf("n<0 returned %v", got)
	}
	if got := SelectNClosest(nil, 0, 4); len(got) != 0 {
		t.Errorf("empty input returned %v", got)
	}
	got := SelectNClosest(ds, 4, 10)
	if len(got) != 2 || got[0].ID != 5 {
		t.Errorf("n>len = %v, want full sorted slice", got)
	}
}

func TestSetReset(t *testing.T) {
	s := NewSet(4)
	s.AddAll([]Descriptor{d(1), d(2), d(3)})
	s.Reset()
	if s.Len() != 0 {
		t.Fatalf("len after reset = %d", s.Len())
	}
	if s.Contains(1) {
		t.Error("reset set still contains old ID")
	}
	if !s.Add(d(2)) {
		t.Error("add after reset rejected")
	}
	if s.Len() != 1 || !s.Contains(2) {
		t.Error("set unusable after reset")
	}
}
