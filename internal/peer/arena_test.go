package peer

import (
	"sync"
	"testing"
)

// TestArenaGetPutReuse checks the core recycling contract: a released block
// is handed out again for the same capacity, and it comes back zeroed so no
// descriptor leaks from the previous owner.
func TestArenaGetPutReuse(t *testing.T) {
	a := NewDescriptorArena()
	blk := a.Get(20)
	if len(blk) != 0 || cap(blk) != 20 {
		t.Fatalf("Get(20) = len %d cap %d, want 0/20", len(blk), cap(blk))
	}
	blk = append(blk, Descriptor{ID: 1, Addr: 2}, Descriptor{ID: 3, Addr: 4})
	first := &blk[0]
	a.Put(blk)

	got := a.Get(20)
	if cap(got) != 20 {
		t.Fatalf("recycled Get cap = %d, want 20", cap(got))
	}
	if &got[:1][0] != first {
		t.Error("released block was not reused for the same capacity")
	}
	for i, d := range got[:cap(got)] {
		if d != (Descriptor{}) {
			t.Fatalf("recycled block slot %d not zeroed: %+v", i, d)
		}
	}
}

// TestArenaDistinctCapacities checks that size classes never mix: blocks of
// different capacities come from different chunks and recycle separately.
func TestArenaDistinctCapacities(t *testing.T) {
	a := NewDescriptorArena()
	b20 := a.Get(20)
	b3 := a.Get(3)
	if cap(b20) != 20 || cap(b3) != 3 {
		t.Fatalf("caps = %d, %d, want 20, 3", cap(b20), cap(b3))
	}
	a.Put(b20)
	if got := a.Get(3); cap(got) != 3 {
		t.Errorf("Get(3) after Put(cap-20 block) returned cap %d", cap(got))
	}
}

// TestArenaChunkCarving checks that consecutive blocks of one capacity are
// carved from a single chunk (adjacent memory) and that the three-index
// carve caps each block so appends cannot bleed into its neighbour.
func TestArenaChunkCarving(t *testing.T) {
	a := NewDescriptorArena()
	b1 := a.Get(4)
	b2 := a.Get(4)
	b1 = append(b1, Descriptor{ID: 10}, Descriptor{ID: 11}, Descriptor{ID: 12}, Descriptor{ID: 13})
	// Appending past b1's capacity must reallocate, not overwrite b2.
	b1 = append(b1, Descriptor{ID: 99})
	b2 = append(b2, Descriptor{ID: 20})
	if b2[0].ID != 20 {
		t.Errorf("neighbour block corrupted by over-append: %+v", b2[0])
	}
	_ = b1
}

// TestArenaNilFallback checks the nil-arena contract: Get allocates from
// the heap, Put is a no-op, Outstanding is 0.
func TestArenaNilFallback(t *testing.T) {
	var a *DescriptorArena
	blk := a.Get(5)
	if len(blk) != 0 || cap(blk) != 5 {
		t.Fatalf("nil Get(5) = len %d cap %d, want 0/5", len(blk), cap(blk))
	}
	a.Put(blk)
	if a.Outstanding() != 0 {
		t.Error("nil arena Outstanding != 0")
	}
	if a.Get(0) != nil {
		t.Error("Get(0) should return nil")
	}
}

// TestArenaOutstanding checks the leak/double-free detector: Outstanding
// counts exactly the blocks issued and not yet returned.
func TestArenaOutstanding(t *testing.T) {
	a := NewDescriptorArena()
	b1, b2, b3 := a.Get(8), a.Get(8), a.Get(16)
	if got := a.Outstanding(); got != 3 {
		t.Fatalf("Outstanding = %d, want 3", got)
	}
	a.Put(b1)
	a.Put(b3)
	if got := a.Outstanding(); got != 1 {
		t.Fatalf("Outstanding = %d, want 1", got)
	}
	a.Put(b2)
	if got := a.Outstanding(); got != 0 {
		t.Fatalf("Outstanding = %d, want 0", got)
	}
}

// TestArenaAdoptsForeignBlock checks that a heap slice handed to Put (from
// code mixing arena-backed and plain construction) is adopted into the
// matching size class instead of rejected.
func TestArenaAdoptsForeignBlock(t *testing.T) {
	a := NewDescriptorArena()
	foreign := make([]Descriptor, 0, 7)
	foreign = append(foreign, Descriptor{ID: 42})
	a.Put(foreign)
	got := a.Get(7)
	if cap(got) != 7 {
		t.Fatalf("Get(7) cap = %d", cap(got))
	}
	if &got[:1][0] != &foreign[:1][0] {
		t.Error("adopted block was not recycled")
	}
	if got[:1][0] != (Descriptor{}) {
		t.Error("adopted block not zeroed")
	}
}

// TestArenaConcurrentHammer drives Get/Put from many goroutines — the
// livenet startup pattern, where every host draws its node's blocks
// concurrently. Run under -race; the final Outstanding must be zero.
func TestArenaConcurrentHammer(t *testing.T) {
	a := NewDescriptorArena()
	caps := []int{3, 8, 20, 30}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			held := make([][]Descriptor, 0, 16)
			for i := 0; i < 500; i++ {
				c := caps[(g+i)%len(caps)]
				blk := a.Get(c)
				blk = append(blk, Descriptor{ID: 1}) // dirty it
				held = append(held, blk)
				if len(held) == 16 {
					for _, b := range held {
						a.Put(b)
					}
					held = held[:0]
				}
			}
			for _, b := range held {
				a.Put(b)
			}
		}(g)
	}
	wg.Wait()
	if got := a.Outstanding(); got != 0 {
		t.Errorf("Outstanding after hammer = %d, want 0", got)
	}
}
