package peer

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/id"
)

func d(n uint64) Descriptor { return Descriptor{ID: id.ID(n), Addr: Addr(n % 1000)} }

func TestSetAddDedup(t *testing.T) {
	s := NewSet(4)
	if !s.Add(d(1)) {
		t.Error("first add should succeed")
	}
	if s.Add(d(1)) {
		t.Error("duplicate add should be rejected")
	}
	s.AddAll([]Descriptor{d(2), d(3), d(2)})
	if s.Len() != 3 {
		t.Errorf("len = %d, want 3", s.Len())
	}
	if !s.Contains(2) || s.Contains(99) {
		t.Error("contains misbehaves")
	}
}

func TestSetRemove(t *testing.T) {
	s := NewSet(4)
	s.AddAll([]Descriptor{d(1), d(2), d(3)})
	s.Remove(2)
	if s.Len() != 2 || s.Contains(2) {
		t.Fatalf("remove failed: len=%d", s.Len())
	}
	s.Remove(99) // no-op
	if s.Len() != 2 {
		t.Error("removing absent id changed the set")
	}
	// Removing the last element must not corrupt the index.
	s.Remove(3)
	s.Remove(1)
	if s.Len() != 0 {
		t.Errorf("len = %d, want 0", s.Len())
	}
	if !s.Add(d(1)) {
		t.Error("re-adding after removal should succeed")
	}
}

func TestSetRemoveKeepsIndexConsistent(t *testing.T) {
	// Property: after random add/remove interleavings the index agrees
	// with the list.
	rng := rand.New(rand.NewSource(1))
	s := NewSet(8)
	live := make(map[id.ID]struct{})
	for i := 0; i < 2000; i++ {
		v := uint64(rng.Intn(50))
		if rng.Intn(2) == 0 {
			s.Add(d(v))
			live[id.ID(v)] = struct{}{}
		} else {
			s.Remove(id.ID(v))
			delete(live, id.ID(v))
		}
	}
	if s.Len() != len(live) {
		t.Fatalf("len=%d want %d", s.Len(), len(live))
	}
	for _, x := range s.Slice() {
		if _, ok := live[x.ID]; !ok {
			t.Fatalf("stale descriptor %s", x)
		}
		if !s.Contains(x.ID) {
			t.Fatalf("index lost %s", x)
		}
	}
}

func TestSortByRingDistance(t *testing.T) {
	ds := []Descriptor{d(200), d(90), d(110), d(100)}
	SortByRingDistance(ds, 100)
	if ds[0].ID != 100 {
		t.Errorf("self should be first, got %s", ds[0])
	}
	// 90 and 110 are equidistant; tie broken by smaller ID first.
	if ds[1].ID != 90 || ds[2].ID != 110 || ds[3].ID != 200 {
		t.Errorf("unexpected order %v", ds)
	}
}

func TestSortByRingDistanceIsSorted(t *testing.T) {
	f := func(pivot uint64, raw []uint64) bool {
		ds := make([]Descriptor, len(raw))
		for i, v := range raw {
			ds[i] = d(v)
		}
		SortByRingDistance(ds, id.ID(pivot))
		for i := 1; i < len(ds); i++ {
			if id.CompareRing(id.ID(pivot), ds[i-1].ID, ds[i].ID) > 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSortByXORDistance(t *testing.T) {
	ds := []Descriptor{d(0b1000), d(0b0001), d(0b0010)}
	SortByXORDistance(ds, 0)
	if ds[0].ID != 0b0001 || ds[1].ID != 0b0010 || ds[2].ID != 0b1000 {
		t.Errorf("unexpected order %v", ds)
	}
}

func TestDedup(t *testing.T) {
	in := []Descriptor{d(1), d(2), d(1), d(3), d(2)}
	out := Dedup(in)
	if len(out) != 3 {
		t.Fatalf("len = %d, want 3", len(out))
	}
	if out[0].ID != 1 || out[1].ID != 2 || out[2].ID != 3 {
		t.Errorf("order not preserved: %v", out)
	}
	if len(in) != 5 {
		t.Error("input modified")
	}
}

func TestWithout(t *testing.T) {
	in := []Descriptor{d(1), d(2), d(3)}
	out := Without(in, 2)
	if len(out) != 2 || out[0].ID != 1 || out[1].ID != 3 {
		t.Errorf("got %v", out)
	}
}

func TestDescriptorNil(t *testing.T) {
	if (Descriptor{ID: 1, Addr: 3}).Nil() {
		t.Error("real descriptor reported nil")
	}
	if !(Descriptor{ID: 1, Addr: NoAddr}).Nil() {
		t.Error("NoAddr descriptor should be nil")
	}
}
