// Package peer defines node descriptors — the (ID, address) pairs exchanged
// by every gossip protocol in this repository — and small utilities for
// working with descriptor sets.
package peer

import (
	"fmt"
	"slices"
	"sort"

	"repro/internal/flat"
	"repro/internal/id"
)

// Addr identifies a node endpoint. In the simulated networks an address is a
// dense index assigned by the network at registration time; in a real
// deployment it would be an IP:port.
type Addr int32

// NoAddr is the sentinel for absent endpoints. Note that the zero value of
// Addr is a real address; use None for an absent descriptor.
const NoAddr Addr = -1

// None is the absent descriptor. The zero Descriptor value is NOT absent —
// it refers to address 0 — so code needing "no peer" must use None.
var None = Descriptor{Addr: NoAddr}

// Descriptor is the unit of gossip: a node's identifier together with the
// address where it can be reached.
type Descriptor struct {
	ID   id.ID
	Addr Addr
}

// Nil reports whether the descriptor is absent (no endpoint).
func (d Descriptor) Nil() bool { return d.Addr == NoAddr }

// String formats the descriptor for logs and test failures.
func (d Descriptor) String() string {
	return fmt.Sprintf("%s@%d", d.ID, d.Addr)
}

// Set is an order-preserving collection of descriptors with O(1)
// deduplication by ID. The index is an open-addressed flat table rather
// than a built-in map: half the memory per entry, and the layout (hence
// any iteration a future caller might add) is deterministic. The zero
// value is an empty set ready for use; NewSet pre-sizes one.
type Set struct {
	list  []Descriptor
	index flat.Table[int32]
}

// NewSet returns an empty Set with capacity for n descriptors.
func NewSet(n int) *Set {
	s := &Set{list: make([]Descriptor, 0, n)}
	s.index.Reserve(n)
	return s
}

// Add inserts d unless a descriptor with the same ID is already present.
// It reports whether the descriptor was inserted.
func (s *Set) Add(d Descriptor) bool {
	if s.index.Contains(d.ID) {
		return false
	}
	s.index.Put(d.ID, int32(len(s.list)))
	s.list = append(s.list, d)
	return true
}

// AddAll inserts every descriptor of ds, skipping duplicates.
func (s *Set) AddAll(ds []Descriptor) {
	for _, d := range ds {
		s.Add(d)
	}
}

// Contains reports whether a descriptor with the given ID is present.
func (s *Set) Contains(nodeID id.ID) bool {
	return s.index.Contains(nodeID)
}

// Remove deletes the descriptor with the given ID, if present. The last
// list element takes the vacated position (swap-delete), so insertion
// order is preserved only up to removals.
func (s *Set) Remove(nodeID id.ID) {
	i, ok := s.index.Get(nodeID)
	if !ok {
		return
	}
	last := int32(len(s.list) - 1)
	s.list[i] = s.list[last]
	s.index.Put(s.list[i].ID, i)
	s.list = s.list[:last]
	s.index.Delete(nodeID)
}

// Len returns the number of descriptors in the set.
func (s *Set) Len() int { return len(s.list) }

// Reset empties the set while retaining its allocated capacity, so a Set
// can serve as a reusable scratch buffer on a hot path.
func (s *Set) Reset() {
	s.list = s.list[:0]
	s.index.Clear()
}

// Slice returns the descriptors in insertion order (modulo removals). The
// returned slice is the set's backing storage; callers must not modify it.
func (s *Set) Slice() []Descriptor { return s.list }

// Copy returns a fresh slice with the set's contents.
func (s *Set) Copy() []Descriptor {
	out := make([]Descriptor, len(s.list))
	copy(out, s.list)
	return out
}

// SortByRingDistance orders ds in place by ring distance from the pivot,
// closest first. Ties are broken by ID so the order is deterministic: the
// comparator is a total order over distinct IDs, which also makes the
// result independent of the sort algorithm. slices.SortFunc rather than
// sort.Slice keeps the per-call reflection swapper allocation off the
// message-construction hot path.
func SortByRingDistance(ds []Descriptor, pivot id.ID) {
	slices.SortFunc(ds, func(a, b Descriptor) int {
		if ringLess(pivot, a, b) {
			return -1
		}
		if ringLess(pivot, b, a) {
			return 1
		}
		return 0
	})
}

// ringLess reports whether a sorts before b by ring distance from pivot,
// breaking ties by ID — the same strict weak order SortByRingDistance uses.
func ringLess(pivot id.ID, a, b Descriptor) bool {
	if c := id.CompareRing(pivot, a.ID, b.ID); c != 0 {
		return c < 0
	}
	return a.ID < b.ID
}

// SelectNClosest partially orders ds in place so that its first n elements
// are the n descriptors closest to pivot by ring distance, sorted closest
// first, and returns that prefix. For n ≥ len(ds) it is a full sort. The
// result is element-for-element identical to SortByRingDistance followed by
// truncation to n, but costs O(u log n) instead of O(u log u) — the win the
// bootstrap protocol's createMessage depends on when a node knows far more
// peers than fit in one message.
func SelectNClosest(ds []Descriptor, pivot id.ID, n int) []Descriptor {
	if n <= 0 {
		return ds[:0]
	}
	if n >= len(ds) {
		SortByRingDistance(ds, pivot)
		return ds
	}
	// Max-heap over ds[:n] keyed on ring distance (root = farthest kept),
	// then stream the tail through it keeping only closer elements.
	for i := n/2 - 1; i >= 0; i-- {
		selectSiftDown(ds[:n], pivot, i)
	}
	for i := n; i < len(ds); i++ {
		if ringLess(pivot, ds[i], ds[0]) {
			ds[0], ds[i] = ds[i], ds[0]
			selectSiftDown(ds[:n], pivot, 0)
		}
	}
	SortByRingDistance(ds[:n], pivot)
	return ds[:n]
}

// selectSiftDown restores the max-heap property of h rooted at i.
func selectSiftDown(h []Descriptor, pivot id.ID, i int) {
	n := len(h)
	for {
		child := 2*i + 1
		if child >= n {
			return
		}
		if r := child + 1; r < n && ringLess(pivot, h[child], h[r]) {
			child = r
		}
		if !ringLess(pivot, h[i], h[child]) {
			return
		}
		h[i], h[child] = h[child], h[i]
		i = child
	}
}

// SortByXORDistance orders ds in place by XOR distance from the pivot,
// closest first.
func SortByXORDistance(ds []Descriptor, pivot id.ID) {
	sort.Slice(ds, func(i, j int) bool {
		return id.XORDistance(pivot, ds[i].ID) < id.XORDistance(pivot, ds[j].ID)
	})
}

// Dedup returns ds with duplicate IDs removed, keeping first occurrences.
// The input slice is not modified.
func Dedup(ds []Descriptor) []Descriptor {
	seen := make(map[id.ID]struct{}, len(ds))
	out := make([]Descriptor, 0, len(ds))
	for _, d := range ds {
		if _, dup := seen[d.ID]; dup {
			continue
		}
		seen[d.ID] = struct{}{}
		out = append(out, d)
	}
	return out
}

// Without returns ds with any descriptor matching nodeID removed. The input
// slice is not modified.
func Without(ds []Descriptor, nodeID id.ID) []Descriptor {
	out := make([]Descriptor, 0, len(ds))
	for _, d := range ds {
		if d.ID != nodeID {
			out = append(out, d)
		}
	}
	return out
}
