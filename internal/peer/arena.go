package peer

import "sync"

// DescriptorArena is a chunked free-list allocator for fixed-capacity
// descriptor blocks — the storage plane behind every node's leaf set and
// prefix-table slots in a simulated network. At the paper's scales (2^14-
// 2^20 nodes) the per-node routing state is millions of tiny []Descriptor
// slices; allocating each from the general heap costs an object header and
// a size-class rounding per slice and, worse, churn turns the node
// population over so the heap ends up fragmented with short-lived slot
// arrays. The arena carves blocks out of large chunks instead and recycles
// released blocks by exact capacity, so a churned node's storage is handed
// whole to its replacement.
//
// Ownership rules (the "engine owns, core borrows" contract): the engine or
// harness that builds a network owns one arena for that network's lifetime
// and passes it to core via Config.Arena. Core structures draw blocks with
// Get and must return each block exactly once, via Put, when the owning
// node is permanently retired (simnet churn replaces nodes; livenet
// kill/respawn keeps protocol state, so it must NOT release). A released
// block must never be used again: the next Get of that capacity may hand it
// to another node, and the arena zeroes returned blocks so stale
// descriptors cannot leak across incarnations.
//
// A nil *DescriptorArena is valid and falls back to plain heap allocation
// (Get makes a fresh slice, Put discards), so code paths without an
// engine-owned arena — examples, unit tests, the chord overlay — need no
// special casing.
//
// Get and Put lock a mutex; both sit on cold paths (node construction,
// first fill of a prefix slot, churn) so a single lock is cheaper than
// sharding, even under livenet's concurrent host startup.
type DescriptorArena struct {
	mu          sync.Mutex
	classes     map[int]*arenaClass
	outstanding int
}

// arenaClass is the per-capacity state: the tail of the chunk currently
// being carved and the stack of released blocks awaiting reuse.
type arenaClass struct {
	chunk []Descriptor
	free  [][]Descriptor
}

// arenaChunkBlocks is how many blocks each freshly allocated chunk holds.
const arenaChunkBlocks = 256

// NewDescriptorArena returns an empty arena.
func NewDescriptorArena() *DescriptorArena {
	return &DescriptorArena{classes: make(map[int]*arenaClass)}
}

// Get returns an empty block with exactly the given capacity, reusing a
// released block when one is available. On a nil arena it allocates from
// the heap.
func (a *DescriptorArena) Get(capacity int) []Descriptor {
	if capacity <= 0 {
		return nil
	}
	if a == nil {
		return make([]Descriptor, 0, capacity)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	c := a.classes[capacity]
	if c == nil {
		c = &arenaClass{}
		a.classes[capacity] = c
	}
	a.outstanding++
	if n := len(c.free); n > 0 {
		blk := c.free[n-1]
		c.free[n-1] = nil
		c.free = c.free[:n-1]
		return blk
	}
	if len(c.chunk) < capacity {
		c.chunk = make([]Descriptor, capacity*arenaChunkBlocks)
	}
	blk := c.chunk[0:0:capacity]
	c.chunk = c.chunk[capacity:]
	return blk
}

// Put returns a block obtained from Get. The block is zeroed and recycled
// into the free list for its capacity; the caller must not touch it again.
// On a nil arena Put is a no-op (the block is simply left to the GC).
func (a *DescriptorArena) Put(blk []Descriptor) {
	if a == nil || cap(blk) == 0 {
		return
	}
	full := blk[0:cap(blk)]
	clear(full)
	a.mu.Lock()
	defer a.mu.Unlock()
	c := a.classes[cap(blk)]
	if c == nil {
		// A block the arena never issued (plain heap slice handed back by
		// mixed-construction code): adopt it rather than reject it.
		c = &arenaClass{}
		a.classes[cap(blk)] = c
	}
	a.outstanding--
	c.free = append(c.free, full[:0])
}

// Outstanding returns the number of blocks issued and not yet returned —
// the lifecycle tests' double-free and leak detector.
func (a *DescriptorArena) Outstanding() int {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.outstanding
}
