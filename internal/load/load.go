package load

import (
	"errors"
	"math/rand"
	"sync"
	"time"

	"repro/internal/dht"
	"repro/internal/id"
	"repro/internal/peer"
)

// Config parameterises a generator. The zero value is not useful; fill in
// at least Workers and KeySpace (New applies the documented defaults for
// zero fields).
type Config struct {
	// Workers is G, the number of closed-loop workers (default 1). Each
	// worker issues its share of a cycle's ops sequentially — offered
	// load scales with G, as in a closed-loop benchmark client.
	Workers int
	// KeySpace is the number of distinct keys (default 1024). Keys are
	// drawn deterministically from Seed.
	KeySpace int
	// GetRatio is the fraction of operations that are gets: 0 selects the
	// default 0.9; negative forces an all-put workload.
	GetRatio float64
	// ZipfS skews key popularity: > 1 selects a Zipf(s) distribution over
	// the key space (hot keys first), anything else selects uniform.
	ZipfS float64
	// ValueSize is the byte length of every written value (default 64).
	ValueSize int
	// Seed makes the op stream deterministic: worker w derives its RNG
	// from Seed and w only, so a run is reproducible for any fixed
	// (Config, cluster history).
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.KeySpace <= 0 {
		c.KeySpace = 1024
	}
	if c.GetRatio == 0 {
		c.GetRatio = 0.9
	}
	if c.ValueSize <= 0 {
		c.ValueSize = 64
	}
	return c
}

// Stats is a merged snapshot of workload counters. Ops = OK + NotFound +
// NoRoute; Degraded counts puts that stored fewer replicas than the
// op-time target (dht.OpStats.Stored < Want).
type Stats struct {
	Ops, OK, NotFound, NoRoute uint64
	Gets, Puts                 uint64
	Degraded                   uint64
	Hops                       HopHist
	Lat                        LatHist
	Elapsed                    time.Duration
}

// Merge adds o into s (histogram vector adds; Elapsed takes the max —
// workers run concurrently, so wall time is the slowest worker's).
func (s *Stats) Merge(o *Stats) {
	s.Ops += o.Ops
	s.OK += o.OK
	s.NotFound += o.NotFound
	s.NoRoute += o.NoRoute
	s.Gets += o.Gets
	s.Puts += o.Puts
	s.Degraded += o.Degraded
	s.Hops.Merge(&o.Hops)
	s.Lat.Merge(&o.Lat)
	if o.Elapsed > s.Elapsed {
		s.Elapsed = o.Elapsed
	}
}

// SuccessRate returns OK/Ops (1 when no ops ran).
func (s *Stats) SuccessRate() float64 {
	if s.Ops == 0 {
		return 1
	}
	return float64(s.OK) / float64(s.Ops)
}

// worker is one closed-loop client. The struct is padded to a multiple of
// the cache line so adjacent workers' counters never share a line.
type worker struct {
	rng     *rand.Rand
	zipf    *rand.Zipf
	scratch []byte
	val     []byte
	stats   Stats
	_       [64]byte
}

// keyIndex draws the next key index from the configured popularity
// distribution.
func (w *worker) keyIndex(keySpace int) int {
	if w.zipf != nil {
		return int(w.zipf.Uint64())
	}
	return w.rng.Intn(keySpace)
}

// Generator drives a dht.Cluster with a deterministic closed-loop
// workload. Not safe for concurrent use; RunCycle itself fans out to
// Workers goroutines internally.
type Generator struct {
	c       *dht.Cluster
	cfg     Config
	keys    []id.ID
	workers []*worker
	origins []peer.Addr
	totals  Stats
}

// New builds a generator over the cluster. The key space and every
// worker's RNG derive from cfg.Seed, so two generators with equal configs
// issue identical op streams against identical cluster histories.
func New(c *dht.Cluster, cfg Config) *Generator {
	cfg = cfg.withDefaults()
	g := &Generator{c: c, cfg: cfg}
	g.keys = drawKeys(rand.New(rand.NewSource(cfg.Seed)), cfg.KeySpace)
	g.workers = make([]*worker, cfg.Workers)
	for i := range g.workers {
		rng := rand.New(rand.NewSource(cfg.Seed + 7919*int64(i+1)))
		w := &worker{
			rng:     rng,
			scratch: make([]byte, 0, cfg.ValueSize+16),
			val:     make([]byte, cfg.ValueSize),
		}
		for j := range w.val {
			w.val[j] = byte(cfg.Seed) + byte(j)
		}
		if cfg.ZipfS > 1 {
			w.zipf = rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.KeySpace-1))
		}
		g.workers[i] = w
	}
	return g
}

// drawKeys draws n distinct key IDs from rng. A collision redraws until
// the ID is fresh, so the emitted sequence is identical to the raw draw
// stream whenever no collision occurs — existing seeds keep their key
// spaces. Without the dedup, two colliding indices silently alias one DHT
// key: the generator believes it covers n keys while storing n-1, and
// per-key accounting (preload full-replication counts, popularity skew)
// drifts from the configuration.
func drawKeys(rng *rand.Rand, n int) []id.ID {
	keys := make([]id.ID, n)
	seen := make(map[id.ID]struct{}, n)
	for i := range keys {
		k := id.ID(rng.Uint64())
		for {
			if _, dup := seen[k]; !dup {
				break
			}
			k = id.ID(rng.Uint64())
		}
		seen[k] = struct{}{}
		keys[i] = k
	}
	return keys
}

// Preload writes every key once (single-threaded, deterministic origin
// order) so gets have something to find, and returns the number of keys
// stored at full replication. With no live membership there is nowhere to
// store: zero keys preload.
func (g *Generator) Preload() int {
	g.refreshOrigins()
	if len(g.origins) == 0 {
		return 0
	}
	full := 0
	var st dht.OpStats
	w := g.workers[0]
	for i, key := range g.keys {
		from := g.origins[i%len(g.origins)]
		if err := g.c.PutStats(from, key, w.val, &st); err != nil {
			continue
		}
		if st.Stored >= st.Want {
			full++
		}
	}
	return full
}

// refreshOrigins re-snapshots the live membership ops originate from.
// Called at every cycle boundary so workers stop originating from nodes a
// scenario killed (a real client would re-resolve its bootstrap list).
func (g *Generator) refreshOrigins() {
	g.origins = g.c.LiveAddrs(g.origins[:0])
}

// RunCycle issues ops operations (split across Workers closed loops) and
// returns the merged stats for this cycle only. Cumulative stats
// accumulate in Totals.
func (g *Generator) RunCycle(ops int) Stats {
	g.refreshOrigins()
	if len(g.origins) == 0 || ops <= 0 {
		return Stats{}
	}
	var wg sync.WaitGroup
	per := ops / len(g.workers)
	extra := ops % len(g.workers)
	for i, w := range g.workers {
		n := per
		if i < extra {
			n++
		}
		if n == 0 {
			continue
		}
		wg.Add(1)
		go func(w *worker, n int) {
			defer wg.Done()
			g.drive(w, n)
		}(w, n)
	}
	wg.Wait() // happens-before: publishes every worker's stats to the merger
	var cycle Stats
	for _, w := range g.workers {
		cycle.Merge(&w.stats)
		w.stats = Stats{}
	}
	g.totals.Merge(&cycle)
	return cycle
}

// Totals returns the stats accumulated across all cycles so far.
func (g *Generator) Totals() Stats { return g.totals }

// drive is one worker's closed loop: draw key and origin, fire the op,
// classify the outcome. Steady-state cost per op is the DHT op itself —
// the loop allocates nothing.
func (g *Generator) drive(w *worker, ops int) {
	c := g.c
	start := time.Now()
	var st dht.OpStats
	for i := 0; i < ops; i++ {
		key := g.keys[w.keyIndex(g.cfg.KeySpace)]
		from := g.origins[w.rng.Intn(len(g.origins))]
		isGet := w.rng.Float64() < g.cfg.GetRatio
		opStart := time.Now()
		var err error
		if isGet {
			var out []byte
			out, err = c.GetStats(w.scratch[:0], from, key, &st)
			if err == nil {
				w.scratch = out[:0]
			}
			w.stats.Gets++
		} else {
			st.Stored, st.Want = 0, 0
			err = c.PutStats(from, key, w.val, &st)
			if err == nil && st.Stored < st.Want {
				w.stats.Degraded++
			}
			w.stats.Puts++
		}
		w.stats.Lat.Observe(uint64(time.Since(opStart)))
		w.stats.Ops++
		switch {
		case err == nil:
			w.stats.OK++
			w.stats.Hops.Observe(st.Hops)
		case errors.Is(err, dht.ErrNotFound):
			w.stats.NotFound++
			w.stats.Hops.Observe(st.Hops)
		default:
			w.stats.NoRoute++
		}
	}
	w.stats.Elapsed = time.Since(start)
}
