// Package load is the serving-plane workload driver: a deterministic
// seeded closed-loop generator that fires get/put operations from G
// workers against a dht.Cluster while churn or partition scenarios run,
// recording routed-hop counts, outcome rates, and latency percentiles.
//
// All per-worker measurement goes into worker-owned, cache-line-padded
// structs; nothing on the op path takes a lock or touches shared memory
// beyond the cluster itself. Merging happens once per cycle, after the
// WaitGroup join publishes every worker's writes (the join is the only
// synchronisation the histograms need).
package load

import "math/bits"

// LatHist is a fixed-bucket log-scale histogram for latency-like values:
// bucket b holds observations v with bits.Len64(v) == b, i.e. v in
// [2^(b-1), 2^b). 64 fixed buckets cover the full uint64 range, so two
// histograms merge by vector addition — no bounds negotiation, no locks.
type LatHist struct {
	Counts [65]uint64
}

// Observe records one value.
func (h *LatHist) Observe(v uint64) {
	h.Counts[bits.Len64(v)]++
}

// Merge adds o's counts into h.
func (h *LatHist) Merge(o *LatHist) {
	for i := range h.Counts {
		h.Counts[i] += o.Counts[i]
	}
}

// Count returns the number of observations.
func (h *LatHist) Count() uint64 {
	var n uint64
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// Quantile returns a representative value for quantile q in [0, 1]: the
// log-midpoint of the bucket holding the q-th observation. Zero when the
// histogram is empty.
func (h *LatHist) Quantile(q float64) uint64 {
	total := h.Count()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(total-1))
	var cum uint64
	for b, c := range h.Counts {
		cum += c
		if cum > rank {
			if b == 0 {
				return 0
			}
			lo := uint64(1) << uint(b-1)
			// Midpoint of [2^(b-1), 2^b): lo + lo/2.
			return lo + lo/2
		}
	}
	return 0
}

// maxHopBucket caps the linear hop histogram; prefix routing resolves in
// O(log N) hops so anything above this is pathological and clamps.
const maxHopBucket = 63

// HopHist is a fixed linear histogram for routed hop counts — hop
// distributions are narrow, so exact small-integer buckets beat log
// scale. Merges by vector addition like LatHist.
type HopHist struct {
	Counts [maxHopBucket + 1]uint64
}

// Observe records one hop count (clamped to the last bucket).
func (h *HopHist) Observe(hops int) {
	if hops < 0 {
		hops = 0
	}
	if hops > maxHopBucket {
		hops = maxHopBucket
	}
	h.Counts[hops]++
}

// Merge adds o's counts into h.
func (h *HopHist) Merge(o *HopHist) {
	for i := range h.Counts {
		h.Counts[i] += o.Counts[i]
	}
}

// Count returns the number of observations.
func (h *HopHist) Count() uint64 {
	var n uint64
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// Quantile returns the exact hop count at quantile q in [0, 1]. Zero when
// empty.
func (h *HopHist) Quantile(q float64) int {
	total := h.Count()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(total-1))
	var cum uint64
	for b, c := range h.Counts {
		cum += c
		if cum > rank {
			return b
		}
	}
	return maxHopBucket
}

// Mean returns the average hop count. Zero when empty.
func (h *HopHist) Mean() float64 {
	var n, sum uint64
	for b, c := range h.Counts {
		n += c
		sum += uint64(b) * c
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}
