package load

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dht"
	"repro/internal/id"
	"repro/internal/overlay/pastry"
	"repro/internal/peer"
)

func testCluster(tb testing.TB, n, replicas int, seed int64) (*dht.Cluster, []peer.Descriptor) {
	tb.Helper()
	ids := id.Unique(n, seed)
	descs := make([]peer.Descriptor, n)
	for i, v := range ids {
		descs[i] = peer.Descriptor{ID: v, Addr: peer.Addr(i)}
	}
	cfg := core.DefaultConfig()
	nodes := make([]*dht.Node, n)
	for i, d := range descs {
		ls := core.NewLeafSet(d.ID, cfg.C)
		ls.Update(descs)
		pt := core.NewPrefixTable(d.ID, cfg.B, cfg.K)
		pt.AddAll(descs)
		nodes[i] = dht.NewNode(pastry.New(d, ls, pt, cfg.B))
	}
	return dht.NewCluster(nodes, replicas), descs
}

func TestLatHistQuantiles(t *testing.T) {
	var h LatHist
	for v := uint64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	if got := h.Count(); got != 1000 {
		t.Fatalf("Count = %d, want 1000", got)
	}
	p50 := h.Quantile(0.5)
	// The 500th observation is 500, whose bucket is [256, 512); the
	// log-midpoint representative is 384.
	if p50 < 256 || p50 >= 512 {
		t.Errorf("p50 = %d, want within [256, 512)", p50)
	}
	p999 := h.Quantile(0.999)
	if p999 < 512 {
		t.Errorf("p999 = %d, want >= 512", p999)
	}
	if h.Quantile(0) > p50 || p50 > h.Quantile(1) {
		t.Error("quantiles not monotone")
	}
	var empty LatHist
	if empty.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile != 0")
	}
}

func TestLatHistMerge(t *testing.T) {
	var a, b, whole LatHist
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 4000; i++ {
		v := uint64(rng.Intn(1 << 20))
		whole.Observe(v)
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
	}
	a.Merge(&b)
	if a != whole {
		t.Fatal("merged histogram differs from whole-stream histogram")
	}
}

func TestHopHistExactQuantiles(t *testing.T) {
	var h HopHist
	// 90 ops at 2 hops, 9 at 5, 1 at 9 → p50=2, p99=9 (rank 99 of 100).
	for i := 0; i < 90; i++ {
		h.Observe(2)
	}
	for i := 0; i < 9; i++ {
		h.Observe(5)
	}
	h.Observe(9)
	if got := h.Quantile(0.5); got != 2 {
		t.Errorf("p50 = %d, want 2", got)
	}
	// Rank 98 of 100 lands in the 5-hop bucket (cum 99), rank 99 in the
	// 9-hop tail.
	if got := h.Quantile(0.99); got != 5 {
		t.Errorf("p99 = %d, want 5", got)
	}
	if got := h.Quantile(1); got != 9 {
		t.Errorf("max = %d, want 9", got)
	}
	h.Observe(1000) // clamps
	if got := h.Quantile(1); got != maxHopBucket {
		t.Errorf("clamped max = %d, want %d", got, maxHopBucket)
	}
	if m := h.Mean(); m < 2 || m > 4 {
		t.Errorf("mean = %v, out of range", m)
	}
}

// TestGeneratorDeterministic: equal configs over identically built
// clusters produce identical deterministic counters, for one worker and
// for several (each worker's stream is seeded independently, so
// scheduling cannot reorder anything observable).
func TestGeneratorDeterministic(t *testing.T) {
	for _, workers := range []int{1, 4} {
		run := func() Stats {
			c, _ := testCluster(t, 128, 3, 51)
			g := New(c, Config{Workers: workers, KeySpace: 256, Seed: 52})
			g.Preload()
			var last Stats
			for cycle := 0; cycle < 3; cycle++ {
				last = g.RunCycle(1000)
			}
			tot := g.Totals()
			tot.Elapsed, last.Elapsed = 0, 0
			tot.Lat, last.Lat = LatHist{}, LatHist{}
			tot.Merge(&last) // fold per-cycle view in so both are covered
			return tot
		}
		a, b := run(), run()
		if a != b {
			t.Fatalf("workers=%d: two identical runs diverged:\n%+v\n%+v", workers, a, b)
		}
		if a.Ops != 4000 { // 3 cycles × 1000, plus the folded last cycle
			t.Fatalf("workers=%d: ops = %d, want 4000", workers, a.Ops)
		}
		if a.OK == 0 || a.Hops.Count() == 0 {
			t.Fatalf("workers=%d: no successful ops recorded: %+v", workers, a)
		}
	}
}

// TestGeneratorAgainstChurn: keys stay ≥99% readable while nodes die
// between cycles (the serving-plane acceptance bar).
func TestGeneratorAgainstChurn(t *testing.T) {
	const n = 256
	c, descs := testCluster(t, n, 3, 53)
	g := New(c, Config{Workers: 2, KeySpace: 512, GetRatio: 0.9, Seed: 54})
	g.Preload()
	rng := rand.New(rand.NewSource(55))
	alive := make([]peer.Addr, n)
	for i, d := range descs {
		alive[i] = d.Addr
	}
	for cycle := 0; cycle < 8; cycle++ {
		// 2% churn per cycle.
		for k := 0; k < n*2/100; k++ {
			vi := rng.Intn(len(alive))
			c.Remove(alive[vi])
			alive[vi] = alive[len(alive)-1]
			alive = alive[:len(alive)-1]
		}
		g.RunCycle(2000)
	}
	tot := g.Totals()
	if tot.Ops != 16000 {
		t.Fatalf("ops = %d, want 16000", tot.Ops)
	}
	if rate := tot.SuccessRate(); rate < 0.99 {
		t.Fatalf("success rate %.4f under churn, want >= 0.99 (notfound=%d noroute=%d)",
			rate, tot.NotFound, tot.NoRoute)
	}
}

// TestZipfSkew: a Zipf generator concentrates load on hot keys — verify
// indirectly through the config plumbing (hot-key draws dominate).
func TestZipfSkew(t *testing.T) {
	c, _ := testCluster(t, 64, 3, 56)
	g := New(c, Config{Workers: 1, KeySpace: 1024, ZipfS: 1.5, Seed: 57})
	w := g.workers[0]
	hot := 0
	const draws = 4000
	for i := 0; i < draws; i++ {
		if w.keyIndex(g.cfg.KeySpace) < 8 {
			hot++
		}
	}
	if hot < draws/4 {
		t.Fatalf("zipf(1.5): only %d/%d draws in the 8 hottest keys", hot, draws)
	}
	gu := New(c, Config{Workers: 1, KeySpace: 1024, Seed: 57})
	uniHot := 0
	for i := 0; i < draws; i++ {
		if gu.workers[0].keyIndex(gu.cfg.KeySpace) < 8 {
			uniHot++
		}
	}
	if uniHot > draws/10 {
		t.Fatalf("uniform: %d/%d draws in the 8 hottest keys — too skewed", uniHot, draws)
	}
}

// TestPreloadEmptyMembership is the regression test for the Preload
// mod-by-zero: a generator built over a cluster whose every node has died
// before the preload must report zero fully-replicated keys instead of
// panicking on `i % len(g.origins)` with an empty origin snapshot.
func TestPreloadEmptyMembership(t *testing.T) {
	const n = 8
	c, descs := testCluster(t, n, 3, 60)
	g := New(c, Config{Workers: 2, KeySpace: 32, Seed: 61})
	for _, d := range descs {
		c.Remove(d.Addr)
	}
	if c.Len() != 0 {
		t.Fatalf("cluster still has %d live nodes", c.Len())
	}
	if full := g.Preload(); full != 0 {
		t.Fatalf("Preload over an empty cluster reported %d full keys", full)
	}
	// The cycle path already guards; pin that too so the pair stays
	// consistent.
	if st := g.RunCycle(100); st.Ops != 0 {
		t.Fatalf("RunCycle over an empty cluster ran %d ops", st.Ops)
	}
}

// scriptedSource replays a fixed uint64 sequence, letting the dedup test
// force the key-ID collision that is (by design) nearly impossible to hit
// through a real seed.
type scriptedSource struct {
	vals []uint64
	i    int
}

func (s *scriptedSource) Uint64() uint64 {
	v := s.vals[s.i%len(s.vals)]
	s.i++
	return v
}
func (s *scriptedSource) Int63() int64 { return int64(s.Uint64() >> 1) }
func (s *scriptedSource) Seed(int64)  {}

// TestDrawKeysDedup is the regression test for key-ID aliasing: before
// the fix, New kept raw krng.Uint64() draws, so a collision made two key
// indices refer to the same DHT key. The scripted source forces the
// collision; the redraw must skip it while leaving non-colliding draws in
// stream order.
func TestDrawKeysDedup(t *testing.T) {
	src := &scriptedSource{vals: []uint64{7, 7, 7, 9, 3}}
	keys := drawKeys(rand.New(src), 3)
	want := []id.ID{7, 9, 3}
	for i, k := range keys {
		if k != want[i] {
			t.Fatalf("keys = %v, want %v (collision not redrawn in stream order)", keys, want)
		}
	}

	// Property on the real constructor: every generator key space is
	// duplicate-free.
	c, _ := testCluster(t, 16, 3, 62)
	g := New(c, Config{KeySpace: 4096, Seed: 63})
	seen := make(map[id.ID]struct{}, len(g.keys))
	for _, k := range g.keys {
		if _, dup := seen[k]; dup {
			t.Fatalf("duplicate key ID %v in generator key space", k)
		}
		seen[k] = struct{}{}
	}
}

// TestDegradedCounting: a partition that strands the writers' side
// surfaces as Degraded puts, not errors.
func TestDegradedCounting(t *testing.T) {
	const n = 64
	c, _ := testCluster(t, n, 5, 58)
	side := func(a peer.Addr) bool { return int(a) < 4 }
	c.SetPartition(func(a, b peer.Addr) bool { return side(a) != side(b) })
	g := New(c, Config{Workers: 1, KeySpace: 64, GetRatio: -1, Seed: 59})
	// Force all origins onto the small side by killing none but relying on
	// routing: origins snapshot includes both sides, so only some ops are
	// degraded — assert the counter moves at all.
	st := g.RunCycle(500)
	if st.Puts != 500 {
		t.Fatalf("puts = %d, want 500", st.Puts)
	}
	if st.Degraded == 0 {
		t.Fatal("no degraded puts counted despite a 4-node partition island")
	}
}
