// Routing: jump-start a network, then use it as a DHT. The bootstrapped
// leaf sets and prefix tables are consumed directly by two routing
// substrates — Pastry-style greedy prefix routing and Kademlia-style
// iterative XOR lookups — demonstrating the paper's claim that the
// bootstrap output *is* the routing state of prefix-based overlays.
//
//	go run ./examples/routing
package main

import (
	"fmt"
	"math/rand"
	"os"

	"repro/internal/core"
	"repro/internal/id"
	"repro/internal/overlay/kademlia"
	"repro/internal/overlay/pastry"
	"repro/internal/peer"
	"repro/internal/sampling"
	"repro/internal/simnet"
)

const (
	numNodes   = 2000
	numLookups = 2000
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "routing:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. Bootstrap.
	net := simnet.New(simnet.Config{Seed: 3})
	ids := id.Unique(numNodes, 4)
	descs := make([]peer.Descriptor, numNodes)
	for i := range descs {
		descs[i] = peer.Descriptor{ID: ids[i], Addr: net.AddNode()}
	}
	oracle := sampling.NewOracle(descs, 5)
	cfg := core.DefaultConfig()
	nodes := make([]*core.Node, numNodes)
	for i, d := range descs {
		nd, err := core.NewNode(d, cfg, oracle)
		if err != nil {
			return err
		}
		nodes[i] = nd
		if err := net.Attach(d.Addr, core.ProtoID, nd, cfg.Delta, int64(i)%cfg.Delta); err != nil {
			return err
		}
	}
	fmt.Printf("bootstrapping %d nodes...\n", numNodes)
	net.Run(cfg.Delta * 30)
	fmt.Printf("done after 30 cycles (%d messages)\n\n", net.Stats().Sent)

	// 2. Pastry-style routing.
	routers := make([]*pastry.Router, numNodes)
	for i, nd := range nodes {
		routers[i] = pastry.FromBootstrap(nd)
	}
	mesh := pastry.NewMesh(routers, 0)
	rng := rand.New(rand.NewSource(6))
	hopHist := make(map[int]int)
	total, failures := 0, 0
	for i := 0; i < numLookups; i++ {
		key := id.ID(rng.Uint64())
		path, err := mesh.Route(descs[rng.Intn(numNodes)].Addr, key)
		if err != nil {
			failures++
			continue
		}
		hops := len(path) - 1
		hopHist[hops]++
		total += hops
	}
	fmt.Printf("pastry: %d lookups, %d failures, mean hops %.2f\n",
		numLookups, failures, float64(total)/float64(numLookups-failures))
	for h := 0; h <= 8; h++ {
		if c := hopHist[h]; c > 0 {
			fmt.Printf("  %d hops: %5d (%4.1f%%)\n", h, c, 100*float64(c)/float64(numLookups))
		}
	}

	// 3. Kademlia-style lookups over the same tables.
	knodes := make([]*kademlia.Node, numNodes)
	for i, nd := range nodes {
		knodes[i] = kademlia.FromBootstrap(nd)
	}
	kmesh := kademlia.NewMesh(knodes, 0)
	queried, rounds, hits := 0, 0, 0
	for i := 0; i < numLookups; i++ {
		key := id.ID(rng.Uint64())
		res, err := kmesh.Lookup(descs[rng.Intn(numNodes)].Addr, key)
		if err != nil {
			continue
		}
		queried += res.Queried
		rounds += res.Rounds
		if res.Closest[0].ID == xorClosest(descs, key).ID {
			hits++
		}
	}
	fmt.Printf("\nkademlia: %d lookups, %.1f%% found the global XOR-closest node\n",
		numLookups, 100*float64(hits)/float64(numLookups))
	fmt.Printf("  mean FindNode RPCs per lookup: %.1f, mean rounds: %.1f\n",
		float64(queried)/float64(numLookups), float64(rounds)/float64(numLookups))
	return nil
}

func xorClosest(descs []peer.Descriptor, key id.ID) peer.Descriptor {
	best := descs[0]
	for _, d := range descs[1:] {
		if id.XORDistance(key, d.ID) < id.XORDistance(key, best.ID) {
			best = d
		}
	}
	return best
}
