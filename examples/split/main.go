// Split: the inverse of the merge scenario. One organisation runs a single
// bootstrapped overlay over its pool; the pool is then split into two
// halves (e.g. resources sold off for a time slice) and each half
// jump-starts its own private overlay from scratch. The old overlay is
// simply abandoned — rebuilding is cheap enough that no repair protocol is
// needed, which is the architectural bet the paper makes.
//
//	go run ./examples/split
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/id"
	"repro/internal/peer"
	"repro/internal/sampling"
	"repro/internal/simnet"
	"repro/internal/truth"
)

const (
	poolSize = 1000
	delta    = core.DefaultDelta
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "split:", err)
		os.Exit(1)
	}
}

func run() error {
	net := simnet.New(simnet.Config{Seed: 17})
	ids := id.Unique(poolSize, 18)
	descs := make([]peer.Descriptor, poolSize)
	for i := range descs {
		descs[i] = peer.Descriptor{ID: ids[i], Addr: net.AddNode()}
	}

	// Phase 1: one overlay over the whole pool.
	whole, err := attachOverlay(net, descs, 10, 100)
	if err != nil {
		return err
	}
	net.Run(30 * delta)
	if err := report("whole pool after 30 cycles:", whole, memberIDs(descs)); err != nil {
		return err
	}

	// Phase 2: split the pool down the middle — the halves cannot even
	// talk to each other any more — and bootstrap one fresh overlay per
	// half. Note the old overlay instances are left running; they are
	// simply irrelevant to the new, smaller worlds.
	left, right := descs[:poolSize/2], descs[poolSize/2:]
	lAddrs := addrsOf(left)
	rAddrs := addrsOf(right)
	net.Partition(lAddrs, rAddrs)
	fmt.Printf("\npool split into two halves of %d nodes; bootstrapping private overlays\n", poolSize/2)

	lNodes, err := attachOverlay(net, left, 11, 200)
	if err != nil {
		return err
	}
	rNodes, err := attachOverlay(net, right, 12, 300)
	if err != nil {
		return err
	}
	start := net.Now()
	for cycle := 5; cycle <= 40; cycle += 5 {
		net.Run(start + int64(cycle)*delta)
		if err := report(fmt.Sprintf("left  half, cycle %2d:", cycle), lNodes, memberIDs(left)); err != nil {
			return err
		}
		if err := report(fmt.Sprintf("right half, cycle %2d:", cycle), rNodes, memberIDs(right)); err != nil {
			return err
		}
		if perfect(lNodes, memberIDs(left)) && perfect(rNodes, memberIDs(right)) {
			fmt.Printf("\nboth halves perfect after %d cycles\n", cycle)
			return nil
		}
	}
	return fmt.Errorf("halves did not converge within 40 cycles")
}

// attachOverlay starts a fresh bootstrap instance on every given node,
// with a pool-local sampling service.
func attachOverlay(net *simnet.Network, descs []peer.Descriptor, pid simnet.ProtoID, seed int64) ([]*core.Node, error) {
	cfg := core.DefaultConfig()
	oracle := sampling.NewOracle(descs, seed)
	nodes := make([]*core.Node, len(descs))
	for i, d := range descs {
		nd, err := core.NewNode(d, cfg, oracle)
		if err != nil {
			return nil, err
		}
		nodes[i] = nd
		if err := net.Attach(d.Addr, pid, nd, delta, int64(i)%delta); err != nil {
			return nil, err
		}
	}
	return nodes, nil
}

func report(label string, nodes []*core.Node, ids []id.ID) error {
	cfg := core.DefaultConfig()
	tr, err := truth.New(ids, cfg.B, cfg.K, cfg.C)
	if err != nil {
		return err
	}
	var lm, lt, pm, pt int
	for _, nd := range nodes {
		a, b := tr.LeafSetMissingFor(nd.Self().ID, nd.Leaf())
		c, d := tr.PrefixMissingFor(nd.Self().ID, nd.Table())
		lm, lt, pm, pt = lm+a, lt+b, pm+c, pt+d
	}
	fmt.Printf("%-24s leaf-missing %8.2e   prefix-missing %8.2e\n",
		label, float64(lm)/float64(lt), float64(pm)/float64(pt))
	return nil
}

func perfect(nodes []*core.Node, ids []id.ID) bool {
	cfg := core.DefaultConfig()
	tr, err := truth.New(ids, cfg.B, cfg.K, cfg.C)
	if err != nil {
		return false
	}
	for _, nd := range nodes {
		if m, _ := tr.LeafSetMissingFor(nd.Self().ID, nd.Leaf()); m != 0 {
			return false
		}
		if m, _ := tr.PrefixMissingFor(nd.Self().ID, nd.Table()); m != 0 {
			return false
		}
	}
	return true
}

func memberIDs(descs []peer.Descriptor) []id.ID {
	out := make([]id.ID, len(descs))
	for i, d := range descs {
		out[i] = d.ID
	}
	return out
}

func addrsOf(descs []peer.Descriptor) []peer.Addr {
	out := make([]peer.Addr, len(descs))
	for i, d := range descs {
		out[i] = d.Addr
	}
	return out
}
