// Merge: the paper's motivating "liquid pools" scenario. Two organisations
// each run their own bootstrapped overlay; the pools are then merged and a
// single overlay is re-bootstrapped from scratch over the union, which is
// exactly how the architecture intends radical membership events to be
// handled: don't repair the old overlay — rebuild it, cheaply.
//
//	go run ./examples/merge
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/id"
	"repro/internal/peer"
	"repro/internal/sampling"
	"repro/internal/simnet"
	"repro/internal/truth"
)

const (
	poolSize = 500
	delta    = core.DefaultDelta
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "merge:", err)
		os.Exit(1)
	}
}

type pool struct {
	descs []peer.Descriptor
	nodes []*core.Node
}

// buildPool attaches a bootstrap layer for the given members over their
// own (pool-local) sampling service, under the given protocol id.
func buildPool(net *simnet.Network, descs []peer.Descriptor, pid simnet.ProtoID, seed int64) (*pool, error) {
	cfg := core.DefaultConfig()
	oracle := sampling.NewOracle(descs, seed)
	p := &pool{descs: descs}
	for i, d := range descs {
		nd, err := core.NewNode(d, cfg, oracle)
		if err != nil {
			return nil, err
		}
		p.nodes = append(p.nodes, nd)
		if err := net.Attach(d.Addr, pid, nd, delta, int64(i)%delta); err != nil {
			return nil, err
		}
	}
	return p, nil
}

func measure(label string, nodes []*core.Node, memberIDs []id.ID) error {
	cfg := core.DefaultConfig()
	tr, err := truth.New(memberIDs, cfg.B, cfg.K, cfg.C)
	if err != nil {
		return err
	}
	var leafMiss, leafTot, prefMiss, prefTot int
	for _, nd := range nodes {
		lm, lt := tr.LeafSetMissingFor(nd.Self().ID, nd.Leaf())
		pm, pt := tr.PrefixMissingFor(nd.Self().ID, nd.Table())
		leafMiss, leafTot = leafMiss+lm, leafTot+lt
		prefMiss, prefTot = prefMiss+pm, prefTot+pt
	}
	fmt.Printf("%-28s leaf-missing %8.2e   prefix-missing %8.2e\n",
		label,
		float64(leafMiss)/float64(leafTot),
		float64(prefMiss)/float64(prefTot))
	return nil
}

func run() error {
	net := simnet.New(simnet.Config{Seed: 7})
	ids := id.Unique(2*poolSize, 8)

	descsA := make([]peer.Descriptor, poolSize)
	descsB := make([]peer.Descriptor, poolSize)
	for i := 0; i < poolSize; i++ {
		descsA[i] = peer.Descriptor{ID: ids[i], Addr: net.AddNode()}
		descsB[i] = peer.Descriptor{ID: ids[poolSize+i], Addr: net.AddNode()}
	}

	// Phase 1: two organisations bootstrap independent overlays.
	fmt.Printf("phase 1: two independent pools of %d nodes each\n", poolSize)
	poolA, err := buildPool(net, descsA, 10, 100)
	if err != nil {
		return err
	}
	poolB, err := buildPool(net, descsB, 11, 200)
	if err != nil {
		return err
	}
	net.Run(net.Now() + 30*delta)
	idsA, idsB := memberIDs(descsA), memberIDs(descsB)
	if err := measure("pool A after 30 cycles:", poolA.nodes, idsA); err != nil {
		return err
	}
	if err := measure("pool B after 30 cycles:", poolB.nodes, idsB); err != nil {
		return err
	}

	// Phase 2: merge. The sampling layer of the union becomes available
	// (in production: NEWSCAST views cross-pollinate within a few
	// cycles) and a fresh overlay is bootstrapped over all 2N nodes.
	fmt.Printf("\nphase 2: pools merge; re-bootstrap a single %d-node overlay from scratch\n", 2*poolSize)
	merged := append(append([]peer.Descriptor{}, descsA...), descsB...)
	poolAll, err := buildPool(net, merged, 12, 300)
	if err != nil {
		return err
	}
	allIDs := memberIDs(merged)
	start := net.Now()
	for cycle := 1; cycle <= 40; cycle++ {
		net.Run(start + int64(cycle)*delta)
		if cycle%5 == 0 {
			if err := measure(fmt.Sprintf("merged, cycle %2d:", cycle), poolAll.nodes, allIDs); err != nil {
				return err
			}
		}
		if perfect(poolAll.nodes, allIDs) {
			fmt.Printf("\nmerged overlay perfect at every node after %d cycles\n", cycle)
			return nil
		}
	}
	return fmt.Errorf("merged overlay did not converge within 40 cycles")
}

func memberIDs(descs []peer.Descriptor) []id.ID {
	out := make([]id.ID, len(descs))
	for i, d := range descs {
		out[i] = d.ID
	}
	return out
}

func perfect(nodes []*core.Node, memberIDs []id.ID) bool {
	cfg := core.DefaultConfig()
	tr, err := truth.New(memberIDs, cfg.B, cfg.K, cfg.C)
	if err != nil {
		return false
	}
	for _, nd := range nodes {
		if lm, _ := tr.LeafSetMissingFor(nd.Self().ID, nd.Leaf()); lm != 0 {
			return false
		}
		if pm, _, _ := tr.PrefixMissingLive(nd.Self().ID, nd.Table()); pm != 0 {
			return false
		}
	}
	return true
}
