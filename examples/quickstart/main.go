// Quickstart: jump-start a prefix-based routing overlay from scratch.
//
// This example builds a 1000-node simulated network in which only the peer
// sampling service is functional, runs the bootstrapping service, and
// prints the per-cycle convergence of the leaf sets and prefix tables —
// a miniature of the paper's Figure 3.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/experiment"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := core.DefaultConfig() // b=4, k=3, c=20, cr=30 — the paper's set
	res, err := experiment.Run(experiment.Params{
		N:         1000,
		Seed:      1,
		Config:    cfg,
		MaxCycles: 40,
	})
	if err != nil {
		return err
	}

	fmt.Println("bootstrapping a 1000-node prefix overlay from scratch")
	fmt.Printf("parameters: b=%d k=%d c=%d cr=%d\n\n", cfg.B, cfg.K, cfg.C, cfg.CR)
	fmt.Println("cycle  leaf-missing  prefix-missing  perfect-nodes")
	for _, pt := range res.Points {
		fmt.Printf("%5d  %12.2e  %14.2e  %6d/%d\n",
			pt.Cycle, pt.LeafMissing, pt.PrefixMissing, pt.PrefixPerfect, pt.Alive)
	}
	if res.ConvergedAt < 0 {
		return fmt.Errorf("did not converge within %d cycles", res.Params.MaxCycles)
	}
	fmt.Printf("\nperfect leaf sets and prefix tables at ALL nodes after %d cycles\n", res.ConvergedAt+1)
	fmt.Printf("traffic: %d messages, %d descriptor units\n", res.Stats.Sent, res.Stats.WireUnits)
	return nil
}
