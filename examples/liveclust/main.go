// Liveclust: run the real two-layer stack — NEWSCAST sampling under the
// bootstrapping service — on the concurrent goroutine runtime with message
// loss and latency, then hand the result to a Pastry router. Unlike the
// other examples this one runs on wall-clock time with one goroutine per
// host, the shape an actual deployment would take.
//
//	go run ./examples/liveclust
package main

import (
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/id"
	"repro/internal/livenet"
	"repro/internal/newscast"
	"repro/internal/overlay/pastry"
	"repro/internal/peer"
	"repro/internal/sampling"
	"repro/internal/truth"
)

const (
	numHosts = 96
	period   = 15 * time.Millisecond
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "liveclust:", err)
		os.Exit(1)
	}
}

func run() error {
	net := livenet.New(livenet.Config{
		Seed:       9,
		Drop:       0.10,
		MinLatency: time.Millisecond,
		MaxLatency: 4 * time.Millisecond,
	})
	defer net.Close()

	ids := id.Unique(numHosts, 10)
	descs := make([]peer.Descriptor, numHosts)
	hosts := make([]*livenet.Host, numHosts)
	for i := 0; i < numHosts; i++ {
		hosts[i] = net.AddHost()
		descs[i] = peer.Descriptor{ID: ids[i], Addr: hosts[i].Addr()}
	}
	seedContacts := sampling.NewOracle(descs, 11)

	cfg := core.DefaultConfig()
	nodes := make([]*core.Node, numHosts)
	for i := 0; i < numHosts; i++ {
		nc := newscast.New(descs[i], seedContacts.Sample(5), newscast.DefaultViewSize)
		if err := hosts[i].Attach(newscast.ProtoID, nc, period, time.Duration(i)*period/numHosts); err != nil {
			return err
		}
		nd, err := core.NewNode(descs[i], cfg, nc)
		if err != nil {
			return err
		}
		nodes[i] = nd
		offset := 5*period + time.Duration(i)*period/numHosts
		if err := hosts[i].Attach(core.ProtoID, nd, period, offset); err != nil {
			return err
		}
	}

	fmt.Printf("running %d concurrent hosts (10%% loss, 1-4ms latency, period %v)\n",
		numHosts, period)
	if err := net.Start(); err != nil {
		return err
	}
	time.Sleep(40 * period)

	// Crash a block of hosts mid-run and bring them back a few periods
	// later with their state intact — the crash-recovery churn the
	// campaign runner (cmd/livesim) scales up to whole scenarios.
	const crashed = numHosts / 10
	for i := 0; i < crashed; i++ {
		hosts[i].Kill()
	}
	fmt.Printf("crashed %d hosts; letting the survivors gossip...\n", crashed)
	time.Sleep(10 * period)
	for i := 0; i < crashed; i++ {
		if err := hosts[i].Respawn(); err != nil {
			return err
		}
	}
	fmt.Printf("respawned them; letting the overlay repair...\n")
	time.Sleep(20 * period)
	net.Close() // stop the world before reading protocol state

	tr, err := truth.New(ids, cfg.B, cfg.K, cfg.C)
	if err != nil {
		return err
	}
	var leafMiss, leafTot, prefMiss, prefTot int
	for i, nd := range nodes {
		lm, lt := tr.LeafSetMissingFor(descs[i].ID, nd.Leaf())
		pm, pt := tr.PrefixMissingFor(descs[i].ID, nd.Table())
		leafMiss, leafTot = leafMiss+lm, leafTot+lt
		prefMiss, prefTot = prefMiss+pm, prefTot+pt
	}
	st := net.Snapshot()
	fmt.Printf("after ~70 periods (incl. crash/recovery): leaf missing %.4f, prefix missing %.4f\n",
		float64(leafMiss)/float64(leafTot), float64(prefMiss)/float64(prefTot))
	fmt.Printf("traffic: sent %d, dropped %d (%.1f%%), delivered %d, inbox overflow %d\n",
		st.Sent, st.Dropped, 100*float64(st.Dropped)/float64(st.Sent), st.Delivered, st.Overflow)

	// Route a few keys over whatever was built.
	routers := make([]*pastry.Router, numHosts)
	for i, nd := range nodes {
		routers[i] = pastry.FromBootstrap(nd)
	}
	mesh := pastry.NewMesh(routers, 0)
	rng := rand.New(rand.NewSource(12))
	ok, total := 0, 200
	for i := 0; i < total; i++ {
		key := id.ID(rng.Uint64())
		path, err := mesh.Route(descs[rng.Intn(numHosts)].Addr, key)
		if err != nil {
			continue
		}
		if path[len(path)-1] == ringClosest(descs, key).Addr {
			ok++
		}
	}
	fmt.Printf("pastry routing over the live-built tables: %d/%d keys reached their root\n", ok, total)
	return nil
}

func ringClosest(descs []peer.Descriptor, key id.ID) peer.Descriptor {
	best := descs[0]
	for _, d := range descs[1:] {
		if id.CompareRing(key, d.ID, best.ID) < 0 {
			best = d
		}
	}
	return best
}
