// Kvstore: an application on top of the jump-started overlay. A pool of
// nodes bootstraps its routing substrate from scratch, then immediately
// serves a replicated key-value store (PAST-style: keys live at their
// ring-closest node plus neighbours). Nodes then crash, and the store
// stays available because responsibility migrates to replicas.
//
//	go run ./examples/kvstore
package main

import (
	"fmt"
	"math/rand"
	"os"

	"repro/internal/core"
	"repro/internal/dht"
	"repro/internal/id"
	"repro/internal/overlay/pastry"
	"repro/internal/peer"
	"repro/internal/sampling"
	"repro/internal/simnet"
)

const (
	numNodes = 500
	numKeys  = 1000
	replicas = 3
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "kvstore:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. Jump-start the overlay.
	net := simnet.New(simnet.Config{Seed: 41})
	ids := id.Unique(numNodes, 42)
	descs := make([]peer.Descriptor, numNodes)
	for i := range descs {
		descs[i] = peer.Descriptor{ID: ids[i], Addr: net.AddNode()}
	}
	oracle := sampling.NewOracle(descs, 43)
	cfg := core.DefaultConfig()
	boot := make([]*core.Node, numNodes)
	for i, d := range descs {
		nd, err := core.NewNode(d, cfg, oracle)
		if err != nil {
			return err
		}
		boot[i] = nd
		if err := net.Attach(d.Addr, core.ProtoID, nd, cfg.Delta, int64(i)%cfg.Delta); err != nil {
			return err
		}
	}
	fmt.Printf("bootstrapping %d nodes... ", numNodes)
	net.Run(cfg.Delta * 30)
	fmt.Printf("done (%d messages)\n", net.Stats().Sent)

	// 2. Build the store on the bootstrapped tables.
	nodes := make([]*dht.Node, numNodes)
	for i, b := range boot {
		nodes[i] = dht.NewNode(pastry.FromBootstrap(b))
	}
	cluster := dht.NewCluster(nodes, replicas)

	rng := rand.New(rand.NewSource(44))
	keys := make([]id.ID, numKeys)
	degraded := 0
	var st dht.OpStats
	for i := range keys {
		keys[i] = id.ID(rng.Uint64())
		val := []byte(fmt.Sprintf("value-%d", i))
		if err := cluster.PutStats(descs[rng.Intn(numNodes)].Addr, keys[i], val, &st); err != nil {
			return fmt.Errorf("put key %d: %w", i, err)
		}
		if st.Stored < st.Want {
			degraded++
		}
	}
	fmt.Printf("stored %d keys with replication %d (%d degraded)\n", numKeys, replicas, degraded)
	if degraded > 0 {
		return fmt.Errorf("%d keys stored below the replication target on a healthy cluster", degraded)
	}

	// 3. Crash 10% of the nodes and measure availability.
	crashed := make(map[peer.Addr]bool, numNodes/10)
	for len(crashed) < numNodes/10 {
		victim := descs[rng.Intn(numNodes)].Addr
		if !crashed[victim] {
			crashed[victim] = true
			cluster.Remove(victim)
		}
	}
	fmt.Printf("crashed %d nodes (%d survive)\n", len(crashed), cluster.Len())

	available, lost := 0, 0
	for i, key := range keys {
		var from peer.Addr
		for {
			from = descs[rng.Intn(numNodes)].Addr
			if !crashed[from] {
				break
			}
		}
		val, err := cluster.Get(from, key)
		if err != nil {
			lost++
			continue
		}
		if string(val) != fmt.Sprintf("value-%d", i) {
			return fmt.Errorf("key %d corrupted", i)
		}
		available++
	}
	fmt.Printf("after the crash: %d/%d keys readable (%.2f%% availability)\n",
		available, numKeys, 100*float64(available)/float64(numKeys))
	if available < numKeys*99/100 {
		return fmt.Errorf("availability below 99%%")
	}
	return nil
}
