// Command loadsim drives the serving plane: a deterministic closed-loop
// get/put workload over a DHT built on the bootstrapped overlay, while a
// churn, crash, or partition scenario runs. Per cycle it emits one CSV
// row with op outcomes, routed-hop and latency percentiles, and the
// overlay-quality estimate from the sampled-estimator machinery; at the
// end it prints a `# loadstats` summary (ops/sec, per-op allocs).
//
//	loadsim -n 4096 -scenario churn
//	loadsim -n 1024 -scenario partition -ops 50000 -workers 8
//	loadsim -n 1024 -scenario flash        # 25% standby burst-joins mid-run
//	loadsim -n 512 -boot simnet            # bootstrap via the real protocol
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/dht"
	"repro/internal/id"
	"repro/internal/load"
	"repro/internal/overlay/pastry"
	"repro/internal/peer"
	"repro/internal/sampling"
	"repro/internal/simnet"
	"repro/internal/truth"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "loadsim:", err)
		os.Exit(1)
	}
}

type options struct {
	n              int
	cycles         int
	ops            int
	workers        int
	keys           int
	getRatio       float64
	zipfS          float64
	valueSize      int
	replicas       int
	scenario       string
	churnRate      float64
	seed           int64
	standby        int
	boot           string
	measureSample  int
	measureWorkers int
	cfg            core.Config
}

func parseArgs(args []string) (*options, error) {
	fs := flag.NewFlagSet("loadsim", flag.ContinueOnError)
	var (
		n        = fs.Int("n", 1024, "cluster size")
		cycles   = fs.Int("cycles", 10, "measurement cycles")
		ops      = fs.Int("ops", 20000, "operations per cycle")
		workers  = fs.Int("workers", 4, "closed-loop load workers (G)")
		keys     = fs.Int("keys", 1024, "distinct keys in the working set")
		getRatio = fs.Float64("get", 0.9, "fraction of ops that are gets")
		zipfS    = fs.Float64("zipf", 0, "Zipf popularity exponent (>1 enables skew; 0 = uniform)")
		valSize  = fs.Int("valsize", 64, "value size in bytes")
		replicas = fs.Int("replicas", dht.DefaultReplicas, "replication factor")
		scenario = fs.String("scenario", "none", "none|churn|crash|partition|flash")
		churn    = fs.Float64("churn", 0.01, "per-cycle fraction of live nodes removed (scenario=churn)")
		seed     = fs.Int64("seed", 42, "random seed")
		boot     = fs.String("boot", "perfect", "perfect|simnet (perfect tables, or bootstrap via the gossip protocol)")
		measureS = fs.Int("measure-sample", 0, "overlay measurement sample size (0 = exact full measurement)")
		measureW = fs.Int("measure-workers", 0, "measurement worker goroutines (0 = GOMAXPROCS; output identical for any value)")
	)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	o := &options{
		n: *n, cycles: *cycles, ops: *ops, workers: *workers, keys: *keys,
		getRatio: *getRatio, zipfS: *zipfS, valueSize: *valSize,
		replicas: *replicas, scenario: *scenario, churnRate: *churn,
		seed: *seed, boot: *boot,
		measureSample: *measureS, measureWorkers: *measureW,
		cfg: core.DefaultConfig(),
	}
	if o.n < 2 {
		return nil, fmt.Errorf("-n must be at least 2, got %d", o.n)
	}
	if o.cycles < 1 {
		return nil, fmt.Errorf("-cycles must be at least 1, got %d", o.cycles)
	}
	switch o.scenario {
	case "none", "churn", "crash", "partition":
	case "flash":
		// A quarter of the population sits out as standbys and burst-joins
		// at mid-run — the flash-crowd case the paper's joining analysis
		// targets.
		o.standby = o.n / 4
		if o.standby < 1 {
			o.standby = 1
		}
	default:
		return nil, fmt.Errorf("unknown scenario %q", o.scenario)
	}
	switch o.boot {
	case "perfect", "simnet":
	default:
		return nil, fmt.Errorf("unknown boot mode %q", o.boot)
	}
	if o.churnRate < 0 || o.churnRate >= 1 {
		return nil, fmt.Errorf("-churn must be in [0, 1), got %v", o.churnRate)
	}
	return o, nil
}

// world is the simulated deployment: the DHT cluster plus the bookkeeping
// the measurement plane and scenarios need.
type world struct {
	cluster *dht.Cluster
	descs   []peer.Descriptor
	members []truth.Member // index-aligned with descs
	alive   []bool
	nLive   int
	oracle  *truth.Truth
}

// buildPerfect constructs the cluster on perfect routing tables — the
// post-bootstrap fixed point, without simulating the bootstrap itself.
func buildPerfect(o *options) (*world, error) {
	total := o.n + o.standby
	ids := id.Unique(total, o.seed)
	descs := make([]peer.Descriptor, total)
	for i, v := range ids {
		descs[i] = peer.Descriptor{ID: v, Addr: peer.Addr(i)}
	}
	nodes := make([]*dht.Node, total)
	members := make([]truth.Member, total)
	for i, d := range descs {
		ls := core.NewLeafSet(d.ID, o.cfg.C)
		ls.Update(descs)
		pt := core.NewPrefixTable(d.ID, o.cfg.B, o.cfg.K)
		pt.AddAll(descs)
		nodes[i] = dht.NewNode(pastry.New(d, ls, pt, o.cfg.B))
		members[i] = truth.Member{Self: d.ID, Leaf: ls, Table: pt}
	}
	return newWorld(o, descs, nodes, members, ids)
}

// buildSimnet runs the paper's bootstrap protocol on the simulated
// network and promotes the converged structures into the DHT (the
// examples/kvstore flow).
func buildSimnet(o *options) (*world, error) {
	total := o.n + o.standby
	net := simnet.New(simnet.Config{Seed: o.seed})
	ids := id.Unique(total, o.seed+1)
	descs := make([]peer.Descriptor, total)
	for i := range descs {
		descs[i] = peer.Descriptor{ID: ids[i], Addr: net.AddNode()}
	}
	oracle := sampling.NewOracle(descs, o.seed+2)
	boot := make([]*core.Node, total)
	for i, d := range descs {
		nd, err := core.NewNode(d, o.cfg, oracle)
		if err != nil {
			return nil, err
		}
		boot[i] = nd
		if err := net.Attach(d.Addr, core.ProtoID, nd, o.cfg.Delta, int64(i)%o.cfg.Delta); err != nil {
			return nil, err
		}
	}
	net.Run(o.cfg.Delta * 30)
	nodes := make([]*dht.Node, total)
	members := make([]truth.Member, total)
	for i, b := range boot {
		nodes[i] = dht.NewNode(pastry.FromBootstrap(b))
		members[i] = truth.Member{Self: descs[i].ID, Leaf: b.Leaf(), Table: b.Table()}
	}
	return newWorld(o, descs, nodes, members, ids)
}

func newWorld(o *options, descs []peer.Descriptor, nodes []*dht.Node, members []truth.Member, ids []id.ID) (*world, error) {
	oracle, err := truth.New(ids, o.cfg.B, o.cfg.K, o.cfg.C)
	if err != nil {
		return nil, err
	}
	alive := make([]bool, len(descs))
	for i := range alive {
		alive[i] = true
	}
	return &world{
		cluster: dht.NewCluster(nodes, o.replicas),
		descs:   descs,
		members: members,
		alive:   alive,
		nLive:   len(descs),
		oracle:  oracle,
	}, nil
}

// remove kills one node everywhere: cluster (repair + migration) and the
// measurement oracle.
func (w *world) remove(i int) error {
	if !w.alive[i] {
		return nil
	}
	w.alive[i] = false
	w.nLive--
	w.cluster.Remove(w.descs[i].Addr)
	return w.oracle.Remove(w.descs[i].ID)
}

// join revives one standby everywhere: cluster (adoption + migration) and
// the measurement oracle.
func (w *world) join(i int) error {
	if w.alive[i] {
		return nil
	}
	w.alive[i] = true
	w.nLive++
	w.cluster.Join(w.descs[i].Addr)
	return w.oracle.Add(w.descs[i].ID)
}

// liveMembers appends the truth.Members of live nodes to dst.
func (w *world) liveMembers(dst []truth.Member) []truth.Member {
	for i, m := range w.members {
		if w.alive[i] {
			dst = append(dst, m)
		}
	}
	return dst
}

// applyScenario mutates the world before a cycle's load runs. Deterministic
// in (options, cycle, rng state).
func applyScenario(o *options, w *world, cycle int, rng *rand.Rand) error {
	switch o.scenario {
	case "churn":
		// Steady churn from cycle 1 on: each cycle kills churnRate of the
		// live population, one node at a time (each departure repairs
		// before the next, the steady-state regime).
		if cycle == 0 {
			return nil
		}
		kill := int(float64(w.nLive) * o.churnRate)
		if kill < 1 {
			kill = 1
		}
		for k := 0; k < kill && w.nLive > 2; k++ {
			vi := rng.Intn(len(w.descs))
			for !w.alive[vi] {
				vi = (vi + 1) % len(w.descs)
			}
			if err := w.remove(vi); err != nil {
				return err
			}
		}
	case "crash":
		// One mass failure at mid-run: 10% of the population at once.
		if cycle != o.cycles/2 {
			return nil
		}
		kill := w.nLive / 10
		for k := 0; k < kill && w.nLive > 2; k++ {
			vi := rng.Intn(len(w.descs))
			for !w.alive[vi] {
				vi = (vi + 1) % len(w.descs)
			}
			if err := w.remove(vi); err != nil {
				return err
			}
		}
	case "flash":
		// The flash crowd: every standby joins at once at mid-run. Joins
		// are applied in index order, one Join (adopt + migrate) at a
		// time, so the run is deterministic.
		if cycle != o.cycles/2 {
			return nil
		}
		for i := o.n; i < o.n+o.standby; i++ {
			if err := w.join(i); err != nil {
				return err
			}
		}
	case "partition":
		// Split the address space in half for the middle third of the
		// run, then heal.
		lo, hi := o.cycles/3, 2*o.cycles/3
		half := peer.Addr(o.n / 2)
		if cycle == lo {
			w.cluster.SetPartition(func(a, b peer.Addr) bool {
				return (a < half) != (b < half)
			})
		}
		if cycle == hi {
			w.cluster.SetPartition(nil)
		}
	}
	return nil
}

func run(args []string, out io.Writer) error {
	o, err := parseArgs(args)
	if err != nil {
		return err
	}
	var w *world
	if o.boot == "simnet" {
		w, err = buildSimnet(o)
	} else {
		w, err = buildPerfect(o)
	}
	if err != nil {
		return err
	}
	// Standbys sit out until the flash crowd: parked before the preload so
	// the working set lives entirely on the initial population.
	for i := o.n; i < o.n+o.standby; i++ {
		if err := w.remove(i); err != nil {
			return err
		}
	}
	gen := load.New(w.cluster, load.Config{
		Workers:   o.workers,
		KeySpace:  o.keys,
		GetRatio:  o.getRatio,
		ZipfS:     o.zipfS,
		ValueSize: o.valueSize,
		Seed:      o.seed + 3,
	})
	full := gen.Preload()

	fmt.Fprintf(out, "# loadsim n=%d boot=%s scenario=%s workers=%d ops/cycle=%d keys=%d get=%.2f zipf=%.2f replicas=%d seed=%d measure_sample=%d\n",
		o.n, o.boot, o.scenario, o.workers, o.ops, o.keys, o.getRatio, o.zipfS, o.replicas, o.seed, o.measureSample)
	fmt.Fprintf(out, "# preload keys=%d full_replication=%d\n", o.keys, full)
	fmt.Fprintln(out, "cycle,live,ops,ok,notfound,noroute,degraded,hop_p50,hop_p99,hop_mean,lat_p50_ns,lat_p99_ns,lat_p999_ns,leaf_missing,leaf_ci,prefix_missing,prefix_ci")

	scenRng := rand.New(rand.NewSource(o.seed + 4))
	measRng := rand.New(rand.NewSource(o.seed + 5))
	var members []truth.Member
	var memBefore, memAfter runtime.MemStats
	runtime.ReadMemStats(&memBefore)
	start := time.Now()

	for cycle := 0; cycle < o.cycles; cycle++ {
		if err := applyScenario(o, w, cycle, scenRng); err != nil {
			return err
		}
		st := gen.RunCycle(o.ops)

		members = w.liveMembers(members[:0])
		var leaf, prefix, leafCI, prefixCI float64
		if o.measureSample > 0 && o.measureSample < len(members) {
			agg := w.oracle.MeasureSampleConf(members, o.measureSample, 0.95, measRng, o.measureWorkers)
			leaf, leafCI = agg.LeafMissing.Mean, agg.LeafMissing.CI
			prefix, prefixCI = agg.PrefixMissing.Mean, agg.PrefixMissing.CI
		} else {
			agg := w.oracle.MeasureAll(members, o.measureWorkers)
			leaf = proportion(agg.LeafMissing, agg.LeafTotal)
			prefix = proportion(agg.PrefixMissing, agg.PrefixTotal)
		}

		fmt.Fprintf(out, "%d,%d,%d,%d,%d,%d,%d,%d,%d,%.3f,%d,%d,%d,%e,%e,%e,%e\n",
			cycle, w.nLive, st.Ops, st.OK, st.NotFound, st.NoRoute, st.Degraded,
			st.Hops.Quantile(0.5), st.Hops.Quantile(0.99), st.Hops.Mean(),
			st.Lat.Quantile(0.5), st.Lat.Quantile(0.99), st.Lat.Quantile(0.999),
			leaf, leafCI, prefix, prefixCI)
	}

	elapsed := time.Since(start)
	runtime.ReadMemStats(&memAfter)
	tot := gen.Totals()
	allocsPerOp := 0.0
	if tot.Ops > 0 {
		allocsPerOp = float64(memAfter.Mallocs-memBefore.Mallocs) / float64(tot.Ops)
	}
	fmt.Fprintf(out, "# loadstats ops=%d ok=%d success=%.4f ops_per_sec=%.0f allocs_per_op=%.2f elapsed=%s\n",
		tot.Ops, tot.OK, tot.SuccessRate(),
		float64(tot.Ops)/elapsed.Seconds(), allocsPerOp, elapsed.Round(time.Millisecond))
	if (o.scenario == "churn" || o.scenario == "flash") && tot.SuccessRate() < 0.99 {
		return fmt.Errorf("success rate %.4f under %s, want >= 0.99", tot.SuccessRate(), o.scenario)
	}
	return nil
}

func proportion(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}
