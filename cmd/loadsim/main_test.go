package main

import (
	"crypto/sha256"
	"encoding/hex"
	"strings"
	"testing"
)

// deterministicColumns strips everything wall-clock-dependent from a
// loadsim output: comment lines (the loadstats summary carries ops/sec)
// and the three lat_* columns of each data row. What remains is a pure
// function of the flags.
func deterministicColumns(t *testing.T, out string) string {
	t.Helper()
	var sb strings.Builder
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		cols := strings.Split(line, ",")
		if strings.HasPrefix(line, "cycle,") {
			if len(cols) != 17 {
				t.Fatalf("header has %d columns, want 17: %s", len(cols), line)
			}
		} else if len(cols) != 17 {
			t.Fatalf("data row has %d columns, want 17: %s", len(cols), line)
		}
		// Drop lat_p50_ns, lat_p99_ns, lat_p999_ns (columns 10-12).
		kept := append(append([]string{}, cols[:10]...), cols[13:]...)
		sb.WriteString(strings.Join(kept, ","))
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestLoadSimGolden pins the deterministic CSV of a seeded churn run
// (sha256 over everything but the wall-clock latency columns) — any diff
// here means the serving plane's behaviour changed.
func TestLoadSimGolden(t *testing.T) {
	var sb strings.Builder
	err := run([]string{
		"-n", "256", "-cycles", "5", "-ops", "2000", "-workers", "2",
		"-scenario", "churn", "-measure-sample", "64", "-seed", "42",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	det := deterministicColumns(t, sb.String())
	sum := sha256.Sum256([]byte(det))
	got := hex.EncodeToString(sum[:])
	const want = "6bc506b0e7959d7872f0dbd29152fa2eac0db728327a887b0e0c8aa660352fa7"
	if got != want {
		t.Errorf("deterministic CSV hash = %s, want %s\ncontent:\n%s", got, want, det)
	}
}

// TestLoadSimFlashCrowd pins the flash-crowd join scenario: a quarter of
// the population burst-joins at mid-run, the live column must jump by
// exactly the standby count, run() itself enforces the >= 0.99 success
// gate, and the deterministic CSV is golden-pinned like the churn run.
func TestLoadSimFlashCrowd(t *testing.T) {
	var sb strings.Builder
	err := run([]string{
		"-n", "256", "-cycles", "6", "-ops", "2000", "-workers", "2",
		"-scenario", "flash", "-seed", "42",
	}, &sb)
	if err != nil {
		t.Fatal(err) // includes the success-rate gate tripping
	}
	out := sb.String()
	var before, after bool
	for _, line := range strings.Split(out, "\n") {
		cols := strings.Split(line, ",")
		if len(cols) < 2 || strings.HasPrefix(line, "#") || cols[0] == "cycle" {
			continue
		}
		switch cols[1] {
		case "256":
			before = true
		case "320":
			after = true
		default:
			t.Fatalf("unexpected live count %s (want 256 pre-burst, 320 post)", cols[1])
		}
	}
	if !before || !after {
		t.Fatalf("flash burst not visible in the live column:\n%s", out)
	}
	det := deterministicColumns(t, out)
	sum := sha256.Sum256([]byte(det))
	got := hex.EncodeToString(sum[:])
	const want = "dcd480386476afffe1b3b24785727dafae1b300a6eaad70d5ca0f30638fa3767"
	if got != want {
		t.Errorf("deterministic CSV hash = %s, want %s\ncontent:\n%s", got, want, det)
	}
}

// TestLoadSimRepeatable: a fixed config is exactly repeatable even with
// several concurrent workers — each worker's op stream is independently
// seeded and the merge is a commutative sum, so goroutine scheduling
// cannot leak into the deterministic columns. (Different worker counts
// legitimately draw different op streams; the invariant is per-config.)
func TestLoadSimRepeatable(t *testing.T) {
	outs := make([]string, 0, 2)
	for i := 0; i < 2; i++ {
		var sb strings.Builder
		err := run([]string{
			"-n", "128", "-cycles", "3", "-ops", "1500", "-workers", "3",
			"-scenario", "churn", "-seed", "7",
		}, &sb)
		if err != nil {
			t.Fatal(err)
		}
		outs = append(outs, deterministicColumns(t, sb.String()))
	}
	if outs[0] != outs[1] {
		t.Errorf("two identical runs diverged:\n--- first\n%s\n--- second\n%s", outs[0], outs[1])
	}
}

// TestLoadSimScenarios: every scenario completes; churn keeps the
// acceptance success bar, the partition window shows degraded or failed
// cross-cut ops and then heals.
func TestLoadSimScenarios(t *testing.T) {
	for _, scen := range []string{"none", "crash", "partition"} {
		var sb strings.Builder
		err := run([]string{
			"-n", "128", "-cycles", "6", "-ops", "1000", "-workers", "2",
			"-scenario", scen, "-seed", "11",
		}, &sb)
		if err != nil {
			t.Fatalf("scenario %s: %v", scen, err)
		}
		if !strings.Contains(sb.String(), "# loadstats ops=6000") {
			t.Errorf("scenario %s: missing loadstats summary:\n%s", scen, sb.String())
		}
	}
}

// TestLoadSimSimnetBoot: the real-bootstrap path serves too.
func TestLoadSimSimnetBoot(t *testing.T) {
	var sb strings.Builder
	err := run([]string{
		"-n", "64", "-cycles", "2", "-ops", "500", "-workers", "2",
		"-boot", "simnet", "-seed", "13",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "boot=simnet") {
		t.Errorf("missing boot mode header:\n%s", out)
	}
	if !strings.Contains(out, "success=1.0000") {
		t.Errorf("bootstrap-built cluster did not serve cleanly:\n%s", out)
	}
}

func TestLoadSimFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-n", "1"},
		{"-cycles", "0"},
		{"-scenario", "alien"},
		{"-boot", "alien"},
		{"-churn", "1.5"},
	}
	for _, args := range cases {
		var sb strings.Builder
		if err := run(args, &sb); err == nil {
			t.Errorf("args %v: expected an error", args)
		}
	}
}
