// Command netsim runs socket-engine campaigns of the bootstrapping
// service sharded across real OS processes: each worker process owns
// n/procs hosts behind its own TCP (or UDP) port on a port-indexed
// localhost topology, every protocol message crosses the kernel through
// the internal/wire codec, and the driver aggregates the same per-cycle
// CSV series bootsim and livesim emit. It is the third engine's campaign
// driver — after bootsim (deterministic simulation) and livesim
// (goroutine concurrency), netsim measures the protocol over an actual
// network stack: serialization, kernel backpressure, per-process failure
// isolation.
//
// Usage:
//
//	netsim [flags]
//
//	-n int          network size (hosts) (default 1024)
//	-procs int      worker processes sharding the hosts (default 4)
//	-cycles int     campaign length in periods (default 30)
//	-period dur     gossip period Δ; 0 scales with -n (default 0)
//	-scenario name  none|churn|partition|drop (default "churn")
//	-drop float     initial sender-side loss probability (default 0)
//	-seed int       campaign seed (default 42)
//	-base-port int  worker p listens on base-port+p (default 18500)
//	-inbox int      per-host inbox bound; 0 = engine default
//	-queue int      per-peer send-queue bound; 0 = engine default
//	-udp            datagram sockets instead of TCP streams
//	-measure-workers int  goroutines sharding each worker's measurement
//	-full           keep running after convergence
//	-o path         write the CSV to path instead of stdout
//
// The latency scenario is rejected: the socket engine measures the
// kernel's real delivery latency instead of injecting one.
//
// Workers are respawns of the same binary (-worker -proc p) driven over a
// line protocol on stdin/stdout; their logs go to stderr. At the end of a
// campaign the driver drains every worker to quiescence and checks the
// cross-process conservation law ΣSent == ΣDelivered + ΣDropped +
// ΣOverflow — a non-conserved campaign exits non-zero.
//
// Examples:
//
//	netsim -n 128 -procs 2 -cycles 10 -scenario none
//	netsim -n 1024 -procs 4 -scenario churn
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/livenet"
	"repro/internal/transport"
	"repro/internal/truth"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

type options struct {
	n              int
	procs          int
	cycles         int
	period         time.Duration
	scenario       livenet.Scenario
	drop           float64
	seed           int64
	basePort       int
	inbox, queue   int
	udp            bool
	measureWorkers int
	full           bool
	out            string

	worker bool
	proc   int
}

func parseArgs(args []string) (*options, error) {
	fs := flag.NewFlagSet("netsim", flag.ContinueOnError)
	var (
		n        = fs.Int("n", 1024, "network size (hosts)")
		procs    = fs.Int("procs", 4, "worker processes")
		cycles   = fs.Int("cycles", 30, "campaign length in periods")
		period   = fs.Duration("period", 0, "gossip period; 0 scales with -n")
		scenario = fs.String("scenario", "churn", "none|churn|partition|drop")
		drop     = fs.Float64("drop", 0, "initial loss probability")
		seed     = fs.Int64("seed", 42, "campaign seed")
		basePort = fs.Int("base-port", 18500, "worker p listens on base-port+p")
		inbox    = fs.Int("inbox", 0, "per-host inbox bound (0 = default)")
		queue    = fs.Int("queue", 0, "per-peer send-queue bound (0 = default)")
		udp      = fs.Bool("udp", false, "datagram sockets instead of TCP")
		measure  = fs.Int("measure-workers", 0, "measurement goroutines per worker (0 = GOMAXPROCS)")
		full     = fs.Bool("full", false, "keep running after convergence")
		out      = fs.String("o", "", "output path (default stdout)")
		worker   = fs.Bool("worker", false, "run as a worker process (internal)")
		proc     = fs.Int("proc", 0, "worker shard index (internal)")
	)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	opts := &options{
		n: *n, procs: *procs, cycles: *cycles, period: *period,
		drop: *drop, seed: *seed, basePort: *basePort,
		inbox: *inbox, queue: *queue, udp: *udp,
		measureWorkers: *measure, full: *full, out: *out,
		worker: *worker, proc: *proc,
	}
	switch *scenario {
	case "none":
		opts.scenario = livenet.ScenarioNone
	case "churn":
		opts.scenario = livenet.ScenarioChurn
	case "partition":
		opts.scenario = livenet.ScenarioPartition
	case "drop":
		opts.scenario = livenet.ScenarioDrop
	default:
		return nil, fmt.Errorf("unknown scenario %q (latency is unsupported: the kernel provides the latency)", *scenario)
	}
	if opts.procs < 1 {
		return nil, fmt.Errorf("-procs must be at least 1")
	}
	if opts.period == 0 {
		// Resolve the default here so one value reaches every worker
		// explicitly rather than each process re-deriving it.
		opts.period = experiment.DefaultLivePeriod(opts.n, 1)
	}
	return opts, nil
}

func (o *options) socketParams(proc int) experiment.SocketParams {
	return experiment.SocketParams{
		N:                       o.n,
		Config:                  core.DefaultConfig(),
		Period:                  o.period,
		Cycles:                  o.cycles,
		Drop:                    o.drop,
		InboxSize:               o.inbox,
		QueueSize:               o.queue,
		Procs:                   o.procs,
		Proc:                    proc,
		BasePort:                o.basePort,
		UDP:                     o.udp,
		Scenario:                o.scenario,
		MeasureWorkers:          o.measureWorkers,
		KeepRunningAfterPerfect: o.full,
	}
}

func run(args []string, stdout, stderr io.Writer) int {
	opts, err := parseArgs(args)
	if err != nil {
		fmt.Fprintln(stderr, "netsim:", err)
		return 2
	}
	if opts.worker {
		if err := runWorker(opts, os.Stdin, stdout, stderr); err != nil {
			fmt.Fprintf(stderr, "netsim worker %d: %v\n", opts.proc, err)
			return 1
		}
		return 0
	}
	if err := runDriver(opts, stdout, stderr); err != nil {
		fmt.Fprintln(stderr, "netsim:", err)
		return 1
	}
	return 0
}

// pointMsg is one worker's per-cycle report: its partial measurement
// (integer sums over its local members), the alive counts, and its
// current traffic counters.
type pointMsg struct {
	Agg         truth.Aggregate
	LocalAlive  int
	GlobalAlive int
	Stats       transport.Stats
}

// runWorker executes one shard under the driver's line protocol:
//
//	worker → READY <lastEventCycle>
//	driver → CYCLE <c>     worker → POINT <json pointMsg>
//	driver → DRAIN         worker → DRAINED <ok> <json Stats>
//	driver → STATS         worker → STATS <json Stats>
//	driver → EXIT          worker closes and exits
func runWorker(opts *options, stdin io.Reader, stdout, stderr io.Writer) error {
	trial, err := experiment.NewSocketTrial(opts.socketParams(opts.proc), opts.seed)
	if err != nil {
		return err
	}
	defer trial.Close()
	if err := trial.Start(); err != nil {
		return err
	}
	out := bufio.NewWriter(stdout)
	say := func(format string, a ...any) error {
		if _, err := fmt.Fprintf(out, format+"\n", a...); err != nil {
			return err
		}
		return out.Flush()
	}
	if err := say("READY %d", trial.LastEventCycle); err != nil {
		return err
	}
	sc := bufio.NewScanner(stdin)
	for sc.Scan() {
		cmd, rest, _ := strings.Cut(strings.TrimSpace(sc.Text()), " ")
		switch cmd {
		case "CYCLE":
			cycle, err := strconv.Atoi(rest)
			if err != nil {
				return fmt.Errorf("bad CYCLE %q", rest)
			}
			agg, la, ga, err := trial.StepCycle(cycle)
			if err != nil {
				return err
			}
			msg, err := json.Marshal(pointMsg{Agg: agg, LocalAlive: la, GlobalAlive: ga, Stats: trial.Stats()})
			if err != nil {
				return err
			}
			if err := say("POINT %s", msg); err != nil {
				return err
			}
		case "DRAIN":
			ok := trial.Drain(15 * time.Second)
			msg, err := json.Marshal(trial.Stats())
			if err != nil {
				return err
			}
			if err := say("DRAINED %t %s", ok, msg); err != nil {
				return err
			}
		case "STATS":
			msg, err := json.Marshal(trial.Stats())
			if err != nil {
				return err
			}
			if err := say("STATS %s", msg); err != nil {
				return err
			}
		case "EXIT":
			return nil
		default:
			return fmt.Errorf("unknown command %q", cmd)
		}
	}
	// Driver went away (EOF): tear down quietly.
	return sc.Err()
}

// workerProc is the driver's handle on one spawned worker.
type workerProc struct {
	proc int
	cmd  *exec.Cmd
	in   *bufio.Writer
	out  *bufio.Scanner
}

func (w *workerProc) send(line string) error {
	if _, err := fmt.Fprintln(w.in, line); err != nil {
		return fmt.Errorf("worker %d: %w", w.proc, err)
	}
	return w.in.Flush()
}

// expect reads the next protocol line and strips the required prefix.
func (w *workerProc) expect(prefix string) (string, error) {
	if !w.out.Scan() {
		if err := w.out.Err(); err != nil {
			return "", fmt.Errorf("worker %d: %w", w.proc, err)
		}
		return "", fmt.Errorf("worker %d: exited early (wanted %s)", w.proc, prefix)
	}
	line := strings.TrimSpace(w.out.Text())
	rest, found := strings.CutPrefix(line, prefix+" ")
	if !found && line != prefix {
		return "", fmt.Errorf("worker %d: got %q, wanted %s", w.proc, line, prefix)
	}
	return rest, nil
}

// runDriver spawns the workers, steps the campaign cycle by cycle,
// aggregates the partial measurements, drains everyone to quiescence, and
// verifies the cross-process conservation law.
func runDriver(opts *options, stdout, stderr io.Writer) error {
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	workerArgs := []string{
		"-worker",
		"-n", strconv.Itoa(opts.n),
		"-procs", strconv.Itoa(opts.procs),
		"-cycles", strconv.Itoa(opts.cycles),
		"-period", opts.period.String(),
		"-scenario", opts.scenario.Name,
		"-drop", strconv.FormatFloat(opts.drop, 'g', -1, 64),
		"-seed", strconv.FormatInt(opts.seed, 10),
		"-base-port", strconv.Itoa(opts.basePort),
		"-inbox", strconv.Itoa(opts.inbox),
		"-queue", strconv.Itoa(opts.queue),
		"-measure-workers", strconv.Itoa(opts.measureWorkers),
	}
	if opts.udp {
		workerArgs = append(workerArgs, "-udp")
	}
	if opts.full {
		workerArgs = append(workerArgs, "-full")
	}

	workers := make([]*workerProc, opts.procs)
	defer func() {
		for _, w := range workers {
			if w != nil {
				w.cmd.Process.Kill()
				w.cmd.Wait()
			}
		}
	}()
	for p := 0; p < opts.procs; p++ {
		cmd := exec.Command(exe, append(append([]string{}, workerArgs...), "-proc", strconv.Itoa(p))...)
		// The env marker lets a test binary reroute itself into worker
		// mode; the real binary keys off -worker alone.
		cmd.Env = append(os.Environ(), "NETSIM_WORKER=1")
		cmd.Stderr = os.Stderr
		stdin, err := cmd.StdinPipe()
		if err != nil {
			return err
		}
		out, err := cmd.StdoutPipe()
		if err != nil {
			return err
		}
		if err := cmd.Start(); err != nil {
			return fmt.Errorf("spawn worker %d: %w", p, err)
		}
		sc := bufio.NewScanner(out)
		sc.Buffer(make([]byte, 64*1024), 1<<20)
		workers[p] = &workerProc{proc: p, cmd: cmd, in: bufio.NewWriter(stdin), out: sc}
	}

	lastEvent := -1
	for _, w := range workers {
		rest, err := w.expect("READY")
		if err != nil {
			return err
		}
		if v, err := strconv.Atoi(rest); err == nil && v > lastEvent {
			lastEvent = v
		}
	}
	fmt.Fprintf(stderr, "netsim: %d workers up (n=%d procs=%d period=%s scenario=%s)\n",
		opts.procs, opts.n, opts.procs, opts.period, opts.scenario.Name)

	var points []experiment.Point
	convergedAt := -1
	for cycle := 0; cycle < opts.cycles; cycle++ {
		for _, w := range workers {
			if err := w.send("CYCLE " + strconv.Itoa(cycle)); err != nil {
				return err
			}
		}
		var sum truth.Aggregate
		var st transport.Stats
		globalAlive, localSum := -1, 0
		for _, w := range workers {
			rest, err := w.expect("POINT")
			if err != nil {
				return err
			}
			var msg pointMsg
			if err := json.Unmarshal([]byte(rest), &msg); err != nil {
				return fmt.Errorf("worker %d point: %w", w.proc, err)
			}
			sum.Add(msg.Agg)
			st.Add(msg.Stats)
			localSum += msg.LocalAlive
			if globalAlive >= 0 && msg.GlobalAlive != globalAlive {
				return fmt.Errorf("cycle %d: workers disagree on membership (%d vs %d) — fault plans diverged", cycle, globalAlive, msg.GlobalAlive)
			}
			globalAlive = msg.GlobalAlive
		}
		if localSum != globalAlive {
			return fmt.Errorf("cycle %d: local alive counts sum to %d, plan says %d", cycle, localSum, globalAlive)
		}
		pt := experiment.PointFromAggregate(cycle, sum, globalAlive, st.Sent, st.Dropped, 0)
		points = append(points, pt)
		if pt.LeafMissing == 0 && pt.PrefixMissing == 0 && cycle >= lastEvent {
			if convergedAt < 0 {
				convergedAt = cycle
			}
			if !opts.full {
				break
			}
		}
	}

	// Quiesce: stop every worker's tick sources, wait for each local
	// drain, then poll the global sum until stable — frames can still be
	// crossing process boundaries when an individual worker reports
	// settled.
	for _, w := range workers {
		if err := w.send("DRAIN"); err != nil {
			return err
		}
	}
	for _, w := range workers {
		rest, err := w.expect("DRAINED")
		if err != nil {
			return err
		}
		if ok, _, _ := strings.Cut(rest, " "); ok != "true" {
			fmt.Fprintf(stderr, "netsim: worker %d did not settle locally\n", w.proc)
		}
	}
	var final transport.Stats
	for round := 0; round < 50; round++ {
		var cur transport.Stats
		for _, w := range workers {
			if err := w.send("STATS"); err != nil {
				return err
			}
		}
		for _, w := range workers {
			rest, err := w.expect("STATS")
			if err != nil {
				return err
			}
			var st transport.Stats
			if err := json.Unmarshal([]byte(rest), &st); err != nil {
				return err
			}
			cur.Add(st)
		}
		if round > 0 && cur == final {
			final = cur
			break
		}
		final = cur
		time.Sleep(50 * time.Millisecond)
	}
	for _, w := range workers {
		if err := w.send("EXIT"); err != nil {
			return err
		}
	}
	for _, w := range workers {
		if err := w.cmd.Wait(); err != nil {
			return fmt.Errorf("worker %d: %w", w.proc, err)
		}
	}
	workers = nil

	out := stdout
	if opts.out != "" {
		f, err := os.Create(opts.out)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	fmt.Fprintf(out, "# netsim n=%d procs=%d period=%s cycles=%d scenario=%s seed=%d drop=%g udp=%t\n",
		opts.n, opts.procs, opts.period, opts.cycles, opts.scenario.Name, opts.seed, opts.drop, opts.udp)
	fmt.Fprintf(out, "# converged_at=%d\n", convergedAt)
	agg := experiment.AggregateSeries([][]experiment.Point{points}, []int{convergedAt})
	if err := experiment.WriteAggCSV(out, agg, false); err != nil {
		return err
	}
	conservedOK := final.Sent == final.Delivered+final.Dropped+final.Overflow
	fmt.Fprintf(out, "# netstats sent=%d delivered=%d dropped=%d overflow=%d conserved=%t\n",
		final.Sent, final.Delivered, final.Dropped, final.Overflow, conservedOK)
	if !conservedOK {
		return fmt.Errorf("traffic counters not conserved at quiescence: %+v (diff %d)",
			final, final.Sent-final.Delivered-final.Dropped-final.Overflow)
	}
	if convergedAt < 0 {
		fmt.Fprintf(stderr, "netsim: campaign did not converge in %d cycles\n", opts.cycles)
	}
	return nil
}
