package main

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

// TestMain reroutes the test binary into worker mode when the driver
// (running inside a test) re-execs it: os.Executable() is the test binary
// itself, so the NETSIM_WORKER marker distinguishes a worker spawn from a
// normal `go test` invocation.
func TestMain(m *testing.M) {
	if os.Getenv("NETSIM_WORKER") == "1" {
		os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}

func TestParseArgs(t *testing.T) {
	opts, err := parseArgs([]string{"-n", "64", "-procs", "3", "-scenario", "partition"})
	if err != nil {
		t.Fatal(err)
	}
	if opts.n != 64 || opts.procs != 3 || opts.scenario.Name != "partition" {
		t.Fatalf("parsed %+v", opts)
	}
	if opts.period == 0 {
		t.Fatal("default period not resolved")
	}
	if _, err := parseArgs([]string{"-scenario", "latency"}); err == nil {
		t.Fatal("latency scenario accepted")
	}
	if _, err := parseArgs([]string{"-procs", "0"}); err == nil {
		t.Fatal("zero procs accepted")
	}
}

// TestNetsimSmoke runs a real two-process campaign: the in-process driver
// spawns two worker copies of this test binary, every protocol message
// crosses loopback TCP, and the emitted CSV plus the conservation footer
// are checked. This is the same path CI's netsim smoke exercises.
func TestNetsimSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes")
	}
	var out bytes.Buffer
	args := []string{
		"-n", "48", "-procs", "2", "-cycles", "12", "-period", "15ms",
		"-scenario", "churn", "-seed", "9", "-base-port", "19500",
	}
	if code := run(args, &out, os.Stderr); code != 0 {
		t.Fatalf("netsim exited %d\noutput:\n%s", code, out.String())
	}
	got := out.String()
	if !strings.Contains(got, "cycle,trials,leaf_missing_mean") {
		t.Errorf("missing CSV header:\n%s", got)
	}
	if !strings.Contains(got, "# netsim n=48 procs=2") {
		t.Errorf("missing campaign header:\n%s", got)
	}
	if !strings.Contains(got, "conserved=true") {
		t.Errorf("traffic counters not conserved:\n%s", got)
	}
	// At least one data row beyond the header.
	rows := 0
	for _, line := range strings.Split(got, "\n") {
		if line != "" && !strings.HasPrefix(line, "#") && !strings.HasPrefix(line, "cycle,") {
			rows++
		}
	}
	if rows == 0 {
		t.Errorf("no data rows emitted:\n%s", got)
	}
}
