package main

import (
	"strings"
	"testing"
)

func TestParseArgsErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-n", "1"},
		{"-fail", "1.5"},
	} {
		if _, err := parseArgs(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-experiment", "nope"}, &sb); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestSelfHealSmall(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-experiment", "selfheal", "-n", "300", "-cycles", "30"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "dead_view_fraction") {
		t.Error("missing CSV header")
	}
	// The last line's dead fraction must be (near) zero.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	last := lines[len(lines)-1]
	if !strings.Contains(last, "e-") && !strings.Contains(last, "0.000000e+00") {
		t.Errorf("dead fraction did not decay: %q", last)
	}
}

func TestStartSpreadSmall(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-experiment", "startspread", "-n", "400", "-cycles", "30"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "covered=400/400") {
		t.Errorf("incomplete coverage:\n%s", out)
	}
	if !strings.Contains(out, "p100,") {
		t.Error("missing percentile rows")
	}
}

func TestSizeEstSmall(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-experiment", "sizeest", "-n", "200", "-cycles", "40"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "probe_estimate") {
		t.Error("missing CSV header")
	}
}
