// Command samplesim exercises the lower layers of the architecture: the
// NEWSCAST peer sampling service (Section 3) and the components built
// directly on it (gossip broadcast, aggregation).
//
//	samplesim -experiment selfheal     # view recovery after 70% failure
//	samplesim -experiment startspread  # broadcast start-signal skew
//	samplesim -experiment sizeest      # gossip network-size estimation
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"repro/internal/aggregate"
	"repro/internal/broadcast"
	"repro/internal/id"
	"repro/internal/newscast"
	"repro/internal/peer"
	"repro/internal/sampling"
	"repro/internal/simnet"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "samplesim:", err)
		os.Exit(1)
	}
}

type options struct {
	experiment string
	n          int
	cycles     int
	seed       int64
	delta      int64
	failFrac   float64
}

func parseArgs(args []string) (*options, error) {
	fs := flag.NewFlagSet("samplesim", flag.ContinueOnError)
	var (
		expName  = fs.String("experiment", "selfheal", "selfheal|startspread|sizeest")
		n        = fs.Int("n", 2000, "network size")
		cycles   = fs.Int("cycles", 60, "cycles to run")
		seed     = fs.Int64("seed", 42, "random seed")
		failFrac = fs.Float64("fail", 0.7, "fraction killed in the selfheal experiment")
	)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if *n < 2 {
		return nil, fmt.Errorf("-n must be at least 2, got %d", *n)
	}
	if *failFrac < 0 || *failFrac >= 1 {
		return nil, fmt.Errorf("-fail must be in [0, 1), got %v", *failFrac)
	}
	return &options{
		experiment: *expName,
		n:          *n,
		cycles:     *cycles,
		seed:       *seed,
		delta:      10,
		failFrac:   *failFrac,
	}, nil
}

func run(args []string, out io.Writer) error {
	o, err := parseArgs(args)
	if err != nil {
		return err
	}
	switch o.experiment {
	case "selfheal":
		return runSelfHeal(o, out)
	case "startspread":
		return runStartSpread(o, out)
	case "sizeest":
		return runSizeEst(o, out)
	default:
		return fmt.Errorf("unknown experiment %q", o.experiment)
	}
}

// buildNewscast wires n NEWSCAST nodes with star initialisation.
func buildNewscast(o *options) (*simnet.Network, []*newscast.Protocol, []peer.Descriptor) {
	net := simnet.New(simnet.Config{Seed: o.seed})
	ids := id.Unique(o.n, o.seed+1)
	descs := make([]peer.Descriptor, o.n)
	for i := range descs {
		descs[i] = peer.Descriptor{ID: ids[i], Addr: net.AddNode()}
	}
	protos := make([]*newscast.Protocol, o.n)
	for i, d := range descs {
		protos[i] = newscast.New(d, []peer.Descriptor{descs[0]}, newscast.DefaultViewSize)
		_ = net.Attach(d.Addr, newscast.ProtoID, protos[i], o.delta, int64(i)*o.delta/int64(o.n))
	}
	return net, protos, descs
}

// runSelfHeal reproduces the Section 3 self-healing property: kill a large
// fraction of the network and track the proportion of dead entries in
// surviving views per cycle.
func runSelfHeal(o *options, out io.Writer) error {
	net, protos, descs := buildNewscast(o)
	warm := int64(15)
	net.Run(o.delta * warm)

	nKill := int(float64(o.n) * o.failFrac)
	dead := make(map[id.ID]bool, nKill)
	for i := 0; i < nKill; i++ {
		dead[descs[i].ID] = true
		net.Kill(descs[i].Addr)
	}
	fmt.Fprintf(out, "# experiment=selfheal n=%d killed=%d (%.0f%%)\n", o.n, nKill, o.failFrac*100)
	fmt.Fprintln(out, "cycle,dead_view_fraction,full_views_fraction")
	for cycle := 0; cycle < o.cycles; cycle++ {
		net.Run(o.delta * (warm + int64(cycle) + 1))
		var deadRefs, total, full int
		for _, p := range protos[nKill:] {
			view := p.View()
			if len(view) == p.ViewSize() {
				full++
			}
			for _, d := range view {
				total++
				if dead[d.ID] {
					deadRefs++
				}
			}
		}
		fmt.Fprintf(out, "%d,%e,%e\n", cycle,
			float64(deadRefs)/float64(total),
			float64(full)/float64(o.n-nKill))
	}
	return nil
}

// runStartSpread measures the broadcast start-signal skew distribution —
// the basis of the paper's loosely-synchronised-start assumption.
func runStartSpread(o *options, out io.Writer) error {
	net := simnet.New(simnet.Config{Seed: o.seed})
	ids := id.Unique(o.n, o.seed+1)
	descs := make([]peer.Descriptor, o.n)
	for i := range descs {
		descs[i] = peer.Descriptor{ID: ids[i], Addr: net.AddNode()}
	}
	oracle := sampling.NewOracle(descs, o.seed+2)
	protos := make([]*broadcast.Protocol, o.n)
	for i, d := range descs {
		p, err := broadcast.New(d, broadcast.DefaultConfig(), oracle, nil)
		if err != nil {
			return err
		}
		protos[i] = p
		if err := net.Attach(d.Addr, broadcast.ProtoID, p, o.delta, int64(i)*o.delta/int64(o.n)); err != nil {
			return err
		}
	}
	net.At(o.delta, func() {
		net.Send(descs[0].Addr, descs[0].Addr, broadcast.ProtoID, broadcast.Rumor{Seq: 1, Payload: "start"})
	})
	net.Run(o.delta * int64(o.cycles))

	var times []int64
	for _, p := range protos {
		if at, ok := p.Delivered(1); ok {
			times = append(times, at)
		}
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	fmt.Fprintf(out, "# experiment=startspread n=%d covered=%d/%d\n", o.n, len(times), o.n)
	if len(times) == 0 {
		return fmt.Errorf("rumor reached nobody")
	}
	fmt.Fprintln(out, "percentile,delay_in_periods")
	base := times[0]
	for _, pct := range []float64{0.5, 0.9, 0.99, 1.0} {
		idx := int(math.Ceil(pct*float64(len(times)))) - 1
		if idx < 0 {
			idx = 0
		}
		fmt.Fprintf(out, "p%.0f,%.2f\n", pct*100, float64(times[idx]-base)/float64(o.delta))
	}
	return nil
}

// runSizeEst runs gossip averaging for size estimation over the sampling
// oracle and reports the estimate trajectory at a probe node.
func runSizeEst(o *options, out io.Writer) error {
	net := simnet.New(simnet.Config{Seed: o.seed})
	ids := id.Unique(o.n, o.seed+1)
	descs := make([]peer.Descriptor, o.n)
	for i := range descs {
		descs[i] = peer.Descriptor{ID: ids[i], Addr: net.AddNode()}
	}
	oracle := sampling.NewOracle(descs, o.seed+2)
	protos := make([]*aggregate.Protocol, o.n)
	for i, d := range descs {
		initial := 0.0
		if i == 0 {
			initial = 1.0
		}
		p, err := aggregate.New(d, oracle, initial)
		if err != nil {
			return err
		}
		protos[i] = p
		if err := net.Attach(d.Addr, aggregate.ProtoID, p, o.delta, int64(i)*o.delta/int64(o.n)); err != nil {
			return err
		}
	}
	fmt.Fprintf(out, "# experiment=sizeest n=%d\n", o.n)
	fmt.Fprintln(out, "cycle,probe_estimate,min_estimate,max_estimate")
	for cycle := 0; cycle < o.cycles; cycle++ {
		net.Run(o.delta * int64(cycle+1))
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, p := range protos {
			est := p.SizeEstimate()
			if est == 0 {
				continue
			}
			lo = math.Min(lo, est)
			hi = math.Max(hi, est)
		}
		fmt.Fprintf(out, "%d,%.1f,%.1f,%.1f\n", cycle, protos[o.n/2].SizeEstimate(), lo, hi)
	}
	return nil
}
