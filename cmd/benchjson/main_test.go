package main

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	r, ok := parseLine("BenchmarkCreateMessageViaTick \t    5000\t     17580 ns/op\t       5 B/op\t       0 allocs/op")
	if !ok {
		t.Fatal("line not parsed")
	}
	if r.Name != "BenchmarkCreateMessageViaTick" || r.Iterations != 5000 ||
		r.NsPerOp != 17580 || r.BytesPerOp != 5 || r.AllocsOp != 0 {
		t.Errorf("parsed %+v", r)
	}

	r, ok = parseLine("BenchmarkFig3Convergence/N=1024-8   3   123456 ns/op   9.33 cycles")
	if !ok {
		t.Fatal("line with custom metric not parsed")
	}
	if r.Metrics["cycles"] != 9.33 {
		t.Errorf("custom metric = %v, want 9.33", r.Metrics)
	}

	for _, junk := range []string{
		"goos: linux",
		"PASS",
		"ok  	repro	6.173s",
		"BenchmarkBroken notanumber ns/op",
	} {
		if _, ok := parseLine(junk); ok {
			t.Errorf("junk line parsed: %q", junk)
		}
	}
}

func TestRunEmitsJSONArray(t *testing.T) {
	in := strings.NewReader(`goos: linux
BenchmarkEventLoop 	    2000	     81688 ns/op	       0 B/op	       0 allocs/op
BenchmarkTruthMeasureAll/workers=4         	      20	  64797915 ns/op	 1857168 B/op	   65694 allocs/op
PASS
`)
	var out strings.Builder
	if err := run(in, &out); err != nil {
		t.Fatal(err)
	}
	var results []Result
	if err := json.Unmarshal([]byte(out.String()), &results); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}
	if results[1].Name != "BenchmarkTruthMeasureAll/workers=4" {
		t.Errorf("second result = %+v", results[1])
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	// Benchmark-free input (a failed run's error text, a drifted CI
	// filter) must be an error, not a silent null artifact.
	var out strings.Builder
	if err := run(strings.NewReader("some error text\nFAIL\n"), &out); err == nil {
		t.Error("input without benchmark lines accepted")
	}
}
