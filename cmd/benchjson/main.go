// Command benchjson converts `go test -bench` output on stdin into a JSON
// array on stdout, one object per benchmark result line. It exists so CI
// can publish machine-readable benchmark artifacts (BENCH_<pr>.json) and
// the perf trajectory of the hot paths can be tracked across PRs without
// scraping text logs.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson > BENCH.json
//
// Standard metrics (ns/op, B/op, allocs/op) become fields; any custom
// b.ReportMetric units land in the "metrics" map verbatim.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name       string `json:"name"`
	Iterations int64  `json:"iterations"`
	// NsPerOp, BytesPerOp and AllocsOp are emitted even when zero: a
	// 0 allocs/op reading is precisely the datum the perf trajectory
	// tracks (CI always runs the benches with -benchmem).
	NsPerOp    float64            `json:"ns_per_op"`
	BytesPerOp int64              `json:"bytes_per_op"`
	AllocsOp   int64              `json:"allocs_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	if err := run(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(in io.Reader, out io.Writer) error {
	var results []Result
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(results) == 0 {
		// Zero parsed lines means the bench run failed or the filter
		// regex drifted; a silent empty artifact would stop the perf
		// trajectory from being tracked without anyone noticing.
		return fmt.Errorf("no benchmark result lines found in input")
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}

// parseLine parses one `Benchmark...` result line of go test output:
//
//	BenchmarkFoo/sub-8   1234   5678 ns/op   90 B/op   1 allocs/op   2.5 cycles
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: iters}
	// The remainder is (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = val
		case "B/op":
			r.BytesPerOp = int64(val)
		case "allocs/op":
			r.AllocsOp = int64(val)
		default:
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[unit] = val
		}
	}
	return r, true
}
