// Command bootsim reproduces the paper's evaluation (Section 5) from the
// command line. Each experiment prints CSV series equivalent to the
// paper's figures:
//
//	bootsim -experiment fig3                 # Figure 3: no failures
//	bootsim -experiment fig4                 # Figure 4: 20% message drop
//	bootsim -experiment churn                # Section 5 churn robustness
//	bootsim -experiment scaling              # cycles-to-converge vs N
//	bootsim -experiment ablation             # prefix-feedback and cr ablations
//	bootsim -experiment chord                # Chord ring+finger baseline
//
// The default sizes are laptop-quick; pass -paper for the paper's
// 2^14, 2^16 and 2^18 (the largest takes a while and several GB of RAM).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/chord"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/memstats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bootsim:", err)
		os.Exit(1)
	}
}

type options struct {
	experiment     string
	sizes          []int
	cycles         int
	drop           float64
	seed           int64
	sampler        experiment.SamplerKind
	warmup         int
	runs           int
	trials         int
	workers        int
	measureWorkers int
	measureSample  int
	shards         int
	memstats       bool
	cfg            core.Config
}

// memstatsLine prints the memory accounting header for a completed run of
// n nodes when -memstats is set. heapBytes is the live heap the harness
// captured while the network still existed; peak RSS is a process-wide
// high-water mark, so across several sizes later lines dominate earlier
// ones.
func (o *options) memstatsLine(out io.Writer, n int, heapBytes uint64) {
	if o.memstats {
		fmt.Fprintf(out, "# memstats n=%d %s\n", n, memstats.Line(n, heapBytes))
	}
}

func parseArgs(args []string) (*options, error) {
	fs := flag.NewFlagSet("bootsim", flag.ContinueOnError)
	var (
		expName  = fs.String("experiment", "fig3", "fig3|fig4|churn|scaling|ablation|chord")
		nList    = fs.String("n", "1024,4096,16384", "comma-separated network sizes")
		paper    = fs.Bool("paper", false, "use the paper's sizes 2^14,2^16,2^18 (slow, memory-hungry)")
		cycles   = fs.Int("cycles", 0, "max cycles (0 = per-experiment default)")
		drop     = fs.Float64("drop", -1, "message drop probability (-1 = per-experiment default)")
		seed     = fs.Int64("seed", 42, "random seed")
		sampler  = fs.String("sampler", "oracle", "oracle|newscast")
		warmup   = fs.Int("warmup", 10, "newscast warmup cycles before bootstrap starts")
		runs     = fs.Int("runs", 1, "independent repetitions per size")
		trials   = fs.Int("trials", 1, "independent seeds aggregated per size (mean/min/max series)")
		workers  = fs.Int("workers", 0, "parallel trial workers (0 = GOMAXPROCS)")
		measureW = fs.Int("measure-workers", 0, "goroutines sharding the per-cycle ground-truth measurement (0 = GOMAXPROCS; output is identical for any value)")
		measureS = fs.Int("measure-sample", 0, "per-cycle measurement sample size with 95% confidence intervals (0 = exact full-network measurement)")
		shards   = fs.Int("shards", 0, "parallel simulation shards per run (0/1 = sequential engine; any value >1 yields one deterministic trace, distinct from the sequential one)")
		memst    = fs.Bool("memstats", false, "print a # memstats header per size (live heap bytes per node, peak RSS; under -trials the campaign peak across workers)")
		b        = fs.Int("b", core.DefaultB, "bits per digit")
		k        = fs.Int("k", core.DefaultK, "entries per prefix-table slot")
		c        = fs.Int("c", core.DefaultC, "leaf set size")
		cr       = fs.Int("cr", core.DefaultCR, "random samples per message")
	)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	o := &options{
		experiment:     *expName,
		cycles:         *cycles,
		drop:           *drop,
		seed:           *seed,
		warmup:         *warmup,
		runs:           *runs,
		trials:         *trials,
		workers:        *workers,
		measureWorkers: *measureW,
		measureSample:  *measureS,
		shards:         *shards,
		memstats:       *memst,
		cfg: core.Config{
			B: *b, K: *k, C: *c, CR: *cr, Delta: core.DefaultDelta,
		},
	}
	var err error
	if o.sampler, err = experiment.ParseSampler(*sampler); err != nil {
		return nil, err
	}
	if *paper {
		o.sizes = []int{1 << 14, 1 << 16, 1 << 18}
	} else {
		for _, s := range strings.Split(*nList, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				return nil, fmt.Errorf("bad -n element %q: %w", s, err)
			}
			o.sizes = append(o.sizes, v)
		}
	}
	if o.runs < 1 {
		return nil, fmt.Errorf("-runs must be at least 1, got %d", o.runs)
	}
	if o.trials < 1 {
		return nil, fmt.Errorf("-trials must be at least 1, got %d", o.trials)
	}
	if o.workers < 0 {
		return nil, fmt.Errorf("-workers must not be negative, got %d", o.workers)
	}
	if o.measureWorkers < 0 {
		return nil, fmt.Errorf("-measure-workers must not be negative, got %d", o.measureWorkers)
	}
	if o.measureSample < 0 {
		return nil, fmt.Errorf("-measure-sample must not be negative, got %d", o.measureSample)
	}
	if o.shards < 0 {
		return nil, fmt.Errorf("-shards must not be negative, got %d", o.shards)
	}
	if o.trials > 1 {
		if o.experiment != "fig3" && o.experiment != "fig4" {
			return nil, fmt.Errorf("-trials aggregation is only supported for fig3 and fig4, not %q", o.experiment)
		}
		if o.runs > 1 {
			return nil, fmt.Errorf("-runs and -trials are mutually exclusive (-runs prints raw per-seed series, -trials aggregates them)")
		}
	}
	return o, nil
}

func run(args []string, out io.Writer) error {
	o, err := parseArgs(args)
	if err != nil {
		return err
	}
	switch o.experiment {
	case "fig3":
		return runConvergence(o, out, 0, "fig3 (no failures)")
	case "fig4":
		drop := 0.2
		if o.drop >= 0 {
			drop = o.drop
		}
		return runConvergence(o, out, drop, "fig4 (message drop)")
	case "churn":
		return runChurn(o, out)
	case "massjoin":
		return runMassJoin(o, out)
	case "scaling":
		return runScaling(o, out)
	case "ablation":
		return runAblation(o, out)
	case "chord":
		return runChordBaseline(o, out)
	default:
		return fmt.Errorf("unknown experiment %q", o.experiment)
	}
}

func (o *options) maxCycles(def int) int {
	if o.cycles > 0 {
		return o.cycles
	}
	return def
}

// runConvergence reproduces Figures 3 and 4: per-cycle missing-entry
// proportions per network size.
func runConvergence(o *options, out io.Writer, drop float64, label string) error {
	fmt.Fprintf(out, "# experiment=%s sampler=%s drop=%.2f b=%d k=%d c=%d cr=%d\n",
		label, o.sampler, drop, o.cfg.B, o.cfg.K, o.cfg.C, o.cfg.CR)
	def := 40
	if drop > 0 {
		def = 60
	}
	if o.trials > 1 {
		return runConvergenceTrials(o, out, drop, def)
	}
	for _, n := range o.sizes {
		for rep := 0; rep < o.runs; rep++ {
			res, err := experiment.Run(experiment.Params{
				N:              n,
				Seed:           o.seed + int64(rep)*7919,
				Config:         o.cfg,
				Drop:           drop,
				MaxCycles:      o.maxCycles(def),
				Sampler:        o.sampler,
				WarmupCycles:   o.warmup,
				MeasureWorkers: o.measureWorkers,
				MeasureSample:  o.measureSample,
				Shards:         o.shards,
				MemStats:       o.memstats,
			})
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "# n=%d run=%d converged_at=%d sent=%d dropped=%d\n",
				n, rep, res.ConvergedAt, res.Stats.Sent, res.Stats.Dropped)
			o.memstatsLine(out, n, res.HeapBytes)
			if err := res.WriteCSV(out); err != nil {
				return err
			}
		}
	}
	return nil
}

// runConvergenceTrials is the multi-trial variant of runConvergence: per
// size it fans o.trials independent seeds across o.workers workers and
// prints the aggregated (mean/min/max) per-cycle convergence series. The
// output is a pure function of the seeds, independent of the worker count.
func runConvergenceTrials(o *options, out io.Writer, drop float64, defCycles int) error {
	for _, n := range o.sizes {
		res, err := experiment.RunTrials(experiment.Params{
			N:              n,
			Config:         o.cfg,
			Drop:           drop,
			MaxCycles:      o.maxCycles(defCycles),
			Sampler:        o.sampler,
			WarmupCycles:   o.warmup,
			MeasureWorkers: o.measureWorkers,
			MeasureSample:  o.measureSample,
			Shards:         o.shards,
			MemStats:       o.memstats,
		}, experiment.Seeds(o.seed, o.trials), o.workers)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "# n=%d trials=%d converged_trials=%d\n",
			n, o.trials, res.ConvergedTrials())
		if o.memstats {
			// Campaign accounting: peak across per-trial samples, with the
			// above-baseline heap attributed over the res.Workers trials
			// that were live at once.
			fmt.Fprintf(out, "# memstats n=%d trials=%d workers=%d %s\n",
				n, o.trials, res.Workers, res.Mem.Line(n, res.Workers))
		}
		if err := res.WriteCSV(out); err != nil {
			return err
		}
	}
	return nil
}

// runChurn reproduces the Section 5 churn claim: per-cycle quality while a
// fraction of the network is replaced every cycle, then after churn stops.
func runChurn(o *options, out io.Writer) error {
	fmt.Fprintf(out, "# experiment=churn sampler=%s rate=0.01 cycles 0-20, then churn-free\n", o.sampler)
	for _, n := range o.sizes {
		res, err := experiment.Run(experiment.Params{
			N:                       n,
			Seed:                    o.seed,
			Config:                  o.cfg,
			Drop:                    maxF(o.drop, 0),
			MaxCycles:               o.maxCycles(50),
			Sampler:                 o.sampler,
			WarmupCycles:            o.warmup,
			Churn:                   experiment.Churn{Rate: 0.01, StartCycle: 0, StopCycle: 20},
			MeasureWorkers:          o.measureWorkers,
			MeasureSample:           o.measureSample,
			Shards:                  o.shards,
			MemStats:                o.memstats,
			KeepRunningAfterPerfect: true,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "# n=%d final_leaf_missing=%e final_prefix_missing=%e\n",
			n, res.Final().LeafMissing, res.Final().PrefixMissing)
		o.memstatsLine(out, n, res.HeapBytes)
		if err := res.WriteCSV(out); err != nil {
			return err
		}
	}
	return nil
}

// runMassJoin doubles the network at cycle 10 — the paper's motivating
// "massive joins" scenario — and reports the recovery series.
func runMassJoin(o *options, out io.Writer) error {
	fmt.Fprintf(out, "# experiment=massjoin sampler=%s double at cycle 10\n", o.sampler)
	for _, n := range o.sizes {
		res, err := experiment.Run(experiment.Params{
			N:              n,
			Seed:           o.seed,
			Config:         o.cfg,
			Drop:           maxF(o.drop, 0),
			MaxCycles:      o.maxCycles(60),
			Sampler:        o.sampler,
			WarmupCycles:   o.warmup,
			MeasureWorkers: o.measureWorkers,
			MeasureSample:  o.measureSample,
			Shards:         o.shards,
			MemStats:       o.memstats,
			Join:           experiment.Join{Cycle: 10, Count: n},
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "# n=%d joined=%d reconverged_at=%d\n", n, n, res.ConvergedAt)
		o.memstatsLine(out, 2*n, res.HeapBytes)
		if err := res.WriteCSV(out); err != nil {
			return err
		}
	}
	return nil
}

// runScaling reproduces the logarithmic-convergence claim: cycles to
// perfection as a function of N.
func runScaling(o *options, out io.Writer) error {
	fmt.Fprintf(out, "# experiment=scaling sampler=%s\n", o.sampler)
	fmt.Fprintln(out, "n,run,converged_at_cycle,sent_messages")
	for _, n := range o.sizes {
		for rep := 0; rep < o.runs; rep++ {
			res, err := experiment.Run(experiment.Params{
				N:              n,
				Seed:           o.seed + int64(rep)*104729,
				Config:         o.cfg,
				Drop:           maxF(o.drop, 0),
				MaxCycles:      o.maxCycles(60),
				Sampler:        o.sampler,
				WarmupCycles:   o.warmup,
				MeasureWorkers: o.measureWorkers,
				MeasureSample:  o.measureSample,
				Shards:         o.shards,
			})
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "%d,%d,%d,%d\n", n, rep, res.ConvergedAt, res.Stats.Sent)
		}
	}
	return nil
}

// runAblation compares the full protocol against the no-prefix-feedback
// variant and several cr values.
func runAblation(o *options, out io.Writer) error {
	fmt.Fprintf(out, "# experiment=ablation sampler=%s\n", o.sampler)
	fmt.Fprintln(out, "n,variant,converged_at_cycle,final_leaf_missing,final_prefix_missing,sent_messages")
	type variant struct {
		name string
		mut  func(*core.Config)
	}
	variants := []variant{
		{"full", func(*core.Config) {}},
		{"no_prefix_feedback", func(c *core.Config) { c.DisablePrefixFeedback = true }},
		{"cr=0", func(c *core.Config) { c.CR = 0 }},
		{"cr=10", func(c *core.Config) { c.CR = 10 }},
		{"cr=100", func(c *core.Config) { c.CR = 100 }},
	}
	for _, n := range o.sizes {
		for _, v := range variants {
			cfg := o.cfg
			v.mut(&cfg)
			res, err := experiment.Run(experiment.Params{
				N:              n,
				Seed:           o.seed,
				Config:         cfg,
				Drop:           maxF(o.drop, 0),
				MaxCycles:      o.maxCycles(60),
				Sampler:        o.sampler,
				WarmupCycles:   o.warmup,
				MeasureWorkers: o.measureWorkers,
				MeasureSample:  o.measureSample,
				Shards:         o.shards,
			})
			if err != nil {
				return err
			}
			f := res.Final()
			fmt.Fprintf(out, "%d,%s,%d,%e,%e,%d\n",
				n, v.name, res.ConvergedAt, f.LeafMissing, f.PrefixMissing, res.Stats.Sent)
		}
	}
	return nil
}

// runChordBaseline runs the Chord ring+finger bootstrap for comparison.
func runChordBaseline(o *options, out io.Writer) error {
	fmt.Fprintln(out, "# experiment=chord baseline (ring + fingers)")
	fmt.Fprintln(out, "n,cycle,finger_wrong,leaf_missing,sent")
	ccfg := chord.Config{C: o.cfg.C, CR: o.cfg.CR, Delta: o.cfg.Delta}
	for _, n := range o.sizes {
		res, err := experiment.RunChord(experiment.ChordParams{
			N:         n,
			Seed:      o.seed,
			Config:    ccfg,
			Drop:      maxF(o.drop, 0),
			MaxCycles: o.maxCycles(60),
		})
		if err != nil {
			return err
		}
		for _, pt := range res.Points {
			fmt.Fprintf(out, "%d,%d,%e,%e,%d\n", n, pt.Cycle, pt.FingerWrong, pt.LeafMissing, pt.Sent)
		}
		fmt.Fprintf(out, "# n=%d converged_at=%d\n", n, res.ConvergedAt)
	}
	return nil
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
