package main

import (
	"strings"
	"testing"
)

func TestParseArgs(t *testing.T) {
	o, err := parseArgs([]string{"-experiment", "fig4", "-n", "64, 128", "-seed", "7", "-runs", "2"})
	if err != nil {
		t.Fatal(err)
	}
	if o.experiment != "fig4" || len(o.sizes) != 2 || o.sizes[0] != 64 || o.sizes[1] != 128 {
		t.Errorf("parsed %+v", o)
	}
	if o.seed != 7 || o.runs != 2 {
		t.Errorf("parsed %+v", o)
	}
}

func TestParseArgsErrors(t *testing.T) {
	cases := [][]string{
		{"-n", "abc"},
		{"-sampler", "bogus"},
		{"-runs", "0"},
		{"-trials", "0"},
		{"-workers", "-1"},
		{"-experiment", "scaling", "-trials", "4"},
		{"-experiment", "fig3", "-trials", "2", "-runs", "2"},
		{"-shards", "-1"},
	}
	for _, args := range cases {
		if _, err := parseArgs(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestTrialsOutputIndependentOfWorkers is the CLI half of the RunTrials
// determinism guarantee: the aggregated CSV for -trials T is byte-identical
// for any -workers value.
func TestTrialsOutputIndependentOfWorkers(t *testing.T) {
	render := func(workers string) string {
		var sb strings.Builder
		err := run([]string{"-experiment", "fig3", "-n", "128", "-trials", "3", "-workers", workers}, &sb)
		if err != nil {
			t.Fatalf("workers=%s: %v", workers, err)
		}
		return sb.String()
	}
	base := render("1")
	if !strings.Contains(base, "trials=3") || !strings.Contains(base, "leaf_missing_mean") {
		t.Fatalf("missing aggregate output:\n%s", base)
	}
	for _, w := range []string{"2", "4"} {
		if got := render(w); got != base {
			t.Errorf("workers=%s output differs from workers=1", w)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-experiment", "nope", "-n", "64"}, &sb); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunFig3Small(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-experiment", "fig3", "-n", "128"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "cycle,leaf_missing") {
		t.Error("missing CSV header")
	}
	if !strings.Contains(out, "converged_at=") {
		t.Error("missing convergence summary")
	}
}

func TestRunFig3MemStats(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-experiment", "fig3", "-n", "128", "-memstats"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "# memstats n=128 heap_alloc_bytes=") {
		t.Errorf("missing memstats header:\n%s", out)
	}
	if strings.Contains(out, "heap_alloc_bytes=0 ") {
		t.Error("memstats header reports a zero heap: capture ran after teardown")
	}
}

func TestRunTrialsMemStats(t *testing.T) {
	var sb strings.Builder
	err := run([]string{
		"-experiment", "fig3", "-n", "128", "-trials", "2", "-workers", "2", "-memstats",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "# memstats n=128 trials=2 workers=2 heap_baseline_bytes=") {
		t.Errorf("missing campaign memstats header:\n%s", out)
	}
	if !strings.Contains(out, "heap_peak_bytes=") {
		t.Errorf("campaign memstats header lacks a peak figure:\n%s", out)
	}
	if strings.Contains(out, "heap_peak_bytes=0 ") {
		t.Error("memstats header reports a zero peak heap: samples ran after teardown")
	}
}

// TestRunFig3Sharded is the CLI half of the shard-count invariance
// guarantee: every -shards value > 1 renders byte-identical output.
// (-shards 1 output is pinned separately by TestGoldenTraceShardInvariance
// against the sequential engine.)
func TestRunFig3Sharded(t *testing.T) {
	render := func(shards string) string {
		var sb strings.Builder
		if err := run([]string{"-experiment", "fig3", "-n", "128", "-shards", shards}, &sb); err != nil {
			t.Fatalf("shards=%s: %v", shards, err)
		}
		return sb.String()
	}
	base := render("2")
	if !strings.Contains(base, "converged_at=") {
		t.Fatalf("missing convergence summary:\n%s", base)
	}
	if got := render("3"); got != base {
		t.Errorf("shards=3 output differs from shards=2")
	}
}

func TestRunFig4Small(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-experiment", "fig4", "-n", "128"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "drop=0.20") {
		t.Error("fig4 should default to 20% drop")
	}
}

func TestRunScalingSmall(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-experiment", "scaling", "-n", "64,128", "-runs", "2"}, &sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	// header comment + csv header + 4 rows
	if len(lines) != 6 {
		t.Errorf("scaling output has %d lines, want 6:\n%s", len(lines), sb.String())
	}
}

func TestRunChurnSmall(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-experiment", "churn", "-n", "64", "-cycles", "30"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "final_leaf_missing=") {
		t.Error("missing churn summary")
	}
}

func TestRunAblationSmall(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-experiment", "ablation", "-n", "64", "-cycles", "30"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, v := range []string{"full", "no_prefix_feedback", "cr=0", "cr=10", "cr=100"} {
		if !strings.Contains(out, v) {
			t.Errorf("ablation output missing variant %s", v)
		}
	}
}

func TestRunChordSmall(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-experiment", "chord", "-n", "64", "-cycles", "30"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "finger_wrong") {
		t.Error("missing chord CSV header")
	}
}

func TestRunNewscastSampler(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-experiment", "fig3", "-n", "64", "-sampler", "newscast", "-warmup", "5"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "sampler=newscast") {
		t.Error("sampler not recorded in output")
	}
}

func TestRunMassJoinSmall(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-experiment", "massjoin", "-n", "64", "-cycles", "40"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "reconverged_at=") {
		t.Error("missing massjoin summary")
	}
}

func TestParsePaperSizes(t *testing.T) {
	o, err := parseArgs([]string{"-paper"})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1 << 14, 1 << 16, 1 << 18}
	if len(o.sizes) != 3 {
		t.Fatalf("sizes = %v", o.sizes)
	}
	for i, w := range want {
		if o.sizes[i] != w {
			t.Fatalf("sizes = %v, want %v", o.sizes, want)
		}
	}
}
