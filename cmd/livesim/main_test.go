package main

import (
	"strings"
	"testing"
)

func TestLiveSimSmallCampaign(t *testing.T) {
	var sb strings.Builder
	err := run([]string{
		"-n", "48", "-trials", "2", "-workers", "2",
		"-scenario", "churn", "-cycles", "10", "-period", "5ms",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "# livesim n=48 trials=2") {
		t.Errorf("missing header:\n%s", out)
	}
	if !strings.Contains(out, "# fault plan") {
		t.Errorf("missing fault plan:\n%s", out)
	}
	if !strings.Contains(out, "cycle,trials,leaf_missing_mean") {
		t.Errorf("missing CSV header:\n%s", out)
	}
	dataLines := 0
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if !strings.HasPrefix(line, "#") && !strings.HasPrefix(line, "cycle,") {
			dataLines++
		}
	}
	if dataLines != 10 {
		t.Errorf("got %d aggregate rows, want 10:\n%s", dataLines, out)
	}
}

func TestLiveSimMemStats(t *testing.T) {
	var sb strings.Builder
	err := run([]string{
		"-n", "32", "-trials", "2", "-workers", "2", "-scenario", "none",
		"-cycles", "4", "-period", "5ms", "-memstats",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "# memstats n=32 trials=2 workers=2 heap_baseline_bytes=") {
		t.Errorf("missing campaign memstats header:\n%s", out)
	}
	if !strings.Contains(out, "heap_peak_bytes=") {
		t.Errorf("campaign memstats header lacks a peak figure:\n%s", out)
	}
	if strings.Contains(out, "heap_peak_bytes=0 ") {
		t.Error("memstats header reports a zero peak heap: samples ran after teardown")
	}
}

func TestLiveSimFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-scenario", "bogus"},
		{"-trials", "0"},
		{"-workers", "-1"},
		{"-n", "1", "-trials", "1", "-cycles", "2"},
	}
	for _, args := range cases {
		var sb strings.Builder
		if err := run(args, &sb); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
