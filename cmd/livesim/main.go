// Command livesim runs multi-trial campaigns of the bootstrapping service
// on the concurrent goroutine runtime (one goroutine per host, wall-clock
// cycles, real nondeterministic scheduling) under injected churn and
// failure scenarios. It is the livenet counterpart of bootsim -trials:
// where bootsim aggregates deterministic simulations, livesim validates
// the same protocol under true parallel dispatch.
//
// Usage:
//
//	livesim [flags]
//
//	-n int          network size (hosts) (default 1024)
//	-trials int     independent trials, each with its own seed (default 4)
//	-workers int    concurrent trials; 0 = GOMAXPROCS (default 0)
//	-measure-workers int  goroutines sharding the paused-world
//	                measurement; 0 = GOMAXPROCS (default 0)
//	-measure-sample int  per-cycle measurement sample size with 95%
//	                confidence intervals; 0 = exact full measurement
//	                (default 0)
//	-sampler name   oracle|newscast sampling layer under the bootstrap
//	                nodes (default "oracle")
//	-warmup int     newscast warmup cycles before the bootstrap layer
//	                starts; ignored for the oracle sampler (default 10)
//	-scenario name  none|churn|partition|drop|latency (default "churn")
//	-drop float     initial per-message loss probability (default 0)
//	-latency dur    max delivery latency; min is latency/4 (default 0)
//	-period dur     gossip period Δ; 0 scales with -n (default 0)
//	-cycles int     campaign length in periods (default 30)
//	-seed int       base seed; trial i uses seed+i*7919 (default 42)
//	-inbox int      per-host inbox bound; 0 = engine default (default 0)
//	-memstats       print a # memstats campaign header: baseline and peak
//	                live heap across all trials, heap bytes per node at
//	                peak, and peak RSS (default false)
//
// Examples:
//
//	livesim -n 256 -trials 4 -scenario none          # quick sanity run
//	livesim -n 10000 -trials 8 -workers 4 -scenario churn
//	livesim -n 1024 -trials 8 -scenario partition -drop 0.05 -latency 4ms
//
// Output: a comment header per campaign (scenario, fault plan of trial 0,
// per-trial summaries), then the aggregate per-cycle CSV series — mean,
// min and max of the missing-entry proportions across trials plus the
// fraction of trials converged by each cycle, the same format bootsim
// -trials emits, so the two engines' campaigns plot side by side.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/livenet"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "livesim:", err)
		os.Exit(1)
	}
}

type options struct {
	n              int
	trials         int
	workers        int
	measureWorkers int
	measureSample  int
	sampler        experiment.SamplerKind
	warmup         int
	scenario       livenet.Scenario
	drop           float64
	latency        time.Duration
	period         time.Duration
	cycles         int
	seed           int64
	inbox          int
	memstats       bool
}

func parseArgs(args []string) (*options, error) {
	fs := flag.NewFlagSet("livesim", flag.ContinueOnError)
	var (
		n        = fs.Int("n", 1024, "network size (hosts)")
		trials   = fs.Int("trials", 4, "independent trials")
		workers  = fs.Int("workers", 0, "concurrent trials (0 = GOMAXPROCS)")
		measureW = fs.Int("measure-workers", 0, "goroutines sharding the paused-world measurement (0 = GOMAXPROCS)")
		measureS = fs.Int("measure-sample", 0, "per-cycle measurement sample size with 95% confidence intervals (0 = exact full measurement)")
		sampler  = fs.String("sampler", "oracle", "oracle|newscast sampling layer under the bootstrap nodes")
		warmup   = fs.Int("warmup", 10, "newscast warmup cycles before the bootstrap layer starts (ignored for oracle)")
		scenario = fs.String("scenario", "churn", "none|churn|partition|drop|latency")
		drop     = fs.Float64("drop", 0, "initial per-message loss probability")
		latency  = fs.Duration("latency", 0, "max delivery latency (min is latency/4)")
		period   = fs.Duration("period", 0, "gossip period (0 scales with -n)")
		cycles   = fs.Int("cycles", 30, "campaign length in periods")
		seed     = fs.Int64("seed", 42, "base seed")
		inbox    = fs.Int("inbox", 0, "per-host inbox bound (0 = engine default)")
		memst    = fs.Bool("memstats", false, "print a # memstats header per trial (live heap bytes per node, peak RSS)")
	)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	o := &options{
		n:              *n,
		trials:         *trials,
		workers:        *workers,
		measureWorkers: *measureW,
		measureSample:  *measureS,
		warmup:         *warmup,
		drop:           *drop,
		latency:        *latency,
		period:         *period,
		cycles:         *cycles,
		seed:           *seed,
		inbox:          *inbox,
		memstats:       *memst,
	}
	var err error
	if o.sampler, err = experiment.ParseSampler(*sampler); err != nil {
		return nil, err
	}
	if o.scenario, err = livenet.ParseScenario(*scenario); err != nil {
		return nil, err
	}
	if o.trials < 1 {
		return nil, fmt.Errorf("-trials must be at least 1, got %d", o.trials)
	}
	if o.workers < 0 {
		return nil, fmt.Errorf("-workers must not be negative, got %d", o.workers)
	}
	if o.measureWorkers < 0 {
		return nil, fmt.Errorf("-measure-workers must not be negative, got %d", o.measureWorkers)
	}
	if o.measureSample < 0 {
		return nil, fmt.Errorf("-measure-sample must not be negative, got %d", o.measureSample)
	}
	if o.warmup < 0 {
		return nil, fmt.Errorf("-warmup must not be negative, got %d", o.warmup)
	}
	return o, nil
}

func run(args []string, out io.Writer) error {
	o, err := parseArgs(args)
	if err != nil {
		return err
	}
	p := experiment.LiveParams{
		N:              o.n,
		Config:         core.DefaultConfig(),
		Period:         o.period,
		Cycles:         o.cycles,
		Drop:           o.drop,
		MinLatency:     o.latency / 4,
		MaxLatency:     o.latency,
		InboxSize:      o.inbox,
		Scenario:       o.scenario,
		MeasureWorkers: o.measureWorkers,
		MeasureSample:  o.measureSample,
		Sampler:        o.sampler,
		WarmupCycles:   o.warmup,
		MemStats:       o.memstats,
		// Scenarios disturb the network mid-run; keep measuring the
		// recovery tail instead of exiting on first perfection.
		KeepRunningAfterPerfect: o.scenario.Schedule != nil,
	}
	seeds := experiment.Seeds(o.seed, o.trials)
	start := time.Now()
	res, err := experiment.RunLiveTrials(p, seeds, o.workers)
	if err != nil {
		return err
	}
	elapsed := time.Since(start).Round(time.Millisecond)

	fmt.Fprintf(out, "# livesim n=%d trials=%d workers=%d scenario=%s sampler=%s measure_sample=%d drop=%.2f latency=%s period=%s cycles=%d elapsed=%s\n",
		o.n, o.trials, o.workers, o.scenario.Name, o.sampler, o.measureSample, o.drop, o.latency, res.Params.Period, o.cycles, elapsed)
	if sched := res.Trials[0].Schedule; len(sched) > 0 {
		fmt.Fprintf(out, "# fault plan (trial 0, seed %d):\n", seeds[0])
		for _, e := range sched {
			fmt.Fprintf(out, "#   %s\n", e)
		}
	}
	for i, t := range res.Trials {
		f := t.Final()
		fmt.Fprintf(out, "# trial=%d seed=%d converged_at=%d killed=%d respawned=%d final_leaf_missing=%e final_prefix_missing=%e sent=%d delivered=%d dropped=%d overflow=%d\n",
			i, t.Seed, t.ConvergedAt, t.Killed, t.Respawned,
			f.LeafMissing, f.PrefixMissing,
			t.Stats.Sent, t.Stats.Delivered, t.Stats.Dropped, t.Stats.Overflow)
	}
	if o.memstats {
		// Campaign-level accounting: one tracker samples the heap at the
		// end of every trial (hosts still running) and keeps the peak, so
		// the figure reflects the res.Workers trials live at once rather
		// than whichever stragglers a single end-of-campaign snapshot
		// would catch.
		fmt.Fprintf(out, "# memstats n=%d trials=%d workers=%d %s\n",
			o.n, o.trials, res.Workers, res.Mem.Line(o.n, res.Workers))
	}
	total := res.TotalStats()
	fmt.Fprintf(out, "# converged_trials=%d/%d total_sent=%d total_delivered=%d total_dropped=%d total_overflow=%d\n",
		res.ConvergedTrials(), o.trials, total.Sent, total.Delivered, total.Dropped, total.Overflow)
	return res.WriteCSV(out)
}
