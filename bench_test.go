// Benchmarks regenerating every figure and prose result of the paper's
// evaluation (Section 5), plus ablations and micro-benchmarks. Each
// figure-level benchmark runs the full experiment and reports the paper's
// headline quantity (cycles to perfect convergence) as a custom metric, so
//
//	go test -bench . -benchmem
//
// prints the series the paper's plots are built from. cmd/bootsim prints
// the full per-cycle CSV, including at the paper's 2^14-2^18 sizes.
package repro

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/chord"
	"repro/internal/coord"
	"repro/internal/core"
	"repro/internal/dht"
	"repro/internal/experiment"
	"repro/internal/id"
	"repro/internal/newscast"
	"repro/internal/overlay/kademlia"
	"repro/internal/overlay/pastry"
	"repro/internal/overlay/tapestry"
	"repro/internal/peer"
	"repro/internal/proto"
	"repro/internal/sampling"
	"repro/internal/simnet"
	"repro/internal/truth"
)

// benchSizes are laptop-quick defaults; the paper's sizes (2^14, 2^16,
// 2^18) are available through cmd/bootsim -paper.
var benchSizes = []int{1 << 10, 1 << 12, 1 << 14}

func runToConvergence(b *testing.B, p experiment.Params) *experiment.Result {
	b.Helper()
	res, err := experiment.Run(p)
	if err != nil {
		b.Fatal(err)
	}
	if res.ConvergedAt < 0 {
		b.Fatalf("no convergence within %d cycles (final %+v)", p.MaxCycles, res.Final())
	}
	return res
}

// BenchmarkFig3Convergence reproduces Figure 3 (both panels): failure-free
// bootstrap at increasing N. Metrics: cycles to perfection, plus the cycle
// at which each structure individually became perfect.
func BenchmarkFig3Convergence(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			var cycles, leafAt, prefixAt float64
			for i := 0; i < b.N; i++ {
				res := runToConvergence(b, experiment.Params{
					N:         n,
					Seed:      int64(1000 + i),
					Config:    core.DefaultConfig(),
					MaxCycles: 60,
				})
				cycles += float64(res.ConvergedAt + 1)
				leafAt += float64(firstPerfect(res, func(pt experiment.Point) bool { return pt.LeafMissing == 0 }) + 1)
				prefixAt += float64(firstPerfect(res, func(pt experiment.Point) bool { return pt.PrefixMissing == 0 }) + 1)
			}
			b.ReportMetric(cycles/float64(b.N), "cycles")
			b.ReportMetric(leafAt/float64(b.N), "leaf-cycles")
			b.ReportMetric(prefixAt/float64(b.N), "prefix-cycles")
		})
	}
}

// BenchmarkFig4Convergence reproduces Figure 4: bootstrap under 20%
// uniform message drop. The paper's observation: same shape as Figure 3,
// convergence slowed proportionally.
func BenchmarkFig4Convergence(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			var cycles float64
			for i := 0; i < b.N; i++ {
				res := runToConvergence(b, experiment.Params{
					N:         n,
					Seed:      int64(2000 + i),
					Config:    core.DefaultConfig(),
					Drop:      0.2,
					MaxCycles: 90,
				})
				cycles += float64(res.ConvergedAt + 1)
			}
			b.ReportMetric(cycles/float64(b.N), "cycles")
		})
	}
}

// BenchmarkChurn reproduces the Section 5 prose claim that the protocol is
// not sensitive to churn: 1% of the network is replaced per cycle for the
// first 20 cycles. Metrics: residual missing proportions after recovery.
func BenchmarkChurn(b *testing.B) {
	for _, n := range []int{1 << 10, 1 << 12} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			var leaf, prefix float64
			for i := 0; i < b.N; i++ {
				res, err := experiment.Run(experiment.Params{
					N:                       n,
					Seed:                    int64(3000 + i),
					Config:                  core.DefaultConfig(),
					MaxCycles:               50,
					Churn:                   experiment.Churn{Rate: 0.01, StartCycle: 0, StopCycle: 20},
					KeepRunningAfterPerfect: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				leaf += res.Final().LeafMissing
				prefix += res.Final().PrefixMissing
			}
			b.ReportMetric(leaf/float64(b.N), "final-leaf-missing")
			b.ReportMetric(prefix/float64(b.N), "final-prefix-missing")
		})
	}
}

// BenchmarkPairLoss reproduces the Section 5 analysis: with 20% uniform
// drop and request/answer pairs, the expected overall message loss is 28%.
func BenchmarkPairLoss(b *testing.B) {
	var loss float64
	for i := 0; i < b.N; i++ {
		res, err := experiment.Run(experiment.Params{
			N:         512,
			Seed:      int64(4000 + i),
			Config:    core.DefaultConfig(),
			Drop:      0.2,
			MaxCycles: 60,
		})
		if err != nil {
			b.Fatal(err)
		}
		st := res.Stats
		// An exchange should carry 2 messages (request + answer), but
		// answers to dropped requests are never sent, so Sent counts
		// (2-p) messages per request at drop rate p. Reconstruct the
		// intended traffic and compare what was actually delivered;
		// the paper's analysis predicts 28% of it lost at p=0.2.
		const p = 0.2
		requests := float64(st.Sent) / (2 - p)
		loss += 1 - float64(st.Delivered)/(2*requests)
	}
	b.ReportMetric(loss/float64(b.N), "message-loss")
}

// BenchmarkScaling reproduces the logarithmic-convergence claim (E7):
// doubling N four-fold adds roughly a constant number of cycles.
func BenchmarkScaling(b *testing.B) {
	for _, n := range []int{1 << 8, 1 << 10, 1 << 12, 1 << 14} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			var cycles float64
			for i := 0; i < b.N; i++ {
				res := runToConvergence(b, experiment.Params{
					N:         n,
					Seed:      int64(5000 + i),
					Config:    core.DefaultConfig(),
					MaxCycles: 60,
				})
				cycles += float64(res.ConvergedAt + 1)
			}
			b.ReportMetric(cycles/float64(b.N), "cycles")
		})
	}
}

// BenchmarkAblationFeedback quantifies the paper's "the two components
// mutually boost each other" design claim (A1): the same run with the
// prefix-table feedback removed from message construction.
func BenchmarkAblationFeedback(b *testing.B) {
	const n = 1 << 12
	for _, variant := range []struct {
		name    string
		disable bool
	}{{"full", false}, {"no-feedback", true}} {
		b.Run(variant.name, func(b *testing.B) {
			var cycles, finalPrefix float64
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig()
				cfg.DisablePrefixFeedback = variant.disable
				res, err := experiment.Run(experiment.Params{
					N:         n,
					Seed:      int64(6000 + i),
					Config:    cfg,
					MaxCycles: 60,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.ConvergedAt >= 0 {
					cycles += float64(res.ConvergedAt + 1)
				} else {
					cycles += float64(res.Params.MaxCycles) // censored
				}
				finalPrefix += res.Final().PrefixMissing
			}
			b.ReportMetric(cycles/float64(b.N), "cycles")
			b.ReportMetric(finalPrefix/float64(b.N), "final-prefix-missing")
		})
	}
}

// BenchmarkAblationSamples sweeps cr, the number of fresh random samples
// per message (A2).
func BenchmarkAblationSamples(b *testing.B) {
	const n = 1 << 12
	for _, cr := range []int{0, 10, 30, 100} {
		b.Run(fmt.Sprintf("cr=%d", cr), func(b *testing.B) {
			var cycles float64
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig()
				cfg.CR = cr
				res, err := experiment.Run(experiment.Params{
					N:         n,
					Seed:      int64(7000 + i),
					Config:    cfg,
					MaxCycles: 80,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.ConvergedAt >= 0 {
					cycles += float64(res.ConvergedAt + 1)
				} else {
					cycles += float64(res.Params.MaxCycles)
				}
			}
			b.ReportMetric(cycles/float64(b.N), "cycles")
		})
	}
}

// BenchmarkBaselineChord runs the Chord ring+finger bootstrap (A3) with
// the same gossip budget, for comparison against BenchmarkFig3Convergence.
func BenchmarkBaselineChord(b *testing.B) {
	for _, n := range []int{1 << 10, 1 << 12} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			var cycles float64
			for i := 0; i < b.N; i++ {
				res, err := experiment.RunChord(experiment.ChordParams{
					N:         n,
					Seed:      int64(8000 + i),
					Config:    chord.DefaultConfig(),
					MaxCycles: 60,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.ConvergedAt < 0 {
					b.Fatal("chord baseline did not converge")
				}
				cycles += float64(res.ConvergedAt + 1)
			}
			b.ReportMetric(cycles/float64(b.N), "cycles")
		})
	}
}

// BenchmarkSamplerChoice compares the oracle sampling layer against a live
// NEWSCAST layer under the bootstrap protocol (A4), validating the paper's
// assumption that a real sampling implementation is good enough.
func BenchmarkSamplerChoice(b *testing.B) {
	const n = 1 << 10
	for _, s := range []experiment.SamplerKind{experiment.SamplerOracle, experiment.SamplerNewscast} {
		b.Run(s.String(), func(b *testing.B) {
			var cycles float64
			for i := 0; i < b.N; i++ {
				res := runToConvergence(b, experiment.Params{
					N:            n,
					Seed:         int64(9000 + i),
					Config:       core.DefaultConfig(),
					MaxCycles:    60,
					Sampler:      s,
					WarmupCycles: 10,
				})
				cycles += float64(res.ConvergedAt + 1)
			}
			b.ReportMetric(cycles/float64(b.N), "cycles")
		})
	}
}

// BenchmarkNetworkFootprint measures the retained heap per node of a full
// deployment at the paper's smallest headline size (2^14): network, event
// queue, sampling oracle, and every node's protocol state (leaf set, prefix
// table, certificates, per-node RNG) after the protocol has run long enough
// to fill its structures. Routing-state bytes/node — not CPU — is what
// bounds the reachable network size in RAM, so CI tracks this metric across
// PRs and asserts it never regresses.
func BenchmarkNetworkFootprint(b *testing.B) {
	const n = 1 << 14
	const cycles = 15
	var before, after runtime.MemStats
	var perNode float64
	for i := 0; i < b.N; i++ {
		runtime.GC()
		runtime.ReadMemStats(&before)

		descs, _ := benchWorld(n, 77)
		oracle := sampling.NewOracle(descs, 5)
		cfg := core.DefaultConfig()
		// Arena-backed structures, matching what the experiment harness
		// builds per trial.
		cfg.Arena = peer.NewDescriptorArena()
		net := simnet.New(simnet.Config{Seed: 78})
		nodes := make([]*core.Node, n)
		rng := rand.New(rand.NewSource(79))
		for j := range descs {
			addr := net.AddNode()
			nd, err := core.NewNode(descs[j], cfg, oracle)
			if err != nil {
				b.Fatal(err)
			}
			if err := net.Attach(addr, core.ProtoID, nd, cfg.Delta, rng.Int63n(cfg.Delta)); err != nil {
				b.Fatal(err)
			}
			nodes[j] = nd
		}
		net.Run(cycles * cfg.Delta)

		runtime.GC()
		runtime.ReadMemStats(&after)
		perNode += float64(after.HeapAlloc-before.HeapAlloc) / float64(n)
		runtime.KeepAlive(nodes)
		runtime.KeepAlive(net)
		runtime.KeepAlive(oracle)
	}
	b.ReportMetric(perNode/float64(b.N), "bytes/node")
}

// --- Micro-benchmarks on the protocol's hot paths. ---

func benchWorld(n int, seed int64) ([]peer.Descriptor, []id.ID) {
	ids := id.Unique(n, seed)
	descs := make([]peer.Descriptor, n)
	for i, v := range ids {
		descs[i] = peer.Descriptor{ID: v, Addr: peer.Addr(i)}
	}
	return descs, ids
}

func BenchmarkLeafSetUpdate(b *testing.B) {
	descs, _ := benchWorld(4096, 1)
	cfg := core.DefaultConfig()
	rng := rand.New(rand.NewSource(2))
	batch := make([]peer.Descriptor, 60)
	ls := core.NewLeafSet(descs[0].ID, cfg.C)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range batch {
			batch[j] = descs[rng.Intn(len(descs))]
		}
		ls.Update(batch)
	}
}

func BenchmarkPrefixTableAdd(b *testing.B) {
	descs, _ := benchWorld(4096, 3)
	cfg := core.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pt := core.NewPrefixTable(descs[0].ID, cfg.B, cfg.K)
		pt.AddAll(descs[1:])
	}
}

func BenchmarkCreateMessageViaTick(b *testing.B) {
	// Measures a full protocol Tick — selectPeer + createMessage — on a
	// node with converged state, driven through a one-node simnet.
	descs, _ := benchWorld(4096, 4)
	cfg := core.DefaultConfig()
	oracle := sampling.NewOracle(descs, 5)
	net := simnet.New(simnet.Config{Seed: 6})
	addr := net.AddNode()
	self := peer.Descriptor{ID: descs[0].ID, Addr: addr}
	nd, err := core.NewNode(self, cfg, oracle)
	if err != nil {
		b.Fatal(err)
	}
	if err := net.Attach(addr, core.ProtoID, nd, cfg.Delta, 0); err != nil {
		b.Fatal(err)
	}
	nd.Leaf().Update(descs[1:100])
	nd.Table().AddAll(descs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Run(net.Now() + cfg.Delta)
	}
}

// BenchmarkEventLoop measures the raw simnet event loop — tick dispatch,
// message enqueue, pop, deliver — with a trivial protocol, isolating the
// event-queue cost from protocol work. The allocs/op figure is the pooled
// queue's reason to exist: steady state should allocate nothing per event
// beyond the message value itself.
func BenchmarkEventLoop(b *testing.B) {
	const nodes = 256
	net := simnet.New(simnet.Config{Seed: 23, MinLatency: 1, MaxLatency: 5})
	addrs := make([]peer.Addr, nodes)
	for i := range addrs {
		addrs[i] = net.AddNode()
	}
	for i, a := range addrs {
		p := &pingProto{target: addrs[(i+1)%nodes]}
		if err := net.Attach(a, 1, p, 10, int64(i%10)); err != nil {
			b.Fatal(err)
		}
	}
	net.Run(3000) // warm: queue (one bucket-ring lap) and pool reach steady-state size
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Run(net.Now() + 10)
	}
}

// pingProto sends one empty message per tick to a fixed neighbour.
type pingProto struct{ target peer.Addr }

type emptyMsg struct{}

func (p *pingProto) Init(ctx proto.Context)                                      {}
func (p *pingProto) Tick(ctx proto.Context)                                      { ctx.Send(p.target, emptyMsg{}) }
func (p *pingProto) Handle(ctx proto.Context, from peer.Addr, msg proto.Message) {}

// BenchmarkSimnetSharded compares the sequential engine (shards=1) against
// the conservative-window parallel engine at GOMAXPROCS shards on the same
// fixed-length bootstrap workload (KeepRunningAfterPerfect pins the cycle
// count, so both variants execute the same number of protocol cycles).
// The gap between the two sub-benchmarks is the engine-level speedup the
// sharded event loop buys on one trial; MeasureWorkers parallelises the
// measurement plane identically in both, isolating the dispatch loop.
func BenchmarkSimnetSharded(b *testing.B) {
	par := runtime.GOMAXPROCS(0)
	if par < 2 {
		// On a single-core runner the parallel leg still runs the sharded
		// engine (measuring its overhead) instead of duplicating shards=1.
		par = 2
	}
	for _, shards := range []int{1, par} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := experiment.Run(experiment.Params{
					N:                       4096,
					Seed:                    int64(9000 + i),
					Config:                  core.DefaultConfig(),
					MaxCycles:               12,
					KeepRunningAfterPerfect: true,
					Shards:                  shards,
				})
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Points) != 12 {
					b.Fatalf("ran %d cycles, want 12", len(res.Points))
				}
			}
		})
	}
}

// BenchmarkRunTrials measures the multi-trial experiment runner at
// increasing worker counts over a fixed seed set, recording the parallel
// speedup of independent-seed campaigns.
func BenchmarkRunTrials(b *testing.B) {
	seeds := experiment.Seeds(42, 8)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := experiment.RunTrials(experiment.Params{
					N:         512,
					Config:    core.DefaultConfig(),
					MaxCycles: 40,
				}, seeds, workers)
				if err != nil {
					b.Fatal(err)
				}
				if res.ConvergedTrials() != len(seeds) {
					b.Fatal("trial failed to converge")
				}
			}
		})
	}
}

func BenchmarkTruthBuild(b *testing.B) {
	_, ids := benchWorld(1<<14, 7)
	cfg := core.DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := truth.New(ids, cfg.B, cfg.K, cfg.C); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTruthUpdateChurn measures one churn cycle applied to the
// incremental oracle — 1% of a 2^14 membership replaced per iteration —
// the operation that used to be a full truth.New rebuild per measured
// cycle. Compare ns/op and allocs/op against BenchmarkTruthBuild: the
// whole point of the incremental oracle is that this is a rounding error
// next to a rebuild.
func BenchmarkTruthUpdateChurn(b *testing.B) {
	const n = 1 << 14
	const churn = n / 100
	gen := id.NewGenerator(26)
	ids := make([]id.ID, n)
	for i := range ids {
		ids[i] = gen.Next()
	}
	cfg := core.DefaultConfig()
	tr, err := truth.New(ids, cfg.B, cfg.K, cfg.C)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(27))
	removed := make([]id.ID, churn)
	added := make([]id.ID, churn)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < churn; j++ {
			k := rng.Intn(len(ids))
			removed[j] = ids[k]
			ids[k] = ids[len(ids)-1]
			ids = ids[:len(ids)-1]
		}
		for j := range added {
			added[j] = gen.Next()
		}
		if err := tr.Update(added, removed); err != nil {
			b.Fatal(err)
		}
		ids = append(ids, added...)
	}
}

// BenchmarkTruthMeasureAll measures a full-network convergence measurement
// at N=2^14 over realistic mid-convergence node state, sharded across a
// worker pool. The workers=1 case is the serial baseline; the speedup at
// workers=4 is the acceptance figure for the sharded measurement plane
// (the result itself is bit-identical across worker counts).
func BenchmarkTruthMeasureAll(b *testing.B) {
	const n = 1 << 14
	descs, ids := benchWorld(n, 25)
	cfg := core.DefaultConfig()
	tr, err := truth.New(ids, cfg.B, cfg.K, cfg.C)
	if err != nil {
		b.Fatal(err)
	}
	members := make([]truth.Member, n)
	for i := range members {
		ls := core.NewLeafSet(ids[i], cfg.C)
		lo := i % (n - 40)
		ls.Update(descs[lo : lo+40])
		pt := core.NewPrefixTable(ids[i], cfg.B, cfg.K)
		start := (i * 131) % (n - 256)
		pt.AddAll(descs[start : start+256])
		members[i] = truth.Member{Self: ids[i], Leaf: ls, Table: pt}
	}
	ref := tr.MeasureAll(members, 1)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if agg := tr.MeasureAll(members, workers); agg != ref {
					b.Fatalf("aggregate diverged across worker counts: %+v != %+v", agg, ref)
				}
			}
		})
	}
}

// BenchmarkMeasureSample is the acceptance benchmark for the sampled
// measurement plane: at n=2^16 a MeasureSample(1024) measurement must be
// >= 20x faster than the sharded full-network MeasureAll it replaces (it
// measures 64x fewer nodes; sample selection is O(sample)). The sampled
// estimate's intervals are exercised for correctness by the statistical
// suite; this benchmark tracks the speed claim in CI (BENCH_pr4.json).
func BenchmarkMeasureSample(b *testing.B) {
	const n = 1 << 16
	const sample = 1024
	descs, ids := benchWorld(n, 25)
	cfg := core.DefaultConfig()
	tr, err := truth.New(ids, cfg.B, cfg.K, cfg.C)
	if err != nil {
		b.Fatal(err)
	}
	members := make([]truth.Member, n)
	for i := range members {
		ls := core.NewLeafSet(ids[i], cfg.C)
		lo := i % (n - 40)
		ls.Update(descs[lo : lo+40])
		pt := core.NewPrefixTable(ids[i], cfg.B, cfg.K)
		start := (i * 131) % (n - 96)
		pt.AddAll(descs[start : start+96])
		members[i] = truth.Member{Self: ids[i], Leaf: ls, Table: pt}
	}
	b.Run("full", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr.MeasureAll(members, 0)
		}
	})
	b.Run(fmt.Sprintf("sample%d", sample), func(b *testing.B) {
		rng := rand.New(rand.NewSource(99))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sa := tr.MeasureSample(members, sample, rng, 0)
			if sa.Exact || sa.SampleSize != sample {
				b.Fatalf("unexpected fallback: %+v", sa)
			}
		}
	})
}

func BenchmarkTruthMeasureNode(b *testing.B) {
	descs, ids := benchWorld(1<<14, 8)
	cfg := core.DefaultConfig()
	tr, err := truth.New(ids, cfg.B, cfg.K, cfg.C)
	if err != nil {
		b.Fatal(err)
	}
	pt := core.NewPrefixTable(descs[0].ID, cfg.B, cfg.K)
	pt.AddAll(descs[:2000])
	ls := core.NewLeafSet(descs[0].ID, cfg.C)
	ls.Update(descs[:200])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.LeafSetMissingFor(descs[0].ID, ls)
		tr.PrefixMissingFor(descs[0].ID, pt)
	}
}

func BenchmarkPastryRoute(b *testing.B) {
	descs, _ := benchWorld(2048, 9)
	cfg := core.DefaultConfig()
	routers := make([]*pastry.Router, len(descs))
	for i, d := range descs {
		ls := core.NewLeafSet(d.ID, cfg.C)
		ls.Update(descs)
		pt := core.NewPrefixTable(d.ID, cfg.B, cfg.K)
		pt.AddAll(descs)
		routers[i] = pastry.New(d, ls, pt, cfg.B)
	}
	mesh := pastry.NewMesh(routers, 0)
	rng := rand.New(rand.NewSource(10))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mesh.Route(descs[rng.Intn(len(descs))].Addr, id.ID(rng.Uint64())); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKademliaLookup(b *testing.B) {
	descs, _ := benchWorld(2048, 11)
	cfg := core.DefaultConfig()
	oracle := sampling.NewOracle(descs, 12)
	nodes := make([]*kademlia.Node, len(descs))
	for i, d := range descs {
		nd, err := core.NewNode(d, cfg, oracle)
		if err != nil {
			b.Fatal(err)
		}
		nd.Leaf().Update(descs)
		nd.Table().AddAll(descs)
		nodes[i] = kademlia.FromBootstrap(nd)
	}
	mesh := kademlia.NewMesh(nodes, 0)
	rng := rand.New(rand.NewSource(13))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mesh.Lookup(descs[rng.Intn(len(descs))].Addr, id.ID(rng.Uint64())); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNewscastCycle(b *testing.B) {
	const n = 1024
	net := simnet.New(simnet.Config{Seed: 14})
	descs, _ := benchWorld(n, 15)
	protos := make([]*newscast.Protocol, n)
	for i := range descs {
		descs[i].Addr = net.AddNode()
		protos[i] = newscast.New(descs[i], descs[:5], newscast.DefaultViewSize)
		if err := net.Attach(descs[i].Addr, newscast.ProtoID, protos[i], 10, int64(i%10)); err != nil {
			b.Fatal(err)
		}
	}
	net.Run(100) // warm
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Run(net.Now() + 10)
	}
}

func firstPerfect(res *experiment.Result, pred func(experiment.Point) bool) int {
	for _, pt := range res.Points {
		if pred(pt) {
			return pt.Cycle
		}
	}
	return res.Params.MaxCycles
}

// BenchmarkMassJoin doubles the network at cycle 10 (the paper's
// motivating massive-join scenario) and reports the cycles from join to
// renewed perfection.
func BenchmarkMassJoin(b *testing.B) {
	for _, n := range []int{1 << 10, 1 << 12} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			var recovery float64
			for i := 0; i < b.N; i++ {
				res, err := experiment.Run(experiment.Params{
					N:         n,
					Seed:      int64(11000 + i),
					Config:    core.DefaultConfig(),
					MaxCycles: 60,
					Join:      experiment.Join{Cycle: 10, Count: n},
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.ConvergedAt < 0 {
					b.Fatal("no reconvergence after mass join")
				}
				recovery += float64(res.ConvergedAt - 10 + 1)
			}
			b.ReportMetric(recovery/float64(b.N), "recovery-cycles")
		})
	}
}

// BenchmarkChurnEviction compares the post-churn residual of the
// paper-faithful protocol against the eviction extension (failure
// detector + tombstones + death certificates).
func BenchmarkChurnEviction(b *testing.B) {
	for _, variant := range []struct {
		name  string
		evict int
	}{{"paper", 0}, {"evict=2", 2}} {
		b.Run(variant.name, func(b *testing.B) {
			var leaf, prefix float64
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig()
				cfg.EvictAfterMisses = variant.evict
				res, err := experiment.Run(experiment.Params{
					N:                       1 << 10,
					Seed:                    int64(12000 + i),
					Config:                  cfg,
					MaxCycles:               50,
					Churn:                   experiment.Churn{Rate: 0.01, StartCycle: 0, StopCycle: 20},
					KeepRunningAfterPerfect: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				leaf += res.Final().LeafMissing
				prefix += res.Final().PrefixMissing
			}
			b.ReportMetric(leaf/float64(b.N), "final-leaf-missing")
			b.ReportMetric(prefix/float64(b.N), "final-prefix-missing")
		})
	}
}

// BenchmarkProximityRouting quantifies the paper's k>1 rationale: mean
// route cost with and without proximity-aware slot selection.
func BenchmarkProximityRouting(b *testing.B) {
	const n = 1 << 10
	descs, _ := benchWorld(n, 16)
	space := coord.NewRandomSpace(n, 17, 100)
	cfg := core.DefaultConfig()
	build := func(prox pastry.Proximity) *pastry.Mesh {
		routers := make([]*pastry.Router, n)
		for i, d := range descs {
			ls := core.NewLeafSet(d.ID, cfg.C)
			ls.Update(descs)
			pt := core.NewPrefixTable(d.ID, cfg.B, cfg.K)
			pt.AddAll(descs)
			r := pastry.New(d, ls, pt, cfg.B)
			if prox != nil {
				r.WithProximity(prox)
			}
			routers[i] = r
		}
		return pastry.NewMesh(routers, 0)
	}
	for _, variant := range []struct {
		name string
		prox pastry.Proximity
	}{{"plain", nil}, {"proximity", space.Latency}} {
		b.Run(variant.name, func(b *testing.B) {
			mesh := build(variant.prox)
			rng := rand.New(rand.NewSource(18))
			var cost int64
			routes := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				path, err := mesh.Route(descs[rng.Intn(n)].Addr, id.ID(rng.Uint64()))
				if err != nil {
					b.Fatal(err)
				}
				cost += pastry.PathCost(path, space.Latency)
				routes++
			}
			b.ReportMetric(float64(cost)/float64(routes), "cost/route")
		})
	}
}

// BenchmarkTapestryRoute measures surrogate routing over perfect tables.
func BenchmarkTapestryRoute(b *testing.B) {
	const n = 2048
	descs, _ := benchWorld(n, 19)
	cfg := core.DefaultConfig()
	routers := make([]*tapestry.Router, n)
	for i, d := range descs {
		pt := core.NewPrefixTable(d.ID, cfg.B, cfg.K)
		pt.AddAll(descs)
		routers[i] = tapestry.New(d, pt, cfg.B)
	}
	mesh := tapestry.NewMesh(routers, 0)
	rng := rand.New(rand.NewSource(20))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mesh.Route(descs[rng.Intn(n)].Addr, id.ID(rng.Uint64())); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDHTPutGet measures the application layer over perfect tables.
func BenchmarkDHTPutGet(b *testing.B) {
	const n = 1024
	descs, _ := benchWorld(n, 21)
	cfg := core.DefaultConfig()
	nodes := make([]*dht.Node, n)
	for i, d := range descs {
		ls := core.NewLeafSet(d.ID, cfg.C)
		ls.Update(descs)
		pt := core.NewPrefixTable(d.ID, cfg.B, cfg.K)
		pt.AddAll(descs)
		nodes[i] = dht.NewNode(pastry.New(d, ls, pt, cfg.B))
	}
	cluster := dht.NewCluster(nodes, 3)
	rng := rand.New(rand.NewSource(22))
	val := []byte("benchmark-value")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := id.ID(rng.Uint64())
		if _, err := cluster.Put(descs[rng.Intn(n)].Addr, key, val); err != nil {
			b.Fatal(err)
		}
		if _, err := cluster.Get(descs[rng.Intn(n)].Addr, key); err != nil {
			b.Fatal(err)
		}
	}
}
