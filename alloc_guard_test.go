// Allocation regression guards for the two tightest hot paths. The
// benchmarks report the same numbers, but benchmarks don't fail CI;
// these tests pin the budgets so a future PR cannot silently regress
// steady-state allocation behaviour.
package repro

import (
	"testing"

	"repro/internal/core"
	"repro/internal/peer"
	"repro/internal/sampling"
	"repro/internal/simnet"
)

// TestEventLoopZeroAllocs pins raw event-loop dispatch — tick, enqueue,
// pop, deliver with a trivial protocol — at exactly zero allocations per
// cycle in steady state, the pooled event queue's contract.
func TestEventLoopZeroAllocs(t *testing.T) {
	const nodes = 64
	net := simnet.New(simnet.Config{Seed: 23, MinLatency: 1, MaxLatency: 5})
	addrs := make([]peer.Addr, nodes)
	for i := range addrs {
		addrs[i] = net.AddNode()
	}
	for i, a := range addrs {
		p := &pingProto{target: addrs[(i+1)%nodes]}
		if err := net.Attach(a, 1, p, 10, int64(i%10)); err != nil {
			t.Fatal(err)
		}
	}
	// Warm: queue and message pool reach steady-state size. One full lap
	// of the calendar queue's 256-slot bucket ring (256 virtual time
	// units), so every ring slot has grown to its high-water capacity
	// before measurement.
	net.Run(3000)
	avg := testing.AllocsPerRun(50, func() {
		net.Run(net.Now() + 10)
	})
	if avg != 0 {
		t.Errorf("event loop allocates %.2f objects per cycle, want 0", avg)
	}
}

// maxTickAllocs bounds a full protocol Tick — selectPeer plus pooled
// createMessage plus engine dispatch. The steady state is zero; the slack
// of one absorbs a GC emptying the message pool mid-measurement. The
// pre-pooling baseline was 11.
const maxTickAllocs = 1.0

// TestCreateMessageViaTickAllocs pins message construction at its pooled
// allocation budget (see BenchmarkCreateMessageViaTick for the ns/op view).
func TestCreateMessageViaTickAllocs(t *testing.T) {
	descs, _ := benchWorld(4096, 4)
	cfg := core.DefaultConfig()
	oracle := sampling.NewOracle(descs, 5)
	net := simnet.New(simnet.Config{Seed: 6})
	addr := net.AddNode()
	self := peer.Descriptor{ID: descs[0].ID, Addr: addr}
	nd, err := core.NewNode(self, cfg, oracle)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Attach(addr, core.ProtoID, nd, cfg.Delta, 0); err != nil {
		t.Fatal(err)
	}
	nd.Leaf().Update(descs[1:100])
	nd.Table().AddAll(descs)
	// Warm scratch buffers, the message pool, and one full lap of the
	// calendar queue's 256-slot bucket ring (each tick instant lands in a
	// fresh ring slot until the cursor wraps).
	net.Run(cfg.Delta * 300)
	avg := testing.AllocsPerRun(100, func() {
		net.Run(net.Now() + cfg.Delta)
	})
	if avg > maxTickAllocs {
		t.Errorf("tick allocates %.2f objects, want at most %v", avg, maxTickAllocs)
	}
}
