// Package repro is a Go reproduction of "The Bootstrapping Service"
// (Jelasity, Montresor, Babaoglu — Proc. 26th ICDCS Workshops, 2006,
// doi:10.1109/ICDCSW.2006.105): a gossip protocol that jump-starts
// prefix-table routing substrates (Pastry, Kademlia, Tapestry, Bamboo)
// from scratch on top of a peer sampling service.
//
// The implementation lives under internal/ (see DESIGN.md for the module
// inventory), the runnable demos under examples/, and the figure
// regeneration harness in bench_test.go and cmd/bootsim.
package repro
